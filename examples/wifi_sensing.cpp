// Whole-home WiFi sensing with software on ONE device (§4.3).
//
// Thin wrapper over the registered runtime experiment — identical output,
// same knobs as `pw_run wifi_sensing` (see pw_run --list).
//
//   $ ./examples/wifi_sensing
#include "runtime/runner.h"

int main(int argc, char** argv) {
  return politewifi::runtime::example_main("wifi_sensing", argc, argv, {});
}
