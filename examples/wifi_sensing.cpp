// The opportunity (§4.3): whole-home WiFi sensing with software on ONE
// device.
//
// An IoT hub streams fake frames at the unmodified WiFi devices already
// scattered through a home — a smart TV, a thermostat — and turns their
// ACKs into sensors: per-zone occupancy, motion events, and even a
// sleeping occupant's breathing rate. The sensed devices run stock
// firmware; Polite WiFi makes them all involuntary transmitters at
// whatever packet rate the sensing needs.
//
//   $ ./examples/wifi_sensing
#include <cstdio>

#include "core/csi_collector.h"
#include "scenario/sensing_scene.h"
#include "sensing/activity.h"
#include "sensing/vitals.h"
#include "sim/network.h"

using namespace politewifi;

int main() {
  sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 77});

  // The home: two stock devices, one hub running our software.
  sim::RadioConfig rc;
  rc.position = {6, 0};
  sim::Device& tv = sim.add_device(
      {.name = "smart-tv", .kind = sim::DeviceKind::kIot},
      *MacAddress::parse("8c:77:12:01:02:03"), rc);
  rc.position = {0, 7};
  sim::Device& thermostat = sim.add_device(
      {.name = "thermostat", .kind = sim::DeviceKind::kIot},
      *MacAddress::parse("44:61:32:04:05:06"), rc);
  rc.position = {0, 0};
  rc.capture_csi = true;
  sim::Device& hub = sim.add_device(
      {.name = "iot-hub", .kind = sim::DeviceKind::kSniffer},
      *MacAddress::parse("02:0a:c4:0a:0b:0c"), rc);

  // What actually happens in the home.
  scenario::BodyMotionModel living_room({.seed = 71});
  living_room.add_phase(scenario::Activity::kStill, seconds(8));
  living_room.add_phase(scenario::Activity::kWalking, seconds(4));
  living_room.add_phase(scenario::Activity::kStill, seconds(18));

  scenario::BodyMotionModel bedroom({.breathing_bpm = 16.0, .seed = 72});
  bedroom.add_phase(scenario::Activity::kBreathing, seconds(90));

  scenario::install_body_csi_multi(
      sim.medium(),
      {{&tv.radio(), &living_room}, {&thermostat.radio(), &bedroom}},
      hub.radio(), sim.now());

  // Sense zone 1: living room via the TV (100 pkt/s — the sensing-rate
  // range the paper cites as impossible with natural traffic).
  std::printf("Hub senses the living room via the smart TV's ACKs...\n");
  core::CsiCollector tv_sense(hub, tv.address());
  tv_sense.start(100.0);
  sim.run_for(seconds(30));
  tv_sense.stop();

  const int tv_sc = sensing::select_best_subcarrier(tv_sense.samples());
  const auto tv_series =
      sensing::resample_amplitude(tv_sense.samples(), tv_sc, 100.0);
  sensing::ActivityDetector detector;
  const auto events = detector.motion_events(tv_series);
  std::printf("  occupancy: %s\n",
              sensing::detect_occupancy(tv_series) ? "OCCUPIED" : "empty");
  for (const double t : events) {
    std::printf("  motion event at t = %.1f s (truth: walk at 8 s)\n",
                t - tv_series.t0_s);
  }

  // Sense zone 2: bedroom via the thermostat.
  std::printf("\nHub senses the bedroom via the thermostat's ACKs...\n");
  core::CsiCollector th_sense(hub, thermostat.address());
  th_sense.start(50.0);
  sim.run_for(seconds(50));
  th_sense.stop();

  const int th_sc = sensing::select_best_subcarrier(th_sense.samples());
  const auto th_series =
      sensing::resample_amplitude(th_sense.samples(), th_sc, 50.0);
  const auto breathing = sensing::estimate_breathing(th_series);
  if (breathing) {
    std::printf("  sleeping occupant: breathing %.1f bpm "
                "(truth: 16.0, confidence %.2f)\n",
                breathing->rate_bpm, breathing->confidence);
  } else {
    std::printf("  no periodic motion detected\n");
  }

  std::printf("\nDevices modified: 1 (the hub). Devices sensed: %llu ACKs\n"
              "from the TV, %llu from the thermostat — both on stock\n"
              "firmware, both just being polite.\n",
              (unsigned long long)tv.station().stats().acks_sent,
              (unsigned long long)thermostat.station().stats().acks_sent);
  return 0;
}
