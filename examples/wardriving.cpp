// The §3 wardriving survey, end to end.
//
// Thin wrapper over the registered runtime experiment — identical output,
// same knobs as `pw_run wardriving` (see pw_run --list).
//
//   $ ./examples/wardriving          # default 2% city, a few seconds
//   $ ./examples/wardriving 1.0      # the paper's full census
#include "runtime/runner.h"

int main(int argc, char** argv) {
  return politewifi::runtime::example_main("wardriving", argc, argv,
                                           {"scale"});
}
