// City-scale survey (§3): discover thousands of devices, poke each one
// with fake frames, verify they all say "Hi!" back.
//
// Runs a scaled-down city by default so it finishes in seconds; pass a
// scale factor to grow it (1.0 = the paper's full 5,328-device census,
// several minutes):
//
//   $ ./examples/wardriving          # scale 0.02 (~100+ devices)
//   $ ./examples/wardriving 1.0      # the full Table 2 census
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/wardrive.h"
#include "scenario/city.h"

using namespace politewifi;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.02;

  scenario::CityConfig city_cfg;
  city_cfg.scale = scale;
  city_cfg.seed = 99;
  const scenario::CityPlan plan(
      scenario::CityPlan::grid_route(scale >= 0.5 ? 6 : 2, 500), city_cfg);

  std::printf("City: %zu APs + %zu clients along a %.1f km route "
              "(scale %.3f)\n",
              plan.ap_count(), plan.client_count(),
              plan.route_length_m() / 1000.0, scale);
  std::printf("Driving the survey rig (discover / inject / verify)...\n\n");

  sim::Simulation sim({.seed = 99});
  core::WardriveCampaign campaign(sim, plan);
  const auto report = campaign.run();

  std::printf("Drive: %.1f km in %.0f simulated seconds\n",
              report.distance_m / 1000.0, to_seconds(report.elapsed));
  std::printf("Discovered: %zu devices (%zu APs, %zu clients) from %zu "
              "vendors\n",
              report.discovered, report.discovered_aps,
              report.discovered_clients, report.distinct_vendors);
  std::printf("Fake frames injected: %llu; ACKs captured: %llu\n",
              (unsigned long long)report.fake_frames_sent,
              (unsigned long long)report.acks_observed);
  std::printf("Responded to fakes: %zu/%zu (%.1f%%)\n\n", report.responded,
              report.discovered, 100.0 * report.response_rate());

  core::print_table2(std::cout, report.client_table, report.ap_table, 10);

  std::printf("\nEvery WiFi device in town answers a stranger.\n");
  return 0;
}
