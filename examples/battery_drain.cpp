// Battery-drain attack (§4.2) on a power-saving IoT device.
//
// An ESP8266-class sensor node spends its life in 802.11 power save at
// ~10 mW. The attacker bombards it with fake frames: every frame resets
// the victim's idle timer (it can't know the frame is fake until long
// after the ACK), so the radio never sleeps — and every ACK burns
// transmit energy on top. This example sweeps the attack rate and
// projects battery life for two commercial cameras.
//
//   $ ./examples/battery_drain
#include <cstdio>

#include "core/battery_attack.h"
#include "scenario/device_profiles.h"
#include "sim/network.h"

using namespace politewifi;

int main() {
  sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 62});

  mac::ApConfig apc;
  apc.fast_keys = true;
  sim.add_ap("home-ap", *MacAddress::parse("f2:6e:0b:01:02:03"), {0, 0}, apc);

  mac::ClientConfig cc;
  cc.fast_keys = true;
  cc.power_save = true;                    // the whole point
  cc.idle_timeout = milliseconds(100);     // doze after 100 ms idle
  cc.beacon_wake_window = milliseconds(1); // brief beacon listens
  sim::Device& sensor = sim.add_client(
      "esp8266-sensor", *MacAddress::parse("24:0a:c4:aa:bb:cc"), {4, 0}, cc);

  sim::RadioConfig rig;
  rig.position = {8, 2};
  sim::Device& attacker = sim.add_device(
      {.name = "attacker", .kind = sim::DeviceKind::kAttacker},
      *MacAddress::parse("02:de:ad:be:ef:03"), rig);

  sim.establish(sensor, seconds(10));
  std::printf("ESP8266-class sensor associated, power save on.\n\n");

  core::BatteryDrainAttack attack(sim, attacker, sensor);

  std::printf("%-12s %-12s %-12s %-10s\n", "rate (pps)", "power (mW)",
              "sleep frac", "ACKs sent");
  double unattacked = 0.0, attacked_900 = 0.0;
  for (const double rate : {0.0, 10.0, 50.0, 150.0, 450.0, 900.0}) {
    const auto r = attack.run(rate, seconds(2), seconds(15));
    if (rate == 0.0) unattacked = r.avg_power_mw;
    if (rate == 900.0) attacked_900 = r.avg_power_mw;
    std::printf("%-12.0f %-12.1f %-12.2f %-10llu\n", rate, r.avg_power_mw,
                r.sleep_fraction, (unsigned long long)r.acks_elicited);
  }

  std::printf("\nPower increase at 900 pps: %.0fx (paper: 35x)\n",
              attacked_900 / unattacked);

  std::printf("\nBattery-life projections at the attacked draw:\n");
  for (const auto& cam :
       {scenario::logitech_circle2(), scenario::blink_xt2()}) {
    const auto proj =
        core::project_drain(cam.name, cam.battery_mwh, attacked_900);
    std::printf("  %-22s %.0f mWh, advertised \"%s\" -> drained in %.1f h\n",
                cam.name.c_str(), cam.battery_mwh,
                cam.advertised_life.c_str(), proj.hours_to_empty);
  }
  std::printf("\nA camera sold on months of battery dies before the next "
              "morning.\n");
  return 0;
}
