// Battery-drain attack (§4.2) on a power-saving IoT device.
//
// Thin wrapper over the registered runtime experiment — identical output,
// same knobs as `pw_run battery_drain` (see pw_run --list).
//
//   $ ./examples/battery_drain
#include "runtime/runner.h"

int main(int argc, char** argv) {
  return politewifi::runtime::example_main("battery_drain", argc, argv, {});
}
