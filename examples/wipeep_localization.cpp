// Locating every WiFi device in a house from the sidewalk (Wi-Peep).
//
// Thin wrapper over the registered runtime experiment — identical output,
// same knobs as `pw_run wipeep_localization` (see pw_run --list).
//
//   $ ./examples/wipeep_localization
#include "runtime/runner.h"

int main(int argc, char** argv) {
  return politewifi::runtime::example_main("wipeep_localization", argc, argv,
                                           {});
}
