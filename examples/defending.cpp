// Defending against Polite WiFi abuse — what helps, and what cannot.
//
// Thin wrapper over the registered runtime experiment — identical output,
// same knobs as `pw_run defending` (see pw_run --list).
//
//   $ ./examples/defending
#include "runtime/runner.h"

int main(int argc, char** argv) {
  return politewifi::runtime::example_main("defending", argc, argv, {});
}
