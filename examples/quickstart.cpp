// Quickstart: see Polite WiFi happen in five minutes.
//
// Thin wrapper over the registered runtime experiment — identical output,
// same knobs as `pw_run quickstart` (see pw_run --list).
//
//   $ ./examples/quickstart
#include "runtime/runner.h"

int main(int argc, char** argv) {
  return politewifi::runtime::example_main("quickstart", argc, argv, {});
}
