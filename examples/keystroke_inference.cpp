// Keystroke inference via Polite WiFi (§4.1) — the full attack.
//
// Thin wrapper over the registered runtime experiment — identical output,
// same knobs as `pw_run keystroke_inference` (see pw_run --list).
//
//   $ ./examples/keystroke_inference
#include "runtime/runner.h"

int main(int argc, char** argv) {
  return politewifi::runtime::example_main("keystroke_inference", argc, argv,
                                           {});
}
