// Sharded-medium tests: the shared (clock, seq) timebase, the executor's
// global-order merge, shard migration with cross-scheduler timer cancel,
// the RF-anchor position quantum, and the ShardEquivalence property —
// sharded runs must be byte-identical to the unsharded reference path.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/battery_attack.h"
#include "core/injector.h"
#include "core/wardrive.h"
#include "obs/metrics.h"
#include "scenario/city.h"
#include "sim/event_queue.h"
#include "sim/mobility.h"
#include "sim/network.h"
#include "sim/shard.h"
#include "sim/trace.h"

using namespace politewifi;

namespace {

/// RAII registry window (mirrors obs_test): reset + enable on entry,
/// disable on exit, so a failing test can't leak an enabled registry.
struct MetricsWindow {
  MetricsWindow() {
    obs::Registry::reset();
    obs::Registry::set_enabled(true);
  }
  ~MetricsWindow() { obs::Registry::set_enabled(false); }
};

// --- Shared timebase + executor merge ----------------------------------------

TEST(ShardScheduler, AdoptedTimebaseMergesInScheduleOrder) {
  sim::Scheduler primary;
  sim::Scheduler secondary;
  secondary.adopt_timebase(primary);

  // Alternate same-instant events across the two heaps: the shared seq
  // counter must make the merge replay exact scheduling order, the way a
  // single heap's FIFO tie-break would.
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sim::Scheduler& target = (i % 2 == 0) ? primary : secondary;
    target.schedule_in(milliseconds(1), [&order, i] { order.push_back(i); });
  }
  primary.schedule_in(milliseconds(2), [&order] { order.push_back(100); });
  secondary.schedule_in(milliseconds(2), [&order] { order.push_back(101); });

  sim::ShardExecutor exec({&primary, &secondary});
  exec.run_until(kSimStart + milliseconds(5));

  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 100, 101}));
  EXPECT_EQ(exec.events_executed(), 10u);
  // The shared clock advanced both schedulers together.
  EXPECT_EQ(primary.now(), kSimStart + milliseconds(5));
  EXPECT_EQ(secondary.now(), kSimStart + milliseconds(5));
}

TEST(ShardScheduler, PeekSkipsCancelledEntries) {
  sim::Scheduler s;
  const std::uint64_t first = s.schedule_in(milliseconds(1), [] {});
  s.schedule_in(milliseconds(2), [] {});
  s.cancel(first);

  TimePoint at{};
  std::uint64_t seq = 0;
  ASSERT_TRUE(s.peek_next(&at, &seq));
  EXPECT_EQ(at, kSimStart + milliseconds(2));
  EXPECT_EQ(seq, 1u);  // the second event's sequence number
}

TEST(ShardScheduler, RunAllDrainsBothHeaps) {
  sim::Scheduler primary;
  sim::Scheduler secondary;
  secondary.adopt_timebase(primary);
  int fired = 0;
  // A cascade that hops schedulers: each event schedules the next on the
  // *other* heap, so the executor must keep re-scanning.
  primary.schedule_in(milliseconds(1), [&] {
    ++fired;
    secondary.schedule_in(milliseconds(1), [&] {
      ++fired;
      primary.schedule_in(milliseconds(1), [&] { ++fired; });
    });
  });
  sim::ShardExecutor exec({&primary, &secondary});
  exec.run_all();
  EXPECT_EQ(fired, 3);
}

// --- Migration + cross-scheduler timer routing -------------------------------

TEST(ShardMigration, TimerCancelRoutesToTheOwningScheduler) {
  sim::MediumConfig mc;
  mc.shards = 4;
  mc.shard_cell_m = 100.0;
  sim::Simulation sim({.medium = mc, .seed = 11});

  sim::RadioConfig rc;
  rc.position = {150.0, 10.0};  // lattice (1, 0) => shard 1 in the 2x2
  sim::Device& dev = sim.add_device({.name = "roamer"},
                                    {0x02, 0, 0, 0, 0, 1}, rc);
  sim::Radio& radio = dev.radio();

  bool fired = false;
  const std::uint64_t id =
      radio.schedule(seconds(1), [&fired] { fired = true; });
  EXPECT_EQ(id >> 56, 1u)
      << "expected the issuing shard in the id's top byte";

  // Walk the radio across several super-cells; at least one crossing
  // re-homes it onto a different shard scheduler.
  const std::uint64_t before = sim.medium().stats().shard_handoffs;
  radio.set_position({-150.0, -150.0});
  radio.set_position({150.0, -150.0});
  EXPECT_GT(sim.medium().stats().shard_handoffs, before);

  // The pending timer lives on the scheduler that issued it; the tagged
  // id must still find (and kill) it after the migration.
  radio.cancel(id);
  sim.run_for(seconds(2));
  EXPECT_FALSE(fired) << "cancel after migration missed the event";
}

// --- RF-anchor position quantum ----------------------------------------------

TEST(PositionQuantum, AnchorSnapsOnlyPastTheQuantum) {
  sim::MediumConfig mc;
  mc.position_quantum_m = 4.0;
  sim::Simulation sim({.medium = mc, .seed = 5});
  sim::RadioConfig rc;
  rc.position = {0.0, 0.0};
  sim::Device& dev = sim.add_device({.name = "m"}, {0x02, 0, 0, 0, 0, 2}, rc);
  sim::Radio& radio = dev.radio();

  // Sub-quantum drift: the true position tracks, the RF anchor holds.
  radio.set_position({1.5, 0.0});
  EXPECT_EQ(radio.position(), (Position{1.5, 0.0}));
  EXPECT_EQ(radio.rf_position(), (Position{0.0, 0.0}));

  radio.set_position({3.9, 0.0});
  EXPECT_EQ(radio.rf_position(), (Position{0.0, 0.0}));

  // Past the quantum: the anchor snaps to the true position (not to a
  // lattice), so the error is bounded by the quantum at all times.
  radio.set_position({4.5, 0.0});
  EXPECT_EQ(radio.rf_position(), (Position{4.5, 0.0}));

  // The medium's caches and spatial index must stay coherent with the
  // anchor (audit recomputes everything from rf_position).
  sim.medium().audit_coherence();
}

TEST(PositionQuantum, ImprovesLinkCacheHitRateUnderMobility) {
  const auto run = [](double quantum) {
    sim::MediumConfig mc;
    mc.position_quantum_m = quantum;
    sim::Simulation sim({.medium = mc, .seed = 77});
    std::vector<sim::Device*> targets;
    Rng layout(77);
    for (int i = 0; i < 12; ++i) {
      sim::RadioConfig rc;
      rc.position = {layout.uniform(-120.0, 120.0),
                     layout.uniform(-120.0, 120.0)};
      targets.push_back(&sim.add_device(
          {.name = "t" + std::to_string(i)},
          {0x5e, 0x22, 0x33, 0x44, 0x55, std::uint8_t(i)}, rc));
    }
    sim::RadioConfig rig;
    rig.position = {-140.0, 0.0};
    sim::Device& walker = sim.add_device(
        {.name = "walker", .kind = sim::DeviceKind::kAttacker},
        {0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0x01}, rig);
    core::FakeFrameInjector injector(walker);
    // Wardrive-like micro-steps: ~1 m per tick, transmitting as it goes.
    // With quantum 0 every step invalidates every cached link of the
    // walker; with a 4 m quantum the anchor (and the cache) survives ~4
    // consecutive steps.
    sim::WaypointMover mover(walker.radio(), sim.scheduler(),
                             {{-140.0, 0.0}, {140.0, 0.0}}, 10.0,
                             milliseconds(100));
    mover.start();
    for (int step = 0; step < 280; ++step) {
      injector.inject_one(targets[step % 12]->address());
      sim.run_for(milliseconds(100));
    }
    sim.medium().audit_coherence();
    const auto& st = sim.medium().stats();
    return std::pair<double, double>(
        double(st.link_cache_hits),
        double(st.link_cache_hits + st.link_cache_misses));
  };
  const auto [hits_q0, total_q0] = run(0.0);
  const auto [hits_q4, total_q4] = run(4.0);
  ASSERT_GT(total_q0, 0.0);
  ASSERT_GT(total_q4, 0.0);
  const double rate_q0 = hits_q0 / total_q0;
  const double rate_q4 = hits_q4 / total_q4;
  EXPECT_GT(rate_q4, rate_q0)
      << "quantized RF anchor should lift the mobile hit rate";
  EXPECT_GE(rate_q4, 0.6) << "hit rate " << rate_q4
                          << " under micro-mobility with a 4 m quantum";
}

// --- ShardEquivalence property ------------------------------------------------

/// Metrics whose *distribution* legitimately depends on the shard count:
/// per-shard caches split hits/misses differently (totals still match,
/// asserted separately), per-scheduler pool shapes differ, and the shard
/// counters themselves only exist when sharding is on. Everything else
/// in the registry must be byte-identical.
bool shard_dependent_metric(const std::string& name) {
  return name.starts_with("sim.shard.") ||
         name == "sim.medium.link_cache_hits" ||
         name == "sim.medium.link_cache_misses" ||
         name == "sim.medium.link_cache_evictions" ||
         name == "sim.medium.fer_cache_hits" ||
         name == "sim.medium.fer_cache_misses" ||
         // Per-shard AR(1) chain caches replay different spans of the
         // same pure fading function, so draw/hit accounting (and how
         // many links hold live state) is shard-layout-dependent; the
         // fading *values* are not, which the fingerprints below prove.
         name == "sim.medium.fading_advances" ||
         name == "sim.medium.fading_cache_hits" ||
         name == "sim.medium.fading_links_peak" ||
         name == "phy.fer_draws" || name == "phy.fer_ppm" ||
         name == "sim.scheduler.pool_slots_peak" ||
         name == "sim.scheduler.tombstones_peak" ||
         name == "sim.scheduler.compactions";
}

struct ShardFingerprint {
  std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                         std::uint64_t, std::uint64_t, std::uint64_t>>
      station;
  std::vector<double> energy_mj;
  std::uint64_t receptions = 0;
  std::uint64_t delivery_events = 0;
  std::vector<std::tuple<TimePoint, std::string, Bytes>> trace;
  /// Shard-independent registry cells, in catalogue order.
  std::vector<std::pair<std::string, std::int64_t>> metrics;
  /// Shard-dependent probe *totals* (hits + misses); must be conserved.
  std::int64_t link_probes = 0;
  std::int64_t fer_probes = 0;

  bool operator==(const ShardFingerprint&) const = default;
};

/// A mobility-heavy scenario spanning several 150 m super-cells: static
/// population on mixed channels with sleepers, a continuously walking
/// injector rig (WaypointMover => shard migrations), one teleporting
/// bystander and a mid-run sleep flip. Frame errors, shadowing and
/// propagation delay all stay ON.
ShardFingerprint run_shard_scenario(std::uint64_t scenario_seed, int shards,
                                    bool fading = false,
                                    std::uint64_t* fading_samples = nullptr) {
  MetricsWindow window;
  sim::MediumConfig mc;
  mc.shards = shards;
  mc.shard_cell_m = 150.0;
  if (fading) {
    // Heavily correlated fast fading: ~6 coherence intervals per 25 ms
    // step, so the walker's links cross many AR(1) samples and several
    // stationary-restart blocks over the 3 s run.
    mc.fading_rho = 0.9;
    mc.fading_sigma_db = 2.0;
    mc.fading_coherence_us = 4000.0;
  }
  sim::Simulation sim({.medium = mc, .seed = 4000 + scenario_seed});
  sim::TraceRecorder& recorder = sim.trace();

  Rng layout(1000 + scenario_seed);
  const int channels[] = {1, 6, 11};
  std::vector<sim::Device*> targets;
  for (int i = 0; i < 16; ++i) {
    sim::RadioConfig rc;
    rc.position = {layout.uniform(-220.0, 220.0),
                   layout.uniform(-220.0, 220.0)};
    rc.channel = channels[layout.uniform_int(0, 2)];
    auto& dev = sim.add_device(
        {.name = "node" + std::to_string(i)},
        {0x5e, 0x11, 0x22, 0x33, 0x44, std::uint8_t(i)}, rc);
    if (layout.bernoulli(0.25)) dev.radio().set_sleeping(true);
    targets.push_back(&dev);
  }

  sim::RadioConfig rig;
  rig.position = {-220.0, -220.0};
  sim::Device& attacker = sim.add_device(
      {.name = "walker", .kind = sim::DeviceKind::kAttacker},
      {0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0xee}, rig);
  core::FakeFrameInjector injector(attacker);
  sim::WaypointMover mover(attacker.radio(), sim.scheduler(),
                           {{-220.0, -220.0}, {220.0, -100.0}, {220.0, 220.0},
                            {-220.0, 100.0}},
                           40.0, milliseconds(50));
  mover.start();

  for (int step = 0; step < 120; ++step) {
    attacker.radio().set_channel(channels[step % 3]);
    if (step == 60) {
      targets[0]->radio().set_sleeping(!targets[0]->radio().sleeping());
    }
    if (step % 17 == 9) {
      targets[3]->radio().set_position({layout.uniform(-220.0, 220.0),
                                        layout.uniform(-220.0, 220.0)});
    }
    injector.inject_one(targets[layout.uniform_int(0, 15)]->address());
    sim.run_for(milliseconds(25));
  }
  sim.run_for(milliseconds(200));
  sim.medium().audit_coherence();

  if (fading_samples != nullptr) {
    *fading_samples = sim.medium().stats().fading_advances;
  }

  ShardFingerprint fp;
  for (const auto& dev : sim.devices()) {
    const auto& s = dev->station().stats();
    fp.station.emplace_back(s.frames_received, s.frames_for_us, s.acks_sent,
                            s.fcs_failures, s.duplicates_dropped,
                            s.frames_transmitted);
    fp.energy_mj.push_back(dev->radio().energy().consumed_mj(sim.now()));
  }
  fp.receptions = sim.medium().stats().receptions;
  fp.delivery_events = sim.medium().stats().delivery_events;
  for (const auto& e : recorder.entries()) {
    fp.trace.emplace_back(e.time, e.sender_name, e.raw);
  }
  fp.link_probes = std::int64_t(sim.medium().stats().link_cache_hits +
                                sim.medium().stats().link_cache_misses);
  fp.fer_probes = std::int64_t(sim.medium().stats().fer_cache_hits +
                               sim.medium().stats().fer_cache_misses);
  if (obs::Registry::enabled()) {
    for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
      const auto c = static_cast<obs::Counter>(i);
      const std::string name = obs::counter_info(c).name;
      if (shard_dependent_metric(name)) continue;
      fp.metrics.emplace_back(name, obs::Registry::counter_value(c));
    }
    for (std::size_t i = 0; i < obs::kNumGauges; ++i) {
      const auto g = static_cast<obs::Gauge>(i);
      const std::string name = obs::gauge_info(g).name;
      if (shard_dependent_metric(name)) continue;
      fp.metrics.emplace_back(name, obs::Registry::gauge_value(g));
    }
    for (std::size_t i = 0; i < obs::kNumHists; ++i) {
      const auto h = static_cast<obs::Hist>(i);
      const obs::HistInfo& info = obs::hist_info(h);
      if (info.wall || shard_dependent_metric(info.name)) continue;
      fp.metrics.emplace_back(std::string(info.name) + ".sum",
                              obs::Registry::hist_sum(h));
      fp.metrics.emplace_back(std::string(info.name) + ".total",
                              obs::Registry::hist_total(h));
    }
  }
  return fp;
}

class ShardEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

void expect_shard_count_invariance(const ShardFingerprint& baseline,
                                   std::uint64_t seed, bool fading) {
  ASSERT_FALSE(baseline.trace.empty());
  for (const int shards : {2, 4, 9}) {
    const ShardFingerprint sharded = run_shard_scenario(seed, shards, fading);
    ASSERT_EQ(sharded.station.size(), baseline.station.size());
    for (std::size_t i = 0; i < baseline.station.size(); ++i) {
      EXPECT_EQ(sharded.station[i], baseline.station[i])
          << "device " << i << " at shards=" << shards;
      // Exact double equality: the sharded run must execute the same
      // floating-point operations in the same order.
      EXPECT_EQ(sharded.energy_mj[i], baseline.energy_mj[i])
          << "device " << i << " at shards=" << shards;
    }
    ASSERT_EQ(sharded.trace.size(), baseline.trace.size())
        << "shards=" << shards;
    for (std::size_t i = 0; i < baseline.trace.size(); ++i) {
      EXPECT_EQ(sharded.trace[i], baseline.trace[i])
          << "trace entry " << i << " at shards=" << shards;
    }
    EXPECT_EQ(sharded.metrics, baseline.metrics) << "shards=" << shards;
    // Per-shard caches may split probes differently but must conserve
    // the totals: the lookup *sequence* is assignment-independent.
    EXPECT_EQ(sharded.link_probes, baseline.link_probes)
        << "shards=" << shards;
    EXPECT_EQ(sharded.fer_probes, baseline.fer_probes)
        << "shards=" << shards;
    EXPECT_EQ(sharded, baseline) << "shards=" << shards;
  }
}

TEST_P(ShardEquivalence, ShardedRunIsByteIdenticalToUnsharded) {
  expect_shard_count_invariance(run_shard_scenario(GetParam(), 1), GetParam(),
                                /*fading=*/false);
}

// With fading ON the per-shard AR(1) caches replay *different spans* of
// the fading function (migrations discard state, mirrored fan-outs warm
// different memos) — yet every delivered power, FER draw, energy sample
// and trace byte must still match the unsharded run, because the fade is
// a pure function of (link, coherence interval).
TEST_P(ShardEquivalence, FadedRunIsByteIdenticalAcrossShardCounts) {
  std::uint64_t fading_samples = 0;
  const ShardFingerprint baseline = run_shard_scenario(
      GetParam(), 1, /*fading=*/true, &fading_samples);
  EXPECT_GT(fading_samples, 0u)
      << "the fading process never drew a sample; the property is vacuous";
  expect_shard_count_invariance(baseline, GetParam(), /*fading=*/true);
}

TEST_P(ShardEquivalence, WalkerActuallyMigratesAndCrossesBoundaries) {
  MetricsWindow window;
  sim::MediumConfig mc;
  mc.shards = 4;
  mc.shard_cell_m = 150.0;
  sim::Simulation sim({.medium = mc, .seed = 4000 + GetParam()});
  sim::RadioConfig rig;
  rig.position = {-220.0, -220.0};
  sim::Device& attacker = sim.add_device(
      {.name = "walker", .kind = sim::DeviceKind::kAttacker},
      {0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0xee}, rig);
  sim::RadioConfig rc;
  rc.position = {100.0, 100.0};
  sim::Device& target = sim.add_device(
      {.name = "t"}, {0x5e, 0x11, 0x22, 0x33, 0x44, 0x00}, rc);
  core::FakeFrameInjector injector(attacker);
  sim::WaypointMover mover(attacker.radio(), sim.scheduler(),
                           {{-220.0, -220.0}, {220.0, 220.0}}, 40.0,
                           milliseconds(50));
  mover.start();
  for (int step = 0; step < 120; ++step) {
    injector.inject_one(target.address());
    sim.run_for(milliseconds(150));
  }
  // The diagonal walk crosses the 2x2 lattice: migrations must have
  // happened, and fan-outs near the seams must have mirrored deliveries
  // into foreign shard streams.
  EXPECT_GT(sim.medium().stats().shard_handoffs, 0u);
  EXPECT_GT(sim.medium().stats().mirrored_tx, 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, ShardEquivalence,
                         ::testing::Values(1, 2, 3));

// --- Experiment-level equivalence --------------------------------------------
//
// The property suite above uses a synthetic adversarial scenario; these
// two re-prove shard-count invariance on the paper's actual pipelines
// (the §3 wardrive and the §4.2 battery drain), comparing the canonical
// report bytes the runtime would publish.

std::string wardrive_fingerprint(int shards) {
  sim::MediumConfig mc;
  mc.shards = shards;  // default 256 m super-cells span the city
  scenario::CityConfig city_cfg;
  city_cfg.scale = 0.005;
  city_cfg.seed = 4242;
  const scenario::CityPlan plan(scenario::CityPlan::grid_route(2, 500),
                                city_cfg);
  sim::Simulation sim({.medium = mc, .seed = 77});
  core::WardriveCampaign campaign(sim, plan);
  return campaign.run().to_json().dump();
}

TEST(ShardEquivalenceExperiments, WardriveReportIsShardCountInvariant) {
  const std::string baseline = wardrive_fingerprint(1);
  for (const int shards : {2, 4, 9}) {
    EXPECT_EQ(wardrive_fingerprint(shards), baseline)
        << "shards=" << shards;
  }
}

std::string battery_drain_fingerprint(int shards) {
  sim::MediumConfig mc;
  mc.shards = shards;
  mc.shard_cell_m = 4.0;  // splits AP / sensor / attacker across shards
  mc.shadowing_sigma_db = 0.0;
  sim::Simulation sim({.medium = mc, .seed = 62});

  mac::ApConfig apc;
  apc.fast_keys = true;
  sim.add_ap("home-ap", *MacAddress::parse("f2:6e:0b:01:02:03"), {0, 0},
             apc);
  mac::ClientConfig cc;
  cc.fast_keys = true;
  cc.power_save = true;
  cc.idle_timeout = milliseconds(100);
  cc.beacon_wake_window = milliseconds(1);
  sim::Device& sensor = sim.add_client(
      "esp8266-sensor", *MacAddress::parse("24:0a:c4:aa:bb:cc"), {4, 0}, cc);
  sim::RadioConfig rig;
  rig.position = {8, 2};
  sim::Device& attacker = sim.add_device(
      {.name = "attacker", .kind = sim::DeviceKind::kAttacker},
      *MacAddress::parse("02:de:ad:be:ef:03"), rig);
  sim.establish(sensor, seconds(10));

  core::BatteryDrainAttack attack(sim, attacker, sensor);
  std::string fp;
  for (const double rate : {0.0, 450.0}) {
    fp += attack.run(rate, milliseconds(500), seconds(2)).to_json().dump();
    fp += '\n';
  }
  common::Json energies = common::Json::array();
  for (const auto& dev : sim.devices()) {
    energies.push_back(dev->radio().energy().consumed_mj(sim.now()));
  }
  fp += energies.dump();
  return fp;
}

TEST(ShardEquivalenceExperiments, BatteryDrainIsShardCountInvariant) {
  const std::string baseline = battery_drain_fingerprint(1);
  for (const int shards : {2, 4, 9}) {
    EXPECT_EQ(battery_drain_fingerprint(shards), baseline)
        << "shards=" << shards;
  }
}

}  // namespace
