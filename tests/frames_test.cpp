// Unit tests for the 802.11 frame model: frame control packing, header
// layouts, on-air sizes, serialization round trips, information elements
// and management payloads.
#include <gtest/gtest.h>

#include "frames/data.h"
#include "frames/frame_builder.h"
#include "frames/frame_template.h"
#include "frames/management.h"
#include "frames/ppdu.h"
#include "frames/serializer.h"

namespace politewifi::frames {
namespace {

const MacAddress kA{0x00, 0x11, 0x22, 0x33, 0x44, 0x55};
const MacAddress kB{0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb};
const MacAddress kC{0xcc, 0xdd, 0xee, 0xff, 0x00, 0x11};

// --- FrameControl -------------------------------------------------------------

TEST(FrameControl, PackUnpackRoundTripAllTypeSubtypeCombos) {
  for (int type = 0; type < 3; ++type) {
    for (int subtype = 0; subtype < 16; ++subtype) {
      FrameControl fc;
      fc.type = static_cast<FrameType>(type);
      fc.subtype = static_cast<std::uint8_t>(subtype);
      fc.to_ds = subtype % 2;
      fc.retry = subtype % 3 == 0;
      fc.protected_frame = subtype % 5 == 0;
      EXPECT_EQ(FrameControl::unpack(fc.pack()), fc);
    }
  }
}

TEST(FrameControl, KnownEncodings) {
  // ACK: type control (01), subtype 1101 -> 0xD4 as the first octet on
  // air (version 00, type 01, subtype 1101 packed little-endian).
  const FrameControl ack = FrameControl::control(ControlSubtype::kAck);
  EXPECT_EQ(ack.pack(), 0x00D4);
  const FrameControl rts = FrameControl::control(ControlSubtype::kRts);
  EXPECT_EQ(rts.pack(), 0x00B4);
  const FrameControl cts = FrameControl::control(ControlSubtype::kCts);
  EXPECT_EQ(cts.pack(), 0x00C4);
  const FrameControl beacon =
      FrameControl::management(ManagementSubtype::kBeacon);
  EXPECT_EQ(beacon.pack(), 0x0080);
  const FrameControl null_fn = FrameControl::data(DataSubtype::kNull);
  EXPECT_EQ(null_fn.pack(), 0x0048);
}

TEST(FrameControl, SubtypeNamesMatchWireshark) {
  EXPECT_EQ(FrameControl::data(DataSubtype::kNull).subtype_name(),
            "Null function (No data)");
  EXPECT_EQ(FrameControl::control(ControlSubtype::kAck).subtype_name(),
            "Acknowledgement");
  EXPECT_EQ(
      FrameControl::management(ManagementSubtype::kDeauthentication)
          .subtype_name(),
      "Deauthentication");
}

TEST(FrameControl, Queries) {
  EXPECT_TRUE(FrameControl::data(DataSubtype::kQosNull).is_null_function());
  EXPECT_TRUE(FrameControl::data(DataSubtype::kNull).is_null_function());
  EXPECT_FALSE(FrameControl::data(DataSubtype::kData).is_null_function());
  EXPECT_TRUE(FrameControl::data(DataSubtype::kQosData).is_qos_data());
  EXPECT_FALSE(FrameControl::data(DataSubtype::kData).is_qos_data());
}

// --- On-air sizes (standard-mandated) ------------------------------------------

TEST(FrameSizes, AckIs14Octets) {
  EXPECT_EQ(make_ack(kA).size_bytes(), 14u);
}

TEST(FrameSizes, CtsIs14Octets) {
  EXPECT_EQ(make_cts(kA, 44).size_bytes(), 14u);
}

TEST(FrameSizes, RtsIs20Octets) {
  EXPECT_EQ(make_rts(kA, kB, 100).size_bytes(), 20u);
}

TEST(FrameSizes, NullFunctionIs28Octets) {
  // 24-octet data header + 0 body + 4 FCS.
  EXPECT_EQ(make_null_function(kA, kB, 7).size_bytes(), 28u);
}

TEST(FrameSizes, QosDataAddsTwoOctets) {
  const Frame f = make_qos_data_to_ds(kA, kB, kC, Bytes{1, 2, 3}, 9, 5);
  EXPECT_EQ(f.header_size(), 26u);
  EXPECT_EQ(f.size_bytes(), 26u + 3u + 4u);
}

// --- Address semantics -----------------------------------------------------------

TEST(AddressRules, ToDsDataFrame) {
  const Frame f = make_data_to_ds(kA /*bssid*/, kB /*sa*/, kC /*da*/,
                                  Bytes{}, 1);
  EXPECT_EQ(f.receiver(), kA);
  EXPECT_EQ(f.source(), kB);
  EXPECT_EQ(f.destination(), kC);
  EXPECT_EQ(f.bssid(), kA);
}

TEST(AddressRules, FromDsDataFrame) {
  const Frame f = make_data_from_ds(kA /*bssid*/, kB /*sa*/, kC /*da*/,
                                    Bytes{}, 1);
  EXPECT_EQ(f.receiver(), kC);
  EXPECT_EQ(f.source(), kB);
  EXPECT_EQ(f.bssid(), kA);
}

TEST(AddressRules, AckHasOnlyReceiverAddress) {
  const Frame ack = make_ack(kA);
  EXPECT_FALSE(ack.has_addr2());
  EXPECT_FALSE(ack.has_addr3());
  EXPECT_FALSE(ack.has_sequence_control());
}

// --- Serialization round trips ------------------------------------------------------

Frame sample_frame(int which) {
  switch (which % 6) {
    case 0: return make_ack(kA);
    case 1: return make_rts(kA, kB, 123);
    case 2: return make_null_function(kA, kB, 77);
    case 3: return make_data_to_ds(kA, kB, kC, Bytes{1, 2, 3, 4, 5}, 99);
    case 4:
      return make_deauth(kA, kB, kB, ReasonCode::kClass3FrameFromNonassocSta,
                         3275);
    default: {
      Beacon b;
      b.timestamp_us = 123456789;
      b.beacon_interval = 100;
      b.elements.set_ssid("PrivateNet");
      b.elements.set_channel(6);
      b.elements.set_rsn_wpa2_psk();
      return make_beacon(kB, b, 42);
    }
  }
}

class SerializerRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SerializerRoundTrip, ExactRoundTripWithValidFcs) {
  const Frame original = sample_frame(GetParam());
  const Bytes raw = frames::serialize(original);
  EXPECT_EQ(raw.size(), original.size_bytes());

  const auto result = deserialize(raw);
  ASSERT_TRUE(result.frame.has_value());
  EXPECT_TRUE(result.fcs_ok);
  EXPECT_EQ(*result.frame, original);
}

TEST_P(SerializerRoundTrip, CorruptionBreaksFcs) {
  const Frame original = sample_frame(GetParam());
  Bytes raw = serialize(original);
  corrupt(raw, 1, 1234);
  const auto result = deserialize(raw);
  EXPECT_FALSE(result.fcs_ok);
}

INSTANTIATE_TEST_SUITE_P(AllFrameKinds, SerializerRoundTrip,
                         ::testing::Range(0, 6));

TEST(Serializer, RejectsTruncatedInput) {
  const Bytes tiny{0x01, 0x02, 0x03};
  const auto result = deserialize(tiny);
  EXPECT_FALSE(result.frame.has_value());
  EXPECT_FALSE(result.fcs_ok);
}

TEST(Serializer, BadFcsFrameStillParsesForSniffers) {
  // Monitor mode shows FCS-bad frames; the MAC just must not ACK them.
  Bytes raw = serialize(make_null_function(kA, kB, 5));
  raw[raw.size() - 1] ^= 0xFF;  // damage only the FCS
  const auto result = deserialize(raw);
  ASSERT_TRUE(result.frame.has_value());
  EXPECT_FALSE(result.fcs_ok);
  EXPECT_TRUE(result.frame->fc.is_null_function());
}

// --- Sequence control ------------------------------------------------------------------

TEST(SequenceControl, PackLayout) {
  const SequenceControl sc{.sequence = 0xABC, .fragment = 0x5};
  EXPECT_EQ(sc.pack(), 0xABC5);
  EXPECT_EQ(SequenceControl::unpack(0xABC5), sc);
}

// --- Information elements ----------------------------------------------------------------

TEST(InformationElements, SsidRoundTrip) {
  ElementList list;
  list.set_ssid("MyHomeWiFi");
  ByteWriter w;
  list.serialize(w);
  ByteReader r(w.view());
  const auto parsed = ElementList::deserialize(r);
  EXPECT_EQ(parsed.ssid(), "MyHomeWiFi");
}

TEST(InformationElements, TimRoundTripWithAids) {
  ElementList list;
  ElementList::Tim tim;
  tim.dtim_count = 2;
  tim.dtim_period = 3;
  tim.buffered_aids = {1, 7, 42};
  list.set_tim(tim);

  const auto parsed = list.tim();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dtim_count, 2);
  EXPECT_EQ(parsed->dtim_period, 3);
  EXPECT_EQ(parsed->buffered_aids, (std::vector<std::uint16_t>{1, 7, 42}));
}

TEST(InformationElements, RsnMarksWpa2) {
  ElementList list;
  EXPECT_FALSE(list.has_rsn());
  list.set_rsn_wpa2_psk();
  EXPECT_TRUE(list.has_rsn());
}

TEST(InformationElements, UnknownElementsSurviveRoundTrip) {
  ElementList list;
  list.add(221, Bytes{0xde, 0xad});  // vendor specific
  list.set_channel(11);
  ByteWriter w;
  list.serialize(w);
  ByteReader r(w.view());
  const auto parsed = ElementList::deserialize(r);
  EXPECT_EQ(parsed, list);
  EXPECT_EQ(parsed.channel(), 11);
}

TEST(InformationElements, TruncatedElementThrows) {
  const Bytes bad{0x00, 0x10, 'a', 'b'};  // claims 16 octets, has 2
  ByteReader r(bad);
  EXPECT_THROW(ElementList::deserialize(r), BufferUnderflow);
}

// --- Management payloads ----------------------------------------------------------------

TEST(ManagementPayloads, BeaconRoundTrip) {
  Beacon b;
  b.timestamp_us = 987654321;
  b.beacon_interval = 102;
  b.capability.privacy = true;
  b.elements.set_ssid("net");
  const auto parsed = Beacon::from_body(b.to_body());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, b);
}

TEST(ManagementPayloads, DeauthCarriesReasonCode) {
  const Deauthentication d{ReasonCode::kClass3FrameFromNonassocSta};
  const auto parsed = Deauthentication::from_body(d.to_body());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->reason, ReasonCode::kClass3FrameFromNonassocSta);
}

TEST(ManagementPayloads, AssociationRoundTrip) {
  AssociationRequest req;
  req.listen_interval = 5;
  req.elements.set_ssid("x");
  const auto preq = AssociationRequest::from_body(req.to_body());
  ASSERT_TRUE(preq.has_value());
  EXPECT_EQ(*preq, req);

  AssociationResponse resp;
  resp.status = 0;
  resp.aid = 7;
  const auto presp = AssociationResponse::from_body(resp.to_body());
  ASSERT_TRUE(presp.has_value());
  EXPECT_EQ(*presp, resp);
}

TEST(ManagementPayloads, MalformedBodiesRejected) {
  const Bytes one_byte{0x01};
  EXPECT_FALSE(Beacon::from_body(one_byte).has_value());
  EXPECT_FALSE(Deauthentication::from_body(one_byte).has_value());
  EXPECT_FALSE(Authentication::from_body(one_byte).has_value());
}

// --- PS-Poll ---------------------------------------------------------------------------

TEST(PsPoll, AidEncodedInDurationField) {
  const Frame f = make_ps_poll(kA, kB, 42);
  EXPECT_EQ(ps_poll_aid(f), 42);
  EXPECT_TRUE(f.duration_id & 0xC000);  // the two top bits mark an AID
}

// --- CCMP header ------------------------------------------------------------------------

TEST(CcmpHeader, RoundTripPreservesPnAndKeyId) {
  CcmpHeader h{.packet_number = 0x0000AABBCCDDEEFF & 0x0000FFFFFFFFFFFF,
               .key_id = 2};
  ByteWriter w;
  h.serialize(w);
  ByteReader r(w.view());
  const auto parsed = CcmpHeader::deserialize(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->packet_number, h.packet_number);
  EXPECT_EQ(parsed->key_id, 2);
}

// --- FrameBuilder ------------------------------------------------------------------------

TEST(FrameBuilder, BuildsArbitraryFrames) {
  const Frame f = FrameBuilder()
                      .data(DataSubtype::kNull)
                      .to_ds()
                      .duration(44)
                      .addr1(kA)
                      .addr2(MacAddress::paper_fake_address())
                      .addr3(kA)
                      .sequence(1234)
                      .build();
  EXPECT_TRUE(f.fc.is_null_function());
  EXPECT_EQ(f.addr2, MacAddress::paper_fake_address());
  EXPECT_EQ(f.seq.sequence, 1234);
  // Scapy-style: nothing validated, frame serializes fine.
  EXPECT_EQ(serialize(f).size(), f.size_bytes());
}

TEST(FrameSummary, MatchesFigureVocabulary) {
  const Frame f = make_null_function(kA, MacAddress::paper_fake_address(), 12);
  EXPECT_EQ(f.summary(), "Null function (No data), SN=12, Flags=T");
}

// --- FrameTemplateCache -------------------------------------------------------

TEST(FrameTemplateCache, PatchedRendersAreByteIdenticalToSerialize) {
  // The whole contract: render() == serialize() for every frame, no
  // matter whether it was a miss, an in-place seq/retry patch, or a
  // copied patch. Walk sequence numbers and flip retry to force the
  // incremental-FCS path through both transitions.
  FrameTemplateCache cache;
  PpduPool pool;
  Frame f = make_null_function(kA, MacAddress::paper_fake_address(), 0);
  for (int i = 0; i < 300; ++i) {
    f.seq.sequence = (i * 37) & 0x0FFF;
    f.fc.retry = (i % 5) == 0;
    const PpduRef rendered = cache.render(f, pool);
    ASSERT_EQ(rendered.octets(), serialize(f)) << "iteration " << i;
  }
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_GT(cache.stats().in_place_patches, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(FrameTemplateCache, SharedBuffersAreNeverMutated) {
  // A receiver still holding the previous PPDU must not see its bytes
  // change when the next frame is rendered: the patch has to land in a
  // fresh buffer.
  FrameTemplateCache cache;
  PpduPool pool;
  Frame f = make_null_function(kA, MacAddress::paper_fake_address(), 1);
  const PpduRef held = cache.render(f, pool);
  const Bytes snapshot = held.octets();

  f.seq.sequence = 2;
  const PpduRef next = cache.render(f, pool);
  EXPECT_EQ(held.octets(), snapshot);
  EXPECT_EQ(next.octets(), serialize(f));
  EXPECT_NE(&held.octets(), &next.octets());
  EXPECT_GT(cache.stats().copied_patches, 0u);
  EXPECT_GT(cache.stats().bytes_copied, 0u);
}

TEST(FrameTemplateCache, DistinctFrameShapesRenderCorrectlyAcrossSlots) {
  // More distinct shapes than the direct-mapped cache has entries:
  // collisions force re-renders, and every render must still match
  // serialize().
  FrameTemplateCache cache;
  PpduPool pool;
  for (int round = 0; round < 3; ++round) {
    for (std::uint8_t i = 0; i < 12; ++i) {
      const MacAddress ra{0x00, 0x11, 0x22, 0x33, 0x44, i};
      Frame rts = make_rts(ra, kB, 60);
      EXPECT_EQ(cache.render(rts, pool).octets(), serialize(rts));
      Frame null = make_null_function(ra, kB, std::uint16_t(round * 12 + i));
      EXPECT_EQ(cache.render(null, pool).octets(), serialize(null));
    }
  }
}

}  // namespace
}  // namespace politewifi::frames
