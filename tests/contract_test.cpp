// Contract-layer and invariant-auditor tests (ISSUE 2).
//
// The auditors exist to catch silent corruption — a heap entry out of
// order, a grid cell gone stale, a cached gain that drifted from its
// recompute. These tests inject exactly those corruptions through
// test-peer backdoors and assert that the audits die loudly, plus check
// the PW_CHECK macro family's message formatting and release-mode
// compile-out behaviour.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.h"
#include "frames/frame_builder.h"
#include "frames/serializer.h"
#include "phy/rates.h"
#include "sim/medium.h"
#include "sim/radio.h"

namespace politewifi::sim {

/// Backdoor into Scheduler internals for corruption injection. Lives in
/// the production namespace so the `friend struct SchedulerTestPeer;`
/// grant resolves; only this test links it.
struct SchedulerTestPeer {
  static void swap_first_last_heap_entries(Scheduler& s) {
    ASSERT_GE(s.heap_.size(), 2u);
    std::swap(s.heap_.front(), s.heap_.back());
  }
  static void inflate_tombstone_counter(Scheduler& s) { ++s.tombstones_; }
  static void disarm_slot_of_first_entry(Scheduler& s) {
    ASSERT_FALSE(s.heap_.empty());
    s.pool_[s.heap_.front().slot].armed = false;
  }
  static void duplicate_first_entry(Scheduler& s) {
    ASSERT_FALSE(s.heap_.empty());
    s.heap_.push_back(s.heap_.front());
  }
};

/// Backdoor into Medium/Radio cache internals.
struct MediumTestPeer {
  /// Moves a radio *without* telling the medium — the classic stale-cache
  /// bug the coherence auditor exists to catch (set_position would bump
  /// the geometry version and reindex the grid).
  static void stale_position(Radio& r, const Position& p) {
    r.position_ = p;
    r.rf_position_ = p;  // physics anchor moves too, caches stay stale
  }
  static bool corrupt_one_current_link_cache_line(Medium& m) {
    for (auto& memo : m.memos_) {
      for (auto& line : memo.lines) {
        if (line.key == 0 || line.tx_version != 0 || line.rx_version != 0) {
          continue;  // want a line that would be served as a hit
        }
        line.gain_db += 1.0;
        return true;
      }
    }
    return false;
  }
  static bool corrupt_one_neighbor_gain(Radio& r) {
    if (r.neighbors_.empty()) return false;
    r.neighbors_.front().gain_db += 1.0;
    return true;
  }
  /// Runs just one radio's audit slice (the full audit_coherence visits
  /// radios in attach order, so an earlier radio's neighbor-list check
  /// may report a stale position first — correct, but the grid-residency
  /// test wants the grid message specifically).
  static void audit_radio(const Medium& m, const Radio& r) {
    m.audit_radio(r);
  }
};

namespace {

// --- PW_CHECK family --------------------------------------------------------

TEST(Contract, PassingChecksAreSilent) {
  PW_CHECK(1 + 1 == 2);
  PW_CHECK(true, "message with %d args", 2);
  PW_CHECK_EQ(3, 3);
  PW_CHECK_NE(3, 4);
  PW_CHECK_LT(3, 4);
  PW_CHECK_LE(4, 4);
  PW_CHECK_GT(4, 3);
  PW_CHECK_GE(4, 4);
}

TEST(ContractDeathTest, CheckFailureNamesFileExpressionAndMessage) {
  EXPECT_DEATH(PW_CHECK(2 + 2 == 5, "arithmetic is %s", "broken"),
               "contract_test.cpp:.*PW_CHECK\\(2 \\+ 2 == 5\\) failed: "
               "arithmetic is broken");
}

TEST(ContractDeathTest, BareCheckFailureHasNoTrailingColon) {
  EXPECT_DEATH(PW_CHECK(false), "PW_CHECK\\(false\\) failed\n");
}

TEST(ContractDeathTest, ComparisonFailurePrintsBothOperands) {
  const int lhs = 7;
  const int rhs = 9;
  EXPECT_DEATH(PW_CHECK_EQ(lhs, rhs),
               "PW_CHECK_EQ\\(lhs == rhs\\) failed: lhs=7 rhs=9");
}

TEST(ContractDeathTest, UnreachableIsAlwaysFatal) {
  EXPECT_DEATH(PW_UNREACHABLE("fell off the state machine at %d", 42),
               "PW_UNREACHABLE\\(reached\\) failed: fell off the state "
               "machine at 42");
}

TEST(Contract, FailureHandlerReceivesFormattedMessage) {
  static std::string captured;
  auto* previous = contract::set_failure_handler(
      +[](const std::string& message) {
        captured = message;
        throw std::runtime_error(message);  // unwind instead of aborting
      });
  EXPECT_THROW(PW_CHECK(false, "seed=%u", 42u), std::runtime_error);
  contract::set_failure_handler(previous);
  EXPECT_NE(captured.find("PW_CHECK(false) failed: seed=42"),
            std::string::npos);
}

TEST(Contract, DcheckMatchesBuildMode) {
  int evaluations = 0;
  PW_DCHECK(++evaluations > 0);
#if PW_AUDIT_ENABLED
  EXPECT_EQ(evaluations, 1);  // audit builds evaluate and enforce
#else
  EXPECT_EQ(evaluations, 0);  // release compiles the condition out
#endif
}

#if PW_AUDIT_ENABLED
TEST(ContractDeathTest, DcheckFatalInAuditBuilds) {
  EXPECT_DEATH(PW_DCHECK(false, "audit build enforces this"),
               "audit build enforces this");
}
#endif

// --- Scheduler auditor ------------------------------------------------------

TEST(SchedulerAudit, CleanAfterChurn) {
  Scheduler s;
  std::vector<Scheduler::EventId> ids;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) {
      ids.push_back(s.schedule_in(microseconds(10 * (i + 1)), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 3) s.cancel(ids[i]);
    ids.clear();
    s.run_for(microseconds(200));
    s.audit();
  }
  s.run_all();
  s.audit();
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerAuditDeathTest, HeapOrderCorruptionTrips) {
  Scheduler s;
  s.schedule_in(milliseconds(1), [] {});
  s.schedule_in(milliseconds(2), [] {});
  s.schedule_in(milliseconds(3), [] {});
  SchedulerTestPeer::swap_first_last_heap_entries(s);
  EXPECT_DEATH(s.audit(), "heap order violated");
}

TEST(SchedulerAuditDeathTest, TombstoneMiscountTrips) {
  Scheduler s;
  const auto id = s.schedule_in(milliseconds(1), [] {});
  s.cancel(id);
  SchedulerTestPeer::inflate_tombstone_counter(s);
  EXPECT_DEATH(s.audit(), "PW_CHECK_EQ\\(tombstones_ == cancelled_in_heap\\)");
}

TEST(SchedulerAuditDeathTest, DisarmedSlotInHeapTrips) {
  Scheduler s;
  s.schedule_in(milliseconds(1), [] {});
  SchedulerTestPeer::disarm_slot_of_first_entry(s);
  EXPECT_DEATH(s.audit(), "disarmed slot");
}

TEST(SchedulerAuditDeathTest, DoubleScheduledSlotTrips) {
  Scheduler s;
  s.schedule_in(milliseconds(1), [] {});
  SchedulerTestPeer::duplicate_first_entry(s);
  EXPECT_DEATH(s.audit(), "double-schedule");
}

// --- Medium coherence auditor ----------------------------------------------

struct AuditCity {
  Scheduler scheduler;
  Medium medium;
  std::vector<std::unique_ptr<Radio>> radios;

  AuditCity() : medium(scheduler, MediumConfig{}, /*seed=*/7) {
    for (int i = 0; i < 12; ++i) {
      radios.push_back(std::make_unique<Radio>(
          medium, scheduler,
          RadioConfig{.position = {10.0 * i, 5.0 * (i % 3)}}));
    }
  }

  /// One broadcast so neighbor lists and link caches populate.
  void warm_up() {
    medium.transmit(*radios[0], Bytes(64, 0xAB),
                    {.rate = phy::kOfdm24, .power_dbm = 15});
    scheduler.run_for(milliseconds(5));
  }
};

TEST(MediumAudit, CleanAfterTrafficAndMobility) {
  AuditCity city;
  city.warm_up();
  city.medium.audit_coherence();
  // Legitimate mobility through the proper API must stay coherent.
  city.radios[3]->set_position({500.0, 500.0});
  city.radios[5]->set_channel(11);
  city.warm_up();
  city.medium.audit_coherence();
}

TEST(MediumAuditDeathTest, StalePositionTripsGridAudit) {
  AuditCity city;
  city.warm_up();
  // Teleport a radio far enough to land in another grid cell without
  // notifying the medium: the index now lies about where the radio is.
  MediumTestPeer::stale_position(*city.radios[4], {50000.0, 50000.0});
  EXPECT_DEATH(MediumTestPeer::audit_radio(city.medium, *city.radios[4]),
               "stale grid cell");
}

TEST(MediumAuditDeathTest, StalePositionTripsFullCoherenceAudit) {
  AuditCity city;
  city.warm_up();
  MediumTestPeer::stale_position(*city.radios[4], {50000.0, 50000.0});
  // The full sweep visits radios in attach order, so the first symptom
  // may be an earlier sender's neighbor list disagreeing with the
  // brute-force recompute — either way the corruption must be fatal.
  EXPECT_DEATH(
      city.medium.audit_coherence(),
      "stale grid cell|diverges from brute force|misses detectable|"
      "cached gain");
}

TEST(MediumAuditDeathTest, CorruptedLinkCacheLineTrips) {
  AuditCity city;
  city.warm_up();
  ASSERT_TRUE(MediumTestPeer::corrupt_one_current_link_cache_line(city.medium));
  EXPECT_DEATH(city.medium.audit_coherence(),
               "link cache line .* != recomputed");
}

TEST(MediumAuditDeathTest, CorruptedNeighborGainTrips) {
  AuditCity city;
  city.warm_up();
  ASSERT_TRUE(MediumTestPeer::corrupt_one_neighbor_gain(*city.radios[0]));
  EXPECT_DEATH(city.medium.audit_coherence(), "cached gain .* != recomputed");
}

// --- Radio state-machine legality table -------------------------------------

TEST(RadioStateTable, EncodesTheMacGatingRules) {
  using S = RadioState;
  // Self-transitions: nested receptions, meter resets.
  for (S s : {S::kOff, S::kSleep, S::kIdle, S::kRx, S::kTx}) {
    EXPECT_TRUE(radio_transition_legal(s, s));
  }
  // A dozing radio missed the preamble: it can only wake to idle.
  EXPECT_TRUE(radio_transition_legal(S::kSleep, S::kIdle));
  EXPECT_FALSE(radio_transition_legal(S::kSleep, S::kRx));
  EXPECT_FALSE(radio_transition_legal(S::kSleep, S::kTx));
  // Off radios power up to idle, nothing else.
  EXPECT_TRUE(radio_transition_legal(S::kOff, S::kIdle));
  EXPECT_FALSE(radio_transition_legal(S::kOff, S::kRx));
  EXPECT_FALSE(radio_transition_legal(S::kOff, S::kTx));
  EXPECT_FALSE(radio_transition_legal(S::kOff, S::kSleep));
  // Power-down is always allowed.
  for (S s : {S::kSleep, S::kIdle, S::kRx, S::kTx}) {
    EXPECT_TRUE(radio_transition_legal(s, S::kOff));
  }
  // An active radio moves freely between idle/rx/tx/sleep — including
  // Tx->Rx (a preamble arriving in the tx tail) and Rx->Tx (a reception
  // below the CS threshold abandoned for a scheduled transmit).
  EXPECT_TRUE(radio_transition_legal(S::kTx, S::kRx));
  EXPECT_TRUE(radio_transition_legal(S::kRx, S::kTx));
  EXPECT_TRUE(radio_transition_legal(S::kIdle, S::kSleep));
  EXPECT_TRUE(radio_transition_legal(S::kRx, S::kSleep));
}

#if PW_AUDIT_ENABLED
TEST(RadioStateTableDeathTest, MeterEnforcesTableInAuditBuilds) {
  EnergyMeter meter(PowerProfile::esp8266(), kSimStart);
  meter.set_state(RadioState::kSleep, kSimStart + seconds(1));
  EXPECT_DEATH(
      meter.set_state(RadioState::kTx, kSimStart + seconds(2)),
      "illegal radio state transition sleep -> tx");
}
#endif

// --- Serializer round-trip --------------------------------------------------

TEST(SerializerAudit, RoundTripIsExact) {
  const frames::Frame frame = frames::make_null_function(
      {1, 2, 3, 4, 5, 6}, {7, 8, 9, 10, 11, 12}, 17);
  const Bytes raw = frames::serialize(frame);
  EXPECT_EQ(raw.size(), frame.size_bytes());
  const auto parsed = frames::deserialize(raw);
  ASSERT_TRUE(parsed.fcs_ok);
  ASSERT_TRUE(parsed.frame.has_value());
  EXPECT_EQ(frames::serialize(*parsed.frame), raw);
}

TEST(SerializerAudit, CorruptionFailsFcsButStaysParseable) {
  const frames::Frame frame = frames::make_null_function(
      {1, 2, 3, 4, 5, 6}, {7, 8, 9, 10, 11, 12}, 17);
  Bytes raw = frames::serialize(frame);
  frames::corrupt(raw, 3, /*seed=*/99);
  const auto parsed = frames::deserialize(raw);
  EXPECT_FALSE(parsed.fcs_ok);  // the MAC must not ACK this
}

}  // namespace
}  // namespace politewifi::sim
