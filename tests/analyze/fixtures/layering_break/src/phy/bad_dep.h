// Fixture: phy reaching *up* into sim. Both dependency edge kinds must
// be flagged by the layering check — the #include edge and the
// qualified-name (decl-use) edge — because phy → sim is not in
// ALLOWED_DEPS (sim depends on phy, never the reverse).
#pragma once

#include "common/units.h"
#include "sim/event_queue.h"

namespace politewifi::phy {

/// A PHY object holding a pointer into the simulator layer above it.
struct ScheduledProbe {
  sim::Scheduler* scheduler = nullptr;
  double level_dbm = 0.0;
};

}  // namespace politewifi::phy
