// Fixture: heap allocation buried two calls below a PW_HOT root. The
// purity walk must follow dispatch_one → refill → grow_slot and report
// the `new` against the root, not just direct allocations in the
// annotated function itself.
#pragma once

#include "common/annotations.h"

namespace politewifi::sim {

inline int* grow_slot() { return new int(0); }

inline int* refill() { return grow_slot(); }

PW_HOT inline int* dispatch_one() { return refill(); }

}  // namespace politewifi::sim
