// Fixture: a PW_GUARDED_BY field written with and without its lock.
// hit() constructs a MutexLock on the capability and must pass;
// hit_unlocked() touches the same field bare and must be flagged.
#pragma once

#include "common/annotations.h"
#include "common/mutex.h"

namespace politewifi::obs {

class HitCounter {
 public:
  void hit() {
    common::MutexLock lock(mutex_);
    ++hits_;
  }

  void hit_unlocked() { ++hits_; }

 private:
  mutable common::Mutex mutex_;
  long hits_ PW_GUARDED_BY(mutex_) = 0;
};

}  // namespace politewifi::obs
