// Fixture: unordered iteration laundered through an alias and auto.
// The range expression is `table`; its declaration is `auto&`, whose
// initializer is the member `devices_`, whose declared type is the
// alias `DeviceMap`, which expands to std::unordered_map. A line regex
// sees none of that — the type-aware check must still flag the loop.
#pragma once

#include <string>
#include <unordered_map>

namespace politewifi::core {

using DeviceMap = std::unordered_map<int, std::string>;

class Registry {
 public:
  int count() const {
    auto& table = devices_;
    int n = 0;
    for (const auto& entry : table) {
      (void)entry;
      ++n;
    }
    return n;
  }

 private:
  DeviceMap devices_;
};

}  // namespace politewifi::core
