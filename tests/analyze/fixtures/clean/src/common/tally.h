// Fixture: the shapes the checks must NOT flag — ordered (std::map)
// iteration, a PW_HOT function that stays pure, and a guarded field
// only ever touched under its lock. Any finding here is a false
// positive and fails the fixture suite.
#pragma once

#include <map>
#include <string>

#include "common/annotations.h"
#include "common/mutex.h"

namespace politewifi::common {

inline int total(const std::map<std::string, int>& counts) {
  int sum = 0;
  for (const auto& [name, n] : counts) {
    (void)name;
    sum += n;
  }
  return sum;
}

PW_HOT inline int clamp_level(int level) {
  return level < 0 ? 0 : level;
}

class SafeTally {
 public:
  void add(int n) {
    common::MutexLock lock(mutex_);
    sum_ += n;
  }

  long read() const {
    common::MutexLock lock(mutex_);
    return sum_;
  }

 private:
  mutable common::Mutex mutex_;
  long sum_ PW_GUARDED_BY(mutex_) = 0;
};

}  // namespace politewifi::common
