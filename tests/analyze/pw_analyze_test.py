#!/usr/bin/env python3
"""Fixture suite for tools/pw_analyze.py.

Each fixture under tests/analyze/fixtures/ is a miniature source tree
engineered to trip exactly one check (or, for `clean`, none). The suite
drives the tool the way CI does — as a subprocess, builtin backend — and
asserts on rule IDs and exit codes, so a regression in extraction, type
resolution or the call-graph walk shows up as a missing (or spurious)
finding rather than a silent pass.

Run directly (`python3 tests/analyze/pw_analyze_test.py`) or through
ctest (`ctest -R pw_analyze`).
"""

import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
TOOL = os.path.join(REPO, "tools", "pw_analyze.py")
FIXTURES = os.path.join(HERE, "fixtures")


def run_analyze(*args):
    proc = subprocess.run(
        [sys.executable, TOOL, "--backend=builtin", *args],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def run_fixture(name, *extra):
    return run_analyze("--root", os.path.join(FIXTURES, name), *extra)


class FixtureFindings(unittest.TestCase):
    """Each bad fixture must produce its engineered finding."""

    def test_layering_break_flags_both_edge_kinds(self):
        code, out, _err = run_fixture("layering_break")
        self.assertEqual(code, 1, out)
        self.assertIn("[layering]", out)
        # The #include edge and the qualified-name edge are distinct
        # findings: deleting the include must not hide the decl use.
        self.assertIn('must not include "sim/event_queue.h"', out)
        self.assertIn("must not name sim::", out)
        self.assertEqual(out.count("[layering]"), 2, out)

    def test_unordered_iteration_through_alias_and_auto(self):
        code, out, _err = run_fixture("unordered_auto")
        self.assertEqual(code, 1, out)
        self.assertIn("[unordered-iteration]", out)
        self.assertIn("'table'", out)  # the auto&-bound alias, resolved

    def test_hot_alloc_reported_transitively(self):
        code, out, _err = run_fixture("hot_alloc")
        self.assertEqual(code, 1, out)
        self.assertIn("[hot-new]", out)
        self.assertIn("PW_HOT root dispatch_one", out)
        # The chain proves the walk went through the middle frame.
        self.assertIn("refill", out)
        self.assertIn("grow_slot", out)

    def test_unguarded_write_flagged_locked_sibling_not(self):
        code, out, _err = run_fixture("unguarded_write")
        self.assertEqual(code, 1, out)
        self.assertIn("[guarded-by]", out)
        self.assertIn("hit_unlocked", out)
        self.assertIn("PW_GUARDED_BY(mutex_)", out)
        # hit() takes common::MutexLock on the capability: not a finding.
        self.assertEqual(out.count("[guarded-by]"), 1, out)

    def test_clean_fixture_passes(self):
        code, out, err = run_fixture("clean")
        self.assertEqual(code, 0, out + err)
        self.assertIn("0 finding(s)", err)


class SuppressionMechanics(unittest.TestCase):
    """Allowlist hygiene: stale entries and bare allows are themselves
    errors, so suppressions can never quietly outlive their reason."""

    def test_unused_allowlist_entry_is_an_error(self):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".txt", delete=False) as f:
            f.write("src/common/tally.h:hot-new  # stale: nothing "
                    "allocates here anymore\n")
            allowlist = f.name
        try:
            code, out, _err = run_fixture(
                "clean", "--allowlist", allowlist)
            self.assertEqual(code, 1, out)
            self.assertIn("[unused-allowlist-entry]", out)
            self.assertIn("src/common/tally.h:hot-new", out)
        finally:
            os.unlink(allowlist)

    def test_inline_allow_without_justification_is_an_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            mod = os.path.join(tmp, "src", "common")
            os.makedirs(mod)
            with open(os.path.join(mod, "bare_allow.h"), "w") as f:
                f.write(
                    "#pragma once\n"
                    "// pw-analyze: allow(hot-new):\n"
                    "inline int* leak() { return new int(0); }\n")
            code, out, _err = run_analyze("--root", tmp)
            self.assertEqual(code, 1, out)
            self.assertIn("[allow-missing-justification]", out)

    def test_inline_allow_with_justification_suppresses(self):
        with tempfile.TemporaryDirectory() as tmp:
            mod = os.path.join(tmp, "src", "sim")
            os.makedirs(mod)
            with open(os.path.join(mod, "pool.h"), "w") as f:
                f.write(
                    "#pragma once\n"
                    "#include \"common/annotations.h\"\n"
                    "namespace politewifi::sim {\n"
                    "PW_HOT inline int* acquire() {\n"
                    "  // pw-analyze: allow(hot-new): pool growth on a\n"
                    "  // cold miss only; steady state reuses slots.\n"
                    "  return new int(0);\n"
                    "}\n"
                    "}  // namespace politewifi::sim\n")
            code, out, err = run_analyze("--root", tmp)
            self.assertEqual(code, 0, out + err)


class RealTree(unittest.TestCase):
    """The production gate: the actual src/ tree is clean with the
    checked-in (empty-by-design) allowlist."""

    def test_repo_is_clean(self):
        proc = subprocess.run(
            [sys.executable, TOOL, "--backend=builtin"],
            capture_output=True, text=True, cwd=REPO)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("0 finding(s)", proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
