// Unit tests for the core attack toolkit: injector, monitor hub, scanner,
// ACK sniffer attribution, vendor statistics, and stream scheduling.
#include <gtest/gtest.h>

#include <sstream>

#include "core/ack_sniffer.h"
#include "core/injector.h"
#include "core/scanner.h"
#include "core/vendor_stats.h"
#include "sim/network.h"

namespace politewifi::core {
namespace {

using sim::Device;
using sim::Simulation;

constexpr MacAddress kVictimMac{0x3c, 0x28, 0x6d, 0xaa, 0xbb, 0xcc};
constexpr MacAddress kVictim2Mac{0x3c, 0x28, 0x6d, 0xaa, 0xbb, 0xdd};
constexpr MacAddress kAttackerMac{0x02, 0xde, 0xad, 0xbe, 0xef, 0x01};

struct Rig {
  Simulation sim{{.medium = {.shadowing_sigma_db = 0.0}, .seed = 100}};
  Device* victim = nullptr;
  Device* attacker = nullptr;

  Rig() {
    sim::RadioConfig rc;
    rc.position = {5, 0};
    victim = &sim.add_device({.name = "victim"}, kVictimMac, rc);
    sim::RadioConfig rig;
    rig.position = {0, 0};
    attacker = &sim.add_device(
        {.name = "attacker", .kind = sim::DeviceKind::kAttacker},
        kAttackerMac, rig);
  }
};

// --- Injector ------------------------------------------------------------------

TEST(Injector, CraftsPaperExactNullFrame) {
  Rig rig;
  auto& trace = rig.sim.trace();
  FakeFrameInjector injector(*rig.attacker);
  injector.inject_one(kVictimMac);
  rig.sim.run_for(milliseconds(1));

  ASSERT_GE(trace.entries().size(), 1u);
  const auto& f = trace.entries()[0].frame;
  EXPECT_TRUE(f.fc.is_null_function());
  EXPECT_FALSE(f.fc.protected_frame);
  EXPECT_EQ(f.addr1, kVictimMac);
  EXPECT_EQ(f.addr2, MacAddress::paper_fake_address());
  EXPECT_TRUE(f.body.empty());
}

TEST(Injector, CustomSpoofedSource) {
  Rig rig;
  auto& trace = rig.sim.trace();
  const MacAddress spoof{0xde, 0xad, 0x00, 0x00, 0x00, 0x01};
  FakeFrameInjector injector(*rig.attacker, {.spoofed_source = spoof});
  injector.inject_one(kVictimMac);
  rig.sim.run_for(milliseconds(1));
  ASSERT_GE(trace.entries().size(), 2u);  // fake + ACK
  EXPECT_EQ(trace.entries()[0].frame.addr2, spoof);
  EXPECT_EQ(trace.entries()[1].frame.addr1, spoof);  // ACK to the spoof
}

TEST(Injector, StreamHoldsConfiguredRate) {
  Rig rig;
  FakeFrameInjector injector(*rig.attacker);
  injector.start_stream(kVictimMac, 200.0);
  rig.sim.run_for(seconds(2));
  injector.stop_stream(kVictimMac);
  const auto injected = injector.stats().frames_injected;
  EXPECT_NEAR(double(injected), 400.0, 8.0);
  // Stream really stopped.
  rig.sim.run_for(seconds(1));
  EXPECT_EQ(injector.stats().frames_injected, injected);
}

TEST(Injector, RetargetingStreamReplacesRate) {
  Rig rig;
  FakeFrameInjector injector(*rig.attacker);
  injector.start_stream(kVictimMac, 50.0);
  rig.sim.run_for(seconds(1));
  injector.start_stream(kVictimMac, 500.0);  // retarget, same victim
  const auto before = injector.stats().frames_injected;
  rig.sim.run_for(seconds(1));
  const auto delta = injector.stats().frames_injected - before;
  EXPECT_NEAR(double(delta), 500.0, 15.0);
}

TEST(Injector, ParallelStreamsToTwoVictims) {
  Rig rig;
  sim::RadioConfig rc;
  rc.position = {6, 2};
  Device& victim2 = rig.sim.add_device({.name = "victim2"}, kVictim2Mac, rc);
  FakeFrameInjector injector(*rig.attacker);
  injector.start_stream(kVictimMac, 100.0);
  injector.start_stream(kVictim2Mac, 100.0);
  rig.sim.run_for(seconds(2));
  injector.stop_all();
  EXPECT_GT(rig.victim->station().stats().acks_sent, 150u);
  EXPECT_GT(victim2.station().stats().acks_sent, 150u);
}

TEST(Injector, SequenceNumbersAdvance) {
  Rig rig;
  auto& trace = rig.sim.trace();
  FakeFrameInjector injector(*rig.attacker);
  for (int i = 0; i < 3; ++i) injector.inject_one(kVictimMac);
  rig.sim.run_for(milliseconds(1));
  std::vector<int> sns;
  for (const auto& e : trace.entries()) {
    if (e.frame.fc.is_null_function()) sns.push_back(e.frame.seq.sequence);
  }
  ASSERT_EQ(sns.size(), 3u);
  EXPECT_EQ(sns[1], sns[0] + 1);
  EXPECT_EQ(sns[2], sns[1] + 1);
}

// --- MonitorHub ----------------------------------------------------------------

TEST(Monitor, FanOutToMultipleTapsAndRemoval) {
  Rig rig;
  MonitorHub hub(rig.attacker->station());
  int a = 0, b = 0;
  hub.add_tap([&a](const frames::Frame&, const phy::RxVector&, bool) { ++a; });
  const auto id =
      hub.add_tap([&b](const frames::Frame&, const phy::RxVector&, bool) { ++b; });

  rig.victim->station().transmit_now(
      frames::make_null_function(kAttackerMac, kVictimMac, 1), phy::kOfdm24);
  rig.sim.run_for(milliseconds(1));
  EXPECT_GE(a, 1);
  EXPECT_EQ(a, b);

  hub.remove_tap(id);
  const int b_before = b;
  rig.victim->station().transmit_now(
      frames::make_null_function(kAttackerMac, kVictimMac, 2), phy::kOfdm24);
  rig.sim.run_for(milliseconds(1));
  EXPECT_GT(a, 1);
  EXPECT_EQ(b, b_before);
}

// --- Scanner --------------------------------------------------------------------

TEST(Scanner, ClassifiesApFromBeaconAndClientFromToDs) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 101});
  mac::ApConfig apc;
  apc.fast_keys = true;
  Device& ap = sim.add_ap("ap", {0xf2, 0x6e, 0x0b, 1, 2, 3}, {0, 0}, apc);
  mac::ClientConfig cc;
  cc.fast_keys = true;
  Device& client = sim.add_client("client", kVictimMac, {4, 0}, cc);

  sim::RadioConfig rig;
  rig.position = {6, 2};
  Device& monitor = sim.add_device(
      {.name = "monitor", .kind = sim::DeviceKind::kSniffer}, kAttackerMac,
      rig);
  MonitorHub hub(monitor.station());
  DeviceScanner scanner(hub, monitor.radio(), {kAttackerMac});

  sim.establish(client, seconds(10));
  sim.run_for(seconds(1));

  const auto& devices = scanner.devices();
  ASSERT_TRUE(devices.count(ap.address()));
  ASSERT_TRUE(devices.count(client.address()));
  EXPECT_TRUE(devices.at(ap.address()).is_ap);
  EXPECT_FALSE(devices.at(client.address()).is_ap);
  EXPECT_EQ(scanner.count_aps(), 1u);
  EXPECT_EQ(scanner.count_clients(), 1u);
  EXPECT_GT(devices.at(ap.address()).frames_seen, 1u);
}

TEST(Scanner, IgnoredAddressesNeverAppear) {
  Rig rig;
  MonitorHub hub(rig.attacker->station());
  DeviceScanner scanner(hub, rig.attacker->radio(),
                        {kAttackerMac, MacAddress::paper_fake_address()});
  FakeFrameInjector injector(*rig.attacker);
  injector.inject_one(kVictimMac);
  rig.sim.run_for(milliseconds(5));
  // Neither our own MAC nor the spoofed source shows up as a "device".
  EXPECT_EQ(scanner.devices().count(MacAddress::paper_fake_address()), 0u);
  EXPECT_EQ(scanner.devices().count(kAttackerMac), 0u);
}

TEST(Scanner, DiscoveryCallbackFiresOncePerDevice) {
  Rig rig;
  MonitorHub hub(rig.attacker->station());
  DeviceScanner scanner(hub, rig.attacker->radio(), {kAttackerMac});
  int discoveries = 0;
  scanner.set_on_discovery(
      [&discoveries](const DiscoveredDevice&) { ++discoveries; });
  for (int i = 0; i < 5; ++i) {
    rig.victim->station().transmit_now(
        frames::make_null_function(kAttackerMac, kVictimMac,
                                   std::uint16_t(i)),
        phy::kOfdm24);
    rig.sim.run_for(milliseconds(2));
  }
  EXPECT_EQ(discoveries, 1);
}

TEST(Scanner, VendorResolvedThroughOuiDatabase) {
  Rig rig;
  Rng mac_rng(4);
  const MacAddress apple = scenario::OuiDatabase::instance().make_address(
      "Apple", mac_rng);
  sim::RadioConfig rc;
  rc.position = {3, 3};
  Device& dev = rig.sim.add_device({.name = "iphone"}, apple, rc);

  MonitorHub hub(rig.attacker->station());
  DeviceScanner scanner(hub, rig.attacker->radio(), {kAttackerMac});
  dev.station().transmit_now(
      frames::make_null_function(kAttackerMac, apple, 1), phy::kOfdm24);
  rig.sim.run_for(milliseconds(2));

  ASSERT_TRUE(scanner.devices().count(apple));
  EXPECT_EQ(scanner.devices().at(apple).vendor, "Apple");
}

// --- AckSniffer attribution ---------------------------------------------------------

TEST(AckSniffer, AttributesAcksToRecentInjection) {
  Rig rig;
  sim::RadioConfig rc;
  rc.position = {6, 2};
  Device& victim2 = rig.sim.add_device({.name = "victim2"}, kVictim2Mac, rc);
  (void)victim2;

  MonitorHub hub(rig.attacker->station());
  AckSniffer sniffer(hub, rig.attacker->radio(),
                     MacAddress::paper_fake_address());
  FakeFrameInjector injector(*rig.attacker);

  injector.inject_one(kVictimMac);
  sniffer.note_injection(kVictimMac);
  rig.sim.run_for(milliseconds(5));
  injector.inject_one(kVictim2Mac);
  sniffer.note_injection(kVictim2Mac);
  rig.sim.run_for(milliseconds(5));

  EXPECT_EQ(sniffer.count_from(kVictimMac), 1u);
  EXPECT_EQ(sniffer.count_from(kVictim2Mac), 1u);
  EXPECT_EQ(sniffer.total(), 2u);
}

TEST(AckSniffer, IgnoresAcksToOtherReceivers) {
  Rig rig;
  MonitorHub hub(rig.attacker->station());
  AckSniffer sniffer(hub, rig.attacker->radio(),
                     MacAddress::paper_fake_address());
  // A third-party exchange: victim ACKs someone who is not our spoof.
  const MacAddress other{9, 9, 9, 9, 9, 9};
  rig.victim->station().transmit_now(frames::make_ack(other), phy::kOfdm24);
  rig.sim.run_for(milliseconds(2));
  EXPECT_EQ(sniffer.total(), 0u);
}

// --- Vendor statistics ----------------------------------------------------------------

TEST(VendorStats, TallyAndTopWithOthers) {
  std::unordered_map<MacAddress, DiscoveredDevice> devices;
  auto add = [&](std::uint8_t i, const char* vendor, bool ap) {
    DiscoveredDevice d;
    d.mac = MacAddress{0, 0, 0, 0, 0, i};
    d.vendor = vendor;
    d.is_ap = ap;
    devices[d.mac] = d;
  };
  add(1, "Apple", false);
  add(2, "Apple", false);
  add(3, "Apple", false);
  add(4, "Google", false);
  add(5, "Google", false);
  add(6, "ecobee", false);
  add(7, "Hitron", true);  // AP — excluded from the client tally

  const auto table = tally_vendors(devices, /*aps=*/false);
  EXPECT_EQ(table.total, 6u);
  EXPECT_EQ(table.distinct_vendors, 3u);
  EXPECT_EQ(table.rows[0].vendor, "Apple");
  EXPECT_EQ(table.rows[0].devices, 3u);

  const auto top = table.top_with_others(2);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[2].vendor, "Others");
  EXPECT_EQ(top[2].devices, 1u);  // ecobee folded in
}

TEST(VendorStats, PrintsPaperLayout) {
  std::unordered_map<MacAddress, DiscoveredDevice> devices;
  DiscoveredDevice d;
  d.mac = MacAddress{0, 0, 0, 0, 0, 1};
  d.vendor = "Apple";
  devices[d.mac] = d;
  const auto clients = tally_vendors(devices, false);
  const auto aps = tally_vendors(devices, true);
  std::ostringstream os;
  print_table2(os, clients, aps);
  EXPECT_NE(os.str().find("WiFi Client Device"), std::string::npos);
  EXPECT_NE(os.str().find("Apple"), std::string::npos);
  EXPECT_NE(os.str().find("Total"), std::string::npos);
}

// --- RTS variant through the toolkit ----------------------------------------------------

TEST(Injector, RtsStreamElicitsCtsStream) {
  Rig rig;
  FakeFrameInjector injector(*rig.attacker, {.use_rts = true});
  injector.start_stream(kVictimMac, 100.0);
  rig.sim.run_for(seconds(1));
  injector.stop_all();
  EXPECT_GT(rig.victim->station().stats().cts_sent, 80u);
  EXPECT_EQ(rig.victim->station().stats().acks_sent, 0u);
}

}  // namespace
}  // namespace politewifi::core
