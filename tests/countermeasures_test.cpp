// Scenario tests for the later-added machinery: MAC rotation as a
// sensing countermeasure, hidden-terminal protection via the RTS/CTS
// initiator, and spectrogram-domain activity signatures.
#include <gtest/gtest.h>

#include "core/csi_collector.h"
#include "core/injector.h"
#include "defense/mac_rotation.h"
#include "scenario/sensing_scene.h"
#include "sensing/fft.h"
#include "sensing/series.h"
#include "sim/network.h"

namespace politewifi {
namespace {

using sim::Device;
using sim::Simulation;

// --- MAC rotation -----------------------------------------------------------------

TEST(MacRotation, RotatesWhileUnassociatedAndBreaksTheStream) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 140});
  sim::RadioConfig rc;
  rc.position = {4, 0};
  Device& victim = sim.add_device(
      {.name = "phone"}, {0x3c, 0x28, 0x6d, 1, 2, 3}, rc);
  sim::RadioConfig rig;
  Device& attacker = sim.add_device(
      {.name = "attacker", .kind = sim::DeviceKind::kAttacker},
      {0x02, 0xde, 0xad, 0xbe, 0xef, 0x01}, rig);

  defense::MacRotation rotation(sim.scheduler(), victim,
                                {.interval = seconds(5), .seed = 3});
  rotation.start();

  // Attacker locks onto the address it saw at t=0 and streams at it.
  const MacAddress original = victim.address();
  core::FakeFrameInjector injector(attacker);
  injector.start_stream(original, 100.0);

  sim.run_for(seconds(4));
  const auto acks_before_rotation = victim.station().stats().acks_sent;
  EXPECT_GT(acks_before_rotation, 300u);  // stream lands while MAC matches

  sim.run_for(seconds(10));  // two rotations later...
  injector.stop_all();
  const auto acks_after = victim.station().stats().acks_sent;

  EXPECT_GE(rotation.stats().rotations, 2u);
  EXPECT_NE(victim.address(), original);
  EXPECT_TRUE(victim.address().locally_administered());
  // ...the stream to the stale address elicits (almost) nothing: only
  // the frames that landed before the first rotation are ACKed.
  EXPECT_LT(acks_after - acks_before_rotation, 150u);
}

TEST(MacRotation, HoldsStillWhileAssociated) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 141});
  mac::ApConfig apc;
  apc.fast_keys = true;
  sim.add_ap("ap", {0xf2, 0x6e, 0x0b, 1, 2, 3}, {0, 0}, apc);
  mac::ClientConfig cc;
  cc.fast_keys = true;
  Device& client = sim.add_client("phone", {0x3c, 0x28, 0x6d, 9, 9, 9},
                                  {4, 0}, cc);
  sim.establish(client, seconds(10));
  const MacAddress stable = client.address();

  defense::MacRotation rotation(sim.scheduler(), client,
                                {.interval = seconds(2), .seed = 4});
  rotation.start();
  sim.run_for(seconds(10));

  EXPECT_EQ(client.address(), stable);  // never rotated mid-association
  EXPECT_EQ(rotation.stats().rotations, 0u);
  EXPECT_GE(rotation.stats().skipped_while_associated, 4u);
  EXPECT_TRUE(client.client()->established());
}

TEST(MacRotation, KeepOuiPreservesVendorPrefix) {
  Simulation sim({.seed = 142});
  sim::RadioConfig rc;
  Device& victim = sim.add_device(
      {.name = "phone"}, {0xf0, 0x18, 0x98, 1, 2, 3}, rc);  // Apple OUI
  defense::MacRotation rotation(sim.scheduler(), victim,
                                {.interval = seconds(1), .keep_oui = true,
                                 .seed = 5});
  rotation.start();
  sim.run_for(seconds(3));
  EXPECT_GE(rotation.stats().rotations, 2u);
  EXPECT_EQ(victim.address().oui(), 0xf01898u);
  EXPECT_NE(victim.address()[5], 3);  // NIC bits actually changed (seeded)
}

// --- Hidden terminal --------------------------------------------------------------

TEST(HiddenTerminal, RtsCtsRescuesThroughput) {
  // Classic topology: A and C both talk to B in the middle; A and C are
  // out of carrier-sense range of each other. Without RTS/CTS their data
  // frames collide at B; with it, the CTS from B silences the far side.
  struct Outcome {
    int delivered = 0;
    std::size_t data_frames_on_air = 0;  // includes collided retries
  };
  auto run_case = [](bool use_rts) {
    sim::SimulationConfig scfg;
    scfg.seed = 150;
    scfg.medium.shadowing_sigma_db = 0.0;
    scfg.medium.model_frame_errors = false;
    Simulation sim(scfg);

    mac::MacConfig mc;
    if (use_rts) mc.rts_threshold = 100;
    mc.retry_limit = 7;

    sim::RadioConfig a_rc;
    a_rc.position = {0, 0};
    Device& a = sim.add_device({.name = "A"}, {1, 1, 1, 1, 1, 1}, a_rc, mc);
    sim::RadioConfig b_rc;
    b_rc.position = {120, 0};  // hears both
    Device& b = sim.add_device({.name = "B"}, {2, 2, 2, 2, 2, 2}, b_rc);
    (void)b;
    sim::RadioConfig c_rc;
    c_rc.position = {240, 0};  // cannot hear A's data (480 m apart... no:
                               // 240 m from A — beyond CS at these powers)
    Device& c = sim.add_device({.name = "C"}, {3, 3, 3, 3, 3, 3}, c_rc, mc);

    std::size_t data_on_air = 0;
    sim.medium().set_trace_sink([&](const sim::TransmissionEvent& ev) {
      const auto r = frames::deserialize(ev.ppdu.bytes());
      if (r.frame && r.frame->fc.is_data()) ++data_on_air;
    });

    // Both bombard B with large frames simultaneously.
    int a_ok = 0, c_ok = 0;
    for (int i = 0; i < 30; ++i) {
      a.station().send(
          frames::make_data_to_ds({2, 2, 2, 2, 2, 2}, {1, 1, 1, 1, 1, 1},
                                  {2, 2, 2, 2, 2, 2}, Bytes(600, 1),
                                  a.station().next_sequence()),
          phy::kOfdm6, [&a_ok](const mac::TxResult& r) { a_ok += r.acked; });
      c.station().send(
          frames::make_data_to_ds({2, 2, 2, 2, 2, 2}, {3, 3, 3, 3, 3, 3},
                                  {2, 2, 2, 2, 2, 2}, Bytes(600, 1),
                                  c.station().next_sequence()),
          phy::kOfdm6, [&c_ok](const mac::TxResult& r) { c_ok += r.acked; });
      sim.run_for(milliseconds(40));
    }
    sim.run_for(seconds(1));
    return Outcome{a_ok + c_ok, data_on_air};
  };

  const Outcome without = run_case(false);
  const Outcome with = run_case(true);
  // Retries eventually deliver everything either way; what RTS/CTS buys
  // under hidden contention is *airtime*: collisions burn a 20-octet RTS
  // instead of a 600-octet data frame, so far fewer data PPDUs fly.
  EXPECT_GE(without.delivered, 50);
  EXPECT_GE(with.delivered, 50);
  EXPECT_GT(without.data_frames_on_air, 70u);   // collision-driven retries
  EXPECT_LT(with.data_frames_on_air,
            without.data_frames_on_air * 3 / 4);
}

// --- Spectrogram-domain activity signature -----------------------------------------

TEST(Spectrogram, WalkingShowsBodyBandEnergyBurst) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 151});
  sim::RadioConfig rc;
  rc.position = {5, 0};
  Device& victim = sim.add_device(
      {.name = "tv"}, {0x8c, 0x77, 0x12, 7, 7, 7}, rc);
  sim::RadioConfig rig;
  rig.capture_csi = true;
  Device& sensor = sim.add_device(
      {.name = "hub", .kind = sim::DeviceKind::kSniffer},
      {0x02, 0x0a, 0xc4, 7, 7, 7}, rig);

  scenario::BodyMotionModel model({.seed = 66});
  model.add_phase(scenario::Activity::kStill, seconds(8));
  model.add_phase(scenario::Activity::kWalking, seconds(6));
  model.add_phase(scenario::Activity::kStill, seconds(8));
  scenario::install_body_csi(sim.medium(), victim.radio(), sensor.radio(),
                             &model, sim.now());

  core::CsiCollector collector(sensor, victim.address());
  collector.start(128.0);
  sim.run_for(seconds(22));
  collector.stop();

  const int sc = sensing::select_best_subcarrier(collector.samples());
  const auto series =
      sensing::resample_amplitude(collector.samples(), sc, 128.0);
  const auto spec = sensing::stft(series.v, 128.0, 256, 64);
  ASSERT_GT(spec.num_frames(), 20u);

  // Body motion lands in the 1-40 Hz band; compare the walking window
  // against the still windows.
  const auto energy = spec.band_energy(1.0, 40.0);
  auto mean_between = [&](double t0, double t1) {
    double sum = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < energy.size(); ++i) {
      const double t = double(i) * spec.frame_interval_s;
      if (t >= t0 && t < t1) {
        sum += energy[i];
        ++n;
      }
    }
    return n > 0 ? sum / n : 0.0;
  };
  const double still = mean_between(1, 7);
  const double walking = mean_between(9, 13);
  EXPECT_GT(walking, 50.0 * std::max(still, 1e-12));
}

}  // namespace
}  // namespace politewifi
