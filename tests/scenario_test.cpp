// Scenario layer tests: Table 1/2 data, OUI database, city generation,
// body motion physics, typing model and device profiles.
#include <gtest/gtest.h>

#include <set>

#include "scenario/body_motion.h"
#include "scenario/city.h"
#include "scenario/device_profiles.h"
#include "scenario/oui_db.h"
#include "scenario/typing_model.h"

namespace politewifi::scenario {
namespace {

// --- Device profiles (Table 1) ----------------------------------------------------

TEST(DeviceProfiles, Table1MatchesPaper) {
  const auto devices = table1_devices();
  ASSERT_EQ(devices.size(), 5u);
  EXPECT_EQ(devices[0].device_name, "MSI GE62 laptop");
  EXPECT_EQ(devices[0].wifi_module, "Intel AC 3160");
  EXPECT_EQ(devices[1].wifi_module, "Atheros");
  EXPECT_EQ(devices[1].standard, "11n");
  EXPECT_EQ(devices[2].wifi_module, "Marvel 88W8897");
  EXPECT_EQ(devices[3].wifi_module, "Murata KM5D18098");
  EXPECT_EQ(devices[4].wifi_module, "Qualcomm IPQ 4019");
  EXPECT_TRUE(devices[4].is_access_point);
}

TEST(DeviceProfiles, Esp8266IsLowPower) {
  const auto esp = esp8266();
  EXPECT_NEAR(esp.power.sleep_mw, 10.0, 1e-9);   // the Figure 6 baseline
  EXPECT_NEAR(esp.power.idle_mw, 230.0, 1e-9);   // the awake plateau
  EXPECT_EQ(esp.band, phy::Band::k2_4GHz);
}

TEST(DeviceProfiles, CameraSpecs) {
  EXPECT_NEAR(logitech_circle2().battery_mwh, 2400.0, 1e-9);
  EXPECT_NEAR(blink_xt2().battery_mwh, 6000.0, 1e-9);
}

// --- Table 2 census -----------------------------------------------------------------

TEST(Table2, NamedVendorCountsMatchPaper) {
  const auto clients = table2_named_client_vendors();
  ASSERT_EQ(clients.size(), 20u);
  EXPECT_EQ(clients[0].vendor, "Apple");
  EXPECT_EQ(clients[0].count, 143);
  EXPECT_EQ(clients[6].vendor, "Espressif");
  EXPECT_EQ(clients[6].count, 47);  // the §4.2 motivation

  const auto aps = table2_named_ap_vendors();
  ASSERT_EQ(aps.size(), 20u);
  EXPECT_EQ(aps[0].vendor, "Hitron");
  EXPECT_EQ(aps[0].count, 723);
}

TEST(Table2, FullCensusTotalsMatchPaper) {
  const auto clients = table2_full_client_census();
  const auto aps = table2_full_ap_census();
  int client_total = 0, ap_total = 0;
  for (const auto& vc : clients) client_total += vc.count;
  for (const auto& vc : aps) ap_total += vc.count;
  EXPECT_EQ(client_total, 1523);  // paper: 1,523 client devices
  EXPECT_EQ(ap_total, 3805);      // paper: 3,805 access points
  EXPECT_EQ(clients.size(), 147u);  // paper: 147 client vendors
  EXPECT_EQ(aps.size(), 94u);       // paper: 94 AP vendors
}

TEST(Table2, DistinctVendorsAcrossBothIs186) {
  std::set<std::string> vendors;
  for (const auto& vc : table2_full_client_census()) vendors.insert(vc.vendor);
  for (const auto& vc : table2_full_ap_census()) vendors.insert(vc.vendor);
  EXPECT_EQ(vendors.size(), 186u);  // paper: 186 vendors in total
}

TEST(Table2, EveryVendorHasAtLeastOneDevice) {
  for (const auto& vc : table2_full_client_census()) EXPECT_GE(vc.count, 1);
  for (const auto& vc : table2_full_ap_census()) EXPECT_GE(vc.count, 1);
}

// --- OUI database ----------------------------------------------------------------------

TEST(OuiDatabase, RoundTripVendorToMacToVendor) {
  const auto& db = OuiDatabase::instance();
  Rng rng(1);
  for (const char* vendor : {"Apple", "Espressif", "Hitron", "TailS-AA"}) {
    const MacAddress mac = db.make_address(vendor, rng);
    const auto back = db.vendor_of(mac);
    ASSERT_TRUE(back.has_value()) << vendor;
    EXPECT_EQ(*back, vendor);
  }
}

TEST(OuiDatabase, CoversWholeCensus) {
  const auto& db = OuiDatabase::instance();
  for (const auto& vc : table2_full_client_census()) {
    EXPECT_TRUE(db.oui_of(vc.vendor).has_value()) << vc.vendor;
  }
  for (const auto& vc : table2_full_ap_census()) {
    EXPECT_TRUE(db.oui_of(vc.vendor).has_value()) << vc.vendor;
  }
}

TEST(OuiDatabase, NoOuiCollisions) {
  const auto& db = OuiDatabase::instance();
  std::set<std::uint32_t> ouis;
  for (const auto& vendor : db.vendors()) {
    const auto oui = db.oui_of(vendor);
    ASSERT_TRUE(oui.has_value());
    EXPECT_TRUE(ouis.insert(*oui).second) << "collision for " << vendor;
  }
}

TEST(OuiDatabase, UnknownAndLocalAddressesHaveNoVendor) {
  const auto& db = OuiDatabase::instance();
  EXPECT_FALSE(db.vendor_of(MacAddress{0x02, 0, 0, 0, 0, 1}).has_value());
  EXPECT_FALSE(db.vendor_of(MacAddress::broadcast()).has_value());
}

// --- City plan ----------------------------------------------------------------------------

TEST(CityPlan, FullScaleMatchesPaperPopulation) {
  CityConfig cfg;
  cfg.seed = 1;
  const CityPlan plan(CityPlan::grid_route(6, 500), cfg);
  EXPECT_EQ(plan.ap_count(), 3805u);
  EXPECT_EQ(plan.client_count(), 1523u);
  EXPECT_EQ(plan.devices().size(), 5328u);  // the paper's 5,328 nodes
}

TEST(CityPlan, ScaledDownKeepsEveryVendor) {
  CityConfig cfg;
  cfg.scale = 0.01;
  const CityPlan plan(CityPlan::grid_route(2, 400), cfg);
  std::set<std::string> vendors;
  for (const auto& d : plan.devices()) vendors.insert(d.vendor);
  EXPECT_EQ(vendors.size(), 186u);  // min 1 device per vendor
  EXPECT_LT(plan.devices().size(), 400u);
}

TEST(CityPlan, UniqueMacs) {
  CityConfig cfg;
  cfg.scale = 0.05;
  const CityPlan plan(CityPlan::grid_route(2, 400), cfg);
  std::set<MacAddress> macs;
  for (const auto& d : plan.devices()) {
    EXPECT_TRUE(macs.insert(d.mac).second) << "duplicate " << d.mac.to_string();
  }
}

TEST(CityPlan, ClientsAttachToNearbyAps) {
  CityConfig cfg;
  cfg.scale = 0.1;
  cfg.seed = 3;
  const CityPlan plan(CityPlan::grid_route(3, 400), cfg);
  std::size_t attached = 0;
  for (const auto& d : plan.devices()) {
    if (d.is_ap || d.home_ap.is_zero()) continue;
    ++attached;
    // The home AP must exist and be within attach range.
    bool found = false;
    for (const auto& ap : plan.devices()) {
      if (ap.mac == d.home_ap) {
        found = true;
        EXPECT_TRUE(ap.is_ap);
        EXPECT_LE(distance(ap.position, d.position),
                  cfg.client_attach_range_m + 1e-9);
      }
    }
    EXPECT_TRUE(found);
  }
  EXPECT_GT(attached, 0u);
}

TEST(CityPlan, DevicesStayNearRoute) {
  CityConfig cfg;
  cfg.scale = 0.05;
  cfg.max_offset_m = 80.0;
  const CityPlan plan(CityPlan::grid_route(2, 500), cfg);
  for (const auto& d : plan.devices()) {
    // Crude check: within the route's bounding box inflated by the offset.
    EXPECT_GE(d.position.x, -85.0);
    EXPECT_LE(d.position.x, 1085.0);
  }
}

TEST(CityPlan, GridRouteLength) {
  const auto route = CityPlan::grid_route(2, 100);
  const CityPlan plan(route, {.scale = 0.01});
  // 3 horizontal sweeps of 200 m + 2 vertical hops of 100 m.
  EXPECT_NEAR(plan.route_length_m(), 800.0, 1e-9);
}

// --- Typing model ------------------------------------------------------------------------

TEST(TypingModel, KeyRows) {
  EXPECT_EQ(key_row(' '), 0);
  EXPECT_EQ(key_row('z'), 1);
  EXPECT_EQ(key_row('a'), 2);
  EXPECT_EQ(key_row('q'), 3);
  EXPECT_EQ(key_row('7'), 4);
  EXPECT_EQ(key_row('A'), 2);  // case-insensitive
}

TEST(TypingModel, DepthOrderingByReach) {
  // Space involves the most tissue motion; home row the least.
  EXPECT_GT(keystroke_depth_m(' '), keystroke_depth_m('5'));
  EXPECT_GT(keystroke_depth_m('5'), keystroke_depth_m('q'));
  EXPECT_GT(keystroke_depth_m('q'), keystroke_depth_m('z'));
  EXPECT_GT(keystroke_depth_m('z'), keystroke_depth_m('f'));
}

TEST(TypingModel, GeneratesMonotoneTimesAtRoughlyTheRequestedRate) {
  const auto strokes =
      TypingModel::generate("hello world this is a test", {.words_per_minute = 40});
  ASSERT_EQ(strokes.size(), 26u);
  for (std::size_t i = 1; i < strokes.size(); ++i) {
    EXPECT_GT(strokes[i].at, strokes[i - 1].at);
  }
  // 40 wpm = 200 chars/min: 26 chars in roughly 6-14 s.
  const double span = to_seconds(strokes.back().at);
  EXPECT_GT(span, 5.0);
  EXPECT_LT(span, 16.0);
}

TEST(TypingModel, DeterministicPerSeed) {
  const auto a = TypingModel::generate("abc", {.seed = 5});
  const auto b = TypingModel::generate("abc", {.seed = 5});
  EXPECT_EQ(a, b);
}

// --- Body motion --------------------------------------------------------------------------

TEST(BodyMotion, PhaseLookup) {
  BodyMotionModel model;
  model.add_phase(Activity::kStill, seconds(5));
  model.add_phase(Activity::kTyping, seconds(10));
  EXPECT_EQ(model.activity_at(seconds(2)), Activity::kStill);
  EXPECT_EQ(model.activity_at(seconds(7)), Activity::kTyping);
  EXPECT_EQ(model.activity_at(seconds(99)), Activity::kAbsent);
  EXPECT_EQ(model.total_duration(), seconds(15));
}

TEST(BodyMotion, AbsentMeansNoDynamicPaths) {
  BodyMotionModel model;
  model.add_phase(Activity::kAbsent, seconds(5));
  EXPECT_TRUE(model.paths_at(seconds(1)).empty());
}

TEST(BodyMotion, PresentActivitiesAddScattererPaths) {
  BodyMotionModel model;
  model.add_phase(Activity::kHold, seconds(5));
  const auto paths = model.paths_at(seconds(1));
  ASSERT_EQ(paths.size(), 2u);  // hand + torso
  EXPECT_GT(paths[0].delay_ns, 0.0);
  EXPECT_GT(paths[0].amplitude, 0.0);
  EXPECT_LT(paths[0].amplitude, 1.0);
}

TEST(BodyMotion, PickupSweepsPathLength) {
  BodyMotionModel model;
  model.add_phase(Activity::kPickup, seconds(4));
  const double d0 = model.paths_at(milliseconds(100))[0].delay_ns;
  const double d1 = model.paths_at(milliseconds(3900))[0].delay_ns;
  // ~0.9 m sweep = ~3 ns of excess delay.
  EXPECT_GT(d1 - d0, 2.0);
}

TEST(BodyMotion, HoldIsMillimetreScale) {
  BodyMotionModel model;
  model.add_phase(Activity::kHold, seconds(10));
  double lo = 1e9, hi = -1e9;
  for (int ms = 0; ms < 10000; ms += 50) {
    const double d = model.paths_at(milliseconds(ms))[0].delay_ns;
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  // Sub-centimetre: well under 0.1 ns of delay spread.
  EXPECT_LT(hi - lo, 0.1);
  EXPECT_GT(hi - lo, 0.0);
}

TEST(BodyMotion, TypingAddsKeystrokeBumps) {
  BodyMotionModel model;
  model.add_phase(Activity::kTyping, seconds(10));
  model.set_keystrokes({{seconds(5), 'q'}});
  const double at_stroke = model.paths_at(seconds(5))[0].delay_ns;
  const double far_away = model.paths_at(seconds(2))[0].delay_ns;
  // The bump adds keystroke_depth_m('q') / 0.3 m/ns ~ 0.09 ns.
  EXPECT_GT(at_stroke - far_away, 0.05);
}

TEST(BodyMotion, BreathingIsPeriodicAtConfiguredRate) {
  BodyMotionModel model({.breathing_bpm = 12.0, .seed = 42});
  model.add_phase(Activity::kBreathing, seconds(60));
  // Sample the torso path delay; its dominant period must be 5 s.
  std::vector<double> samples;
  for (int i = 0; i < 600; ++i) {
    samples.push_back(model.paths_at(milliseconds(i * 100))[1].delay_ns);
  }
  // Count mean crossings: 12 bpm over 60 s = 12 cycles = 24 crossings.
  double m = 0.0;
  for (const double s : samples) m += s;
  m /= double(samples.size());
  int crossings = 0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if ((samples[i - 1] < m) != (samples[i] < m)) ++crossings;
  }
  EXPECT_NEAR(crossings, 24, 3);
}

TEST(BodyMotion, GroundTruthPhasesExposed) {
  BodyMotionModel model;
  model.add_phase(Activity::kStill, seconds(3));
  model.add_phase(Activity::kWalking, seconds(4));
  const auto& phases = model.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[1].activity, Activity::kWalking);
  EXPECT_EQ(phases[1].start, seconds(3));
  EXPECT_EQ(phases[1].end, seconds(7));
}

}  // namespace
}  // namespace politewifi::scenario
