// Tests for the FFT/STFT machinery and gesture recognition — both as
// units (synthetic signals) and end-to-end through elicited-ACK CSI.
#include <gtest/gtest.h>

#include <cmath>

#include "core/csi_collector.h"
#include "scenario/sensing_scene.h"
#include "sensing/fft.h"
#include "sensing/gesture.h"
#include "sim/network.h"

namespace politewifi::sensing {
namespace {

// --- FFT --------------------------------------------------------------------

TEST(Fft, ForwardInverseRoundTrip) {
  Rng rng(1);
  std::vector<std::complex<double>> x(256);
  for (auto& v : x) v = {rng.gaussian(), rng.gaussian()};
  const auto original = x;
  fft(x);
  fft(x, /*inverse=*/true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(x[i].imag(), original[i].imag(), 1e-9);
  }
}

TEST(Fft, DeltaHasFlatSpectrum) {
  std::vector<std::complex<double>> x(64, 0.0);
  x[0] = 1.0;
  fft(x);
  for (const auto& v : x) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(Fft, PureToneLandsInOneBin) {
  const std::size_t n = 512;
  const double fs = 128.0;
  const double f0 = 16.0;  // exactly bin 64
  std::vector<std::complex<double>> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::cos(2.0 * M_PI * f0 * double(i) / fs);
  }
  fft(x);
  const std::size_t expected_bin = std::size_t(f0 * double(n) / fs);
  // The tone's energy concentrates at the expected bin (and its mirror).
  double max_mag = 0.0;
  std::size_t max_bin = 0;
  for (std::size_t k = 0; k < n / 2; ++k) {
    if (std::abs(x[k]) > max_mag) {
      max_mag = std::abs(x[k]);
      max_bin = k;
    }
  }
  EXPECT_EQ(max_bin, expected_bin);
  EXPECT_NEAR(max_mag, double(n) / 2.0, 1e-6);
}

TEST(Fft, ParsevalHolds) {
  Rng rng(2);
  std::vector<std::complex<double>> x(128);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = rng.gaussian();
    time_energy += std::norm(v);
  }
  fft(x);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / double(x.size()), time_energy, 1e-6);
}

TEST(Fft, MagnitudeSpectrumPadsNonPow2) {
  std::vector<double> x(100, 1.0);
  const auto mag = magnitude_spectrum(x);
  EXPECT_EQ(mag.size(), 128u / 2u + 1u);
  // DC bin carries all the energy of a constant.
  EXPECT_GT(mag[0], mag[1]);
}

// --- STFT -----------------------------------------------------------------------

TEST(Stft, LocalizesAToneBurstInTime) {
  const double fs = 100.0;
  std::vector<double> x(std::size_t(10 * fs), 0.0);
  // A 5 Hz burst from t=4 s to t=6 s.
  for (std::size_t i = std::size_t(4 * fs); i < std::size_t(6 * fs); ++i) {
    x[i] = std::sin(2.0 * M_PI * 5.0 * double(i) / fs);
  }
  const auto spec = stft(x, fs, 128, 32);
  ASSERT_GT(spec.num_frames(), 10u);

  const auto energy = spec.band_energy(3.0, 8.0);
  // Peak energy frame must fall inside the burst.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < energy.size(); ++i) {
    if (energy[i] > energy[peak]) peak = i;
  }
  const double peak_t = double(peak) * spec.frame_interval_s;
  EXPECT_GT(peak_t, 3.5);
  EXPECT_LT(peak_t, 6.5);
  // Quiet frames carry (almost) nothing.
  EXPECT_LT(energy.front(), 0.01 * energy[peak]);
}

TEST(Stft, DcRemovedPerWindow) {
  const double fs = 50.0;
  std::vector<double> x(500, 42.0);  // big DC, no signal
  const auto spec = stft(x, fs, 64, 32);
  for (const auto& frame : spec.frames) {
    for (const double m : frame) EXPECT_LT(m, 1e-9);
  }
}

// --- Gesture classification (unit: synthetic motion envelopes) --------------------

TimeSeries synth_gesture(bool wave, double fs, Rng& rng) {
  // Emulate the CSI amplitude a gesture produces: baseline + churn whose
  // envelope follows the gesture's motion rate.
  const double dur = wave ? 1.5 : 1.2;
  TimeSeries ts;
  ts.dt_s = 1.0 / fs;
  const std::size_t n = std::size_t(dur * fs);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = double(i) / fs;
    const double p = double(i) / double(n);
    double rate;  // instantaneous motion rate
    if (wave) {
      rate = std::sin(M_PI * p) *
             std::abs(std::cos(2.0 * M_PI * 2.0 * t));
    } else {
      rate = std::abs(std::cos(M_PI * p)) * std::sin(M_PI * p);
    }
    // Churn: noise scaled by the motion rate.
    ts.v.push_back(2.0 + 0.5 * rate * rng.gaussian());
  }
  return ts;
}

TEST(Gesture, ClassifiesSyntheticPushAndWave) {
  Rng rng(7);
  GestureClassifier classifier;
  int push_hits = 0, wave_hits = 0;
  for (int trial = 0; trial < 10; ++trial) {
    if (classifier.classify(synth_gesture(false, 150.0, rng)) ==
        Gesture::kPush) {
      ++push_hits;
    }
    if (classifier.classify(synth_gesture(true, 150.0, rng)) ==
        Gesture::kWave) {
      ++wave_hits;
    }
  }
  // The crude synthetic generator (pure rate-modulated noise, no
  // multipath physics) is harder than the real signal — a solid majority
  // is the right bar here; the end-to-end test below holds the full bar.
  EXPECT_GE(push_hits, 6);
  EXPECT_GE(wave_hits, 7);
}

TEST(Gesture, TemplatesAreDistinct) {
  GestureClassifier classifier;
  const auto push_t = classifier.make_template(Gesture::kPush, 100.0);
  const auto wave_t = classifier.make_template(Gesture::kWave, 100.0);
  ASSERT_FALSE(push_t.empty());
  ASSERT_FALSE(wave_t.empty());
  EXPECT_GT(dtw_distance(push_t, wave_t, 30), 5.0);
}

// --- Gesture recognition end-to-end through ACK CSI ---------------------------------

TEST(Gesture, EndToEndThroughElicitedAcks) {
  sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 95});
  sim::RadioConfig rc;
  rc.position = {5, 0};
  sim::Device& victim = sim.add_device(
      {.name = "tv"}, {0x8c, 0x77, 0x12, 9, 9, 9}, rc);
  sim::RadioConfig rig;
  rig.position = {0, 0};
  rig.capture_csi = true;
  sim::Device& sensor = sim.add_device(
      {.name = "hub", .kind = sim::DeviceKind::kSniffer},
      {0x02, 0x0a, 0xc4, 8, 8, 8}, rig);

  // still, push, still, wave, still.
  scenario::BodyMotionModel model({.seed = 33});
  model.add_phase(scenario::Activity::kStill, seconds(4));
  model.add_phase(scenario::Activity::kGesturePush, milliseconds(1200));
  model.add_phase(scenario::Activity::kStill, seconds(4));
  model.add_phase(scenario::Activity::kGestureWave, milliseconds(1500));
  model.add_phase(scenario::Activity::kStill, seconds(4));

  scenario::install_body_csi(sim.medium(), victim.radio(), sensor.radio(),
                             &model, sim.now());

  core::CsiCollector collector(sensor, victim.address());
  collector.start(150.0);
  sim.run_for(model.total_duration());
  collector.stop();

  const int sc = select_best_subcarrier(collector.samples());
  const auto series = resample_amplitude(collector.samples(), sc, 150.0);

  GestureClassifier classifier;
  const auto detections = classifier.detect(series);
  ASSERT_EQ(detections.size(), 2u);
  EXPECT_EQ(detections[0].gesture, Gesture::kPush);
  EXPECT_NEAR(detections[0].start_s - series.t0_s, 4.0, 1.0);
  EXPECT_EQ(detections[1].gesture, Gesture::kWave);
  EXPECT_NEAR(detections[1].start_s - series.t0_s, 9.2, 1.0);
}

}  // namespace
}  // namespace politewifi::sensing
