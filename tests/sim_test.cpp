// Simulator substrate tests: scheduler ordering/cancellation, energy
// accounting, medium propagation/carrier-sense/collisions, trace capture
// and mobility.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "sim/mobility.h"
#include "sim/network.h"

namespace politewifi::sim {
namespace {

// --- Scheduler ------------------------------------------------------------------

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_in(milliseconds(30), [&] { order.push_back(3); });
  s.schedule_in(milliseconds(10), [&] { order.push_back(1); });
  s.schedule_in(milliseconds(20), [&] { order.push_back(2); });
  s.run_until(kSimStart + milliseconds(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, SimultaneousEventsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_in(milliseconds(10), [&order, i] { order.push_back(i); });
  }
  s.run_for(milliseconds(20));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const auto id = s.schedule_in(milliseconds(10), [&] { fired = true; });
  s.cancel(id);
  s.run_for(milliseconds(50));
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelUnknownIdIsNoop) {
  Scheduler s;
  s.cancel(9999);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) s.schedule_in(milliseconds(1), chain);
  };
  s.schedule_in(milliseconds(1), chain);
  s.run_for(milliseconds(100));
  EXPECT_EQ(count, 5);
}

TEST(Scheduler, RunUntilAdvancesClockEvenWhenIdle) {
  Scheduler s;
  s.run_until(kSimStart + seconds(3));
  EXPECT_EQ(s.now(), kSimStart + seconds(3));
}

TEST(Scheduler, PastEventsClampToNow) {
  Scheduler s;
  s.run_until(kSimStart + seconds(1));
  bool fired = false;
  s.schedule_at(kSimStart, [&] { fired = true; });  // in the past
  s.run_for(milliseconds(1));
  EXPECT_TRUE(fired);
}

// --- Energy model ------------------------------------------------------------------

TEST(EnergyMeter, IntegratesStateDwellTimes) {
  const PowerProfile esp = PowerProfile::esp8266();
  EnergyMeter meter(esp, kSimStart);
  meter.set_state(RadioState::kSleep, kSimStart);
  meter.set_state(RadioState::kIdle, kSimStart + seconds(8));
  // 8 s sleep @ 10 mW + 2 s idle @ 230 mW = 80 + 460 = 540 mJ.
  EXPECT_NEAR(meter.consumed_mj(kSimStart + seconds(10)), 540.0, 1e-6);
  EXPECT_NEAR(meter.average_mw(kSimStart + seconds(10)), 54.0, 1e-6);
}

TEST(EnergyMeter, TxRampChargesFixedEnergy) {
  const PowerProfile esp = PowerProfile::esp8266();
  EnergyMeter meter(esp, kSimStart);
  meter.set_state(RadioState::kSleep, kSimStart);
  const double before = meter.consumed_mj(kSimStart + seconds(1));
  meter.charge_tx_ramp();
  const double after = meter.consumed_mj(kSimStart + seconds(1));
  // 230 us at 560 mW = 0.1288 mJ.
  EXPECT_NEAR(after - before, 0.1288, 1e-4);
}

TEST(EnergyMeter, ResetStartsFreshWindow) {
  EnergyMeter meter(PowerProfile::esp8266(), kSimStart);
  meter.set_state(RadioState::kTx, kSimStart);
  meter.reset(kSimStart + seconds(5));
  EXPECT_NEAR(meter.consumed_mj(kSimStart + seconds(5)), 0.0, 1e-9);
  EXPECT_EQ(meter.state(), RadioState::kTx);  // state preserved
}

TEST(EnergyMeter, DwellBookkeeping) {
  // Doze → wake → receive → doze → wake. The zero-length kIdle hops are
  // the legal wake-ups between sleep and active states
  // (radio_transition_legal); they add no dwell.
  EnergyMeter meter(PowerProfile::esp8266(), kSimStart);
  meter.set_state(RadioState::kSleep, kSimStart);
  meter.set_state(RadioState::kIdle, kSimStart + seconds(3));
  meter.set_state(RadioState::kRx, kSimStart + seconds(3));
  meter.set_state(RadioState::kIdle, kSimStart + seconds(4));
  meter.set_state(RadioState::kSleep, kSimStart + seconds(4));
  meter.set_state(RadioState::kIdle, kSimStart + seconds(10));
  EXPECT_EQ(meter.dwell(RadioState::kSleep), seconds(9));
  EXPECT_EQ(meter.dwell(RadioState::kRx), seconds(1));
  EXPECT_EQ(meter.dwell(RadioState::kIdle), seconds(0));
}

TEST(Battery, HoursAtDraw) {
  const Battery circle2{2400.0};
  EXPECT_NEAR(circle2.hours_at(360.0), 6.67, 0.01);
  const Battery xt2{6000.0};
  EXPECT_NEAR(xt2.hours_at(360.0), 16.67, 0.01);
}

// --- Medium -----------------------------------------------------------------------

struct TwoRadios {
  Scheduler scheduler;
  Medium medium;
  Radio a, b;

  explicit TwoRadios(double dist_m = 5.0, MediumConfig cfg = probe_config())
      : medium(scheduler, cfg, 99),
        a(medium, scheduler, {.position = {0, 0}}),
        b(medium, scheduler, {.position = {dist_m, 0}}) {}

  static MediumConfig probe_config() {
    MediumConfig cfg;
    cfg.shadowing_sigma_db = 0.0;
    cfg.model_frame_errors = false;
    return cfg;
  }
};

frames::Frame probe_frame(const MacAddress& to, const MacAddress& from) {
  return frames::make_null_function(to, from, 1);
}

TEST(Medium, DeliversToReceiverInRange) {
  TwoRadios t;
  mac::Station sta_b({.address = {1, 1, 1, 1, 1, 1}}, t.b, Rng(1));
  t.b.set_station(&sta_b);
  t.medium.transmit(t.a, frames::serialize(probe_frame(
                             {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2})),
                    {.rate = phy::kOfdm24, .power_dbm = 15});
  t.scheduler.run_for(milliseconds(1));
  EXPECT_EQ(sta_b.stats().frames_received, 1u);
}

TEST(Medium, RxPowerFollowsPathLoss) {
  TwoRadios t;
  const double p5 = t.medium.rx_power_dbm(t.a, 15.0, t.b);
  t.b.set_position({50.0, 0});
  const double p50 = t.medium.rx_power_dbm(t.a, 15.0, t.b);
  EXPECT_GT(p5, p50);
  EXPECT_NEAR(p5 - p50, 30.0, 0.1);  // decade at n=3
}

TEST(Medium, SleepingRadioMissesFrames) {
  TwoRadios t;
  mac::Station sta_b({.address = {1, 1, 1, 1, 1, 1}}, t.b, Rng(1));
  t.b.set_station(&sta_b);
  t.b.set_sleeping(true);
  t.medium.transmit(t.a, frames::serialize(probe_frame(
                             {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2})),
                    {.rate = phy::kOfdm24, .power_dbm = 15});
  t.scheduler.run_for(milliseconds(1));
  EXPECT_EQ(sta_b.stats().frames_received, 0u);
}

TEST(Medium, CarrierSenseDuringTransmission) {
  TwoRadios t;
  EXPECT_FALSE(t.medium.busy_for(t.b));
  t.medium.transmit(t.a, Bytes(500, 0xAA),
                    {.rate = phy::kOfdm6, .power_dbm = 15});
  EXPECT_TRUE(t.medium.busy_for(t.a));   // own TX, immediately
  t.scheduler.run_for(microseconds(1));  // > the 5 m propagation delay
  EXPECT_TRUE(t.medium.busy_for(t.b));   // mid-air
  t.scheduler.run_for(milliseconds(5));  // well past airtime
  EXPECT_FALSE(t.medium.busy_for(t.b));
}

TEST(Medium, CollisionCorruptsBothWithoutCapture) {
  Scheduler scheduler;
  MediumConfig cfg = TwoRadios::probe_config();
  Medium medium(scheduler, cfg, 1);
  Radio tx1(medium, scheduler, {.position = {0, 0}});
  Radio tx2(medium, scheduler, {.position = {10, 0}});
  Radio rx(medium, scheduler, {.position = {5, 0}});
  mac::Station sta({.address = {1, 1, 1, 1, 1, 1}}, rx, Rng(1));
  rx.set_station(&sta);

  const Bytes f1 = frames::serialize(
      probe_frame({1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2}));
  const Bytes f2 = frames::serialize(
      probe_frame({1, 1, 1, 1, 1, 1}, {3, 3, 3, 3, 3, 3}));
  // Equidistant senders -> equal power -> no capture -> both corrupted.
  medium.transmit(tx1, f1, {.rate = phy::kOfdm24, .power_dbm = 15});
  medium.transmit(tx2, f2, {.rate = phy::kOfdm24, .power_dbm = 15});
  scheduler.run_for(milliseconds(1));
  EXPECT_EQ(sta.stats().frames_received, 0u);
  EXPECT_EQ(sta.stats().fcs_failures, 2u);
}

TEST(Medium, CaptureSurvivesWeakInterferer) {
  Scheduler scheduler;
  MediumConfig cfg = TwoRadios::probe_config();
  Medium medium(scheduler, cfg, 1);
  Radio strong(medium, scheduler, {.position = {1, 0}});
  Radio weak(medium, scheduler, {.position = {100, 0}});
  Radio rx(medium, scheduler, {.position = {0, 0}});
  mac::Station sta({.address = {1, 1, 1, 1, 1, 1}}, rx, Rng(1));
  rx.set_station(&sta);

  const Bytes f1 = frames::serialize(
      probe_frame({1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2}));
  medium.transmit(strong, f1, {.rate = phy::kOfdm24, .power_dbm = 15});
  medium.transmit(weak, Bytes(50, 0x55),
                  {.rate = phy::kOfdm24, .power_dbm = 15});
  scheduler.run_for(milliseconds(1));
  // ~60 dB difference: the strong frame captures.
  EXPECT_EQ(sta.stats().frames_received, 1u);
}

TEST(Medium, HalfDuplexCannotReceiveWhileTransmitting) {
  TwoRadios t;
  mac::Station sta_b({.address = {1, 1, 1, 1, 1, 1}}, t.b, Rng(1));
  t.b.set_station(&sta_b);
  // b starts a long transmission, then a transmits at it mid-air.
  t.medium.transmit(t.b, Bytes(1500, 0x11),
                    {.rate = phy::kOfdm6, .power_dbm = 15});
  t.medium.transmit(t.a, frames::serialize(probe_frame(
                             {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2})),
                    {.rate = phy::kOfdm54, .power_dbm = 15});
  t.scheduler.run_for(milliseconds(10));
  EXPECT_EQ(sta_b.stats().frames_received, 0u);
}

TEST(Medium, PerLinkShadowingIsDeterministicAndSymmetric) {
  Scheduler scheduler;
  MediumConfig cfg;
  cfg.shadowing_sigma_db = 6.0;
  Medium medium(scheduler, cfg, 7);
  Radio a(medium, scheduler, {.position = {0, 0}});
  Radio b(medium, scheduler, {.position = {30, 0}});
  const double s1 = medium.link_shadowing_db(a, b);
  const double s2 = medium.link_shadowing_db(a, b);
  const double s3 = medium.link_shadowing_db(b, a);
  EXPECT_DOUBLE_EQ(s1, s2);
  EXPECT_DOUBLE_EQ(s1, s3);
}

TEST(Medium, DifferentChannelsDoNotInteract) {
  Scheduler scheduler;
  Medium medium(scheduler, TwoRadios::probe_config(), 1);
  Radio a(medium, scheduler, {.channel = 1, .position = {0, 0}});
  Radio b(medium, scheduler, {.channel = 11, .position = {2, 0}});
  mac::Station sta({.address = {1, 1, 1, 1, 1, 1}}, b, Rng(1));
  b.set_station(&sta);
  medium.transmit(a, frames::serialize(probe_frame(
                         {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2})),
                  {.rate = phy::kOfdm24, .power_dbm = 15});
  scheduler.run_for(milliseconds(1));
  EXPECT_EQ(sta.stats().frames_received, 0u);
  EXPECT_FALSE(medium.busy_for(b));
}

TEST(Medium, CsiAttachedOnlyWhenEnabled) {
  Scheduler scheduler;
  Medium medium(scheduler, TwoRadios::probe_config(), 1);
  Radio a(medium, scheduler, {.position = {0, 0}});
  Radio b(medium, scheduler, {.position = {5, 0}, .capture_csi = true});
  std::optional<phy::RxVector> got;
  mac::Station sta({.address = {1, 1, 1, 1, 1, 1}}, b, Rng(1));
  sta.set_sniffer([&got](const frames::Frame&, const phy::RxVector& rx,
                         bool) { got = rx; });
  b.set_station(&sta);
  medium.transmit(a, frames::serialize(probe_frame(
                         {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2})),
                  {.rate = phy::kOfdm24, .power_dbm = 15});
  scheduler.run_for(milliseconds(1));
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->csi.has_value());
  EXPECT_EQ(got->csi->h.size(), std::size_t(phy::kNumSubcarriers));
}

// --- Trace ------------------------------------------------------------------------

TEST(Trace, RecordsAndDumps) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 5});
  auto& trace = sim.trace();
  sim::RadioConfig rc;
  rc.position = {0, 0};
  Device& d = sim.add_device({.name = "dev"}, {9, 9, 9, 9, 9, 9}, rc);
  d.station().transmit_now(
      frames::make_null_function({1, 2, 3, 4, 5, 6}, {9, 9, 9, 9, 9, 9}, 3),
      phy::kOfdm24);
  sim.run_for(milliseconds(1));

  ASSERT_EQ(trace.entries().size(), 1u);
  EXPECT_EQ(trace.entries()[0].sender_name, "dev");
  std::ostringstream os;
  trace.dump(os);
  EXPECT_NE(os.str().find("Null function"), std::string::npos);
}

TEST(Trace, PcapFileHasMagicAndLinktype) {
  Simulation sim({.seed = 5});
  auto& trace = sim.trace();
  sim::RadioConfig rc;
  Device& d = sim.add_device({.name = "dev"}, {9, 9, 9, 9, 9, 9}, rc);
  d.station().transmit_now(
      frames::make_null_function({1, 2, 3, 4, 5, 6}, {9, 9, 9, 9, 9, 9}, 3),
      phy::kOfdm24);
  sim.run_for(milliseconds(1));

  const std::string path = "/tmp/pw_trace_test.pcap";
  ASSERT_TRUE(trace.write_pcap(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::uint32_t magic = 0;
  EXPECT_EQ(std::fread(&magic, 4, 1, f), 1u);
  EXPECT_EQ(magic, 0xa1b2c3d4u);
  std::fseek(f, 20, SEEK_SET);
  std::uint32_t linktype = 0;
  EXPECT_EQ(std::fread(&linktype, 4, 1, f), 1u);
  EXPECT_EQ(linktype, 105u);  // LINKTYPE_IEEE802_11
  std::fclose(f);
  std::filesystem::remove(path);
}

// --- Mobility -----------------------------------------------------------------------

TEST(Mobility, MovesAlongRouteAtSpeed) {
  Scheduler scheduler;
  Medium medium(scheduler, {}, 1);
  Radio car(medium, scheduler, {.position = {0, 0}});
  WaypointMover mover(car, scheduler, {{0, 0}, {100, 0}}, 10.0);
  mover.start();
  scheduler.run_for(seconds(5));
  EXPECT_NEAR(car.position().x, 50.0, 1.5);
  EXPECT_FALSE(mover.finished());
  scheduler.run_for(seconds(6));
  EXPECT_TRUE(mover.finished());
  EXPECT_NEAR(car.position().x, 100.0, 1e-6);
  EXPECT_NEAR(mover.distance_travelled(), 100.0, 1e-6);
}

TEST(Mobility, TurnsCorners) {
  Scheduler scheduler;
  Medium medium(scheduler, {}, 1);
  Radio car(medium, scheduler, {.position = {0, 0}});
  WaypointMover mover(car, scheduler, {{0, 0}, {10, 0}, {10, 10}}, 5.0);
  mover.start();
  scheduler.run_for(seconds(10));
  EXPECT_TRUE(mover.finished());
  EXPECT_NEAR(car.position().x, 10.0, 1e-6);
  EXPECT_NEAR(car.position().y, 10.0, 1e-6);
  EXPECT_NEAR(mover.distance_travelled(), 20.0, 1e-6);
}

// --- Device / Simulation facade ------------------------------------------------------

TEST(Simulation, FindDevice) {
  Simulation sim({.seed = 1});
  sim::RadioConfig rc;
  const MacAddress mac{5, 5, 5, 5, 5, 5};
  sim.add_device({.name = "x"}, mac, rc);
  ASSERT_NE(sim.find_device(mac), nullptr);
  EXPECT_EQ(sim.find_device({6, 6, 6, 6, 6, 6}), nullptr);
}

TEST(Simulation, EstablishInstantlyCreatesWorkingLink) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 2});
  mac::ApConfig apc;
  apc.fast_keys = true;
  apc.send_beacons = false;
  Device& ap = sim.add_ap("ap", {1, 1, 1, 1, 1, 1}, {0, 0}, apc);
  mac::ClientConfig cc;
  cc.fast_keys = true;
  Device& client = sim.add_client("c", {2, 2, 2, 2, 2, 2}, {3, 0}, cc);

  sim.establish_instantly(ap, client);
  EXPECT_TRUE(client.client()->established());
  EXPECT_TRUE(ap.ap()->is_established(client.address()));

  client.client()->send_msdu(Bytes{1, 2, 3});
  sim.run_for(milliseconds(50));
  EXPECT_EQ(ap.ap()->stats().msdus_received, 1u);
}

}  // namespace
}  // namespace politewifi::sim
