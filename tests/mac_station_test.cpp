// The low-MAC property suite — the paper's invariant, exhaustively:
//
//   Any FCS-valid frame whose addr1 matches the station is ACKed exactly
//   one SIFS after reception, REGARDLESS of frame subtype, encryption
//   validity, sender identity, association state, or what the software
//   above thinks.
//
// Runs against a mock environment so every timer and transmission is
// observable with nanosecond precision.
#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/wpa2.h"
#include "frames/data.h"
#include "frames/frame_builder.h"
#include "frames/management.h"
#include "frames/serializer.h"
#include "mac/station.h"

namespace politewifi::mac {
namespace {

using frames::Frame;

const MacAddress kSelf{0x3c, 0x28, 0x6d, 0x01, 0x02, 0x03};
const MacAddress kPeer{0x00, 0x11, 0x22, 0x33, 0x44, 0x55};
const MacAddress kFake = MacAddress::paper_fake_address();

/// Deterministic mock of the radio/scheduler the station runs against.
class MockEnv : public MacEnvironment {
 public:
  struct Sent {
    Frame frame;
    phy::TxVector tx;
    TimePoint at;
  };

  TimePoint now() const override { return now_; }

  std::uint64_t schedule(Duration delay, SmallFn fn) override {
    const std::uint64_t id = next_id_++;
    timers_.push_back(Timer{id, now_ + delay, std::move(fn), false});
    return id;
  }

  void cancel(std::uint64_t id) override {
    for (auto& t : timers_) {
      if (t.id == id) t.cancelled = true;
    }
  }

  void transmit(const Frame& frame, const phy::TxVector& tx) override {
    sent_.push_back({frame, tx, now_});
  }

  bool medium_busy() const override { return busy_; }

  /// Advances simulated time, firing due timers in order.
  void advance(Duration d) {
    const TimePoint until = now_ + d;
    while (true) {
      // Earliest uncancelled due timer.
      auto best = timers_.end();
      for (auto it = timers_.begin(); it != timers_.end(); ++it) {
        if (it->cancelled || it->at > until) continue;
        if (best == timers_.end() || it->at < best->at ||
            (it->at == best->at && it->id < best->id)) {
          best = it;
        }
      }
      if (best == timers_.end()) break;
      now_ = best->at;
      auto fn = std::move(best->fn);
      timers_.erase(best);
      fn();
    }
    now_ = until;
  }

  std::vector<Sent> sent_;
  bool busy_ = false;

 private:
  struct Timer {
    std::uint64_t id;
    TimePoint at;
    SmallFn fn;
    bool cancelled;
  };
  TimePoint now_ = kSimStart;
  std::vector<Timer> timers_;
  std::uint64_t next_id_ = 1;
};

struct Harness {
  MockEnv env;
  MacConfig config;
  std::unique_ptr<Station> station;

  explicit Harness(MacConfig cfg = {}) {
    config = cfg;
    if (config.address.is_zero()) config.address = kSelf;
    station = std::make_unique<Station>(config, env, Rng(1));
  }

  /// Delivers a frame to the station as a valid PPDU at `rate`.
  void deliver(const Frame& f, phy::PhyRate rate = phy::kOfdm24) {
    phy::RxVector rx;
    rx.rate = rate;
    rx.rssi_dbm = -50;
    rx.snr_db = 40;
    station->on_ppdu_received(frames::serialize(f), rx);
  }

  /// All ACKs transmitted so far.
  std::vector<MockEnv::Sent> acks() const {
    std::vector<MockEnv::Sent> out;
    for (const auto& s : env.sent_) {
      if (s.frame.fc.is_ack()) out.push_back(s);
    }
    return out;
  }
};

// --- THE invariant, across every ackable frame flavour -------------------------

struct AckCase {
  const char* name;
  Frame frame;
};

std::vector<AckCase> ackable_frames() {
  std::vector<AckCase> cases;
  // The paper's fake frame: unencrypted null function from a stranger.
  cases.push_back({"fake_null_from_stranger",
                   frames::make_null_function(kSelf, kFake, 1)});
  // QoS null.
  {
    Frame f = frames::make_null_function(kSelf, kFake, 2);
    f.fc.subtype = static_cast<std::uint8_t>(frames::DataSubtype::kQosNull);
    f.qos_control = 0;
    cases.push_back({"fake_qos_null", f});
  }
  // Data frame claiming to be protected — garbage CCMP blob.
  {
    Frame f = frames::make_data_to_ds(kSelf, kFake, kSelf,
                                      Bytes(24, 0xAB), 3);
    f.fc.protected_frame = true;
    cases.push_back({"garbage_protected_data", f});
  }
  // Plain unencrypted data with payload.
  cases.push_back(
      {"plain_data", frames::make_data_to_ds(kSelf, kFake, kSelf,
                                             Bytes{1, 2, 3}, 4)});
  // Management: probe response, auth, deauth — all addressed to us.
  cases.push_back(
      {"deauth", frames::make_deauth(kSelf, kFake, kFake,
                                     frames::ReasonCode::kUnspecified, 5)});
  cases.push_back({"authentication",
                   frames::make_authentication(kSelf, kFake, kFake, {}, 6)});
  {
    frames::AssociationRequest req;
    cases.push_back({"assoc_request",
                     frames::make_assoc_request(kSelf, kFake, req, 7)});
  }
  // Maximal weirdness: reserved subtype bits via the builder.
  {
    Frame f = frames::FrameBuilder()
                  .data(frames::DataSubtype::kData)
                  .to_ds()
                  .from_ds(false)
                  .retry()
                  .addr1(kSelf)
                  .addr2(kFake)
                  .addr3(MacAddress::broadcast())
                  .sequence(4095, 3)
                  .body(Bytes(7, 0xFF))
                  .build();
    cases.push_back({"weird_flag_combo", f});
  }
  return cases;
}

class PoliteAckInvariant : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoliteAckInvariant, AckedExactlyOnceAtSifsToClaimedSender) {
  const AckCase c = ackable_frames()[GetParam()];
  Harness h;
  const TimePoint rx_end = h.env.now();
  h.deliver(c.frame);
  h.env.advance(milliseconds(1));

  const auto acks = h.acks();
  ASSERT_EQ(acks.size(), 1u) << c.name;
  EXPECT_EQ(acks[0].frame.addr1, c.frame.addr2) << c.name;
  EXPECT_EQ(acks[0].at - rx_end, phy::sifs(phy::Band::k2_4GHz)) << c.name;
  EXPECT_EQ(h.station->stats().acks_sent, 1u);
}

TEST_P(PoliteAckInvariant, FiveGhzUsesSixteenMicroseconds) {
  const AckCase c = ackable_frames()[GetParam()];
  MacConfig cfg;
  cfg.band = phy::Band::k5GHz;
  Harness h(cfg);
  const TimePoint rx_end = h.env.now();
  h.deliver(c.frame);
  h.env.advance(milliseconds(1));
  const auto acks = h.acks();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].at - rx_end, microseconds(16));
}

TEST_P(PoliteAckInvariant, FcsCorruptionSuppressesAck) {
  const AckCase c = ackable_frames()[GetParam()];
  Harness h;
  Bytes raw = frames::serialize(c.frame);
  frames::corrupt(raw, 2, GetParam() + 1);
  h.station->on_ppdu_received(raw, phy::RxVector{});
  h.env.advance(milliseconds(1));
  EXPECT_TRUE(h.acks().empty()) << c.name;
  EXPECT_GE(h.station->stats().fcs_failures, 1u);
}

TEST_P(PoliteAckInvariant, NotOurAddressMeansSilence) {
  AckCase c = ackable_frames()[GetParam()];
  c.frame.addr1 = kPeer;  // someone else's frame
  Harness h;
  h.deliver(c.frame);
  h.env.advance(milliseconds(1));
  EXPECT_TRUE(h.acks().empty()) << c.name;
}

INSTANTIATE_TEST_SUITE_P(AllAckableFrames, PoliteAckInvariant,
                         ::testing::Range<std::size_t>(0, 8),
                         [](const auto& info) {
                           return ackable_frames()[info.param].name;
                         });

// --- More receive-path behaviour ----------------------------------------------------

TEST(StationRx, BroadcastNeverAcked) {
  Harness h;
  frames::Beacon b;
  b.elements.set_ssid("x");
  h.deliver(frames::make_beacon(kPeer, b, 1));
  h.env.advance(milliseconds(1));
  EXPECT_TRUE(h.acks().empty());
  EXPECT_EQ(h.station->stats().frames_received, 1u);
}

TEST(StationRx, AckRateFollowsControlResponseRule) {
  Harness h;
  h.deliver(frames::make_null_function(kSelf, kFake, 1), phy::kOfdm54);
  h.env.advance(milliseconds(1));
  auto acks = h.acks();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].tx.rate, phy::kOfdm24);

  h.deliver(frames::make_null_function(kSelf, kFake, 2), phy::kOfdm6);
  h.env.advance(milliseconds(1));
  acks = h.acks();
  ASSERT_EQ(acks.size(), 2u);
  EXPECT_EQ(acks[1].tx.rate, phy::kOfdm6);
}

TEST(StationRx, DuplicateIsAckedButNotRedelivered) {
  Harness h;
  std::size_t delivered = 0;
  h.station->set_upper_handler(
      [&delivered](const Frame&, const phy::RxVector&) { ++delivered; });

  Frame f = frames::make_data_to_ds(kSelf, kPeer, kSelf, Bytes{1}, 42);
  h.deliver(f);
  h.env.advance(milliseconds(1));
  Frame retry = f;
  retry.fc.retry = true;
  h.deliver(retry);
  h.env.advance(milliseconds(1));

  EXPECT_EQ(h.acks().size(), 2u);  // our first ACK may have been lost!
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(h.station->stats().duplicates_dropped, 1u);
}

TEST(StationRx, SameSequenceWithoutRetryBitIsNotDuplicate) {
  Harness h;
  std::size_t delivered = 0;
  h.station->set_upper_handler(
      [&delivered](const Frame&, const phy::RxVector&) { ++delivered; });
  const Frame f = frames::make_data_to_ds(kSelf, kPeer, kSelf, Bytes{1}, 42);
  h.deliver(f);
  h.deliver(f);  // e.g. two distinct sends reusing a sequence number
  h.env.advance(milliseconds(1));
  EXPECT_EQ(delivered, 2u);
}

TEST(StationRx, DedupCacheIsCappedAtConfiguredSize) {
  // Regression: the dedup cache used to be an unbounded per-sender map, so
  // a wardriving attacker spraying spoofed transmitter addresses grew it
  // without limit. Now it is a fixed-capacity LRU.
  MacConfig cfg;
  cfg.dedup_cache_size = 8;
  Harness h(cfg);
  for (std::uint8_t i = 0; i < 100; ++i) {
    const MacAddress sender{0x02, 0x00, 0x00, 0x00, 0x01, i};
    h.deliver(frames::make_data_to_ds(kSelf, sender, kSelf, Bytes{1}, i));
  }
  h.env.advance(milliseconds(1));
  EXPECT_EQ(h.station->dedup_cache_entries(), 8u);
  EXPECT_EQ(h.station->stats().frames_received, 100u);
  EXPECT_EQ(h.station->stats().duplicates_dropped, 0u);
}

TEST(StationRx, EvictionDropsOldestSenderFirst) {
  MacConfig cfg;
  cfg.dedup_cache_size = 2;
  Harness h(cfg);
  std::size_t delivered = 0;
  h.station->set_upper_handler(
      [&delivered](const Frame&, const phy::RxVector&) { ++delivered; });

  const MacAddress a{0x02, 0, 0, 0, 0, 0x0a};
  const MacAddress b{0x02, 0, 0, 0, 0, 0x0b};
  const MacAddress c{0x02, 0, 0, 0, 0, 0x0c};
  h.deliver(frames::make_data_to_ds(kSelf, a, kSelf, Bytes{1}, 10));
  h.deliver(frames::make_data_to_ds(kSelf, b, kSelf, Bytes{1}, 20));
  // c evicts a (the least recently seen sender), not b.
  h.deliver(frames::make_data_to_ds(kSelf, c, kSelf, Bytes{1}, 30));
  h.env.advance(milliseconds(1));
  EXPECT_EQ(h.station->dedup_cache_entries(), 2u);

  // b is still tracked: its retry is recognised as a duplicate.
  Frame b_retry = frames::make_data_to_ds(kSelf, b, kSelf, Bytes{1}, 20);
  b_retry.fc.retry = true;
  h.deliver(b_retry);
  h.env.advance(milliseconds(1));
  EXPECT_EQ(h.station->stats().duplicates_dropped, 1u);
  // a was evicted: its retry re-delivers (the standard allows this — a
  // receiver only has to de-duplicate within its cache horizon).
  Frame a_retry = frames::make_data_to_ds(kSelf, a, kSelf, Bytes{1}, 10);
  a_retry.fc.retry = true;
  h.deliver(a_retry);
  h.env.advance(milliseconds(1));
  EXPECT_EQ(h.station->stats().duplicates_dropped, 1u);
  EXPECT_EQ(delivered, 4u);
}

TEST(StationRx, DuplicateDetectionStillWorksAtTheCap) {
  MacConfig cfg;
  cfg.dedup_cache_size = 4;
  Harness h(cfg);
  std::size_t delivered = 0;
  h.station->set_upper_handler(
      [&delivered](const Frame&, const phy::RxVector&) { ++delivered; });
  // Fill the cache, then retry every tracked sender: all four retries
  // must be dropped even though the cache is at capacity.
  for (std::uint8_t i = 0; i < 4; ++i) {
    const MacAddress sender{0x02, 0, 0, 0, 2, i};
    h.deliver(frames::make_data_to_ds(kSelf, sender, kSelf, Bytes{1}, i));
  }
  for (std::uint8_t i = 0; i < 4; ++i) {
    const MacAddress sender{0x02, 0, 0, 0, 2, i};
    Frame retry = frames::make_data_to_ds(kSelf, sender, kSelf, Bytes{1}, i);
    retry.fc.retry = true;
    h.deliver(retry);
  }
  h.env.advance(milliseconds(1));
  EXPECT_EQ(h.station->stats().duplicates_dropped, 4u);
  EXPECT_EQ(delivered, 4u);
}

TEST(StationRx, RtsElicitsCtsAtSifs) {
  Harness h;
  const TimePoint rx_end = h.env.now();
  h.deliver(frames::make_rts(kSelf, kFake, 100));
  h.env.advance(milliseconds(1));
  ASSERT_EQ(h.env.sent_.size(), 1u);
  const auto& cts = h.env.sent_[0];
  EXPECT_TRUE(cts.frame.fc.is_cts());
  EXPECT_EQ(cts.frame.addr1, kFake);
  EXPECT_EQ(cts.at - rx_end, phy::sifs(phy::Band::k2_4GHz));
  EXPECT_LT(cts.frame.duration_id, 100);  // NAV shrunk by CTS airtime
}

TEST(StationRx, RtsResponseCanBeDisabled) {
  MacConfig cfg;
  cfg.respond_to_rts = false;
  Harness h(cfg);
  h.deliver(frames::make_rts(kSelf, kFake, 100));
  h.env.advance(milliseconds(1));
  EXPECT_TRUE(h.env.sent_.empty());
}

TEST(StationRx, SnifferSeesEverythingIncludingBadFcs) {
  Harness h;
  std::size_t seen = 0, bad = 0;
  h.station->set_sniffer(
      [&](const Frame&, const phy::RxVector&, bool fcs_ok) {
        ++seen;
        bad += fcs_ok ? 0 : 1;
      });
  h.deliver(frames::make_null_function(kPeer, kFake, 1));  // not for us
  Bytes raw = frames::serialize(frames::make_null_function(kSelf, kFake, 2));
  raw[raw.size() - 1] ^= 0x01;  // FCS damage
  h.station->on_ppdu_received(raw, phy::RxVector{});
  EXPECT_EQ(seen, 2u);
  EXPECT_EQ(bad, 1u);
}

TEST(StationRx, DozingStationReceivesNothing) {
  Harness h;
  h.station->set_dozing(true);
  h.deliver(frames::make_null_function(kSelf, kFake, 1));
  h.env.advance(milliseconds(1));
  EXPECT_TRUE(h.acks().empty());
}

// --- Transmit path (DCF) ---------------------------------------------------------------

/// Advances in fine steps until `pred` holds (or `max` elapses), so a
/// test can react between a transmission and its ACK timeout.
template <typename Pred>
bool advance_until(MockEnv& env, Pred pred, Duration max = seconds(1)) {
  const TimePoint deadline = env.now() + max;
  while (!pred() && env.now() < deadline) env.advance(microseconds(10));
  return pred();
}

TEST(StationTx, UnicastWaitsAtLeastDifs) {
  Harness h;
  const TimePoint queued = h.env.now();
  h.station->send(frames::make_null_function(kPeer, kSelf, 1), phy::kOfdm24);
  h.env.advance(milliseconds(5));
  ASSERT_FALSE(h.env.sent_.empty());
  EXPECT_GE(h.env.sent_[0].at - queued, phy::difs(phy::Band::k2_4GHz));
}

TEST(StationTx, AckCompletesTransmission) {
  Harness h;
  std::optional<TxResult> result;
  h.station->send(frames::make_null_function(kPeer, kSelf, 1), phy::kOfdm24,
                  [&result](const TxResult& r) { result = r; });
  ASSERT_TRUE(advance_until(h.env, [&] { return !h.env.sent_.empty(); }));
  ASSERT_EQ(h.env.sent_.size(), 1u);

  h.deliver(frames::make_ack(kSelf));
  h.env.advance(milliseconds(1));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->acked);
  EXPECT_EQ(result->transmissions, 1);
  EXPECT_EQ(h.station->stats().tx_success, 1u);
}

TEST(StationTx, NoAckMeansRetriesWithRetryBitThenFailure) {
  MacConfig cfg;
  cfg.retry_limit = 4;
  Harness h(cfg);
  std::optional<TxResult> result;
  h.station->send(frames::make_data_to_ds(kPeer, kSelf, kPeer, Bytes{1}, 9),
                  phy::kOfdm24,
                  [&result](const TxResult& r) { result = r; });
  h.env.advance(seconds(2));

  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->acked);
  EXPECT_EQ(result->transmissions, 4);
  EXPECT_EQ(h.env.sent_.size(), 4u);
  EXPECT_FALSE(h.env.sent_[0].frame.fc.retry);
  for (std::size_t i = 1; i < h.env.sent_.size(); ++i) {
    EXPECT_TRUE(h.env.sent_[i].frame.fc.retry);
  }
  EXPECT_EQ(h.station->stats().retransmissions, 3u);
  EXPECT_EQ(h.station->stats().tx_failures, 1u);
}

TEST(StationTx, BroadcastIsFireAndForget) {
  Harness h;
  std::optional<TxResult> result;
  frames::Beacon b;
  h.station->send(frames::make_beacon(kSelf, b, 1), phy::kOfdm6,
                  [&result](const TxResult& r) { result = r; });
  h.env.advance(milliseconds(10));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->acked);
  EXPECT_EQ(h.env.sent_.size(), 1u);
}

TEST(StationTx, BusyMediumDefersTransmission) {
  Harness h;
  h.env.busy_ = true;
  h.station->send(frames::make_null_function(kPeer, kSelf, 1), phy::kOfdm24);
  h.env.advance(milliseconds(20));
  EXPECT_TRUE(h.env.sent_.empty());
  const TimePoint cleared = h.env.now();
  h.env.busy_ = false;
  ASSERT_TRUE(advance_until(h.env, [&] { return !h.env.sent_.empty(); }));
  EXPECT_GT(h.env.sent_[0].at, cleared);
}

TEST(StationTx, QueueDrainsInOrder) {
  Harness h;
  for (int i = 0; i < 3; ++i) {
    h.station->send(
        frames::make_data_to_ds(kPeer, kSelf, kPeer, Bytes{std::uint8_t(i)},
                                h.station->next_sequence()),
        phy::kOfdm24);
    // ACK each one as it goes out.
  }
  for (std::size_t round = 1; round <= 3; ++round) {
    ASSERT_TRUE(
        advance_until(h.env, [&] { return h.env.sent_.size() >= round; }));
    h.deliver(frames::make_ack(kSelf));
  }
  h.env.advance(milliseconds(5));
  ASSERT_EQ(h.env.sent_.size(), 3u);
  EXPECT_EQ(h.env.sent_[0].frame.body[0], 0);
  EXPECT_EQ(h.env.sent_[1].frame.body[0], 1);
  EXPECT_EQ(h.env.sent_[2].frame.body[0], 2);
}

TEST(StationTx, NavDefersTransmission) {
  Harness h;
  // Overhear a frame reserving the medium for 3000 us.
  Frame rts = frames::make_rts(kPeer, kFake, 3000);
  h.deliver(rts);
  const TimePoint nav_set = h.env.now();
  h.station->send(frames::make_null_function(kPeer, kSelf, 1), phy::kOfdm24);
  h.env.advance(milliseconds(10));
  ASSERT_FALSE(h.env.sent_.empty());
  // The CTS response (we were addressed? no — kPeer) ... our TX must wait
  // out the NAV.
  for (const auto& s : h.env.sent_) {
    if (s.frame.fc.is_null_function()) {
      EXPECT_GE(s.at - nav_set, microseconds(3000));
    }
  }
}

// --- The validating-MAC ablation (§2.2) ------------------------------------------------

TEST(ValidatingMac, FakeFrameNeverAcked) {
  MacConfig cfg;
  cfg.ack_policy = AckPolicyMode::kValidatingMac;
  Harness h(cfg);
  h.deliver(frames::make_null_function(kSelf, kFake, 1));
  h.env.advance(seconds(1));
  EXPECT_TRUE(h.acks().empty());
  EXPECT_EQ(h.station->stats().validations_rejected, 1u);
}

TEST(ValidatingMac, GenuineFrameAckedButFarTooLate) {
  MacConfig cfg;
  cfg.ack_policy = AckPolicyMode::kValidatingMac;
  Harness h(cfg);

  const crypto::Ptk ptk = crypto::derive_fast_ptk(kPeer, kSelf);
  crypto::Wpa2Session tx_session(ptk), rx_session(ptk);
  h.station->set_validation_session(&rx_session);

  Frame f = frames::make_data_to_ds(kSelf, kPeer, kSelf, Bytes{1, 2, 3}, 10);
  tx_session.protect(f);
  const TimePoint rx_end = h.env.now();
  h.deliver(f);
  h.env.advance(milliseconds(10));

  const auto acks = h.acks();
  ASSERT_EQ(acks.size(), 1u);
  const Duration latency = acks[0].at - rx_end;
  // The ACK exists — but hundreds of microseconds after SIFS, far past
  // any transmitter's ACK timeout. The link is broken by design.
  EXPECT_GT(latency, phy::ack_timeout(phy::Band::k2_4GHz));
  EXPECT_GT(latency, 10 * phy::sifs(phy::Band::k2_4GHz));
}

TEST(ValidatingMac, StillRespondsToRts) {
  // Control frames cannot be encrypted, so even the validating receiver
  // answers RTS — the §2.2 checkmate.
  MacConfig cfg;
  cfg.ack_policy = AckPolicyMode::kValidatingMac;
  Harness h(cfg);
  h.deliver(frames::make_rts(kSelf, kFake, 60));
  h.env.advance(milliseconds(1));
  ASSERT_EQ(h.env.sent_.size(), 1u);
  EXPECT_TRUE(h.env.sent_[0].frame.fc.is_cts());
}

// --- SIFS jitter ------------------------------------------------------------------------

TEST(StationRx, SifsJitterDelaysButNeverUndershoots) {
  MacConfig cfg;
  cfg.sifs_jitter_ns = 200.0;
  Harness h(cfg);
  for (int i = 0; i < 10; ++i) {
    const TimePoint rx_end = h.env.now();
    h.deliver(frames::make_null_function(kSelf, kFake,
                                         static_cast<std::uint16_t>(i)));
    h.env.advance(milliseconds(1));
    const auto acks = h.acks();
    EXPECT_GE(acks.back().at - rx_end, phy::sifs(phy::Band::k2_4GHz));
    EXPECT_LT(acks.back().at - rx_end,
              phy::sifs(phy::Band::k2_4GHz) + microseconds(2));
  }
}

}  // namespace
}  // namespace politewifi::mac
