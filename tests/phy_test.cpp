// PHY model tests: channels, rates/airtime, 802.11 timing constants,
// propagation, error model and the multipath CSI model.
#include <gtest/gtest.h>

#include <vector>

#include "phy/channel.h"
#include "phy/csi.h"
#include "phy/error_model.h"
#include "phy/propagation.h"
#include "phy/rates.h"
#include "phy/timing.h"

namespace politewifi::phy {
namespace {

// --- Channels -------------------------------------------------------------------

TEST(Channel, Frequencies) {
  EXPECT_DOUBLE_EQ(channel_frequency_hz(Band::k2_4GHz, 1), 2412e6);
  EXPECT_DOUBLE_EQ(channel_frequency_hz(Band::k2_4GHz, 6), 2437e6);
  EXPECT_DOUBLE_EQ(channel_frequency_hz(Band::k2_4GHz, 11), 2462e6);
  EXPECT_DOUBLE_EQ(channel_frequency_hz(Band::k2_4GHz, 14), 2484e6);
  EXPECT_DOUBLE_EQ(channel_frequency_hz(Band::k5GHz, 36), 5180e6);
  EXPECT_DOUBLE_EQ(channel_frequency_hz(Band::k5GHz, 149), 5745e6);
}

TEST(Channel, SubcarrierLayoutSkipsDc) {
  // 52 populated subcarriers at -26..-1, +1..+26 x 312.5 kHz.
  EXPECT_DOUBLE_EQ(subcarrier_offset_hz(0), -26 * 312.5e3);
  EXPECT_DOUBLE_EQ(subcarrier_offset_hz(25), -1 * 312.5e3);
  EXPECT_DOUBLE_EQ(subcarrier_offset_hz(26), +1 * 312.5e3);
  EXPECT_DOUBLE_EQ(subcarrier_offset_hz(51), +26 * 312.5e3);
  for (int k = 0; k < kNumSubcarriers; ++k) {
    EXPECT_NE(subcarrier_offset_hz(k), 0.0);  // DC never populated
  }
}

// --- Timing (the paper's §2.2 numbers) ----------------------------------------------

TEST(Timing, SifsMatchesStandard) {
  EXPECT_EQ(sifs(Band::k2_4GHz), microseconds(10));
  EXPECT_EQ(sifs(Band::k5GHz), microseconds(16));
}

TEST(Timing, DerivedIntervals) {
  EXPECT_EQ(slot_time(Band::k2_4GHz), microseconds(20));
  EXPECT_EQ(slot_time(Band::k5GHz), microseconds(9));
  EXPECT_EQ(difs(Band::k2_4GHz), microseconds(50));
  EXPECT_EQ(difs(Band::k5GHz), microseconds(34));
  EXPECT_GT(ack_timeout(Band::k2_4GHz), sifs(Band::k2_4GHz));
}

TEST(Timing, NavCoversSifsPlusAck) {
  const auto nav = nav_for_ack(Band::k2_4GHz, kOfdm24);
  const double expected_us =
      10.0 + to_microseconds(ppdu_airtime(kOfdm24, 14));
  EXPECT_GE(double(nav), expected_us);
  EXPECT_LT(double(nav), expected_us + 1.5);
}

// --- Airtime -------------------------------------------------------------------------

TEST(Airtime, OfdmKnownValues) {
  // ACK (14 octets) at 24 Mb/s: 20 us preamble+SIG, (16+112+6)/96 -> 2
  // symbols -> 28 us total.
  EXPECT_EQ(ppdu_airtime(kOfdm24, 14), microseconds(28));
  // Null frame (28 octets) at 24 Mb/s: (16+224+6)/96 -> 3 symbols -> 32 us.
  EXPECT_EQ(ppdu_airtime(kOfdm24, 28), microseconds(32));
  // 1500-octet MPDU at 54 Mb/s: ceil(12022/216)=56 symbols -> 244 us.
  EXPECT_EQ(ppdu_airtime(kOfdm54, 1500), microseconds(244));
}

TEST(Airtime, DsssIncludesLongPreamble) {
  // 14 octets at 1 Mb/s: 192 + 112 = 304 us.
  EXPECT_EQ(ppdu_airtime(kDsss1, 14), microseconds(304));
}

TEST(Airtime, MonotonicInSizeAndRate) {
  EXPECT_LT(ppdu_airtime(kOfdm24, 100), ppdu_airtime(kOfdm24, 1000));
  EXPECT_GT(ppdu_airtime(kOfdm6, 500), ppdu_airtime(kOfdm54, 500));
}

TEST(ControlResponseRate, PicksHighestBasicRateNotAbove) {
  EXPECT_EQ(control_response_rate(kOfdm54), kOfdm24);
  EXPECT_EQ(control_response_rate(kOfdm24), kOfdm24);
  EXPECT_EQ(control_response_rate(kOfdm18), kOfdm12);
  EXPECT_EQ(control_response_rate(kOfdm9), kOfdm6);
  EXPECT_EQ(control_response_rate(kOfdm6), kOfdm6);
  EXPECT_EQ(control_response_rate(kDsss11), kDsss2);
  EXPECT_EQ(control_response_rate(kDsss1), kDsss1);
}

// --- Propagation -----------------------------------------------------------------------

TEST(Propagation, FreeSpaceReferenceLoss) {
  // FSPL at 1 m, 2.437 GHz: ~40.2 dB.
  const LogDistancePathLoss model({.exponent = 2.0}, 2.437e9);
  EXPECT_NEAR(model.reference_loss_db(), 40.2, 0.3);
}

TEST(Propagation, LossGrowsWithDistanceAndExponent) {
  const LogDistancePathLoss n2({.exponent = 2.0}, 2.437e9);
  const LogDistancePathLoss n35({.exponent = 3.5}, 2.437e9);
  EXPECT_LT(n2.loss_db(10.0), n2.loss_db(100.0));
  EXPECT_LT(n2.loss_db(100.0), n35.loss_db(100.0));
  // Decade rule: +10n dB per decade.
  EXPECT_NEAR(n2.loss_db(100.0) - n2.loss_db(10.0), 20.0, 1e-9);
  EXPECT_NEAR(n35.loss_db(100.0) - n35.loss_db(10.0), 35.0, 1e-9);
}

TEST(Propagation, ShadowingRequiresRng) {
  const LogDistancePathLoss model(
      {.exponent = 3.0, .shadowing_sigma_db = 6.0}, 2.437e9);
  // Without an RNG the model is deterministic.
  EXPECT_DOUBLE_EQ(model.loss_db(50.0), model.loss_db(50.0));
  Rng rng(3);
  const double a = model.loss_db(50.0, &rng);
  const double b = model.loss_db(50.0, &rng);
  EXPECT_NE(a, b);
}

TEST(Propagation, SnrAgainstThermalFloor) {
  // -60 dBm received over 20 MHz with 7 dB NF: SNR ~ 34 dB.
  EXPECT_NEAR(snr_db(-60.0), 34.0, 0.5);
}

// --- Error model ------------------------------------------------------------------------

TEST(ErrorModel, FerMonotonicInSnr) {
  double prev = 1.0;
  for (double snr = -5.0; snr <= 30.0; snr += 5.0) {
    const double fer = frame_error_rate(kOfdm24, snr, 200);
    EXPECT_LE(fer, prev + 1e-12);
    prev = fer;
  }
}

TEST(ErrorModel, FerMonotonicInSize) {
  EXPECT_LE(frame_error_rate(kOfdm24, 12.0, 50),
            frame_error_rate(kOfdm24, 12.0, 1500));
}

TEST(ErrorModel, GoodSnrMeansReliableFrames) {
  EXPECT_LT(frame_error_rate(kOfdm24, 30.0, 1500), 1e-3);
  EXPECT_LT(frame_error_rate(kOfdm6, 15.0, 100), 1e-3);
}

TEST(ErrorModel, TerribleSnrMeansLoss) {
  EXPECT_GT(frame_error_rate(kOfdm54, 3.0, 1500), 0.9);
}

TEST(ErrorModel, RobustRatesBeatFastRates) {
  const double snr = 10.0;
  EXPECT_LT(frame_error_rate(kOfdm6, snr, 500),
            frame_error_rate(kOfdm54, snr, 500));
}

TEST(ErrorModel, BatchMatchesScalarBitForBit) {
  // The medium's batched FER pass substitutes frame_error_rate_batch for
  // per-receiver scalar calls, so the two must agree to the last bit —
  // EXPECT_EQ on doubles here, never near-equality. The grid spans the
  // whole operating range: deep loss, the waterfall region, and SNRs
  // where FER underflows to 0.
  const PhyRate rates[] = {kDsss1,  kDsss2,  kDsss11, kOfdm6,  kOfdm9,
                           kOfdm12, kOfdm18, kOfdm24, kOfdm36, kOfdm48,
                           kOfdm54};
  std::vector<double> snr_db;
  for (double s = -12.0; s <= 44.0; s += 0.25) snr_db.push_back(s);
  std::vector<double> batch(snr_db.size());
  for (const PhyRate& rate : rates) {
    for (const std::size_t octets : {std::size_t{26}, std::size_t{1536}}) {
      frame_error_rate_batch(rate, snr_db, octets, batch);
      for (std::size_t i = 0; i < snr_db.size(); ++i) {
        EXPECT_EQ(batch[i], frame_error_rate(rate, snr_db[i], octets))
            << rate.name() << " @ " << snr_db[i] << " dB, " << octets
            << " octets";
      }
    }
  }
}

// --- CSI model ------------------------------------------------------------------------------

TEST(Csi, SnapshotHasAllSubcarriers) {
  Rng rng(1);
  const auto paths = make_static_paths(5.0, 4, rng);
  Rng noise(2);
  const auto snap = evaluate_csi(2.437e9, paths, {}, 0.0, noise, kSimStart);
  EXPECT_EQ(snap.h.size(), std::size_t(kNumSubcarriers));
  EXPECT_GT(snap.mean_amplitude(), 0.0);
}

TEST(Csi, DeterministicWithoutNoise) {
  Rng rng1(7), rng2(7);
  const auto p1 = make_static_paths(5.0, 4, rng1);
  const auto p2 = make_static_paths(5.0, 4, rng2);
  EXPECT_EQ(p1, p2);
  Rng n1(1), n2(1);
  const auto s1 = evaluate_csi(2.437e9, p1, {}, 0.0, n1, kSimStart);
  const auto s2 = evaluate_csi(2.437e9, p2, {}, 0.0, n2, kSimStart);
  for (int k = 0; k < kNumSubcarriers; ++k) {
    EXPECT_DOUBLE_EQ(s1.amplitude(k), s2.amplitude(k));
  }
}

TEST(Csi, StaticSceneIsStableAcrossTime) {
  Rng rng(7);
  const auto paths = make_static_paths(5.0, 4, rng);
  Rng noise(1);
  const auto s1 = evaluate_csi(2.437e9, paths, {}, 0.0, noise, kSimStart);
  const auto s2 =
      evaluate_csi(2.437e9, paths, {}, 0.0, noise, kSimStart + seconds(10));
  for (int k = 0; k < kNumSubcarriers; ++k) {
    EXPECT_DOUBLE_EQ(s1.amplitude(k), s2.amplitude(k));
  }
}

TEST(Csi, MovingScattererChangesAmplitude) {
  // A dynamic path whose delay shifts by a fraction of a wavelength must
  // visibly move the subcarrier amplitudes — the sensing signal.
  Rng rng(7);
  const auto statics = make_static_paths(5.0, 4, rng);
  Rng noise(1);

  const PathSet hand1{{.delay_ns = 20.0, .amplitude = 0.45, .phase_rad = M_PI}};
  const PathSet hand2{{.delay_ns = 20.2, .amplitude = 0.45, .phase_rad = M_PI}};
  const auto s1 = evaluate_csi(2.437e9, statics, hand1, 0.0, noise, kSimStart);
  const auto s2 = evaluate_csi(2.437e9, statics, hand2, 0.0, noise, kSimStart);

  double max_delta = 0.0;
  for (int k = 0; k < kNumSubcarriers; ++k) {
    max_delta = std::max(max_delta, std::abs(s1.amplitude(k) - s2.amplitude(k)));
  }
  EXPECT_GT(max_delta, 0.05);
}

TEST(Csi, FrequencySelectivity) {
  // Multipath makes different subcarriers see different gains.
  Rng rng(11);
  const auto paths = make_static_paths(8.0, 5, rng);
  Rng noise(1);
  const auto s = evaluate_csi(5.18e9, paths, {}, 0.0, noise, kSimStart);
  double lo = 1e9, hi = 0.0;
  for (int k = 0; k < kNumSubcarriers; ++k) {
    lo = std::min(lo, s.amplitude(k));
    hi = std::max(hi, s.amplitude(k));
  }
  EXPECT_GT(hi - lo, 0.05);
}

TEST(Csi, NoiseBroadensRepeatMeasurements) {
  Rng rng(7);
  const auto paths = make_static_paths(5.0, 3, rng);
  Rng noise(1);
  const auto s1 = evaluate_csi(2.437e9, paths, {}, 0.05, noise, kSimStart);
  const auto s2 = evaluate_csi(2.437e9, paths, {}, 0.05, noise, kSimStart);
  double delta = 0.0;
  for (int k = 0; k < kNumSubcarriers; ++k) {
    delta += std::abs(s1.amplitude(k) - s2.amplitude(k));
  }
  EXPECT_GT(delta, 0.0);
}

// --- Parameterized rate sweep -------------------------------------------------------------

class RateSweep : public ::testing::TestWithParam<PhyRate> {};

TEST_P(RateSweep, AirtimeConsistentWithInfoRate) {
  const PhyRate rate = GetParam();
  // For a large frame the airtime approaches 8*bits/rate (preamble
  // amortized): check within 20%.
  const std::size_t octets = 1500;
  const double airtime_us = to_microseconds(ppdu_airtime(rate, octets));
  const double ideal_us = 8.0 * double(octets) / rate.mbps;
  EXPECT_GT(airtime_us, ideal_us);
  EXPECT_LT(airtime_us, ideal_us * 1.2 + 200.0);
}

TEST_P(RateSweep, ControlResponseNeverFaster) {
  const PhyRate rate = GetParam();
  EXPECT_LE(control_response_rate(rate).mbps, rate.mbps);
}

INSTANTIATE_TEST_SUITE_P(AllRates, RateSweep,
                         ::testing::Values(kOfdm6, kOfdm9, kOfdm12, kOfdm18,
                                           kOfdm24, kOfdm36, kOfdm48, kOfdm54,
                                           kDsss1, kDsss2, kDsss11),
                         [](const auto& info) {
                           std::string n = info.param.name();
                           for (auto& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace politewifi::phy
