// Unit tests for the common substrate: MAC addresses, byte codec, CRC-32,
// clock formatting, units and RNG.
#include <gtest/gtest.h>

#include "common/byte_buffer.h"
#include "common/clock.h"
#include "common/crc32.h"
#include "common/json.h"
#include "common/json_parse.h"
#include "common/logging.h"
#include "common/mac_address.h"
#include "common/rng.h"
#include "common/units.h"

namespace politewifi {
namespace {

// --- MacAddress ---------------------------------------------------------------

TEST(MacAddress, DefaultIsZero) {
  MacAddress m;
  EXPECT_TRUE(m.is_zero());
  EXPECT_FALSE(m.is_broadcast());
  EXPECT_EQ(m.to_string(), "00:00:00:00:00:00");
}

TEST(MacAddress, ParseRoundTrip) {
  const auto m = MacAddress::parse("aa:bb:cc:dd:ee:ff");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->to_string(), "aa:bb:cc:dd:ee:ff");
}

TEST(MacAddress, ParseAcceptsDashesAndUppercase) {
  const auto m = MacAddress::parse("AA-BB-CC-00-11-22");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->to_string(), "aa:bb:cc:00:11:22");
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse("").has_value());
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee").has_value());
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee:fg").has_value());
  EXPECT_FALSE(MacAddress::parse("aabbccddeeff0011").has_value());
  EXPECT_FALSE(MacAddress::parse("aa bb:cc:dd:ee:ff").has_value());
}

TEST(MacAddress, PaperFakeAddress) {
  // The spoofed source used throughout the paper's figures.
  EXPECT_EQ(MacAddress::paper_fake_address().to_string(), "aa:bb:bb:bb:bb:bb");
}

TEST(MacAddress, BroadcastProperties) {
  const auto b = MacAddress::broadcast();
  EXPECT_TRUE(b.is_broadcast());
  EXPECT_TRUE(b.is_group());
}

TEST(MacAddress, OuiExtraction) {
  const MacAddress m{0xf0, 0x18, 0x98, 0x01, 0x02, 0x03};
  EXPECT_EQ(m.oui(), 0xf01898u);
  EXPECT_FALSE(m.locally_administered());
  EXPECT_FALSE(m.is_group());
}

TEST(MacAddress, LocallyAdministeredBit) {
  const MacAddress m{0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
  EXPECT_TRUE(m.locally_administered());
}

TEST(MacAddress, U64RoundTrip) {
  const MacAddress m{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc};
  EXPECT_EQ(MacAddress::from_u64(m.to_u64()), m);
}

TEST(MacAddress, OrderingIsTotalAndConsistent) {
  const MacAddress a{0, 0, 0, 0, 0, 1};
  const MacAddress b{0, 0, 0, 0, 1, 0};
  EXPECT_LT(a, b);
  EXPECT_NE(std::hash<MacAddress>{}(a), std::hash<MacAddress>{}(b));
}

// --- ByteWriter / ByteReader ----------------------------------------------------

TEST(ByteBuffer, LittleEndianRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16le(0x1234);
  w.u32le(0xDEADBEEF);
  w.u64le(0x0123456789ABCDEFull);

  ByteReader r(w.view());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16le(), 0x1234);
  EXPECT_EQ(r.u32le(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64le(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBuffer, LittleEndianByteOrderOnWire) {
  ByteWriter w;
  w.u16le(0x1234);
  ASSERT_EQ(w.view().size(), 2u);
  EXPECT_EQ(w.view()[0], 0x34);  // LSB first, as 802.11 requires
  EXPECT_EQ(w.view()[1], 0x12);
}

TEST(ByteBuffer, BigEndianHelpers) {
  ByteWriter w;
  w.u16be(0x1234);
  w.u32be(0xCAFEBABE);
  ByteReader r(w.view());
  EXPECT_EQ(r.u16be(), 0x1234);
  auto rest = r.rest();
  EXPECT_EQ(rest.size(), 4u);
  EXPECT_EQ(rest[0], 0xCA);
}

TEST(ByteBuffer, UnderflowThrows) {
  const Bytes data{1, 2, 3};
  ByteReader r(data);
  r.bytes(2);
  EXPECT_THROW(r.u16le(), BufferUnderflow);
}

TEST(ByteBuffer, PatchU16) {
  ByteWriter w;
  w.u16le(0);
  w.u8(9);
  w.patch_u16le(0, 0xBEEF);
  ByteReader r(w.view());
  EXPECT_EQ(r.u16le(), 0xBEEF);
}

TEST(ByteBuffer, HexDump) {
  const Bytes data{0x01, 0xab, 0xff};
  EXPECT_EQ(hex_dump(data), "01 ab ff");
  EXPECT_EQ(hex_dump(Bytes{}), "");
}

// --- CRC-32 ---------------------------------------------------------------------

TEST(Crc32, StandardCheckValue) {
  // The canonical CRC-32 check: crc32("123456789") == 0xCBF43926.
  const std::string s = "123456789";
  const std::span<const std::uint8_t> data{
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyInput) {
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Bytes data(1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7 + 13);
  }
  std::uint32_t state = crc32_init();
  state = crc32_update(state, std::span(data).first(100));
  state = crc32_update(state, std::span(data).subspan(100, 500));
  state = crc32_update(state, std::span(data).subspan(600));
  EXPECT_EQ(crc32_final(state), crc32(data));
}

TEST(Crc32, DetectsSingleBitFlips) {
  Bytes data{0x00, 0x11, 0x22, 0x33, 0x44, 0x55};
  const std::uint32_t original = crc32(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes copy = data;
      copy[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc32(copy), original)
          << "undetected flip at byte " << byte << " bit " << bit;
    }
  }
}

// --- Clock / units -----------------------------------------------------------------

TEST(Clock, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(10)), 10.0);
  EXPECT_EQ(from_seconds(1.5), milliseconds(1500));
}

TEST(Clock, FormatTime) {
  const TimePoint t = kSimStart + milliseconds(1234);
  EXPECT_EQ(format_time(t), "1.234000s");
}

TEST(Units, DbmMwRoundTrip) {
  EXPECT_NEAR(dbm_to_mw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(dbm_to_mw(10.0), 10.0, 1e-9);
  EXPECT_NEAR(mw_to_dbm(dbm_to_mw(-37.5)), -37.5, 1e-9);
}

TEST(Units, ThermalNoise20MHz) {
  // kTB for 20 MHz is the textbook -101 dBm.
  EXPECT_NEAR(thermal_noise_dbm(20e6), -101.0, 0.2);
}

TEST(Units, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
}

TEST(Units, Wavelength) {
  EXPECT_NEAR(wavelength(2.437e9), 0.123, 0.001);   // 2.4 GHz ch 6
  EXPECT_NEAR(wavelength(5.18e9), 0.0579, 0.0005);  // 5 GHz ch 36
}

// --- RNG -----------------------------------------------------------------------------

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool diverged = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform() != b.uniform()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, ForkIndependence) {
  Rng parent(5);
  Rng child = parent.fork();
  // The fork must not replay the parent's stream.
  Rng parent2(5);
  parent2.fork();
  bool differs = false;
  for (int i = 0; i < 20; ++i) {
    if (child.uniform() != parent.uniform()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, GaussianMoments) {
  Rng rng(123);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

// --- Logging ---------------------------------------------------------------------------

// --- JSON parser --------------------------------------------------------------

TEST(JsonParse, DumpIsAParseFixedPoint) {
  common::Json doc = common::Json::object();
  doc["int"] = std::int64_t{-42};
  doc["double"] = 0.194662137;
  doc["big"] = 1.23456789012e17;
  doc["zero"] = 0.0;
  doc["bool"] = true;
  doc["null"] = common::Json();
  doc["text"] = std::string("tabs\there \"quoted\" slash\\");
  common::Json list = common::Json::array();
  list.push_back(std::int64_t{1});
  list.push_back(2.5);
  list.push_back("three");
  doc["list"] = std::move(list);

  const std::string once = doc.dump();
  std::string error;
  const auto parsed = common::parse_json(once, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  // The round trip is a fixed point: parse(dump(x)) dumps identically.
  EXPECT_EQ(parsed->dump(), once);
  const auto twice = common::parse_json(parsed->dump());
  ASSERT_TRUE(twice.has_value());
  EXPECT_EQ(twice->dump(), once);
}

TEST(JsonParse, IntegralDoublesComeBackAsInts) {
  // %.12g renders 3.0 as "3", so the reparse yields an Int; dumping
  // again still reproduces the same bytes — that is all the reduction
  // pipeline needs.
  common::Json doc = common::Json::object();
  doc["v"] = 3.0;
  const std::string text = doc.dump();
  const auto parsed = common::parse_json(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("v")->kind(), common::Json::Kind::kInt);
  EXPECT_EQ(parsed->find("v")->as_double(), 3.0);
  EXPECT_EQ(parsed->dump(), text);
}

TEST(JsonParse, UnicodeEscapesAndControlCharactersRoundTrip) {
  common::Json doc = common::Json::object();
  doc["ctl"] = std::string("a\x01" "b\x1f");
  const std::string text = doc.dump();
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  const auto parsed = common::parse_json(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("ctl")->as_string(), "a\x01" "b\x1f");
  // Surrogate pairs decode to UTF-8.
  const auto emoji = common::parse_json("\"\\ud83d\\ude00\"");
  ASSERT_TRUE(emoji.has_value());
  EXPECT_EQ(emoji->as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(common::parse_json("", &error).has_value());
  EXPECT_FALSE(common::parse_json("{", &error).has_value());
  EXPECT_FALSE(common::parse_json("{\"a\":1,}", &error).has_value());
  EXPECT_FALSE(common::parse_json("[1 2]", &error).has_value());
  EXPECT_FALSE(common::parse_json("1 2", &error).has_value());
  EXPECT_FALSE(common::parse_json("NaN", &error).has_value());
  EXPECT_FALSE(common::parse_json("Infinity", &error).has_value());
  EXPECT_FALSE(common::parse_json("01", &error).has_value());
  EXPECT_FALSE(common::parse_json("\"\\ud800\"", &error).has_value());
  EXPECT_FALSE(common::parse_json("\"unterminated", &error).has_value());
  EXPECT_FALSE(common::parse_json("truely", &error).has_value());
  // Errors carry a position.
  common::parse_json("[1, oops]", &error);
  EXPECT_NE(error.find("offset"), std::string::npos);
}

TEST(JsonParse, ArrayElementAccessIsChecked) {
  const auto parsed = common::parse_json("[10, 20, 30]");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ(parsed->at(1).as_int(), 20);
}

TEST(Logging, SinkReceivesMessagesAtOrAboveLevel) {
  auto& logger = Logger::instance();
  std::vector<std::string> seen;
  logger.set_level(LogLevel::Info);
  logger.set_sink([&seen](LogLevel, const std::string& m) {
    seen.push_back(m);
  });
  PW_DEBUG("dropped %d", 1);
  PW_INFO("kept %d", 2);
  PW_ERROR("kept %s", "too");
  logger.reset_sink();
  logger.set_level(LogLevel::Warn);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "kept 2");
  EXPECT_EQ(seen[1], "kept too");
}

}  // namespace
}  // namespace politewifi
