// CAMPAIGNS.md <-> campaign schema catalogue contract, both ways: the
// doc must name every catalogued artifact field, and every dotted
// field the doc names must exist in the catalogue
// (src/runtime/campaign/schema.cpp). Mirrors the OBSERVABILITY.md /
// obs catalogue discipline in obs_test.cpp, so schema drift — a field
// added in code but never documented, or documentation for a field
// that was renamed away — fails a test instead of rotting quietly.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "runtime/campaign/schema.h"

namespace politewifi::runtime::campaign {
namespace {

std::string read_repo_file(const std::string& rel) {
  const std::string path = std::string(PW_REPO_ROOT) + "/" + rel;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

constexpr const char* kPrefixes[] = {"manifest.", "job.",   "policy.",
                                     "record.",   "state.", "doc."};

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Backtick-quoted dotted identifiers under the artifact prefixes —
/// the doc's way of naming a schema field. File names (`manifest.json`,
/// `state.json`) share the prefix shape and are excluded by their
/// extension.
std::set<std::string> doc_field_names(const std::string& doc) {
  std::set<std::string> found;
  std::size_t pos = 0;
  while ((pos = doc.find('`', pos)) != std::string::npos) {
    const std::size_t end = doc.find('`', pos + 1);
    if (end == std::string::npos) break;
    const std::string token = doc.substr(pos + 1, end - pos - 1);
    pos = end + 1;
    if (token.find('.') == std::string::npos) continue;
    if (ends_with(token, ".json") || ends_with(token, ".jsonl")) continue;
    bool identifier = true;
    for (const char c : token) {
      if (!(std::islower(static_cast<unsigned char>(c)) ||
            std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
            c == '_')) {
        identifier = false;
        break;
      }
    }
    if (!identifier) continue;
    for (const char* prefix : kPrefixes) {
      if (token.rfind(prefix, 0) == 0) {
        found.insert(token);
        break;
      }
    }
  }
  return found;
}

TEST(CampaignDoc, CatalogueIsWellFormed) {
  std::set<std::string> seen;
  for (const SchemaField& field : campaign_schema()) {
    EXPECT_TRUE(seen.insert(field.name).second)
        << "duplicate schema field " << field.name;
    EXPECT_NE(field.description[0], '\0')
        << field.name << " has no description";
    bool prefixed = false;
    for (const char* prefix : kPrefixes) {
      prefixed |= std::string(field.name).rfind(prefix, 0) == 0;
    }
    EXPECT_TRUE(prefixed) << field.name << " is outside every artifact "
                          << "prefix campaign_doc_test knows";
    EXPECT_TRUE(is_campaign_schema_field(field.name));
  }
  EXPECT_FALSE(is_campaign_schema_field("manifest.nonexistent"));
}

TEST(CampaignDoc, CampaignsMdListsEverySchemaField) {
  const std::string doc = read_repo_file("CAMPAIGNS.md");
  ASSERT_FALSE(doc.empty());
  for (const SchemaField& field : campaign_schema()) {
    EXPECT_NE(doc.find("`" + std::string(field.name) + "`"),
              std::string::npos)
        << "CAMPAIGNS.md does not document `" << field.name << "`";
  }
}

TEST(CampaignDoc, CampaignsMdNamesOnlySchemaFields) {
  const std::string doc = read_repo_file("CAMPAIGNS.md");
  for (const std::string& token : doc_field_names(doc)) {
    EXPECT_TRUE(is_campaign_schema_field(token.c_str()))
        << "CAMPAIGNS.md names `" << token
        << "` which is not in the campaign schema catalogue";
  }
}

}  // namespace
}  // namespace politewifi::runtime::campaign
