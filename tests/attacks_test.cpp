// Attack-pipeline integration tests: the Figure 3 deauth behaviour, the
// Figure 6 battery-drain dynamics, the Figure 5 CSI sensing chain, and a
// miniature wardriving survey.
#include <gtest/gtest.h>

#include <set>

#include "core/battery_attack.h"
#include "core/csi_collector.h"
#include "core/wardrive.h"
#include "scenario/device_profiles.h"
#include "scenario/sensing_scene.h"
#include "sensing/activity.h"

namespace politewifi {
namespace {

using sim::Device;
using sim::Simulation;

constexpr MacAddress kApMac{0xf2, 0x6e, 0x0b, 0x01, 0x02, 0x03};
constexpr MacAddress kVictimMac{0x3c, 0x28, 0x6d, 0xaa, 0xbb, 0xcc};
constexpr MacAddress kAttackerMac{0x02, 0xde, 0xad, 0xbe, 0xef, 0x01};

// --- Figure 3: the confused AP ------------------------------------------------------

TEST(Figure3, ApDeauthsStrangerYetStillAcks) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 31});
  auto& trace = sim.trace();

  mac::ApConfig apc;
  apc.fast_keys = true;
  apc.deauth_unknown_senders = true;  // the Google Wifi quirk
  Device& ap = sim.add_ap("google-wifi", kApMac, {0, 0}, apc);

  sim::RadioConfig rig;
  rig.position = {6, 0};
  Device& attacker = sim.add_device(
      {.name = "attacker", .kind = sim::DeviceKind::kAttacker}, kAttackerMac,
      rig);
  core::FakeFrameInjector injector(attacker);

  for (int i = 0; i < 10; ++i) {
    injector.inject_one(ap.address());
    sim.run_for(milliseconds(80));
  }

  // The AP software noticed (class-3 frames from a stranger) and fired
  // deauths at the spoofed address...
  EXPECT_GT(ap.ap()->stats().deauths_sent, 0u);
  const std::size_t deauths_on_air = trace.count([](const sim::TraceEntry& e) {
    return e.parsed && e.frame.fc.is_deauth() &&
           e.frame.addr1 == MacAddress::paper_fake_address();
  });
  // ...and each unACKed deauth appears as a same-SN triplet on the air
  // (initial + 2 retries), exactly like the paper's capture.
  EXPECT_EQ(deauths_on_air, 3 * ap.ap()->stats().deauths_sent);
  const std::size_t retried_deauths = trace.count([](const sim::TraceEntry& e) {
    return e.parsed && e.frame.fc.is_deauth() && e.frame.fc.retry;
  });
  EXPECT_EQ(retried_deauths, 2 * ap.ap()->stats().deauths_sent);

  // ...and the hardware ACKed every fake frame regardless.
  EXPECT_EQ(ap.station().stats().acks_sent, 10u);
}

TEST(Figure3, SoftwareBlocklistDoesNotStopAcks) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 32});
  mac::ApConfig apc;
  apc.fast_keys = true;
  Device& ap = sim.add_ap("ap", kApMac, {0, 0}, apc);

  // "We manually blocked the attacker's fake MAC address on the access
  // point. Surprisingly, the AP still acknowledges the fake frames."
  ap.ap()->block_mac(MacAddress::paper_fake_address());

  sim::RadioConfig rig;
  rig.position = {6, 0};
  Device& attacker = sim.add_device(
      {.name = "attacker", .kind = sim::DeviceKind::kAttacker}, kAttackerMac,
      rig);
  core::FakeFrameInjector injector(attacker);
  for (int i = 0; i < 10; ++i) {
    injector.inject_one(ap.address());
    sim.run_for(milliseconds(10));
  }

  EXPECT_EQ(ap.station().stats().acks_sent, 10u);           // hardware: polite
  EXPECT_EQ(ap.ap()->stats().software_drops_blocked, 10u);  // software: blocked
}

// --- Figure 6: battery drain ---------------------------------------------------------

struct BatteryRig {
  Simulation sim{{.medium = {.shadowing_sigma_db = 0.0}, .seed = 61}};
  Device* ap = nullptr;
  Device* victim = nullptr;
  Device* attacker = nullptr;

  BatteryRig() {
    mac::ApConfig apc;
    apc.fast_keys = true;
    ap = &sim.add_ap("ap", kApMac, {0, 0}, apc);

    mac::ClientConfig cc;
    cc.fast_keys = true;
    cc.power_save = true;
    cc.idle_timeout = milliseconds(100);  // the ">10 pps" knee
    cc.beacon_wake_window = milliseconds(1);
    Device& v = sim.add_client("esp8266", kVictimMac, {4, 0}, cc);
    victim = &v;

    sim::RadioConfig rig;
    rig.position = {7, 2};
    attacker = &sim.add_device(
        {.name = "attacker", .kind = sim::DeviceKind::kAttacker},
        kAttackerMac, rig);

    sim.establish(v, seconds(10));
  }
};

TEST(Figure6, UnattackedVictimSleepsNearTenMilliwatts) {
  BatteryRig rig;
  core::BatteryDrainAttack attack(rig.sim, *rig.attacker, *rig.victim);
  const auto r = attack.run(0.0, seconds(3), seconds(20));
  EXPECT_GT(r.sleep_fraction, 0.9);
  EXPECT_LT(r.avg_power_mw, 30.0);  // paper: ~10 mW
  EXPECT_EQ(r.acks_elicited, 0u);
}

TEST(Figure6, AttackAboveKneePinsRadioAwake) {
  BatteryRig rig;
  core::BatteryDrainAttack attack(rig.sim, *rig.attacker, *rig.victim);
  const auto r = attack.run(100.0, seconds(3), seconds(20));
  EXPECT_LT(r.sleep_fraction, 0.05);
  EXPECT_GT(r.avg_power_mw, 200.0);  // paper: ~230 mW once awake
  EXPECT_GT(r.acks_elicited, 1500u);
}

TEST(Figure6, PowerGrowsWithRate) {
  BatteryRig rig;
  core::BatteryDrainAttack attack(rig.sim, *rig.attacker, *rig.victim);
  const auto r100 = attack.run(100.0, seconds(2), seconds(10));
  const auto r900 = attack.run(900.0, seconds(2), seconds(10));
  EXPECT_GT(r900.avg_power_mw, r100.avg_power_mw + 50.0);
  // Paper's headline: ~35x increase at 900 pps vs idle (10 mW).
  EXPECT_GT(r900.avg_power_mw, 300.0);
  EXPECT_LT(r900.avg_power_mw, 450.0);
}

TEST(Figure6, CameraProjectionsMatchPaperArithmetic) {
  const auto circle2 = scenario::logitech_circle2();
  const auto xt2 = scenario::blink_xt2();
  const auto p1 = core::project_drain(circle2.name, circle2.battery_mwh, 360.0);
  const auto p2 = core::project_drain(xt2.name, xt2.battery_mwh, 360.0);
  EXPECT_NEAR(p1.hours_to_empty, 6.7, 0.05);
  EXPECT_NEAR(p2.hours_to_empty, 16.7, 0.05);
}

// --- Figure 5: CSI sensing chain --------------------------------------------------------

TEST(Figure5, CsiVarianceSeparatesActivities) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 51});

  mac::ClientConfig cc;
  cc.fast_keys = true;
  Device& victim = sim.add_client("tablet", kVictimMac, {4, 0}, cc);

  sim::RadioConfig rig;
  rig.position = {9, 5};  // "different room"
  rig.capture_csi = true;
  Device& attacker = sim.add_device(
      {.name = "esp32", .kind = sim::DeviceKind::kAttacker}, kAttackerMac,
      rig);

  // Script: 8 s still, 4 s pickup, 8 s hold, 8 s typing (Figure 5's arc).
  scenario::BodyMotionModel model({.seed = 5});
  model.add_phase(scenario::Activity::kStill, seconds(8));
  model.add_phase(scenario::Activity::kPickup, seconds(4));
  model.add_phase(scenario::Activity::kHold, seconds(8));
  model.add_phase(scenario::Activity::kTyping, seconds(8));
  const auto strokes = scenario::TypingModel::generate(
      "the quick brown fox", {.words_per_minute = 40, .seed = 3});
  // Shift keystrokes into the typing phase (starts at t=20 s).
  std::vector<scenario::Keystroke> shifted;
  for (auto k : strokes) {
    k.at += seconds(20);
    if (k.at < seconds(28)) shifted.push_back(k);
  }
  model.set_keystrokes(shifted);

  const TimePoint start = sim.now();
  scenario::install_body_csi(sim.medium(), victim.radio(), attacker.radio(),
                             &model, start);

  core::CsiCollector collector(attacker, victim.address());
  collector.start(150.0);  // the paper's rate
  sim.run_for(seconds(28));
  collector.stop();

  ASSERT_GT(collector.samples().size(), 3000u);  // ~150 Hz for 28 s

  const auto series = sensing::resample_amplitude(collector.samples(),
                                                  /*subcarrier=*/17, 150.0);
  auto window_variance = [&](double t0, double t1) {
    std::vector<double> seg;
    for (std::size_t i = 0; i < series.size(); ++i) {
      const double t = series.time_of(i) - series.t0_s;
      if (t >= t0 && t < t1) seg.push_back(series.v[i]);
    }
    return sensing::variance(seg);
  };

  const double still_var = window_variance(1, 7);
  const double pickup_var = window_variance(8.5, 11.5);
  const double hold_var = window_variance(13, 19);
  const double typing_var = window_variance(21, 27);

  // The Figure 5 shape: still is flat; pickup is wild; typing is clearly
  // busier than holding.
  EXPECT_GT(pickup_var, 50.0 * still_var);
  EXPECT_GT(typing_var, 2.0 * hold_var);
  EXPECT_GT(hold_var, still_var);
}

TEST(Figure5, ActivityDetectorFindsTheArc) {
  // Same scene, evaluated through the sensing pipeline's segmentation.
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 52});
  mac::ClientConfig cc;
  cc.fast_keys = true;
  Device& victim = sim.add_client("tablet", kVictimMac, {4, 0}, cc);
  sim::RadioConfig rig;
  rig.position = {9, 5};
  rig.capture_csi = true;
  Device& attacker = sim.add_device(
      {.name = "esp32", .kind = sim::DeviceKind::kAttacker}, kAttackerMac,
      rig);

  scenario::BodyMotionModel model({.seed = 9});
  model.add_phase(scenario::Activity::kStill, seconds(10));
  model.add_phase(scenario::Activity::kWalking, seconds(5));
  model.add_phase(scenario::Activity::kStill, seconds(10));

  scenario::install_body_csi(sim.medium(), victim.radio(), attacker.radio(),
                             &model, sim.now());
  core::CsiCollector collector(attacker, victim.address());
  collector.start(150.0);
  sim.run_for(seconds(25));
  collector.stop();

  const auto series =
      sensing::resample_amplitude(collector.samples(), 17, 150.0);
  sensing::ActivityDetector detector;
  const auto events = detector.motion_events(series);
  // One motion event, around t = 10 s (the §4.3 "sharp change").
  ASSERT_GE(events.size(), 1u);
  EXPECT_NEAR(events.front() - series.t0_s, 10.0, 2.0);
}

// --- Miniature wardrive --------------------------------------------------------------------

TEST(Wardrive, MiniCityFullResponseRate) {
  Simulation sim({.seed = 71});
  scenario::CityConfig city_cfg;
  city_cfg.scale = 0.004;  // a few dozen devices
  city_cfg.seed = 71;
  const scenario::CityPlan plan(scenario::CityPlan::grid_route(1, 400),
                                city_cfg);
  ASSERT_GT(plan.devices().size(), 20u);

  core::WardriveConfig cfg;
  cfg.speed_mps = 15.0;
  cfg.max_duration = minutes(10);
  core::WardriveCampaign campaign(sim, plan, cfg);
  const auto report = campaign.run();

  EXPECT_GT(report.discovered, plan.devices().size() / 2);
  EXPECT_GT(report.discovered_aps, 0u);
  EXPECT_GT(report.discovered_clients, 0u);
  // The paper's headline: every discovered device responds. We allow a
  // whisker of slack for devices first heard at the extreme edge of
  // radio range as the drive ends (the full-scale bench reports ~100%).
  EXPECT_GE(report.response_rate(), 0.98);
  EXPECT_GT(report.acks_observed, 0u);
  // Vendor attribution flows back through the OUI database.
  EXPECT_GT(report.distinct_vendors, 5u);
}

TEST(Wardrive, MultiChannelCityNeedsHoppingRig) {
  Simulation sim({.seed = 72});
  scenario::CityConfig city_cfg;
  city_cfg.scale = 0.004;
  city_cfg.seed = 72;
  city_cfg.channels = {1, 6, 11};  // realistic 2.4 GHz deployment
  const scenario::CityPlan plan(scenario::CityPlan::grid_route(1, 400),
                                city_cfg);

  // Sanity: the city really spans several channels.
  std::set<int> channels;
  for (const auto& d : plan.devices()) channels.insert(d.channel);
  ASSERT_EQ(channels.size(), 3u);

  core::WardriveConfig cfg;
  cfg.speed_mps = 15.0;
  cfg.max_duration = minutes(10);
  cfg.hop_channels = {1, 6, 11};
  core::WardriveCampaign campaign(sim, plan, cfg);
  const auto report = campaign.run();

  // The hopping rig hears devices on all three channels. Coverage per
  // channel is ~1/3 duty, so discovery dips a little vs single-channel,
  // but every channel contributes and verification still works.
  EXPECT_GT(report.discovered, plan.devices().size() / 3);
  EXPECT_GE(report.response_rate(), 0.9);
  std::set<int> heard_channels;
  for (const auto& spec : plan.devices()) {
    if (campaign.scanner().devices().count(spec.mac) > 0) {
      heard_channels.insert(spec.channel);
    }
  }
  EXPECT_EQ(heard_channels.size(), 3u);
}

}  // namespace
}  // namespace politewifi
