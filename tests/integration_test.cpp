// End-to-end integration: full simulator bring-up, real over-the-air
// association + WPA2 handshake, and the paper's core experiments.
#include <gtest/gtest.h>

#include <sstream>

#include "core/ack_sniffer.h"
#include "core/injector.h"
#include "core/monitor.h"
#include "sim/network.h"

namespace politewifi {
namespace {

using sim::Device;
using sim::Simulation;

constexpr MacAddress kApMac{0xf2, 0x6e, 0x0b, 0x01, 0x02, 0x03};
constexpr MacAddress kClientMac{0x3c, 0x28, 0x6d, 0xaa, 0xbb, 0xcc};
constexpr MacAddress kAttackerMac{0x02, 0xde, 0xad, 0xbe, 0xef, 0x01};

TEST(Integration, ClientAssociatesOverTheAir) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 11});
  mac::ApConfig ap_config;
  ap_config.fast_keys = true;
  Device& ap = sim.add_ap("ap", kApMac, {0.0, 0.0}, ap_config);
  mac::ClientConfig cl;
  cl.fast_keys = true;
  Device& client = sim.add_client("client", kClientMac, {4.0, 0.0}, cl);

  ASSERT_TRUE(sim.establish(client, seconds(10)));
  EXPECT_TRUE(client.client()->established());
  EXPECT_TRUE(ap.ap()->is_established(kClientMac));
  EXPECT_EQ(ap.ap()->stats().handshakes_completed, 1u);
}

TEST(Integration, RealPbkdf2HandshakeAlsoWorks) {
  // Same flow with the full PBKDF2 key derivation (slow path).
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 12});
  Device& ap = sim.add_ap("ap", kApMac, {0.0, 0.0}, {});
  Device& client = sim.add_client("client", kClientMac, {4.0, 0.0}, {});

  ASSERT_TRUE(sim.establish(client, seconds(10)));
  EXPECT_TRUE(ap.ap()->is_established(kClientMac));
}

TEST(Integration, EncryptedUplinkDelivers) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 13});
  mac::ApConfig apc;
  apc.fast_keys = true;
  Device& ap = sim.add_ap("ap", kApMac, {0.0, 0.0}, apc);
  mac::ClientConfig cl;
  cl.fast_keys = true;
  Device& client = sim.add_client("client", kClientMac, {4.0, 0.0}, cl);
  ASSERT_TRUE(sim.establish(client, seconds(10)));

  for (int i = 0; i < 5; ++i) {
    client.client()->send_msdu(Bytes{0xde, 0xad, 0xbe, 0xef});
    sim.run_for(milliseconds(20));
  }
  EXPECT_EQ(ap.ap()->stats().msdus_received, 5u);
  EXPECT_EQ(ap.ap()->stats().decrypt_failures, 0u);
}

// --- The paper's central claim, end to end ----------------------------------

TEST(Integration, VictimAcksFakeFrameFromStranger) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 21});
  mac::ApConfig apc;
  apc.fast_keys = true;
  sim.add_ap("ap", kApMac, {0.0, 0.0}, apc);
  mac::ClientConfig cl;
  cl.fast_keys = true;
  Device& victim = sim.add_client("victim", kClientMac, {4.0, 0.0}, cl);
  ASSERT_TRUE(sim.establish(victim, seconds(10)));

  // Attacker: a bare station, no role, no keys, never associated.
  sim::RadioConfig rig;
  rig.position = {8.0, 3.0};
  rig.capture_csi = true;
  Device& attacker = sim.add_device(
      sim::DeviceInfo{.name = "attacker", .kind = sim::DeviceKind::kAttacker},
      kAttackerMac, rig);

  core::MonitorHub hub(attacker.station());
  core::AckSniffer sniffer(hub, attacker.radio(),
                           MacAddress::paper_fake_address());
  core::FakeFrameInjector injector(attacker);

  const auto acked_before = victim.station().stats().acks_sent;
  for (int i = 0; i < 20; ++i) {
    injector.inject_one(victim.address());
    sniffer.note_injection(victim.address());
    sim.run_for(milliseconds(5));
  }

  // The victim ACKed the stranger's fake frames...
  EXPECT_GE(victim.station().stats().acks_sent - acked_before, 18u);
  // ...and the attacker's sniffer saw ACKs addressed to the spoofed MAC.
  EXPECT_GE(sniffer.total(), 18u);
  EXPECT_GE(sniffer.count_from(victim.address()), 18u);
  // The fakes never decrypted — upper layers discarded them — but that
  // happened long after the ACKs left.
  EXPECT_GE(victim.client()->stats().frames_discarded, 18u);
  EXPECT_EQ(victim.client()->stats().msdus_received, 0u);
}

TEST(Integration, UnassociatedVictimStillAcks) {
  // "Even if the victim device is not connected to any WiFi network,
  // this attack still works." (§4.1)
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 22});
  mac::ClientConfig cl;
  cl.fast_keys = true;
  Device& victim = sim.add_client("loner", kClientMac, {3.0, 0.0}, cl);
  ASSERT_FALSE(victim.client()->established());

  sim::RadioConfig rig;
  rig.position = {0.0, 0.0};
  Device& attacker = sim.add_device(
      sim::DeviceInfo{.name = "attacker", .kind = sim::DeviceKind::kAttacker},
      kAttackerMac, rig);
  core::FakeFrameInjector injector(attacker);

  for (int i = 0; i < 10; ++i) {
    injector.inject_one(victim.address());
    sim.run_for(milliseconds(2));
  }
  EXPECT_GE(victim.station().stats().acks_sent, 9u);
}

TEST(Integration, AckArrivesOneSifsAfterFakeFrame) {
  // Timing check on the trace: victim ACK starts exactly SIFS after the
  // fake frame's PPDU ends (2.4 GHz -> 10 us).
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 23});
  auto& trace = sim.trace();
  mac::ClientConfig cl;
  cl.fast_keys = true;
  Device& victim = sim.add_client("victim", kClientMac, {3.0, 0.0}, cl);

  sim::RadioConfig rig;
  rig.position = {0.0, 0.0};
  Device& attacker = sim.add_device(
      sim::DeviceInfo{.name = "attacker", .kind = sim::DeviceKind::kAttacker},
      kAttackerMac, rig);
  core::FakeFrameInjector injector(attacker);
  injector.inject_one(victim.address());
  sim.run_for(milliseconds(5));

  const auto& entries = trace.entries();
  ASSERT_GE(entries.size(), 2u);
  const auto& fake = entries[0];
  const auto& ack = entries[1];
  ASSERT_TRUE(fake.parsed);
  ASSERT_TRUE(ack.parsed);
  EXPECT_TRUE(fake.frame.fc.is_null_function());
  EXPECT_TRUE(ack.frame.fc.is_ack());
  EXPECT_EQ(ack.frame.addr1, MacAddress::paper_fake_address());

  const Duration fake_airtime =
      phy::ppdu_airtime(fake.tx.rate, fake.raw.size());
  // Trace times are transmission starts, so the gap is SIFS plus one
  // 3-metre propagation delay (~10 ns).
  const Duration gap = (ack.time - fake.time) - fake_airtime;
  EXPECT_GE(gap, phy::sifs(phy::Band::k2_4GHz));
  EXPECT_LE(gap, phy::sifs(phy::Band::k2_4GHz) + nanoseconds(100));
}

TEST(Integration, Figure2TraceShape) {
  // The Wireshark view of Figure 2: null frames from aa:bb:bb:bb:bb:bb to
  // the victim, each followed by an Acknowledgement back to it.
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 24});
  auto& trace = sim.trace();
  mac::ClientConfig cl;
  cl.fast_keys = true;
  Device& victim = sim.add_client("victim", kClientMac, {3.0, 0.0}, cl);
  sim::RadioConfig rig;
  rig.position = {0.0, 0.0};
  Device& attacker = sim.add_device(
      sim::DeviceInfo{.name = "attacker", .kind = sim::DeviceKind::kAttacker},
      kAttackerMac, rig);
  core::FakeFrameInjector injector(attacker);

  for (int i = 0; i < 3; ++i) {
    injector.inject_one(victim.address());
    sim.run_for(milliseconds(3));
  }

  std::ostringstream os;
  trace.dump(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("Null function (No data)"), std::string::npos);
  EXPECT_NE(text.find("Acknowledgement"), std::string::npos);
  EXPECT_NE(text.find("aa:bb:bb:bb:bb:bb"), std::string::npos);

  const std::size_t acks = trace.count([](const sim::TraceEntry& e) {
    return e.parsed && e.frame.fc.is_ack() &&
           e.frame.addr1 == MacAddress::paper_fake_address();
  });
  EXPECT_EQ(acks, 3u);
}

TEST(Integration, RtsFromStrangerElicitsCts) {
  // §2.2: the RTS/CTS variant that defeats even a hypothetical fast
  // security decoder.
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 25});
  mac::ClientConfig cl;
  cl.fast_keys = true;
  Device& victim = sim.add_client("victim", kClientMac, {3.0, 0.0}, cl);
  sim::RadioConfig rig;
  rig.position = {0.0, 0.0};
  Device& attacker = sim.add_device(
      sim::DeviceInfo{.name = "attacker", .kind = sim::DeviceKind::kAttacker},
      kAttackerMac, rig);

  core::MonitorHub hub(attacker.station());
  core::AckSniffer sniffer(hub, attacker.radio(),
                           MacAddress::paper_fake_address());
  core::FakeFrameInjector injector(attacker, {.use_rts = true});

  for (int i = 0; i < 10; ++i) {
    injector.inject_one(victim.address());
    sniffer.note_injection(victim.address());
    sim.run_for(milliseconds(2));
  }
  EXPECT_GE(victim.station().stats().cts_sent, 9u);
  std::size_t cts_seen = 0;
  for (const auto& obs : sniffer.observations()) cts_seen += obs.is_cts;
  EXPECT_GE(cts_seen, 9u);
}

TEST(Integration, CorruptedFakeFrameIsNotAcked) {
  // Failure injection: an FCS-damaged frame elicits nothing.
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 26});
  mac::ClientConfig cl;
  cl.fast_keys = true;
  Device& victim = sim.add_client("victim", kClientMac, {3.0, 0.0}, cl);
  sim.run_for(milliseconds(10));

  // Hand-corrupt a frame and push it through the victim's MAC directly.
  frames::Frame fake = frames::make_null_function(
      victim.address(), MacAddress::paper_fake_address(), 1);
  Bytes raw = frames::serialize(fake);
  frames::corrupt(raw, 2, 99);
  const auto acks_before = victim.station().stats().acks_sent;
  victim.station().on_ppdu_received(raw, phy::RxVector{});
  sim.run_for(milliseconds(1));
  EXPECT_EQ(victim.station().stats().acks_sent, acks_before);
  EXPECT_GE(victim.station().stats().fcs_failures, 1u);
}

TEST(Integration, OutOfRangeAttackerGetsNothing) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 27});
  mac::ClientConfig cl;
  cl.fast_keys = true;
  Device& victim = sim.add_client("victim", kClientMac, {0.0, 0.0}, cl);
  sim::RadioConfig rig;
  rig.position = {5000.0, 0.0};  // 5 km away
  Device& attacker = sim.add_device(
      sim::DeviceInfo{.name = "attacker", .kind = sim::DeviceKind::kAttacker},
      kAttackerMac, rig);
  core::FakeFrameInjector injector(attacker);
  for (int i = 0; i < 10; ++i) {
    injector.inject_one(victim.address());
    sim.run_for(milliseconds(2));
  }
  EXPECT_EQ(victim.station().stats().acks_sent, 0u);
}

}  // namespace
}  // namespace politewifi
