// Property and fuzz tests: randomized inputs against the codec, crypto
// and MAC invariants. Parameterized over seeds so failures reproduce.
#include <gtest/gtest.h>

#include "crypto/ccmp.h"
#include "crypto/wpa2.h"
#include "frames/data.h"
#include "frames/frame_builder.h"
#include "frames/management.h"
#include "frames/serializer.h"
#include "mac/eapol.h"
#include "mac/station.h"

namespace politewifi {
namespace {

// --- Serializer fuzz ------------------------------------------------------------

/// Zeroes the fields the frame's layout does not carry on air (a builder
/// can set addr3 on an RTS or QoS control on a beacon; those bits never
/// leave the machine, so a faithful round trip returns them as zero).
frames::Frame canonical(frames::Frame f) {
  if (!f.has_addr2()) f.addr2 = MacAddress{};
  if (!f.has_addr3()) f.addr3 = MacAddress{};
  if (!f.has_addr4()) f.addr4 = MacAddress{};
  if (!f.has_sequence_control()) f.seq = {};
  if (!f.has_qos_control()) f.qos_control = 0;
  return f;
}

class SerializerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializerFuzz, RandomBytesNeverCrashAndNeverPassFcs) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    Bytes raw(std::size_t(rng.uniform_int(0, 300)));
    for (auto& b : raw) b = std::uint8_t(rng.uniform_int(0, 255));
    const auto result = frames::deserialize(raw);
    // 32-bit FCS over random bytes: passing would be a 2^-32 fluke; with
    // 200*16 trials the expected count is ~1e-6, so assert it.
    if (raw.size() >= 14) {
      EXPECT_FALSE(result.fcs_ok) << "random bytes passed FCS?!";
    } else {
      EXPECT_FALSE(result.frame.has_value());
    }
  }
}

TEST_P(SerializerFuzz, RandomFramesRoundTripExactly) {
  Rng rng(GetParam() ^ 0xABCD);
  for (int trial = 0; trial < 100; ++trial) {
    frames::FrameBuilder builder;
    const int kind = int(rng.uniform_int(0, 2));
    if (kind == 0) {
      builder.management(static_cast<frames::ManagementSubtype>(
          std::vector<int>{0, 1, 4, 5, 8, 10, 11, 12}[std::size_t(
              rng.uniform_int(0, 7))]));
    } else if (kind == 1) {
      builder.data(static_cast<frames::DataSubtype>(
          std::vector<int>{0, 4, 8, 12}[std::size_t(rng.uniform_int(0, 3))]));
      builder.qos(std::uint16_t(rng.uniform_int(0, 15)));
    } else {
      builder.control(frames::ControlSubtype::kRts);
    }
    builder.to_ds(rng.bernoulli(0.5))
        .retry(rng.bernoulli(0.3))
        .power_management(rng.bernoulli(0.2))
        .protected_frame(rng.bernoulli(0.3))
        .duration(std::uint16_t(rng.uniform_int(0, 32767)))
        .addr1(MacAddress::from_u64(std::uint64_t(rng.uniform_int(
            0, std::numeric_limits<std::int64_t>::max()))))
        .addr2(MacAddress::from_u64(std::uint64_t(rng.uniform_int(
            0, std::numeric_limits<std::int64_t>::max()))))
        .addr3(MacAddress::from_u64(std::uint64_t(rng.uniform_int(
            0, std::numeric_limits<std::int64_t>::max()))))
        .sequence(std::uint16_t(rng.uniform_int(0, 4095)),
                  std::uint8_t(rng.uniform_int(0, 15)));
    Bytes body(std::size_t(rng.uniform_int(0, 200)));
    for (auto& b : body) b = std::uint8_t(rng.uniform_int(0, 255));
    builder.body(std::move(body));

    frames::Frame frame = builder.build();
    // Avoid the WDS 4-address layout only when both DS bits landed set
    // on a non-data frame (undefined layout we don't model).
    if (!frame.fc.is_data() && frame.fc.to_ds && frame.fc.from_ds) {
      frame.fc.from_ds = false;
    }

    const Bytes raw = frames::serialize(frame);
    const auto result = frames::deserialize(raw);
    ASSERT_TRUE(result.frame.has_value());
    ASSERT_TRUE(result.fcs_ok);
    EXPECT_EQ(*result.frame, canonical(frame));
  }
}

TEST_P(SerializerFuzz, TruncationAtEveryLengthIsSafe) {
  Rng rng(GetParam() ^ 0x9999);
  const frames::Frame frame = frames::make_data_to_ds(
      {1, 2, 3, 4, 5, 6}, {7, 8, 9, 10, 11, 12}, {1, 2, 3, 4, 5, 6},
      Bytes(40, 0x77), 123);
  const Bytes raw = frames::serialize(frame);
  for (std::size_t len = 0; len <= raw.size(); ++len) {
    const Bytes prefix(raw.begin(), raw.begin() + long(len));
    const auto result = frames::deserialize(prefix);  // must not throw
    if (len == raw.size()) {
      EXPECT_TRUE(result.fcs_ok);
    } else {
      EXPECT_FALSE(result.fcs_ok);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializerFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- CCMP across payload sizes -------------------------------------------------------

class CcmpSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CcmpSizeSweep, RoundTripAndTamperDetection) {
  const std::size_t size = GetParam();
  const crypto::Ptk ptk =
      crypto::derive_fast_ptk({1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2});

  Rng rng(size + 1);
  Bytes payload(size);
  for (auto& b : payload) b = std::uint8_t(rng.uniform_int(0, 255));

  frames::Frame f = frames::make_data_to_ds(
      {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2}, {1, 1, 1, 1, 1, 1}, payload, 5);
  crypto::ccmp_protect(f, ptk.tk, 42);

  frames::Frame ok = f;
  ASSERT_TRUE(crypto::ccmp_unprotect(ok, ptk.tk));
  EXPECT_EQ(ok.body, payload);

  {
    // Tamper inside the authenticated region (ciphertext + MIC). The
    // CCMP header's reserved octet is — faithfully to the standard —
    // NOT authenticated, so steer clear of it.
    frames::Frame tampered = f;
    const std::size_t lo = frames::CcmpHeader::kSize;
    tampered.body[std::size_t(
        rng.uniform_int(std::int64_t(lo),
                        std::int64_t(tampered.body.size()) - 1))] ^= 0x01;
    EXPECT_FALSE(crypto::ccmp_unprotect(tampered, ptk.tk));
  }
  {
    // Flipping the packet number must also fail: it feeds the nonce.
    frames::Frame pn_tampered = f;
    pn_tampered.body[0] ^= 0x01;
    EXPECT_FALSE(crypto::ccmp_unprotect(pn_tampered, ptk.tk));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CcmpSizeSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 100,
                                           255, 256, 1000, 1500));

// --- ACK invariant across PHY rates ---------------------------------------------------

class MockEnv : public mac::MacEnvironment {
 public:
  TimePoint now() const override { return now_; }
  std::uint64_t schedule(Duration delay, SmallFn fn) override {
    fns_.emplace_back(now_ + delay, std::move(fn));
    return fns_.size();
  }
  void cancel(std::uint64_t) override {}
  void transmit(const frames::Frame& frame, const phy::TxVector& tx) override {
    sent_.emplace_back(frame, tx);
  }
  bool medium_busy() const override { return false; }

  void drain() {
    // Execute everything scheduled (single pass is enough for an ACK).
    auto fns = std::move(fns_);
    for (auto& [at, fn] : fns) {
      now_ = at;
      fn();
    }
  }

  std::vector<std::pair<frames::Frame, phy::TxVector>> sent_;

 private:
  TimePoint now_ = kSimStart;
  std::vector<std::pair<TimePoint, SmallFn>> fns_;
};

class AckRateSweep : public ::testing::TestWithParam<phy::PhyRate> {};

TEST_P(AckRateSweep, AckUsesControlResponseRateOfReception) {
  const phy::PhyRate rx_rate = GetParam();
  MockEnv env;
  mac::MacConfig cfg;
  cfg.address = {9, 9, 9, 9, 9, 9};
  mac::Station station(cfg, env, Rng(1));

  phy::RxVector rx;
  rx.rate = rx_rate;
  station.on_ppdu_received(
      frames::serialize(frames::make_null_function(
          cfg.address, MacAddress::paper_fake_address(), 1)),
      rx);
  env.drain();

  ASSERT_EQ(env.sent_.size(), 1u);
  EXPECT_TRUE(env.sent_[0].first.fc.is_ack());
  EXPECT_EQ(env.sent_[0].second.rate, phy::control_response_rate(rx_rate));
}

INSTANTIATE_TEST_SUITE_P(AllRates, AckRateSweep,
                         ::testing::Values(phy::kOfdm6, phy::kOfdm9,
                                           phy::kOfdm12, phy::kOfdm18,
                                           phy::kOfdm24, phy::kOfdm36,
                                           phy::kOfdm48, phy::kOfdm54),
                         [](const auto& info) {
                           std::string n = info.param.name();
                           for (auto& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

// --- EAPOL MIC property -----------------------------------------------------------------

TEST(EapolProperty, MicBindsEveryField) {
  const crypto::Ptk ptk =
      crypto::derive_fast_ptk({1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2});
  mac::EapolKey msg;
  msg.message_number = 2;
  Rng rng(3);
  for (auto& b : msg.nonce) b = std::uint8_t(rng.uniform_int(0, 255));
  msg.mic = mac::EapolKey::compute_mic(ptk.kck, msg);
  ASSERT_TRUE(msg.verify_mic(ptk.kck));

  auto tampered = msg;
  tampered.message_number = 3;
  EXPECT_FALSE(tampered.verify_mic(ptk.kck));
  tampered = msg;
  tampered.nonce[0] ^= 1;
  EXPECT_FALSE(tampered.verify_mic(ptk.kck));
  tampered = msg;
  tampered.install_flag = !tampered.install_flag;
  EXPECT_FALSE(tampered.verify_mic(ptk.kck));
}

}  // namespace
}  // namespace politewifi
