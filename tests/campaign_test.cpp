// Campaign runtime tests: manifest schema strictness and canonical
// round-trips, the Python/C++ seed-derivation and formatting agreement
// (pinned against the tools/pw_campaign.py-authored golden), JSONL
// journal semantics (torn tails, duplicate and corrupt records), and
// the driver's end-to-end determinism contract — straight runs,
// SIGKILLed children, checkpoint/resume and quarantine all converge on
// byte-identical campaign documents (CAMPAIGNS.md). End-to-end cases
// spawn the real pw_run binary (PW_PW_RUN) through the in-process
// driver, so the fork/exec, timeout and journal paths are the ones
// production takes.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/json_parse.h"
#include "common/jsonl.h"
#include "obs/metrics.h"
#include "runtime/campaign/driver.h"
#include "runtime/campaign/journal.h"
#include "runtime/campaign/manifest.h"
#include "runtime/campaign/schema.h"

namespace politewifi::runtime::campaign {
namespace {

// Counter-assertion tests skip under -DPW_METRICS=OFF, where the obs
// macros compile to no-ops by design (same discipline as obs_test.cpp).
#if PW_OBS_ON
#define PW_REQUIRE_OBS_ON() ((void)0)
#else
#define PW_REQUIRE_OBS_ON() \
  GTEST_SKIP() << "instrumentation compiled out (PW_METRICS=OFF)"
#endif

std::string read_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

std::string make_temp_dir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string tmpl = (tmp != nullptr ? tmp : "/tmp");
  tmpl += "/pw_campaign_test.XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  EXPECT_NE(mkdtemp(buf.data()), nullptr);
  return std::string(buf.data());
}

/// A minimal fast manifest: quickstart smoke jobs, distinct params.
std::string test_manifest_text(std::int64_t timeout_ms = 0,
                               std::int64_t max_attempts = 3) {
  CampaignManifest manifest;
  manifest.campaign = "test";
  manifest.suite_version = "t1";
  manifest.base_seed = 77;
  manifest.policy.backoff_ms = 1;
  manifest.policy.max_attempts = max_attempts;
  manifest.policy.timeout_ms = timeout_ms;
  CampaignJob a;
  a.id = "a-quickstart";
  a.experiment = "quickstart";
  a.smoke = true;
  a.seed = derive_job_seed(manifest.base_seed, a.id);
  CampaignJob b;
  b.id = "b-quickstart";
  b.experiment = "quickstart";
  b.params["watch_ms"] = "40";
  b.smoke = true;
  b.seed = derive_job_seed(manifest.base_seed, b.id);
  manifest.jobs = {a, b};
  return manifest.to_json().dump() + "\n";
}

CampaignDriverOptions driver_options(const std::string& root,
                                     const std::string& name,
                                     int processes) {
  CampaignDriverOptions options;
  options.argv0 = PW_PW_RUN;
  options.manifest_path = root + "/" + name + ".json";
  options.dir = root + "/" + name;
  options.processes = processes;
  options.json_arg = root + "/" + name + ".out.json";
  return options;
}

// ------------------------------------------------------- manifest ----

TEST(CampaignManifestTest, RoundTripIsByteStable) {
  const std::string text = test_manifest_text();
  std::string error;
  auto manifest = parse_campaign_manifest_text(text, &error);
  ASSERT_TRUE(manifest.has_value()) << error;
  EXPECT_EQ(manifest->to_json().dump() + "\n", text);
}

TEST(CampaignManifestTest, DerivesOmittedSeedsToCanonicalForm) {
  const std::string text =
      "{\"base_seed\": 77, \"campaign\": \"test\", \"jobs\": ["
      "{\"experiment\": \"quickstart\", \"id\": \"a-quickstart\"}],"
      "\"policy\": {\"backoff_ms\": 1, \"max_attempts\": 3, "
      "\"timeout_ms\": 0}, \"suite_version\": \"t1\"}";
  std::string error;
  auto manifest = parse_campaign_manifest_text(text, &error);
  ASSERT_TRUE(manifest.has_value()) << error;
  EXPECT_EQ(manifest->jobs[0].seed, derive_job_seed(77, "a-quickstart"));
  // Re-parsing the canonical form (seed now explicit) is a fixed point.
  const std::string canonical = manifest->to_json().dump() + "\n";
  auto again = parse_campaign_manifest_text(canonical, &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->to_json().dump() + "\n", canonical);
}

TEST(CampaignManifestTest, SeedDerivationIsMaskedNonNegative) {
  // A label landing in the top bit of splitmix64 must fold into
  // --seed's accepted range rather than serialize negative.
  for (const char* id : {"a", "b", "crash-7", "zz.zz", "x_1"}) {
    EXPECT_GE(derive_job_seed(0, id), 0) << id;
    EXPECT_GE(derive_job_seed((1LL << 62), id), 0) << id;
  }
  // Different ids, different streams (the fnv1a64 label hash).
  EXPECT_NE(derive_job_seed(77, "a-quickstart"),
            derive_job_seed(77, "b-quickstart"));
}

TEST(CampaignManifestTest, RejectsMalformedManifests) {
  const struct {
    const char* patch;  // replaces the jobs entry / a field
    const char* expect;
  } kCases[] = {
      {"{\"base_seed\": 1, \"campaign\": \"x\", \"jobs\": [], \"policy\": "
       "{\"backoff_ms\": 1, \"max_attempts\": 1, \"timeout_ms\": 0}, "
       "\"suite_version\": \"v\"}",
       "jobs is empty"},
      {"{\"base_seed\": 1, \"campaign\": \"X\", \"jobs\": [{\"experiment\": "
       "\"q\", \"id\": \"a\"}], \"policy\": {\"backoff_ms\": 1, "
       "\"max_attempts\": 1, \"timeout_ms\": 0}, \"suite_version\": \"v\"}",
       "manifest.campaign"},
      {"{\"base_seed\": 1, \"campaign\": \"x\", \"jobs\": [{\"experiment\": "
       "\"q\", \"id\": \"a\"}, {\"experiment\": \"q\", \"id\": \"a\"}], "
       "\"policy\": {\"backoff_ms\": 1, \"max_attempts\": 1, "
       "\"timeout_ms\": 0}, \"suite_version\": \"v\"}",
       "duplicate id"},
      {"{\"base_seed\": 1, \"campaign\": \"x\", \"jobs\": [{\"experiment\": "
       "\"q\", \"id\": \"a\", \"params\": {\"k\": 1}}], \"policy\": "
       "{\"backoff_ms\": 1, \"max_attempts\": 1, \"timeout_ms\": 0}, "
       "\"suite_version\": \"v\"}",
       "must be a string"},
      {"{\"base_seed\": 1, \"campaign\": \"x\", \"jobs\": [{\"experiment\": "
       "\"q\", \"id\": \"a\", \"typo\": 1}], \"policy\": {\"backoff_ms\": 1, "
       "\"max_attempts\": 1, \"timeout_ms\": 0}, \"suite_version\": \"v\"}",
       "unknown key"},
      {"{\"base_seed\": 1, \"campaign\": \"x\", \"jobs\": [{\"experiment\": "
       "\"q\", \"id\": \"a\"}], \"policy\": {\"backoff_ms\": 1, "
       "\"max_attempts\": 0, \"timeout_ms\": 0}, \"suite_version\": \"v\"}",
       "max_attempts"},
      {"{\"base_seed\": 1, \"campaign\": \"x\", \"jobs\": [{\"experiment\": "
       "\"q\", \"id\": \"a\", \"expect_digest\": \"sha1:ffff\"}], "
       "\"policy\": {\"backoff_ms\": 1, \"max_attempts\": 1, "
       "\"timeout_ms\": 0}, \"suite_version\": \"v\"}",
       "expect_digest"},
  };
  for (const auto& test_case : kCases) {
    std::string error;
    EXPECT_FALSE(
        parse_campaign_manifest_text(test_case.patch, &error).has_value())
        << test_case.patch;
    EXPECT_NE(error.find(test_case.expect), std::string::npos) << error;
  }
}

TEST(CampaignManifestTest, PythonGoldenMatchesCppCanonicalForm) {
  // tests/goldens/campaign/manifest.json is authored by
  // tools/pw_campaign.py init; the C++ round-trip reproducing its exact
  // bytes pins the Python/C++ agreement on canonical formatting AND on
  // the splitmix64/fnv1a64 seed derivation (the golden's seeds were
  // derived in Python).
  const std::string golden = read_text(
      std::string(PW_REPO_ROOT) + "/tests/goldens/campaign/manifest.json");
  ASSERT_FALSE(golden.empty());
  std::string error;
  auto manifest = parse_campaign_manifest_text(golden, &error);
  ASSERT_TRUE(manifest.has_value()) << error;
  EXPECT_EQ(manifest->to_json().dump() + "\n", golden);
  for (const CampaignJob& job : manifest->jobs) {
    EXPECT_EQ(job.seed, derive_job_seed(manifest->base_seed, job.id))
        << job.id;
  }
}

// ---------------------------------------------------- jsonl journal --

TEST(JsonlTest, CompactDumpIsAParseFixedPoint) {
  const std::string text = test_manifest_text();
  auto doc = common::parse_json(text);
  ASSERT_TRUE(doc.has_value());
  const std::string compact = doc->dump_compact();
  EXPECT_EQ(compact.find('\n'), std::string::npos);
  auto reparsed = common::parse_json(compact);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->dump(), doc->dump());
  EXPECT_EQ(reparsed->dump_compact(), compact);
}

TEST(JsonlTest, AppendReadRoundTripAndTornTail) {
  const std::string root = make_temp_dir();
  const std::string path = root + "/j.jsonl";
  common::Json a = common::Json::object();
  a["id"] = "one";
  common::Json b = common::Json::object();
  b["id"] = "two";
  std::string error;
  ASSERT_TRUE(common::append_jsonl_record(path, a, &error)) << error;
  ASSERT_TRUE(common::append_jsonl_record(path, b, &error)) << error;

  common::JsonlReadResult result;
  ASSERT_TRUE(common::read_jsonl_file(path, &result, &error)) << error;
  EXPECT_EQ(result.records.size(), 2u);
  EXPECT_FALSE(result.torn_tail);
  EXPECT_EQ(result.records[1].find("id")->as_string(), "two");

  // A writer dying mid-append leaves a partial last line: flagged as a
  // torn tail with the truncation offset, not an error.
  const std::string clean = read_text(path);
  write_text(path, clean + "{\"id\":\"thr");
  ASSERT_TRUE(common::read_jsonl_file(path, &result, &error)) << error;
  EXPECT_EQ(result.records.size(), 2u);
  EXPECT_TRUE(result.torn_tail);
  EXPECT_EQ(result.torn_tail_offset, clean.size());

  // The same bytes mid-file (newline-complete) are corruption.
  write_text(path, "{\"id\":\"thr\n" + clean);
  EXPECT_FALSE(common::read_jsonl_file(path, &result, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

// ------------------------------------------------- journal loading ---

struct JournalFixture {
  std::string root = make_temp_dir();
  CampaignManifest manifest;
  std::string digest;
  JournalFixture() {
    std::string error;
    auto parsed = parse_campaign_manifest_text(test_manifest_text(), &error);
    EXPECT_TRUE(parsed.has_value()) << error;
    manifest = std::move(*parsed);
    digest = campaign_digest(manifest.to_json().dump() + "\n");
  }
  JobRecord record_for(const CampaignJob& job) {
    JobRecord record;
    record.id = job.id;
    record.experiment = job.experiment;
    record.seed = job.seed;
    record.document = common::Json::object();
    record.document["experiment"] = job.experiment;
    record.digest = campaign_digest(document_text(record.document));
    return record;
  }
  void commit(const JobRecord& record) {
    std::string error;
    ASSERT_TRUE(append_job_record(root, record, &error)) << error;
    std::map<std::string, JobProgress> progress;
    JobProgress& entry = progress[record.id];
    entry.attempts = 1;
    entry.status = "completed";
    entry.digest = record.digest;
    ASSERT_TRUE(
        write_campaign_state(root, manifest, digest, progress, &error))
        << error;
  }
};

TEST(CampaignJournalTest, FreshDirectoryLoadsEmpty) {
  JournalFixture fixture;
  CampaignJournal journal;
  std::string error;
  ASSERT_TRUE(load_campaign_journal(fixture.root, fixture.manifest,
                                    fixture.digest, &journal, &error))
      << error;
  EXPECT_TRUE(journal.completed.empty());
}

TEST(CampaignJournalTest, RoundTripsACompletedJob) {
  JournalFixture fixture;
  fixture.commit(fixture.record_for(fixture.manifest.jobs[0]));
  CampaignJournal journal;
  std::string error;
  ASSERT_TRUE(load_campaign_journal(fixture.root, fixture.manifest,
                                    fixture.digest, &journal, &error))
      << error;
  EXPECT_EQ(journal.completed.size(), 1u);
  EXPECT_EQ(journal.completed.count("a-quickstart"), 1u);
}

TEST(CampaignJournalTest, RejectsDuplicateCompletionRecords) {
  JournalFixture fixture;
  const JobRecord record = fixture.record_for(fixture.manifest.jobs[0]);
  fixture.commit(record);
  std::string error;
  ASSERT_TRUE(append_job_record(fixture.root, record, &error)) << error;
  CampaignJournal journal;
  EXPECT_FALSE(load_campaign_journal(fixture.root, fixture.manifest,
                                     fixture.digest, &journal, &error));
  EXPECT_NE(error.find("duplicate record"), std::string::npos) << error;
}

TEST(CampaignJournalTest, RejectsRecordsForUnknownJobs) {
  JournalFixture fixture;
  JobRecord rogue = fixture.record_for(fixture.manifest.jobs[0]);
  rogue.id = "never-declared";
  fixture.commit(rogue);
  CampaignJournal journal;
  std::string error;
  EXPECT_FALSE(load_campaign_journal(fixture.root, fixture.manifest,
                                     fixture.digest, &journal, &error));
  EXPECT_NE(error.find("not a job of this manifest"), std::string::npos)
      << error;
}

TEST(CampaignJournalTest, RejectsDigestDrift) {
  JournalFixture fixture;
  JobRecord record = fixture.record_for(fixture.manifest.jobs[0]);
  record.digest = "crc32:00000000";
  fixture.commit(record);
  CampaignJournal journal;
  std::string error;
  EXPECT_FALSE(load_campaign_journal(fixture.root, fixture.manifest,
                                     fixture.digest, &journal, &error));
  EXPECT_NE(error.find("fails its own digest"), std::string::npos) << error;
}

TEST(CampaignJournalTest, RefusesAJournalFromADifferentManifest) {
  JournalFixture fixture;
  fixture.commit(fixture.record_for(fixture.manifest.jobs[0]));
  // A policy edit changes the campaign digest while keeping the name,
  // suite and every job's (experiment, seed) intact, so the refusal is
  // the manifest-digest cross-check — not per-record drift and not the
  // coarser campaign/suite identity check, both of which fire earlier.
  CampaignManifest edited = fixture.manifest;
  edited.policy.backoff_ms += 1;
  const std::string edited_digest =
      campaign_digest(edited.to_json().dump() + "\n");
  CampaignJournal journal;
  std::string error;
  EXPECT_FALSE(load_campaign_journal(fixture.root, edited, edited_digest,
                                     &journal, &error));
  EXPECT_NE(error.find("refusing to mix"), std::string::npos) << error;
}

TEST(CampaignJournalTest, RecoversASnapshotLaggingTheJournal) {
  // The crash window: append_job_record succeeded, the driver died
  // before the state.json rewrite. The stale snapshot (job still
  // mid-attempt) must not refuse resume — the loader patches the entry
  // from the digest-verified record.
  JournalFixture fixture;
  const JobRecord record = fixture.record_for(fixture.manifest.jobs[0]);
  std::string error;
  ASSERT_TRUE(append_job_record(fixture.root, record, &error)) << error;
  std::map<std::string, JobProgress> progress;
  progress[record.id].attempts = 1;  // claimed, never marked completed
  ASSERT_TRUE(write_campaign_state(fixture.root, fixture.manifest,
                                   fixture.digest, progress, &error))
      << error;
  CampaignJournal journal;
  ASSERT_TRUE(load_campaign_journal(fixture.root, fixture.manifest,
                                    fixture.digest, &journal, &error))
      << error;
  EXPECT_EQ(journal.completed.count(record.id), 1u);
  const JobProgress& patched = journal.progress.at(record.id);
  EXPECT_EQ(patched.status.value_or(""), "completed");
  EXPECT_EQ(patched.digest.value_or(""), record.digest);
  EXPECT_GE(patched.attempts, 1);
}

TEST(CampaignJournalTest, RejectsSnapshotCompletionWithoutARecord) {
  // The reverse direction cannot arise from the append-then-snapshot
  // write order, so it stays a hard error.
  JournalFixture fixture;
  const JobRecord record = fixture.record_for(fixture.manifest.jobs[0]);
  std::string error;
  std::map<std::string, JobProgress> progress;
  JobProgress& entry = progress[record.id];
  entry.attempts = 1;
  entry.status = "completed";
  entry.digest = record.digest;
  ASSERT_TRUE(write_campaign_state(fixture.root, fixture.manifest,
                                   fixture.digest, progress, &error))
      << error;
  CampaignJournal journal;
  EXPECT_FALSE(load_campaign_journal(fixture.root, fixture.manifest,
                                     fixture.digest, &journal, &error));
  EXPECT_NE(error.find("no record"), std::string::npos) << error;
}

TEST(CampaignJournalTest, WrongKindRecordFieldIsANamedError) {
  // A hand-corrupted journal whose field has the wrong JSON kind must
  // produce a named error, never a PW_CHECK abort from an accessor.
  JournalFixture fixture;
  write_text(results_path(fixture.root),
             "{\"digest\":\"crc32:00000000\",\"document\":{},"
             "\"experiment\":\"quickstart\",\"id\":\"a-quickstart\","
             "\"seed\":\"nope\"}\n");
  CampaignJournal journal;
  std::string error;
  EXPECT_FALSE(load_campaign_journal(fixture.root, fixture.manifest,
                                     fixture.digest, &journal, &error));
  EXPECT_NE(error.find("a-quickstart"), std::string::npos) << error;
  EXPECT_NE(error.find("\"seed\""), std::string::npos) << error;
}

TEST(CampaignJournalTest, WrongKindStateFieldIsANamedError) {
  JournalFixture fixture;
  std::string error;
  std::map<std::string, JobProgress> progress;
  progress["a-quickstart"].attempts = 1;
  ASSERT_TRUE(write_campaign_state(fixture.root, fixture.manifest,
                                   fixture.digest, progress, &error))
      << error;
  const std::string state_file = state_path(fixture.root);
  std::string text = read_text(state_file);
  const std::string from = "\"attempts\": 1";
  const std::size_t pos = text.find(from);
  ASSERT_NE(pos, std::string::npos) << text;
  write_text(state_file,
             text.replace(pos, from.size(), "\"attempts\": \"1\""));
  CampaignJournal journal;
  EXPECT_FALSE(load_campaign_journal(fixture.root, fixture.manifest,
                                     fixture.digest, &journal, &error));
  EXPECT_NE(error.find("a-quickstart"), std::string::npos) << error;
  EXPECT_NE(error.find("\"attempts\""), std::string::npos) << error;
}

TEST(CampaignJournalTest, RefusesResumeOverATornTail) {
  JournalFixture fixture;
  fixture.commit(fixture.record_for(fixture.manifest.jobs[0]));
  const std::string results = results_path(fixture.root);
  write_text(results, read_text(results) + "{\"id\":\"b-qui");
  CampaignJournal journal;
  std::string error;
  EXPECT_FALSE(load_campaign_journal(fixture.root, fixture.manifest,
                                     fixture.digest, &journal, &error));
  EXPECT_NE(error.find("torn record"), std::string::npos) << error;
  EXPECT_NE(error.find("pw_campaign.py repair"), std::string::npos) << error;
}

// ------------------------------------------------- driver, end-to-end

/// Runs a campaign with the real pw_run binary and returns (exit code,
/// final document text — empty when none was produced).
std::pair<int, std::string> run_campaign(const CampaignDriverOptions& options) {
  const int code = run_campaign_driver(options);
  return {code, read_text(*options.json_arg)};
}

TEST(CampaignDriverTest, StraightRunsAreByteIdenticalAcrossProcs) {
  const std::string root = make_temp_dir();
  write_text(root + "/p1.json", test_manifest_text());
  write_text(root + "/p4.json", test_manifest_text());
  auto [code1, doc1] = run_campaign(driver_options(root, "p1", 1));
  auto [code4, doc4] = run_campaign(driver_options(root, "p4", 4));
  EXPECT_EQ(code1, 0);
  EXPECT_EQ(code4, 0);
  ASSERT_FALSE(doc1.empty());
  EXPECT_EQ(doc1, doc4);

  // The document self-describes the campaign and carries every job.
  auto parsed = common::parse_json(doc1);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("campaign")->as_string(), "test");
  EXPECT_EQ(parsed->find("jobs")->size(), 2u);
  EXPECT_EQ(parsed->find("summary")->find("jobs")->as_int(), 2);
}

TEST(CampaignDriverTest, SigkilledChildIsRetriedToIdenticalBytes) {
  const std::string root = make_temp_dir();
  write_text(root + "/straight.json", test_manifest_text());
  write_text(root + "/faulty.json", test_manifest_text());
  for (const int procs : {1, 4}) {
    const std::string name = "faulty" + std::to_string(procs);
    write_text(root + "/" + name + ".json", test_manifest_text());
    CampaignDriverOptions options = driver_options(root, name, procs);
    options.faults.kill.insert({"a-quickstart", 1});
    auto [code, doc] = run_campaign(options);
    EXPECT_EQ(code, 0) << "procs=" << procs;
    auto [straight_code, straight_doc] =
        run_campaign(driver_options(root, "straight", 1));
    EXPECT_EQ(straight_code, 0);
    EXPECT_EQ(doc, straight_doc) << "procs=" << procs;
  }
}

TEST(CampaignDriverTest, CheckpointResumeIsByteIdentical) {
  const std::string root = make_temp_dir();
  write_text(root + "/straight.json", test_manifest_text());
  auto [straight_code, straight_doc] =
      run_campaign(driver_options(root, "straight", 1));
  ASSERT_EQ(straight_code, 0);
  for (const int procs : {1, 4}) {
    const std::string name = "stopped" + std::to_string(procs);
    write_text(root + "/" + name + ".json", test_manifest_text());
    CampaignDriverOptions options = driver_options(root, name, procs);
    options.faults.stop_after = 1;
    EXPECT_EQ(run_campaign_driver(options), 3) << "procs=" << procs;
    // One job journaled, one pending.
    common::JsonlReadResult journal;
    std::string error;
    ASSERT_TRUE(common::read_jsonl_file(results_path(options.dir), &journal,
                                        &error))
        << error;
    EXPECT_EQ(journal.records.size(), 1u);
    // Resume without the stop: finishes and matches the straight run.
    options.faults.stop_after = 0;
    auto [code, doc] = run_campaign(options);
    EXPECT_EQ(code, 0) << "procs=" << procs;
    EXPECT_EQ(doc, straight_doc) << "procs=" << procs;
  }
}

TEST(CampaignDriverTest, ResumeRecoversWhenTheDriverDiedBeforeTheSnapshot) {
  // Emulates a SIGKILL landing between the results.jsonl append and the
  // state.json rewrite: one record journaled, snapshot rolled back to
  // "nothing ever completed". Resume must finish byte-identical, not
  // refuse the directory as corrupt.
  const std::string root = make_temp_dir();
  write_text(root + "/straight.json", test_manifest_text());
  auto [straight_code, straight_doc] =
      run_campaign(driver_options(root, "straight", 1));
  ASSERT_EQ(straight_code, 0);
  write_text(root + "/lag.json", test_manifest_text());
  CampaignDriverOptions options = driver_options(root, "lag", 1);
  options.faults.stop_after = 1;
  ASSERT_EQ(run_campaign_driver(options), 3);
  std::string error;
  auto manifest = parse_campaign_manifest_text(test_manifest_text(), &error);
  ASSERT_TRUE(manifest.has_value()) << error;
  const std::string digest =
      campaign_digest(manifest->to_json().dump() + "\n");
  const std::map<std::string, JobProgress> empty;
  ASSERT_TRUE(
      write_campaign_state(options.dir, *manifest, digest, empty, &error))
      << error;
  options.faults.stop_after = 0;
  auto [code, doc] = run_campaign(options);
  EXPECT_EQ(code, 0);
  EXPECT_EQ(doc, straight_doc);
}

TEST(CampaignDriverTest, RepairsATruncatedManifestCopy) {
  // Plain-write crash damage from an earlier run: the canonical copy is
  // rewritten atomically on the next invocation instead of being
  // trusted forever because it exists.
  const std::string root = make_temp_dir();
  write_text(root + "/copy.json", test_manifest_text());
  CampaignDriverOptions options = driver_options(root, "copy", 1);
  options.faults.stop_after = 1;
  ASSERT_EQ(run_campaign_driver(options), 3);
  const std::string copy = options.dir + "/manifest.json";
  const std::string canonical = read_text(copy);
  ASSERT_FALSE(canonical.empty());
  write_text(copy, canonical.substr(0, canonical.size() / 2));
  options.faults.stop_after = 0;
  auto [code, doc] = run_campaign(options);
  EXPECT_EQ(code, 0);
  ASSERT_FALSE(doc.empty());
  EXPECT_EQ(read_text(copy), canonical);
}

TEST(CampaignDriverTest, StopsClaimingWorkWhenTheJournalCannotBeWritten) {
  const std::string root = make_temp_dir();
  write_text(root + "/io.json", test_manifest_text());
  CampaignDriverOptions options = driver_options(root, "io", 2);
  // A directory squatting on state.json's temp path makes every
  // snapshot rewrite fail. The driver must abort without spawning a
  // single job rather than run work it can never checkpoint.
  std::error_code ec;
  std::filesystem::create_directories(options.dir + "/state.json.tmp", ec);
  ASSERT_FALSE(ec);
  EXPECT_EQ(run_campaign_driver(options), 1);
  EXPECT_FALSE(std::filesystem::exists(results_path(options.dir)));
}

TEST(CampaignDriverTest, ExhaustedRetriesQuarantineAndResumeRecovers) {
  const std::string root = make_temp_dir();
  write_text(root + "/q.json", test_manifest_text(0, 2));
  CampaignDriverOptions options = driver_options(root, "q", 2);
  options.faults.kill.insert({"a-quickstart", 1});
  options.faults.kill.insert({"a-quickstart", 2});
  EXPECT_EQ(run_campaign_driver(options), 1);
  EXPECT_TRUE(read_text(*options.json_arg).empty())
      << "quarantine must not produce a campaign document";
  // The healthy job still completed; the quarantined one kept its log.
  common::JsonlReadResult journal;
  std::string error;
  ASSERT_TRUE(
      common::read_jsonl_file(results_path(options.dir), &journal, &error))
      << error;
  EXPECT_EQ(journal.records.size(), 1u);
  const std::string state_text = read_text(state_path(options.dir));
  EXPECT_NE(state_text.find("quarantined"), std::string::npos);
  // The captured log is kept (empty here: the injected SIGKILL fires
  // pre-exec, before the child could write a byte).
  EXPECT_TRUE(std::ifstream(options.dir + "/logs/a-quickstart.attempt2.log")
                  .good());

  // Resume re-queues the quarantined job with a fresh budget.
  options.faults.kill.clear();
  auto [code, doc] = run_campaign(options);
  EXPECT_EQ(code, 0);
  write_text(root + "/straight.json", test_manifest_text(0, 2));
  auto [straight_code, straight_doc] =
      run_campaign(driver_options(root, "straight", 1));
  EXPECT_EQ(straight_code, 0);
  EXPECT_EQ(doc, straight_doc);
}

TEST(CampaignDriverTest, HangingChildTimesOutAndRetries) {
  const std::string root = make_temp_dir();
  write_text(root + "/h.json", test_manifest_text(/*timeout_ms=*/300));
  CampaignDriverOptions options = driver_options(root, "h", 2);
  options.faults.hang.insert({"b-quickstart", 1});
  auto [code, doc] = run_campaign(options);
  EXPECT_EQ(code, 0);
  // The retry is visible in the state snapshot's backoff schedule.
  auto state = common::parse_json(read_text(state_path(options.dir)));
  ASSERT_TRUE(state.has_value());
  const common::Json* entry = state->find("jobs")->find("b-quickstart");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->find("attempts")->as_int(), 2);
  EXPECT_EQ(entry->find("backoff_ms")->size(), 1u);
}

TEST(CampaignDriverTest, PinnedDigestMismatchQuarantinesWithoutRetry) {
  const std::string root = make_temp_dir();
  std::string error;
  auto manifest = parse_campaign_manifest_text(test_manifest_text(), &error);
  ASSERT_TRUE(manifest.has_value()) << error;
  manifest->jobs[0].expect_digest = "crc32:00000000";  // cannot match
  write_text(root + "/pin.json", manifest->to_json().dump() + "\n");
  CampaignDriverOptions options = driver_options(root, "pin", 1);
  EXPECT_EQ(run_campaign_driver(options), 1);
  auto state = common::parse_json(read_text(state_path(options.dir)));
  ASSERT_TRUE(state.has_value());
  const common::Json* entry = state->find("jobs")->find("a-quickstart");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->find("status")->as_string(), "quarantined");
  // Determinism failures are terminal: one attempt, no retries burned.
  EXPECT_EQ(entry->find("attempts")->as_int(), 1);
}

TEST(CampaignDriverTest, DuplicateJournalRecordRefusesResume) {
  const std::string root = make_temp_dir();
  write_text(root + "/dup.json", test_manifest_text());
  CampaignDriverOptions options = driver_options(root, "dup", 1);
  ASSERT_EQ(run_campaign_driver(options), 0);
  const std::string results = results_path(options.dir);
  const std::string text = read_text(results);
  const std::string first_line = text.substr(0, text.find('\n') + 1);
  write_text(results, text + first_line);
  EXPECT_EQ(run_campaign_driver(options), 1);
}

TEST(CampaignDriverTest, CountsCompletionsRetriesAndQuarantines) {
  PW_REQUIRE_OBS_ON();
  const std::string root = make_temp_dir();
  write_text(root + "/obs.json", test_manifest_text(0, 2));
  CampaignDriverOptions options = driver_options(root, "obs", 1);
  options.faults.kill.insert({"a-quickstart", 1});  // one retry
  obs::Registry::reset();
  obs::Registry::set_enabled(true);
  const int code = run_campaign_driver(options);
  obs::Registry::set_enabled(false);
  EXPECT_EQ(code, 0);
  EXPECT_EQ(obs::Registry::counter_value(obs::Counter::kCampaignJobsCompleted),
            2);
  EXPECT_EQ(obs::Registry::counter_value(obs::Counter::kCampaignJobsRetried),
            1);
  EXPECT_EQ(
      obs::Registry::counter_value(obs::Counter::kCampaignJobsQuarantined),
      0);
  EXPECT_EQ(obs::Registry::gauge_value(obs::Gauge::kCampaignQueueDepthPeak),
            2);
}

}  // namespace
}  // namespace politewifi::runtime::campaign
