// Tests for the extension modules: ToF ranging/localization (the Wi-Peep
// follow-up direction), 802.11w PMF, and the defense library.
#include <gtest/gtest.h>

#include "core/injector.h"
#include "core/localizer.h"
#include "core/ranging.h"
#include "defense/battery_guard.h"
#include "defense/injection_detector.h"
#include "sim/network.h"

namespace politewifi {
namespace {

using sim::Device;
using sim::Simulation;

constexpr MacAddress kApMac{0xf2, 0x6e, 0x0b, 0x01, 0x02, 0x03};
constexpr MacAddress kVictimMac{0x3c, 0x28, 0x6d, 0xaa, 0xbb, 0xcc};
constexpr MacAddress kAttackerMac{0x02, 0xde, 0xad, 0xbe, 0xef, 0x01};

// --- Propagation delay & ToF ranging -----------------------------------------

TEST(Ranging, RecoversDistanceWithinJitterBudget) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 80});
  mac::ClientConfig cc;
  cc.fast_keys = true;
  Device& victim = sim.add_client("victim", kVictimMac, {60.0, 0.0}, cc);

  sim::RadioConfig rig;
  rig.position = {0.0, 0.0};
  Device& attacker = sim.add_device(
      {.name = "ranger", .kind = sim::DeviceKind::kAttacker}, kAttackerMac,
      rig);

  core::RttRanger ranger(sim, attacker);
  const auto est = ranger.range(victim.address(), 40);
  ASSERT_GT(est.measurements, 30u);
  // No SIFS jitter configured: the estimate should be metre-exact
  // (quantized only by the simulator's 1 ns clock ~ 0.15 m).
  EXPECT_NEAR(est.distance_m, 60.0, 0.5);
}

TEST(Ranging, JitterWidensButAveragingRecovers) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 81});
  mac::MacConfig jittery;
  jittery.sifs_jitter_ns = 120.0;  // realistic silicon
  sim::RadioConfig rc;
  rc.position = {40.0, 0.0};
  Device& victim = sim.add_device({.name = "victim"}, kVictimMac, rc, jittery);

  sim::RadioConfig rig;
  rig.position = {0.0, 0.0};
  Device& attacker = sim.add_device(
      {.name = "ranger", .kind = sim::DeviceKind::kAttacker}, kAttackerMac,
      rig);

  core::RttRanger ranger(sim, attacker);
  const auto est = ranger.range(victim.address(), 150);
  ASSERT_GT(est.measurements, 100u);
  // Jitter only delays (one-sided), biasing the estimate long; the bias
  // bound is jitter*c/2 ~ 18 m for 120 ns. Averaging keeps us inside it.
  EXPECT_GT(est.distance_m, 35.0);
  EXPECT_LT(est.distance_m, 70.0);
  EXPECT_GT(est.stddev_m, 0.5);  // single shots really do scatter
}

TEST(Ranging, UnreachableTargetReportsLoss) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 82});
  sim::RadioConfig rc;
  rc.position = {5000.0, 0.0};
  sim.add_device({.name = "victim"}, kVictimMac, rc);
  sim::RadioConfig rig;
  Device& attacker = sim.add_device(
      {.name = "ranger", .kind = sim::DeviceKind::kAttacker}, kAttackerMac,
      rig);
  core::RttRanger ranger(sim, attacker);
  const auto est = ranger.range(kVictimMac, 10);
  EXPECT_EQ(est.measurements, 0u);
  EXPECT_EQ(est.lost, 10u);
}

// --- Trilateration -------------------------------------------------------------

TEST(Localizer, ExactRangesExactFix) {
  const Position truth{30.0, 40.0};
  std::vector<core::RangeObservation> obs;
  for (const Position anchor :
       {Position{0, 0}, Position{100, 0}, Position{0, 100}}) {
    obs.push_back({anchor, distance(anchor, truth)});
  }
  const auto fix = core::trilaterate(obs);
  EXPECT_TRUE(fix.converged);
  EXPECT_NEAR(fix.position.x, truth.x, 1e-3);
  EXPECT_NEAR(fix.position.y, truth.y, 1e-3);
  EXPECT_LT(fix.residual_m, 1e-3);
}

TEST(Localizer, NoisyRangesStillCloseWithMoreAnchors) {
  const Position truth{25.0, -15.0};
  Rng rng(5);
  std::vector<core::RangeObservation> obs;
  for (int i = 0; i < 8; ++i) {
    const Position anchor{rng.uniform(-80, 80), rng.uniform(-80, 80)};
    obs.push_back({anchor, distance(anchor, truth) + rng.gaussian(0.0, 2.0)});
  }
  const auto fix = core::trilaterate(obs);
  EXPECT_NEAR(fix.position.x, truth.x, 4.0);
  EXPECT_NEAR(fix.position.y, truth.y, 4.0);
}

TEST(Localizer, DegenerateInputsHandled) {
  EXPECT_FALSE(core::trilaterate({}).converged);
  // Collinear anchors cannot pin the off-axis coordinate; the solver must
  // not blow up.
  std::vector<core::RangeObservation> collinear{
      {{0, 0}, 10.0}, {{10, 0}, 10.0}, {{20, 0}, 10.0}};
  const auto fix = core::trilaterate(collinear);
  EXPECT_TRUE(std::isfinite(fix.position.x));
  EXPECT_TRUE(std::isfinite(fix.position.y));
}

TEST(Localizer, EndToEndThroughSimulatedRanges) {
  // The Wi-Peep flow: range one victim from four attacker positions and
  // trilaterate. All from ACK timing; victim is a stock station.
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 84});
  const Position truth{25.0, 18.0};
  sim::RadioConfig rc;
  rc.position = truth;
  sim.add_device({.name = "victim"}, kVictimMac, rc);

  sim::RadioConfig rig;
  rig.position = {0, 0};
  Device& attacker = sim.add_device(
      {.name = "drone", .kind = sim::DeviceKind::kAttacker}, kAttackerMac,
      rig);
  core::RttRanger ranger(sim, attacker);

  std::vector<core::RangeObservation> obs;
  for (const Position anchor :
       {Position{0, 0}, Position{60, 0}, Position{60, 50}, Position{0, 50}}) {
    attacker.radio().set_position(anchor);
    const auto est = ranger.range(kVictimMac, 25);
    ASSERT_GT(est.measurements, 15u);
    obs.push_back({anchor, est.distance_m});
  }
  const auto fix = core::trilaterate(obs);
  EXPECT_NEAR(fix.position.x, truth.x, 2.0);
  EXPECT_NEAR(fix.position.y, truth.y, 2.0);
}

// --- 802.11w PMF ------------------------------------------------------------------

struct PmfRig {
  Simulation sim{{.medium = {.shadowing_sigma_db = 0.0}, .seed = 85}};
  Device* ap = nullptr;
  Device* victim = nullptr;
  Device* attacker = nullptr;

  explicit PmfRig(bool pmf) {
    mac::ApConfig apc;
    apc.fast_keys = true;
    apc.pmf = pmf;
    ap = &sim.add_ap("ap", kApMac, {0, 0}, apc);
    mac::ClientConfig cc;
    cc.fast_keys = true;
    cc.pmf = pmf;
    victim = &sim.add_client("victim", kVictimMac, {4, 0}, cc);
    sim::RadioConfig rig;
    rig.position = {8, 3};
    attacker = &sim.add_device(
        {.name = "attacker", .kind = sim::DeviceKind::kAttacker},
        kAttackerMac, rig);
    sim.establish(*victim, seconds(10));
  }
};

TEST(Pmf, WithoutPmfSpoofedDeauthDisconnects) {
  PmfRig rig(/*pmf=*/false);
  ASSERT_TRUE(rig.victim->client()->established());
  core::FakeFrameInjector injector(*rig.attacker);
  injector.inject_spoofed_deauth(kVictimMac, kApMac);
  rig.sim.run_for(milliseconds(50));
  EXPECT_FALSE(rig.victim->client()->established());
  EXPECT_EQ(rig.victim->client()->stats().deauths_accepted, 1u);
}

TEST(Pmf, WithPmfSpoofedDeauthRejected) {
  PmfRig rig(/*pmf=*/true);
  ASSERT_TRUE(rig.victim->client()->established());
  core::FakeFrameInjector injector(*rig.attacker);
  for (int i = 0; i < 5; ++i) {
    injector.inject_spoofed_deauth(kVictimMac, kApMac);
    rig.sim.run_for(milliseconds(20));
  }
  EXPECT_TRUE(rig.victim->client()->established());
  EXPECT_EQ(rig.victim->client()->stats().spoofed_deauths_rejected, 5u);
}

TEST(Pmf, GenuineProtectedDeauthStillWorks) {
  PmfRig rig(/*pmf=*/true);
  ASSERT_TRUE(rig.victim->client()->established());
  rig.ap->ap()->disconnect_client(kVictimMac);
  rig.sim.run_for(milliseconds(30));
  // The protected deauth was authenticated and honoured. (Left running,
  // the client promptly re-scans and re-associates — which is correct.)
  EXPECT_EQ(rig.victim->client()->stats().deauths_accepted, 1u);
  EXPECT_EQ(rig.victim->client()->stats().spoofed_deauths_rejected, 0u);
}

TEST(Pmf, PoliteWifiEntirelyUnaffected) {
  // The paper's footnote 2: PMF protects management frames; the ACK
  // machinery is below it and keeps answering strangers.
  PmfRig rig(/*pmf=*/true);
  core::FakeFrameInjector null_injector(*rig.attacker);
  core::FakeFrameInjector rts_injector(*rig.attacker, {.use_rts = true});
  const auto acks_before = rig.victim->station().stats().acks_sent;
  for (int i = 0; i < 10; ++i) {
    null_injector.inject_one(kVictimMac);
    rig.sim.run_for(milliseconds(5));  // one frame on air at a time
    rts_injector.inject_one(kVictimMac);
    rig.sim.run_for(milliseconds(5));
  }
  EXPECT_GE(rig.victim->station().stats().acks_sent - acks_before, 9u);
  EXPECT_GE(rig.victim->station().stats().cts_sent, 9u);
  EXPECT_TRUE(rig.victim->client()->established());
}

// --- Injection detector ----------------------------------------------------------

frames::Frame fake_null(const MacAddress& victim) {
  return frames::make_null_function(victim, MacAddress::paper_fake_address(),
                                    1);
}

TEST(InjectionDetector, FlagsSensingPollRate) {
  defense::InjectionDetector detector;
  TimePoint t = kSimStart;
  std::vector<defense::ThreatAlert> all;
  for (int i = 0; i < 200; ++i) {
    const auto raised = detector.observe(fake_null(kVictimMac), t);
    all.insert(all.end(), raised.begin(), raised.end());
    t += milliseconds(7);  // ~150 fps, the paper's sensing rate
  }
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.front().kind, defense::ThreatKind::kSensingPoll);
  EXPECT_EQ(all.front().attacker, MacAddress::paper_fake_address());
  EXPECT_EQ(all.front().victim, kVictimMac);
  EXPECT_GE(all.front().rate_pps, 30.0);
  // Detection latency: well under a second of attack traffic.
  EXPECT_LT(to_seconds(all.front().raised_at - kSimStart), 1.0);
}

TEST(InjectionDetector, ClassifiesDrainByRate) {
  defense::InjectionDetector detector;
  TimePoint t = kSimStart;
  bool drain_seen = false;
  for (int i = 0; i < 2000; ++i) {
    for (const auto& a : detector.observe(fake_null(kVictimMac), t)) {
      if (a.kind == defense::ThreatKind::kBatteryDrain) drain_seen = true;
    }
    t += microseconds(1111);  // 900 fps
  }
  EXPECT_TRUE(drain_seen);
}

TEST(InjectionDetector, FlagsWardrivingSweep) {
  defense::InjectionDetector detector;
  TimePoint t = kSimStart;
  bool sweep_seen = false;
  for (int i = 0; i < 30; ++i) {
    MacAddress victim{0x10, 0x20, 0x30, 0x40, 0x50,
                      static_cast<std::uint8_t>(i)};
    for (const auto& a : detector.observe(fake_null(victim), t)) {
      if (a.kind == defense::ThreatKind::kProbeSweep) sweep_seen = true;
    }
    t += milliseconds(30);
  }
  EXPECT_TRUE(sweep_seen);
}

TEST(InjectionDetector, FlagsDeauthFlood) {
  defense::InjectionDetector detector;
  TimePoint t = kSimStart;
  bool flood_seen = false;
  for (int i = 0; i < 10; ++i) {
    const auto deauth = frames::make_deauth(
        kVictimMac, kApMac, kApMac, frames::ReasonCode::kDeauthLeaving, 1);
    for (const auto& a : detector.observe(deauth, t)) {
      if (a.kind == defense::ThreatKind::kDeauthFlood) flood_seen = true;
    }
    t += milliseconds(20);
  }
  EXPECT_TRUE(flood_seen);
}

TEST(InjectionDetector, TrustedSendersIgnored) {
  defense::InjectionDetector detector;
  detector.mark_trusted(MacAddress::paper_fake_address());
  TimePoint t = kSimStart;
  for (int i = 0; i < 500; ++i) {
    detector.observe(fake_null(kVictimMac), t);
    t += milliseconds(2);
  }
  EXPECT_TRUE(detector.alerts().empty());
}

TEST(InjectionDetector, LegitProtectedTrafficNeverAlerts) {
  defense::InjectionDetector detector;
  TimePoint t = kSimStart;
  frames::Frame f = frames::make_data_to_ds(kApMac, kVictimMac, kApMac,
                                            Bytes(50, 1), 3);
  f.fc.protected_frame = true;  // encrypted = not pollable
  for (int i = 0; i < 2000; ++i) {
    detector.observe(f, t);
    t += milliseconds(1);
  }
  EXPECT_TRUE(detector.alerts().empty());
}

TEST(InjectionDetector, RealertThrottled) {
  defense::InjectionDetectorConfig cfg;
  cfg.realert_interval = seconds(10);
  defense::InjectionDetector detector(cfg);
  TimePoint t = kSimStart;
  for (int i = 0; i < 1000; ++i) {
    detector.observe(fake_null(kVictimMac), t);
    t += milliseconds(7);  // 7 s of attack
  }
  EXPECT_EQ(detector.alerts().size(), 1u);  // one alert, not hundreds
}

// --- Battery guard -------------------------------------------------------------------

TEST(BatteryGuard, EngagesUnderAttackAndSlashesPower) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 86});
  mac::ApConfig apc;
  apc.fast_keys = true;
  sim.add_ap("ap", kApMac, {0, 0}, apc);
  mac::ClientConfig cc;
  cc.fast_keys = true;
  cc.power_save = true;
  cc.idle_timeout = milliseconds(100);
  cc.beacon_wake_window = milliseconds(1);
  Device& victim = sim.add_client("esp", kVictimMac, {4, 0}, cc);
  sim::RadioConfig rig;
  rig.position = {8, 2};
  Device& attacker = sim.add_device(
      {.name = "attacker", .kind = sim::DeviceKind::kAttacker}, kAttackerMac,
      rig);
  sim.establish(victim, seconds(10));

  defense::BatteryGuard guard(sim.scheduler(), victim);
  guard.start();

  core::FakeFrameInjector injector(attacker);
  injector.start_stream(kVictimMac, 500.0);
  sim.run_for(seconds(3));
  EXPECT_TRUE(guard.engaged());

  victim.radio().energy().reset(sim.now());
  sim.run_for(seconds(20));
  const double guarded_mw = victim.radio().energy().average_mw(sim.now());
  // Unguarded this attack pins the radio at ~300 mW; the guard's duty
  // cycle keeps it far below the always-on plateau.
  EXPECT_LT(guarded_mw, 120.0);
  injector.stop_all();
}

TEST(BatteryGuard, DisengagesWhenAttackStops) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 87});
  mac::ApConfig apc;
  apc.fast_keys = true;
  sim.add_ap("ap", kApMac, {0, 0}, apc);
  mac::ClientConfig cc;
  cc.fast_keys = true;
  Device& victim = sim.add_client("esp", kVictimMac, {4, 0}, cc);
  sim::RadioConfig rig;
  rig.position = {8, 2};
  Device& attacker = sim.add_device(
      {.name = "attacker", .kind = sim::DeviceKind::kAttacker}, kAttackerMac,
      rig);
  sim.establish(victim, seconds(10));

  defense::BatteryGuard guard(sim.scheduler(), victim);
  guard.start();
  core::FakeFrameInjector injector(attacker);
  injector.start_stream(kVictimMac, 300.0);
  sim.run_for(seconds(3));
  ASSERT_TRUE(guard.engaged());

  injector.stop_all();
  sim.run_for(seconds(10));
  EXPECT_FALSE(guard.engaged());
  // Device is reachable again.
  EXPECT_FALSE(victim.radio().sleeping());
}

TEST(BatteryGuard, StaysQuietWithoutAttack) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 88});
  mac::ApConfig apc;
  apc.fast_keys = true;
  sim.add_ap("ap", kApMac, {0, 0}, apc);
  mac::ClientConfig cc;
  cc.fast_keys = true;
  Device& victim = sim.add_client("esp", kVictimMac, {4, 0}, cc);
  sim.establish(victim, seconds(10));

  defense::BatteryGuard guard(sim.scheduler(), victim);
  guard.start();
  for (int i = 0; i < 20; ++i) {
    victim.client()->send_msdu(Bytes{1, 2, 3});
    sim.run_for(milliseconds(500));
  }
  EXPECT_FALSE(guard.engaged());
  EXPECT_EQ(guard.stats().engagements, 0u);
}

}  // namespace
}  // namespace politewifi
