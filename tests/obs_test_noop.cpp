// Compile-gate test: with the metrics instrumentation compiled out, the
// PW_* macros must expand to no-ops — no registry traffic, no evaluation
// cost — while the Registry class itself stays linkable (pw_run always
// can emit an all-zero block).
//
// PW_OBS_FORCE_OFF gives this one TU the -DPW_METRICS=OFF expansion even
// in the default ON build, so the gate is exercised by every CI run, not
// only by the dedicated metrics-off build job.
#define PW_OBS_FORCE_OFF 1
#include "obs/metrics.h"

#include <gtest/gtest.h>

namespace politewifi {
namespace {

static_assert(PW_OBS_ON == 0,
              "PW_OBS_FORCE_OFF must force the no-op macro expansion");

TEST(ObsNoop, MacrosCompileToNothingWhenForcedOff) {
  obs::Registry::reset();
  obs::Registry::set_enabled(true);  // even enabled: macros are gone
  PW_COUNT(kMacAcksSent);
  PW_COUNT_N(kMacAcksSent, 100);
  PW_GAUGE_MAX(kMediumRadiosPeak, 42);
  PW_HIST(kMacTxOctets, 64);
  { PW_TIMEIT(kRuntimeExperimentWallNs, "noop"); }
  obs::Registry::set_enabled(false);
  EXPECT_EQ(obs::Registry::counter_value(obs::Counter::kMacAcksSent), 0);
  EXPECT_EQ(obs::Registry::gauge_value(obs::Gauge::kMediumRadiosPeak), 0);
  EXPECT_EQ(obs::Registry::hist_total(obs::Hist::kMacTxOctets), 0);
  EXPECT_EQ(obs::Registry::hist_total(obs::Hist::kRuntimeExperimentWallNs),
            0);
}

TEST(ObsNoop, MacroArgumentsAreNotEvaluated) {
  obs::Registry::reset();
  obs::Registry::set_enabled(true);
  int evaluations = 0;
  const auto bump = [&evaluations] { return ++evaluations; };
  PW_COUNT_N(kMacAcksSent, bump());
  PW_GAUGE_MAX(kMediumRadiosPeak, bump());
  PW_HIST(kMacTxOctets, bump());
  obs::Registry::set_enabled(false);
  EXPECT_EQ(evaluations, 0)
      << "no-op metrics macros must not evaluate their value expressions";
}

}  // namespace
}  // namespace politewifi
