// Tests for the declarative experiment runtime: canonical JSON, strict
// flag parsing, the registry, spec resolution precedence, and the
// determinism contract (same spec + seed => byte-identical output, no
// matter how many threads or how many times it runs).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "runtime/experiments/all.h"
#include "runtime/registry.h"
#include "runtime/run_context.h"
#include "runtime/runner.h"

namespace politewifi {
namespace {

using common::Flag;
using common::Json;
using runtime::Experiment;
using runtime::ExperimentRegistry;
using runtime::ExperimentSpec;
using runtime::ResolvedRun;
using runtime::RunContext;

// ---------------------------------------------------------------- Json --

TEST(JsonTest, SortsObjectKeys) {
  Json j;
  j["zulu"] = 1;
  j["alpha"] = 2;
  j["mike"] = 3;
  const std::string text = j.dump();
  EXPECT_LT(text.find("alpha"), text.find("mike"));
  EXPECT_LT(text.find("mike"), text.find("zulu"));
}

TEST(JsonTest, CanonicalDoubleFormat) {
  EXPECT_EQ(Json(0.0).dump(), "0");
  EXPECT_EQ(Json(-0.0).dump(), "0");  // -0 normalizes to 0
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  EXPECT_EQ(Json(0.02).dump(), "0.02");
  EXPECT_EQ(Json(150.0).dump(), "150");
}

TEST(JsonTest, ScalarsAndEscapes) {
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Json("a\"b\\c\n").dump(), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(Json().dump(), "null");
}

TEST(JsonTest, NullPromotesToObjectAndArray) {
  Json doc;
  doc["a"]["b"] = 1;  // path building through nulls
  EXPECT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("a"), nullptr);
  Json arr;
  arr.push_back(1);
  arr.push_back(2);
  EXPECT_TRUE(arr.is_array());
  EXPECT_EQ(arr.size(), 2u);
}

TEST(JsonTest, EqualTreesDumpEqualBytes) {
  auto build = [] {
    Json j;
    j["b"] = 2.5;
    j["a"]["nested"] = true;
    j["c"].push_back("x");
    return j.dump();
  };
  EXPECT_EQ(build(), build());
}

// --------------------------------------------------------------- Flags --

TEST(FlagsTest, SplitsFlagsAndPositionals) {
  const char* argv[] = {"prog", "run", "--scale=0.5", "--smoke", "tail"};
  std::string error;
  const auto parsed = common::parse_args(5, argv, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->positionals.size(), 2u);
  EXPECT_EQ(parsed->positionals[0], "run");
  EXPECT_EQ(parsed->positionals[1], "tail");
  ASSERT_EQ(parsed->flags.size(), 2u);
  EXPECT_EQ(parsed->flags[0].name, "scale");
  EXPECT_EQ(parsed->flags[0].value, "0.5");
  EXPECT_FALSE(parsed->flags[1].value.has_value());  // bare --smoke
}

TEST(FlagsTest, DoubleDashEndsOptions) {
  const char* argv[] = {"prog", "--", "--scale=0.5"};
  std::string error;
  const auto parsed = common::parse_args(3, argv, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->flags.empty());
  ASSERT_EQ(parsed->positionals.size(), 1u);
  EXPECT_EQ(parsed->positionals[0], "--scale=0.5");
}

TEST(FlagsTest, BareFlagDistinctFromEmptyValue) {
  const char* argv[] = {"prog", "--a", "--b="};
  std::string error;
  const auto parsed = common::parse_args(3, argv, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_FALSE(parsed->flags[0].value.has_value());
  ASSERT_TRUE(parsed->flags[1].value.has_value());
  EXPECT_EQ(*parsed->flags[1].value, "");
}

TEST(FlagsTest, RejectsSingleDashOptions) {
  const char* argv[] = {"prog", "-x"};
  std::string error;
  EXPECT_FALSE(common::parse_args(2, argv, &error).has_value());
  EXPECT_NE(error.find("-x"), std::string::npos);
}

TEST(FlagsTest, LastFlagWins) {
  const char* argv[] = {"prog", "--seed=1", "--seed=2"};
  std::string error;
  const auto parsed = common::parse_args(3, argv, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const Flag* flag = parsed->find_flag("seed");
  ASSERT_NE(flag, nullptr);
  EXPECT_EQ(flag->value, "2");
}

TEST(FlagsTest, StrictDoubleParsing) {
  double v = 0.0;
  EXPECT_TRUE(common::parse_double("0.5", &v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(common::parse_double("-2", &v));
  EXPECT_TRUE(common::parse_double("1e3", &v));
  // The atof bug class: every one of these must be rejected loudly.
  EXPECT_FALSE(common::parse_double("fast", &v));
  EXPECT_FALSE(common::parse_double("1.5x", &v));
  EXPECT_FALSE(common::parse_double("", &v));
  EXPECT_FALSE(common::parse_double("nan", &v));
  EXPECT_FALSE(common::parse_double("inf", &v));
}

TEST(FlagsTest, StrictIntParsing) {
  std::int64_t v = 0;
  EXPECT_TRUE(common::parse_int64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(common::parse_int64("-7", &v));
  EXPECT_FALSE(common::parse_int64("1.5", &v));
  EXPECT_FALSE(common::parse_int64("ten", &v));
  EXPECT_FALSE(common::parse_int64("", &v));
  EXPECT_FALSE(common::parse_int64("99999999999999999999", &v));
}

TEST(FlagsTest, BoolParsing) {
  bool v = false;
  for (const char* t : {"true", "1", "yes", "on"}) {
    EXPECT_TRUE(common::parse_bool(t, &v)) << t;
    EXPECT_TRUE(v) << t;
  }
  for (const char* t : {"false", "0", "no", "off"}) {
    EXPECT_TRUE(common::parse_bool(t, &v)) << t;
    EXPECT_FALSE(v) << t;
  }
  EXPECT_FALSE(common::parse_bool("TRUE", &v));
  EXPECT_FALSE(common::parse_bool("2", &v));
}

// ------------------------------------------------------------ Registry --

class NopExperiment final : public Experiment {
 public:
  const ExperimentSpec& spec() const override {
    static const ExperimentSpec kSpec{.name = "nop", .summary = "does nothing"};
    return kSpec;
  }
  void run(RunContext&) override {}
};

std::unique_ptr<Experiment> make_nop() {
  return std::make_unique<NopExperiment>();
}

TEST(RegistryTest, AddLookupAndRemove) {
  ExperimentRegistry registry;  // hermetic local instance
  EXPECT_TRUE(registry.add("nop", &make_nop));
  EXPECT_TRUE(registry.contains("nop"));
  EXPECT_EQ(registry.size(), 1u);
  const auto exp = registry.create("nop");
  ASSERT_NE(exp, nullptr);
  EXPECT_EQ(exp->spec().name, "nop");
  EXPECT_EQ(registry.create("missing"), nullptr);
  EXPECT_TRUE(registry.remove("nop"));
  EXPECT_FALSE(registry.contains("nop"));
  EXPECT_FALSE(registry.remove("nop"));
}

TEST(RegistryTest, RejectsDuplicatesAndBadNames) {
  ExperimentRegistry registry;
  EXPECT_TRUE(registry.add("dup", &make_nop));
  EXPECT_FALSE(registry.add("dup", &make_nop));  // duplicate
  EXPECT_FALSE(registry.add("", &make_nop));
  EXPECT_FALSE(registry.add("Has-Caps", &make_nop));
  EXPECT_FALSE(registry.add("white space", &make_nop));
  EXPECT_TRUE(registry.add("ok_name_2", &make_nop));
  EXPECT_EQ(registry.size(), 2u);
}

TEST(RegistryTest, NamesAreSorted) {
  ExperimentRegistry registry;
  registry.add("zeta", &make_nop);
  registry.add("alpha", &make_nop);
  registry.add("mid", &make_nop);
  const auto names = registry.names();
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(RegistryTest, BuiltinsAllRegisteredAndIdempotent) {
  runtime::register_builtin_experiments();
  const std::size_t before = ExperimentRegistry::instance().size();
  runtime::register_builtin_experiments();  // second call is a no-op
  EXPECT_EQ(ExperimentRegistry::instance().size(), before);
  for (const char* name :
       {"quickstart", "wardriving", "battery_drain", "keystroke_inference",
        "wifi_sensing", "defending", "wipeep_localization"}) {
    EXPECT_TRUE(ExperimentRegistry::instance().contains(name)) << name;
  }
}

// ------------------------------------------------------- resolve_run ----

ExperimentSpec resolver_spec() {
  return ExperimentSpec{
      .name = "resolver_probe",
      .summary = "resolution fixture",
      .default_seed = 33,
      .params = {
          {.name = "x",
           .description = "a double",
           .default_value = 1.0,
           .smoke_value = 0.5,
           .min_value = 0.0,
           .max_value = 4.0,
           .min_exclusive = true},
          {.name = "n",
           .description = "an int",
           .default_value = std::int64_t{10},
           .min_value = 1.0},
          {.name = "verbose",
           .description = "a bool",
           .default_value = false},
          {.name = "label",
           .description = "a string",
           .default_value = std::string("abc")},
      },
  };
}

TEST(ResolveRunTest, DefaultsApply) {
  ResolvedRun out;
  std::string error;
  ASSERT_TRUE(runtime::resolve_run(resolver_spec(), {}, false, &out, &error))
      << error;
  EXPECT_EQ(out.seed, 33u);
  EXPECT_FALSE(out.smoke);
  EXPECT_DOUBLE_EQ(std::get<double>(out.params.at("x")), 1.0);
  EXPECT_EQ(std::get<std::int64_t>(out.params.at("n")), 10);
  EXPECT_FALSE(std::get<bool>(out.params.at("verbose")));
  EXPECT_EQ(std::get<std::string>(out.params.at("label")), "abc");
}

TEST(ResolveRunTest, SmokeValueReplacesDefault) {
  ResolvedRun out;
  std::string error;
  ASSERT_TRUE(runtime::resolve_run(resolver_spec(), {}, true, &out, &error))
      << error;
  EXPECT_TRUE(out.smoke);
  EXPECT_DOUBLE_EQ(std::get<double>(out.params.at("x")), 0.5);
  // n has no smoke_value: default survives.
  EXPECT_EQ(std::get<std::int64_t>(out.params.at("n")), 10);
}

TEST(ResolveRunTest, CliOverrideBeatsSmokeAndDefault) {
  ResolvedRun out;
  std::string error;
  const std::vector<Flag> flags = {{"x", "2.5"}, {"seed", "7"}};
  ASSERT_TRUE(
      runtime::resolve_run(resolver_spec(), flags, true, &out, &error))
      << error;
  EXPECT_DOUBLE_EQ(std::get<double>(out.params.at("x")), 2.5);
  EXPECT_EQ(out.seed, 7u);
}

TEST(ResolveRunTest, RejectsUnknownFlagListingKnown) {
  ResolvedRun out;
  std::string error;
  EXPECT_FALSE(runtime::resolve_run(resolver_spec(), {{"bogus", "1"}}, false,
                                    &out, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
  EXPECT_NE(error.find("x"), std::string::npos);  // lists known params
}

TEST(ResolveRunTest, RejectsTypeAndBoundViolations) {
  ResolvedRun out;
  std::string error;
  const auto spec = resolver_spec();
  // Wrong type for the declared kind.
  EXPECT_FALSE(runtime::resolve_run(spec, {{"n", "1.5"}}, false, &out,
                                    &error));
  EXPECT_FALSE(runtime::resolve_run(spec, {{"x", "fast"}}, false, &out,
                                    &error));
  // Bounds: x in (0, 4], n >= 1.
  EXPECT_FALSE(runtime::resolve_run(spec, {{"x", "0"}}, false, &out, &error));
  EXPECT_NE(error.find("> 0"), std::string::npos);
  EXPECT_FALSE(runtime::resolve_run(spec, {{"x", "4.5"}}, false, &out,
                                    &error));
  EXPECT_FALSE(runtime::resolve_run(spec, {{"n", "0"}}, false, &out, &error));
  // Negative seed is rejected (seeds are unsigned).
  EXPECT_FALSE(runtime::resolve_run(spec, {{"seed", "-1"}}, false, &out,
                                    &error));
}

TEST(ResolveRunTest, BareFlagOnlyValidForBools) {
  ResolvedRun out;
  std::string error;
  ASSERT_TRUE(runtime::resolve_run(resolver_spec(),
                                   {{"verbose", std::nullopt}}, false, &out,
                                   &error))
      << error;
  EXPECT_TRUE(std::get<bool>(out.params.at("verbose")));
  EXPECT_FALSE(runtime::resolve_run(resolver_spec(), {{"x", std::nullopt}},
                                    false, &out, &error));
}

// ------------------------------------------------------- RunContext -----

TEST(RunContextTest, DerivedSeedsAreStableAndDecorrelated) {
  const auto spec = resolver_spec();
  ResolvedRun run;
  std::string error;
  ASSERT_TRUE(runtime::resolve_run(spec, {}, false, &run, &error));
  RunContext a(spec, run);
  RunContext b(spec, run);
  EXPECT_EQ(a.derive_seed("typing"), b.derive_seed("typing"));
  EXPECT_NE(a.derive_seed("typing"), a.derive_seed("bedroom"));
  EXPECT_EQ(a.derive_seed(std::uint64_t{3}), b.derive_seed(std::uint64_t{3}));
  EXPECT_NE(a.derive_seed(std::uint64_t{3}), a.derive_seed(std::uint64_t{4}));

  ResolvedRun other = run;
  other.seed = run.seed + 1;
  RunContext c(spec, other);
  EXPECT_NE(a.derive_seed("typing"), c.derive_seed("typing"));
}

TEST(RunContextTest, TypedParamAccess) {
  const auto spec = resolver_spec();
  ResolvedRun run;
  std::string error;
  ASSERT_TRUE(runtime::resolve_run(spec, {}, false, &run, &error));
  RunContext ctx(spec, run);
  EXPECT_DOUBLE_EQ(ctx.param_double("x"), 1.0);
  EXPECT_EQ(ctx.param_int("n"), 10);
  EXPECT_FALSE(ctx.param_bool("verbose"));
  EXPECT_EQ(ctx.param_string("label"), "abc");
}

TEST(RunContextTest, DocumentCarriesMetaAndFailure) {
  const auto spec = resolver_spec();
  ResolvedRun run;
  std::string error;
  ASSERT_TRUE(runtime::resolve_run(spec, {}, true, &run, &error));
  RunContext ctx(spec, run);
  ctx.results()["answer"] = 42;
  ctx.fail();
  const std::string text = ctx.sink().canonical_text();
  EXPECT_NE(text.find("\"experiment\": \"resolver_probe\""),
            std::string::npos);
  EXPECT_NE(text.find("\"smoke\": true"), std::string::npos);
  EXPECT_NE(text.find("\"failed\": true"), std::string::npos);
  EXPECT_NE(text.find("\"answer\": 42"), std::string::npos);
}

// ----------------------------------------------------- determinism ------

/// Synthetic sweep experiment: fans 16 points across ctx.sweep() and
/// records each point's derived seed. Because real experiments are
/// sequential, this is the piece that actually exercises "results are
/// collected by index, independent of PW_THREADS".
class SweepProbeExperiment final : public Experiment {
 public:
  const ExperimentSpec& spec() const override {
    static const ExperimentSpec kSpec{
        .name = "sweep_probe",
        .summary = "thread-count independence fixture",
        .default_seed = 5,
    };
    return kSpec;
  }

  void run(RunContext& ctx) override {
    const auto seeds = ctx.sweep().run_indexed(
        16, [&](std::size_t i) { return ctx.derive_seed(std::uint64_t(i)); });
    auto& out = ctx.results()["point_seeds"];
    for (const auto s : seeds) out.push_back(std::to_string(s));
  }
};

std::unique_ptr<Experiment> make_sweep_probe() {
  return std::make_unique<SweepProbeExperiment>();
}

class SweepProbeRegistration : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        ExperimentRegistry::instance().add("sweep_probe", &make_sweep_probe));
  }
  void TearDown() override {
    ExperimentRegistry::instance().remove("sweep_probe");
    unsetenv("PW_THREADS");
  }
};

TEST_F(SweepProbeRegistration, JsonIdenticalAcrossThreadCounts) {
  setenv("PW_THREADS", "1", 1);
  const auto one = runtime::run_experiment("sweep_probe", {}, false);
  ASSERT_EQ(one.exit_code, 0) << one.error;
  setenv("PW_THREADS", "3", 1);
  const auto three = runtime::run_experiment("sweep_probe", {}, false);
  ASSERT_EQ(three.exit_code, 0) << three.error;
  EXPECT_EQ(one.json, three.json);
  EXPECT_NE(one.json.find("point_seeds"), std::string::npos);
}

TEST(DeterminismTest, SameSpecAndSeedProduceIdenticalRuns) {
  runtime::register_builtin_experiments();
  const std::vector<Flag> flags = {{"seed", "123"}};
  ::testing::internal::CaptureStdout();
  const auto first = runtime::run_experiment("quickstart", flags, true);
  const std::string stdout_first = ::testing::internal::GetCapturedStdout();
  ::testing::internal::CaptureStdout();
  const auto second = runtime::run_experiment("quickstart", flags, true);
  const std::string stdout_second = ::testing::internal::GetCapturedStdout();
  ASSERT_EQ(first.exit_code, 0) << first.error;
  EXPECT_EQ(first.json, second.json);       // byte-identical document
  EXPECT_EQ(stdout_first, stdout_second);   // and narration
}

TEST(DeterminismTest, SeedChangesTheDocument) {
  runtime::register_builtin_experiments();
  ::testing::internal::CaptureStdout();
  const auto a = runtime::run_experiment("quickstart", {{"seed", "1"}}, true);
  const auto b = runtime::run_experiment("quickstart", {{"seed", "2"}}, true);
  ::testing::internal::GetCapturedStdout();
  ASSERT_EQ(a.exit_code, 0) << a.error;
  ASSERT_EQ(b.exit_code, 0) << b.error;
  // The meta block alone differs; results may or may not.
  EXPECT_NE(a.json, b.json);
}

TEST(RunExperimentTest, UnknownNameFailsWithUsage) {
  runtime::register_builtin_experiments();
  const auto result = runtime::run_experiment("no_such_thing", {}, false);
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.error.find("no_such_thing"), std::string::npos);
  EXPECT_NE(result.error.find("quickstart"), std::string::npos);
}

}  // namespace
}  // namespace politewifi
