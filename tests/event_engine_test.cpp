// Event-engine tests: the pooled scheduler, the SmallFn callable, the
// sweep runner, and the spatial-index/brute-force equivalence property.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <tuple>
#include <vector>

#include "common/small_fn.h"
#include "core/injector.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/sweep_runner.h"
#include "sim/trace.h"

using namespace politewifi;

// --- SmallFn ------------------------------------------------------------------

namespace {

struct LifeCounter {
  static int alive;
  LifeCounter() { ++alive; }
  LifeCounter(const LifeCounter&) { ++alive; }
  LifeCounter(LifeCounter&&) noexcept { ++alive; }
  ~LifeCounter() { --alive; }
};
int LifeCounter::alive = 0;

}  // namespace

TEST(SmallFn, SmallCaptureStaysInline) {
  int hits = 0;
  SmallFn fn([&hits] { ++hits; });
  EXPECT_TRUE(fn.is_inline());
  ASSERT_TRUE(fn);
  fn();
  EXPECT_EQ(hits, 1);
}

TEST(SmallFn, LargeCaptureGoesToHeapAndStillRuns) {
  std::array<double, 64> big{};  // 512 bytes: over the inline budget
  big[63] = 7.5;
  double out = 0.0;
  SmallFn fn([big, &out] { out = big[63]; });
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(out, 7.5);
}

TEST(SmallFn, MoveTransfersOwnershipAndDestroysCapture) {
  {
    LifeCounter counter;
    SmallFn a([counter] { (void)counter; });
    EXPECT_GT(LifeCounter::alive, 1);
    SmallFn b(std::move(a));
    EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
    EXPECT_TRUE(b);
    b.reset();
    EXPECT_EQ(LifeCounter::alive, 1);  // only the stack copy remains
  }
  EXPECT_EQ(LifeCounter::alive, 0);
}

TEST(SmallFn, MoveOnlyCapturesWork) {
  auto p = std::make_unique<int>(41);
  SmallFn fn([q = std::move(p)] { ++*q; });
  SmallFn moved(std::move(fn));
  moved();
}

// --- Scheduler: pooled heap + lazy cancellation -------------------------------

TEST(SchedulerPool, CancelChurnStaysBounded) {
  // Regression: cancel() used to record every cancelled id in a set that
  // grew without bound under schedule/cancel churn. Now a cancel
  // tombstones its pooled slot and pop_one reclaims it, so the pool stays
  // O(concurrently live events) over a million cycles.
  sim::Scheduler scheduler;
  constexpr int kCycles = 1'000'000;
  for (int i = 0; i < kCycles; ++i) {
    const auto id = scheduler.schedule_in(seconds(5), [] { FAIL(); });
    scheduler.cancel(id);
    if ((i & 1023) == 0) scheduler.run_for(microseconds(1));
  }
  scheduler.run_all();
  EXPECT_EQ(scheduler.pending(), 0u);
  EXPECT_EQ(scheduler.tombstones(), 0u);
  // The slot pool must be far smaller than the cycle count (one slot per
  // concurrently outstanding event, not per event ever scheduled).
  EXPECT_LT(scheduler.pool_slots(), 10'000u);
  EXPECT_EQ(scheduler.events_executed(), 0u);
}

TEST(SchedulerPool, CompactionKeepsTombstonesBelowThreshold) {
  // 1M schedule+cancel cycles against far-future deadlines. Lazy
  // reclamation alone would hold every tombstone until its deadline pops;
  // the threshold sweep (tombstones > heap/2 once the heap reaches 64)
  // must cap the peak at the trigger point.
  sim::Scheduler scheduler;  // SchedulerConfig::compact_tombstones is on
  std::size_t tombstones_peak = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    const auto id = scheduler.schedule_in(seconds(5), [] { FAIL(); });
    scheduler.cancel(id);
    tombstones_peak = std::max(tombstones_peak, scheduler.tombstones());
  }
  EXPECT_LE(tombstones_peak, 64u);
  scheduler.run_all();
  EXPECT_EQ(scheduler.events_executed(), 0u);
  EXPECT_EQ(scheduler.pending(), 0u);
}

TEST(SchedulerPool, CompactionOffSwitchDisablesTheSweep) {
  sim::Scheduler scheduler{sim::SchedulerConfig{.compact_tombstones = false}};
  constexpr std::size_t kCycles = 100'000;
  for (std::size_t i = 0; i < kCycles; ++i) {
    const auto id = scheduler.schedule_in(seconds(5), [] { FAIL(); });
    scheduler.cancel(id);
  }
  // Nothing popped yet, so with the sweep off every tombstone is still
  // sitting in the heap — the behaviour the switch exists to expose.
  EXPECT_EQ(scheduler.tombstones(), kCycles);
  scheduler.run_all();
  EXPECT_EQ(scheduler.tombstones(), 0u);
  EXPECT_EQ(scheduler.events_executed(), 0u);
}

TEST(SchedulerPool, StaleIdCannotCancelRecycledSlot) {
  sim::Scheduler scheduler;
  int fired = 0;
  const auto a = scheduler.schedule_in(seconds(1), [] {});
  scheduler.cancel(a);
  scheduler.run_all();  // reclaims a's slot into the free pool
  const auto b = scheduler.schedule_in(seconds(1), [&fired] { ++fired; });
  EXPECT_NE(a, b);      // same slot, new generation
  scheduler.cancel(a);  // stale handle: must be a no-op
  scheduler.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerPool, CancelFromInsideOwnCallbackIsNoop) {
  sim::Scheduler scheduler;
  std::uint64_t self = 0;
  int fired = 0;
  self = scheduler.schedule_in(seconds(1), [&] {
    ++fired;
    scheduler.cancel(self);  // cancelling the running event: no-op
  });
  scheduler.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(scheduler.pending(), 0u);
}

TEST(SchedulerPool, CancelAfterExecutionIsNoop) {
  sim::Scheduler scheduler;
  int fired = 0;
  const auto id = scheduler.schedule_in(seconds(1), [&fired] { ++fired; });
  scheduler.run_all();
  scheduler.cancel(id);  // already ran; slot may be recycled
  const auto id2 = scheduler.schedule_in(seconds(1), [&fired] { ++fired; });
  scheduler.cancel(id);  // still stale
  scheduler.run_all();
  (void)id2;
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerPool, OrderingIsStableAcrossPooling) {
  sim::Scheduler scheduler;
  std::vector<int> order;
  // Same deadline: must run in schedule order (FIFO via sequence number),
  // with cancellations punched out of the middle.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(
        scheduler.schedule_in(seconds(1), [&order, i] { order.push_back(i); }));
  }
  scheduler.cancel(ids[3]);
  scheduler.cancel(ids[7]);
  scheduler.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 4, 5, 6, 8, 9}));
}

// --- SweepRunner --------------------------------------------------------------

TEST(SweepRunner, ResultsLandAtTheirIndex) {
  sim::SweepRunner runner(4);
  const auto out =
      runner.run_indexed(64, [](std::size_t i) { return int(i) * 3; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], int(i) * 3);
}

TEST(SweepRunner, SingleThreadMatchesMultiThread) {
  auto job = [](std::size_t i) {
    // A tiny self-contained simulation per point, as the benches do.
    sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0},
                         .seed = 300 + i});
    sim::RadioConfig rc;
    rc.position = {double(i), 0.0};
    sim.add_device({.name = "dev"}, {1, 2, 3, 4, 5, std::uint8_t(i)}, rc);
    sim.run_for(milliseconds(50));
    return sim.scheduler().events_executed();
  };
  const auto seq = sim::SweepRunner(1).run_indexed(8, job);
  const auto par = sim::SweepRunner(4).run_indexed(8, job);
  EXPECT_EQ(seq, par);
}

TEST(SweepRunner, PropagatesWorkerExceptions) {
  sim::SweepRunner runner(3);
  EXPECT_THROW(runner.for_each_index(
                   16,
                   [](std::size_t i) {
                     if (i == 11) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(SweepRunner, EveryIndexRunsExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  sim::SweepRunner runner(5);
  runner.for_each_index(hits.size(),
                        [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// --- Spatial index vs brute force equivalence --------------------------------

namespace {

/// Everything observable a scenario produced: per-device MAC counters and
/// energy, plus the engine's own accounting. Two runs that agree on all of
/// this executed the same events in the same order.
struct Fingerprint {
  std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                         std::uint64_t, std::uint64_t, std::uint64_t>>
      station;
  std::vector<double> energy_mj;
  std::uint64_t events_executed = 0;
  std::uint64_t receptions = 0;

  bool operator==(const Fingerprint&) const = default;
};

/// A randomized scenario exercising every fan-out edge case: mixed
/// channels, sleeping radios, a moving + channel-hopping attacker, and
/// shadowing left ON (the index must honour the shadowing bound). Shared
/// by the spatial-index and zero-copy-pipeline equivalence suites.
void drive_scenario(sim::Simulation& sim, std::uint64_t scenario_seed) {
  Rng layout(1000 + scenario_seed);
  const int channels[] = {1, 6, 11};

  std::vector<sim::Device*> targets;
  for (int i = 0; i < 12; ++i) {
    sim::RadioConfig rc;
    rc.position = {layout.uniform(-150.0, 150.0),
                   layout.uniform(-150.0, 150.0)};
    rc.channel = channels[layout.uniform_int(0, 2)];
    auto& dev = sim.add_device({.name = "node" + std::to_string(i)},
                               {0x5e, 0x11, 0x22, 0x33, 0x44,
                                std::uint8_t(i)},
                               rc);
    if (layout.bernoulli(0.25)) dev.radio().set_sleeping(true);
    targets.push_back(&dev);
  }

  sim::RadioConfig rig;
  rig.position = {0, 0};
  sim::Device& attacker = sim.add_device(
      {.name = "walker", .kind = sim::DeviceKind::kAttacker},
      {0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0xee}, rig);
  core::FakeFrameInjector injector(attacker);

  for (int step = 0; step < 40; ++step) {
    attacker.radio().set_position({layout.uniform(-200.0, 200.0),
                                   layout.uniform(-200.0, 200.0)});
    attacker.radio().set_channel(channels[step % 3]);
    sim::Device* target = targets[layout.uniform_int(0, 11)];
    if (step == 20) {
      // Flip someone's sleep state mid-run: the index must not deliver
      // stale wakefulness.
      targets[0]->radio().set_sleeping(!targets[0]->radio().sleeping());
    }
    injector.inject_one(target->address());
    sim.run_for(milliseconds(5));
  }
  sim.run_for(milliseconds(50));
}

Fingerprint run_scenario(std::uint64_t scenario_seed, bool use_spatial_index,
                         sim::SchedulerConfig sched = {}) {
  sim::MediumConfig mc;  // default shadowing_sigma_db = 4.0
  mc.use_spatial_index = use_spatial_index;
  sim::Simulation sim(
      {.medium = mc, .scheduler = sched, .seed = 7000 + scenario_seed});
  drive_scenario(sim, scenario_seed);

  Fingerprint fp;
  for (const auto& dev : sim.devices()) {
    const auto& s = dev->station().stats();
    fp.station.emplace_back(s.frames_received, s.frames_for_us, s.acks_sent,
                            s.fcs_failures, s.duplicates_dropped,
                            s.frames_transmitted);
    fp.energy_mj.push_back(dev->radio().energy().consumed_mj(sim.now()));
  }
  fp.events_executed = sim.scheduler().events_executed();
  fp.receptions = sim.medium().stats().receptions;
  return fp;
}

}  // namespace

class GridEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridEquivalence, IndexedFanOutIsByteIdenticalToBruteForce) {
  const Fingerprint indexed = run_scenario(GetParam(), true);
  const Fingerprint brute = run_scenario(GetParam(), false);
  EXPECT_EQ(indexed.events_executed, brute.events_executed);
  EXPECT_EQ(indexed.receptions, brute.receptions);
  ASSERT_EQ(indexed.station.size(), brute.station.size());
  for (std::size_t i = 0; i < indexed.station.size(); ++i) {
    EXPECT_EQ(indexed.station[i], brute.station[i]) << "device " << i;
    // Exact double equality on purpose: both paths must execute the same
    // arithmetic in the same order.
    EXPECT_EQ(indexed.energy_mj[i], brute.energy_mj[i]) << "device " << i;
  }
  EXPECT_EQ(indexed, brute);
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, GridEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(SchedulerPool, CompactionTogglePreservesOutcome) {
  // Compaction reshuffles heap storage, never logical order: a full
  // scenario (MAC timers, cancels, retries) must be byte-identical —
  // station stats, exact energies, and the executed-event count — with
  // the sweep on and off.
  for (std::uint64_t seed : {1, 2}) {
    const Fingerprint swept = run_scenario(seed, true);
    const Fingerprint lazy =
        run_scenario(seed, true, {.compact_tombstones = false});
    EXPECT_EQ(swept, lazy) << "seed " << seed;
  }
}

// --- Zero-copy pipeline vs legacy equivalence ---------------------------------

namespace {

/// Like Fingerprint, plus the full sniffer trace stream (time, sender,
/// raw on-air bytes) — the zero-copy pipeline must not change one bit of
/// what goes over the air, in what order, or what any station concludes
/// from it. events_executed is deliberately absent: batched fan-out
/// merges per-receiver delivery events into per-arrival-time events, so
/// the event COUNT legitimately differs while everything observable is
/// identical.
struct PipelineFingerprint {
  std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                         std::uint64_t, std::uint64_t, std::uint64_t>>
      station;
  std::vector<double> energy_mj;
  std::uint64_t receptions = 0;
  std::vector<std::tuple<TimePoint, std::string, Bytes>> trace;

  bool operator==(const PipelineFingerprint&) const = default;
};

PipelineFingerprint run_pipeline_scenario(std::uint64_t scenario_seed,
                                          sim::MediumConfig mc) {
  sim::Simulation sim({.medium = mc, .seed = 7000 + scenario_seed});
  sim::TraceRecorder recorder;
  recorder.attach(sim.medium());
  drive_scenario(sim, scenario_seed);

  PipelineFingerprint fp;
  for (const auto& dev : sim.devices()) {
    const auto& s = dev->station().stats();
    fp.station.emplace_back(s.frames_received, s.frames_for_us, s.acks_sent,
                            s.fcs_failures, s.duplicates_dropped,
                            s.frames_transmitted);
    fp.energy_mj.push_back(dev->radio().energy().consumed_mj(sim.now()));
  }
  fp.receptions = sim.medium().stats().receptions;
  for (const auto& e : recorder.entries()) {
    fp.trace.emplace_back(e.time, e.sender_name, e.raw);
  }
  return fp;
}

PipelineFingerprint run_pipeline_scenario(std::uint64_t scenario_seed,
                                          bool pool, bool batched,
                                          bool templates) {
  sim::MediumConfig mc;  // default shadowing_sigma_db = 4.0
  mc.pool_ppdus = pool;
  mc.batched_fanout = batched;
  mc.frame_templates = templates;
  return run_pipeline_scenario(scenario_seed, mc);
}

}  // namespace

class PipelineEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineEquivalence, ZeroCopyPipelineIsObservablyIdenticalToLegacy) {
  const PipelineFingerprint zero_copy =
      run_pipeline_scenario(GetParam(), true, true, true);
  const PipelineFingerprint legacy =
      run_pipeline_scenario(GetParam(), false, false, false);
  EXPECT_EQ(zero_copy.receptions, legacy.receptions);
  ASSERT_EQ(zero_copy.station.size(), legacy.station.size());
  for (std::size_t i = 0; i < zero_copy.station.size(); ++i) {
    EXPECT_EQ(zero_copy.station[i], legacy.station[i]) << "device " << i;
    // Exact double equality: both modes must run the same arithmetic in
    // the same order.
    EXPECT_EQ(zero_copy.energy_mj[i], legacy.energy_mj[i]) << "device " << i;
  }
  ASSERT_EQ(zero_copy.trace.size(), legacy.trace.size());
  for (std::size_t i = 0; i < zero_copy.trace.size(); ++i) {
    EXPECT_EQ(zero_copy.trace[i], legacy.trace[i]) << "trace entry " << i;
  }
  EXPECT_EQ(zero_copy, legacy);
}

TEST_P(PipelineEquivalence, EachOptimizationAloneIsObservablyIdentical) {
  const PipelineFingerprint legacy =
      run_pipeline_scenario(GetParam(), false, false, false);
  EXPECT_EQ(run_pipeline_scenario(GetParam(), true, false, false), legacy)
      << "pool_ppdus alone changed observable behaviour";
  EXPECT_EQ(run_pipeline_scenario(GetParam(), false, true, false), legacy)
      << "batched_fanout alone changed observable behaviour";
  EXPECT_EQ(run_pipeline_scenario(GetParam(), false, false, true), legacy)
      << "frame_templates alone changed observable behaviour";

  // The link-cache layout and the SoA fan-out pass default ON, so here the
  // off-switch is the variant: flipping each off alone must reproduce the
  // default configuration bit for bit.
  const PipelineFingerprint dflt =
      run_pipeline_scenario(GetParam(), sim::MediumConfig{});
  sim::MediumConfig mc;
  mc.link_cache_assoc = false;
  EXPECT_EQ(run_pipeline_scenario(GetParam(), mc), dflt)
      << "link_cache_assoc off alone changed observable behaviour";
  mc = {};
  mc.soa_fanout = false;
  EXPECT_EQ(run_pipeline_scenario(GetParam(), mc), dflt)
      << "soa_fanout off alone changed observable behaviour";
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, PipelineEquivalence,
                         ::testing::Values(1, 2, 3));

// --- Link cache + SoA fan-out equivalence -------------------------------------

namespace {

/// Observable output of a raw-radio fan-out run: exact per-radio energy,
/// the reception count, and the sniffer stream. Station-less radios have
/// no MAC stats, but any divergence in delivery order, link budgets, or
/// the Bernoulli FER draw sequence shows up in one of these.
struct FanoutFingerprint {
  std::vector<double> energy_mj;
  std::uint64_t receptions = 0;
  std::vector<std::tuple<TimePoint, Bytes>> trace;

  bool operator==(const FanoutFingerprint&) const = default;
};

/// A dense-cell fan-out workload at population `n`, area scaled to hold
/// reception density roughly constant: a small pool of repeat
/// transmitters (the link cache's bread and butter), ~20% sleepers, one
/// mobile transmitter and a few wandering bystanders (the volatile
/// interleave path), and a mid-run sleep flip. Frame errors stay ON so
/// the medium's Bernoulli draw order is part of the fingerprint.
FanoutFingerprint run_fanout_scenario(std::uint64_t scenario_seed,
                                      std::size_t n, bool link_cache_assoc,
                                      bool soa_fanout) {
  sim::Scheduler scheduler;
  sim::MediumConfig mc;  // frame errors, shadowing, propagation all ON
  mc.link_cache_assoc = link_cache_assoc;
  mc.soa_fanout = soa_fanout;
  sim::Medium medium(scheduler, mc, /*seed=*/9000 + scenario_seed);
  sim::TraceRecorder recorder;
  recorder.attach(medium);

  Rng layout(600 + scenario_seed * 37 + n);
  const double extent_m = 2000.0 * std::sqrt(double(n) / 5000.0);
  const std::size_t txers = std::min<std::size_t>(n, 4);
  std::vector<std::unique_ptr<sim::Radio>> radios;
  radios.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sim::RadioConfig rc;
    rc.position = {layout.uniform(-extent_m / 2, extent_m / 2),
                   layout.uniform(-extent_m / 2, extent_m / 2)};
    radios.push_back(
        std::make_unique<sim::Radio>(medium, scheduler, rc));
    if (i >= txers && layout.bernoulli(0.2)) radios[i]->set_sleeping(true);
  }

  const Bytes ppdu(64, 0x5A);
  phy::TxVector tx;
  for (int round = 0; round < 24; ++round) {
    // Transmitter 0 stays static (the pure lane-replay path); transmitter
    // 1 wanders (the volatile per-delivery interleave path).
    if (txers > 1 && round % 4 == 1) {
      radios[1]->set_position({layout.uniform(-extent_m / 2, extent_m / 2),
                               layout.uniform(-extent_m / 2, extent_m / 2)});
    }
    // A couple of mobile bystanders invalidate cached links mid-run.
    if (n > txers && round % 6 == 3) {
      sim::Radio& walker = *radios[txers + (round / 6) % (n - txers)];
      walker.set_position({layout.uniform(-extent_m / 2, extent_m / 2),
                           layout.uniform(-extent_m / 2, extent_m / 2)});
    }
    if (round == 12 && n > txers) {
      sim::Radio& flipped = *radios[n / 2 < txers ? txers : n / 2];
      flipped.set_sleeping(!flipped.sleeping());
    }
    medium.transmit(*radios[round % txers], ppdu, tx);
    scheduler.run_all();
  }
  // Brute-force coherence audit (grid, neighbor lists, SoA lanes, link
  // memo) — O(n^2), so only at populations where that stays cheap.
  if (n <= 500) medium.audit_coherence();

  FanoutFingerprint fp;
  for (const auto& r : radios) {
    fp.energy_mj.push_back(r->energy().consumed_mj(scheduler.now()));
  }
  fp.receptions = medium.stats().receptions;
  for (const auto& e : recorder.entries()) {
    fp.trace.emplace_back(e.time, e.raw);
  }
  return fp;
}

}  // namespace

/// Param = scenario seed. For each fan-out size, all four combinations of
/// {set-associative link cache, SoA batched FER pass} must produce
/// byte-identical energies, receptions and sniffer streams — the
/// off-switch path is the specification the optimised path is held to.
class FanoutEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FanoutEquivalence, CacheLayoutAndSoaPassAreObservablyIdentical) {
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{10}, std::size_t{500}, std::size_t{5000}}) {
    const FanoutFingerprint baseline =
        run_fanout_scenario(GetParam(), n, false, false);
    EXPECT_EQ(run_fanout_scenario(GetParam(), n, true, false), baseline)
        << "set-assoc link cache diverged at n=" << n;
    EXPECT_EQ(run_fanout_scenario(GetParam(), n, false, true), baseline)
        << "SoA batched FER pass diverged at n=" << n;
    EXPECT_EQ(run_fanout_scenario(GetParam(), n, true, true), baseline)
        << "combined configuration diverged at n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, FanoutEquivalence,
                         ::testing::Values(1, 2, 3));

TEST(LinkCache, SetAssociativityCutsThrashWithIdenticalGains) {
  // 90 radios = 8010 directed links hashed into the cache: enough
  // colliding sets that both layouts evict, while the 2-way layout's
  // LRU-within-set must evict strictly less than direct-mapped. The
  // budgets themselves must not depend on the layout at all.
  constexpr std::size_t kRadios = 90;
  std::vector<double> gains[2];
  std::uint64_t evictions[2] = {0, 0};
  std::uint64_t second_pass_hits[2] = {0, 0};
  for (const bool assoc : {false, true}) {
    sim::Scheduler scheduler;
    sim::MediumConfig mc;
    mc.link_cache_assoc = assoc;
    sim::Medium medium(scheduler, mc, /*seed=*/11);
    Rng layout(77);
    std::vector<std::unique_ptr<sim::Radio>> radios;
    for (std::size_t i = 0; i < kRadios; ++i) {
      sim::RadioConfig rc;
      rc.position = {layout.uniform(-400.0, 400.0),
                     layout.uniform(-400.0, 400.0)};
      radios.push_back(std::make_unique<sim::Radio>(medium, scheduler, rc));
    }
    std::vector<double>& g = gains[assoc ? 1 : 0];
    for (int pass = 0; pass < 2; ++pass) {
      const std::uint64_t hits_before = medium.stats().link_cache_hits;
      for (const auto& a : radios) {
        for (const auto& b : radios) {
          if (a == b) continue;
          g.push_back(medium.rx_power_dbm(*a, 20.0, *b));
        }
      }
      if (pass == 1) {
        second_pass_hits[assoc ? 1 : 0] =
            medium.stats().link_cache_hits - hits_before;
      }
    }
    evictions[assoc ? 1 : 0] = medium.stats().link_cache_evictions;
  }
  // Bit-identical budgets regardless of layout (both passes).
  ASSERT_EQ(gains[0].size(), gains[1].size());
  for (std::size_t i = 0; i < gains[0].size(); ++i) {
    EXPECT_EQ(gains[0][i], gains[1][i]) << "link " << i;
  }
  // Both layouts thrash under 8010 conflicting keys, but two ways absorb
  // every 2-way conflict that direct mapping ping-pongs on.
  EXPECT_GT(evictions[1], 0u);
  EXPECT_LT(evictions[1], evictions[0]);
  EXPECT_GT(second_pass_hits[1], second_pass_hits[0]);
}
