// Tests for the observability layer: registry determinism, histogram
// bucket semantics, the canonical metrics block (shape, wall exclusion,
// thread-count independence), the timeline profiler, the golden metrics
// document, and the OBSERVABILITY.md catalogue contract (the doc lists
// every registered metric and names nothing the registry doesn't have).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "common/clock.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "runtime/experiments/all.h"
#include "runtime/runner.h"
#include "sim/energy_model.h"
#include "sim/sweep_runner.h"

namespace politewifi {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Hist;
using obs::Registry;
using obs::TimelineProfiler;

/// RAII registry window: reset + enable on entry, disable on exit, so a
/// failing test can't leak an enabled registry into its neighbours.
struct MetricsWindow {
  MetricsWindow() {
    Registry::reset();
    Registry::set_enabled(true);
  }
  ~MetricsWindow() { Registry::set_enabled(false); }
};

// Tests that need the macros to actually collect skip under
// -DPW_METRICS=OFF, where they expand to no-ops by design (the shape,
// determinism, doc and timeline tests still run there).
#if PW_OBS_ON
#define PW_REQUIRE_OBS_ON() ((void)0)
#else
#define PW_REQUIRE_OBS_ON() \
  GTEST_SKIP() << "instrumentation compiled out (PW_METRICS=OFF)"
#endif

std::string read_repo_file(const std::string& rel) {
  const std::string path = std::string(PW_REPO_ROOT) + "/" + rel;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ------------------------------------------------------------ Registry --

TEST(ObsRegistry, CountersAccumulateAndReset) {
  PW_REQUIRE_OBS_ON();
  MetricsWindow window;
  PW_COUNT(kMacAcksSent);
  PW_COUNT_N(kMacAcksSent, 4);
  EXPECT_EQ(Registry::counter_value(Counter::kMacAcksSent), 5);
  Registry::reset();
  EXPECT_EQ(Registry::counter_value(Counter::kMacAcksSent), 0);
}

TEST(ObsRegistry, GaugesMergeByMax) {
  PW_REQUIRE_OBS_ON();
  MetricsWindow window;
  PW_GAUGE_MAX(kMediumRadiosPeak, 10);
  PW_GAUGE_MAX(kMediumRadiosPeak, 3);  // lower: ignored
  PW_GAUGE_MAX(kMediumRadiosPeak, 12);
  EXPECT_EQ(Registry::gauge_value(Gauge::kMediumRadiosPeak), 12);
}

TEST(ObsRegistry, DisabledRegistryRecordsNothing) {
  Registry::reset();
  Registry::set_enabled(false);
  PW_COUNT(kMacAcksSent);
  PW_GAUGE_MAX(kMediumRadiosPeak, 99);
  PW_HIST(kMacTxOctets, 64);
  EXPECT_EQ(Registry::counter_value(Counter::kMacAcksSent), 0);
  EXPECT_EQ(Registry::gauge_value(Gauge::kMediumRadiosPeak), 0);
  EXPECT_EQ(Registry::hist_total(Hist::kMacTxOctets), 0);
}

TEST(ObsRegistry, HistogramBucketEdgesAreInclusiveUpperBounds) {
  PW_REQUIRE_OBS_ON();
  MetricsWindow window;
  const obs::HistInfo& info = obs::hist_info(Hist::kMacTxOctets);
  ASSERT_GE(info.edges.size(), 3u);
  const std::int64_t e0 = info.edges[0];  // 16
  // Bucket i counts edges[i-1] < v <= edges[i]; beyond the last edge is
  // the trailing overflow bucket.
  PW_HIST(kMacTxOctets, e0);        // exactly on edge 0 -> bucket 0
  PW_HIST(kMacTxOctets, e0 + 1);    // just past edge 0  -> bucket 1
  PW_HIST(kMacTxOctets, info.edges.back());      // last regular bucket
  PW_HIST(kMacTxOctets, info.edges.back() + 1);  // overflow
  EXPECT_EQ(Registry::hist_bucket(Hist::kMacTxOctets, 0), 1);
  EXPECT_EQ(Registry::hist_bucket(Hist::kMacTxOctets, 1), 1);
  EXPECT_EQ(
      Registry::hist_bucket(Hist::kMacTxOctets, info.edges.size() - 1), 1);
  EXPECT_EQ(Registry::hist_bucket(Hist::kMacTxOctets, info.edges.size()), 1);
  EXPECT_EQ(Registry::hist_total(Hist::kMacTxOctets), 4);
  EXPECT_EQ(Registry::hist_sum(Hist::kMacTxOctets),
            e0 + (e0 + 1) + info.edges.back() + (info.edges.back() + 1));
}

TEST(ObsRegistry, CatalogIsFullyNamed) {
  for (const obs::MetricInfo& info : obs::counter_catalog()) {
    EXPECT_NE(info.name[0], '\0');
    EXPECT_NE(info.unit[0], '\0');
    EXPECT_NE(info.description[0], '\0');
  }
  for (const obs::MetricInfo& info : obs::gauge_catalog()) {
    EXPECT_NE(info.name[0], '\0');
  }
  for (const obs::HistInfo& info : obs::hist_catalog()) {
    EXPECT_NE(info.name[0], '\0');
    ASSERT_FALSE(info.edges.empty());
    ASSERT_LE(info.edges.size(), Registry::kMaxHistEdges);
    for (std::size_t i = 1; i < info.edges.size(); ++i) {
      EXPECT_LT(info.edges[i - 1], info.edges[i]) << info.name;
    }
  }
}

// ----------------------------------------------------- Canonical block --

TEST(ObsBlock, ShapeIsCompleteEvenAllZero) {
  Registry::reset();
  Registry::set_enabled(false);
  const std::string text = Registry::to_json().dump();
  for (const obs::MetricInfo& info : obs::counter_catalog()) {
    EXPECT_NE(text.find("\"" + std::string(info.name) + "\""),
              std::string::npos)
        << info.name;
  }
  for (const obs::MetricInfo& info : obs::gauge_catalog()) {
    EXPECT_NE(text.find("\"" + std::string(info.name) + "\""),
              std::string::npos)
        << info.name;
  }
  for (const obs::HistInfo& info : obs::hist_catalog()) {
    const auto pos = text.find("\"" + std::string(info.name) + "\"");
    if (info.wall) {
      EXPECT_EQ(pos, std::string::npos)
          << info.name << " is wall-flagged but in the canonical block";
    } else {
      EXPECT_NE(pos, std::string::npos) << info.name;
    }
  }
}

TEST(ObsBlock, RepeatedDumpIsByteIdentical) {
  MetricsWindow window;
  PW_COUNT_N(kMediumTransmissions, 123);
  PW_HIST(kPhyFerPpm, 5000);
  EXPECT_EQ(Registry::to_json().dump(), Registry::to_json().dump());
}

TEST(ObsBlock, IncludeWallAddsOnlyWallHistograms) {
  PW_REQUIRE_OBS_ON();
  MetricsWindow window;
  { PW_TIMEIT(kRuntimeExperimentWallNs, "span"); }
  EXPECT_EQ(Registry::hist_total(Hist::kRuntimeExperimentWallNs), 1);
  const std::string canonical = Registry::to_json().dump();
  const std::string wall = Registry::to_json(/*include_wall=*/true).dump();
  EXPECT_EQ(canonical.find("runtime.experiment_wall_ns"), std::string::npos);
  EXPECT_NE(wall.find("runtime.experiment_wall_ns"), std::string::npos);
}

// The merge-determinism contract: the collected block does not depend on
// how many SweepRunner workers did the counting.
TEST(ObsBlock, ThreadCountIndependentOnSyntheticSweep) {
  const auto run = [](unsigned threads) {
    MetricsWindow window;
    sim::SweepRunner runner(threads);
    runner.for_each_index(200, [](std::size_t i) {
      PW_COUNT(kMediumTransmissions);
      PW_COUNT_N(kMediumFanoutCandidates, i % 7);
      PW_GAUGE_MAX(kSchedulerPoolSlotsPeak, i);
      PW_HIST(kMacTxOctets, static_cast<std::int64_t>((i * 37) % 4096));
    });
    return Registry::to_json().dump();
  };
  const std::string single = run(1);
  EXPECT_EQ(single, run(4));
  EXPECT_EQ(single, run(13));
}

// --------------------------------------------------------- Experiments --

// Set PW_THREADS for the duration of one run; restores the prior value.
struct ThreadsEnv {
  explicit ThreadsEnv(const char* value) {
    if (const char* prev = std::getenv("PW_THREADS")) saved = prev;
    setenv("PW_THREADS", value, 1);
  }
  ~ThreadsEnv() {
    if (saved.empty()) {
      unsetenv("PW_THREADS");
    } else {
      setenv("PW_THREADS", saved.c_str(), 1);
    }
  }
  std::string saved;
};

TEST(ObsExperiment, MetricsBlockByteIdenticalAcrossThreadCounts) {
  runtime::register_builtin_experiments();
  runtime::RunOptions options;
  options.metrics = true;
  const auto run = [&](const char* threads) {
    ThreadsEnv env(threads);
    const auto result =
        runtime::run_experiment("quickstart", {}, /*smoke=*/true, options);
    EXPECT_EQ(result.exit_code, 0);
    EXPECT_FALSE(result.metrics_json.empty());
    return result;
  };
  const auto one = run("1");
  const auto four = run("4");
  EXPECT_EQ(one.metrics_json, four.metrics_json);
  EXPECT_EQ(one.json, four.json);
  // The block really is embedded in the document.
  EXPECT_NE(one.json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(one.json.find("sim.scheduler.events_executed"),
            std::string::npos);
}

TEST(ObsExperiment, QuickstartMetricsDocumentMatchesGolden) {
  PW_REQUIRE_OBS_ON();
  runtime::register_builtin_experiments();
  runtime::RunOptions options;
  options.metrics = true;
  const auto result =
      runtime::run_experiment("quickstart", {}, /*smoke=*/true, options);
  ASSERT_EQ(result.exit_code, 0);
  const std::string golden =
      read_repo_file("tests/goldens/metrics/quickstart.json");
  EXPECT_EQ(result.json, golden)
      << "regenerate with: build/src/runtime/pw_run quickstart --smoke "
         "--metrics --json=tests/goldens/metrics (then delete the "
         "side-car .metrics.json/.trace.json)";
}

TEST(ObsExperiment, RunWithoutMetricsLeavesDocumentClean) {
  runtime::register_builtin_experiments();
  const auto result =
      runtime::run_experiment("quickstart", {}, /*smoke=*/true);
  ASSERT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.json.find("\"metrics\""), std::string::npos);
  EXPECT_TRUE(result.metrics_json.empty());
  EXPECT_TRUE(result.timeline_json.empty());
}

// ------------------------------------------------------------ Timeline --

TEST(ObsTimeline, EmitsChromeTraceJson) {
  TimelineProfiler timeline;
  timeline.add_sim_span("Rx", /*pid=*/1, /*tid=*/2, /*ts_ns=*/1000,
                        /*dur_ns=*/500);
  timeline.add_wall_span("sweep_job", /*dur_ns=*/2000);
  EXPECT_EQ(timeline.size(), 2u);
  const std::string text = timeline.to_json().dump();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("\"Rx\""), std::string::npos);
  EXPECT_NE(text.find("process_name"), std::string::npos);
}

TEST(ObsTimeline, EnergyMeterEmitsDwellSpans) {
  TimelineProfiler timeline;
  obs::set_active_timeline(&timeline);
  const TimePoint t0 = kSimStart;
  sim::EnergyMeter meter(sim::PowerProfile::esp8266(), t0);
  meter.set_timeline_ids(/*pid=*/3, /*tid=*/7);
  meter.set_state(sim::RadioState::kRx, t0 + milliseconds(1));
  meter.set_state(sim::RadioState::kIdle, t0 + milliseconds(2));
  obs::set_active_timeline(nullptr);
  EXPECT_EQ(timeline.size(), 2u);  // the closed idle and rx dwells
  const std::string text = timeline.to_json().dump();
  EXPECT_NE(text.find("\"idle\""), std::string::npos);
  EXPECT_NE(text.find("\"rx\""), std::string::npos);
}

TEST(ObsTimeline, BareMetersAndUninstalledProfilerAreSilent) {
  // No profiler installed: nothing to crash into.
  const TimePoint t0 = kSimStart;
  sim::EnergyMeter unmetered(sim::PowerProfile::esp8266(), t0);
  unmetered.set_timeline_ids(1, 1);
  unmetered.set_state(sim::RadioState::kRx, t0 + milliseconds(1));
  // Profiler installed but meter has no ids: stays empty.
  TimelineProfiler timeline;
  obs::set_active_timeline(&timeline);
  sim::EnergyMeter bare(sim::PowerProfile::esp8266(), t0);
  bare.set_state(sim::RadioState::kRx, t0 + milliseconds(1));
  obs::set_active_timeline(nullptr);
  EXPECT_EQ(timeline.size(), 0u);
}

// -------------------------------------------------- OBSERVABILITY.md --

std::set<std::string> catalogued_names() {
  std::set<std::string> names;
  for (const obs::MetricInfo& info : obs::counter_catalog()) {
    names.insert(info.name);
  }
  for (const obs::MetricInfo& info : obs::gauge_catalog()) {
    names.insert(info.name);
  }
  for (const obs::HistInfo& info : obs::hist_catalog()) {
    names.insert(info.name);
  }
  return names;
}

/// Backtick-quoted dotted identifiers in layer namespaces — the doc's
/// way of naming a metric.
std::set<std::string> doc_metric_names(const std::string& doc) {
  std::set<std::string> found;
  std::size_t pos = 0;
  while ((pos = doc.find('`', pos)) != std::string::npos) {
    const std::size_t end = doc.find('`', pos + 1);
    if (end == std::string::npos) break;
    const std::string token = doc.substr(pos + 1, end - pos - 1);
    pos = end + 1;
    if (token.find('.') == std::string::npos) continue;
    bool identifier = true;
    for (const char c : token) {
      if (!(std::islower(static_cast<unsigned char>(c)) ||
            std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
            c == '_')) {
        identifier = false;
        break;
      }
    }
    if (!identifier) continue;
    for (const char* prefix : {"sim.", "mac.", "phy.", "runtime."}) {
      if (token.rfind(prefix, 0) == 0) {
        found.insert(token);
        break;
      }
    }
  }
  return found;
}

TEST(ObsDoc, ObservabilityMdListsEveryRegisteredMetric) {
  const std::string doc = read_repo_file("OBSERVABILITY.md");
  ASSERT_FALSE(doc.empty());
  for (const std::string& name : catalogued_names()) {
    EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
        << "OBSERVABILITY.md does not document `" << name << "`";
  }
}

TEST(ObsDoc, ObservabilityMdNamesOnlyRegisteredMetrics) {
  const std::string doc = read_repo_file("OBSERVABILITY.md");
  const std::set<std::string> registry = catalogued_names();
  for (const std::string& token : doc_metric_names(doc)) {
    EXPECT_TRUE(registry.count(token))
        << "OBSERVABILITY.md names `" << token
        << "` which is not in the obs/ catalogue";
  }
}

}  // namespace
}  // namespace politewifi
