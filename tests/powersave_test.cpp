// 802.11 power-save protocol tests: doze signalling, AP-side buffering,
// TIM advertisement, PS-Poll retrieval, and energy-state accounting.
// This is the machinery the battery-drain attack (§4.2) subverts, tested
// here in its *legitimate* operation.
#include <gtest/gtest.h>

#include "sim/network.h"

namespace politewifi {
namespace {

using sim::Device;
using sim::Simulation;

constexpr MacAddress kApMac{0xf2, 0x6e, 0x0b, 0x01, 0x02, 0x03};
constexpr MacAddress kClientMac{0x24, 0x0a, 0xc4, 0xaa, 0xbb, 0xcc};

struct PsRig {
  Simulation sim{{.medium = {.shadowing_sigma_db = 0.0}, .seed = 160}};
  Device* ap = nullptr;
  Device* client = nullptr;

  PsRig() {
    mac::ApConfig apc;
    apc.fast_keys = true;
    ap = &sim.add_ap("ap", kApMac, {0, 0}, apc);
    mac::ClientConfig cc;
    cc.fast_keys = true;
    cc.power_save = true;
    cc.idle_timeout = milliseconds(50);
    cc.beacon_wake_window = milliseconds(2);
    client = &sim.add_client("sensor", kClientMac, {4, 0}, cc);
    sim.establish(*client, seconds(10));
  }

  void settle_into_doze() {
    sim.run_for(milliseconds(400));
    ASSERT_TRUE(client->client()->dozing());
  }
};

TEST(PowerSave, ClientDozesAfterIdleTimeout) {
  PsRig rig;
  rig.settle_into_doze();
  EXPECT_GE(rig.client->client()->stats().doze_transitions, 1u);
  // The radio may momentarily be up for a beacon window at any given
  // instant; what matters is that sleep dominates the next second.
  rig.client->radio().energy().reset(rig.sim.now());
  rig.sim.run_for(seconds(1));
  EXPECT_GT(to_seconds(rig.client->radio().energy().dwell(
                sim::RadioState::kSleep)),
            0.7);
}

TEST(PowerSave, DozeAnnouncedWithPmBitAndApBuffers) {
  PsRig rig;
  rig.settle_into_doze();

  // AP knows the client is dozing (it heard the PM-flagged null frame)
  // and buffers downlink traffic instead of transmitting into the void.
  // (Checked synchronously: the very next beacon's TIM may trigger the
  // retrieval within milliseconds, which is the protocol working.)
  rig.ap->ap()->send_to_client(kClientMac, Bytes{1, 2, 3});
  rig.ap->ap()->send_to_client(kClientMac, Bytes{4, 5, 6});
  EXPECT_EQ(rig.ap->ap()->stats().ps_buffered, 2u);
  EXPECT_EQ(rig.ap->ap()->stats().ps_delivered, 0u);
  EXPECT_EQ(rig.client->client()->stats().msdus_received, 0u);
}

TEST(PowerSave, TimWakesClientAndPsPollRetrievesEverything) {
  PsRig rig;
  rig.settle_into_doze();

  rig.ap->ap()->send_to_client(kClientMac, Bytes{1, 2, 3});
  rig.ap->ap()->send_to_client(kClientMac, Bytes{4, 5, 6});
  // Run past the next beacon: the TIM flags our AID, the client wakes,
  // PS-Polls, and the AP releases the buffered MSDUs.
  rig.sim.run_for(milliseconds(400));

  EXPECT_EQ(rig.ap->ap()->stats().ps_delivered, 2u);
  EXPECT_EQ(rig.client->client()->stats().msdus_received, 2u);
  EXPECT_GE(rig.client->client()->stats().ps_polls_sent, 1u);
}

TEST(PowerSave, ClientRedozesAfterDelivery) {
  PsRig rig;
  rig.settle_into_doze();
  rig.ap->ap()->send_to_client(kClientMac, Bytes{9});
  rig.sim.run_for(milliseconds(800));
  EXPECT_EQ(rig.client->client()->stats().msdus_received, 1u);
  // Idle again for several timeouts: back asleep.
  EXPECT_TRUE(rig.client->client()->dozing());
  EXPECT_GE(rig.client->client()->stats().doze_transitions, 2u);
}

TEST(PowerSave, UplinkFromDozeWakesTransmitsAndRedozes) {
  PsRig rig;
  rig.settle_into_doze();
  rig.client->client()->send_msdu(Bytes{7, 7, 7});
  rig.sim.run_for(milliseconds(100));
  EXPECT_EQ(rig.ap->ap()->stats().msdus_received, 1u);
  rig.sim.run_for(milliseconds(500));
  EXPECT_TRUE(rig.client->client()->dozing());
}

TEST(PowerSave, SleepDominatesIdleEnergyWithoutTraffic) {
  PsRig rig;
  rig.settle_into_doze();
  rig.client->radio().energy().reset(rig.sim.now());
  rig.sim.run_for(seconds(10));
  const auto& meter = rig.client->radio().energy();
  EXPECT_GT(to_seconds(meter.dwell(sim::RadioState::kSleep)), 9.0);
  EXPECT_LT(meter.average_mw(rig.sim.now()), 30.0);
}

TEST(PowerSave, DisabledPowerSaveStaysAwake) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 161});
  mac::ApConfig apc;
  apc.fast_keys = true;
  sim.add_ap("ap", kApMac, {0, 0}, apc);
  mac::ClientConfig cc;
  cc.fast_keys = true;
  cc.power_save = false;
  Device& client = sim.add_client("laptop", kClientMac, {4, 0}, cc);
  sim.establish(client, seconds(10));
  sim.run_for(seconds(2));
  EXPECT_FALSE(client.client()->dozing());
  EXPECT_FALSE(client.radio().sleeping());
  EXPECT_EQ(client.client()->stats().doze_transitions, 0u);
}

}  // namespace
}  // namespace politewifi
