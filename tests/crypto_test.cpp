// Crypto substrate tests against published vectors: FIPS-197 AES,
// FIPS-180 SHA-1, RFC 2202 HMAC, RFC 6070 PBKDF2, RFC 3610 CCM, the
// IEEE 802.11i PMK vector, and CCMP frame protection properties.
#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "crypto/ccmp.h"
#include "crypto/hmac.h"
#include "crypto/sha1.h"
#include "crypto/wpa2.h"
#include "frames/data.h"

namespace politewifi::crypto {
namespace {

Bytes from_hex(const std::string& hex) {
  Bytes out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(
        std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string out;
  char buf[3];
  for (const auto b : data) {
    std::snprintf(buf, sizeof buf, "%02x", b);
    out += buf;
  }
  return out;
}

// --- AES-128 (FIPS-197 Appendix C.1) ----------------------------------------

TEST(Aes128, Fips197Vector) {
  Aes128::Key key;
  const auto key_bytes = from_hex("000102030405060708090a0b0c0d0e0f");
  std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
  Aes128::Block block;
  const auto pt = from_hex("00112233445566778899aabbccddeeff");
  std::copy(pt.begin(), pt.end(), block.begin());

  const Aes128 cipher(key);
  cipher.encrypt_block(block);
  EXPECT_EQ(to_hex(block), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, SP800_38A_EcbVector) {
  // NIST SP 800-38A F.1.1 ECB-AES128 block #1.
  Aes128::Key key;
  const auto kb = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  std::copy(kb.begin(), kb.end(), key.begin());
  Aes128::Block block;
  const auto pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
  std::copy(pt.begin(), pt.end(), block.begin());
  Aes128(key).encrypt_block(block);
  EXPECT_EQ(to_hex(block), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes128, DeterministicAndKeyDependent) {
  Aes128::Key k1{}, k2{};
  k2[15] = 1;
  Aes128::Block b{};
  const auto c1 = Aes128(k1).encrypt(b);
  const auto c2 = Aes128(k1).encrypt(b);
  const auto c3 = Aes128(k2).encrypt(b);
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, c3);
}

// --- SHA-1 (FIPS-180 examples) --------------------------------------------------

TEST(Sha1, EmptyString) {
  EXPECT_EQ(to_hex(Sha1::hash({})),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  const std::string msg = "abc";
  const std::span<const std::uint8_t> data{
      reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()};
  EXPECT_EQ(to_hex(Sha1::hash(data)),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  const std::string msg =
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  const std::span<const std::uint8_t> data{
      reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()};
  EXPECT_EQ(to_hex(Sha1::hash(data)),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  const std::span<const std::uint8_t> data{
      reinterpret_cast<const std::uint8_t*>(chunk.data()), chunk.size()};
  for (int i = 0; i < 1000; ++i) h.update(data);
  EXPECT_EQ(to_hex(h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  Bytes data(317);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  Sha1 h;
  h.update(std::span(data).first(1));
  h.update(std::span(data).subspan(1, 63));
  h.update(std::span(data).subspan(64, 128));
  h.update(std::span(data).subspan(192));
  EXPECT_EQ(h.finalize(), Sha1::hash(data));
}

// --- HMAC-SHA1 (RFC 2202) ----------------------------------------------------------

TEST(HmacSha1, Rfc2202Case1) {
  const Bytes key(20, 0x0b);
  const std::string msg = "Hi There";
  const std::span<const std::uint8_t> data{
      reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()};
  EXPECT_EQ(to_hex(hmac_sha1(key, data)),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1, Rfc2202Case2) {
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  const std::span<const std::uint8_t> k{
      reinterpret_cast<const std::uint8_t*>(key.data()), key.size()};
  const std::span<const std::uint8_t> m{
      reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()};
  EXPECT_EQ(to_hex(hmac_sha1(k, m)),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1, Rfc2202Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha1(key, msg)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacSha1, LongKeyIsHashedFirst) {
  // RFC 2202 case 6: 80-byte key.
  const Bytes key(80, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  const std::span<const std::uint8_t> m{
      reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()};
  EXPECT_EQ(to_hex(hmac_sha1(key, m)),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

// --- PBKDF2 (RFC 6070) ----------------------------------------------------------------

TEST(Pbkdf2, Rfc6070Case1) {
  const std::string salt = "salt";
  const std::span<const std::uint8_t> s{
      reinterpret_cast<const std::uint8_t*>(salt.data()), salt.size()};
  EXPECT_EQ(to_hex(pbkdf2_sha1("password", s, 1, 20)),
            "0c60c80f961f0e71f3a9b524af6012062fe037a6");
}

TEST(Pbkdf2, Rfc6070Case2) {
  const std::string salt = "salt";
  const std::span<const std::uint8_t> s{
      reinterpret_cast<const std::uint8_t*>(salt.data()), salt.size()};
  EXPECT_EQ(to_hex(pbkdf2_sha1("password", s, 2, 20)),
            "ea6c014dc72d6f8ccd1ed92ace1d41f0d8de8957");
}

TEST(Pbkdf2, Rfc6070Case4096) {
  const std::string salt = "salt";
  const std::span<const std::uint8_t> s{
      reinterpret_cast<const std::uint8_t*>(salt.data()), salt.size()};
  EXPECT_EQ(to_hex(pbkdf2_sha1("password", s, 4096, 20)),
            "4b007901b765489abead49d926f721d065a429c1");
}

TEST(Pbkdf2, Rfc6070LongOutput) {
  const std::string salt = "saltSALTsaltSALTsaltSALTsaltSALTsalt";
  const std::span<const std::uint8_t> s{
      reinterpret_cast<const std::uint8_t*>(salt.data()), salt.size()};
  EXPECT_EQ(
      to_hex(pbkdf2_sha1("passwordPASSWORDpassword", s, 4096, 25)),
      "3d2eec4fe41c849b80c8d83662c0e44a8b291a964cf2f07038");
}

// --- WPA2 key hierarchy -------------------------------------------------------------------

TEST(Wpa2, KnownPmkVector) {
  // The canonical 802.11i PSK test vector (IEEE Std 802.11-2016 J.4.2):
  // passphrase "password", SSID "IEEE".
  const Pmk pmk = derive_pmk("password", "IEEE");
  EXPECT_EQ(to_hex(pmk),
            "f42c6fc52df0ebef9ebb4b90b38a5f902e83fe1b135a70e23aed762e9710a12e");
}

TEST(Wpa2, PtkSymmetricInNonceAndMacOrder) {
  const Pmk pmk = derive_pmk("secret", "net");
  const MacAddress ap{1, 2, 3, 4, 5, 6};
  const MacAddress sta{9, 8, 7, 6, 5, 4};
  Nonce a{}, s{};
  a[0] = 0x11;
  s[0] = 0x22;
  const Ptk p1 = derive_ptk(pmk, ap, sta, a, s);
  // The PTK derivation canonicalizes (min, max); both link ends agree.
  const Ptk p2 = derive_ptk(pmk, ap, sta, a, s);
  EXPECT_EQ(p1.tk, p2.tk);
  EXPECT_EQ(p1.kck, p2.kck);
}

TEST(Wpa2, DifferentNoncesGiveDifferentKeys) {
  const Pmk pmk = derive_pmk("secret", "net");
  const MacAddress ap{1, 2, 3, 4, 5, 6};
  const MacAddress sta{9, 8, 7, 6, 5, 4};
  Nonce a{}, s1{}, s2{};
  s1[0] = 1;
  s2[0] = 2;
  EXPECT_NE(derive_ptk(pmk, ap, sta, a, s1).tk,
            derive_ptk(pmk, ap, sta, a, s2).tk);
}

TEST(Wpa2, FastPtkAgreesAcrossEnds) {
  const MacAddress ap{1, 2, 3, 4, 5, 6};
  const MacAddress sta{9, 8, 7, 6, 5, 4};
  EXPECT_EQ(derive_fast_ptk(ap, sta).tk, derive_fast_ptk(ap, sta).tk);
  EXPECT_NE(derive_fast_ptk(ap, sta).tk,
            derive_fast_ptk(sta, ap).tk);  // role order matters by design
}

// --- CCM (RFC 3610 vector 1) -----------------------------------------------------------

TEST(Ccm, Rfc3610Vector1) {
  Aes128::Key key;
  const auto kb = from_hex("c0c1c2c3c4c5c6c7c8c9cacbcccdcecf");
  std::copy(kb.begin(), kb.end(), key.begin());
  const Aes128 cipher(key);

  const Bytes nonce = from_hex("00000003020100a0a1a2a3a4a5");
  const Bytes aad = from_hex("0001020304050607");
  const Bytes plaintext =
      from_hex("08090a0b0c0d0e0f101112131415161718191a1b1c1d1e");

  const Bytes out = ccm::encrypt(cipher, nonce, aad, plaintext);
  EXPECT_EQ(to_hex(out),
            "588c979a61c663d2f066d0c2c0f989806d5f6b61dac384"
            "17e8d12cfdf926e0");
}

TEST(Ccm, DecryptInvertsEncrypt) {
  Aes128::Key key{};
  key[0] = 0x42;
  const Aes128 cipher(key);
  const Bytes nonce(13, 0x07);
  const Bytes aad{1, 2, 3};
  const Bytes plaintext{10, 20, 30, 40, 50};

  const Bytes ct = ccm::encrypt(cipher, nonce, aad, plaintext);
  const auto pt = ccm::decrypt(cipher, nonce, aad, ct);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, plaintext);
}

TEST(Ccm, TamperedCiphertextFailsMic) {
  Aes128::Key key{};
  const Aes128 cipher(key);
  const Bytes nonce(13, 0x01);
  const Bytes aad{9};
  Bytes ct = ccm::encrypt(cipher, nonce, aad, Bytes{1, 2, 3});
  ct[0] ^= 0x80;
  EXPECT_FALSE(ccm::decrypt(cipher, nonce, aad, ct).has_value());
}

TEST(Ccm, WrongAadFailsMic) {
  Aes128::Key key{};
  const Aes128 cipher(key);
  const Bytes nonce(13, 0x01);
  const Bytes ct = ccm::encrypt(cipher, nonce, Bytes{1}, Bytes{5, 5});
  EXPECT_FALSE(ccm::decrypt(cipher, nonce, Bytes{2}, ct).has_value());
}

// --- CCMP frame protection -----------------------------------------------------------------

frames::Frame sample_data_frame() {
  const MacAddress bssid{1, 2, 3, 4, 5, 6};
  const MacAddress sa{7, 8, 9, 10, 11, 12};
  return frames::make_data_to_ds(bssid, sa, bssid,
                                 Bytes{'h', 'e', 'l', 'l', 'o'}, 33);
}

TEST(Ccmp, ProtectUnprotectRoundTrip) {
  Aes128::Key tk{};
  tk[5] = 0xAB;
  frames::Frame f = sample_data_frame();
  const Bytes original_body = f.body;

  ccmp_protect(f, tk, 1);
  EXPECT_TRUE(f.fc.protected_frame);
  EXPECT_EQ(f.body.size(), original_body.size() + 8 + 8);  // hdr + MIC
  EXPECT_NE(f.body, original_body);

  ASSERT_TRUE(ccmp_unprotect(f, tk));
  EXPECT_FALSE(f.fc.protected_frame);
  EXPECT_EQ(f.body, original_body);
}

TEST(Ccmp, WrongKeyFails) {
  Aes128::Key tk{}, other{};
  other[0] = 1;
  frames::Frame f = sample_data_frame();
  ccmp_protect(f, tk, 1);
  EXPECT_FALSE(ccmp_unprotect(f, other));
  EXPECT_TRUE(f.fc.protected_frame);  // left untouched on failure
}

TEST(Ccmp, HeaderTamperFailsViaAad) {
  // The AAD binds addresses: retargeting a captured ciphertext fails.
  Aes128::Key tk{};
  frames::Frame f = sample_data_frame();
  ccmp_protect(f, tk, 7);
  f.addr3 = MacAddress{0xff, 0, 0, 0, 0, 1};
  EXPECT_FALSE(ccmp_unprotect(f, tk));
}

TEST(Ccmp, PacketNumberExtraction) {
  Aes128::Key tk{};
  frames::Frame f = sample_data_frame();
  ccmp_protect(f, tk, 123456);
  EXPECT_EQ(ccmp_packet_number(f), 123456u);
}

TEST(Wpa2Session, ReplayRejected) {
  const Ptk ptk = derive_fast_ptk({1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2});
  Wpa2Session tx(ptk), rx(ptk);

  frames::Frame f1 = sample_data_frame();
  tx.protect(f1);
  frames::Frame replay = f1;
  ASSERT_TRUE(rx.unprotect(f1));
  EXPECT_FALSE(rx.unprotect(replay));  // same PN again
}

TEST(Wpa2Session, PacketNumbersIncrease) {
  const Ptk ptk = derive_fast_ptk({1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2});
  Wpa2Session tx(ptk);
  frames::Frame a = sample_data_frame(), b = sample_data_frame();
  tx.protect(a);
  tx.protect(b);
  EXPECT_LT(*ccmp_packet_number(a), *ccmp_packet_number(b));
}

// --- Decode-latency model (§2.2's quantitative core) ---------------------------------------

TEST(DecodeLatency, CitedRangeCovered) {
  // The paper cites 200-700 us across frame sizes and devices.
  const DecodeLatencyModel mid{};
  EXPECT_GE(mid.decode_us(60), 180.0);
  EXPECT_LE(mid.decode_us(60), 300.0);

  const DecodeLatencyModel slow{.device_class_scale = 1.5};
  EXPECT_LE(slow.decode_us(1000), 800.0);
  EXPECT_GE(slow.decode_us(1000), 500.0);
}

TEST(DecodeLatency, AlwaysExceedsSifs) {
  // The unpreventability argument: even the fastest modeled device on the
  // smallest frame takes an order of magnitude longer than SIFS.
  const DecodeLatencyModel fast{.device_class_scale = 0.7};
  EXPECT_GT(fast.decode_us(14), 10.0 * 10.0);  // >10x the 10 us SIFS
}

}  // namespace
}  // namespace politewifi::crypto
