// Channel-model tests: the static/dynamic decomposition, the AR(1)
// fading stream's purity and moments, and the ChannelEquivalence
// property — `fading_rho = 0` must be byte-identical to the memoryless
// channel across every engine configuration (sharded/unsharded × SoA
// fan-out on/off), all the way up to the survey document the runtime
// publishes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/injector.h"
#include "phy/channel_model.h"
#include "phy/propagation.h"
#include "runtime/experiments/all.h"
#include "runtime/runner.h"
#include "sim/mobility.h"
#include "sim/network.h"
#include "sim/trace.h"

using namespace politewifi;

namespace {

phy::ChannelParams fading_params(double rho, double sigma_db,
                                 std::int64_t coherence_ns = 1'000'000) {
  phy::ChannelParams p;
  p.fading = {.rho = rho, .sigma_db = sigma_db, .coherence_ns = coherence_ns};
  return p;
}

// --- The dynamic term: AR(1) stream contract ---------------------------------

TEST(ChannelModel, FadingDisabledDrawsNothing) {
  for (const auto& ch :
       {phy::ChannelModel(fading_params(0.0, 2.0), 7),     // the off-switch
        phy::ChannelModel(fading_params(0.5, 0.0), 7)}) {  // degenerate sigma
    EXPECT_FALSE(ch.fading_enabled());
    phy::ChannelModel::FadingState st;
    std::uint64_t steps = 0;
    EXPECT_EQ(ch.advance(st, 123, 42, &steps), 0.0);
    EXPECT_EQ(steps, 0u);
  }
  EXPECT_TRUE(phy::ChannelModel(fading_params(0.5, 2.0), 7).fading_enabled());
}

TEST(ChannelModel, FadeIsAPureFunctionOfLinkAndInterval) {
  const phy::ChannelModel ch(fading_params(0.85, 3.0, 250'000), 99);
  const std::uint64_t key = phy::ChannelModel::pair_key(5, 9);

  // Drive one persistent state through a scrambled interval sequence —
  // forward jumps, rewinds, block crossings, repeats. Every value must
  // bit-equal the from-scratch evaluation: the state is only a cache.
  phy::ChannelModel::FadingState st;
  for (const std::uint64_t n : {700ull, 3ull, 255ull, 256ull, 257ull, 0ull,
                                511ull, 512ull, 10ull, 10ull, 1023ull,
                                64ull}) {
    EXPECT_EQ(ch.advance(st, key, n), ch.fading_db(key, n))
        << "interval " << n;
  }

  // A different link never aliases this stream.
  const std::uint64_t other = phy::ChannelModel::pair_key(5, 10);
  EXPECT_NE(ch.fading_db(key, 17), ch.fading_db(other, 17));
}

TEST(ChannelModel, IncrementalAdvanceReplaysTheColdChain) {
  const phy::ChannelModel ch(fading_params(0.9, 2.0), 4);
  const std::uint64_t key = phy::ChannelModel::pair_key(1, 2);
  phy::ChannelModel::FadingState st;
  // 600 sequential intervals cross two stationary-restart boundaries
  // (256, 512); each advance draws exactly one sample, and re-asking
  // for the same interval is a zero-draw cache hit.
  for (std::uint64_t n = 0; n < 600; ++n) {
    std::uint64_t steps = 0;
    const double inc = ch.advance(st, key, n, &steps);
    EXPECT_EQ(steps, 1u) << "interval " << n;
    EXPECT_EQ(inc, ch.fading_db(key, n)) << "interval " << n;
    steps = 0;
    EXPECT_EQ(ch.advance(st, key, n, &steps), inc);
    EXPECT_EQ(steps, 0u) << "interval " << n;
  }
}

TEST(ChannelModel, ReciprocalLinksShareOneFade) {
  const phy::ChannelModel ch(fading_params(0.7, 2.5), 11);
  EXPECT_EQ(phy::ChannelModel::pair_key(3, 8),
            phy::ChannelModel::pair_key(8, 3));
  EXPECT_EQ(ch.fading_db(phy::ChannelModel::pair_key(3, 8), 5),
            ch.fading_db(phy::ChannelModel::pair_key(8, 3), 5));
}

TEST(ChannelModel, DistinctSeedsDecorrelateTheStreams) {
  const phy::ChannelModel a(fading_params(0.8, 2.0), 1);
  const phy::ChannelModel b(fading_params(0.8, 2.0), 2);
  const std::uint64_t key = phy::ChannelModel::pair_key(4, 6);
  EXPECT_NE(a.fading_db(key, 9), b.fading_db(key, 9));
}

TEST(ChannelModel, IntervalAtQuantisesSimTimeByCoherence) {
  const phy::ChannelModel ch(fading_params(0.8, 2.0, 1'000'000), 3);
  EXPECT_EQ(ch.interval_at(0), 0u);
  EXPECT_EQ(ch.interval_at(999'999), 0u);
  EXPECT_EQ(ch.interval_at(1'000'000), 1u);
  EXPECT_EQ(ch.interval_at(5'500'000), 5u);
}

// Ensemble moments across independent links: the stationary variance is
// sigma^2 and the lag-k autocorrelation is rho^k (exactly, within a
// restart block — the block-boundary bias is ~lag/kBlockIntervals and
// the sampled intervals below never straddle one).
TEST(ChannelModel, AR1MomentsMatchTheory) {
  const double rho = 0.8;
  const double sigma = 3.0;
  const phy::ChannelModel ch(fading_params(rho, sigma), 2024);
  constexpr int kLinks = 4000;
  constexpr std::uint64_t kBase = 40;  // mid-block; max lag 8 stays inside

  std::vector<std::uint64_t> keys(kLinks);
  std::vector<double> base(kLinks);
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < kLinks; ++i) {
    keys[i] = phy::ChannelModel::pair_key(2 * i + 1, 2 * i + 2);
    base[i] = ch.fading_db(keys[i], kBase);
    sum += base[i];
    sumsq += base[i] * base[i];
  }
  const double mean = sum / kLinks;
  const double var = sumsq / kLinks - mean * mean;
  // Standard errors: sigma/sqrt(N) ~= 0.047 for the mean,
  // sigma^2 sqrt(2/N) ~= 0.20 for the variance. Bounds are ~4 sigma.
  EXPECT_NEAR(mean, 0.0, 0.2);
  EXPECT_NEAR(var, sigma * sigma, 0.9);

  for (const std::uint64_t lag : {1u, 2u, 4u, 8u}) {
    double mean_l = 0.0;
    std::vector<double> lagged(kLinks);
    for (int i = 0; i < kLinks; ++i) {
      lagged[i] = ch.fading_db(keys[i], kBase + lag);
      mean_l += lagged[i];
    }
    mean_l /= kLinks;
    double cov = 0.0;
    double var_l = 0.0;
    for (int i = 0; i < kLinks; ++i) {
      cov += (base[i] - mean) * (lagged[i] - mean_l);
      var_l += (lagged[i] - mean_l) * (lagged[i] - mean_l);
    }
    const double corr = cov / std::sqrt((var * kLinks) * var_l);
    EXPECT_NEAR(corr, std::pow(rho, double(lag)), 0.06) << "lag " << lag;
  }
}

// --- The static term: bit-compatibility with the legacy path -----------------

TEST(ChannelModel, StaticGainIsLogDistancePlusShadowing) {
  phy::ChannelParams cp;
  cp.path_loss_exponent = 3.2;
  cp.shadowing_sigma_db = 4.0;
  const phy::ChannelModel ch(cp, 77);

  const double freq = 2.437e9;
  const phy::LogDistancePathLoss reference(
      {.exponent = 3.2, .reference_m = 1.0, .shadowing_sigma_db = 0.0}, freq);
  EXPECT_EQ(ch.reference_loss_db(freq), reference.reference_loss_db());
  // Memoized second ask is the identical double.
  EXPECT_EQ(ch.reference_loss_db(freq), ch.reference_loss_db(freq));

  for (const double d : {0.05, 1.0, 7.3, 120.0}) {
    const double expected =
        -reference.loss_db(d) + ch.shadowing_db(21, 34);
    EXPECT_EQ(ch.static_gain_db(freq, d, 21, 34), expected) << "d=" << d;
    // Reciprocity: the shadowing draw is order-independent.
    EXPECT_EQ(ch.static_gain_db(freq, d, 34, 21),
              ch.static_gain_db(freq, d, 21, 34));
  }
}

// --- ChannelEquivalence: the rho = 0 off-switch ------------------------------

struct EngineFingerprint {
  std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                         std::uint64_t, std::uint64_t, std::uint64_t>>
      station;
  std::vector<double> energy_mj;
  std::uint64_t receptions = 0;
  std::uint64_t delivery_events = 0;
  std::vector<std::tuple<TimePoint, std::string, Bytes>> trace;

  bool operator==(const EngineFingerprint&) const = default;
};

/// A compact mixed scenario with marginal links: static population
/// spread across several 150 m super-cells plus a walking injector, with
/// shadowing and frame errors ON, so an up- or down-fade that leaked
/// through a supposedly dormant fading term would flip FER draws,
/// detection edges, energies and trace bytes.
EngineFingerprint run_channel_scenario(sim::MediumConfig mc) {
  mc.shard_cell_m = 150.0;
  sim::Simulation sim({.medium = mc, .seed = 314});
  sim::TraceRecorder& recorder = sim.trace();

  Rng layout(271);
  std::vector<sim::Device*> targets;
  for (int i = 0; i < 8; ++i) {
    sim::RadioConfig rc;
    rc.position = {layout.uniform(-200.0, 200.0),
                   layout.uniform(-200.0, 200.0)};
    auto& dev = sim.add_device(
        {.name = "node" + std::to_string(i)},
        {0x5e, 0x44, 0x33, 0x22, 0x11, std::uint8_t(i)}, rc);
    targets.push_back(&dev);
  }

  sim::RadioConfig rig;
  rig.position = {-200.0, -200.0};
  sim::Device& attacker = sim.add_device(
      {.name = "walker", .kind = sim::DeviceKind::kAttacker},
      {0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0xee}, rig);
  core::FakeFrameInjector injector(attacker);
  sim::WaypointMover mover(attacker.radio(), sim.scheduler(),
                           {{-200.0, -200.0}, {200.0, 200.0}}, 40.0,
                           milliseconds(50));
  mover.start();

  for (int step = 0; step < 60; ++step) {
    injector.inject_one(targets[layout.uniform_int(0, 7)]->address());
    sim.run_for(milliseconds(25));
  }
  sim.run_for(milliseconds(200));
  sim.medium().audit_coherence();

  EngineFingerprint fp;
  for (const auto& dev : sim.devices()) {
    const auto& s = dev->station().stats();
    fp.station.emplace_back(s.frames_received, s.frames_for_us, s.acks_sent,
                            s.fcs_failures, s.duplicates_dropped,
                            s.frames_transmitted);
    fp.energy_mj.push_back(dev->radio().energy().consumed_mj(sim.now()));
  }
  fp.receptions = sim.medium().stats().receptions;
  fp.delivery_events = sim.medium().stats().delivery_events;
  for (const auto& e : recorder.entries()) {
    fp.trace.emplace_back(e.time, e.sender_name, e.raw);
  }
  return fp;
}

TEST(ChannelEquivalence, RhoZeroIsByteIdenticalToTheMemorylessChannel) {
  // The reference: an untouched MediumConfig — the engine exactly as it
  // ran before the channel refactor.
  const EngineFingerprint baseline = run_channel_scenario({});
  ASSERT_FALSE(baseline.trace.empty());

  for (const int shards : {1, 4}) {
    for (const bool soa : {true, false}) {
      sim::MediumConfig mc;
      mc.shards = shards;
      mc.soa_fanout = soa;
      mc.fading_rho = 0.0;  // the off-switch under test
      // Deliberately loud dormant knobs: with rho = 0 they must be
      // completely inert, not merely small.
      mc.fading_sigma_db = 9.0;
      mc.fading_coherence_us = 50.0;
      EXPECT_EQ(run_channel_scenario(mc), baseline)
          << "shards=" << shards << " soa_fanout=" << soa;
    }
  }
}

// Sanity for the property above: with rho > 0 the very same scenario
// must NOT reproduce the memoryless bytes — otherwise the off-switch
// test is vacuous.
TEST(ChannelEquivalence, CorrelatedFadingActuallyChangesTheBytes) {
  const EngineFingerprint baseline = run_channel_scenario({});
  sim::MediumConfig mc;
  mc.fading_rho = 0.9;
  mc.fading_sigma_db = 6.0;
  mc.fading_coherence_us = 500.0;
  EXPECT_NE(run_channel_scenario(mc), baseline);
}

// The same off-switch at the top of the stack: the §3 survey document
// (params echo aside) must ignore arbitrarily loud dormant fading knobs.
TEST(ChannelEquivalence, SurveyDocumentIgnoresDormantFadingKnobs) {
  runtime::register_builtin_experiments();
  const auto base = runtime::run_experiment("wardriving", {}, /*smoke=*/true);
  ASSERT_EQ(base.exit_code, 0);
  const auto tweaked = runtime::run_experiment(
      "wardriving",
      {{"fading_sigma_db", "7.5"}, {"fading_coherence_us", "50"}},
      /*smoke=*/true);
  ASSERT_EQ(tweaked.exit_code, 0);

  const auto results_block = [](const std::string& doc) {
    const auto at = doc.find("\"results\"");
    EXPECT_NE(at, std::string::npos);
    return doc.substr(at);
  };
  EXPECT_EQ(results_block(base.json), results_block(tweaked.json));
  EXPECT_NE(base.json, tweaked.json);  // the params echo does differ
}

}  // namespace
