// Sensing pipeline unit tests: series statistics, filters, features,
// activity segmentation, keystroke detection, vitals, and DTW — on
// synthetic signals with known answers.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sensing/activity.h"
#include "sensing/dtw.h"
#include "sensing/filters.h"
#include "sensing/keystroke.h"
#include "sensing/vitals.h"

namespace politewifi::sensing {
namespace {

TimeSeries make_series(std::vector<double> v, double fs = 100.0) {
  return TimeSeries{.t0_s = 0.0, .dt_s = 1.0 / fs, .v = std::move(v)};
}

std::vector<double> sine(double freq, double fs, double secs,
                         double amp = 1.0, double dc = 0.0) {
  std::vector<double> v;
  const std::size_t n = std::size_t(fs * secs);
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(dc + amp * std::sin(2.0 * M_PI * freq * double(i) / fs));
  }
  return v;
}

// --- Statistics ---------------------------------------------------------------

TEST(SeriesStats, MeanVarianceStddev) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SeriesStats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(SeriesStats, Mad) {
  // MAD of {1,1,2,2,4,6,9} about median 2 is 1.
  EXPECT_DOUBLE_EQ(median_absolute_deviation({1, 1, 2, 2, 4, 6, 9}), 1.0);
}

// --- Filters -------------------------------------------------------------------

TEST(Filters, MovingAverageSmoothsConstantPerfectly) {
  const std::vector<double> v(50, 3.0);
  const auto out = moving_average(v, 7);
  for (const double x : out) EXPECT_DOUBLE_EQ(x, 3.0);
}

TEST(Filters, MovingAverageReducesNoiseVariance) {
  Rng rng(1);
  std::vector<double> noise;
  for (int i = 0; i < 2000; ++i) noise.push_back(rng.gaussian());
  const auto smoothed = moving_average(noise, 9);
  EXPECT_LT(variance(smoothed), variance(noise) / 4.0);
}

TEST(Filters, MedianFilterKillsImpulses) {
  std::vector<double> v(30, 1.0);
  v[10] = 100.0;
  const auto out = median_filter(v, 5);
  EXPECT_DOUBLE_EQ(out[10], 1.0);
}

TEST(Filters, HampelReplacesOutliersOnly) {
  std::vector<double> v = sine(1.0, 100.0, 1.0);
  v[37] += 25.0;  // spike
  const auto out = hampel_filter(v, 9, 3.0);
  EXPECT_LT(std::abs(out[37]), 2.0);
  // Non-outlier samples untouched.
  EXPECT_DOUBLE_EQ(out[5], v[5]);
}

TEST(Filters, ButterworthPassesLowBlocksHigh) {
  const double fs = 100.0;
  const auto low = sine(1.0, fs, 4.0);
  const auto high = sine(30.0, fs, 4.0);
  ButterworthLowPass f1(5.0, fs), f2(5.0, fs);
  const auto low_out = f1.apply(low);
  const auto high_out = f2.apply(high);
  // Steady-state amplitude comparison over the second half.
  auto rms_tail = [](const std::vector<double>& v) {
    double s = 0.0;
    for (std::size_t i = v.size() / 2; i < v.size(); ++i) s += v[i] * v[i];
    return std::sqrt(s / double(v.size() / 2));
  };
  EXPECT_GT(rms_tail(low_out), 0.9 / std::sqrt(2.0));
  EXPECT_LT(rms_tail(high_out), 0.05);
}

TEST(Filters, FiltFiltPreservesLength) {
  const auto v = sine(2.0, 100.0, 1.0);
  EXPECT_EQ(butterworth_filtfilt(v, 10.0, 100.0).size(), v.size());
}

// --- Features --------------------------------------------------------------------

TEST(Features, MovingVarianceFlatVsNoisy) {
  std::vector<double> v(200, 1.0);
  for (std::size_t i = 100; i < 200; ++i) {
    v[i] = 1.0 + ((i % 2 == 0) ? 0.5 : -0.5);
  }
  const auto mv = moving_variance(v, 21);
  EXPECT_LT(mv[50], 1e-12);
  EXPECT_GT(mv[150], 0.1);
}

TEST(Features, GoertzelFindsTheTone) {
  const double fs = 100.0;
  const auto v = sine(7.0, fs, 4.0);
  EXPECT_GT(goertzel_power(v, 7.0, fs), 10.0 * goertzel_power(v, 3.0, fs));
}

TEST(Features, DominantFrequency) {
  const double fs = 50.0;
  auto v = sine(0.3, fs, 60.0);
  EXPECT_NEAR(dominant_frequency(v, fs, 0.1, 0.6), 0.3, 0.02);
}

TEST(Features, FindPeaksRespectsThresholdAndSeparation) {
  std::vector<double> v(100, 0.0);
  v[10] = 5.0;
  v[12] = 4.0;  // within separation of the taller one
  v[50] = 3.0;
  v[90] = 0.5;  // below threshold
  const auto peaks = find_peaks(v, 1.0, 10);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0], 10u);
  EXPECT_EQ(peaks[1], 50u);
}

// --- Activity segmentation ------------------------------------------------------------

TEST(Activity, ThreePhaseSegmentation) {
  // still (0-5 s), strong motion (5-10 s), still (10-15 s) at 100 Hz.
  Rng rng(2);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(10.0 + 0.01 * rng.gaussian());
  for (int i = 0; i < 500; ++i) {
    v.push_back(10.0 + 3.0 * std::sin(2.0 * M_PI * 2.0 * i / 100.0) +
                0.01 * rng.gaussian());
  }
  for (int i = 0; i < 500; ++i) v.push_back(10.0 + 0.01 * rng.gaussian());

  ActivityDetector detector;
  const auto segments = detector.segment(make_series(v));
  ASSERT_GE(segments.size(), 3u);
  EXPECT_EQ(segments.front().cls, MotionClass::kStill);
  EXPECT_EQ(segments.back().cls, MotionClass::kStill);
  bool saw_major = false;
  for (const auto& s : segments) {
    if (s.cls == MotionClass::kMajor) {
      saw_major = true;
      EXPECT_NEAR(s.start_s, 5.0, 1.0);
    }
  }
  EXPECT_TRUE(saw_major);
}

TEST(Activity, MotionEventsAtTransitions) {
  Rng rng(3);
  std::vector<double> v;
  auto still = [&](int n) {
    for (int i = 0; i < n; ++i) v.push_back(5.0 + 0.01 * rng.gaussian());
  };
  auto moving = [&](int n) {
    for (int i = 0; i < n; ++i) {
      v.push_back(5.0 + 2.0 * std::sin(2.0 * M_PI * 3.0 * i / 100.0));
    }
  };
  still(900);    // 0-9 s
  moving(300);   // 9-12 s   <- event at ~9 s
  still(2000);   // 12-32 s
  moving(300);   // 32-35 s  <- event at ~32 s (the paper's §4.3 times!)
  still(500);

  ActivityDetector detector;
  const auto events = detector.motion_events(make_series(v));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NEAR(events[0], 9.0, 1.0);
  EXPECT_NEAR(events[1], 32.0, 1.0);
}

TEST(Activity, AllStillGivesOneSegment) {
  Rng rng(4);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(1.0 + 0.01 * rng.gaussian());
  ActivityDetector detector;
  const auto segments = detector.segment(make_series(v));
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].cls, MotionClass::kStill);
}

// --- Keystroke detection ---------------------------------------------------------------

std::vector<double> typing_signal(const std::vector<double>& stroke_times,
                                  double fs, double secs, Rng& rng,
                                  double depth = 1.0) {
  std::vector<double> v;
  const std::size_t n = std::size_t(fs * secs);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = double(i) / fs;
    double x = 10.0 + 0.005 * rng.gaussian();
    for (const double tk : stroke_times) {
      const double dt = t - tk;
      x += depth * std::exp(-dt * dt / (2.0 * 0.04 * 0.04));
    }
    v.push_back(x);
  }
  return v;
}

TEST(Keystroke, DetectsPlantedStrokes) {
  Rng rng(5);
  const std::vector<double> truth{1.0, 1.5, 2.1, 2.8, 3.3, 4.0};
  const auto v = typing_signal(truth, 150.0, 5.0, rng);
  KeystrokeDetector detector;
  const auto events = detector.detect(make_series(v, 150.0));
  const auto score = match_keystrokes(events, truth);
  EXPECT_GE(score.recall(), 0.8);
  EXPECT_GE(score.precision(), 0.8);
}

TEST(Keystroke, QuietSignalYieldsNothing) {
  Rng rng(6);
  const auto v = typing_signal({}, 150.0, 5.0, rng);
  KeystrokeDetector detector;
  EXPECT_TRUE(detector.detect(make_series(v, 150.0)).empty());
}

TEST(Keystroke, TypingRate) {
  std::vector<KeystrokeEvent> events;
  for (int i = 0; i < 6; ++i) {
    events.push_back({.time_s = double(i) * 0.5, .magnitude = 1.0});
  }
  EXPECT_NEAR(KeystrokeDetector::typing_rate(events), 2.0, 1e-9);
}

TEST(Keystroke, MatchScoring) {
  std::vector<KeystrokeEvent> events{{.time_s = 1.0}, {.time_s = 5.0}};
  const auto score = match_keystrokes(events, {1.05, 2.0}, 0.15);
  EXPECT_EQ(score.true_positives, 1u);
  EXPECT_EQ(score.false_positives, 1u);
  EXPECT_EQ(score.misses, 1u);
  EXPECT_NEAR(score.f1(), 0.5, 1e-9);
}

// --- Vitals ------------------------------------------------------------------------------

TEST(Vitals, BreathingRateRecovered) {
  // 15 breaths/minute = 0.25 Hz chest motion.
  Rng rng(7);
  auto v = sine(0.25, 20.0, 60.0, 0.3, 10.0);
  for (auto& x : v) x += 0.02 * rng.gaussian();
  const auto est = estimate_breathing(make_series(v, 20.0));
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->rate_bpm, 15.0, 1.0);
}

TEST(Vitals, NoBreathingInFlatSignal) {
  Rng rng(8);
  std::vector<double> v;
  for (int i = 0; i < 1200; ++i) v.push_back(10.0 + 0.02 * rng.gaussian());
  EXPECT_FALSE(estimate_breathing(make_series(v, 20.0)).has_value());
}

TEST(Vitals, OccupancyDetection) {
  Rng rng(9);
  std::vector<double> quiet;
  for (int i = 0; i < 1000; ++i) quiet.push_back(5.0 + 0.01 * rng.gaussian());
  EXPECT_FALSE(detect_occupancy(make_series(quiet)));

  std::vector<double> busy = quiet;
  for (int i = 400; i < 600; ++i) {
    busy[i] += 2.0 * std::sin(2.0 * M_PI * 1.5 * i / 100.0);
  }
  EXPECT_TRUE(detect_occupancy(make_series(busy)));
}

// --- DTW ---------------------------------------------------------------------------------

TEST(Dtw, IdenticalSeriesZeroDistance) {
  const std::vector<double> a{1, 2, 3, 2, 1};
  EXPECT_DOUBLE_EQ(dtw_distance(a, a), 0.0);
}

TEST(Dtw, WarpingToleratesTimeStretch) {
  const std::vector<double> a{0, 1, 2, 3, 2, 1, 0};
  const std::vector<double> stretched{0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 1, 1, 0, 0};
  const std::vector<double> different{3, 3, 3, 3, 3, 3, 3};
  EXPECT_LT(dtw_distance(a, stretched), dtw_distance(a, different));
}

TEST(Dtw, ClassifyPicksNearestTemplate) {
  const std::vector<std::vector<double>> templates{
      {0, 1, 0}, {1, 0, 1}, {2, 2, 2}};
  EXPECT_EQ(dtw_classify({0.1, 0.9, 0.1}, templates), 0);
  EXPECT_EQ(dtw_classify({1.9, 2.1, 2.0}, templates), 2);
  EXPECT_EQ(dtw_classify({1, 2, 3}, {}), -1);
}

TEST(Dtw, EarlyAbandonMatchesNaiveBelowThreshold) {
  // Exactness contract: any distance <= abandon_above must equal the
  // unabandoned computation bit-for-bit, across bands and random series.
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> a, b;
    const int na = 8 + rng.uniform_int(0, 40);
    const int nb = 8 + rng.uniform_int(0, 40);
    for (int i = 0; i < na; ++i) a.push_back(rng.gaussian());
    for (int i = 0; i < nb; ++i) b.push_back(rng.gaussian());
    const int band = trial % 3 == 0 ? 0 : 5 + trial % 7;
    const double naive = dtw_distance(a, b, band);
    // A threshold above the true distance must not change the result.
    EXPECT_EQ(dtw_distance(a, b, band, naive + 1.0), naive) << trial;
    EXPECT_EQ(dtw_distance(a, b, band, naive), naive) << trial;
    // A threshold below it abandons: the sentinel is +inf, never a wrong
    // finite value.
    const double abandoned = dtw_distance(a, b, band, naive * 0.5);
    EXPECT_TRUE(abandoned == naive ||
                abandoned == std::numeric_limits<double>::infinity())
        << trial;
  }
}

TEST(Dtw, ClassifyUnchangedByPruning) {
  // dtw_classify threads its best-so-far into dtw_distance; the argmin
  // must match a naive full-scan classification.
  Rng rng(7);
  std::vector<std::vector<double>> templates;
  for (int t = 0; t < 12; ++t) {
    std::vector<double> s;
    for (int i = 0; i < 32; ++i) {
      s.push_back(std::sin(0.2 * i * (t + 1)) + 0.1 * rng.gaussian());
    }
    templates.push_back(std::move(s));
  }
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q;
    const int shape = trial % 12;
    for (int i = 0; i < 32; ++i) {
      q.push_back(std::sin(0.2 * i * (shape + 1)) + 0.2 * rng.gaussian());
    }
    int naive_best = -1;
    double naive_d = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < templates.size(); ++t) {
      const double d = dtw_distance(q, templates[t], 8);
      if (d < naive_d) {
        naive_d = d;
        naive_best = int(t);
      }
    }
    EXPECT_EQ(dtw_classify(q, templates, 8), naive_best) << trial;
  }
}

TEST(Dtw, ZNormalize) {
  const auto z = z_normalize({1, 2, 3, 4, 5});
  EXPECT_NEAR(mean(z), 0.0, 1e-12);
  EXPECT_NEAR(stddev(z), 1.0, 1e-12);
}

// --- Resampling -----------------------------------------------------------------------------

TEST(Resample, UniformGridFromIrregularSamples) {
  std::vector<phy::CsiSample> samples;
  Rng rng(10);
  phy::PathSet paths{{.delay_ns = 10, .amplitude = 1.0}};
  double t = 0.0;
  for (int i = 0; i < 100; ++i) {
    phy::CsiSample s;
    s.time = kSimStart + from_seconds(t);
    Rng noise(i);
    s.csi = phy::evaluate_csi(2.437e9, paths, {}, 0.0, noise, s.time);
    samples.push_back(s);
    t += 0.01 + rng.uniform(0.0, 0.004);  // irregular ~80 Hz
  }
  const auto series = resample_amplitude(samples, 17, 100.0);
  EXPECT_NEAR(series.dt_s, 0.01, 1e-12);
  EXPECT_GT(series.size(), 100u);
  for (const double x : series.v) EXPECT_GT(x, 0.0);
}

TEST(Resample, EmptyInput) {
  EXPECT_TRUE(resample_amplitude({}, 17, 100.0).empty());
}

}  // namespace
}  // namespace politewifi::sensing
