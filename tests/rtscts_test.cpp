// RTS/CTS initiator tests: the dot11RTSThreshold machinery, both against
// the mock environment (exact timing) and end-to-end over the medium.
#include <gtest/gtest.h>

#include "core/injector.h"
#include "frames/data.h"
#include "frames/serializer.h"
#include "mac/station.h"
#include "sim/network.h"

namespace politewifi::mac {
namespace {

const MacAddress kSelf{0x3c, 0x28, 0x6d, 0x01, 0x02, 0x03};
const MacAddress kPeer{0x00, 0x11, 0x22, 0x33, 0x44, 0x55};

/// Mock environment with ordered timer execution (same as the station
/// suite's, trimmed).
class MockEnv : public MacEnvironment {
 public:
  struct Sent {
    frames::Frame frame;
    phy::TxVector tx;
    TimePoint at;
  };

  TimePoint now() const override { return now_; }
  std::uint64_t schedule(Duration delay, SmallFn fn) override {
    const std::uint64_t id = next_id_++;
    timers_.push_back(Timer{id, now_ + delay, std::move(fn), false});
    return id;
  }
  void cancel(std::uint64_t id) override {
    for (auto& t : timers_) {
      if (t.id == id) t.cancelled = true;
    }
  }
  void transmit(const frames::Frame& frame, const phy::TxVector& tx) override {
    sent_.push_back({frame, tx, now_});
  }
  bool medium_busy() const override { return false; }

  void advance(Duration d) {
    const TimePoint until = now_ + d;
    while (true) {
      auto best = timers_.end();
      for (auto it = timers_.begin(); it != timers_.end(); ++it) {
        if (it->cancelled || it->at > until) continue;
        if (best == timers_.end() || it->at < best->at ||
            (it->at == best->at && it->id < best->id)) {
          best = it;
        }
      }
      if (best == timers_.end()) break;
      now_ = best->at;
      auto fn = std::move(best->fn);
      timers_.erase(best);
      fn();
    }
    now_ = until;
  }

  std::vector<Sent> sent_;

 private:
  struct Timer {
    std::uint64_t id;
    TimePoint at;
    SmallFn fn;
    bool cancelled;
  };
  TimePoint now_ = kSimStart;
  std::vector<Timer> timers_;
  std::uint64_t next_id_ = 1;
};

frames::Frame big_frame() {
  return frames::make_data_to_ds(kPeer, kSelf, kPeer, Bytes(500, 0x42), 7);
}

template <typename Pred>
bool advance_until(MockEnv& env, Pred pred, Duration max = seconds(1)) {
  const TimePoint deadline = env.now() + max;
  while (!pred() && env.now() < deadline) env.advance(microseconds(10));
  return pred();
}

TEST(RtsCtsInitiator, LargeFramePrecededByRts) {
  MockEnv env;
  MacConfig cfg;
  cfg.address = kSelf;
  cfg.rts_threshold = 300;
  Station station(cfg, env, Rng(1));

  station.send(big_frame(), phy::kOfdm24);
  ASSERT_TRUE(advance_until(env, [&] { return !env.sent_.empty(); }));
  ASSERT_EQ(env.sent_.size(), 1u);
  const auto& rts = env.sent_[0];
  EXPECT_TRUE(rts.frame.fc.is_rts());
  EXPECT_EQ(rts.frame.addr1, kPeer);
  EXPECT_EQ(rts.frame.addr2, kSelf);
  // NAV must cover CTS + data + ACK + 3 SIFS.
  EXPECT_GT(rts.frame.duration_id, 200);
  EXPECT_EQ(station.stats().rts_sent, 1u);

  // Peer answers CTS: the data goes out one SIFS later.
  phy::RxVector rx;
  rx.rate = phy::kOfdm24;
  station.on_ppdu_received(
      frames::serialize(frames::make_cts(kSelf, 100)), rx);
  const TimePoint cts_time = env.now();
  ASSERT_TRUE(advance_until(env, [&] { return env.sent_.size() >= 2; }));
  const auto& data = env.sent_[1];
  EXPECT_TRUE(data.frame.fc.is_data());
  EXPECT_EQ(data.at - cts_time, phy::sifs(phy::Band::k2_4GHz));
  EXPECT_EQ(station.stats().cts_received, 1u);

  // ACK completes the exchange.
  station.on_ppdu_received(frames::serialize(frames::make_ack(kSelf)), rx);
  env.advance(milliseconds(1));
  EXPECT_EQ(station.stats().tx_success, 1u);
}

TEST(RtsCtsInitiator, SmallFrameSkipsRts) {
  MockEnv env;
  MacConfig cfg;
  cfg.address = kSelf;
  cfg.rts_threshold = 300;
  Station station(cfg, env, Rng(1));
  station.send(frames::make_null_function(kPeer, kSelf, 1), phy::kOfdm24);
  ASSERT_TRUE(advance_until(env, [&] { return !env.sent_.empty(); }));
  EXPECT_TRUE(env.sent_[0].frame.fc.is_null_function());
  EXPECT_EQ(station.stats().rts_sent, 0u);
}

TEST(RtsCtsInitiator, NoCtsMeansRetryThenFailure) {
  MockEnv env;
  MacConfig cfg;
  cfg.address = kSelf;
  cfg.rts_threshold = 300;
  cfg.retry_limit = 3;
  Station station(cfg, env, Rng(1));
  std::optional<TxResult> result;
  station.send(big_frame(), phy::kOfdm24,
               [&result](const TxResult& r) { result = r; });
  env.advance(seconds(2));

  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->acked);
  // Every attempt was an RTS that went unanswered; the data never flew.
  EXPECT_EQ(station.stats().rts_sent, 3u);
  for (const auto& s : env.sent_) {
    EXPECT_TRUE(s.frame.fc.is_rts());
  }
}

TEST(RtsCtsInitiator, EndToEndOverTheMedium) {
  sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 130});
  sim::RadioConfig a_rc;
  MacConfig a_mc;
  a_mc.rts_threshold = 300;
  sim::Device& a =
      sim.add_device({.name = "a"}, kSelf, a_rc, a_mc);
  sim::RadioConfig b_rc;
  b_rc.position = {5, 0};
  sim::Device& b = sim.add_device({.name = "b"}, kPeer, b_rc);
  (void)b;

  auto& trace = sim.trace();
  std::optional<TxResult> result;
  a.station().send(big_frame(), phy::kOfdm24,
                   [&result](const TxResult& r) { result = r; });
  sim.run_for(milliseconds(20));

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->acked);
  // The on-air order is RTS, CTS, data, ACK.
  std::vector<std::string> kinds;
  for (const auto& e : trace.entries()) {
    if (e.frame.fc.is_rts()) kinds.push_back("rts");
    if (e.frame.fc.is_cts()) kinds.push_back("cts");
    if (e.frame.fc.is_data()) kinds.push_back("data");
    if (e.frame.fc.is_ack()) kinds.push_back("ack");
  }
  EXPECT_EQ(kinds,
            (std::vector<std::string>{"rts", "cts", "data", "ack"}));
}

TEST(RtsCtsInitiator, ThirdPartyDefersForTheWholeExchange) {
  // A bystander hearing only the RTS must honour its NAV through the
  // data + ACK — virtual carrier sense protecting hidden terminals.
  sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 131});
  sim::RadioConfig a_rc;
  MacConfig a_mc;
  a_mc.rts_threshold = 300;
  sim::Device& a = sim.add_device({.name = "a"}, kSelf, a_rc, a_mc);
  sim::RadioConfig b_rc;
  b_rc.position = {5, 0};
  sim.add_device({.name = "b"}, kPeer, b_rc);
  sim::RadioConfig c_rc;
  c_rc.position = {2, 2};
  sim::Device& bystander = sim.add_device(
      {.name = "c"}, {9, 9, 9, 9, 9, 9}, c_rc);

  a.station().send(big_frame(), phy::kOfdm24);
  sim.run_for(microseconds(100));  // RTS is on the air / just heard
  // Bystander queues a frame now; it must not transmit into the NAV.
  const TimePoint queued = sim.now();
  bool sent = false;
  TimePoint sent_at{};
  sim.medium().set_trace_sink([&](const sim::TransmissionEvent& ev) {
    const auto r = frames::deserialize(ev.ppdu.bytes());
    if (r.frame && r.frame->fc.is_null_function() && !sent) {
      sent = true;
      sent_at = ev.start;
    }
  });
  bystander.station().send(
      frames::make_null_function({8, 8, 8, 8, 8, 8},
                                 bystander.address(), 1),
      phy::kOfdm24);
  sim.run_for(milliseconds(20));
  ASSERT_TRUE(sent);
  // The exchange at 24 Mb/s with a 500-byte MPDU runs ~250+ us of NAV;
  // the bystander's frame must start after the NAV it heard.
  EXPECT_GT(sent_at - queued, microseconds(200));
}

}  // namespace
}  // namespace politewifi::mac
