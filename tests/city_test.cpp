// City-scale reduction equivalence: one child document per district,
// reduced by runtime/city_reduce, must be *byte-identical* to the
// in-process `pw_run city` document — including the merged `metrics`
// block — for both the unsharded and the sharded medium. This is the
// in-process face of the CI `city-smoke` job (which re-proves the same
// property across real processes via `pw_run --city`).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "common/json_parse.h"
#include "runtime/city_reduce.h"
#include "runtime/experiments/all.h"
#include "runtime/runner.h"

namespace politewifi {
namespace {

using common::Json;

/// Runs the city experiment quietly (narration swallowed), metrics on.
runtime::RunExperimentResult run_city(std::vector<common::Flag> flags) {
  runtime::register_builtin_experiments();
  runtime::RunOptions options;
  options.metrics = true;
  ::testing::internal::CaptureStdout();
  auto result =
      runtime::run_experiment("city", flags, /*smoke=*/true, options);
  ::testing::internal::GetCapturedStdout();
  return result;
}

Json parse_or_die(const std::string& text) {
  std::string error;
  auto parsed = common::parse_json(text, &error);
  EXPECT_TRUE(parsed.has_value()) << error;
  return parsed.has_value() ? std::move(*parsed) : Json();
}

/// The property itself, parameterized on the extra experiment flags:
/// reduce(4 x district=k) == district=-1, byte for byte.
void expect_reduction_matches_in_process(
    const std::vector<common::Flag>& base) {
  const auto whole = run_city(base);
  ASSERT_EQ(whole.exit_code, 0) << whole.error;

  std::vector<Json> children;
  for (int k = 0; k < 4; ++k) {
    auto flags = base;
    flags.push_back({"district", std::to_string(k)});
    const auto child = run_city(flags);
    ASSERT_EQ(child.exit_code, 0) << child.error;
    children.push_back(parse_or_die(child.json));
  }

  std::string error;
  const auto reduced = runtime::reduce_city_documents(children, &error);
  ASSERT_TRUE(reduced.has_value()) << error;
  EXPECT_EQ(reduced->dump() + "\n", whole.json);
}

// The suite runs at half smoke scale to stay quick; smoke resolves
// districts=4.
const std::vector<common::Flag> kQuick = {{"scale", "0.005"}};

TEST(CityReduction, ChildDocumentsReduceToTheInProcessBytes) {
  expect_reduction_matches_in_process(kQuick);
}

TEST(CityReduction, ShardedMediumReducesIdentically) {
  auto flags = kQuick;
  flags.push_back({"shards", "4"});
  expect_reduction_matches_in_process(flags);
}

TEST(CityReduction, ShardingDoesNotChangeTheSurvey) {
  // The medium-level ShardEquivalence suite proves byte-identity of the
  // simulation; this re-proves it end to end through the experiment:
  // only cache-efficiency metrics may differ between shard counts.
  auto sharded_flags = kQuick;
  sharded_flags.push_back({"shards", "4"});
  const auto flat = run_city(kQuick);
  const auto sharded = run_city(sharded_flags);
  ASSERT_EQ(flat.exit_code, 0);
  ASSERT_EQ(sharded.exit_code, 0);
  const Json flat_doc = parse_or_die(flat.json);
  const Json sharded_doc = parse_or_die(sharded.json);
  EXPECT_EQ(flat_doc.find("results")->dump(),
            sharded_doc.find("results")->dump());
}

// --- Reducer validation on synthetic documents --------------------------------

Json district_entry(int k) {
  Json entry = Json::object();
  entry["district"] = k;
  entry["population"] = 10;
  entry["discovered"] = 8;
  entry["responded"] = 8;
  entry["distance_m"] = 1000.0;
  entry["elapsed_s"] = 42.5;
  return entry;
}

Json child_doc(int k, int districts, std::int64_t seed = 77) {
  Json params = Json::object();
  params["district"] = k;
  params["districts"] = districts;
  params["scale"] = 0.01;
  params["shards"] = std::int64_t{1};
  Json results = Json::object();
  Json list = Json::array();
  list.push_back(district_entry(k));
  results["survey"] = runtime::aggregate_city_survey(list);
  results["districts"] = std::move(list);
  Json doc = Json::object();
  doc["experiment"] = "city";
  doc["seed"] = seed;
  doc["smoke"] = true;
  doc["params"] = std::move(params);
  doc["results"] = std::move(results);
  doc["failed"] = false;
  return doc;
}

TEST(CityReducer, AcceptsChildrenInAnyOrder) {
  std::vector<Json> children;
  children.push_back(child_doc(1, 2));
  children.push_back(child_doc(0, 2));
  std::string error;
  const auto doc = runtime::reduce_city_documents(children, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("params")->find("district")->as_int(), -1);
  const Json& list = *doc->find("results")->find("districts");
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list.at(0).find("district")->as_int(), 0);
  EXPECT_EQ(list.at(1).find("district")->as_int(), 1);
  EXPECT_EQ(doc->find("results")
                ->find("survey")
                ->find("discovered")
                ->as_int(),
            16);
}

TEST(CityReducer, RejectsDuplicateDistricts) {
  std::vector<Json> children{child_doc(0, 2), child_doc(0, 2)};
  std::string error;
  EXPECT_FALSE(runtime::reduce_city_documents(children, &error).has_value());
  EXPECT_NE(error.find("0..D-1"), std::string::npos);
}

TEST(CityReducer, RejectsDisagreeingSeeds) {
  std::vector<Json> children{child_doc(0, 2, 77), child_doc(1, 2, 78)};
  std::string error;
  EXPECT_FALSE(runtime::reduce_city_documents(children, &error).has_value());
  EXPECT_NE(error.find("disagree"), std::string::npos);
}

TEST(CityReducer, RejectsWrongDistrictCount) {
  // Children believing in 3 districts but only 2 documents present.
  std::vector<Json> children{child_doc(0, 3), child_doc(1, 3)};
  std::string error;
  EXPECT_FALSE(runtime::reduce_city_documents(children, &error).has_value());
}

TEST(CityReducer, RejectsPartialMetrics) {
  Json with_metrics = child_doc(0, 2);
  with_metrics["metrics"] = Json::object();
  std::vector<Json> children{std::move(with_metrics), child_doc(1, 2)};
  std::string error;
  EXPECT_FALSE(runtime::reduce_city_documents(children, &error).has_value());
  EXPECT_NE(error.find("metrics"), std::string::npos);
}

TEST(CityReducer, FailureInOneDistrictFailsTheSurvey) {
  Json failing = child_doc(1, 2);
  failing["failed"] = true;
  std::vector<Json> children{child_doc(0, 2), std::move(failing)};
  std::string error;
  const auto doc = runtime::reduce_city_documents(children, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_TRUE(doc->find("failed")->as_bool());
}

}  // namespace
}  // namespace politewifi
