// Tests for the later-added features: beacon stuffing (§5 related work),
// ARF rate adaptation, and randomized-MAC survey realism.
#include <gtest/gtest.h>

#include "core/beacon_stuffing.h"
#include "core/monitor.h"
#include "mac/rate_control.h"
#include "scenario/city.h"
#include "sim/network.h"

namespace politewifi {
namespace {

using sim::Device;
using sim::Simulation;

// --- Beacon stuffing -----------------------------------------------------------

TEST(BeaconStuffing, ChunkSerializeParseRoundTrip) {
  core::StuffedChunk c;
  c.seq = 2;
  c.total = 5;
  c.payload = {1, 2, 3, 4};
  const auto parsed = core::StuffedChunk::parse(c.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seq, 2);
  EXPECT_EQ(parsed->total, 5);
  EXPECT_EQ(parsed->payload, c.payload);
}

TEST(BeaconStuffing, ParseRejectsGarbage) {
  EXPECT_FALSE(core::StuffedChunk::parse(Bytes{}).has_value());
  EXPECT_FALSE(core::StuffedChunk::parse(Bytes{1, 2, 3, 4}).has_value());
  // seq >= total is invalid.
  EXPECT_FALSE(
      core::StuffedChunk::parse(Bytes{0x50, 0x57, 5, 5}).has_value());
}

TEST(BeaconStuffing, ShortMessageOneBeacon) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 120});
  sim::RadioConfig rc;
  Device& sender = sim.add_device(
      {.name = "billboard"}, {0x02, 0x11, 0x11, 0x11, 0x11, 0x11}, rc);
  sim::RadioConfig rx;
  rx.position = {20, 0};
  Device& listener = sim.add_device(
      {.name = "phone"}, {0x3c, 0x28, 0x6d, 1, 1, 1}, rx);

  core::MonitorHub hub(listener.station());
  core::BeaconStuffingReceiver receiver(hub);
  core::BeaconStuffer stuffer(sender);
  stuffer.broadcast("50% off espresso");
  sim.run_for(milliseconds(300));
  stuffer.stop();

  ASSERT_FALSE(receiver.messages().empty());
  EXPECT_EQ(receiver.messages().front(), "50% off espresso");
  // The listener never associated with anything.
  EXPECT_EQ(listener.station().stats().frames_transmitted, 0u);
}

TEST(BeaconStuffing, LongMessageReassembledFromChunks) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 121});
  sim::RadioConfig rc;
  Device& sender = sim.add_device(
      {.name = "billboard"}, {0x02, 0x11, 0x11, 0x11, 0x11, 0x12}, rc);
  sim::RadioConfig rx;
  rx.position = {15, 0};
  Device& listener = sim.add_device(
      {.name = "phone"}, {0x3c, 0x28, 0x6d, 1, 1, 2}, rx);

  core::MonitorHub hub(listener.station());
  core::BeaconStuffingReceiver receiver(hub);
  std::string message;
  for (int i = 0; i < 30; ++i) {
    message += "location-based advertisement segment ";
  }
  ASSERT_GT(message.size(), core::StuffedChunk::kMaxChunkPayload * 3);

  core::BeaconStuffer stuffer(sender);
  stuffer.broadcast(message);
  sim.run_for(seconds(2));
  stuffer.stop();

  ASSERT_FALSE(receiver.messages().empty());
  EXPECT_EQ(receiver.messages().front(), message);
}

TEST(BeaconStuffing, CallbackFires) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 122});
  sim::RadioConfig rc;
  Device& sender = sim.add_device(
      {.name = "tx"}, {0x02, 0x11, 0x11, 0x11, 0x11, 0x13}, rc);
  sim::RadioConfig rx;
  rx.position = {10, 0};
  Device& listener = sim.add_device(
      {.name = "rx"}, {0x3c, 0x28, 0x6d, 1, 1, 3}, rx);
  core::MonitorHub hub(listener.station());
  core::BeaconStuffingReceiver receiver(hub);
  std::string got;
  receiver.set_on_message([&got](const std::string& m) { got = m; });
  core::BeaconStuffer stuffer(sender);
  stuffer.broadcast("hi");
  sim.run_for(milliseconds(300));
  EXPECT_EQ(got, "hi");
}

// --- ARF rate control ------------------------------------------------------------

TEST(Arf, ClimbsAfterSuccessStreak) {
  mac::ArfRateController arf({.up_after = 3, .down_after = 2,
                              .initial_index = 0});
  EXPECT_EQ(arf.current(), phy::kOfdm6);
  for (int i = 0; i < 3; ++i) arf.on_success();
  EXPECT_EQ(arf.current(), phy::kOfdm9);
  for (int i = 0; i < 3; ++i) arf.on_success();
  EXPECT_EQ(arf.current(), phy::kOfdm12);
}

TEST(Arf, DropsAfterFailureStreak) {
  mac::ArfRateController arf({.up_after = 10, .down_after = 2,
                              .initial_index = 4});
  EXPECT_EQ(arf.current(), phy::kOfdm24);
  arf.on_failure();
  EXPECT_EQ(arf.current(), phy::kOfdm24);  // one failure tolerated
  arf.on_failure();
  EXPECT_EQ(arf.current(), phy::kOfdm18);
}

TEST(Arf, FailedProbeRevertsImmediately) {
  mac::ArfRateController arf({.up_after = 2, .down_after = 3,
                              .initial_index = 0});
  arf.on_success();
  arf.on_success();
  EXPECT_EQ(arf.current(), phy::kOfdm9);  // probing up
  arf.on_failure();                        // single failure right after probe
  EXPECT_EQ(arf.current(), phy::kOfdm6);
}

TEST(Arf, ClampedAtLadderEnds) {
  mac::ArfRateController arf({.up_after = 1, .down_after = 1,
                              .initial_index = 7});
  arf.on_success();
  EXPECT_EQ(arf.current(), phy::kOfdm54);  // already at the top
  mac::ArfRateController low({.up_after = 1, .down_after = 1,
                              .initial_index = 0});
  low.on_failure();
  EXPECT_EQ(low.current(), phy::kOfdm6);  // already at the bottom
}

TEST(Arf, StationClimbsOnCleanLink) {
  Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 123});
  sim::RadioConfig a_rc;
  mac::MacConfig a_mc;
  a_mc.adaptive_rate = true;
  a_mc.arf = {.up_after = 5, .down_after = 2, .initial_index = 0};
  Device& a = sim.add_device({.name = "a"}, {1, 1, 1, 1, 1, 1}, a_rc, a_mc);
  sim::RadioConfig b_rc;
  b_rc.position = {3, 0};  // clean, close link
  Device& b = sim.add_device({.name = "b"}, {2, 2, 2, 2, 2, 2}, b_rc);
  (void)b;

  for (int i = 0; i < 60; ++i) {
    a.station().send(frames::make_data_to_ds({2, 2, 2, 2, 2, 2},
                                             {1, 1, 1, 1, 1, 1},
                                             {2, 2, 2, 2, 2, 2}, Bytes(100, 1),
                                             a.station().next_sequence()),
                     phy::kOfdm6);
    sim.run_for(milliseconds(20));
  }
  // 60 clean exchanges with up_after=5 climb well up the ladder.
  EXPECT_GE(a.station().rate_controller().ladder_index(), 5);
  EXPECT_EQ(a.station().stats().tx_failures, 0u);
}

TEST(Arf, StationFallsBackOnMarginalLink) {
  sim::SimulationConfig cfg;
  cfg.seed = 124;
  cfg.medium.shadowing_sigma_db = 0.0;
  Simulation sim(cfg);
  sim::RadioConfig a_rc;
  mac::MacConfig a_mc;
  a_mc.adaptive_rate = true;
  a_mc.arf = {.up_after = 10, .down_after = 2, .initial_index = 7};
  Device& a = sim.add_device({.name = "a"}, {1, 1, 1, 1, 1, 1}, a_rc, a_mc);
  sim::RadioConfig b_rc;
  b_rc.position = {110, 0};  // 54 Mb/s cannot survive here; 6 Mb/s can
  Device& b = sim.add_device({.name = "b"}, {2, 2, 2, 2, 2, 2}, b_rc);
  (void)b;

  for (int i = 0; i < 40; ++i) {
    a.station().send(frames::make_data_to_ds({2, 2, 2, 2, 2, 2},
                                             {1, 1, 1, 1, 1, 1},
                                             {2, 2, 2, 2, 2, 2},
                                             Bytes(400, 1),
                                             a.station().next_sequence()),
                     phy::kOfdm54);
    sim.run_for(milliseconds(60));
  }
  // ARF migrated down the ladder to something that works.
  EXPECT_LE(a.station().rate_controller().ladder_index(), 3);
  EXPECT_GT(a.station().stats().tx_success, 10u);
}

// --- Randomized MACs in the survey -------------------------------------------------

TEST(City, RandomizedMacsHaveNoVendor) {
  scenario::CityConfig cfg;
  cfg.scale = 0.02;
  cfg.randomized_mac_fraction = 0.5;
  cfg.seed = 9;
  const scenario::CityPlan plan(scenario::CityPlan::grid_route(1, 300), cfg);

  std::size_t randomized = 0, clients = 0;
  for (const auto& d : plan.devices()) {
    if (d.is_ap) {
      EXPECT_FALSE(d.mac.locally_administered());
      continue;
    }
    ++clients;
    if (d.mac.locally_administered()) {
      ++randomized;
      EXPECT_FALSE(scenario::OuiDatabase::instance().vendor_of(d.mac));
    }
  }
  // Roughly half the clients randomized.
  EXPECT_GT(randomized, clients / 4);
  EXPECT_LT(randomized, 3 * clients / 4);
}

}  // namespace
}  // namespace politewifi
