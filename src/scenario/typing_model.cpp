#include "scenario/typing_model.h"

#include <algorithm>
#include <cctype>

namespace politewifi::scenario {

int key_row(char key) {
  const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(key)));
  if (c == ' ') return 0;
  static constexpr const char* kRows[] = {
      "zxcvbnm,./",   // row 1
      "asdfghjkl;'",  // row 2 (home)
      "qwertyuiop",   // row 3
      "1234567890",   // row 4 (numbers)
  };
  for (int r = 0; r < 4; ++r) {
    for (const char* p = kRows[r]; *p != '\0'; ++p) {
      if (*p == c) return r + 1;
    }
  }
  return 2;  // unknown characters behave like home row
}

double keystroke_depth_m(char key) {
  // Space bar involves the thumb + wrist (largest motion); reaching away
  // from the home row adds travel.
  const int row = key_row(key);
  switch (row) {
    case 0: return 0.038;  // space
    case 1: return 0.024;  // bottom row
    case 2: return 0.020;  // home row
    case 3: return 0.028;  // top row
    default: return 0.034; // number row
  }
}

Duration keystroke_width(char key) {
  // Farther reaches take a little longer.
  const int row = key_row(key);
  const double ms = 40.0 + 8.0 * std::abs(row - 2);
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double, std::milli>(ms));
}

std::vector<Keystroke> TypingModel::generate(const std::string& text,
                                             const Config& config) {
  // Mean inter-key interval from WPM (the usual 5 chars/word convention).
  const double keys_per_second = config.words_per_minute * 5.0 / 60.0;
  const double mean_gap_s = 1.0 / std::max(keys_per_second, 0.1);

  Rng rng(config.seed);
  std::vector<Keystroke> strokes;
  strokes.reserve(text.size());
  double t = mean_gap_s;  // settle-in before the first key
  for (const char key : text) {
    strokes.push_back(Keystroke{from_seconds(t), key});
    double gap = rng.gaussian(mean_gap_s, mean_gap_s * config.timing_jitter);
    gap = std::clamp(gap, 0.3 * mean_gap_s, 3.0 * mean_gap_s);
    // Word boundaries get a thinking pause.
    if (key == ' ') gap *= 1.5;
    t += gap;
  }
  return strokes;
}

}  // namespace politewifi::scenario
