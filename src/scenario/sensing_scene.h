// Wires a BodyMotionModel into the medium's per-link CSI so the CSI the
// attacker harvests from the victim's ACKs reflects the scripted human
// activity — the Figure 5 scene.
#pragma once

#include "scenario/body_motion.h"
#include "sim/medium.h"
#include "sim/radio.h"

namespace politewifi::scenario {

struct SensingSceneConfig {
  /// CSI estimation noise per subcarrier (std of the complex components).
  double csi_noise = 0.01;
  int static_reflections = 4;
  std::uint64_t seed = 1234;
};

/// Installs a CSI provider on `medium` that models the victim->attacker
/// link as static multipath plus the model's dynamic body paths. Script
/// time 0 is `script_start`. Other links fall back to the medium default.
///
/// The returned model pointer must outlive the medium's provider; the
/// caller keeps ownership of `model`.
void install_body_csi(sim::Medium& medium, const sim::Radio& victim,
                      const sim::Radio& attacker,
                      const BodyMotionModel* model, TimePoint script_start,
                      SensingSceneConfig config = SensingSceneConfig{});

/// Multi-victim variant (§4.3: an IoT hub sensing several unmodified
/// neighbours): each victim link gets its own motion model.
struct SensedLink {
  const sim::Radio* victim = nullptr;
  const BodyMotionModel* model = nullptr;
};
void install_body_csi_multi(sim::Medium& medium,
                            const std::vector<SensedLink>& links,
                            const sim::Radio& attacker,
                            TimePoint script_start,
                            SensingSceneConfig config = SensingSceneConfig{});

}  // namespace politewifi::scenario
