#include "scenario/oui_db.h"

#include <algorithm>
#include <cstdio>

namespace politewifi::scenario {

namespace {

/// Spreads `total` devices across `n` synthetic vendors with a 1/rank
/// (Zipf) profile, exactly preserving the total.
std::vector<VendorCount> spread_others(const char* prefix, int n, int total) {
  std::vector<double> weights(n);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    weights[i] = 1.0 / double(i + 1);
    sum += weights[i];
  }
  std::vector<VendorCount> out;
  out.reserve(n);
  int assigned = 0;
  for (int i = 0; i < n; ++i) {
    // Floor allocation with a minimum of 1 device per vendor (a vendor
    // with zero devices wouldn't have been observed at all).
    int c = std::max(1, int(weights[i] / sum * total));
    out.push_back({std::string(prefix) + char('A' + i / 26) +
                       char('A' + i % 26),
                   c});
    assigned += c;
  }
  // Largest-first correction to hit the exact total.
  int i = 0;
  while (assigned > total) {
    if (out[i].count > 1) {
      --out[i].count;
      --assigned;
    }
    i = (i + 1) % n;
  }
  i = 0;
  while (assigned < total) {
    ++out[i].count;
    ++assigned;
    i = (i + 1) % n;
  }
  return out;
}

}  // namespace

std::vector<VendorCount> table2_named_client_vendors() {
  return {{"Apple", 143},    {"Google", 102},   {"Intel", 66},
          {"Hitron", 65},    {"HP", 63},        {"Samsung", 56},
          {"Espressif", 47}, {"Hon Hai", 46},   {"Amazon", 41},
          {"Sagemcom", 38},  {"Liteon", 33},    {"AzureWave", 30},
          {"Sonos", 30},     {"Nest Labs", 27}, {"Murata", 24},
          {"Belkin", 20},    {"TP-LINK", 20},   {"Cisco", 16},
          {"ecobee", 13},    {"Microsoft", 13}};
}

std::vector<VendorCount> table2_named_ap_vendors() {
  return {{"Hitron", 723},    {"Sagemcom", 601},   {"Technicolor", 410},
          {"eero", 195},      {"Extreme N.", 188}, {"Cisco", 156},
          {"HP", 104},        {"TP-LINK", 101},    {"Google", 80},
          {"D-Link", 75},     {"NETGEAR", 69},     {"ASUSTek", 51},
          {"Aruba", 46},      {"SmartRG", 44},     {"Ubiquiti N.", 35},
          {"Zebra", 35},      {"Pegatron", 28},    {"Belkin", 25},
          {"Mitsumi", 25},    {"Apple", 19}};
}

// Long-tail construction (see header): 80 client-only + 47 shared + 27
// AP-only synthetic vendors make the distinct-vendor counts match the
// paper (147 client vendors, 94 AP vendors, 186 total).
std::vector<VendorCount> table2_full_client_census() {
  auto census = table2_named_client_vendors();
  // 127 synthetic client vendors carry the 630 "Others": the 47 shared
  // ones ("TailS-*") plus 80 client-only ("TailC-*").
  auto shared = spread_others("TailS-", 47, 235);
  auto only = spread_others("TailC-", 80, 395);
  census.insert(census.end(), shared.begin(), shared.end());
  census.insert(census.end(), only.begin(), only.end());
  return census;
}

std::vector<VendorCount> table2_full_ap_census() {
  auto census = table2_named_ap_vendors();
  // 74 synthetic AP vendors carry the "Others" devices: the same 47
  // shared vendors plus 27 AP-only ("TailA-*"). The paper's printed
  // top-20 sums to 3,010, so Others holds 795 devices for the stated
  // total of 3,805.
  auto shared = spread_others("TailS-", 47, 500);
  auto only = spread_others("TailA-", 27, 295);
  census.insert(census.end(), shared.begin(), shared.end());
  census.insert(census.end(), only.begin(), only.end());
  return census;
}

const OuiDatabase& OuiDatabase::instance() {
  static OuiDatabase db;
  return db;
}

OuiDatabase::OuiDatabase() {
  // A few well-known real OUIs for the headline vendors; the long tail
  // gets deterministic synthetic OUIs.
  add("Apple", 0xF01898);
  add("Google", 0xF4F5D8);
  add("Intel", 0x001B77);
  add("Samsung", 0x8C7712);
  add("Espressif", 0x240AC4);
  add("Microsoft", 0x0050F2);
  add("Cisco", 0x00000C);
  add("TP-LINK", 0x14CC20);
  add("NETGEAR", 0x20E52A);
  add("Realtek", 0x00E04C);

  auto oui_taken = [this](std::uint32_t oui) {
    for (const auto& [existing, name] : by_oui_) {
      if (existing == oui) return true;
    }
    return false;
  };
  auto add_all = [this, &oui_taken](const std::vector<VendorCount>& census) {
    for (const auto& vc : census) {
      if (oui_of(vc.vendor)) continue;
      std::uint32_t oui = synthesize_oui(vc.vendor);
      while (oui_taken(oui)) {
        oui = (oui + 0x000101) & 0x00FFFFFF & ~0x030000u;  // sidestep collision
      }
      add(vc.vendor, oui);
    }
  };
  add_all(table2_full_client_census());
  add_all(table2_full_ap_census());

  std::sort(by_oui_.begin(), by_oui_.end());
  std::sort(by_name_.begin(), by_name_.end());
}

void OuiDatabase::add(const std::string& vendor, std::uint32_t oui) {
  vendors_.push_back(vendor);
  by_oui_.emplace_back(oui, vendor);
  by_name_.emplace_back(vendor, oui);
}

std::uint32_t OuiDatabase::synthesize_oui(const std::string& vendor) {
  // FNV-1a over the name, then clear the group/local bits of the first
  // octet so the OUI is a plausible globally-administered prefix.
  std::uint32_t h = 2166136261u;
  for (const char c : vendor) {
    h = (h ^ static_cast<std::uint8_t>(c)) * 16777619u;
  }
  std::uint32_t oui = h & 0x00FFFFFF;
  oui &= ~0x030000u;  // clear I/G and U/L bits of the leading octet
  return oui;
}

std::optional<std::string> OuiDatabase::vendor_of(const MacAddress& mac) const {
  if (mac.locally_administered() || mac.is_group()) return std::nullopt;
  const std::uint32_t oui = mac.oui();
  const auto it = std::lower_bound(
      by_oui_.begin(), by_oui_.end(), oui,
      [](const auto& entry, std::uint32_t v) { return entry.first < v; });
  if (it == by_oui_.end() || it->first != oui) return std::nullopt;
  return it->second;
}

std::optional<std::uint32_t> OuiDatabase::oui_of(
    const std::string& vendor) const {
  // During construction by_name_ is unsorted; linear scan is fine there
  // and afterwards we binary-search.
  if (!std::is_sorted(by_name_.begin(), by_name_.end())) {
    for (const auto& [name, oui] : by_name_) {
      if (name == vendor) return oui;
    }
    return std::nullopt;
  }
  const auto it = std::lower_bound(
      by_name_.begin(), by_name_.end(), vendor,
      [](const auto& entry, const std::string& v) { return entry.first < v; });
  if (it == by_name_.end() || it->first != vendor) return std::nullopt;
  return it->second;
}

MacAddress OuiDatabase::make_address(const std::string& vendor,
                                     Rng& rng) const {
  const auto oui = oui_of(vendor);
  const std::uint32_t prefix = oui.value_or(synthesize_oui(vendor));
  return MacAddress{static_cast<std::uint8_t>(prefix >> 16),
                    static_cast<std::uint8_t>(prefix >> 8),
                    static_cast<std::uint8_t>(prefix),
                    static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                    static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                    static_cast<std::uint8_t>(rng.uniform_int(0, 255))};
}

}  // namespace politewifi::scenario
