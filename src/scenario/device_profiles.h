// Chipset/device profiles.
//
// Table 1 of the paper tests Polite WiFi across radios from five vendors
// plus the attacker's RTL8812AU and the ESP8266/ESP32 used in §4. The
// profiles parameterize everything the standard lets a chipset vary —
// band, power draw, ACK turnaround jitter, deauth policy — precisely to
// demonstrate that the ACK behaviour is invariant across all of them.
#pragma once

#include <string>
#include <vector>

#include "mac/ack_policy.h"
#include "phy/channel.h"
#include "sim/energy_model.h"

namespace politewifi::scenario {

struct ChipsetProfile {
  std::string device_name;   // "MSI GE62 laptop"
  std::string wifi_module;   // "Intel AC 3160"
  std::string standard;      // "11ac"
  std::string vendor;        // OUI vendor for generated MACs
  phy::Band band = phy::Band::k5GHz;
  bool is_access_point = false;
  /// AP software quirk shown in Figure 3.
  bool deauth_on_unknown = false;
  sim::PowerProfile power = sim::PowerProfile::mains_powered();
  /// ACK turnaround jitter (ns): real silicon is tight but not identical.
  double sifs_jitter_ns = 100.0;
};

/// The paper's Table 1 bench devices, in print order.
std::vector<ChipsetProfile> table1_devices();

/// The §4.2 victim: Espressif ESP8266 low-power IoT module.
ChipsetProfile esp8266();

/// The §4.1 attacker rig: ESP32 CSI-capable injector (a few dollars).
ChipsetProfile esp32_attacker();

/// The RTL8812AU USB dongle used for injection in §2 and §3 ($12).
ChipsetProfile rtl8812au();

/// §4.2's battery-life subjects.
struct CameraSpec {
  std::string name;
  double battery_mwh;
  std::string advertised_life;
};
CameraSpec logitech_circle2();  // 2400 mWh, "up to 3 months"
CameraSpec blink_xt2();         // 6000 mWh, "up to 2 years"

}  // namespace politewifi::scenario
