// OUI (vendor prefix) database and the paper's empirical vendor census.
//
// Table 2 of the paper reports the top-20 vendors among 1,523 client
// devices (147 vendors) and 3,805 APs (94 vendors), 186 distinct vendors
// in all. We embed those exact counts, expand each "Others" bucket into
// synthetic long-tail vendors with a Zipf-ish spread (so the distinct-
// vendor totals match the paper), and give every vendor an OUI so that
// generated MAC addresses survey back into the same table.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/mac_address.h"
#include "common/rng.h"

namespace politewifi::scenario {

struct VendorCount {
  std::string vendor;
  int count = 0;
};

/// The paper's Table 2, left column, top-20 *named* client vendors
/// (the 630-device "Others" bucket is expanded separately).
std::vector<VendorCount> table2_named_client_vendors();

/// The paper's Table 2, right column, top-20 *named* AP vendors.
std::vector<VendorCount> table2_named_ap_vendors();

/// Full client vendor census: named vendors + 127 synthetic long-tail
/// vendors carrying the 630 "Others" devices. Sums to 1,523 over 147
/// vendors.
std::vector<VendorCount> table2_full_client_census();

/// Full AP census: named + 74 synthetic vendors carrying 789 "Others"
/// devices. Sums to 3,805 over 94 vendors.
std::vector<VendorCount> table2_full_ap_census();

class OuiDatabase {
 public:
  /// The process-wide database covering every vendor in the census.
  static const OuiDatabase& instance();

  /// Vendor for a MAC's OUI; nullopt for unknown or locally-administered.
  std::optional<std::string> vendor_of(const MacAddress& mac) const;

  std::optional<std::uint32_t> oui_of(const std::string& vendor) const;

  /// A fresh MAC with the vendor's OUI and random NIC-specific octets.
  MacAddress make_address(const std::string& vendor, Rng& rng) const;

  std::size_t vendor_count() const { return vendors_.size(); }
  const std::vector<std::string>& vendors() const { return vendors_; }

 private:
  OuiDatabase();
  void add(const std::string& vendor, std::uint32_t oui);
  static std::uint32_t synthesize_oui(const std::string& vendor);

  std::vector<std::string> vendors_;
  std::vector<std::pair<std::uint32_t, std::string>> by_oui_;   // sorted
  std::vector<std::pair<std::string, std::uint32_t>> by_name_;  // sorted
};

}  // namespace politewifi::scenario
