#include "scenario/body_motion.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace politewifi::scenario {

namespace {

constexpr double kMetersPerNs = 0.299792458;

double smoothstep(double x) {
  x = std::clamp(x, 0.0, 1.0);
  return x * x * (3.0 - 2.0 * x);
}

}  // namespace

const char* activity_name(Activity a) {
  switch (a) {
    case Activity::kAbsent: return "absent";
    case Activity::kStill: return "still";
    case Activity::kPickup: return "pickup";
    case Activity::kHold: return "hold";
    case Activity::kTyping: return "typing";
    case Activity::kWalking: return "walking";
    case Activity::kBreathing: return "breathing";
    case Activity::kGesturePush: return "gesture-push";
    case Activity::kGestureWave: return "gesture-wave";
  }
  return "?";
}

BodyMotionModel::BodyMotionModel(Config config) : config_(config) {
  Rng rng(config.seed);
  phase1_ = rng.uniform(0.0, 2.0 * M_PI);
  phase2_ = rng.uniform(0.0, 2.0 * M_PI);
  phase3_ = rng.uniform(0.0, 2.0 * M_PI);
}

void BodyMotionModel::add_phase(Activity activity, Duration duration) {
  phases_.push_back(Phase{activity, total_, total_ + duration});
  total_ += duration;
}

Activity BodyMotionModel::activity_at(Duration t) const {
  for (const auto& p : phases_) {
    if (t >= p.start && t < p.end) return p.activity;
  }
  return Activity::kAbsent;
}

BodyMotionModel::Deflection BodyMotionModel::deflection(
    Activity a, double t, double len, Duration script_t) const {
  Deflection d;
  switch (a) {
    case Activity::kAbsent:
      d.present = false;
      return d;

    case Activity::kStill:
      // Motionless person: static extra scatterer, micro-sway < 1 mm.
      d.hand_m = 0.0005 * std::sin(2.0 * M_PI * 0.3 * t + phase1_);
      d.body_m = 0.0;
      return d;

    case Activity::kPickup: {
      // Approach + reach + lift: the hand path sweeps ~0.9 m over the
      // phase with a brisk reach in the middle.
      const double progress = smoothstep(t / std::max(len, 0.1));
      d.hand_m = 0.9 * progress +
                 0.03 * std::sin(2.0 * M_PI * 2.4 * t + phase2_);
      d.body_m = 0.45 * progress;
      return d;
    }

    case Activity::kHold:
      // Physiological tremor + slow drift: millimetres.
      d.hand_m = 0.004 * std::sin(2.0 * M_PI * 1.7 * t + phase1_) +
                 0.002 * std::sin(2.0 * M_PI * 3.1 * t + phase2_) +
                 0.003 * std::sin(2.0 * M_PI * 0.4 * t + phase3_);
      d.body_m = 0.002 * std::sin(2.0 * M_PI * 0.3 * t + phase3_);
      return d;

    case Activity::kTyping: {
      // Hold-level tremor plus the keystroke bumps.
      d = deflection(Activity::kHold, t, len, script_t);
      const double ts = to_seconds(script_t);
      for (const auto& k : keystrokes_) {
        const double tk = to_seconds(k.at);
        const double sigma = to_seconds(keystroke_width(k.key));
        const double dt = ts - tk;
        if (std::abs(dt) > 4.0 * sigma) continue;
        d.hand_m += keystroke_depth_m(k.key) *
                    std::exp(-dt * dt / (2.0 * sigma * sigma));
      }
      return d;
    }

    case Activity::kWalking:
      // Metre-scale periodic sweep (crossing the scene at ~1 m/s) plus
      // gait bounce.
      d.hand_m = 1.2 * std::sin(2.0 * M_PI * 0.45 * t + phase1_) +
                 0.05 * std::sin(2.0 * M_PI * 1.9 * t + phase2_);
      d.body_m = 1.2 * std::sin(2.0 * M_PI * 0.45 * t + phase1_ + 0.4);
      return d;

    case Activity::kBreathing: {
      const double f = config_.breathing_bpm / 60.0;
      d.hand_m = 0.0;
      d.body_m = 0.012 * std::sin(2.0 * M_PI * f * t + phase1_);
      return d;
    }

    case Activity::kGesturePush: {
      // One smooth out-and-back hand motion spanning the phase: a single
      // ~0.35 m excursion.
      const double progress = std::clamp(t / std::max(len, 0.1), 0.0, 1.0);
      d.hand_m = 0.35 * std::sin(M_PI * progress);
      d.body_m = 0.02 * std::sin(M_PI * progress);
      return d;
    }

    case Activity::kGestureWave: {
      // Side-to-side waving: ~0.2 m strokes at ~2 Hz with soft onset and
      // release.
      const double envelope =
          std::sin(M_PI * std::clamp(t / std::max(len, 0.1), 0.0, 1.0));
      d.hand_m = 0.20 * envelope * std::sin(2.0 * M_PI * 2.0 * t + phase2_);
      d.body_m = 0.0;
      return d;
    }
  }
  d.present = false;
  return d;
}

phy::PathSet BodyMotionModel::paths_at(Duration t) const {
  const Phase* phase = nullptr;
  for (const auto& p : phases_) {
    if (t >= p.start && t < p.end) {
      phase = &p;
      break;
    }
  }
  if (phase == nullptr) return {};

  const double local = to_seconds(t - phase->start);
  const double len = to_seconds(phase->end - phase->start);
  const Deflection d = deflection(phase->activity, local, len, t);
  if (!d.present) return {};

  phy::PathSet paths;
  paths.push_back(phy::PropagationPath{
      .delay_ns = config_.scatterer_delay_ns + d.hand_m / kMetersPerNs,
      .amplitude = config_.hand_amplitude,
      .phase_rad = M_PI,  // reflection inversion
  });
  paths.push_back(phy::PropagationPath{
      .delay_ns = config_.scatterer_delay_ns + 6.0 + d.body_m / kMetersPerNs,
      .amplitude = config_.body_amplitude,
      .phase_rad = M_PI,
  });
  return paths;
}

}  // namespace politewifi::scenario
