#include "scenario/city.h"

#include <algorithm>
#include <cmath>

namespace politewifi::scenario {

namespace {

int scaled_count(int count, double scale) {
  if (scale >= 1.0) return count;
  return std::max(1, int(std::lround(count * scale)));
}

}  // namespace

std::vector<Position> CityPlan::grid_route(int blocks, double block_m) {
  // Boustrophedon sweep over a blocks x blocks grid.
  std::vector<Position> route;
  for (int row = 0; row <= blocks; ++row) {
    const double y = row * block_m;
    if (row % 2 == 0) {
      route.push_back({0.0, y});
      route.push_back({blocks * block_m, y});
    } else {
      route.push_back({blocks * block_m, y});
      route.push_back({0.0, y});
    }
  }
  return route;
}

CityPlan::CityPlan(std::vector<Position> route, CityConfig config)
    : route_(std::move(route)) {
  for (std::size_t i = 1; i < route_.size(); ++i) {
    route_length_ += distance(route_[i - 1], route_[i]);
  }

  Rng rng(config.seed);
  const auto& db = OuiDatabase::instance();

  // APs first (clients attach to them).
  for (const auto& vc : table2_full_ap_census()) {
    const int n = scaled_count(vc.count, config.scale);
    for (int i = 0; i < n; ++i) {
      CityDeviceSpec spec;
      spec.vendor = vc.vendor;
      spec.mac = db.make_address(vc.vendor, rng);
      spec.is_ap = true;
      spec.channel = config.channels[static_cast<std::size_t>(
          rng.uniform_int(0, std::int64_t(config.channels.size()) - 1))];
      spec.position = point_along_route(rng.uniform(0.0, route_length_),
                                        rng.uniform(-config.max_offset_m,
                                                    config.max_offset_m),
                                        rng);
      devices_.push_back(std::move(spec));
    }
  }
  ap_count_ = devices_.size();

  for (const auto& vc : table2_full_client_census()) {
    const int n = scaled_count(vc.count, config.scale);
    for (int i = 0; i < n; ++i) {
      CityDeviceSpec spec;
      spec.vendor = vc.vendor;
      if (rng.bernoulli(config.randomized_mac_fraction)) {
        // Randomized MAC: locally-administered bit set, unicast.
        spec.mac = MacAddress{
            static_cast<std::uint8_t>(
                (std::uint8_t(rng.uniform_int(0, 255)) | 0x02) & ~0x01),
            static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
            static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
            static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
            static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
            static_cast<std::uint8_t>(rng.uniform_int(0, 255))};
      } else {
        spec.mac = db.make_address(vc.vendor, rng);
      }
      spec.is_ap = false;
      spec.position = point_along_route(rng.uniform(0.0, route_length_),
                                        rng.uniform(-config.max_offset_m,
                                                    config.max_offset_m),
                                        rng);
      // Attach to the nearest AP in range, if any; operate on its channel.
      double best = config.client_attach_range_m;
      spec.channel = config.channels[static_cast<std::size_t>(
          rng.uniform_int(0, std::int64_t(config.channels.size()) - 1))];
      for (std::size_t a = 0; a < ap_count_; ++a) {
        const double d = distance(devices_[a].position, spec.position);
        if (d < best) {
          best = d;
          spec.home_ap = devices_[a].mac;
          spec.channel = devices_[a].channel;
        }
      }
      devices_.push_back(std::move(spec));
    }
  }
}

Position CityPlan::point_along_route(double s, double lateral,
                                     Rng& rng) const {
  (void)rng;
  double remaining = std::clamp(s, 0.0, route_length_);
  for (std::size_t i = 1; i < route_.size(); ++i) {
    const double seg = distance(route_[i - 1], route_[i]);
    if (seg <= 0.0) continue;
    if (remaining <= seg) {
      const double dx = (route_[i].x - route_[i - 1].x) / seg;
      const double dy = (route_[i].y - route_[i - 1].y) / seg;
      // Perpendicular offset.
      return Position{route_[i - 1].x + dx * remaining - dy * lateral,
                      route_[i - 1].y + dy * remaining + dx * lateral};
    }
    remaining -= seg;
  }
  return route_.empty() ? Position{} : route_.back();
}

}  // namespace politewifi::scenario
