// City population generator for the §3 wardriving survey.
//
// Lays out APs and client devices along a drive route with the exact
// vendor census of Table 2. The plan is pure data; core::WardriveCampaign
// instantiates simulator devices from it and manages which are "live"
// (within radio range of the vehicle) as the drive progresses.
#pragma once

#include <vector>

#include "common/mac_address.h"
#include "common/rng.h"
#include "common/units.h"
#include "scenario/oui_db.h"

namespace politewifi::scenario {

struct CityDeviceSpec {
  MacAddress mac;
  std::string vendor;
  bool is_ap = false;
  Position position{};
  /// For clients: the AP they exchange traffic with (zero when the client
  /// is idle-roaming, e.g. a phone probing).
  MacAddress home_ap{};
  /// Operating channel (clients follow their home AP).
  int channel = 6;
};

struct CityConfig {
  /// Population scale factor: 1.0 generates the paper's full census
  /// (1,523 clients + 3,805 APs); smaller factors subsample each vendor
  /// proportionally (minimum 1 device per vendor) for quick runs.
  double scale = 1.0;
  /// Lateral spread of devices around the route (houses along streets).
  double max_offset_m = 100.0;
  /// Clients attach to the nearest AP within this range.
  double client_attach_range_m = 60.0;
  /// Channels APs are deployed on. A single-channel city ({6}) matches a
  /// fixed-channel survey rig; {1, 6, 11} is the realistic 2.4 GHz mix
  /// and requires a hopping rig (WardriveConfig::hop_channels).
  std::vector<int> channels{6};
  /// Fraction of client devices using randomized (locally-administered)
  /// MAC addresses, as modern phones do while unassociated. These have
  /// no resolvable OUI and surface as vendor-unknown in the survey.
  double randomized_mac_fraction = 0.0;
  std::uint64_t seed = 2020;
};

class CityPlan {
 public:
  /// `route` is the survey vehicle's polyline. Devices are scattered
  /// uniformly along its length with lateral offsets.
  CityPlan(std::vector<Position> route, CityConfig config);

  const std::vector<CityDeviceSpec>& devices() const { return devices_; }
  const std::vector<Position>& route() const { return route_; }
  double route_length_m() const { return route_length_; }

  std::size_t ap_count() const { return ap_count_; }
  std::size_t client_count() const { return devices_.size() - ap_count_; }

  /// A rectangular grid route of `blocks` x `blocks` city blocks of
  /// `block_m` metres (boustrophedon sweep) — a plausible 1-hour drive.
  static std::vector<Position> grid_route(int blocks, double block_m);

 private:
  Position point_along_route(double s, double lateral, Rng& rng) const;

  std::vector<Position> route_;
  double route_length_ = 0.0;
  std::vector<CityDeviceSpec> devices_;
  std::size_t ap_count_ = 0;
};

}  // namespace politewifi::scenario
