// Keystroke workload generator.
//
// WindTalker-class attacks (the paper's §4.1 example) work because each
// keystroke moves the hand/fingers along a key-specific trajectory,
// modulating nearby multipath. We model a keystroke as a transient bump
// in the dynamic scatterer's excess path length whose depth depends on
// the keyboard row (reaching to the number row moves more tissue than a
// home-row tap). That gives the sensing pipeline real, recoverable
// structure without overclaiming single-key resolution.
#pragma once

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"

namespace politewifi::scenario {

struct Keystroke {
  Duration at{};   // time of peak finger deflection (script-relative)
  char key = ' ';

  friend bool operator==(const Keystroke&, const Keystroke&) = default;
};

/// Keyboard row of a character, 0 = space row .. 4 = number row.
int key_row(char key);

/// Peak excess-path deflection (meters) of a keystroke: row-dependent,
/// ~2-3.8 cm — fractions of a wavelength, i.e. clearly visible in CSI.
double keystroke_depth_m(char key);

/// Duration of the finger's travel (bump width, 1 sigma).
Duration keystroke_width(char key);

class TypingModel {
 public:
  struct Config {
    double words_per_minute = 35.0;
    double timing_jitter = 0.25;  // relative sigma on inter-key gaps
    std::uint64_t seed = 7;
  };

  /// Expands `text` into timed keystrokes starting at t = 0.
  static std::vector<Keystroke> generate(const std::string& text,
                                         const Config& config);
};

}  // namespace politewifi::scenario
