#include "scenario/sensing_scene.h"

#include <map>
#include <memory>

namespace politewifi::scenario {

void install_body_csi(sim::Medium& medium, const sim::Radio& victim,
                      const sim::Radio& attacker,
                      const BodyMotionModel* model, TimePoint script_start,
                      SensingSceneConfig config) {
  // Static geometry of the link, fixed at install time (both devices are
  // stationary in the sensing experiments; the *person* moves).
  Rng setup_rng(config.seed);
  const double d = distance(victim.position(), attacker.position());
  auto statics = std::make_shared<phy::PathSet>(
      phy::make_static_paths(d, config.static_reflections, setup_rng));
  auto noise_rng = std::make_shared<Rng>(config.seed ^ 0xC51);

  const sim::Radio* victim_ptr = &victim;
  const sim::Radio* attacker_ptr = &attacker;
  const double noise = config.csi_noise;

  medium.set_csi_provider(
      [=](const sim::Radio& tx, const sim::Radio& rx,
          TimePoint now) -> std::optional<phy::CsiSnapshot> {
        if (&tx != victim_ptr || &rx != attacker_ptr) return std::nullopt;
        const phy::PathSet dynamic = model->paths_at(now - script_start);
        return phy::evaluate_csi(tx.frequency_hz(), *statics, dynamic, noise,
                                 *noise_rng, now);
      });
}

void install_body_csi_multi(sim::Medium& medium,
                            const std::vector<SensedLink>& links,
                            const sim::Radio& attacker,
                            TimePoint script_start,
                            SensingSceneConfig config) {
  struct LinkState {
    const BodyMotionModel* model;
    phy::PathSet statics;
  };
  auto states = std::make_shared<std::map<const sim::Radio*, LinkState>>();
  Rng setup_rng(config.seed);
  for (const auto& link : links) {
    const double d = distance(link.victim->position(), attacker.position());
    (*states)[link.victim] = LinkState{
        link.model,
        phy::make_static_paths(d, config.static_reflections, setup_rng)};
  }
  auto noise_rng = std::make_shared<Rng>(config.seed ^ 0xC52);
  const sim::Radio* attacker_ptr = &attacker;
  const double noise = config.csi_noise;

  medium.set_csi_provider(
      [=](const sim::Radio& tx, const sim::Radio& rx,
          TimePoint now) -> std::optional<phy::CsiSnapshot> {
        if (&rx != attacker_ptr) return std::nullopt;
        const auto it = states->find(&tx);
        if (it == states->end()) return std::nullopt;
        const phy::PathSet dynamic =
            it->second.model->paths_at(now - script_start);
        return phy::evaluate_csi(tx.frequency_hz(), it->second.statics,
                                 dynamic, noise, *noise_rng, now);
      });
}

}  // namespace politewifi::scenario
