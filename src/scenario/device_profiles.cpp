#include "scenario/device_profiles.h"

namespace politewifi::scenario {

std::vector<ChipsetProfile> table1_devices() {
  // Power numbers are representative of each class; the experiment cares
  // that ACK behaviour is invariant, not about their exact draw.
  const sim::PowerProfile laptop{.off_mw = 0,
                                 .sleep_mw = 30,
                                 .idle_mw = 900,
                                 .rx_mw = 1100,
                                 .tx_mw = 2000,
                                 .tx_ramp = microseconds(80)};
  const sim::PowerProfile phone{.off_mw = 0,
                                .sleep_mw = 12,
                                .idle_mw = 320,
                                .rx_mw = 400,
                                .tx_mw = 900,
                                .tx_ramp = microseconds(150)};
  const sim::PowerProfile iot{.off_mw = 0,
                              .sleep_mw = 10,
                              .idle_mw = 230,
                              .rx_mw = 230,
                              .tx_mw = 560,
                              .tx_ramp = microseconds(230)};

  return {
      {.device_name = "MSI GE62 laptop",
       .wifi_module = "Intel AC 3160",
       .standard = "11ac",
       .vendor = "Intel",
       .band = phy::Band::k5GHz,
       .power = laptop,
       .sifs_jitter_ns = 80.0},
      {.device_name = "Ecobee3 thermostat",
       .wifi_module = "Atheros",
       .standard = "11n",
       .vendor = "ecobee",
       .band = phy::Band::k2_4GHz,
       .power = iot,
       .sifs_jitter_ns = 200.0},
      {.device_name = "Surface Pro 2017",
       .wifi_module = "Marvel 88W8897",
       .standard = "11ac",
       .vendor = "Microsoft",
       .band = phy::Band::k5GHz,
       .power = laptop,
       .sifs_jitter_ns = 90.0},
      {.device_name = "Samsung Galaxy S8",
       .wifi_module = "Murata KM5D18098",
       .standard = "11ac",
       .vendor = "Murata",
       .band = phy::Band::k5GHz,
       .power = phone,
       .sifs_jitter_ns = 120.0},
      {.device_name = "Google Wifi AP",
       .wifi_module = "Qualcomm IPQ 4019",
       .standard = "11ac",
       .vendor = "Google",
       .band = phy::Band::k5GHz,
       .is_access_point = true,
       .deauth_on_unknown = true,  // the Figure 3 subject
       .power = sim::PowerProfile::mains_powered(),
       .sifs_jitter_ns = 60.0},
  };
}

ChipsetProfile esp8266() {
  return {.device_name = "ESP8266 module",
          .wifi_module = "Espressif ESP8266EX",
          .standard = "11n",
          .vendor = "Espressif",
          .band = phy::Band::k2_4GHz,
          .power = sim::PowerProfile::esp8266(),
          .sifs_jitter_ns = 250.0};
}

ChipsetProfile esp32_attacker() {
  return {.device_name = "ESP32 attacker",
          .wifi_module = "Espressif ESP32",
          .standard = "11n",
          .vendor = "Espressif",
          .band = phy::Band::k2_4GHz,
          .power = sim::PowerProfile::esp8266(),
          .sifs_jitter_ns = 250.0};
}

ChipsetProfile rtl8812au() {
  return {.device_name = "RTL8812AU dongle",
          .wifi_module = "Realtek RTL8812AU",
          .standard = "11ac",
          .vendor = "Realtek",
          .band = phy::Band::k2_4GHz,  // injection runs on 2.4 in the paper
          .power = sim::PowerProfile::mains_powered(),
          .sifs_jitter_ns = 100.0};
}

CameraSpec logitech_circle2() {
  return {.name = "Logitech Circle 2",
          .battery_mwh = 2400.0,
          .advertised_life = "up to 3 months"};
}

CameraSpec blink_xt2() {
  return {.name = "Amazon Blink XT2",
          .battery_mwh = 6000.0,
          .advertised_life = "up to 2 years"};
}

}  // namespace politewifi::scenario
