// Human-activity models that drive the dynamic multipath.
//
// Each activity modulates the excess path length of one or two
// body-scattered propagation paths. Because CSI phase rotates a full turn
// per wavelength of path change (12.5 cm @ 2.4 GHz, 5.8 cm @ 5 GHz):
//   - stillness        -> flat amplitude (Figure 5 "on the ground")
//   - picking up       -> ~1 m sweep = many turns = wild swings
//   - holding          -> mm-scale tremor = gentle wander
//   - typing           -> cm-scale keystroke bumps = distinct bursts
//   - walking          -> periodic metre-scale sweeps (the §4.3 events)
//   - breathing        -> ~1 cm periodic chest motion at 0.2-0.3 Hz
// This is exactly the physics the paper's Figure 5 rides on.
#pragma once

#include <string>
#include <vector>

#include "common/clock.h"
#include "phy/csi.h"
#include "scenario/typing_model.h"

namespace politewifi::scenario {

enum class Activity : std::uint8_t {
  kAbsent,     // nobody near the device
  kStill,      // person present but motionless
  kPickup,     // approach + pick the device up
  kHold,       // holding, not typing
  kTyping,     // typing (keystroke schedule attached)
  kWalking,    // walking through the scene
  kBreathing,  // sitting still, breathing only
  kGesturePush,  // a deliberate push toward the device and back
  kGestureWave,  // hand waving (the gesture-recognition workload [28,30])
};

const char* activity_name(Activity a);

/// A scripted activity timeline that yields dynamic propagation paths.
class BodyMotionModel {
 public:
  struct Config {
    /// Excess delay of the body-scattered path relative to LOS (ns).
    double scatterer_delay_ns = 15.0;
    /// Reflection amplitude of the hand path (relative to LOS = 1).
    double hand_amplitude = 0.45;
    /// Reflection amplitude of the torso path.
    double body_amplitude = 0.30;
    /// Breathing rate used by kBreathing (breaths per minute).
    double breathing_bpm = 15.0;
    std::uint64_t seed = 99;
  };

  BodyMotionModel() : BodyMotionModel(Config{}) {}
  explicit BodyMotionModel(Config config);

  /// Appends a phase to the script.
  void add_phase(Activity activity, Duration duration);

  /// Registers keystrokes (script-relative times). Bumps apply whenever
  /// the active phase is kTyping.
  void set_keystrokes(std::vector<Keystroke> strokes) {
    keystrokes_ = std::move(strokes);
  }
  const std::vector<Keystroke>& keystrokes() const { return keystrokes_; }

  Duration total_duration() const { return total_; }
  Activity activity_at(Duration t) const;

  /// Dynamic paths at script time `t`.
  phy::PathSet paths_at(Duration t) const;

  /// Ground truth for evaluating segmentation: phase boundaries.
  struct Phase {
    Activity activity;
    Duration start;
    Duration end;
  };
  const std::vector<Phase>& phases() const { return phases_; }

 private:
  /// Excess path-length deflections (meters) of hand and torso at local
  /// phase time `t` into a phase of length `len`.
  struct Deflection {
    double hand_m = 0.0;
    double body_m = 0.0;
    bool present = true;
  };
  Deflection deflection(Activity a, double t_s, double len_s,
                        Duration script_t) const;

  Config config_;
  std::vector<Phase> phases_;
  Duration total_ = Duration::zero();
  std::vector<Keystroke> keystrokes_;
  // Deterministic per-model oscillator phases.
  double phase1_, phase2_, phase3_;
};

}  // namespace politewifi::scenario
