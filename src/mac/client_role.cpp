#include "mac/client_role.h"

namespace politewifi::mac {

ClientRole::ClientRole(ClientConfig config, RoleContext ctx)
    : config_(std::move(config)), ctx_(ctx), rng_(ctx.rng) {
  if (!config_.fast_keys) {
    pmk_ = crypto::derive_pmk(config_.passphrase, config_.ssid);
  }
}

void ClientRole::start() {
  ctx_.station->set_upper_handler(
      [this](const frames::Frame& f, const phy::RxVector& rx) {
        on_frame(f, rx);
      });
  last_activity_ = ctx_.env->now();
}

void ClientRole::on_frame(const frames::Frame& frame, const phy::RxVector&) {
  // Every unicast frame addressed to us counts as activity: the idle
  // timer is a *traffic* timer, and a stranger's fake frame is traffic.
  // This single line is why the battery-drain attack works. (Broadcast
  // beacons are exempt, or the device could never doze at all.)
  if (frame.addr1 == ctx_.station->address()) note_activity();

  if (frame.fc.is_beacon()) {
    handle_beacon(frame);
    return;
  }
  if (frame.fc.is_management()) {
    handle_management(frame);
    return;
  }
  if (frame.fc.is_data()) {
    if (!frame.fc.protected_frame && EapolKey::is_eapol(frame.body)) {
      if (const auto msg = EapolKey::deserialize(frame.body)) {
        handle_eapol(*msg);
      }
      return;
    }
    handle_data(frame);
    return;
  }
}

void ClientRole::handle_beacon(const frames::Frame& frame) {
  const auto beacon = frames::Beacon::from_body(frame.body);
  if (!beacon) return;
  const auto ssid = beacon->elements.ssid();
  if (!ssid || *ssid != config_.ssid) return;

  ++stats_.beacons_heard;
  last_beacon_ = ctx_.env->now();
  beacon_interval_ = microseconds(
      static_cast<std::int64_t>(beacon->beacon_interval) * 1024);

  if (phase_ == Phase::kScanning) {
    bssid_ = frame.addr2;
    phase_ = Phase::kAuthenticating;
    ctx_.station->send(
        frames::make_authentication(*bssid_, ctx_.station->address(), *bssid_,
                                    {.algorithm = 0, .sequence = 1, .status = 0},
                                    ctx_.station->next_sequence()),
        config_.mgmt_rate);
    return;
  }

  if (phase_ == Phase::kEstablished && dozing_) {
    // We woke for this beacon: check the TIM for buffered traffic.
    const auto tim = beacon->elements.tim();
    bool buffered_for_us = false;
    if (tim) {
      for (const auto aid : tim->buffered_aids) {
        if (aid == aid_) buffered_for_us = true;
      }
    }
    if (buffered_for_us) {
      // Come fully awake and poll.
      dozing_ = false;
      ++stats_.wake_transitions;
      if (ctx_.set_radio_sleep) ctx_.set_radio_sleep(false);
      ctx_.station->set_dozing(false);
      ctx_.station->send(frames::make_ps_poll(*bssid_, ctx_.station->address(),
                                              aid_),
                         config_.mgmt_rate);
      ++stats_.ps_polls_sent;
      note_activity();
    }
  }
}

void ClientRole::handle_management(const frames::Frame& frame) {
  using frames::ManagementSubtype;
  if (!bssid_ || frame.addr2 != *bssid_) return;

  if (frame.fc.is_subtype(ManagementSubtype::kAuthentication) &&
      phase_ == Phase::kAuthenticating) {
    const auto auth = frames::Authentication::from_body(frame.body);
    if (!auth || auth->status != 0 || auth->sequence != 2) return;
    phase_ = Phase::kAssociating;
    frames::AssociationRequest req;
    req.capability.privacy = true;
    req.listen_interval = static_cast<std::uint16_t>(config_.listen_interval);
    req.elements.set_ssid(config_.ssid);
    ctx_.station->send(
        frames::make_assoc_request(*bssid_, ctx_.station->address(), req,
                                   ctx_.station->next_sequence()),
        config_.mgmt_rate);
    return;
  }

  if (frame.fc.is_subtype(ManagementSubtype::kAssocResponse) &&
      phase_ == Phase::kAssociating) {
    const auto resp = frames::AssociationResponse::from_body(frame.body);
    if (!resp || resp->status != 0) return;
    aid_ = resp->aid;
    phase_ = Phase::kHandshake;
    return;
  }

  if (frame.fc.is_subtype(ManagementSubtype::kDeauthentication)) {
    if (phase_ != Phase::kEstablished) return;
    if (config_.pmf) {
      // 802.11w: a robust-management deauth must decrypt under the PTK.
      // A spoofed plaintext deauth — the Bellardo/Savage DoS — fails
      // here. (The frame was still ACKed by the low-MAC, of course.)
      frames::Frame copy = frame;
      const bool authentic =
          frame.fc.protected_frame && session_ && session_->unprotect(copy);
      if (!authentic) {
        ++stats_.spoofed_deauths_rejected;
        return;
      }
    }
    ++stats_.deauths_accepted;
    phase_ = Phase::kScanning;
    session_.reset();
    bssid_.reset();
    return;
  }
}

void ClientRole::handle_eapol(const EapolKey& msg) {
  if (!bssid_) return;

  if (msg.message_number == 1 && phase_ == Phase::kHandshake) {
    anonce_ = msg.nonce;
    snonce_ = make_nonce();
    ptk_ = config_.fast_keys
               ? crypto::derive_fast_ptk(*bssid_, ctx_.station->address())
               : crypto::derive_ptk(pmk_, *bssid_, ctx_.station->address(),
                                    anonce_, snonce_);
    EapolKey msg2;
    msg2.message_number = 2;
    msg2.nonce = snonce_;
    msg2.mic = EapolKey::compute_mic(ptk_.kck, msg2);
    ctx_.station->send(
        frames::make_data_to_ds(*bssid_, ctx_.station->address(), *bssid_,
                                msg2.serialize(), ctx_.station->next_sequence()),
        config_.data_rate);
    return;
  }

  if (msg.message_number == 3 && phase_ == Phase::kHandshake) {
    if (!msg.verify_mic(ptk_.kck)) return;
    EapolKey msg4;
    msg4.message_number = 4;
    msg4.mic = EapolKey::compute_mic(ptk_.kck, msg4);
    ctx_.station->send(
        frames::make_data_to_ds(*bssid_, ctx_.station->address(), *bssid_,
                                msg4.serialize(), ctx_.station->next_sequence()),
        config_.data_rate);
    session_.emplace(ptk_);
    phase_ = Phase::kEstablished;
    if (on_associated_) on_associated_();
    if (config_.power_save) consider_dozing();
    return;
  }
}

void ClientRole::handle_data(const frames::Frame& frame) {
  if (phase_ != Phase::kEstablished || !session_) {
    ++stats_.frames_discarded;
    return;
  }
  if (frame.fc.protected_frame) {
    frames::Frame copy = frame;
    if (session_->unprotect(copy)) {
      ++stats_.msdus_received;
    } else {
      // Fake frame (or genuine corruption). The ACK was already sent by
      // the low-MAC a SIFS after the frame — this rejection changes
      // nothing the attacker can observe.
      ++stats_.decrypt_failures;
    }
  } else {
    // Unprotected data inside a WPA2 link is never legitimate: this is
    // where the attacker's null frames die — in software, hundreds of
    // microseconds after the hardware politely ACKed them.
    ++stats_.frames_discarded;
  }
  // More buffered traffic waiting at the AP? Keep polling.
  if (frame.fc.more_data && dozing_ == false && config_.power_save && bssid_) {
    ctx_.station->send(
        frames::make_ps_poll(*bssid_, ctx_.station->address(), aid_),
        config_.mgmt_rate);
    ++stats_.ps_polls_sent;
  }
}

void ClientRole::send_msdu(Bytes msdu) {
  if (phase_ != Phase::kEstablished || !session_ || !bssid_) return;
  if (dozing_) {
    // Waking to transmit is always allowed.
    dozing_ = false;
    ++stats_.wake_transitions;
    if (ctx_.set_radio_sleep) ctx_.set_radio_sleep(false);
    ctx_.station->set_dozing(false);
  }
  frames::Frame f =
      frames::make_data_to_ds(*bssid_, ctx_.station->address(), *bssid_,
                              std::move(msdu), ctx_.station->next_sequence());
  session_->protect(f);
  ctx_.station->send(std::move(f), config_.data_rate);
  note_activity();
}

void ClientRole::install_established(const MacAddress& bssid,
                                     std::uint16_t aid,
                                     const crypto::Ptk& ptk) {
  bssid_ = bssid;
  aid_ = aid;
  ptk_ = ptk;
  session_.emplace(ptk);
  phase_ = Phase::kEstablished;
  last_activity_ = ctx_.env->now();
  last_beacon_ = ctx_.env->now();
  if (on_associated_) on_associated_();
  if (config_.power_save) consider_dozing();
}

void ClientRole::set_forced_doze(bool forced) {
  if (forced_doze_ == forced) return;
  forced_doze_ = forced;
  if (forced) {
    if (idle_timer_armed_) {
      ctx_.env->cancel(idle_timer_);
      idle_timer_armed_ = false;
    }
    dozing_ = true;  // tell the AP-side bookkeeping we are unreachable
  } else {
    dozing_ = false;
    last_activity_ = ctx_.env->now();
    if (config_.power_save && phase_ == Phase::kEstablished) {
      consider_dozing();
    }
  }
}

// ---------------------------------------------------------------------------
// Power save
// ---------------------------------------------------------------------------

void ClientRole::note_activity() {
  last_activity_ = ctx_.env->now();
  ++stats_.activity_resets;
  if (forced_doze_) return;  // the guard owns the radio; do not wake
  if (!config_.power_save || phase_ != Phase::kEstablished) return;
  if (dozing_) {
    // Traffic arrived during a beacon wake window: the radio is on and
    // demonstrably needed — come fully awake and restart the idle clock.
    dozing_ = false;
    ++stats_.wake_transitions;
    if (ctx_.set_radio_sleep) ctx_.set_radio_sleep(false);
    ctx_.station->set_dozing(false);
  }
  consider_dozing();
}

void ClientRole::consider_dozing() {
  if (idle_timer_armed_) {
    ctx_.env->cancel(idle_timer_);
    idle_timer_armed_ = false;
  }
  const TimePoint deadline = last_activity_ + config_.idle_timeout;
  const Duration wait = deadline - ctx_.env->now();
  idle_timer_armed_ = true;
  idle_timer_ = ctx_.env->schedule(
      wait > Duration::zero() ? wait : Duration::zero(), [this] {
        idle_timer_armed_ = false;
        if (dozing_ || phase_ != Phase::kEstablished) return;
        if (ctx_.env->now() - last_activity_ >= config_.idle_timeout &&
            ctx_.station->tx_queue_depth() == 0) {
          enter_doze();
        } else {
          consider_dozing();
        }
      });
}

void ClientRole::enter_doze() {
  if (forced_doze_) return;  // the guard already holds the radio down
  if (!bssid_) return;
  // Tell the AP we are going to sleep: a null frame with the PM bit. Sent
  // via DCF with ACK (fire-and-forget here for simplicity of shutdown).
  frames::Frame pm_null = frames::make_null_function(
      *bssid_, ctx_.station->address(), ctx_.station->next_sequence());
  pm_null.fc.power_management = true;
  ctx_.station->transmit_now(pm_null, config_.mgmt_rate);

  dozing_ = true;
  ++stats_.doze_transitions;
  ctx_.station->set_dozing(true);
  if (ctx_.set_radio_sleep) ctx_.set_radio_sleep(true);

  // Wake just before the next listen-interval beacon.
  const Duration interval = beacon_interval_ * config_.listen_interval;
  TimePoint next_beacon = last_beacon_ + interval;
  const TimePoint now = ctx_.env->now();
  while (next_beacon <= now) next_beacon += interval;
  ctx_.env->schedule(next_beacon - now - milliseconds(1),
                     [this] { wake_for_beacon(); });
}

void ClientRole::wake_for_beacon() {
  if (forced_doze_) return;  // guard engaged: stay down
  if (!dozing_) return;
  // Radio up to listen for the beacon; MAC stays "dozing" for the AP's
  // benefit unless the TIM says otherwise (handle_beacon flips it).
  if (ctx_.set_radio_sleep) ctx_.set_radio_sleep(false);
  ctx_.station->set_dozing(false);

  ctx_.env->schedule(config_.beacon_wake_window, [this] {
    if (!dozing_) return;  // TIM woke us fully
    // Nothing buffered: back to sleep until the next listen interval.
    ctx_.station->set_dozing(true);
    if (ctx_.set_radio_sleep) ctx_.set_radio_sleep(true);
    const Duration interval = beacon_interval_ * config_.listen_interval;
    TimePoint next_beacon = last_beacon_ + interval;
    const TimePoint now = ctx_.env->now();
    while (next_beacon <= now) next_beacon += interval;
    ctx_.env->schedule(next_beacon - now - milliseconds(1),
                       [this] { wake_for_beacon(); });
  });
}

crypto::Nonce ClientRole::make_nonce() {
  crypto::Nonce n;
  for (auto& b : n) b = static_cast<std::uint8_t>(rng_.uniform_int(0, 255));
  return n;
}

}  // namespace politewifi::mac
