#include "mac/eapol.h"

#include <algorithm>

#include "crypto/hmac.h"

namespace politewifi::mac {

Bytes EapolKey::serialize() const {
  ByteWriter w;
  w.bytes(kEtherType);
  w.u8(message_number);
  w.u8(install_flag ? 1 : 0);
  w.bytes(nonce);
  w.bytes(mic);
  return w.take();
}

std::optional<EapolKey> EapolKey::deserialize(
    std::span<const std::uint8_t> body) {
  if (!is_eapol(body)) return std::nullopt;
  try {
    ByteReader r(body);
    r.bytes(kEtherType.size());
    EapolKey m;
    m.message_number = r.u8();
    m.install_flag = r.u8() != 0;
    auto nonce = r.bytes(m.nonce.size());
    std::copy(nonce.begin(), nonce.end(), m.nonce.begin());
    auto mic = r.bytes(m.mic.size());
    std::copy(mic.begin(), mic.end(), m.mic.begin());
    return m;
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
}

bool EapolKey::is_eapol(std::span<const std::uint8_t> body) {
  return body.size() >= 2 && body[0] == kEtherType[0] &&
         body[1] == kEtherType[1];
}

std::array<std::uint8_t, 16> EapolKey::compute_mic(
    const std::array<std::uint8_t, 16>& kck, const EapolKey& message) {
  EapolKey zeroed = message;
  zeroed.mic.fill(0);
  const Bytes data = zeroed.serialize();
  const auto digest = crypto::hmac_sha1(kck, data);
  std::array<std::uint8_t, 16> mic;
  std::copy(digest.begin(), digest.begin() + 16, mic.begin());
  return mic;
}

bool EapolKey::verify_mic(const std::array<std::uint8_t, 16>& kck) const {
  return compute_mic(kck, *this) == mic;
}

}  // namespace politewifi::mac
