// EAPOL-Key messages: the WPA2 4-way handshake payload.
//
// Modeled closely enough to exercise the real key hierarchy: ANonce and
// SNonce travel in messages 1/2, messages 2-4 carry an HMAC-SHA1 MIC
// keyed with the KCK, and both sides end up with the same PTK — derived
// with the real PBKDF2/PRF code in pw_crypto. The frames ride as
// unencrypted data frames (as real EAPOL does, since the keys don't exist
// yet), distinguished by a magic ethertype-like tag in the body.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/byte_buffer.h"
#include "crypto/wpa2.h"

namespace politewifi::mac {

struct EapolKey {
  static constexpr std::array<std::uint8_t, 2> kEtherType{0x88, 0x8e};

  std::uint8_t message_number = 1;  // 1..4
  crypto::Nonce nonce{};            // ANonce (msg 1/3) or SNonce (msg 2)
  std::array<std::uint8_t, 16> mic{};  // zero in message 1
  bool install_flag = false;           // set in message 3

  Bytes serialize() const;
  static std::optional<EapolKey> deserialize(std::span<const std::uint8_t> body);

  /// True if `body` starts with the EAPOL tag (cheap dispatch test).
  static bool is_eapol(std::span<const std::uint8_t> body);

  /// HMAC-SHA1-128 over the message with the MIC field zeroed.
  static std::array<std::uint8_t, 16> compute_mic(
      const std::array<std::uint8_t, 16>& kck, const EapolKey& message);

  /// Verifies this message's MIC against `kck`.
  bool verify_mic(const std::array<std::uint8_t, 16>& kck) const;
};

}  // namespace politewifi::mac
