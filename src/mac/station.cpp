#include "mac/station.h"

#include <algorithm>

#include "obs/metrics.h"

namespace politewifi::mac {

namespace {

const char* ack_policy_names[] = {"polite-hardware", "validating-mac"};

}  // namespace

const char* ack_policy_name(AckPolicyMode mode) {
  return ack_policy_names[static_cast<int>(mode)];
}

Station::Station(MacConfig config, MacEnvironment& env, Rng rng)
    : config_(config), env_(env), rng_(rng), arf_(config.arf) {}

void Station::set_dozing(bool dozing) {
  dozing_ = dozing;
  if (!dozing_ && !contention_pending_ && !current_ && !tx_queue_.empty()) {
    start_contention();
  }
}

// ---------------------------------------------------------------------------
// Receive pipeline
// ---------------------------------------------------------------------------

void Station::on_ppdu_received(const Bytes& raw, const phy::RxVector& rx) {
  if (dozing_) return;  // radio gated off; defensive double-check

  const auto result = frames::deserialize(raw);

  // Monitor tap sees everything that was decodable at all.
  if (sniffer_ && result.frame) {
    sniffer_(*result.frame, rx, result.fcs_ok);
  }

  // Stage 1: FCS. Hardware drops bad frames silently — no ACK, no
  // software visibility. This is the *only* integrity check that gates
  // the ACK.
  if (!result.fcs_ok || !result.frame) {
    ++stats_.fcs_failures;
    return;
  }
  const Frame& frame = *result.frame;
  ++stats_.frames_received;

  // NAV bookkeeping: frames not addressed to us reserve the medium via
  // their Duration field (bit 15 clear means a duration in microseconds).
  if (frame.addr1 != config_.address && (frame.duration_id & 0x8000) == 0) {
    const TimePoint until = env_.now() + microseconds(frame.duration_id);
    nav_until_ = std::max(nav_until_, until);
  }

  if (frame.fc.is_control()) {
    handle_control_frame(frame, rx);
    return;
  }

  // Stage 2: receiver address filter.
  const bool for_us = frame.addr1 == config_.address;
  const bool group = frame.addr1.is_group();
  if (!for_us && !group) return;

  if (for_us) {
    ++stats_.frames_for_us;
    // Stage 3: the ACK decision. In polite (real-hardware) mode this is
    // unconditional — the MAC has checked exactly two things: the FCS and
    // addr1. Sender identity, encryption validity, association state,
    // blocklists: none of it has been (or could have been) examined yet.
    switch (config_.ack_policy) {
      case AckPolicyMode::kPoliteHardware:
        schedule_ack(frame, rx);
        break;
      case AckPolicyMode::kValidatingMac:
        schedule_validating_ack(frame, rx);
        break;
    }
  }

  // Stage 4: duplicate detection (ACK was sent regardless — a duplicate
  // means our previous ACK was lost, so the peer *needs* another one).
  if (for_us && is_duplicate(frame)) {
    ++stats_.duplicates_dropped;
    return;
  }

  // Stage 5: upper-layer delivery.
  if (upper_) {
    ++stats_.delivered_to_upper;
    upper_(frame, rx);
  }
}

void Station::handle_control_frame(const Frame& frame,
                                   const phy::RxVector& rx) {
  if (frame.addr1 != config_.address) return;

  if (frame.fc.is_ack()) {
    ++stats_.acks_received;
    if (awaiting_ack_) {
      env_.cancel(ack_timer_);
      awaiting_ack_ = false;
      finish_current(true);
    }
    return;
  }

  if (frame.fc.is_cts() && awaiting_cts_) {
    // Our RTS was answered: the channel is reserved, send the data one
    // SIFS after the CTS.
    ++stats_.cts_received;
    env_.cancel(cts_timer_);
    awaiting_cts_ = false;
    env_.schedule(phy::sifs(config_.band), [this] { launch_data_frame(); });
    return;
  }

  if (frame.fc.is_rts() && config_.respond_to_rts) {
    // CTS one SIFS later, continuing the NAV the RTS requested. RTS/CTS
    // cannot be encrypted (every third party must parse them to honour
    // the reservation), so even the validating ablation responds — the
    // paper's checkmate argument in §2.2.
    const std::uint16_t cts_airtime_us = 32;  // CTS at 24 Mb/s, rounded up
    const std::uint16_t remaining =
        frame.duration_id > cts_airtime_us + 10
            ? static_cast<std::uint16_t>(frame.duration_id - cts_airtime_us - 10)
            : 0;
    const Frame cts = frames::make_cts(frame.addr2, remaining);
    const phy::PhyRate rate = phy::control_response_rate(rx.rate);
    env_.schedule(phy::sifs(config_.band), [this, cts, rate] {
      ++stats_.cts_sent;
      env_.transmit(cts, {.rate = rate, .power_dbm = config_.tx_power_dbm});
    });
    return;
  }

  if (frame.fc.is_subtype(frames::ControlSubtype::kPsPoll) && upper_) {
    // PS-Poll is handled by the AP role (it must release one buffered
    // frame); it is also ACKed like a data frame per the standard. Model
    // the ACK here, delivery above.
    schedule_ack(frame, rx);
    ++stats_.delivered_to_upper;
    upper_(frame, rx);
    return;
  }
}

void Station::schedule_ack(const Frame& frame, const phy::RxVector& rx) {
  // The ACK goes to whatever addr2 claims — a spoofed address is ACKed
  // just the same (Figure 2's aa:bb:bb:bb:bb:bb).
  const Frame ack = frames::make_ack(frame.addr2);
  const phy::PhyRate rate = phy::control_response_rate(rx.rate);
  Duration delay = phy::sifs(config_.band);
  if (config_.sifs_jitter_ns > 0.0) {
    const double jitter = std::abs(rng_.gaussian(0.0, config_.sifs_jitter_ns));
    delay += nanoseconds(static_cast<std::int64_t>(jitter));
  }
  env_.schedule(delay, [this, ack, rate] {
    ++stats_.acks_sent;
    PW_COUNT(kMacAcksSent);
    env_.transmit(ack, {.rate = rate, .power_dbm = config_.tx_power_dbm});
  });
}

void Station::schedule_validating_ack(const Frame& frame,
                                      const phy::RxVector& rx) {
  // The hypothetical receiver decrypts before ACKing. Decode latency is
  // charged even for frames that turn out to be garbage — the receiver
  // cannot know until it has tried.
  const double decode_us = config_.decode_model.decode_us(frame.size_bytes());
  const Duration delay = std::chrono::duration_cast<Duration>(
      std::chrono::duration<double, std::micro>(decode_us));

  // Validation: a protected frame must decrypt + MIC-check against the
  // session; an unprotected data/management frame from an unknown party
  // is exactly the paper's fake frame and gets rejected.
  bool valid = false;
  if (frame.fc.protected_frame && validation_session_ != nullptr) {
    Frame copy = frame;
    valid = validation_session_->unprotect(copy);
  }
  if (!valid) {
    ++stats_.validations_rejected;
    return;  // fake frame: correctly not ACKed... after wasting decode_us
  }

  const Frame ack = frames::make_ack(frame.addr2);
  const phy::PhyRate rate = phy::control_response_rate(rx.rate);
  env_.schedule(delay, [this, ack, rate] {
    ++stats_.acks_sent;
    PW_COUNT(kMacAcksSent);
    env_.transmit(ack, {.rate = rate, .power_dbm = config_.tx_power_dbm});
  });
}

bool Station::is_duplicate(const Frame& frame) {
  if (!frame.has_sequence_control()) return false;
  const std::uint16_t sc = frame.seq.pack();
  const std::uint64_t now = ++dedup_clock_;
  for (DedupEntry& e : dedup_cache_) {
    if (e.addr != frame.addr2) continue;
    const bool dup = e.sc == sc && frame.fc.retry;
    e.sc = sc;
    e.stamp = now;
    return dup;
  }
  if (dedup_cache_.size() < config_.dedup_cache_size) {
    dedup_cache_.push_back(DedupEntry{frame.addr2, sc, now});
    return false;
  }
  // Full: evict the least-recently-touched transmitter. Forgetting an old
  // peer only risks one spurious non-duplicate delivery, exactly like a
  // real NIC's bounded cache.
  DedupEntry* lru = &dedup_cache_.front();
  for (DedupEntry& e : dedup_cache_) {
    if (e.stamp < lru->stamp) lru = &e;
  }
  PW_COUNT(kMacDedupEvictions);
  *lru = DedupEntry{frame.addr2, sc, now};
  return false;
}

// ---------------------------------------------------------------------------
// Transmit pipeline (DCF)
// ---------------------------------------------------------------------------

void Station::send(Frame frame, phy::PhyRate rate, SendCallback callback,
                   int retry_limit_override) {
  tx_queue_.push_back(PendingTx{std::move(frame), rate, std::move(callback),
                                0, retry_limit_override});
  if (!current_ && !contention_pending_ && !dozing_) start_contention();
}

void Station::transmit_now(const Frame& frame, phy::PhyRate rate) {
  ++stats_.frames_transmitted;
  env_.transmit(frame, {.rate = rate, .power_dbm = config_.tx_power_dbm});
}

Duration Station::contention_delay() {
  const int slots = static_cast<int>(rng_.uniform_int(0, cw_));
  return phy::difs(config_.band) + slots * phy::slot_time(config_.band);
}

void Station::start_contention() {
  if (tx_queue_.empty() || current_ || dozing_) return;
  current_ = std::move(tx_queue_.front());
  tx_queue_.pop_front();
  contention_pending_ = true;
  contention_timer_ =
      env_.schedule(contention_delay(), [this] { attempt_transmission(); });
}

void Station::attempt_transmission() {
  contention_pending_ = false;
  if (!current_) return;

  // Physical or virtual carrier busy: redraw the backoff. (Real DCF
  // freezes and resumes the counter; redrawing is a standard simulator
  // simplification with the same long-run behaviour.)
  if (env_.medium_busy() || env_.now() < nav_until_) {
    contention_pending_ = true;
    contention_timer_ =
        env_.schedule(contention_delay(), [this] { attempt_transmission(); });
    return;
  }

  PendingTx& tx = *current_;
  ++tx.attempt;
  if (tx.attempt > 1) {
    tx.frame.fc.retry = true;
    ++stats_.retransmissions;
    PW_COUNT(kMacRetries);
  }
  if (config_.adaptive_rate) tx.rate = arf_.current();

  // RTS/CTS protection for large unicast frames (dot11RTSThreshold).
  const bool protect_with_rts = !tx.frame.addr1.is_group() &&
                                !tx.frame.fc.is_control() &&
                                tx.frame.size_bytes() > config_.rts_threshold;
  if (protect_with_rts) {
    const phy::PhyRate ctl_rate = phy::control_response_rate(tx.rate);
    const Duration cts_air = phy::ppdu_airtime(ctl_rate, 14);
    const Duration data_air = phy::ppdu_airtime(tx.rate, tx.frame.size_bytes());
    const Duration ack_air = phy::ppdu_airtime(ctl_rate, 14);
    const double nav_us = to_microseconds(3 * phy::sifs(config_.band) +
                                          cts_air + data_air + ack_air);
    const frames::Frame rts = frames::make_rts(
        tx.frame.addr1, config_.address,
        static_cast<std::uint16_t>(std::min(nav_us + 1.0, 32767.0)));
    ++stats_.frames_transmitted;
    ++stats_.rts_sent;
    env_.transmit(rts, {.rate = ctl_rate, .power_dbm = config_.tx_power_dbm});
    awaiting_cts_ = true;
    const Duration rts_air = phy::ppdu_airtime(ctl_rate, 20);
    cts_timer_ = env_.schedule(rts_air + phy::ack_timeout(config_.band),
                               [this] {
                                 awaiting_cts_ = false;
                                 on_ack_timeout();  // same recovery path
                               });
    return;
  }

  launch_data_frame();
}

void Station::launch_data_frame() {
  if (!current_) return;
  PendingTx& tx = *current_;
  ++stats_.frames_transmitted;
  PW_HIST(kMacTxOctets, tx.frame.size_bytes());
  env_.transmit(tx.frame, {.rate = tx.rate, .power_dbm = config_.tx_power_dbm});

  const bool needs_ack = !tx.frame.addr1.is_group() && !tx.frame.fc.is_ack() &&
                         !tx.frame.fc.is_cts();
  const Duration airtime = phy::ppdu_airtime(tx.rate, tx.frame.size_bytes());
  if (needs_ack) {
    awaiting_ack_ = true;
    ack_timer_ = env_.schedule(airtime + phy::ack_timeout(config_.band),
                               [this] { on_ack_timeout(); });
  } else {
    // Fire-and-forget completes when the PPDU ends.
    env_.schedule(airtime, [this] { finish_current(true); });
  }
}

void Station::on_ack_timeout() {
  awaiting_ack_ = false;
  if (!current_) return;
  if (config_.adaptive_rate) arf_.on_failure();

  const int limit = current_->retry_limit > 0 ? current_->retry_limit
                                              : config_.retry_limit;
  if (current_->attempt >= limit) {
    finish_current(false);
    return;
  }
  // Binary exponential backoff.
  cw_ = std::min(cw_ * 2 + 1, phy::kCwMax);
  contention_pending_ = true;
  contention_timer_ =
      env_.schedule(contention_delay(), [this] { attempt_transmission(); });
}

void Station::finish_current(bool success) {
  if (!current_) return;
  TxResult result{.acked = success,
                  .transmissions = current_->attempt,
                  .completed_at = env_.now()};
  // Feed ARF: a completed exchange that ended in an ACK is a success for
  // the rate used (per-attempt failures were fed from the timeouts).
  if (config_.adaptive_rate && success && !current_->frame.addr1.is_group()) {
    arf_.on_success();
  }
  if (success) {
    ++stats_.tx_success;
  } else {
    ++stats_.tx_failures;
  }
  cw_ = phy::kCwMin;
  auto callback = std::move(current_->callback);
  current_.reset();
  if (callback) callback(result);
  if (!tx_queue_.empty() && !dozing_) start_contention();
}

void Station::on_medium_idle() {
  // Hook for future freeze/resume backoff; redraw model needs nothing.
}

}  // namespace politewifi::mac
