// Automatic Rate Fallback (ARF) — classic 802.11 rate adaptation.
//
// Production MACs pick their data rate from recent ACK history: climb
// the rate ladder after a streak of successes, fall after consecutive
// failures. Matters here because it changes frame airtimes (and thus
// attack economics), and because survey victims at the edge of range
// should degrade the way real devices do.
#pragma once

#include <array>

#include "phy/rates.h"

namespace politewifi::mac {

struct ArfConfig {
  /// Consecutive successes before probing one rate up.
  int up_after = 10;
  /// Consecutive failures before stepping one rate down.
  int down_after = 2;
  /// Starting rung on the legacy OFDM ladder (index, 0 = 6 Mb/s).
  int initial_index = 4;  // 24 Mb/s
};

class ArfRateController {
 public:
  explicit ArfRateController(ArfConfig config);
  ArfRateController() : ArfRateController(ArfConfig{}) {}

  phy::PhyRate current() const { return kLadder[std::size_t(index_)]; }
  int ladder_index() const { return index_; }

  /// Feed one transmission outcome (an ACKed frame / a retry-exhausted
  /// failure or per-attempt timeout).
  void on_success();
  void on_failure();

  static constexpr std::array<phy::PhyRate, 8> kLadder = {
      phy::kOfdm6,  phy::kOfdm9,  phy::kOfdm12, phy::kOfdm18,
      phy::kOfdm24, phy::kOfdm36, phy::kOfdm48, phy::kOfdm54};

 private:
  ArfConfig config_;
  int index_;
  int success_streak_ = 0;
  int failure_streak_ = 0;
  bool probing_ = false;  // just moved up: one failure drops us back
};

}  // namespace politewifi::mac
