// Automatic Rate Fallback (ARF) — classic 802.11 rate adaptation.
//
// Production MACs pick their data rate from recent ACK history: climb
// the rate ladder after a streak of successes, fall after consecutive
// failures. Matters here because it changes frame airtimes (and thus
// attack economics), and because survey victims at the edge of range
// should degrade the way real devices do.
#pragma once

#include <array>

#include "phy/rates.h"

namespace politewifi::mac {

struct ArfConfig {
  /// Consecutive successes before probing one rate up.
  int up_after = 10;
  /// Consecutive failures before stepping one rate down.
  int down_after = 2;
  /// Starting rung on the legacy OFDM ladder (index, 0 = 6 Mb/s).
  int initial_index = 4;  // 24 Mb/s
};

/// Rate-ladder trajectory: deterministic counters describing how a
/// controller walked the ladder over its lifetime. Under a
/// time-correlated fading channel this is the observable that separates
/// ARF tracking a coherent fade (long dwells, few shifts) from ARF
/// thrashing on memoryless noise — the fading experiments surface it
/// per station in their results.
struct ArfTrajectory {
  std::uint64_t outcomes = 0;    // success/failure feeds observed
  std::uint64_t upshifts = 0;    // ladder steps up (probe moves included)
  std::uint64_t downshifts = 0;  // ladder steps down
  int min_index = 0;             // lowest rung visited
  int max_index = 0;             // highest rung visited
  /// Outcomes fed while sitting at each rung (index = ladder index).
  std::array<std::uint64_t, 8> dwell{};
};

class ArfRateController {
 public:
  explicit ArfRateController(ArfConfig config);
  ArfRateController() : ArfRateController(ArfConfig{}) {}

  phy::PhyRate current() const { return kLadder[std::size_t(index_)]; }
  int ladder_index() const { return index_; }

  /// Feed one transmission outcome (an ACKed frame / a retry-exhausted
  /// failure or per-attempt timeout).
  void on_success();
  void on_failure();

  /// Lifetime ladder walk (see ArfTrajectory).
  const ArfTrajectory& trajectory() const { return trajectory_; }

  static constexpr std::array<phy::PhyRate, 8> kLadder = {
      phy::kOfdm6,  phy::kOfdm9,  phy::kOfdm12, phy::kOfdm18,
      phy::kOfdm24, phy::kOfdm36, phy::kOfdm48, phy::kOfdm54};

 private:
  /// Books one outcome fed at the current rung, then (after the caller
  /// moved index_) the shift direction and the visited-range extremes.
  void record_outcome();
  void record_index();

  ArfConfig config_;
  int index_;
  int success_streak_ = 0;
  int failure_streak_ = 0;
  bool probing_ = false;  // just moved up: one failure drops us back
  ArfTrajectory trajectory_;
};

}  // namespace politewifi::mac
