// The 802.11 low-MAC state machine.
//
// Station implements the receive pipeline and the DCF transmit path of a
// single 802.11 interface:
//
//   RX:  preamble -> FCS check -> addr1 filter -> [AUTO-ACK at SIFS]
//        -> duplicate detection -> upper-layer delivery
//   TX:  DIFS + binary-exponential backoff -> transmit -> ACK timeout
//        -> retransmit (retry bit, CW doubling) up to the retry limit
//
// The auto-ACK step deliberately happens *before* any notion of
// association, encryption or sender legitimacy — that ordering is the
// entire subject of the paper. See ack_policy.h for the ablation switch.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/logging.h"
#include "common/mac_address.h"
#include "common/rng.h"
#include "crypto/wpa2.h"
#include "frames/frame.h"
#include "frames/serializer.h"
#include "mac/ack_policy.h"
#include "mac/rate_control.h"
#include "mac/environment.h"
#include "phy/error_model.h"
#include "phy/timing.h"

namespace politewifi::mac {

using frames::Frame;

/// Static configuration of a station.
struct MacConfig {
  MacAddress address;
  phy::Band band = phy::Band::k2_4GHz;
  AckPolicyMode ack_policy = AckPolicyMode::kPoliteHardware;
  /// Decode-latency model consulted by the validating ablation.
  crypto::DecodeLatencyModel decode_model{};
  int retry_limit = phy::kRetryLimit;
  /// Respond to RTS with CTS even when unassociated (all real devices do;
  /// Wang et al. [27] and §2.2 depend on it).
  bool respond_to_rts = true;
  /// Default transmit power.
  double tx_power_dbm = 15.0;
  /// ACK turnaround jitter stddev in nanoseconds (hardware is remarkably
  /// tight; a few hundred ns at most).
  double sifs_jitter_ns = 0.0;
  /// ARF rate adaptation: when set, frames queued via send() use the
  /// controller's current rate (the caller's rate becomes a hint only).
  bool adaptive_rate = false;
  ArfConfig arf{};
  /// RTS/CTS protection: unicast frames larger than this are preceded by
  /// an RTS/CTS handshake (dot11RTSThreshold). Default: never.
  std::size_t rts_threshold = std::size_t(-1);
  /// Duplicate-detection cache capacity (distinct transmitter addresses
  /// remembered). Real NICs keep a handful of entries; a bounded cache
  /// also stops an address-sweeping injector from growing a victim's
  /// memory without bound.
  std::size_t dedup_cache_size = 64;
};

/// Outcome of a Station::send call, delivered via callback.
struct TxResult {
  bool acked = false;
  int transmissions = 1;  // 1 = first attempt succeeded
  TimePoint completed_at{};
};

/// Counters useful to every experiment.
struct MacStats {
  std::uint64_t frames_received = 0;      // FCS-valid, any address
  std::uint64_t fcs_failures = 0;
  std::uint64_t frames_for_us = 0;        // FCS-valid, addr1 == self
  std::uint64_t acks_sent = 0;
  std::uint64_t cts_sent = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t delivered_to_upper = 0;
  std::uint64_t frames_transmitted = 0;   // includes retries
  std::uint64_t retransmissions = 0;
  std::uint64_t tx_success = 0;
  std::uint64_t tx_failures = 0;          // retry limit exceeded
  std::uint64_t acks_received = 0;
  std::uint64_t rts_sent = 0;             // RTS/CTS initiator side
  std::uint64_t cts_received = 0;
  std::uint64_t validations_rejected = 0; // validating mode: fakes dropped
};

class Station {
 public:
  using UpperHandler =
      std::function<void(const Frame&, const phy::RxVector&)>;
  using SnifferHandler = std::function<void(const Frame&, const phy::RxVector&,
                                            bool fcs_ok)>;
  using SendCallback = std::function<void(const TxResult&)>;

  Station(MacConfig config, MacEnvironment& env, Rng rng);

  const MacConfig& config() const { return config_; }
  const MacAddress& address() const { return config_.address; }
  const MacStats& stats() const { return stats_; }

  /// Changes this interface's MAC address (defense::MacRotation). Takes
  /// effect for the next received PPDU: frames addressed to the old MAC
  /// are no longer ours and are no longer ACKed.
  void set_address(const MacAddress& address) { config_.address = address; }

  /// Upper-layer (MLME/LLC) delivery: FCS-valid, addressed to us (or
  /// broadcast/multicast), deduplicated. Decryption is the caller's job.
  void set_upper_handler(UpperHandler handler) { upper_ = std::move(handler); }

  /// Monitor-mode tap: sees every decodable frame on the channel,
  /// including FCS failures and frames for other stations. This is what
  /// the attacker's sniffer thread uses.
  void set_sniffer(SnifferHandler handler) { sniffer_ = std::move(handler); }

  /// Installs the WPA2 session used by the *validating* ablation to test
  /// frame legitimacy before ACKing. Ignored in polite mode.
  void set_validation_session(crypto::Wpa2Session* session) {
    validation_session_ = session;
  }

  /// Sleep control: while dozing the station neither receives nor
  /// contends. (The radio gates delivery too; this flag keeps the MAC's
  /// own timers honest.)
  void set_dozing(bool dozing);
  bool dozing() const { return dozing_; }

  // --- PHY -> MAC -----------------------------------------------------------

  /// Called by the radio when a PPDU finished arriving. `raw` is the
  /// on-air MPDU (with FCS); `rx` carries rate/RSSI/CSI metadata.
  void on_ppdu_received(const Bytes& raw, const phy::RxVector& rx);

  /// Called by the radio when the medium goes busy/idle (carrier sense
  /// edge) so a paused backoff can resume.
  void on_medium_idle();

  // --- Upper -> MAC ----------------------------------------------------------

  /// Queues a frame for DCF transmission. Unicast data/management frames
  /// are retried until ACKed or the retry limit is hit; broadcast and
  /// control frames are fire-and-forget. `retry_limit_override` (> 0)
  /// caps total transmissions for this frame only.
  void send(Frame frame, phy::PhyRate rate, SendCallback callback = {},
            int retry_limit_override = 0);

  /// Transmits a frame immediately, skipping DCF — used for control
  /// responses and by the attacker's injector (which does not contend
  /// politely; it is not a polite device).
  void transmit_now(const Frame& frame, phy::PhyRate rate);

  /// Next sequence number for frames originated by this station.
  std::uint16_t next_sequence() { return seq_counter_++ & 0x0FFF; }

  /// Number of frames waiting in the TX queue (excluding in-flight).
  std::size_t tx_queue_depth() const { return tx_queue_.size(); }

  /// The ARF controller (meaningful when config().adaptive_rate).
  const ArfRateController& rate_controller() const { return arf_; }

  /// Occupied duplicate-detection entries (bounded by
  /// config().dedup_cache_size; tests assert the cap holds).
  std::size_t dedup_cache_entries() const { return dedup_cache_.size(); }

 private:
  struct PendingTx {
    Frame frame;
    phy::PhyRate rate;
    SendCallback callback;
    int attempt = 0;      // transmissions so far
    int retry_limit = 0;  // per-frame cap; 0 = use config
  };

  // RX pipeline stages.
  void handle_control_frame(const Frame& frame, const phy::RxVector& rx);
  void schedule_ack(const Frame& frame, const phy::RxVector& rx);
  void schedule_validating_ack(const Frame& frame, const phy::RxVector& rx);
  bool is_duplicate(const Frame& frame);

  // TX pipeline stages.
  void start_contention();
  void attempt_transmission();
  void launch_data_frame();
  void on_ack_timeout();
  void finish_current(bool success);
  Duration contention_delay();

  MacConfig config_;
  MacEnvironment& env_;
  Rng rng_;
  MacStats stats_;

  UpperHandler upper_;
  SnifferHandler sniffer_;
  crypto::Wpa2Session* validation_session_ = nullptr;

  bool dozing_ = false;

  // Duplicate-detection cache: last sequence control per transmitter,
  // capacity-capped LRU. A flat vector with stamp-based eviction beats a
  // hash map here: the working set is a handful of peers, every lookup is
  // a short linear scan, and the memory bound holds under an injector
  // sweeping spoofed source addresses.
  struct DedupEntry {
    MacAddress addr;
    std::uint16_t sc;
    std::uint64_t stamp;  // last-touched tick (LRU eviction key)
  };
  std::vector<DedupEntry> dedup_cache_;
  std::uint64_t dedup_clock_ = 0;

  // DCF state.
  std::deque<PendingTx> tx_queue_;
  std::optional<PendingTx> current_;
  bool contention_pending_ = false;
  std::uint64_t contention_timer_ = 0;
  std::uint64_t ack_timer_ = 0;
  bool awaiting_ack_ = false;
  std::uint64_t cts_timer_ = 0;
  bool awaiting_cts_ = false;
  int cw_ = phy::kCwMin;
  std::uint16_t seq_counter_ = 0;
  ArfRateController arf_;

  // NAV: virtual carrier sense set by overheard Duration fields.
  TimePoint nav_until_{};
};

}  // namespace politewifi::mac
