// Client (non-AP STA) upper MAC: scanning, association, WPA2 supplicant
// handshake, and 802.11 power save.
//
// Power save is the battery-drain attack's lever (§4.2): a battery
// device dozes whenever it has been idle for `idle_timeout`, waking only
// for beacons. *Any* received frame — including a stranger's fake null
// frame — counts as activity and resets the timer; above ~1/idle_timeout
// frames per second the radio simply never sleeps, and each elicited ACK
// adds transmit energy on top.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "crypto/wpa2.h"
#include "frames/data.h"
#include "frames/management.h"
#include "mac/eapol.h"
#include "mac/role.h"

namespace politewifi::mac {

struct ClientConfig {
  std::string ssid = "PrivateNet";
  std::string passphrase = "correct horse battery staple";
  phy::Band band = phy::Band::k2_4GHz;

  /// Power-save: doze after `idle_timeout` of no traffic, wake every
  /// `listen_interval` beacons. ESP8266-class defaults.
  bool power_save = false;
  Duration idle_timeout = milliseconds(100);
  int listen_interval = 1;
  /// How long the radio stays up around an expected beacon (receive +
  /// TIM processing margin).
  Duration beacon_wake_window = milliseconds(5);

  /// Skip PBKDF2 (see ApConfig::fast_keys); both sides must agree.
  bool fast_keys = false;

  /// 802.11w Protected Management Frames (the paper's footnote 2): once
  /// keys exist, deauthentication must be CCMP-protected, which defeats
  /// the classic spoofed-deauth DoS. It does NOT touch Polite WiFi:
  /// ACKs/CTS are control frames and control frames cannot be protected.
  bool pmf = false;

  phy::PhyRate mgmt_rate = phy::kOfdm6;
  phy::PhyRate data_rate = phy::kOfdm24;

  /// ARF rate adaptation on the client's DCF path (forwarded into
  /// MacConfig::adaptive_rate): data frames ride the controller's
  /// current rung instead of the fixed data_rate. Under a
  /// time-correlated fading channel the resulting ladder trajectory
  /// (Station::rate_controller().trajectory()) is the rate-adaptation
  /// observable the fading experiments report.
  bool adaptive_rate = false;
  ArfConfig arf{};
};

struct ClientStats {
  std::uint64_t beacons_heard = 0;
  std::uint64_t ps_polls_sent = 0;
  std::uint64_t doze_transitions = 0;  // awake -> doze edges
  std::uint64_t wake_transitions = 0;
  std::uint64_t msdus_received = 0;
  std::uint64_t decrypt_failures = 0;  // protected frames failing the MIC
  std::uint64_t frames_discarded = 0;  // fake/invalid frames dropped in
                                       // software (long after the ACK)
  std::uint64_t deauths_accepted = 0;       // link teardowns honoured
  std::uint64_t spoofed_deauths_rejected = 0;  // PMF saves (802.11w)
  std::uint64_t activity_resets = 0;   // idle timer resets from RX
};

class ClientRole {
 public:
  using AssociatedCallback = std::function<void()>;

  ClientRole(ClientConfig config, RoleContext ctx);

  /// Starts scanning for the configured SSID and associates when found.
  void start();

  void set_on_associated(AssociatedCallback cb) { on_associated_ = std::move(cb); }

  const ClientConfig& config() const { return config_; }
  const ClientStats& stats() const { return stats_; }
  bool established() const { return phase_ == Phase::kEstablished; }
  bool dozing() const { return dozing_; }
  const std::optional<MacAddress>& bssid() const { return bssid_; }

  /// Sends an application MSDU to the AP over the protected link.
  void send_msdu(Bytes msdu);

  /// Installs an already-established link (see
  /// ApRole::install_established_client). Starts power save if enabled.
  void install_established(const MacAddress& bssid, std::uint16_t aid,
                           const crypto::Ptk& ptk);

  /// Defensive override (defense::BatteryGuard): while forced, the role
  /// suspends its own power-save machinery — no beacon wakes, and
  /// received traffic does not wake the device. The caller owns the
  /// radio's sleep state for the duration.
  void set_forced_doze(bool forced);
  bool forced_doze() const { return forced_doze_; }

 private:
  enum class Phase {
    kScanning,
    kAuthenticating,
    kAssociating,
    kHandshake,
    kEstablished,
  };

  void on_frame(const frames::Frame& frame, const phy::RxVector& rx);
  void handle_beacon(const frames::Frame& frame);
  void handle_management(const frames::Frame& frame);
  void handle_eapol(const EapolKey& msg);
  void handle_data(const frames::Frame& frame);

  // Power-save machinery.
  void note_activity();
  void consider_dozing();
  void enter_doze();
  void wake_for_beacon();
  crypto::Nonce make_nonce();

  ClientConfig config_;
  RoleContext ctx_;
  ClientStats stats_;
  Phase phase_ = Phase::kScanning;
  std::optional<MacAddress> bssid_;
  Duration beacon_interval_ = milliseconds(102);
  TimePoint last_beacon_{};

  crypto::Pmk pmk_{};
  crypto::Nonce anonce_{}, snonce_{};
  crypto::Ptk ptk_{};
  std::optional<crypto::Wpa2Session> session_;
  std::uint16_t aid_ = 0;

  bool dozing_ = false;
  bool forced_doze_ = false;
  TimePoint last_activity_{};
  std::uint64_t idle_timer_ = 0;
  bool idle_timer_armed_ = false;

  AssociatedCallback on_associated_;
  Rng rng_;
};

}  // namespace politewifi::mac
