// Shared context handed to the AP/client upper-MAC roles.
#pragma once

#include <functional>

#include "common/rng.h"
#include "mac/station.h"

namespace politewifi::mac {

/// What a role (AP or client MLME) needs from its host device.
struct RoleContext {
  Station* station = nullptr;
  MacEnvironment* env = nullptr;
  /// Puts the radio into (true) or out of (false) doze. Null when the host
  /// has no power management (mains-powered AP, unit tests).
  std::function<void(bool)> set_radio_sleep;
  /// Role-private randomness (nonces, jitter).
  Rng rng{0x9e3779b9};
};

}  // namespace politewifi::mac
