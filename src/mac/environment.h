// The service interface a MAC station needs from its host (radio + event
// loop). Production code wires this to sim::Radio; unit tests provide a
// mock, so the entire MAC state machine is testable without the simulator.
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "common/small_fn.h"
#include "frames/frame.h"
#include "phy/signal.h"

namespace politewifi::mac {

class MacEnvironment {
 public:
  virtual ~MacEnvironment() = default;

  /// Current simulation time.
  virtual TimePoint now() const = 0;

  /// One-shot timer; returns a cancellation handle. The callback type
  /// stores typical captures inline (common/small_fn.h), so arming a MAC
  /// timer — an ACK timeout per injected frame, at city scale — does not
  /// allocate.
  virtual std::uint64_t schedule(Duration delay, SmallFn fn) = 0;
  virtual void cancel(std::uint64_t timer_id) = 0;

  /// Hands a frame to the PHY for immediate transmission. The PHY/medium
  /// handles serialization, airtime and delivery; a transmission started
  /// while another station is mid-air simply collides — exactly like the
  /// real thing.
  virtual void transmit(const frames::Frame& frame,
                        const phy::TxVector& tx) = 0;

  /// Carrier sense: is energy detectable on the channel right now?
  virtual bool medium_busy() const = 0;
};

}  // namespace politewifi::mac
