#include "mac/rate_control.h"

#include <algorithm>

namespace politewifi::mac {

static_assert(ArfRateController::kLadder.size() ==
                  std::tuple_size_v<decltype(ArfTrajectory{}.dwell)>,
              "trajectory dwell array must cover the whole ladder");

ArfRateController::ArfRateController(ArfConfig config)
    : config_(config),
      index_(std::clamp(config.initial_index, 0,
                        int(kLadder.size()) - 1)) {
  trajectory_.min_index = index_;
  trajectory_.max_index = index_;
}

void ArfRateController::record_outcome() {
  ++trajectory_.outcomes;
  ++trajectory_.dwell[std::size_t(index_)];
}

void ArfRateController::record_index() {
  trajectory_.min_index = std::min(trajectory_.min_index, index_);
  trajectory_.max_index = std::max(trajectory_.max_index, index_);
}

void ArfRateController::on_success() {
  record_outcome();
  failure_streak_ = 0;
  probing_ = false;
  if (++success_streak_ >= config_.up_after &&
      index_ + 1 < int(kLadder.size())) {
    ++index_;
    success_streak_ = 0;
    probing_ = true;  // a failure right after the probe reverts it
    ++trajectory_.upshifts;
    record_index();
  }
}

void ArfRateController::on_failure() {
  record_outcome();
  success_streak_ = 0;
  const int drop_after = probing_ ? 1 : config_.down_after;
  if (++failure_streak_ >= drop_after && index_ > 0) {
    --index_;
    failure_streak_ = 0;
    ++trajectory_.downshifts;
    record_index();
  }
  probing_ = false;
}

}  // namespace politewifi::mac
