#include "mac/rate_control.h"

#include <algorithm>

namespace politewifi::mac {

ArfRateController::ArfRateController(ArfConfig config)
    : config_(config),
      index_(std::clamp(config.initial_index, 0,
                        int(kLadder.size()) - 1)) {}

void ArfRateController::on_success() {
  failure_streak_ = 0;
  probing_ = false;
  if (++success_streak_ >= config_.up_after &&
      index_ + 1 < int(kLadder.size())) {
    ++index_;
    success_streak_ = 0;
    probing_ = true;  // a failure right after the probe reverts it
  }
}

void ArfRateController::on_failure() {
  success_streak_ = 0;
  const int drop_after = probing_ ? 1 : config_.down_after;
  if (++failure_streak_ >= drop_after && index_ > 0) {
    --index_;
    failure_streak_ = 0;
  }
  probing_ = false;
}

}  // namespace politewifi::mac
