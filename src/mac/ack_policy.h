// ACK generation policy — the paper's pivot point.
//
// kPoliteHardware is what every shipping 802.11 chip does: the low-MAC
// commits to an ACK the moment the FCS passes and addr1 matches, because
// the standard gives it only one SIFS (10/16 us) to respond and a WPA2
// decode takes 200-700 us. No software, blocklist, or deauth state can
// intervene (§2.1-2.2).
//
// kValidatingMac is the *hypothetical* fixed receiver the paper argues
// cannot exist: it fully decrypts and verifies the frame before deciding
// to ACK. Because the decode cannot finish inside SIFS, its ACKs are
// always late — the transmitter's ACK timeout fires first and legitimate
// traffic collapses into retry storms. bench_sifs_ablation quantifies it.
#pragma once

#include <cstdint>

namespace politewifi::mac {

enum class AckPolicyMode : std::uint8_t {
  /// Standard-compliant: ACK any FCS-valid frame addressed to us, one
  /// SIFS after reception ends. This is the Polite WiFi behaviour.
  kPoliteHardware,

  /// Hypothetical: validate (decrypt + MIC-check) before ACKing. Fake
  /// frames are rejected — but every real frame's ACK is late.
  kValidatingMac,
};

const char* ack_policy_name(AckPolicyMode mode);

}  // namespace politewifi::mac
