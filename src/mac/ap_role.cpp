#include "mac/ap_role.h"

#include <algorithm>

namespace politewifi::mac {

ApRole::ApRole(ApConfig config, RoleContext ctx)
    : config_(std::move(config)), ctx_(ctx), rng_(ctx.rng) {
  if (!config_.fast_keys) {
    pmk_ = crypto::derive_pmk(config_.passphrase, config_.ssid);
  }
}

void ApRole::start() {
  ctx_.station->set_upper_handler(
      [this](const frames::Frame& f, const phy::RxVector& rx) {
        on_frame(f, rx);
      });
  if (config_.send_beacons) set_beaconing(true);
}

void ApRole::set_beaconing(bool on) {
  if (beaconing_ == on) return;
  beaconing_ = on;
  ++beacon_generation_;  // any in-flight beacon event becomes stale
  if (on) {
    // Jitter the first beacon so co-activated APs don't synchronize.
    const Duration offset = microseconds(static_cast<std::int64_t>(
        rng_.uniform(0.0, to_microseconds(config_.beacon_interval))));
    const std::uint64_t gen = beacon_generation_;
    ctx_.env->schedule(offset, [this, gen] {
      if (gen == beacon_generation_) send_beacon();
    });
  }
}

frames::Beacon ApRole::beacon_body() const {
  frames::Beacon b;
  b.timestamp_us = static_cast<std::uint64_t>(
      to_microseconds(ctx_.env->now().time_since_epoch()));
  b.beacon_interval = static_cast<std::uint16_t>(
      to_microseconds(config_.beacon_interval) / 1024.0);
  b.capability.ess = true;
  b.capability.privacy = true;
  b.elements.set_ssid(config_.ssid);
  b.elements.set_supported_rates({0x8c, 0x12, 0x98, 0x24, 0xb0, 0x48, 0x60, 0x6c});
  b.elements.set_channel(static_cast<std::uint8_t>(config_.channel));
  b.elements.set_rsn_wpa2_psk();
  return b;
}

void ApRole::send_beacon() {
  if (!beaconing_) return;
  frames::Beacon b = beacon_body();
  frames::ElementList::Tim tim;
  for (const auto& [mac, state] : clients_) {
    if (state.dozing && !state.buffered_msdus.empty()) {
      tim.buffered_aids.push_back(state.aid);
    }
  }
  b.elements.set_tim(tim);

  frames::Frame beacon =
      frames::make_beacon(bssid(), b, ctx_.station->next_sequence());
  ctx_.station->send(std::move(beacon), config_.mgmt_rate);
  ++stats_.beacons_sent;
  const std::uint64_t gen = beacon_generation_;
  ctx_.env->schedule(config_.beacon_interval, [this, gen] {
    if (gen == beacon_generation_) send_beacon();
  });
}

void ApRole::on_frame(const frames::Frame& frame, const phy::RxVector&) {
  const MacAddress sender = frame.addr2;

  // Software blocklist: §2.1's failed countermeasure. The drop happens
  // here, in software — the ACK already happened in the low-MAC.
  if (is_blocked(sender)) {
    ++stats_.software_drops_blocked;
    return;
  }

  if (frame.fc.is_management()) {
    handle_management(frame);
  } else if (frame.fc.is_data()) {
    handle_data(frame);
  } else if (frame.fc.is_subtype(frames::ControlSubtype::kPsPoll)) {
    handle_ps_poll(frame);
  }
}

void ApRole::handle_management(const frames::Frame& frame) {
  using frames::ManagementSubtype;
  const MacAddress sta = frame.addr2;

  if (frame.fc.is_subtype(ManagementSubtype::kProbeRequest)) {
    const auto req = frames::ProbeRequest::from_body(frame.body);
    if (!req) return;
    const auto requested = req->elements.ssid();
    if (requested && !requested->empty() && *requested != config_.ssid) return;
    ctx_.station->send(
        frames::make_probe_response(sta, bssid(), beacon_body(),
                                    ctx_.station->next_sequence()),
        config_.mgmt_rate);
    ++stats_.probe_responses;
    return;
  }

  if (frame.fc.is_subtype(ManagementSubtype::kAuthentication)) {
    const auto auth = frames::Authentication::from_body(frame.body);
    if (!auth || auth->algorithm != 0 || auth->sequence != 1) return;
    clients_[sta];  // phase kAuthenticated
    ctx_.station->send(
        frames::make_authentication(sta, bssid(), bssid(),
                                    {.algorithm = 0, .sequence = 2, .status = 0},
                                    ctx_.station->next_sequence()),
        config_.mgmt_rate);
    return;
  }

  if (frame.fc.is_subtype(ManagementSubtype::kAssocRequest)) {
    auto it = clients_.find(sta);
    if (it == clients_.end()) return;  // must authenticate first
    const auto req = frames::AssociationRequest::from_body(frame.body);
    if (!req) return;
    ClientState& state = it->second;
    if (state.aid == 0) state.aid = next_aid_++;
    state.phase = Phase::kAssociated;
    ++stats_.associations;

    frames::AssociationResponse resp;
    resp.capability.privacy = true;
    resp.status = 0;
    resp.aid = state.aid;
    ctx_.station->send(frames::make_assoc_response(
                           sta, bssid(), resp, ctx_.station->next_sequence()),
                       config_.mgmt_rate);

    // Kick off the 4-way handshake: message 1 carries the ANonce.
    state.anonce = make_nonce();
    state.phase = Phase::kHandshake;
    EapolKey msg1;
    msg1.message_number = 1;
    msg1.nonce = state.anonce;
    ctx_.station->send(frames::make_data_from_ds(bssid(), bssid(), sta,
                                                 msg1.serialize(),
                                                 ctx_.station->next_sequence()),
                       config_.data_rate);
    return;
  }

  if (frame.fc.is_subtype(ManagementSubtype::kDeauthentication) ||
      frame.fc.is_subtype(ManagementSubtype::kDisassociation)) {
    clients_.erase(sta);
    return;
  }
}

void ApRole::handle_data(const frames::Frame& frame) {
  const MacAddress sta = frame.addr2;
  auto it = clients_.find(sta);

  // Track the PM bit of genuine clients (power-save signalling).
  if (it != clients_.end() && it->second.phase == Phase::kEstablished) {
    const bool was_dozing = it->second.dozing;
    it->second.dozing = frame.fc.power_management;
    if (was_dozing && !it->second.dozing) deliver_buffered(sta, it->second);
  }

  // EAPOL handshake frames are unencrypted data.
  if (!frame.fc.protected_frame && EapolKey::is_eapol(frame.body)) {
    if (const auto msg = EapolKey::deserialize(frame.body); msg && it != clients_.end()) {
      handle_eapol(sta, *msg);
    }
    return;
  }

  if (it == clients_.end() || it->second.phase != Phase::kEstablished) {
    // Class-3 frame from a non-associated STA — the attacker's fake
    // frames land here. Software notices something is wrong...
    ++stats_.software_drops_unknown;
    if (config_.deauth_unknown_senders) maybe_deauth_stranger(sta);
    return;
  }

  ClientState& state = it->second;
  if (frame.fc.protected_frame) {
    frames::Frame copy = frame;
    if (state.session && state.session->unprotect(copy)) {
      ++stats_.msdus_received;
      // A real AP would now bridge the MSDU; the simulator's workloads
      // are attack-focused, so counting delivery suffices.
    } else {
      ++stats_.decrypt_failures;
    }
    return;
  }
  // Unprotected data from an established client (e.g. null keep-alives):
  // nothing to deliver.
}

void ApRole::maybe_deauth_stranger(const MacAddress& sender) {
  const TimePoint now = ctx_.env->now();
  const auto it = last_deauth_.find(sender);
  if (it != last_deauth_.end() &&
      now - it->second < config_.deauth_min_interval) {
    return;
  }
  last_deauth_[sender] = now;
  // Figure 3: the paper's capture shows deauth *triplets* with the same
  // sequence number. That is ordinary MAC retransmission: the "client"
  // being deauthed is a spoofed address that never ACKs, so the unicast
  // deauth is retried until the (per-frame) retry limit — deauth_burst —
  // is exhausted. We simply send one deauth through the DCF path and let
  // the retry machinery produce the burst.
  frames::Frame deauth = frames::make_deauth(
      sender, bssid(), bssid(),
      frames::ReasonCode::kClass3FrameFromNonassocSta,
      ctx_.station->next_sequence());
  ctx_.station->send(std::move(deauth), config_.mgmt_rate, {},
                     config_.deauth_burst);
  ++stats_.deauths_sent;
}

void ApRole::handle_eapol(const MacAddress& sta, const EapolKey& msg) {
  auto it = clients_.find(sta);
  if (it == clients_.end()) return;
  ClientState& state = it->second;

  if (msg.message_number == 2 && state.phase == Phase::kHandshake) {
    // Derive the PTK from both nonces; verify the supplicant's MIC.
    state.ptk = config_.fast_keys
                    ? crypto::derive_fast_ptk(bssid(), sta)
                    : crypto::derive_ptk(pmk_, bssid(), sta, state.anonce,
                                         msg.nonce);
    if (!msg.verify_mic(state.ptk.kck)) return;  // wrong passphrase

    EapolKey msg3;
    msg3.message_number = 3;
    msg3.nonce = state.anonce;
    msg3.install_flag = true;
    msg3.mic = EapolKey::compute_mic(state.ptk.kck, msg3);
    ctx_.station->send(frames::make_data_from_ds(bssid(), bssid(), sta,
                                                 msg3.serialize(),
                                                 ctx_.station->next_sequence()),
                       config_.data_rate);
    return;
  }

  if (msg.message_number == 4 && state.phase == Phase::kHandshake) {
    if (!msg.verify_mic(state.ptk.kck)) return;
    state.session.emplace(state.ptk);
    state.phase = Phase::kEstablished;
    ++stats_.handshakes_completed;
    return;
  }
}

void ApRole::handle_ps_poll(const frames::Frame& frame) {
  auto it = clients_.find(frame.addr2);
  if (it == clients_.end()) return;
  deliver_buffered(frame.addr2, it->second);
}

void ApRole::deliver_buffered(const MacAddress& client, ClientState& state) {
  while (!state.buffered_msdus.empty()) {
    Bytes msdu = std::move(state.buffered_msdus.front());
    state.buffered_msdus.pop_front();
    frames::Frame f = frames::make_data_from_ds(
        bssid(), bssid(), client, std::move(msdu),
        ctx_.station->next_sequence());
    f.fc.more_data = !state.buffered_msdus.empty();
    if (state.session) state.session->protect(f);
    ctx_.station->send(std::move(f), config_.data_rate);
    ++stats_.ps_delivered;
  }
}

void ApRole::send_to_client(const MacAddress& client, Bytes msdu) {
  auto it = clients_.find(client);
  if (it == clients_.end() || it->second.phase != Phase::kEstablished) return;
  ClientState& state = it->second;
  if (state.dozing) {
    state.buffered_msdus.push_back(std::move(msdu));
    ++stats_.ps_buffered;
    return;
  }
  frames::Frame f = frames::make_data_from_ds(
      bssid(), bssid(), client, std::move(msdu), ctx_.station->next_sequence());
  if (state.session) state.session->protect(f);
  ctx_.station->send(std::move(f), config_.data_rate);
}

void ApRole::install_established_client(const MacAddress& sta,
                                        const crypto::Ptk& ptk) {
  ClientState& state = clients_[sta];
  if (state.aid == 0) state.aid = next_aid_++;
  state.ptk = ptk;
  state.session.emplace(ptk);
  state.phase = Phase::kEstablished;
  ++stats_.associations;
  ++stats_.handshakes_completed;
}

void ApRole::disconnect_client(const MacAddress& client,
                               frames::ReasonCode reason) {
  auto it = clients_.find(client);
  if (it == clients_.end()) return;
  frames::Frame deauth = frames::make_deauth(
      client, bssid(), bssid(), reason, ctx_.station->next_sequence());
  if (config_.pmf && it->second.session) {
    it->second.session->protect(deauth);
  }
  ctx_.station->send(std::move(deauth), config_.mgmt_rate);
  ++stats_.deauths_sent;
  clients_.erase(it);
}

bool ApRole::is_established(const MacAddress& client) const {
  const auto it = clients_.find(client);
  return it != clients_.end() && it->second.phase == Phase::kEstablished;
}

crypto::Nonce ApRole::make_nonce() {
  crypto::Nonce n;
  for (auto& b : n) b = static_cast<std::uint8_t>(rng_.uniform_int(0, 255));
  return n;
}

}  // namespace politewifi::mac
