// Access-point upper MAC: beaconing, association, WPA2 handshake,
// power-save buffering — and the Figure 3 deauth-on-unknown behaviour.
//
// Everything here is *software*, running far above the low-MAC that sends
// ACKs. The role can detect the attacker, deauth it, even blocklist its
// MAC — and the hardware below keeps ACKing regardless, because by the
// time this code sees a frame the ACK left one SIFS after the frame did.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "crypto/wpa2.h"
#include "frames/data.h"
#include "frames/management.h"
#include "mac/eapol.h"
#include "mac/role.h"

namespace politewifi::mac {

struct ApConfig {
  std::string ssid = "PrivateNet";
  std::string passphrase = "correct horse battery staple";
  phy::Band band = phy::Band::k2_4GHz;
  int channel = 6;
  Duration beacon_interval = milliseconds(102);  // ~100 TU
  bool send_beacons = true;

  /// Figure 3: some APs classify a stranger's class-3 frames as a
  /// malfunctioning client and fire deauthentication bursts at it.
  bool deauth_unknown_senders = false;
  /// Transmissions per deauth (initial + retries). The spoofed address
  /// never ACKs, so the MAC retransmits with the same sequence number —
  /// the paper's capture shows triplets, hence 3.
  int deauth_burst = 3;
  Duration deauth_min_interval = milliseconds(60);  // per-sender rate limit

  /// Skip the expensive PBKDF2 when standing up thousands of BSSes for
  /// the wardriving survey (keys still flow through the PRF/CCMP path).
  bool fast_keys = false;

  /// 802.11w: protect deauth/disassoc to established clients.
  bool pmf = false;

  phy::PhyRate mgmt_rate = phy::kOfdm6;
  phy::PhyRate data_rate = phy::kOfdm24;
};

struct ApStats {
  std::uint64_t beacons_sent = 0;
  std::uint64_t probe_responses = 0;
  std::uint64_t deauths_sent = 0;
  std::uint64_t associations = 0;
  std::uint64_t handshakes_completed = 0;
  std::uint64_t msdus_received = 0;       // decrypted uplink payloads
  std::uint64_t decrypt_failures = 0;     // protected frames that fail MIC
  std::uint64_t software_drops_blocked = 0;  // frames from blocklisted MACs
  std::uint64_t software_drops_unknown = 0;  // class-3 from strangers
  std::uint64_t ps_buffered = 0;
  std::uint64_t ps_delivered = 0;
};

class ApRole {
 public:
  ApRole(ApConfig config, RoleContext ctx);

  /// Begins beaconing and frame handling. Installs itself as the
  /// station's upper handler.
  void start();

  /// Pauses/resumes the beacon loop. The wardriving city uses this to
  /// keep only the APs near the survey vehicle on air.
  void set_beaconing(bool on);
  bool beaconing() const { return beaconing_; }

  const ApConfig& config() const { return config_; }
  const ApStats& stats() const { return stats_; }
  const MacAddress& bssid() const { return ctx_.station->address(); }

  /// §2.1's last-ditch countermeasure: software-blocklist a MAC. The role
  /// will drop its frames in software — and the experiment shows the
  /// hardware ACKs anyway.
  void block_mac(const MacAddress& mac) { blocklist_.insert(mac); }
  bool is_blocked(const MacAddress& mac) const {
    return blocklist_.count(mac) > 0;
  }

  /// Sends an MSDU to an associated client (CCMP-protected). Buffers it
  /// if the client is dozing, to be released by PS-Poll.
  void send_to_client(const MacAddress& client, Bytes msdu);

  /// Administratively disconnects an established client. With pmf the
  /// deauth is CCMP-protected so the client can authenticate it.
  void disconnect_client(const MacAddress& client,
                         frames::ReasonCode reason =
                             frames::ReasonCode::kDeauthLeaving);

  bool is_established(const MacAddress& client) const;
  std::size_t client_count() const { return clients_.size(); }

  /// The PMK in use (exposed for tests that cross-check key derivation).
  const crypto::Pmk& pmk() const { return pmk_; }

  /// Installs a client as already-established with the given PTK, skipping
  /// the over-the-air handshake. Population-scale scenarios (the Table 2
  /// city) use this; the client side must install the same PTK.
  void install_established_client(const MacAddress& sta,
                                  const crypto::Ptk& ptk);

 private:
  enum class Phase { kAuthenticated, kAssociated, kHandshake, kEstablished };

  struct ClientState {
    Phase phase = Phase::kAuthenticated;
    std::uint16_t aid = 0;
    crypto::Nonce anonce{};
    crypto::Ptk ptk{};
    std::optional<crypto::Wpa2Session> session;
    bool dozing = false;
    std::deque<Bytes> buffered_msdus;
  };

  void on_frame(const frames::Frame& frame, const phy::RxVector& rx);
  void handle_management(const frames::Frame& frame);
  void handle_data(const frames::Frame& frame);
  void handle_ps_poll(const frames::Frame& frame);
  void handle_eapol(const MacAddress& sta, const EapolKey& msg);
  void maybe_deauth_stranger(const MacAddress& sender);
  void send_beacon();
  void deliver_buffered(const MacAddress& client, ClientState& state);
  frames::Beacon beacon_body() const;
  crypto::Nonce make_nonce();

  ApConfig config_;
  RoleContext ctx_;
  ApStats stats_;
  crypto::Pmk pmk_{};
  std::map<MacAddress, ClientState> clients_;
  std::set<MacAddress> blocklist_;
  std::map<MacAddress, TimePoint> last_deauth_;
  std::uint16_t next_aid_ = 1;
  bool beaconing_ = false;
  std::uint64_t beacon_generation_ = 0;  // invalidates stale beacon events
  Rng rng_;
};

}  // namespace politewifi::mac
