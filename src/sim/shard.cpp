#include "sim/shard.h"

#include <limits>

#include "common/check.h"
#include "obs/metrics.h"

namespace politewifi::sim {

ShardExecutor::ShardExecutor(std::vector<Scheduler*> shards)
    : shards_(std::move(shards)) {
  PW_CHECK(!shards_.empty(), "ShardExecutor needs at least one scheduler");
  for (const Scheduler* s : shards_) {
    PW_CHECK(s != nullptr, "null shard scheduler");
  }
}

bool ShardExecutor::pick_next(std::size_t* shard, TimePoint* at) {
  std::size_t best = shards_.size();
  TimePoint best_at{};
  std::uint64_t best_seq = 0;
  TimePoint head_min{Duration{std::numeric_limits<std::int64_t>::max()}};
  TimePoint head_max{Duration{std::numeric_limits<std::int64_t>::min()}};
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    TimePoint head_at{};
    std::uint64_t head_seq = 0;
    if (!shards_[s]->peek_next(&head_at, &head_seq)) continue;
    head_min = std::min(head_min, head_at);
    head_max = std::max(head_max, head_at);
    // The shared sequence counter breaks same-instant ties exactly as
    // the single heap would: scheduling order, regardless of shard.
    if (best == shards_.size() || head_at < best_at ||
        (head_at == best_at && head_seq < best_seq)) {
      best = s;
      best_at = head_at;
      best_seq = head_seq;
    }
  }
  if (best == shards_.size()) return false;
  if (best != current_) {
    PW_COUNT(kShardSyncStalls);
    PW_GAUGE_MAX(kShardSkewNs, (head_max - head_min).count());
    current_ = best;
  }
  *shard = best;
  *at = best_at;
  return true;
}

void ShardExecutor::run_until(TimePoint until) {
  std::size_t shard = 0;
  TimePoint at{};
  while (pick_next(&shard, &at)) {
    if (at > until) break;
    shards_[shard]->run_one_bounded(until);
  }
  shards_.front()->advance_clock(until);
}

void ShardExecutor::run_all() {
  std::size_t shard = 0;
  TimePoint at{};
  while (pick_next(&shard, &at)) {
    shards_[shard]->run_one_bounded(at);
  }
}

std::uint64_t ShardExecutor::events_executed() const {
  std::uint64_t total = 0;
  for (const Scheduler* s : shards_) total += s->events_executed();
  return total;
}

}  // namespace politewifi::sim
