// A device: radio + MAC station + optional upper-MAC role + metadata.
#pragma once

#include <memory>
#include <string>

#include "mac/ap_role.h"
#include "mac/client_role.h"
#include "mac/station.h"
#include "sim/radio.h"

namespace politewifi::sim {

enum class DeviceKind : std::uint8_t {
  kAccessPoint,
  kClient,     // laptop/phone/tablet
  kIot,        // battery-operated sensor-class device
  kAttacker,   // injection dongle / ESP32 rig
  kSniffer,
};

const char* device_kind_name(DeviceKind kind);

struct DeviceInfo {
  std::string name;       // "victim-tablet"
  std::string vendor;     // OUI vendor, e.g. "Apple"
  std::string chipset;    // "Intel AC 3160"
  std::string standard;   // "11ac"
  DeviceKind kind = DeviceKind::kClient;
};

class Device {
 public:
  Device(Medium& medium, Scheduler& scheduler, DeviceInfo info,
         mac::MacConfig mac_config, RadioConfig radio_config,
         std::uint64_t seed);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceInfo& info() const { return info_; }
  const MacAddress& address() const { return station_.address(); }
  Radio& radio() { return radio_; }
  const Radio& radio() const { return radio_; }
  mac::Station& station() { return station_; }
  const mac::Station& station() const { return station_; }

  /// Attaches an AP role (also starts it). At most one role per device.
  mac::ApRole& make_ap(mac::ApConfig config);

  /// Attaches a client role (also starts it).
  mac::ClientRole& make_client(mac::ClientConfig config);

  mac::ApRole* ap() { return ap_.get(); }
  mac::ClientRole* client() { return client_.get(); }

 private:
  mac::RoleContext role_context();

  DeviceInfo info_;
  Radio radio_;
  mac::Station station_;
  Rng rng_;
  std::unique_ptr<mac::ApRole> ap_;
  std::unique_ptr<mac::ClientRole> client_;
};

}  // namespace politewifi::sim
