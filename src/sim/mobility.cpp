#include "sim/mobility.h"

#include <cmath>

namespace politewifi::sim {

WaypointMover::WaypointMover(Radio& radio, Scheduler& scheduler,
                             std::vector<Position> route, double speed_mps,
                             Duration tick)
    : radio_(radio),
      scheduler_(scheduler),
      route_(std::move(route)),
      speed_mps_(speed_mps),
      tick_(tick) {}

void WaypointMover::start() {
  if (!route_.empty()) {
    radio_.set_position(route_.front());
    radio_.update_shard_horizon(speed_mps_);
    next_waypoint_ = 1;
  }
  if (next_waypoint_ >= route_.size()) {
    finished_ = true;
    return;
  }
  scheduler_.schedule_in(tick_, [this] { step(); });
}

void WaypointMover::step() {
  if (finished_) return;
  double budget = speed_mps_ * to_seconds(tick_);
  Position pos = radio_.position();

  while (budget > 0.0 && next_waypoint_ < route_.size()) {
    const Position& target = route_[next_waypoint_];
    const double dist = distance(pos, target);
    if (dist <= budget) {
      pos = target;
      budget -= dist;
      travelled_m_ += dist;
      ++next_waypoint_;
    } else {
      const double f = budget / dist;
      pos.x += (target.x - pos.x) * f;
      pos.y += (target.y - pos.y) * f;
      travelled_m_ += budget;
      budget = 0.0;
    }
  }
  radio_.set_position(pos);
  // Re-arm the cell-exit horizon so the medium can skip shard-migration
  // checks until this radio could plausibly leave its super-cell.
  radio_.update_shard_horizon(speed_mps_);

  if (next_waypoint_ >= route_.size()) {
    finished_ = true;
    return;
  }
  scheduler_.schedule_in(tick_, [this] { step(); });
}

}  // namespace politewifi::sim
