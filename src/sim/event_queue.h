// Discrete-event scheduler — the simulator's heartbeat.
//
// A single-threaded min-heap of timestamped callbacks. All 802.11 timing
// (SIFS turnarounds, ACK timeouts, beacon intervals, injection schedules,
// sleep cycles) is expressed as events on this queue, giving the
// nanosecond determinism the protocol's argument depends on.
//
// Engine notes (the city-scale hot path):
//  - Callbacks are SmallFn, not std::function: captures up to 128 bytes
//    live inline, so scheduling an event performs zero heap allocations.
//  - Callback storage is pooled. The heap itself holds 16-byte
//    {time, seq, slot} entries; the callable lives in a recycled slot,
//    so heap sift-ups move trivial structs instead of closures.
//  - Cancellation is lazy and bounded: cancel() destroys the callback
//    immediately (dropping captured buffers) and leaves a tombstone that
//    the pop loop reclaims; when tombstones outnumber live events the
//    heap is swept in one compaction pass. Nothing grows with the number
//    of cancels — the old unordered_set of cancelled ids, which leaked
//    one entry for every cancel that raced an already-fired event, is
//    gone.
//  - Sharded medium support: several Schedulers can share one logical
//    timebase (clock + FIFO sequence counter) via adopt_timebase(). The
//    union of their heaps ordered by the shared (time, seq) key is then
//    exactly the single heap partitioned, which is what makes the
//    sharded medium byte-identical to the unsharded one (DESIGN.md,
//    "Sharded medium & conservative sync"). A lone scheduler points the
//    indirection at its own members, so the common case pays one
//    pointer hop and nothing else.
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/small_fn.h"

namespace politewifi::sim {

struct SchedulerConfig {
  /// Sweep tombstones out of the heap in one O(n) pass whenever they
  /// outnumber live events (amortized O(1) per cancel). Off = pop-time
  /// reclamation only, the pre-compaction behaviour: cancelled events
  /// parked far in the future are never reclaimed, so heap and pool grow
  /// with cancel churn. Compaction only recycles storage — event
  /// execution order is identical either way (EventIds are opaque and
  /// slot reuse is invisible to callers), which
  /// SchedulerPool.CompactionTogglePreservesOutcome property-tests.
  bool compact_tombstones = true;
};

class Scheduler {
 public:
  using EventId = std::uint64_t;
  using Callback = SmallFn;

  Scheduler() = default;
  explicit Scheduler(SchedulerConfig config) : config_(config) {}

  // now_p_/seq_p_ may point into this object — copying or moving would
  // leave the twin aliasing the original's timebase.
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  TimePoint now() const { return *now_p_; }

  /// Schedules `fn` at absolute time `at` (>= now). Events scheduled for
  /// the same instant fire in scheduling order (FIFO).
  EventId schedule_at(TimePoint at, Callback fn);

  /// Schedules `fn` after `delay`.
  EventId schedule_in(Duration delay, Callback fn) {
    return schedule_at(now() + std::max(delay, Duration::zero()),
                       std::move(fn));
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown id
  /// is a harmless no-op (timers race with the events that obsolete them):
  /// ids carry the slot's generation, so a stale id can never hit an
  /// event that recycled the same pool slot.
  void cancel(EventId id);

  /// Runs events with time <= `until`, then advances the clock to `until`.
  void run_until(TimePoint until);

  /// Convenience: run for `duration` of simulated time.
  void run_for(Duration duration) { run_until(now_ + duration); }

  /// Runs until the queue drains (use with care — beaconing never drains).
  void run_all();

  /// Executes the single earliest event, if any. Returns false when empty.
  bool run_one();

  // --- shared timebase (sharded medium) ------------------------------------

  /// Redirects this scheduler's clock and FIFO sequence counter to
  /// `primary`'s, so events scheduled on either queue share one global
  /// (time, seq) order. Must be called before any event is scheduled
  /// here; `primary` must outlive this scheduler. Irreversible by design
  /// (a shard never leaves its timebase mid-run).
  void adopt_timebase(Scheduler& primary);

  /// Reports the (time, seq) key of the earliest live event without
  /// running it, lazily reclaiming any tombstones sitting at the front.
  /// Returns false when no live event is queued.
  bool peek_next(TimePoint* at, std::uint64_t* seq);

  /// Runs the single earliest live event with time <= `limit` without
  /// advancing the clock past it. Returns false if none qualifies.
  /// The ShardExecutor's merge loop: peek every shard, run the global
  /// minimum here.
  bool run_one_bounded(TimePoint limit) {
    return pop_one(/*bounded=*/true, limit);
  }

  /// Advances the (possibly shared) clock to `t` if it lags. The
  /// executor calls this once per window, after the merge loop drains.
  void advance_clock(TimePoint t) { *now_p_ = std::max(*now_p_, t); }

  /// Live (non-cancelled) events still queued.
  std::size_t pending() const { return heap_.size() - tombstones_; }
  std::uint64_t events_executed() const { return executed_; }

  // --- engine introspection (tests and the event-engine bench) -------------

  /// Pool slots ever allocated: the scheduler's high-water mark of
  /// simultaneously pending events. Stays flat under schedule/cancel churn.
  std::size_t pool_slots() const { return pool_.size(); }
  /// Cancelled events awaiting reclamation at pop time.
  std::size_t tombstones() const { return tombstones_; }

  /// Invariant auditor: verifies the min-heap order on (time, seq), that
  /// every heap entry references a distinct armed slot, that the
  /// tombstone counter matches the cancelled entries actually in the
  /// heap, that cancelled slots have already dropped their callbacks,
  /// and that the free list and the heap partition the pool exactly.
  /// PW_CHECK-fails (fatal) on the first violation; compiled into every
  /// build so tests can probe it, and invoked automatically every
  /// `kAuditPeriod` executed events when PW_AUDIT_ENABLED. O(pool).
  void audit() const;

 private:
  friend struct SchedulerTestPeer;  // corruption-injection tests

  static constexpr std::uint64_t kAuditPeriod = 1024;
  struct HeapEntry {
    TimePoint at;
    std::uint64_t seq;   // FIFO tiebreak among simultaneous events
    std::uint32_t slot;  // index into pool_
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      // Min-heap on (time, seq): FIFO among simultaneous events.
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };
  struct Slot {
    Callback fn;
    std::uint32_t generation = 0;  // bumped on release; validates EventIds
    bool armed = false;            // true while an event occupies the slot
    bool cancelled = false;        // tombstone: reclaim at pop, don't run
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    // Slot is offset by one so id 0 is never produced (callers use 0 as
    // a "no timer" sentinel).
    return (std::uint64_t(slot) + 1) << 32 | generation;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);
  /// Sweeps every tombstone out of the heap and re-heapifies. Called when
  /// tombstones outnumber live events; amortized O(1) per cancel.
  void compact();
  /// Pops and runs the earliest live event with at <= limit, reclaiming
  /// any tombstones on the way. Returns false if none qualifies.
  bool pop_one(bool bounded, TimePoint limit);

  SchedulerConfig config_;
  TimePoint now_ = kSimStart;
  std::uint64_t next_seq_ = 0;
  // Timebase indirection: a standalone scheduler owns its clock and
  // sequence counter; a shard adopted into a shared timebase reads and
  // writes the primary's instead (see adopt_timebase()).
  TimePoint* now_p_ = &now_;
  std::uint64_t* seq_p_ = &next_seq_;
  std::uint64_t executed_ = 0;
  std::size_t tombstones_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> pool_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace politewifi::sim
