// Discrete-event scheduler — the simulator's heartbeat.
//
// A single-threaded min-heap of timestamped callbacks. All 802.11 timing
// (SIFS turnarounds, ACK timeouts, beacon intervals, injection schedules,
// sleep cycles) is expressed as events on this queue, giving the
// nanosecond determinism the protocol's argument depends on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/clock.h"

namespace politewifi::sim {

class Scheduler {
 public:
  using EventId = std::uint64_t;

  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now).
  EventId schedule_at(TimePoint at, std::function<void()> fn);

  /// Schedules `fn` after `delay`.
  EventId schedule_in(Duration delay, std::function<void()> fn) {
    return schedule_at(now_ + std::max(delay, Duration::zero()), std::move(fn));
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown id
  /// is a harmless no-op (timers race with the events that obsolete them).
  void cancel(EventId id) { cancelled_.insert(id); }

  /// Runs events with time <= `until`, then advances the clock to `until`.
  void run_until(TimePoint until);

  /// Convenience: run for `duration` of simulated time.
  void run_for(Duration duration) { run_until(now_ + duration); }

  /// Runs until the queue drains (use with care — beaconing never drains).
  void run_all();

  /// Executes the single earliest event, if any. Returns false when empty.
  bool run_one();

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    TimePoint at;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      // Min-heap on (time, id): FIFO among simultaneous events.
      return a.at != b.at ? a.at > b.at : a.id > b.id;
    }
  };

  bool dispatch(Event& ev);

  TimePoint now_ = kSimStart;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace politewifi::sim
