// Simple mobility: moves a radio along a waypoint route at constant speed.
// The wardriving survey (§3) drives the attacker's vehicle with this.
#pragma once

#include <vector>

#include "sim/radio.h"

namespace politewifi::sim {

class WaypointMover {
 public:
  /// Moves `radio` along `route` at `speed_mps`, updating the position
  /// every `tick`. Movement starts on start().
  WaypointMover(Radio& radio, Scheduler& scheduler,
                std::vector<Position> route, double speed_mps,
                Duration tick = milliseconds(100));

  void start();

  bool finished() const { return finished_; }
  double distance_travelled() const { return travelled_m_; }

 private:
  void step();

  Radio& radio_;
  Scheduler& scheduler_;
  std::vector<Position> route_;
  double speed_mps_;
  Duration tick_;
  std::size_t next_waypoint_ = 0;
  double travelled_m_ = 0.0;
  bool finished_ = false;
};

}  // namespace politewifi::sim
