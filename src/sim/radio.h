// A device's radio: the glue between MAC station, medium and energy meter.
//
// Radio implements mac::MacEnvironment, so the Station's timing decisions
// (SIFS ACKs, DCF backoff, timeouts) execute on the simulator's scheduler,
// and every transmit/receive/sleep transition is charged to the energy
// meter — which is how Figure 6 falls out of the mechanics instead of
// being hard-coded.
#pragma once

#include <string>

#include "common/check.h"
#include "frames/frame_template.h"
#include "frames/serializer.h"
#include "mac/environment.h"
#include "mac/station.h"
#include "sim/energy_model.h"
#include "sim/medium.h"

namespace politewifi::sim {

struct RadioConfig {
  phy::Band band = phy::Band::k2_4GHz;
  int channel = 6;
  Position position{};
  PowerProfile power = PowerProfile::mains_powered();
  /// Capture CSI on reception (costs CPU; enabled on attacker/sensor
  /// radios, off for the thousands of survey victims).
  bool capture_csi = false;
};

class Radio final : public mac::MacEnvironment {
 public:
  Radio(Medium& medium, Scheduler& scheduler, RadioConfig config);
  ~Radio() override;

  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  // --- mac::MacEnvironment ---------------------------------------------------

  TimePoint now() const override { return scheduler_->now(); }
  /// Timer ids carry the issuing shard in the top byte so cancel() can
  /// route to the scheduler that actually holds the event even after the
  /// radio migrated shards (each shard's slot/generation space is
  /// private, so a raw id from shard A could falsely hit a live event on
  /// shard B). With shards = 1 the tag is 0 and ids are bit-identical to
  /// the untagged ones.
  std::uint64_t schedule(Duration delay, SmallFn fn) override {
    const std::uint64_t raw = scheduler_->schedule_in(delay, std::move(fn));
    PW_DCHECK(raw >> kShardIdShift == 0,
              "event id overflows into the shard tag byte");
    return raw | std::uint64_t{shard_} << kShardIdShift;
  }
  void cancel(std::uint64_t timer_id) override {
    if (timer_id == 0) return;
    medium_.shard_scheduler(timer_id >> kShardIdShift)
        .cancel(timer_id & ((std::uint64_t{1} << kShardIdShift) - 1));
  }
  void transmit(const frames::Frame& frame, const phy::TxVector& tx) override;
  bool medium_busy() const override { return medium_.busy_for(*this); }

  // --- Medium-facing ----------------------------------------------------------

  /// Called by the medium when a PPDU addressed through the ether has
  /// finished arriving intact enough to hand to the MAC.
  void deliver(const Bytes& ppdu, const phy::RxVector& rx);

  bool transmitting_during(TimePoint start, TimePoint end) const {
    return tx_since_ < end && tx_until_ > start;
  }

  // --- Host-facing -------------------------------------------------------------

  void set_station(mac::Station* station) { station_ = station; }
  mac::Station* station() { return station_; }

  /// Doze control (roles call this through RoleContext::set_radio_sleep).
  void set_sleeping(bool sleeping);
  bool sleeping() const { return sleeping_; }

  const RadioConfig& config() const { return config_; }
  const Position& position() const { return position_; }

  /// The quantized RF anchor all physics sees (path loss, propagation
  /// delay, spatial index, shard homing). Tracks position() exactly when
  /// MediumConfig::position_quantum_m is 0; otherwise it snaps to the
  /// true position only once the radio has drifted more than the quantum
  /// away, so a mover's sub-quantum steps stop invalidating cached link
  /// budgets (see MediumConfig::position_quantum_m).
  const Position& rf_position() const { return rf_position_; }

  /// Moves the radio. Updates the medium's spatial index and invalidates
  /// the cached link budgets involving this radio.
  void set_position(const Position& p);

  /// Tells the medium how fast this radio moves so it can compute the
  /// cell-exit horizon: the earliest time the radio could leave its
  /// current shard's super-cell. Shard-migration checks are skipped
  /// until then (a pure optimization — any assignment is byte-identical
  /// under the shared-timebase merge, see DESIGN.md).
  void update_shard_horizon(double speed_mps);

  /// Retunes the radio (survey rigs hop channels). Takes effect for the
  /// next PPDU; an in-flight reception on the old channel is lost, which
  /// is exactly what real retuning does.
  void set_channel(int channel);

  double frequency_hz() const {
    return phy::channel_frequency_hz(config_.band, config_.channel);
  }

  EnergyMeter& energy() { return energy_; }
  const EnergyMeter& energy() const { return energy_; }

  /// Stable identity for deterministic per-link randomness. Allocated by
  /// the owning medium in attach order, so independent simulations (e.g.
  /// sweep-runner workers) draw identical per-link randomness no matter
  /// how many run concurrently in one process.
  std::uint64_t id() const { return id_; }

  /// This radio's outgoing frame-template cache (introspection: the
  /// pipeline bench and tests read its hit/patch counters).
  const frames::FrameTemplateCache& tx_template_cache() const {
    return tx_templates_;
  }

 private:
  friend class Medium;
  friend struct MediumTestPeer;  // corruption-injection tests

  static constexpr int kShardIdShift = 56;

  Medium& medium_;
  /// The scheduler of the shard this radio is homed on; rebound by the
  /// medium when the radio migrates (all shard schedulers share one
  /// timebase, so now() is shard-independent).
  Scheduler* scheduler_;
  RadioConfig config_;
  Position position_;
  Position rf_position_;  // quantized anchor; see rf_position()
  mac::Station* station_ = nullptr;
  EnergyMeter energy_;
  /// Serialize-once/patch-seq cache for this radio's outgoing frames
  /// (used when MediumConfig.frame_templates is on).
  frames::FrameTemplateCache tx_templates_;
  bool sleeping_ = false;
  TimePoint tx_since_{}, tx_until_{};
  std::uint64_t rx_nesting_ = 0;  // concurrent receptions (for energy state)
  std::uint64_t id_;

  // --- Medium bookkeeping (written by Medium; see medium.cpp) ---------------
  ReceiverState rx_state_;          // in-flight receptions at this radio
  /// Cached tx fan-out: static detectable receivers in attach order.
  /// Valid while nb_epoch_ matches the medium's static-geometry epoch,
  /// nb_self_version_ matches geometry_version_, and the transmit power
  /// does not exceed nb_power_dbm_.
  std::vector<NeighborEntry> neighbors_;
  /// Struct-of-arrays companions to neighbors_ (MediumConfig.soa_fanout):
  /// per-entry received power at nb_power_dbm_, its linear milliwatt
  /// value, the propagation delay at the entry's (static) geometry, and
  /// the arrival-order permutation (entry indices sorted by propagation
  /// delay, fan-out order breaking ties). Rebuilt with neighbors_; a
  /// repeated fan-out at the list's power replays these as pure loads —
  /// no pow, no sqrt, no per-record sort.
  std::vector<double> nb_rx_dbm_;
  std::vector<double> nb_rx_mw_;
  std::vector<std::int64_t> nb_prop_ns_;
  std::vector<std::uint32_t> nb_arrival_rank_;
  std::uint64_t nb_epoch_ = 0;  // 0 = never built
  std::uint32_t nb_self_version_ = 0;
  double nb_power_dbm_ = 0.0;
  /// Set on the first move/retune after attach; volatile radios are
  /// excluded from neighbor lists and checked per transmission.
  bool volatile_ = false;
  std::uint64_t attach_order_ = 0;  // brute-force iteration order
  std::uint64_t grid_chan_ = 0;     // (band,channel) key while indexed
  std::uint64_t grid_cell_ = 0;     // grid cell key while indexed
  bool grid_indexed_ = false;
  /// Bumped on every move/retune; tags cached link budgets.
  std::uint32_t geometry_version_ = 0;
  /// Shard (super-cell) this radio is homed on; 0 when unsharded.
  std::uint32_t shard_ = 0;
  /// Cell-exit horizon: migration checks are skipped before this time.
  TimePoint shard_check_after_ = kSimStart;
};

}  // namespace politewifi::sim
