#include "sim/sweep_runner.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>

#include "common/annotations.h"
#include "common/mutex.h"
#include "obs/metrics.h"

namespace politewifi::sim {

namespace {

/// First-exception slot shared by the worker pool: whichever worker
/// faults first wins, later exceptions are dropped (the sweep is
/// aborting either way). The mutex is the capability guarding `first_`;
/// clang -Wthread-safety proves both accessors hold it.
class ErrorSlot {
 public:
  /// Records std::current_exception() if no earlier error is held.
  void capture_current() PW_EXCLUDES(mutex_) {
    common::MutexLock lock(mutex_);
    if (!first_) first_ = std::current_exception();
  }

  /// Rethrows the captured exception, if any. Called after join, but
  /// takes the lock anyway — correctness shouldn't depend on call-site
  /// phasing the analysis can't see.
  void rethrow_if_set() PW_EXCLUDES(mutex_) {
    std::exception_ptr error;
    {
      common::MutexLock lock(mutex_);
      error = first_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  common::Mutex mutex_;
  std::exception_ptr first_ PW_GUARDED_BY(mutex_);
};

}  // namespace

unsigned SweepRunner::default_threads() {
  if (const char* s = std::getenv("PW_THREADS")) {
    const long v = std::atol(s);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

SweepRunner::SweepRunner(unsigned threads)
    : threads_(threads >= 1 ? threads : 1) {}

void SweepRunner::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& job) const {
  if (n == 0) return;

  std::atomic<std::size_t> next{0};
  ErrorSlot first_error;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        PW_COUNT(kSweepJobs);
        PW_TIMEIT(kSweepJobWallNs, "sweep_job");
        job(i);
      } catch (...) {
        first_error.capture_current();
      }
    }
  };

  const std::size_t pool =
      std::min<std::size_t>(threads_, n);
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) workers.emplace_back(worker);
    for (auto& w : workers) w.join();
  }

  first_error.rethrow_if_set();
}

}  // namespace politewifi::sim
