#include "sim/sweep_runner.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/metrics.h"

namespace politewifi::sim {

unsigned SweepRunner::default_threads() {
  if (const char* s = std::getenv("PW_THREADS")) {
    const long v = std::atol(s);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

SweepRunner::SweepRunner(unsigned threads)
    : threads_(threads >= 1 ? threads : 1) {}

void SweepRunner::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& job) const {
  if (n == 0) return;

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        PW_COUNT(kSweepJobs);
        PW_TIMEIT(kSweepJobWallNs, "sweep_job");
        job(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  const std::size_t pool =
      std::min<std::size_t>(threads_, n);
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) workers.emplace_back(worker);
    for (auto& w : workers) w.join();
  }

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace politewifi::sim
