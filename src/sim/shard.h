// Sharded-medium executor: conservative time synchronization across the
// per-shard schedulers of one Medium.
//
// Each spatial super-cell (shard) owns a Scheduler holding the events of
// the radios currently homed there. All shard schedulers share one
// timebase (clock + FIFO sequence counter, see
// Scheduler::adopt_timebase), so the union of their heaps under the
// shared (time, seq) key is exactly the single unsharded heap,
// partitioned. The executor's merge loop repeatedly peeks every shard
// and runs the globally earliest live event — a k-way merge identical in
// order to the one heap — which is what makes `MediumConfig::shards = N`
// byte-identical to `shards = 1` for any N and any event-to-shard
// assignment (the ShardEquivalence suite enforces this; DESIGN.md
// derives the conservative lookahead bound).
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "sim/event_queue.h"

namespace politewifi::sim {

class ShardExecutor {
 public:
  /// `shards[0]` is the primary scheduler (owner of the shared clock);
  /// the rest must have adopted its timebase. Pointers must outlive the
  /// executor.
  explicit ShardExecutor(std::vector<Scheduler*> shards);

  /// Runs every event with time <= `until` in global (time, seq) order,
  /// then advances the shared clock to `until`.
  void run_until(TimePoint until);

  /// Convenience mirror of Scheduler::run_for on the shared clock.
  void run_for(Duration duration) { run_until(now() + duration); }

  /// Runs until every shard's queue drains (benches; beaconing never
  /// drains in real scenarios).
  void run_all();

  TimePoint now() const { return shards_.front()->now(); }

  /// Sum of events executed across all shards — equals the single
  /// scheduler's count in the unsharded run.
  std::uint64_t events_executed() const;

  std::size_t shard_count() const { return shards_.size(); }

 private:
  /// Finds the shard holding the globally earliest live event, recording
  /// head-time skew. Returns false when every queue is empty.
  bool pick_next(std::size_t* shard, TimePoint* at);

  std::vector<Scheduler*> shards_;
  std::size_t current_ = 0;  // shard that ran the previous event
};

}  // namespace politewifi::sim
