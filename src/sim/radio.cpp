#include "sim/radio.h"

namespace politewifi::sim {

Radio::Radio(Medium& medium, Scheduler& scheduler, RadioConfig config)
    : medium_(medium),
      scheduler_(&scheduler),
      config_(config),
      position_(config.position),
      rf_position_(config.position),
      energy_(config.power, scheduler.now()),
      id_(medium.allocate_radio_id()) {
  energy_.set_timeline_ids(medium.timeline_group(),
                           static_cast<std::int64_t>(id_));
  energy_.set_state(RadioState::kIdle, scheduler_->now());
  medium_.attach(this);  // homes the radio on its shard (rebinds scheduler_)
}

Radio::~Radio() { medium_.detach(this); }

void Radio::set_position(const Position& p) {
  if (position_ == p) return;
  position_ = p;
  // Sub-quantum drift keeps the RF anchor (and with it every cached link
  // budget involving this radio) valid; quantum 0 is the exact path.
  const double quantum = medium_.config().position_quantum_m;
  if (quantum > 0.0 && distance(p, rf_position_) <= quantum) return;
  rf_position_ = p;
  ++geometry_version_;
  medium_.on_radio_moved(*this);
}

void Radio::update_shard_horizon(double speed_mps) {
  medium_.refresh_shard_horizon(*this, speed_mps);
}

void Radio::set_channel(int channel) {
  if (config_.channel == channel) return;
  config_.channel = channel;
  ++geometry_version_;  // frequency changed: link budgets are stale
  medium_.on_radio_retuned(*this);
}

void Radio::transmit(const frames::Frame& frame, const phy::TxVector& tx) {
  // A sleeping radio cannot transmit; the roles wake it first. Guard
  // defensively rather than assert: a race between a doze decision and a
  // queued control response resolves as "the frame never went out".
  if (sleeping_) return;
  if (medium_.config().frame_templates) {
    medium_.transmit(*this, tx_templates_.render(frame, medium_.ppdu_pool()),
                     tx);
    return;
  }
  frames::PpduRef ppdu = medium_.ppdu_pool().acquire();
  frames::serialize_into(frame, ppdu.mutable_octets());
  medium_.transmit(*this, std::move(ppdu), tx);
}

void Radio::deliver(const Bytes& ppdu, const phy::RxVector& rx) {
  if (station_ != nullptr && !sleeping_) {
    station_->on_ppdu_received(ppdu, rx);
  }
}

void Radio::set_sleeping(bool sleeping) {
  if (sleeping_ == sleeping) return;
  sleeping_ = sleeping;
  const TimePoint now = scheduler_->now();
  if (sleeping_) {
    rx_nesting_ = 0;
    energy_.set_state(RadioState::kSleep, now);
  } else {
    energy_.set_state(RadioState::kIdle, now);
  }
}

}  // namespace politewifi::sim
