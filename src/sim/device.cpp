#include "sim/device.h"

namespace politewifi::sim {

const char* device_kind_name(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kAccessPoint: return "access-point";
    case DeviceKind::kClient: return "client";
    case DeviceKind::kIot: return "iot";
    case DeviceKind::kAttacker: return "attacker";
    case DeviceKind::kSniffer: return "sniffer";
  }
  return "?";
}

Device::Device(Medium& medium, Scheduler& scheduler, DeviceInfo info,
               mac::MacConfig mac_config, RadioConfig radio_config,
               std::uint64_t seed)
    : info_(std::move(info)),
      radio_(medium, scheduler, radio_config),
      station_(mac_config, radio_, Rng(seed)),
      rng_(seed ^ 0xabcdef) {
  radio_.set_station(&station_);
}

mac::RoleContext Device::role_context() {
  return mac::RoleContext{
      .station = &station_,
      .env = &radio_,
      .set_radio_sleep = [this](bool s) { radio_.set_sleeping(s); },
      .rng = rng_.fork(),
  };
}

mac::ApRole& Device::make_ap(mac::ApConfig config) {
  ap_ = std::make_unique<mac::ApRole>(std::move(config), role_context());
  ap_->start();
  return *ap_;
}

mac::ClientRole& Device::make_client(mac::ClientConfig config) {
  client_ =
      std::make_unique<mac::ClientRole>(std::move(config), role_context());
  client_->start();
  return *client_;
}

}  // namespace politewifi::sim
