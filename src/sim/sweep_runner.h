// Parallel sweep runner: a worker pool for *independent* simulations.
//
// The paper's figures are sweeps — Fig 6 is victim power over 15 injection
// rates, Table 1 is one attack per chipset, the Wi-Peep extension ranges
// one target per anchor set. Each sweep point is a complete, self-seeded
// Simulation (its own Scheduler, Medium and RNG), so the points are
// embarrassingly parallel. SweepRunner fans them out across PW_THREADS
// worker threads and collects results *by index*, which makes the output
// bit-identical no matter how many threads execute: determinism lives in
// each point's seed, not in scheduling order. (Per-medium radio ids — see
// Medium::allocate_radio_id — are what make that true; a process-wide id
// counter would leak ordering between concurrent points.)
//
// Jobs must not touch shared mutable state. The simulator's own globals
// are safe: OuiDatabase is immutable after construction and the Logger is
// only read at the default Warn level.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace politewifi::sim {

class SweepRunner {
 public:
  /// `threads` <= 1 degrades to plain sequential execution in the calling
  /// thread (still index order) — the 0/1-thread path and the N-thread
  /// path produce identical results by construction.
  explicit SweepRunner(unsigned threads = default_threads());

  /// PW_THREADS env override, else hardware concurrency (min 1).
  static unsigned default_threads();

  unsigned threads() const { return threads_; }

  /// Invokes `job(i)` for every i in [0, n) across the pool; blocks until
  /// all complete. The first exception thrown by a job is rethrown here
  /// (remaining jobs still run to completion).
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& job) const;

  /// Runs fn(0..n-1) and returns the results in index order.
  template <typename Fn>
  auto run_indexed(std::size_t n, Fn&& fn) const
      -> std::vector<decltype(fn(std::size_t{}))> {
    std::vector<decltype(fn(std::size_t{}))> results(n);
    for_each_index(n, [&](std::size_t i) { results[i] = fn(i); });
    return results;
  }

 private:
  unsigned threads_;
};

}  // namespace politewifi::sim
