// The shared wireless medium.
//
// Connects radios on the same band/channel: applies path loss and
// deterministic per-link shadowing, tracks concurrent receptions for
// carrier sense and collisions (with capture), rolls frame errors from
// the SNR, and hands finished PPDUs to each receiving radio. A trace sink
// observes every transmission (the simulator's Wireshark), and a CSI
// provider lets scenario code shape per-link channel state (the sensing
// experiments' hook).
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/byte_buffer.h"
#include "common/rng.h"
#include "common/units.h"
#include "phy/csi.h"
#include "phy/error_model.h"
#include "phy/propagation.h"
#include "phy/signal.h"
#include "sim/event_queue.h"

namespace politewifi::sim {

class Radio;

struct MediumConfig {
  double path_loss_exponent = 3.0;
  /// Per-link log-normal shadowing spread; drawn once per (tx, rx) pair so
  /// a link's budget is stable across frames.
  double shadowing_sigma_db = 4.0;
  double cs_threshold_dbm = -82.0;      // carrier-sense busy level
  double detect_threshold_dbm = -94.0;  // below this a frame is invisible
  double capture_margin_db = 10.0;      // SIR needed to survive a collision
  double noise_figure_db = 7.0;
  bool model_frame_errors = true;
  /// Model the finite speed of light: a frame arrives d/c after it is
  /// sent. Nanoseconds per metre — irrelevant to MAC behaviour, but it is
  /// exactly the signal that time-of-flight ranging (the Wi-Peep line of
  /// follow-up work) extracts from Polite WiFi ACKs.
  bool model_propagation_delay = true;
};

/// Record of one on-air PPDU (what a perfect sniffer would log).
struct TransmissionEvent {
  TimePoint start{};
  TimePoint end{};
  const Radio* sender = nullptr;
  Bytes ppdu;
  phy::TxVector tx;
};

using TraceSink = std::function<void(const TransmissionEvent&)>;

/// Optional per-link CSI: (transmitter, receiver, time) -> snapshot.
/// Return nullopt to fall back to the medium's static default.
using CsiProvider = std::function<std::optional<phy::CsiSnapshot>(
    const Radio& tx, const Radio& rx, TimePoint now)>;

class Medium {
 public:
  Medium(Scheduler& scheduler, MediumConfig config, std::uint64_t seed);

  void attach(Radio* radio);
  void detach(Radio* radio);

  /// Starts a transmission from `sender`. Every eligible radio receives
  /// the PPDU (or a collision-corrupted copy) when it ends.
  void transmit(Radio& sender, Bytes ppdu, const phy::TxVector& tx);

  /// Carrier sense at `radio`: any reception above CS threshold underway?
  bool busy_for(const Radio& radio) const;

  void set_trace_sink(TraceSink sink) { trace_ = std::move(sink); }
  void set_csi_provider(CsiProvider provider) { csi_ = std::move(provider); }

  const MediumConfig& config() const { return config_; }
  Scheduler& scheduler() { return scheduler_; }

  /// Deterministic per-link shadowing in dB (exposed for tests).
  double link_shadowing_db(const Radio& a, const Radio& b) const;

  /// Link budget: received power at `rx` for a transmission from `tx`.
  double rx_power_dbm(const Radio& tx_radio, double tx_power_dbm,
                      const Radio& rx_radio) const;

 private:
  struct Reception {
    std::uint64_t id;
    TimePoint start, end;
    double power_dbm;
    bool receiver_awake_at_start;
  };

  void finalize_reception(Radio* receiver, std::uint64_t reception_id,
                          Bytes ppdu, const phy::TxVector& tx,
                          TimePoint start, TimePoint end, double power_dbm,
                          const Radio* sender);
  void prune(std::vector<Reception>& list) const;

  Scheduler& scheduler_;
  MediumConfig config_;
  mutable Rng rng_;
  std::uint64_t seed_;
  std::vector<Radio*> radios_;
  std::unordered_map<const Radio*, std::vector<Reception>> active_;
  std::uint64_t next_reception_id_ = 1;
  TraceSink trace_;
  CsiProvider csi_;

  // Per-pair cached static paths for the default CSI fallback.
  mutable std::unordered_map<std::uint64_t, phy::PathSet> static_paths_;
};

}  // namespace politewifi::sim
