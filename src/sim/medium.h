// The shared wireless medium.
//
// Connects radios on the same band/channel: applies path loss and
// deterministic per-link shadowing, tracks concurrent receptions for
// carrier sense and collisions (with capture), rolls frame errors from
// the SNR, and hands finished PPDUs to each receiving radio. A trace sink
// observes every transmission (the simulator's Wireshark), and a CSI
// provider lets scenario code shape per-link channel state (the sensing
// experiments' hook).
//
// Scale notes (the 5,000-device city): transmissions fan out through a
// per-(band,channel) uniform grid index instead of a flat scan over every
// attached radio, visiting only radios that could possibly detect the
// frame (the query radius is derived from the actual transmit power, the
// path-loss model and a hard bound on the deterministic shadowing draw,
// so the reception set is *exactly* the brute-force one — cell lists are
// kept in attach order and merged, which keeps event ordering
// byte-identical without sorting in the fan-out hot path). Per-link
// budgets are memoized in a position-versioned 2-way set-associative
// cache and, for a static transmitter, in per-transmitter contiguous
// SoA lanes (received power, linear power, propagation delay, arrival
// rank) that a repeated fan-out replays as pure loads; the link-budget
// and FER math of a whole fan-out runs as one batched struct-of-arrays
// pass at transmit time while the Bernoulli outcome draws stay at
// finalize time in delivery order, so the medium RNG stream is
// bit-identical to the scalar path. The PPDU is shared across all
// receivers of a transmission instead of copied per receiver, and the
// per-receiver reception lists are pruned amortized (when they double)
// instead of on every push.
//
// City scale (the sharded medium): with MediumConfig::shards > 1 the
// plane is partitioned into super-cells, each homed on its own
// Scheduler (shared timebase — see sim/shard.h) with its own link/FER
// memo. Transmissions schedule their events on the sender's shard;
// legacy per-receiver deliveries land on the receiver's shard (the
// boundary mirror), and movers migrate shards at cell-exit horizons
// computed from their mobility model. Byte-identical to shards = 1 by
// construction; the ShardEquivalence suite enforces it.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/byte_buffer.h"
#include "common/rng.h"
#include "common/units.h"
#include "frames/ppdu.h"
#include "phy/channel_model.h"
#include "phy/csi.h"
#include "phy/error_model.h"
#include "phy/propagation.h"
#include "phy/signal.h"
#include "sim/event_queue.h"

namespace politewifi::sim {

class Radio;

struct MediumConfig {
  double path_loss_exponent = 3.0;
  /// Per-link log-normal shadowing spread; drawn once per (tx, rx) pair so
  /// a link's budget is stable across frames.
  double shadowing_sigma_db = 4.0;
  /// AR(1) time-correlated fading on top of the static budget (see
  /// phy::ChannelModel): one-interval autocorrelation in [0, 1). 0 = the
  /// off-switch — the fading term is never evaluated and the simulation
  /// is byte-identical to the memoryless channel (ChannelEquivalence
  /// property-tests this). The fade modulates power only *within* the
  /// statically-detectable reception set: a down-fade below
  /// detect_threshold_dbm drops the reception, but an up-fade never
  /// resurrects a link the static budget already ruled out, so the
  /// spatial index's detection disc stays exact with zero margin.
  double fading_rho = 0.0;
  /// Stationary standard deviation of the fading term (dB).
  double fading_sigma_db = 2.0;
  /// Fading coherence interval in sim-time microseconds: the fade is
  /// re-sampled once per interval (lazily, per link), constant within.
  double fading_coherence_us = 1000.0;
  double cs_threshold_dbm = -82.0;      // carrier-sense busy level
  double detect_threshold_dbm = -94.0;  // below this a frame is invisible
  double capture_margin_db = 10.0;      // SIR needed to survive a collision
  double noise_figure_db = 7.0;
  bool model_frame_errors = true;
  /// Model the finite speed of light: a frame arrives d/c after it is
  /// sent. Nanoseconds per metre — irrelevant to MAC behaviour, but it is
  /// exactly the signal that time-of-flight ranging (the Wi-Peep line of
  /// follow-up work) extracts from Polite WiFi ACKs.
  bool model_propagation_delay = true;
  /// Fan transmissions out through the per-(band,channel) spatial grid.
  /// Off = the reference brute-force scan over every attached radio; kept
  /// for the index/brute-force equivalence property test and as an escape
  /// hatch. Both paths produce identical receptions in identical order.
  bool use_spatial_index = true;
  /// Recycle PPDU buffers through the medium's free-list pool. Off = a
  /// fresh heap buffer per frame (the legacy allocation profile); the
  /// simulated bytes and event order are identical either way.
  bool pool_ppdus = true;
  /// Deliver each transmission's receptions from pooled batch records
  /// (one scheduled event per distinct arrival time) instead of one
  /// scheduled event per receiver. Off = the legacy per-receiver
  /// scheduling; both paths finalize the same receptions in the same
  /// order (PipelineEquivalence property-tests this).
  bool batched_fanout = true;
  /// Let radios render outgoing frames through their frame-template
  /// cache (serialize once, patch seq/retry in place). Off = a full
  /// serialization per frame; the on-air octets are identical.
  bool frame_templates = true;
  /// Probe the link-budget memo as a 2-way set-associative cache (LRU
  /// within each 2-line set) instead of direct-mapped, so two links
  /// hashing to the same set stop evicting each other on every
  /// alternation. Off = the direct-mapped reference layout. Pure
  /// memoization either way: every lookup returns exactly the double a
  /// fresh recompute would, so behaviour is byte-identical.
  bool link_cache_assoc = true;
  /// Replay a static transmitter's cached fan-out through contiguous
  /// struct-of-arrays lanes (precomputed rx power, linear power,
  /// propagation delay, arrival rank) and evaluate the fan-out's
  /// no-interference SINR + FER as one batched vectorizable pass at
  /// transmit time. Only takes effect with batched_fanout on. Off = the
  /// scalar per-receiver path; receptions, RNG draw order and every
  /// station-observable byte are identical (FanoutEquivalence
  /// property-tests this).
  bool soa_fanout = true;
  /// Spatial super-cell shards. 1 = the unsharded reference path (one
  /// scheduler, one memo). > 1 partitions the plane into shard_cell_m
  /// super-cells interleaved over an nx × ny shard lattice; the owner
  /// must wire one Scheduler per shard (sharing the primary's timebase)
  /// through set_shard_schedulers before attaching radios. Every shard
  /// count yields byte-identical simulations — events merge in global
  /// (time, seq) order — which ShardEquivalence property-tests for
  /// 1/2/4/9.
  int shards = 1;
  /// Edge length (metres) of one shard super-cell.
  double shard_cell_m = 256.0;
  /// Mover position epsilon: set_position only refreshes the RF anchor
  /// (and so invalidates cached link budgets) once the radio has
  /// drifted more than this many metres from it. 0 = off, the exact
  /// reference path; > 0 trades sub-quantum positional accuracy for
  /// link-cache stability under mobility (the wardrive rig's 1.1 m
  /// ticks stop thrashing whole cache generations).
  double position_quantum_m = 0.0;
};

/// Record of one on-air PPDU (what a perfect sniffer would log). The
/// payload is a shared reference into the medium's PPDU pool: sinks that
/// keep octets past the callback must copy them out (TraceRecorder does).
struct TransmissionEvent {
  TimePoint start{};
  TimePoint end{};
  const Radio* sender = nullptr;
  frames::PpduRef ppdu;
  phy::TxVector tx;
};

using TraceSink = std::function<void(const TransmissionEvent&)>;

/// Optional per-link CSI: (transmitter, receiver, time) -> snapshot.
/// Return nullopt to fall back to the medium's static default.
using CsiProvider = std::function<std::optional<phy::CsiSnapshot>(
    const Radio& tx, const Radio& rx, TimePoint now)>;

/// One in-flight (or recently finished) reception at some radio.
struct Reception {
  std::uint64_t id;
  TimePoint start, end;
  double power_dbm;
  double power_mw;  // dbm_to_mw(power_dbm), precomputed for interference sums
  bool receiver_awake_at_start;
};

/// Per-receiver in-flight reception list with an amortized prune
/// threshold: the list is swept when it doubles, not on every push.
/// Lives inside each Radio so the fan-out hot loop never touches a hash
/// map to find it.
struct ReceiverState {
  std::vector<Reception> list;
  std::size_t prune_at = 8;
};

/// One entry of a transmitter's cached fan-out: a receiver that clears
/// the detection threshold at the power the list was built for, plus the
/// memoized link gain. Lists are kept in attach order.
struct NeighborEntry {
  Radio* radio;
  double gain_db;
  std::uint64_t order;  // receiver's attach order (merge key)
};

class Medium {
 public:
  Medium(Scheduler& scheduler, MediumConfig config, std::uint64_t seed);

  void attach(Radio* radio);
  void detach(Radio* radio);

  /// Starts a transmission from `sender`. Every eligible radio receives
  /// the PPDU (or a collision-corrupted copy) when it ends. The medium
  /// takes shared ownership of the octets; they are never copied per
  /// receiver.
  void transmit(Radio& sender, frames::PpduRef ppdu, const phy::TxVector& tx);

  /// Convenience overload copying `ppdu` into a pooled buffer — for tests
  /// and benches that hand-roll octets. Hot paths build a PpduRef
  /// directly (Radio::transmit's template cache does).
  void transmit(Radio& sender, std::span<const std::uint8_t> ppdu,
                const phy::TxVector& tx);

  /// Carrier sense at `radio`: any reception above CS threshold underway?
  bool busy_for(const Radio& radio) const;

  void set_trace_sink(TraceSink sink) { trace_ = std::move(sink); }
  void set_csi_provider(CsiProvider provider) { csi_ = std::move(provider); }

  const MediumConfig& config() const { return config_; }
  Scheduler& scheduler() { return scheduler_; }

  // --- Sharding (see sim/shard.h and DESIGN.md) -----------------------------

  /// Wires the per-shard schedulers (index = shard id). Required before
  /// any radio attaches when config().shards > 1; `schedulers[0]` must
  /// be the constructor's scheduler and the others must share its
  /// timebase (Scheduler::adopt_timebase).
  void set_shard_schedulers(std::vector<Scheduler*> schedulers);
  /// The scheduler homing shard `shard` (0 when unsharded).
  Scheduler& shard_scheduler(std::uint64_t shard) const;
  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shard_schedulers_.size());
  }
  /// Shard owning position `p`: super-cells interleave over the nx × ny
  /// shard lattice, so no world bounds are needed.
  std::uint32_t shard_of(const Position& p) const;
  /// Recomputes `radio`'s cell-exit horizon from its speed: shard checks
  /// are skipped until the radio could possibly have left its current
  /// super-cell. Pure optimization — assignment never affects bytes.
  void refresh_shard_horizon(Radio& radio, double speed_mps) const;

  /// The medium's PPDU buffer pool. Radios draw their outgoing payload
  /// buffers here so every buffer in one simulation recycles through a
  /// single free list.
  frames::PpduPool& ppdu_pool() { return ppdu_pool_; }
  const frames::PpduPool& ppdu_pool() const { return ppdu_pool_; }

  /// Deterministic per-link shadowing in dB (exposed for tests).
  double link_shadowing_db(const Radio& a, const Radio& b) const;

  /// The channel model computing both budget terms (exposed for tests:
  /// the equivalence suites replay its pure fading function directly).
  const phy::ChannelModel& channel() const { return channel_; }

  /// *Static* link budget: received power at `rx` for a transmission
  /// from `tx` before any dynamic fading — path loss + shadowing only.
  /// Memoized per directed link; invalidated when either radio moves or
  /// retunes (position-versioned). The fading term composes on top at
  /// fan-out time (see transmit).
  double rx_power_dbm(const Radio& tx_radio, double tx_power_dbm,
                      const Radio& rx_radio) const;

  // --- Radio bookkeeping (called by Radio; not for scenario code) -----------

  /// Per-medium radio identity, deterministic in attach order. Keeping the
  /// counter here (not a process-wide static) makes concurrent independent
  /// simulations — the sweep runner's bread and butter — bit-reproducible.
  std::uint64_t allocate_radio_id() { return next_radio_id_++; }
  void on_radio_moved(Radio& radio);
  void on_radio_retuned(Radio& radio);

  /// Timeline pid grouping this medium's radio tracks in a trace (see
  /// obs/timeline.h). Process-unique, allocated at construction.
  std::int64_t timeline_group() const { return timeline_group_; }

  // --- Engine introspection (tests and the event-engine bench) -------------

  struct Stats {
    std::uint64_t transmissions = 0;       // PPDUs put on the air
    std::uint64_t candidates_scanned = 0;  // radios visited during fan-out
    std::uint64_t receptions = 0;          // receptions actually created
    /// Link-budget lookups served without a recompute: set-associative
    /// memo hits plus neighbor-lane replays (the per-transmitter lanes
    /// ARE the link cache's fan-out-keyed tier).
    std::uint64_t link_cache_hits = 0;
    std::uint64_t link_cache_misses = 0;
    /// Valid link-cache lines overwritten by a colliding link — the
    /// thrash signal the set-associative layout exists to suppress.
    std::uint64_t link_cache_evictions = 0;
    /// Times the link/FER caches were (re)allocated; growth drops the
    /// old contents, so a climbing generation under steady state would
    /// explain a hit-rate collapse.
    std::uint64_t link_cache_generation = 0;
    std::uint64_t fer_cache_hits = 0;
    std::uint64_t fer_cache_misses = 0;
    /// Payload octets copied after transmit() took ownership — only the
    /// copy-on-corrupt path ever adds to this; intact receivers share.
    std::uint64_t ppdu_bytes_copied = 0;
    /// Delivery events actually scheduled (batched fan-out folds every
    /// same-arrival-time reception of a transmission into one).
    std::uint64_t delivery_events = 0;
    /// Sharding: radios migrated to another shard at a cell-exit
    /// horizon, and transmissions whose fan-out crossed a shard border
    /// (mirrored into a foreign shard's event stream).
    std::uint64_t shard_handoffs = 0;
    std::uint64_t mirrored_tx = 0;
    /// AR(1) fading: samples actually drawn (stationary restarts plus
    /// chain steps) vs evaluations served straight from a link's cached
    /// fading state without drawing anything. The *values* are pure
    /// functions of (link, interval) — these counters only describe how
    /// much work the lazy advance did, so they are shard- and
    /// schedule-dependent (ShardEquivalence carves them out).
    std::uint64_t fading_advances = 0;
    std::uint64_t fading_cache_hits = 0;
    /// Peak number of links holding live fading state across all shards.
    std::uint64_t fading_links_peak = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Grid cell edge length chosen from the detection budget (metres).
  double cell_size_m() const { return cell_size_m_; }

  /// Farthest distance at which a transmission at `tx_power_dbm` /
  /// `frequency_hz` could still clear detect_threshold_dbm, including the
  /// hard upper bound on the deterministic shadowing draw. 0 = inaudible
  /// at any distance.
  double max_detect_range_m(double tx_power_dbm, double frequency_hz) const;

  /// Coherence auditor: re-derives by brute force everything the spatial
  /// index, cached neighbor lists, and memoized link budgets claim, and
  /// PW_CHECK-fails (fatal) on the first divergence — a stale grid cell,
  /// a neighbor list that differs from the brute-force reception set, or
  /// a link-cache line whose gain no longer matches a fresh recompute.
  /// Compiled into every build (tests corrupt state and assert it trips);
  /// audit builds additionally run the per-sender slice automatically
  /// every `kAuditPeriod` transmissions. O(radios^2) — test-scale only.
  void audit_coherence() const;

 private:
  friend struct MediumTestPeer;  // corruption-injection tests

  static constexpr std::uint64_t kAuditPeriod = 256;
  /// Memoized directed link budget, one cache line. `gain_db` is
  /// (shadowing − path loss): rx_dbm = tx_dbm + gain_db. Valid while
  /// `key` matches and both geometry versions match; a colliding link
  /// overwrites a line (direct-mapped: its only line; set-associative:
  /// the LRU way of its 2-line set) — no chains, no rehash, no wholesale
  /// clears, so a miss costs one recompute, never a malloc.
  struct LinkBudget {
    std::uint64_t key;  // (tx_id << 32) | rx_id; 0 = empty (ids start at 1)
    std::uint32_t tx_version;
    std::uint32_t rx_version;
    double gain_db;
  };
  using CellMap = std::unordered_map<std::uint64_t, std::vector<Radio*>>;

  /// One pending receiver of an in-flight transmission (batched fan-out).
  struct PendingDelivery {
    Radio* radio;
    std::uint64_t reception_id;
    TimePoint rx_start, rx_end;
    double power_dbm;
    bool awake_at_start;  // receiver was awake when the preamble arrived
    /// No-interference FER precomputed by the SoA batch pass; < 0 when
    /// not precomputed. finalize_reception may only use it when the
    /// interference sum is zero (then its SINR equals the batch's).
    double fer = -1.0;
  };
  /// One in-flight transmission's shared payload plus its delivery list,
  /// recycled through a free list so steady-state fan-out never touches
  /// the allocator. Held by unique_ptr so records stay address-stable
  /// while `records_` grows re-entrantly.
  struct TransmissionRecord {
    frames::PpduRef ppdu;
    phy::TxVector tx;
    const Radio* sender = nullptr;
    std::vector<PendingDelivery> deliveries;
    /// Finalize order: indices into `deliveries` sorted by (rx_end,
    /// push order). Empty when `deliveries` itself was sorted in place
    /// (the scalar path); then `next` indexes `deliveries` directly.
    std::vector<std::uint32_t> order;
    std::size_t next = 0;  // cursor into the finalize order
    bool live = false;
  };
  static constexpr std::size_t kNoRecord = std::size_t(-1);

  std::size_t acquire_record();
  void release_record(std::size_t rec_idx);
  /// Orders the record's deliveries by arrival time (stable: fan-out
  /// order breaks ties, matching the legacy per-receiver schedule order)
  /// and schedules one event per distinct rx_end. The scalar path sorts
  /// `deliveries` in place; the SoA path fills `order` instead — from
  /// the transmitter's precomputed arrival-rank lane when the fan-out
  /// was a pure lane replay, by an index sort otherwise. All three
  /// produce the identical finalize sequence.
  /// `lane_pushes` = deliveries that came straight off the sender's
  /// neighbor lanes (kNoRecord-safe: callers pass 0 when unknown).
  void schedule_batch(std::size_t rec_idx, const Radio& sender,
                      std::size_t lane_pushes);
  /// Finalizes every pending delivery of `rec_idx` arriving now.
  void run_batch(std::size_t rec_idx);

  /// SoA batch pass: for every queued delivery of `rec`, the
  /// no-interference SINR (one vectorizable subtract lane) and its FER
  /// through the memo + the batched PHY entry point, stored on the
  /// delivery for finalize_reception's zero-interference fast path.
  void batch_fer_pass(TransmissionRecord& rec) const;
  /// FER memo probe for a whole batch: hits fill `fer_out` directly,
  /// misses are gathered and computed through one
  /// phy::frame_error_rate_batch call, then scattered back and
  /// memoized. Element-for-element identical to calling
  /// cached_frame_error_rate in index order.
  void batched_frame_error_rates(const phy::PhyRate& rate,
                                 std::size_t octets,
                                 std::span<const double> sinr_db,
                                 std::span<double> fer_out,
                                 std::uint32_t shard) const;

  void finalize_reception(Radio* receiver, std::uint64_t reception_id,
                          const frames::PpduRef& ppdu,
                          const phy::TxVector& tx, TimePoint start,
                          TimePoint end, double power_dbm, bool awake_at_start,
                          const Radio* sender, double batch_fer = -1.0);
  void prune(std::vector<Reception>& list) const;
  /// Starts a reception at `rx_radio`. `rx_dbm` is the received power the
  /// caller already computed and checked against detect_threshold_dbm.
  /// With batched fan-out, the delivery is queued on `rec_idx`; legacy
  /// mode (rec_idx == kNoRecord) schedules a per-receiver event holding
  /// its own reference to `ppdu`. The lane-replay path passes the
  /// precomputed linear power (`rx_mw`) and propagation delay
  /// (`prop_ns`); negative sentinels mean "compute here" — the lanes
  /// hold exactly the doubles this function would compute, so both
  /// spellings are bit-identical.
  void begin_reception(Radio& sender, Radio* rx_radio, double rx_dbm,
                       std::size_t rec_idx, const frames::PpduRef& ppdu,
                       const phy::TxVector& tx, TimePoint start,
                       TimePoint end, double rx_mw = -1.0,
                       std::int64_t prop_ns = -1);

  /// Flags a radio as geometry-volatile (it moved or retuned after
  /// attaching): it is dropped from every cached neighbor list and
  /// handled per-transmission instead, so a survey rig driving through
  /// the city doesn't invalidate the static population's lists on every
  /// step. The first flagging bumps the static-geometry epoch.
  void mark_volatile(Radio& radio);
  /// (Re)builds `sender`'s cached fan-out: every static radio on the
  /// sender's channel that clears the detection threshold at
  /// `tx_power_dbm`, in attach order, with memoized link gains.
  void build_neighbor_list(Radio& sender, double tx_power_dbm);

  double link_gain_db(const Radio& tx_radio, const Radio& rx_radio) const;
  /// The pure *static* link-budget computation (path loss +
  /// deterministic shadowing), bypassing the memo — a thin wrapper over
  /// phy::ChannelModel::static_gain_db. link_gain_db's miss path and
  /// the coherence auditor both call this, so "cache hit == fresh
  /// recompute" is checkable bit-for-bit. (The frequency →
  /// reference-loss term is memoized inside the channel model with the
  /// propagation model's exact expression, so the memo is
  /// bit-transparent.)
  double raw_link_gain_db(const Radio& tx_radio, const Radio& rx_radio) const;
  /// The dynamic fading term for the (a, b) link at coherence interval
  /// `interval`, served through shard `shard`'s fading-state lines: a
  /// line holding this link at this interval is a pure cache hit;
  /// anything else advances (or restarts) the AR(1) chain. The returned
  /// value is a pure function of (pair key, interval) regardless of
  /// cache state, which is what keeps every shard count byte-identical.
  double link_fading_db(const Radio& a, const Radio& b,
                        std::uint64_t interval, std::uint32_t shard) const;
  /// One sender's slice of audit_coherence: its grid residency and (when
  /// valid) its cached neighbor list vs the brute-force reception set.
  void audit_radio(const Radio& radio) const;
  /// Grows the direct-mapped link and FER caches with the attached
  /// population (entries ~ 256 × radios, power of two, clamped). Growing
  /// drops the old contents, which only happens during topology
  /// construction.
  void maybe_grow_link_cache();
  /// phy::frame_error_rate memoized in a direct-mapped cache keyed by the
  /// exact (rate, SINR bit pattern, size) triple. Static links see the
  /// same SINR frame after frame, so the erfc/pow chain runs once per
  /// distinct link instead of once per reception. Pure memoization: a hit
  /// returns exactly the double a fresh computation would. `shard`
  /// selects the transmitter's memo (always 0 when unsharded).
  double cached_frame_error_rate(const phy::PhyRate& rate, double sinr_db,
                                 std::size_t octets,
                                 std::uint32_t shard) const;
  /// Homes `radio` on the shard owning its RF anchor (attach and
  /// post-horizon moves); rebinds its scheduler.
  void maybe_migrate_shard(Radio& radio);
  /// The scheduler homing `radio`'s shard (== scheduler_ unsharded).
  Scheduler& scheduler_for(const Radio& radio) const;

  std::int32_t cell_coord(double v) const;
  std::uint64_t cell_key_for(const Position& p) const;
  void index_insert(Radio* radio);
  void index_remove(Radio* radio);
  /// Fills `out` with every indexed radio on the sender's (band,channel)
  /// within detection range, sorted into attach order so the fan-out loop
  /// behaves byte-identically to the brute-force scan.
  void collect_candidates(const Radio& sender, double tx_power_dbm,
                          std::vector<Radio*>& out) const;

  Scheduler& scheduler_;
  MediumConfig config_;
  /// Shard id -> scheduler; {&scheduler_} when unsharded. Shard lattice
  /// factorization shard = ix mod nx + nx * (iy mod ny).
  std::vector<Scheduler*> shard_schedulers_;
  std::uint32_t shard_nx_ = 1;
  std::uint32_t shard_ny_ = 1;
  mutable Rng rng_;
  std::uint64_t seed_;
  /// Static-geometry + dynamic-fading math (see phy/channel_model.h).
  /// Owns the per-frequency reference-loss memo, the shadowing draw and
  /// the counter-based fading streams; the medium's caches store only
  /// what this model computes.
  phy::ChannelModel channel_;
  double cell_size_m_ = 0.0;
  std::vector<Radio*> radios_;
  std::unordered_map<std::uint64_t, CellMap> grid_;  // chan key -> cells
  /// Bumped whenever the static topology changes (attach, detach, or a
  /// radio's first move/retune). Cached neighbor lists are valid only
  /// while this is unchanged.
  std::uint64_t static_epoch_ = 1;
  std::vector<Radio*> volatile_radios_;  // sorted by attach order
  std::uint64_t next_reception_id_ = 1;
  std::uint64_t next_radio_id_ = 1;
  std::uint64_t next_attach_order_ = 1;
  std::int64_t timeline_group_ = 0;
  TraceSink trace_;
  CsiProvider csi_;
  mutable Stats stats_;
  /// One line of the FER memo. sinr_db is initialized to NaN, which no
  /// real SINR bit pattern matches (compares are on the raw bits).
  struct FerMemoEntry {
    double sinr_db = std::numeric_limits<double>::quiet_NaN();
    double mbps = 0.0;
    double fer = 0.0;
    std::uint32_t packed = 0;  // (octets << 1) | dsss bit
    std::int32_t ndbps = 0;
  };
  /// One shard's link-budget + FER memo. Lookups key off the
  /// transmitter's shard so a shard only touches its own lines (cache
  /// locality is the point of sharding); pure memoization either way,
  /// so the split never changes a returned double.
  /// One link's cached AR(1) fading chain position (see
  /// phy::ChannelModel::FadingState). Keyed by the order-independent
  /// pair key; 0 = empty. Purely a cache of the pure fading function,
  /// so a collision overwriting a line (or a shard split partitioning
  /// the lines differently) never changes a returned value — only how
  /// many samples the next advance has to draw.
  struct FadingLine {
    std::uint64_t key = 0;
    phy::ChannelModel::FadingState state;
  };
  struct LinkMemo {
    /// Link-budget cache lines (power-of-two count). Direct-mapped mode
    /// indexes hash & mask; set-associative mode treats lines 2s and
    /// 2s+1 as the two ways of set s = hash & (mask >> 1).
    std::vector<LinkBudget> lines;
    std::uint64_t mask = 0;
    /// Per-set MRU way (0 or 1) for the set-associative layout; the
    /// miss victim is the other way (LRU within the set).
    std::vector<std::uint8_t> mru;
    std::vector<FerMemoEntry> fer_lines;  // direct-mapped, pow-2 size
    std::uint64_t fer_mask = 0;
    /// Dynamic-fading state lines (direct-mapped, pow-2), allocated only
    /// when fading is enabled — the rho = 0 path never touches them.
    std::vector<FadingLine> fading_lines;
    std::uint64_t fading_mask = 0;
  };
  mutable std::vector<LinkMemo> memos_;  // one per shard; [0] unsharded
  /// Receiver noise floor — a constant of the medium config, hoisted out
  /// of the per-reception SINR math.
  double noise_mw_ = 0.0;
  double noise_floor_dbm_ = 0.0;  // mw_to_dbm(noise_mw_)
  /// Tiny (power, frequency) -> detection-range memo: a fleet transmits
  /// at a handful of fixed EIRPs, so the per-transmission pow() folds
  /// into a linear scan of 8 entries.
  struct RangeMemo {
    double power_dbm = 0.0, freq_hz = 0.0, range_m = 0.0;
  };
  mutable RangeMemo range_memo_[8];
  mutable unsigned range_memo_next_ = 0;
  /// Links currently holding live fading state across all shards (the
  /// fading_links_peak gauge tracks its high-water mark). Reset when
  /// cache growth drops the lines.
  mutable std::uint64_t fading_links_live_ = 0;
  mutable std::vector<Radio*> scratch_;  // fan-out candidate buffer (reused)
  // SoA batch-pass scratch lanes, reused across transmissions (the pass
  // runs synchronously inside transmit(), so there is no re-entrancy to
  // guard against and steady state stays allocation-free).
  mutable std::vector<double> batch_sinr_scratch_;
  mutable std::vector<double> batch_fer_scratch_;
  mutable std::vector<std::uint32_t> batch_miss_idx_scratch_;
  mutable std::vector<double> batch_miss_snr_scratch_;
  mutable std::vector<double> batch_miss_fer_scratch_;

  /// Declared before records_ so records release their payload references
  /// back into a still-live pool during destruction.
  frames::PpduPool ppdu_pool_;
  std::vector<std::unique_ptr<TransmissionRecord>> records_;
  std::vector<std::size_t> free_records_;

  // Per-pair cached static paths for the default CSI fallback.
  mutable std::unordered_map<std::uint64_t, phy::PathSet> static_paths_;
};

}  // namespace politewifi::sim
