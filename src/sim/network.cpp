#include "sim/network.h"

namespace politewifi::sim {

Simulation::Simulation(SimulationConfig config)
    : config_(config),
      scheduler_(config.scheduler),
      medium_(scheduler_, config.medium, config.seed),
      rng_(config.seed) {
  if (config.medium.shards > 1) {
    // Wire the sharded medium before any radio attaches: each extra
    // scheduler shares scheduler_'s clock and sequence counter, so the
    // union of the per-shard heaps is the single heap, partitioned.
    std::vector<Scheduler*> shards;
    shards.reserve(static_cast<std::size_t>(config.medium.shards));
    shards.push_back(&scheduler_);
    for (int s = 1; s < config.medium.shards; ++s) {
      extra_schedulers_.push_back(
          std::make_unique<Scheduler>(config.scheduler));
      extra_schedulers_.back()->adopt_timebase(scheduler_);
      shards.push_back(extra_schedulers_.back().get());
    }
    medium_.set_shard_schedulers(shards);
    executor_ = std::make_unique<ShardExecutor>(std::move(shards));
  }
}

Device& Simulation::add_device(DeviceInfo info, const MacAddress& mac,
                               RadioConfig radio_config,
                               mac::MacConfig mac_overrides) {
  mac_overrides.address = mac;
  mac_overrides.band = radio_config.band;
  devices_.push_back(std::make_unique<Device>(
      medium_, scheduler_, std::move(info), mac_overrides, radio_config,
      rng_.engine()()));
  return *devices_.back();
}

Device& Simulation::add_ap(const std::string& name, const MacAddress& mac,
                           Position position, mac::ApConfig config) {
  RadioConfig radio;
  radio.band = config.band;
  radio.channel = config.channel;
  radio.position = position;
  radio.power = PowerProfile::mains_powered();
  Device& device = add_device(
      DeviceInfo{.name = name, .kind = DeviceKind::kAccessPoint}, mac, radio);
  device.make_ap(std::move(config));
  return device;
}

Device& Simulation::add_client(const std::string& name, const MacAddress& mac,
                               Position position, mac::ClientConfig config) {
  RadioConfig radio;
  radio.band = config.band;
  radio.channel = 6;  // scanning is single-channel in this simulator
  radio.position = position;
  radio.power = config.power_save ? PowerProfile::esp8266()
                                  : PowerProfile::mains_powered();
  mac::MacConfig overrides;
  overrides.adaptive_rate = config.adaptive_rate;
  overrides.arf = config.arf;
  Device& device = add_device(
      DeviceInfo{.name = name, .kind = DeviceKind::kClient}, mac, radio,
      overrides);
  device.make_client(std::move(config));
  return device;
}

bool Simulation::establish(Device& client, Duration timeout) {
  if (client.client() == nullptr) return false;
  const TimePoint deadline = scheduler_.now() + timeout;
  while (scheduler_.now() < deadline) {
    if (client.client()->established()) return true;
    run_for(milliseconds(10));  // routes through the shard executor
  }
  return client.client()->established();
}

void Simulation::establish_instantly(Device& ap, Device& client) {
  if (ap.ap() == nullptr || client.client() == nullptr) return;
  const crypto::Ptk ptk = fast_link_ptk(ap.address(), client.address());
  ap.ap()->install_established_client(client.address(), ptk);
  // AIDs are assigned in arrival order by the AP; mirror its counter by
  // asking what it just assigned. (Re-install is idempotent.)
  client.client()->install_established(ap.address(), 1, ptk);
}

Device* Simulation::find_device(const MacAddress& mac) {
  for (const auto& d : devices_) {
    if (d->address() == mac) return d.get();
  }
  return nullptr;
}

TraceRecorder& Simulation::trace() {
  if (!trace_) {
    trace_ = std::make_unique<TraceRecorder>();
    trace_->attach(medium_);
    trace_->set_name_resolver([this](const Radio& radio) -> std::string {
      for (const auto& d : devices_) {
        if (&d->radio() == &radio) return d->info().name;
      }
      return "?";
    });
  }
  return *trace_;
}

crypto::Ptk fast_link_ptk(const MacAddress& ap, const MacAddress& sta) {
  return crypto::derive_fast_ptk(ap, sta);
}

}  // namespace politewifi::sim
