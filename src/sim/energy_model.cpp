#include "sim/energy_model.h"

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/timeline.h"

namespace politewifi::sim {

bool radio_transition_legal(RadioState from, RadioState to) {
  if (from == to) return true;                 // nesting / meter resets
  if (to == RadioState::kOff) return true;     // power-down from anywhere
  switch (from) {
    case RadioState::kOff:
    case RadioState::kSleep:
      // Off/dozing radios missed the preamble and must not transmit:
      // the only legal exit is waking to Idle.
      return to == RadioState::kIdle;
    case RadioState::kIdle:
    case RadioState::kRx:  // rx abandoned for a tx, or settled to idle
    case RadioState::kTx:  // tx tail overlapped by an arriving preamble
      return true;
  }
  return false;
}

const char* radio_state_name(RadioState s) {
  switch (s) {
    case RadioState::kOff: return "off";
    case RadioState::kSleep: return "sleep";
    case RadioState::kIdle: return "idle";
    case RadioState::kRx: return "rx";
    case RadioState::kTx: return "tx";
  }
  return "?";
}

PowerProfile PowerProfile::esp8266() { return PowerProfile{}; }

PowerProfile PowerProfile::mains_powered() {
  return PowerProfile{
      .off_mw = 0.0,
      .sleep_mw = 800.0,   // APs don't really sleep
      .idle_mw = 2000.0,
      .rx_mw = 2200.0,
      .tx_mw = 4000.0,
      .tx_ramp = microseconds(50),
  };
}

double EnergyMeter::state_power_mw(RadioState s) const {
  switch (s) {
    case RadioState::kOff: return profile_.off_mw;
    case RadioState::kSleep: return profile_.sleep_mw;
    case RadioState::kIdle: return profile_.idle_mw;
    case RadioState::kRx: return profile_.rx_mw;
    case RadioState::kTx: return profile_.tx_mw;
  }
  return 0.0;
}

void EnergyMeter::set_state(RadioState next, TimePoint now) {
  PW_DCHECK(radio_transition_legal(state_, next),
            "illegal radio state transition %s -> %s",
            radio_state_name(state_), radio_state_name(next));
  const Duration dwelt = now - state_start_;
  if (dwelt > Duration::zero()) {
    accrued_mj_ += state_power_mw(state_) * to_seconds(dwelt);
    dwell_[static_cast<int>(state_)] += dwelt;
    // The dwell just closed is one sim-time span on this radio's track.
    if (timeline_pid_ >= 0) {
      if (obs::TimelineProfiler* timeline = obs::active_timeline()) {
        timeline->add_sim_span(radio_state_name(state_), timeline_pid_,
                               timeline_tid_,
                               state_start_.time_since_epoch().count(),
                               dwelt.count());
      }
    }
  }
  if (next != state_) PW_COUNT(kRadioStateTransitions);
  state_ = next;
  state_start_ = now;
}

double EnergyMeter::consumed_mj(TimePoint now) const {
  double mj = accrued_mj_;
  mj += state_power_mw(state_) * to_seconds(now - state_start_);
  mj += double(ramp_events_) * profile_.tx_mw * to_seconds(profile_.tx_ramp);
  return mj;
}

double EnergyMeter::average_mw(TimePoint now) const {
  const double secs = to_seconds(now - meter_start_);
  return secs <= 0.0 ? 0.0 : consumed_mj(now) / secs;
}

void EnergyMeter::reset(TimePoint now) {
  // Close the open dwell into the (discarded) accumulator first.
  set_state(state_, now);
  accrued_mj_ = 0.0;
  ramp_events_ = 0;
  dwell_.fill(Duration::zero());
  meter_start_ = now;
  state_start_ = now;
}

}  // namespace politewifi::sim
