#include "sim/event_queue.h"

namespace politewifi::sim {

Scheduler::EventId Scheduler::schedule_at(TimePoint at,
                                          std::function<void()> fn) {
  const EventId id = next_id_++;
  queue_.push(Event{std::max(at, now_), id, std::move(fn)});
  return id;
}

bool Scheduler::dispatch(Event& ev) {
  if (const auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
    cancelled_.erase(it);
    return false;
  }
  now_ = ev.at;
  ++executed_;
  ev.fn();
  return true;
}

void Scheduler::run_until(TimePoint until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    Event ev = queue_.top();  // copy: fn may schedule and reallocate
    queue_.pop();
    dispatch(ev);
  }
  now_ = std::max(now_, until);
}

void Scheduler::run_all() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
}

bool Scheduler::run_one() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (dispatch(ev)) return true;
  }
  return false;
}

}  // namespace politewifi::sim
