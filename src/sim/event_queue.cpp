#include "sim/event_queue.h"

#include <algorithm>

namespace politewifi::sim {

std::uint32_t Scheduler::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t index = free_slots_.back();
    free_slots_.pop_back();
    return index;
  }
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t index) {
  Slot& slot = pool_[index];
  slot.fn.reset();
  slot.armed = false;
  slot.cancelled = false;
  ++slot.generation;  // invalidates any EventId still pointing here
  free_slots_.push_back(index);
}

Scheduler::EventId Scheduler::schedule_at(TimePoint at, Callback fn) {
  const std::uint32_t index = acquire_slot();
  Slot& slot = pool_[index];
  slot.fn = std::move(fn);
  slot.armed = true;
  heap_.push_back(HeapEntry{std::max(at, now_), next_seq_++, index});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return make_id(index, slot.generation);
}

void Scheduler::cancel(EventId id) {
  const std::uint64_t offset = id >> 32;
  if (offset == 0 || offset > pool_.size()) return;
  Slot& slot = pool_[offset - 1];
  if (!slot.armed || slot.cancelled ||
      slot.generation != static_cast<std::uint32_t>(id)) {
    return;  // already fired, already cancelled, or slot was recycled
  }
  slot.cancelled = true;
  slot.fn.reset();  // drop captured buffers now, not at pop time
  ++tombstones_;
  // Pop-time reclamation alone can't bound memory when cancelled events
  // sit far in the future (schedule/cancel churn never reaches them).
  // Once tombstones dominate, sweep them out in one O(n) pass — amortized
  // O(1) per cancel.
  if (tombstones_ > heap_.size() / 2 && heap_.size() >= 64) compact();
}

void Scheduler::compact() {
  auto live_end = std::remove_if(
      heap_.begin(), heap_.end(), [this](const HeapEntry& e) {
        if (!pool_[e.slot].cancelled) return false;
        release_slot(e.slot);
        return true;
      });
  heap_.erase(live_end, heap_.end());
  tombstones_ = 0;
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

bool Scheduler::pop_one(bool bounded, TimePoint limit) {
  while (!heap_.empty()) {
    if (bounded && heap_.front().at > limit) return false;
    const HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();

    Slot& slot = pool_[top.slot];
    if (slot.cancelled) {  // tombstone: reclaim and keep looking
      --tombstones_;
      release_slot(top.slot);
      continue;
    }
    // Move the callback out and free the slot *before* invoking: the
    // callback may schedule new events (growing the pool) or try to
    // cancel itself (a no-op once the generation is bumped).
    Callback fn = std::move(slot.fn);
    release_slot(top.slot);
    now_ = top.at;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(TimePoint until) {
  while (pop_one(/*bounded=*/true, until)) {
  }
  now_ = std::max(now_, until);
}

void Scheduler::run_all() {
  while (pop_one(/*bounded=*/false, TimePoint{})) {
  }
}

bool Scheduler::run_one() { return pop_one(/*bounded=*/false, TimePoint{}); }

}  // namespace politewifi::sim
