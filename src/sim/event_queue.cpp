#include "sim/event_queue.h"

#include <algorithm>
#include <vector>

#include "common/annotations.h"
#include "common/check.h"
#include "obs/metrics.h"

namespace politewifi::sim {

void Scheduler::audit() const {
  // Heap order: every parent at or before (time, seq) of its children.
  for (std::size_t i = 1; i < heap_.size(); ++i) {
    const HeapEntry& parent = heap_[(i - 1) / 2];
    const HeapEntry& child = heap_[i];
    PW_CHECK(!Later{}(parent, child),
             "heap order violated at index %zu: parent fires after child", i);
  }
  // Slot accounting: each heap entry points at a distinct armed slot;
  // tombstones_ counts exactly the cancelled ones; a cancelled slot must
  // already have dropped its callback (cancel() frees captures eagerly).
  std::vector<std::uint8_t> referenced(pool_.size(), 0);
  std::size_t cancelled_in_heap = 0;
  for (const HeapEntry& e : heap_) {
    PW_CHECK(e.slot < pool_.size(), "heap entry references slot %u beyond pool",
             e.slot);
    PW_CHECK(!referenced[e.slot],
             "slot %u referenced by two heap entries (double-schedule)",
             e.slot);
    referenced[e.slot] = 1;
    const Slot& slot = pool_[e.slot];
    PW_CHECK(slot.armed, "heap entry references disarmed slot %u", e.slot);
    if (slot.cancelled) {
      ++cancelled_in_heap;
      PW_CHECK(!slot.fn, "tombstoned slot %u still holds its callback",
               e.slot);
    }
  }
  PW_CHECK_EQ(tombstones_, cancelled_in_heap);
  // Free-list / heap partition: every pool slot is either armed and in
  // the heap, or disarmed and on the free list — never both, never
  // neither (a slot that escapes both would leak its generation).
  std::vector<std::uint8_t> free(pool_.size(), 0);
  for (const std::uint32_t index : free_slots_) {
    PW_CHECK(index < pool_.size(), "free list entry %u beyond pool", index);
    PW_CHECK(!free[index], "slot %u on the free list twice", index);
    free[index] = 1;
    PW_CHECK(!pool_[index].armed, "armed slot %u on the free list", index);
  }
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    PW_CHECK(pool_[i].armed == (referenced[i] != 0),
             "slot %zu %s but %s the heap", i,
             pool_[i].armed ? "armed" : "disarmed",
             referenced[i] ? "in" : "not in");
    PW_CHECK(referenced[i] != free[i], "slot %zu leaked: %s", i,
             referenced[i] ? "both in heap and free" : "neither in heap nor free");
  }
}

std::uint32_t Scheduler::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t index = free_slots_.back();
    free_slots_.pop_back();
    PW_DCHECK(!pool_[index].armed && !pool_[index].fn,
              "recycled slot %u still armed or holding a callback", index);
    return index;
  }
  pool_.emplace_back();
  PW_GAUGE_MAX(kSchedulerPoolSlotsPeak, pool_.size());
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t index) {
  Slot& slot = pool_[index];
  slot.fn.reset();
  slot.armed = false;
  slot.cancelled = false;
  ++slot.generation;  // invalidates any EventId still pointing here
  free_slots_.push_back(index);
}

PW_HOT Scheduler::EventId Scheduler::schedule_at(TimePoint at, Callback fn) {
  const std::uint32_t index = acquire_slot();
  Slot& slot = pool_[index];
  slot.fn = std::move(fn);
  slot.armed = true;
  heap_.push_back(HeapEntry{std::max(at, *now_p_), (*seq_p_)++, index});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return make_id(index, slot.generation);
}

void Scheduler::adopt_timebase(Scheduler& primary) {
  PW_CHECK(heap_.empty() && next_seq_ == 0,
           "adopt_timebase after events were scheduled");
  PW_CHECK(&primary != this, "scheduler cannot adopt its own timebase");
  now_p_ = primary.now_p_;
  seq_p_ = primary.seq_p_;
}

bool Scheduler::peek_next(TimePoint* at, std::uint64_t* seq) {
  // Reclaim tombstones parked at the front so the reported key is a
  // live event; bounded by the number of tombstones, amortized O(1).
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (!pool_[top.slot].cancelled) {
      *at = top.at;
      *seq = top.seq;
      return true;
    }
    const std::uint32_t slot = top.slot;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    --tombstones_;
    release_slot(slot);
  }
  return false;
}

PW_HOT void Scheduler::cancel(EventId id) {
  const std::uint64_t offset = id >> 32;
  if (offset == 0 || offset > pool_.size()) return;
  Slot& slot = pool_[offset - 1];
  if (!slot.armed || slot.cancelled ||
      slot.generation != static_cast<std::uint32_t>(id)) {
    return;  // already fired, already cancelled, or slot was recycled
  }
  slot.cancelled = true;
  slot.fn.reset();  // drop captured buffers now, not at pop time
  ++tombstones_;
  PW_COUNT(kSchedulerEventsCancelled);
  PW_GAUGE_MAX(kSchedulerTombstonesPeak, tombstones_);
  // Pop-time reclamation alone can't bound memory when cancelled events
  // sit far in the future (schedule/cancel churn never reaches them).
  // Once tombstones dominate, sweep them out in one O(n) pass — amortized
  // O(1) per cancel. `tombstones_peak` is the trigger's witness: under
  // any cancel churn it stays within a factor of the live event count.
  if (config_.compact_tombstones && tombstones_ > heap_.size() / 2 &&
      heap_.size() >= 64) {
    compact();
  }
}

void Scheduler::compact() {
  PW_COUNT(kSchedulerCompactions);
  auto live_end = std::remove_if(
      heap_.begin(), heap_.end(), [this](const HeapEntry& e) {
        if (!pool_[e.slot].cancelled) return false;
        release_slot(e.slot);
        return true;
      });
  heap_.erase(live_end, heap_.end());
  tombstones_ = 0;
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

PW_HOT bool Scheduler::pop_one(bool bounded, TimePoint limit) {
  while (!heap_.empty()) {
    if (bounded && heap_.front().at > limit) return false;
    const HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();

    Slot& slot = pool_[top.slot];
    if (slot.cancelled) {  // tombstone: reclaim and keep looking
      --tombstones_;
      release_slot(top.slot);
      continue;
    }
    // Move the callback out and free the slot *before* invoking: the
    // callback may schedule new events (growing the pool) or try to
    // cancel itself (a no-op once the generation is bumped).
    Callback fn = std::move(slot.fn);
    release_slot(top.slot);
    *now_p_ = top.at;
    ++executed_;
    PW_COUNT(kSchedulerEventsExecuted);
#if PW_AUDIT_ENABLED
    // Audit builds re-verify the full invariant set periodically, so a
    // corruption is caught within kAuditPeriod events of its cause.
    if (executed_ % kAuditPeriod == 0) audit();
#endif
    fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(TimePoint until) {
  while (pop_one(/*bounded=*/true, until)) {
  }
  advance_clock(until);
}

void Scheduler::run_all() {
  while (pop_one(/*bounded=*/false, TimePoint{})) {
  }
}

bool Scheduler::run_one() { return pop_one(/*bounded=*/false, TimePoint{}); }

}  // namespace politewifi::sim
