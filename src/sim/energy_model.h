// Radio power states, the energy meter, and battery-life arithmetic.
//
// Calibration targets the paper's Figure 6 subject, an Espressif ESP8266:
//   - modem sleep              ~ 10 mW   (paper: 10 mW unattacked)
//   - idle listen / receive    ~ 230 mW  (paper: >10 pps pins it here)
//   - transmit                 ~ 560 mW  (170 mA @ 3.3 V, datasheet)
//   - per-TX ramp overhead     ~ 230 us of TX-level draw (PA spin-up,
//     PLL settle) — this is what makes per-ACK energy ~150 uJ and gives
//     Figure 6 its linear slope up to ~360 mW at 900 pps.
#pragma once

#include <array>
#include <cstdint>

#include "common/clock.h"

namespace politewifi::sim {

enum class RadioState : std::uint8_t { kOff, kSleep, kIdle, kRx, kTx };
constexpr int kNumRadioStates = 5;

const char* radio_state_name(RadioState s);

/// Transition-legality table for the radio power state machine. Encodes
/// what the MAC/medium mechanics can legitimately do to a radio:
///  - self-transitions are always legal (nested receptions, meter resets);
///  - a sleeping radio can only wake to Idle — Medium::begin_reception
///    gates on !sleeping() and Radio::transmit drops frames while dozing,
///    so Sleep->Rx / Sleep->Tx mark a gating bug upstream;
///  - an Off radio can only power up to Idle; any state may power down.
/// EnergyMeter::set_state PW_DCHECKs this, so audit builds halt on the
/// first illegal hop instead of mis-metering Figure 6.
bool radio_transition_legal(RadioState from, RadioState to);

/// Per-state power draw of a radio, plus per-event overheads.
struct PowerProfile {
  double off_mw = 0.0;
  double sleep_mw = 10.0;
  double idle_mw = 230.0;
  double rx_mw = 230.0;
  double tx_mw = 560.0;
  /// Extra energized time charged at tx_mw per transmission (ramp).
  Duration tx_ramp = microseconds(230);

  /// ESP8266-class low-power IoT module (the Figure 6 victim).
  static PowerProfile esp8266();
  /// Mains-powered AP/laptop — energy still metered, numbers larger.
  static PowerProfile mains_powered();
};

/// Integrates state dwell times into millijoules.
class EnergyMeter {
 public:
  EnergyMeter(PowerProfile profile, TimePoint start)
      : profile_(profile), state_start_(start), meter_start_(start) {}

  RadioState state() const { return state_; }

  /// Switches state, accruing energy for the dwell just ended. When a
  /// timeline profiler is active (and timeline ids are set), the closed
  /// dwell is also emitted as a sim-time trace span.
  void set_state(RadioState next, TimePoint now);

  /// Trace identity for this meter's spans: `pid` is the owning
  /// medium's timeline group, `tid` the radio id. Radio's constructor
  /// sets these; meters without ids (bare tests) never emit spans.
  void set_timeline_ids(std::int64_t pid, std::int64_t tid) {
    timeline_pid_ = pid;
    timeline_tid_ = tid;
  }

  /// Charges the fixed transmit ramp overhead for one TX event.
  void charge_tx_ramp() { ramp_events_++; }

  /// Total energy consumed through `now`, in millijoules.
  double consumed_mj(TimePoint now) const;

  /// Average power since construction (or the last reset), in milliwatts.
  double average_mw(TimePoint now) const;

  /// Dwell time per state (diagnostics / tests).
  Duration dwell(RadioState s) const {
    return dwell_[static_cast<int>(s)];
  }

  /// Restarts the measurement window (state is preserved).
  void reset(TimePoint now);

  const PowerProfile& profile() const { return profile_; }

 private:
  double state_power_mw(RadioState s) const;

  PowerProfile profile_;
  RadioState state_ = RadioState::kIdle;
  std::int64_t timeline_pid_ = -1;  // -1: spans disabled
  std::int64_t timeline_tid_ = 0;
  TimePoint state_start_;
  TimePoint meter_start_;
  double accrued_mj_ = 0.0;
  std::uint64_t ramp_events_ = 0;
  std::array<Duration, kNumRadioStates> dwell_{};
};

/// Battery-life projection (§4.2's camera arithmetic).
struct Battery {
  double capacity_mwh = 2400.0;

  /// Hours until empty at a constant draw.
  double hours_at(double draw_mw) const {
    return draw_mw <= 0.0 ? 1e9 : capacity_mwh / draw_mw;
  }
};

}  // namespace politewifi::sim
