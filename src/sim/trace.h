// Packet capture: the simulator's Wireshark.
//
// A TraceRecorder hooks the medium's trace sink and records every PPDU
// with its parsed frame. It renders the same packet-list view the paper
// screenshots in Figures 2 and 3 (source / destination / info), and can
// export a real pcap file (LINKTYPE_IEEE802_11) readable by actual
// Wireshark.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "frames/serializer.h"
#include "sim/medium.h"

namespace politewifi::sim {

struct TraceEntry {
  TimePoint time{};
  std::string sender_name;  // device name when known
  Bytes raw;                // full on-air MPDU
  phy::TxVector tx;
  frames::Frame frame;      // parsed view
  bool parsed = false;
};

class TraceRecorder {
 public:
  /// Installs this recorder as the medium's trace sink.
  void attach(Medium& medium);

  /// Optional resolver mapping a radio to a human-readable device name.
  using NameResolver = std::function<std::string(const Radio&)>;
  void set_name_resolver(NameResolver resolver) {
    resolver_ = std::move(resolver);
  }

  /// Keep only frames involving `mac` (as any address). Empty = keep all.
  void set_address_filter(const std::vector<MacAddress>& macs) {
    filter_ = macs;
  }

  const std::vector<TraceEntry>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

  /// Wireshark-style packet list:
  ///   No. Time      Source            Destination       Info
  void dump(std::ostream& os, std::size_t max_rows = 0) const;

  /// Writes a classic pcap file with LINKTYPE_IEEE802_11 (105); open it
  /// in Wireshark to see the same exchange the paper shows.
  bool write_pcap(const std::string& path) const;

  /// Count of entries whose frame matches a predicate.
  std::size_t count(
      const std::function<bool(const TraceEntry&)>& pred) const;

 private:
  void record(const TransmissionEvent& event);
  bool passes_filter(const frames::Frame& f) const;

  std::vector<TraceEntry> entries_;
  NameResolver resolver_;
  std::vector<MacAddress> filter_;
};

}  // namespace politewifi::sim
