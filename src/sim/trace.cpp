#include "sim/trace.h"

#include <cstdio>

#include "sim/radio.h"

namespace politewifi::sim {

void TraceRecorder::attach(Medium& medium) {
  medium.set_trace_sink(
      [this](const TransmissionEvent& ev) { record(ev); });
}

bool TraceRecorder::passes_filter(const frames::Frame& f) const {
  if (filter_.empty()) return true;
  for (const auto& mac : filter_) {
    if (f.addr1 == mac || (f.has_addr2() && f.addr2 == mac) ||
        (f.has_addr3() && f.addr3 == mac)) {
      return true;
    }
  }
  return false;
}

void TraceRecorder::record(const TransmissionEvent& event) {
  TraceEntry entry;
  entry.time = event.start;
  // The event's payload is a pooled buffer that will be recycled after
  // delivery; a sink that outlives the callback must copy the octets.
  entry.raw.assign(event.ppdu.octets().begin(), event.ppdu.octets().end());
  entry.tx = event.tx;
  if (resolver_ && event.sender != nullptr) {
    entry.sender_name = resolver_(*event.sender);
  }
  const auto parsed = frames::deserialize(entry.raw);
  if (parsed.frame) {
    entry.frame = *parsed.frame;
    entry.parsed = true;
    if (!passes_filter(entry.frame)) return;
  }
  entries_.push_back(std::move(entry));
}

void TraceRecorder::dump(std::ostream& os, std::size_t max_rows) const {
  os << "No.   Time         Source             Destination        Info\n";
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (max_rows != 0 && n >= max_rows) break;
    ++n;
    char line[256];
    const std::string src =
        e.parsed && e.frame.has_addr2() ? e.frame.addr2.to_string() : "-";
    const std::string dst = e.parsed ? e.frame.addr1.to_string() : "?";
    const std::string info = e.parsed ? e.frame.summary() : "[undecodable]";
    std::snprintf(line, sizeof line, "%-5zu %-12s %-18s %-18s %s\n", n,
                  format_time(e.time).c_str(), src.c_str(), dst.c_str(),
                  info.c_str());
    os << line;
  }
}

bool TraceRecorder::write_pcap(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;

  auto w32 = [f](std::uint32_t v) { std::fwrite(&v, 4, 1, f); };
  auto w16 = [f](std::uint16_t v) { std::fwrite(&v, 2, 1, f); };

  // pcap global header, microsecond timestamps, LINKTYPE_IEEE802_11.
  w32(0xa1b2c3d4);
  w16(2);
  w16(4);
  w32(0);        // thiszone
  w32(0);        // sigfigs
  w32(65535);    // snaplen
  w32(105);      // linktype

  for (const auto& e : entries_) {
    const double t = to_seconds(e.time.time_since_epoch());
    const auto sec = static_cast<std::uint32_t>(t);
    const auto usec = static_cast<std::uint32_t>((t - sec) * 1e6);
    w32(sec);
    w32(usec);
    w32(static_cast<std::uint32_t>(e.raw.size()));
    w32(static_cast<std::uint32_t>(e.raw.size()));
    std::fwrite(e.raw.data(), 1, e.raw.size(), f);
  }
  std::fclose(f);
  return true;
}

std::size_t TraceRecorder::count(
    const std::function<bool(const TraceEntry&)>& pred) const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (pred(e)) ++n;
  }
  return n;
}

}  // namespace politewifi::sim
