#include "sim/medium.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/annotations.h"
#include "common/check.h"
#include "frames/serializer.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "phy/rates.h"
#include "sim/radio.h"

namespace politewifi::sim {

namespace {

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-independent pair key.
std::uint64_t pair_key(std::uint64_t a, std::uint64_t b) {
  if (a > b) std::swap(a, b);
  return splitmix(a * 0x100000001b3ULL + b);
}

/// Hard bound on |z| from the Box–Muller draw in link_shadowing_db: the
/// uniform u1 is at least 2^-54, so sqrt(-2 ln u1) <= sqrt(108 ln 2)
/// ~= 8.6524 and |cos| <= 1. Any radio farther than the range this bound
/// implies is provably below detect_threshold_dbm — skipping it cannot
/// change the reception set.
constexpr double kShadowingBoundSigmas = 8.6524;

/// EIRP ceiling used only to size grid cells (regulatory-max-ish). The
/// per-transmission query radius uses the frame's actual power.
constexpr double kCellSizingTxPowerDbm = 30.0;

constexpr double kMinCellSizeM = 25.0;
constexpr double kMaxCellSizeM = 4096.0;

/// Direct-mapped link-cache sizing: ~this many cache lines per attached
/// radio (a beaconing AP touches every same-channel radio in range, so
/// the live working set scales with the population), clamped so a
/// hello-world sim doesn't pay megabytes and a city doesn't grow without
/// bound. 2^21 lines * 24 B = 48 MB worst case.
constexpr std::size_t kLinkCacheLinesPerRadio = 256;
constexpr std::size_t kLinkCacheMinLines = 1u << 12;
constexpr std::size_t kLinkCacheMaxLines = 1u << 21;

std::uint64_t chan_key_of(const Radio& r) {
  return (static_cast<std::uint64_t>(r.config().band) << 32) |
         static_cast<std::uint32_t>(r.config().channel);
}

}  // namespace

Medium::Medium(Scheduler& scheduler, MediumConfig config, std::uint64_t seed)
    : scheduler_(scheduler),
      config_(config),
      rng_(seed),
      seed_(seed),
      channel_(
          phy::ChannelParams{
              .path_loss_exponent = config.path_loss_exponent,
              .shadowing_sigma_db = config.shadowing_sigma_db,
              .fading = {.rho = config.fading_rho,
                         .sigma_db = config.fading_sigma_db,
                         .coherence_ns = static_cast<std::int64_t>(
                             config.fading_coherence_us * 1000.0)}},
          seed) {
  PW_CHECK(config_.shards >= 1 && config_.shards <= 256,
           "MediumConfig::shards out of range");
  PW_CHECK(config_.shard_cell_m > 0.0, "shard_cell_m must be positive");
  // Shard lattice factorization: the most-square nx x ny with
  // nx * ny == shards (2 -> 1x2, 4 -> 2x2, 9 -> 3x3). Until the owner
  // wires per-shard schedulers, everything homes on the primary.
  std::uint32_t nx =
      static_cast<std::uint32_t>(std::sqrt(double(config_.shards)));
  while (config_.shards % nx != 0) --nx;
  shard_nx_ = nx;
  shard_ny_ = static_cast<std::uint32_t>(config_.shards) / nx;
  shard_schedulers_.assign(1, &scheduler_);
  memos_.resize(static_cast<std::size_t>(config_.shards));
  ppdu_pool_.set_pooling(config_.pool_ppdus);
  timeline_group_ = obs::allocate_timeline_group();
  // Cell edge = detection range at the EIRP ceiling on 2.4 GHz (the band
  // with the smaller reference loss, i.e. the longer reach), so one ring
  // of neighbour cells always covers a real frame's detection disc.
  const double f24 = phy::channel_frequency_hz(phy::Band::k2_4GHz, 6);
  const double r = max_detect_range_m(kCellSizingTxPowerDbm, f24);
  cell_size_m_ = std::clamp(r > 0.0 ? r : kMinCellSizeM, kMinCellSizeM,
                            kMaxCellSizeM);
  // The noise floor is a constant of the config; computing it here (with
  // the same expressions the per-reception path used to run) keeps every
  // downstream SINR bit-identical while removing two libm calls per
  // reception.
  noise_mw_ = dbm_to_mw(thermal_noise_dbm(phy::kChannelBandwidthHz) +
                        config_.noise_figure_db);
  noise_floor_dbm_ = mw_to_dbm(noise_mw_);
}

double Medium::max_detect_range_m(double tx_power_dbm,
                                  double frequency_hz) const {
  for (const RangeMemo& m : range_memo_) {
    if (m.power_dbm == tx_power_dbm && m.freq_hz == frequency_hz) {
      return m.range_m;
    }
  }
  const phy::LogDistancePathLoss model(
      {.exponent = config_.path_loss_exponent,
       .reference_m = 1.0,
       .shadowing_sigma_db = 0.0},
      frequency_hz);
  const double shadow_bound_db =
      config_.shadowing_sigma_db > 0.0
          ? kShadowingBoundSigmas * config_.shadowing_sigma_db
          : 0.0;
  const double headroom_db = tx_power_dbm + shadow_bound_db -
                             config_.detect_threshold_dbm -
                             model.reference_loss_db();
  const double d =
      std::pow(10.0, headroom_db / (10.0 * config_.path_loss_exponent));
  // loss_db floors the distance at 0.1 m; below that the frame is
  // undetectable even with zero separation.
  const double range = d < 0.1 ? 0.0 : d;
  range_memo_[range_memo_next_++ & 7] =
      RangeMemo{tx_power_dbm, frequency_hz, range};
  return range;
}

std::int32_t Medium::cell_coord(double v) const {
  return static_cast<std::int32_t>(std::floor(v / cell_size_m_));
}

std::uint64_t Medium::cell_key_for(const Position& p) const {
  return (static_cast<std::uint64_t>(
              static_cast<std::uint32_t>(cell_coord(p.x)))
          << 32) |
         static_cast<std::uint32_t>(cell_coord(p.y));
}

void Medium::set_shard_schedulers(std::vector<Scheduler*> schedulers) {
  PW_CHECK(schedulers.size() == static_cast<std::size_t>(config_.shards),
           "need exactly one scheduler per shard");
  PW_CHECK(!schedulers.empty() && schedulers.front() == &scheduler_,
           "shard 0 must be the medium's primary scheduler");
  PW_CHECK(radios_.empty(), "set_shard_schedulers after radios attached");
  shard_schedulers_ = std::move(schedulers);
}

Scheduler& Medium::shard_scheduler(std::uint64_t shard) const {
  PW_CHECK(shard < shard_schedulers_.size(),
           "shard %llu out of range (did an event id lose its tag?)",
           static_cast<unsigned long long>(shard));
  return *shard_schedulers_[shard];
}

std::uint32_t Medium::shard_of(const Position& p) const {
  if (config_.shards <= 1) return 0;
  const auto lattice = [this](double v, std::uint32_t n) {
    const auto cell =
        static_cast<std::int64_t>(std::floor(v / config_.shard_cell_m));
    // floor-mod: negative coordinates wrap into [0, n).
    const std::int64_t m = cell % static_cast<std::int64_t>(n);
    return static_cast<std::uint32_t>(m < 0 ? m + n : m);
  };
  return lattice(p.x, shard_nx_) + shard_nx_ * lattice(p.y, shard_ny_);
}

void Medium::refresh_shard_horizon(Radio& radio, double speed_mps) const {
  const TimePoint now = scheduler_.now();
  if (config_.shards <= 1 || speed_mps <= 0.0) {
    radio.shard_check_after_ = now;
    return;
  }
  // Conservative cell-exit horizon: the radio cannot cross a super-cell
  // edge before covering the distance to the nearest one. Called right
  // after a move (anchor == true position there), so the gap is exact up
  // to the position quantum, which only delays a check — never skips a
  // crossing, because on_radio_moved re-checks once the horizon passes.
  const auto edge_gap = [this](double v) {
    const double cell = config_.shard_cell_m;
    const double frac = v - std::floor(v / cell) * cell;
    return std::min(frac, cell - frac);
  };
  const double gap = std::max(
      std::min(edge_gap(radio.rf_position().x), edge_gap(radio.rf_position().y)) -
          config_.position_quantum_m,
      0.0);
  radio.shard_check_after_ =
      now + nanoseconds(static_cast<std::int64_t>(gap / speed_mps * 1e9));
}

void Medium::maybe_migrate_shard(Radio& radio) {
  if (config_.shards <= 1) return;
  if (scheduler_.now() < radio.shard_check_after_) return;
  const std::uint32_t shard = shard_of(radio.rf_position());
  if (shard == radio.shard_) return;
  radio.shard_ = shard;
  radio.scheduler_ = shard_schedulers_[shard];
  ++stats_.shard_handoffs;
  PW_COUNT(kShardHandoffs);
}

Scheduler& Medium::scheduler_for(const Radio& radio) const {
  return *radio.scheduler_;
}

void Medium::index_insert(Radio* radio) {
  radio->grid_chan_ = chan_key_of(*radio);
  radio->grid_cell_ = cell_key_for(radio->rf_position());
  auto& cell = grid_[radio->grid_chan_][radio->grid_cell_];
  // Cells stay sorted by attach order, so fan-out can merge them instead
  // of sorting per transmission. Fresh attachments always land at the
  // end (attach order is monotonic); only a move/retune of an old radio
  // pays the binary search + mid-vector insert.
  if (cell.empty() || cell.back()->attach_order_ < radio->attach_order_) {
    cell.push_back(radio);
  } else {
    cell.insert(std::upper_bound(cell.begin(), cell.end(), radio,
                                 [](const Radio* a, const Radio* b) {
                                   return a->attach_order_ < b->attach_order_;
                                 }),
                radio);
  }
  radio->grid_indexed_ = true;
}

void Medium::index_remove(Radio* radio) {
  if (!radio->grid_indexed_) return;
  auto git = grid_.find(radio->grid_chan_);
  if (git != grid_.end()) {
    auto cit = git->second.find(radio->grid_cell_);
    if (cit != git->second.end()) {
      auto& cell = cit->second;
      if (auto it = std::find(cell.begin(), cell.end(), radio);
          it != cell.end()) {
        cell.erase(it);  // order-preserving: cells stay in attach order
      }
      if (cell.empty()) git->second.erase(cit);
    }
  }
  radio->grid_indexed_ = false;
}

void Medium::attach(Radio* radio) {
  radio->attach_order_ = next_attach_order_++;
  if (config_.shards > 1) {
    PW_CHECK(shard_schedulers_.size() ==
                 static_cast<std::size_t>(config_.shards),
             "attach before set_shard_schedulers on a sharded medium");
    radio->shard_ = shard_of(radio->rf_position());
    radio->scheduler_ = shard_schedulers_[radio->shard_];
  }
  radios_.push_back(radio);
  PW_GAUGE_MAX(kMediumRadiosPeak, radios_.size());
  index_insert(radio);
  maybe_grow_link_cache();
  ++static_epoch_;
}

void Medium::detach(Radio* radio) {
  index_remove(radio);
  std::erase(radios_, radio);
  std::erase(volatile_radios_, radio);
  ++static_epoch_;
}

void Medium::mark_volatile(Radio& radio) {
  if (radio.volatile_) return;
  radio.volatile_ = true;
  volatile_radios_.insert(
      std::upper_bound(volatile_radios_.begin(), volatile_radios_.end(),
                       &radio,
                       [](const Radio* a, const Radio* b) {
                         return a->attach_order_ < b->attach_order_;
                       }),
      &radio);
  ++static_epoch_;
}

void Medium::on_radio_moved(Radio& radio) {
  mark_volatile(radio);
  maybe_migrate_shard(radio);
  if (!radio.grid_indexed_) return;
  const std::uint64_t cell = cell_key_for(radio.rf_position());
  if (cell == radio.grid_cell_) return;
  index_remove(&radio);
  index_insert(&radio);
}

void Medium::on_radio_retuned(Radio& radio) {
  mark_volatile(radio);
  index_remove(&radio);
  index_insert(&radio);
}

double Medium::link_shadowing_db(const Radio& a, const Radio& b) const {
  return channel_.shadowing_db(a.id(), b.id());
}

void Medium::maybe_grow_link_cache() {
  // Each shard's memo gets the full population-scaled capacity: the
  // growth trigger (and so the generation count) is identical across
  // shard counts, and a shard only ever probes its own lines.
  const std::size_t want = std::clamp(
      std::bit_ceil(radios_.size() * kLinkCacheLinesPerRadio),
      kLinkCacheMinLines, kLinkCacheMaxLines);
  if (want <= memos_.front().lines.size()) return;
  for (LinkMemo& memo : memos_) {
    memo.lines.assign(want, LinkBudget{});  // key 0 = empty line
    memo.mask = want - 1;
    memo.mru.assign(want / 2, 0);  // one MRU bit per 2-line set
    memo.fer_lines.assign(want, FerMemoEntry{});  // sinr_db NaN = empty
    memo.fer_mask = want - 1;
    if (channel_.fading_enabled()) {
      // Fading state is pair-keyed (reciprocal links share a line), so
      // half the link-cache line count covers the same population.
      memo.fading_lines.assign(want / 2, FadingLine{});
      memo.fading_mask = want / 2 - 1;
    }
  }
  // Growth drops every link's cached fading chain position (the values
  // are pure functions, so nothing observable changes — the next
  // evaluation just restarts from a block boundary).
  fading_links_live_ = 0;
  // Growth drops the old contents; the generation gauge makes a cache
  // that keeps reallocating (and therefore keeps missing) visible.
  ++stats_.link_cache_generation;
  PW_GAUGE_MAX(kMediumLinkCacheGeneration, stats_.link_cache_generation);
}

double Medium::cached_frame_error_rate(const phy::PhyRate& rate,
                                       double sinr_db, std::size_t octets,
                                       std::uint32_t shard) const {
  const std::uint64_t sinr_bits = std::bit_cast<std::uint64_t>(sinr_db);
  const std::uint32_t packed =
      (std::uint32_t(octets) << 1) |
      (rate.modulation == phy::Modulation::kDsss ? 1u : 0u);
  const std::uint64_t h =
      splitmix(sinr_bits ^ (std::uint64_t(packed) << 32) ^
               std::bit_cast<std::uint64_t>(rate.mbps));
  LinkMemo& memo = memos_[shard];
  FerMemoEntry& e = memo.fer_lines[h & memo.fer_mask];
  if (std::bit_cast<std::uint64_t>(e.sinr_db) == sinr_bits &&
      e.packed == packed && e.mbps == rate.mbps &&
      e.ndbps == rate.bits_per_symbol) {
    ++stats_.fer_cache_hits;
    PW_COUNT(kMediumFerCacheHits);
    return e.fer;
  }
  ++stats_.fer_cache_misses;
  PW_COUNT(kMediumFerCacheMisses);
  // The memo's one sanctioned scalar call: the miss path of the
  // off-switch/interference route, never a per-receiver loop.
  const double fer =
      phy::frame_error_rate(rate, sinr_db, octets);  // pw-lint: allow(scalar-fer-in-fanout)
  e = FerMemoEntry{sinr_db, rate.mbps, fer, packed, rate.bits_per_symbol};
  return fer;
}

double Medium::raw_link_gain_db(const Radio& tx_radio,
                                const Radio& rx_radio) const {
  // The channel model inlines LogDistancePathLoss::loss_db
  // (reference_m = 1.0, no rng) with the reference-loss term memoized
  // per frequency: expression and evaluation order match the model
  // exactly, so this is bit-identical to constructing the model per
  // call — the coherence auditor and the LinkBudget contract test both
  // depend on that.
  return channel_.static_gain_db(
      tx_radio.frequency_hz(),
      distance(tx_radio.rf_position(), rx_radio.rf_position()),
      tx_radio.id(), rx_radio.id());
}

double Medium::link_fading_db(const Radio& a, const Radio& b,
                              std::uint64_t interval,
                              std::uint32_t shard) const {
  const std::uint64_t key = pair_key(a.id(), b.id());
  LinkMemo& memo = memos_[shard];
  phy::ChannelModel::FadingState scratch;
  phy::ChannelModel::FadingState* state = &scratch;
  if (!memo.fading_lines.empty()) {
    // Direct-mapped probe (the pair key is already a splitmix output).
    FadingLine& line = memo.fading_lines[key & memo.fading_mask];
    if (line.key != key) {
      if (line.key == 0) {
        // Cold fill, not a collision: one more link holds live state.
        ++fading_links_live_;
        if (fading_links_live_ > stats_.fading_links_peak) {
          stats_.fading_links_peak = fading_links_live_;
        }
        PW_GAUGE_MAX(kMediumFadingLinksPeak, fading_links_live_);
      }
      line.key = key;
      line.state = phy::ChannelModel::FadingState{};
    }
    state = &line.state;
  }
  std::uint64_t steps = 0;
  const double fade_db = channel_.advance(*state, key, interval, &steps);
  if (steps == 0) {
    ++stats_.fading_cache_hits;
    PW_COUNT(kMediumFadingCacheHits);
  } else {
    stats_.fading_advances += steps;
    PW_COUNT_N(kMediumFadingAdvances, steps);
  }
  return fade_db;
}

double Medium::link_gain_db(const Radio& tx_radio,
                            const Radio& rx_radio) const {
  // Directed key: the budget depends on the transmitter's frequency, so
  // (a->b) and (b->a) are distinct entries when the radios are tuned
  // differently. Ids are per-medium and sequential, so they fit 32 bits
  // for any simulation this side of the heat death.
  LinkMemo& memo = memos_[tx_radio.shard_];  // transmitter's shard memo
  const bool cacheable = !memo.lines.empty() &&
                         tx_radio.id() < (1ULL << 32) &&
                         rx_radio.id() < (1ULL << 32);
  const std::uint64_t key = (tx_radio.id() << 32) | rx_radio.id();
  LinkBudget* line = nullptr;
  std::uint8_t* mru = nullptr;
  std::uint8_t victim_way = 0;
  if (cacheable) {
    const std::uint64_t h = splitmix(key);
    if (config_.link_cache_assoc) {
      // 2-way set: lines 2s and 2s+1 of set s. Probe the MRU way first
      // (the likelier hit), then the other; a miss fills the LRU way, so
      // two live links sharing a set coexist instead of evicting each
      // other on every alternation — the thrash the direct-mapped layout
      // shows on scattered fan-out keys.
      const std::size_t set = h & (memo.mask >> 1);
      mru = &memo.mru[set];
      for (int probe = 0; probe < 2; ++probe) {
        const std::uint8_t way = probe == 0 ? *mru : (*mru ^ 1u);
        LinkBudget* cand = &memo.lines[set * 2 + way];
        if (cand->key == key &&
            cand->tx_version == tx_radio.geometry_version_ &&
            cand->rx_version == rx_radio.geometry_version_) {
          *mru = way;
          ++stats_.link_cache_hits;
          PW_COUNT(kMediumLinkCacheHits);
          return cand->gain_db;
        }
      }
      victim_way = *mru ^ 1u;
      line = &memo.lines[set * 2 + victim_way];
    } else {
      line = &memo.lines[h & memo.mask];
      if (line->key == key && line->tx_version == tx_radio.geometry_version_ &&
          line->rx_version == rx_radio.geometry_version_) {
        ++stats_.link_cache_hits;
        PW_COUNT(kMediumLinkCacheHits);
        return line->gain_db;
      }
    }
  }
  ++stats_.link_cache_misses;
  PW_COUNT(kMediumLinkCacheMisses);
  const double gain = raw_link_gain_db(tx_radio, rx_radio);
  if (line != nullptr) {
    if (line->key != 0 && line->key != key) {
      // A different link owned this line: that's thrash, not cold fill.
      ++stats_.link_cache_evictions;
      PW_COUNT(kMediumLinkCacheEvictions);
    }
    *line = LinkBudget{key, tx_radio.geometry_version_,
                       rx_radio.geometry_version_, gain};
    if (mru != nullptr) *mru = victim_way;
  }
  return gain;
}

double Medium::rx_power_dbm(const Radio& tx_radio, double tx_power_dbm,
                            const Radio& rx_radio) const {
  return tx_power_dbm + link_gain_db(tx_radio, rx_radio);
}

void Medium::collect_candidates(const Radio& sender, double tx_power_dbm,
                                std::vector<Radio*>& out) const {
  const auto git = grid_.find(chan_key_of(sender));
  if (git == grid_.end()) return;
  const double r = max_detect_range_m(tx_power_dbm, sender.frequency_hz());
  if (r <= 0.0) return;
  const Position c = sender.rf_position();
  const double r2 = r * r;
  const std::int32_t cx0 = cell_coord(c.x - r);
  const std::int32_t cx1 = cell_coord(c.x + r);
  const std::int32_t cy0 = cell_coord(c.y - r);
  const std::int32_t cy1 = cell_coord(c.y + r);
  // Distance from a coordinate to the nearest point of a cell's extent.
  const auto axis_gap = [this](double v, std::int32_t cell) {
    const double lo = cell * cell_size_m_;
    const double hi = lo + cell_size_m_;
    return v < lo ? lo - v : (v > hi ? v - hi : 0.0);
  };
  // Gather the (few) cells intersecting the detection disc. Each cell's
  // list is already sorted by attach order, so a k-way merge reproduces
  // the brute-force iteration order byte-identically without the
  // per-transmission sort that used to dominate fan-out at city scale.
  struct Run {
    Radio* const* it;
    Radio* const* end;
  };
  Run runs[16];
  std::size_t nruns = 0;
  std::vector<const std::vector<Radio*>*> overflow;
  const auto add_cell = [&](const std::vector<Radio*>& cell) {
    if (cell.empty()) return;
    if (nruns < std::size(runs)) {
      runs[nruns++] = Run{cell.data(), cell.data() + cell.size()};
    } else {
      overflow.push_back(&cell);  // >16 cells: huge radius corner
    }
  };
  const std::size_t disc_cells =
      std::size_t(cx1 - cx0 + 1) * std::size_t(cy1 - cy0 + 1);
  if (git->second.size() <= disc_cells) {
    // Fewer occupied cells than cells under the disc (the common case
    // with detection-range-sized cells): walk the map once instead of
    // probing the hash per disc cell.
    // pw-analyze: allow(unordered-iteration): only *collects* cells from
    // the hash map; receivers are then merged by attach order, and
    // audit_coherence re-proves byte-identity with brute force.
    for (const auto& [key, cell] : git->second) {
      const auto cx = static_cast<std::int32_t>(key >> 32);
      const auto cy = static_cast<std::int32_t>(key);
      if (cx < cx0 || cx > cx1 || cy < cy0 || cy > cy1) continue;
      const double gx = axis_gap(c.x, cx);
      const double gy = axis_gap(c.y, cy);
      if (gx * gx + gy * gy > r2) continue;  // cell outside detection disc
      add_cell(cell);
    }
  } else {
    for (std::int32_t cx = cx0; cx <= cx1; ++cx) {
      const double gx = axis_gap(c.x, cx);
      for (std::int32_t cy = cy0; cy <= cy1; ++cy) {
        const double gy = axis_gap(c.y, cy);
        if (gx * gx + gy * gy > r2) continue;
        const auto cit = git->second.find(
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx))
             << 32) |
            static_cast<std::uint32_t>(cy));
        if (cit == git->second.end()) continue;
        add_cell(cit->second);
      }
    }
  }
  if (!overflow.empty()) {
    // Rare fallback (tiny cells + enormous radius): concatenate and sort.
    for (std::size_t i = 0; i < nruns; ++i) {
      out.insert(out.end(), runs[i].it, runs[i].end);
    }
    for (const auto* cell : overflow) {
      out.insert(out.end(), cell->begin(), cell->end());
    }
    std::sort(out.begin(), out.end(), [](const Radio* a, const Radio* b) {
      return a->attach_order_ < b->attach_order_;
    });
    return;
  }
  if (nruns == 1) {
    out.insert(out.end(), runs[0].it, runs[0].end);
    return;
  }
  while (nruns > 0) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < nruns; ++i) {
      if ((*runs[i].it)->attach_order_ < (*runs[best].it)->attach_order_) {
        best = i;
      }
    }
    out.push_back(*runs[best].it);
    if (++runs[best].it == runs[best].end) runs[best] = runs[--nruns];
  }
}

void Medium::build_neighbor_list(Radio& sender, double tx_power_dbm) {
  std::vector<Radio*> candidates;
  std::swap(candidates, scratch_);
  candidates.clear();
  collect_candidates(sender, tx_power_dbm, candidates);
  sender.neighbors_.clear();
  for (Radio* rx : candidates) {
    if (rx == &sender || rx->volatile_) continue;
    const double gain = link_gain_db(sender, *rx);
    if (tx_power_dbm + gain < config_.detect_threshold_dbm) continue;
    sender.neighbors_.push_back(NeighborEntry{rx, gain, rx->attach_order_});
  }
  std::swap(candidates, scratch_);
  if (config_.soa_fanout) {
    // SoA lanes: everything the fan-out and batch pass would recompute
    // per entry, evaluated once here with the exact expressions the
    // scalar path uses (the same gain sum, the same dbm_to_mw, the same
    // propagation-delay truncation), so a lane replay is bit-identical
    // to recomputing. Entries are static radios and the list dies on any
    // geometry change (epoch/version checks), so the lanes cannot go
    // stale without the list going stale with them.
    const std::size_t n = sender.neighbors_.size();
    sender.nb_rx_dbm_.resize(n);
    sender.nb_rx_mw_.resize(n);
    sender.nb_prop_ns_.resize(n);
    sender.nb_arrival_rank_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const NeighborEntry& e = sender.neighbors_[i];
      const double rx_dbm = tx_power_dbm + e.gain_db;
      sender.nb_rx_dbm_[i] = rx_dbm;
      sender.nb_rx_mw_[i] = dbm_to_mw(rx_dbm);
      std::int64_t prop_ns = 0;
      if (config_.model_propagation_delay) {
        const double d =
            distance(sender.rf_position(), e.radio->rf_position());
        prop_ns = static_cast<std::int64_t>(d / kSpeedOfLight * 1e9);
      }
      sender.nb_prop_ns_[i] = prop_ns;
      sender.nb_arrival_rank_[i] = static_cast<std::uint32_t>(i);
    }
    // Arrival permutation: delivery events fire in (arrival time, push
    // order). rx_end = tx_end + prop, so sorting ranks by the delay lane
    // (stable: index breaks ties) precomputes the finalize order of any
    // full-list replay.
    std::stable_sort(sender.nb_arrival_rank_.begin(),
                     sender.nb_arrival_rank_.end(),
                     [&sender](std::uint32_t a, std::uint32_t b) {
                       return sender.nb_prop_ns_[a] < sender.nb_prop_ns_[b];
                     });
  } else {
    sender.nb_rx_dbm_.clear();
    sender.nb_rx_mw_.clear();
    sender.nb_prop_ns_.clear();
    sender.nb_arrival_rank_.clear();
  }
  sender.nb_epoch_ = static_epoch_;
  sender.nb_self_version_ = sender.geometry_version_;
  sender.nb_power_dbm_ = tx_power_dbm;
}

std::size_t Medium::acquire_record() {
  if (!free_records_.empty()) {
    const std::size_t idx = free_records_.back();
    free_records_.pop_back();
    return idx;
  }
  // pw-analyze: allow(hot-new): record-pool growth on a cold miss only;
  // steady state recycles through free_records_, witnessed by the
  // bench-regression allocation gate.
  records_.push_back(std::make_unique<TransmissionRecord>());
  return records_.size() - 1;
}

void Medium::release_record(std::size_t rec_idx) {
  TransmissionRecord& rec = *records_[rec_idx];
  rec.ppdu.reset();
  rec.sender = nullptr;
  rec.deliveries.clear();  // keeps capacity for the record's next life
  rec.order.clear();
  rec.next = 0;
  rec.live = false;
  free_records_.push_back(rec_idx);
}

void Medium::batched_frame_error_rates(const phy::PhyRate& rate,
                                       std::size_t octets,
                                       std::span<const double> sinr_db,
                                       std::span<double> fer_out,
                                       std::uint32_t shard) const {
  const std::uint32_t packed =
      (std::uint32_t(octets) << 1) |
      (rate.modulation == phy::Modulation::kDsss ? 1u : 0u);
  const std::uint64_t rate_bits = std::bit_cast<std::uint64_t>(rate.mbps);
  LinkMemo& memo = memos_[shard];
  const auto line_of = [&](double sinr) -> FerMemoEntry& {
    const std::uint64_t h =
        splitmix(std::bit_cast<std::uint64_t>(sinr) ^
                 (std::uint64_t(packed) << 32) ^ rate_bits);
    return memo.fer_lines[h & memo.fer_mask];
  };
  // Pass 1: probe the memo, gather the misses into dense miss lanes.
  batch_miss_idx_scratch_.clear();
  batch_miss_snr_scratch_.clear();
  for (std::size_t i = 0; i < sinr_db.size(); ++i) {
    const FerMemoEntry& e = line_of(sinr_db[i]);
    if (std::bit_cast<std::uint64_t>(e.sinr_db) ==
            std::bit_cast<std::uint64_t>(sinr_db[i]) &&
        e.packed == packed && e.mbps == rate.mbps &&
        e.ndbps == rate.bits_per_symbol) {
      ++stats_.fer_cache_hits;
      PW_COUNT(kMediumFerCacheHits);
      fer_out[i] = e.fer;
      continue;
    }
    ++stats_.fer_cache_misses;
    PW_COUNT(kMediumFerCacheMisses);
    batch_miss_idx_scratch_.push_back(static_cast<std::uint32_t>(i));
    batch_miss_snr_scratch_.push_back(sinr_db[i]);
  }
  if (batch_miss_idx_scratch_.empty()) return;
  // Pass 2: one batched PHY evaluation over the misses (element-for-
  // element identical to scalar phy::frame_error_rate), scattered back
  // and memoized in index order — the insertion sequence a scalar loop
  // would have produced, so line-collision outcomes match too.
  batch_miss_fer_scratch_.resize(batch_miss_idx_scratch_.size());
  phy::frame_error_rate_batch(rate, batch_miss_snr_scratch_, octets,
                              batch_miss_fer_scratch_);
  for (std::size_t k = 0; k < batch_miss_idx_scratch_.size(); ++k) {
    const std::size_t i = batch_miss_idx_scratch_[k];
    const double fer = batch_miss_fer_scratch_[k];
    fer_out[i] = fer;
    line_of(sinr_db[i]) = FerMemoEntry{sinr_db[i], rate.mbps, fer, packed,
                                       rate.bits_per_symbol};
  }
}

void Medium::batch_fer_pass(TransmissionRecord& rec) const {
  // One vectorizable subtract lane for the no-interference SINR of every
  // queued delivery, then every FER through the memo + the batched PHY
  // entry point. finalize_reception consumes the precomputed value only
  // when its interference sum is zero — exactly when the SINR it would
  // compute is the one evaluated here.
  const std::size_t n = rec.deliveries.size();
  batch_sinr_scratch_.resize(n);
  batch_fer_scratch_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch_sinr_scratch_[i] = rec.deliveries[i].power_dbm - noise_floor_dbm_;
  }
  batched_frame_error_rates(rec.tx.rate, rec.ppdu.size(), batch_sinr_scratch_,
                            batch_fer_scratch_, rec.sender->shard_);
  for (std::size_t i = 0; i < n; ++i) {
    rec.deliveries[i].fer = batch_fer_scratch_[i];
  }
}

void Medium::schedule_batch(std::size_t rec_idx, const Radio& sender,
                            std::size_t lane_pushes) {
  TransmissionRecord& rec = *records_[rec_idx];
  const std::size_t n = rec.deliveries.size();
  if (!config_.soa_fanout) {
    // Stable sort by arrival: ties keep fan-out order, which is exactly
    // the order the legacy per-receiver events finalized in (the
    // scheduler is FIFO within a timestamp). Insertion sort, not
    // std::stable_sort: the latter allocates a merge buffer per call,
    // and the list is short and already nearly sorted (arrival time
    // grows with distance, and fan-out visits cells near-to-far-ish),
    // so this stays in place and cheap.
    for (std::size_t i = 1; i < n; ++i) {
      PendingDelivery d = rec.deliveries[i];
      std::size_t j = i;
      for (; j > 0 && d.rx_end < rec.deliveries[j - 1].rx_end; --j) {
        rec.deliveries[j] = rec.deliveries[j - 1];
      }
      rec.deliveries[j] = d;
    }
  } else if (lane_pushes == n && !sender.volatile_ &&
             n == sender.neighbors_.size()) {
    // Pure lane replay: every delivery is neighbor i in list order, so
    // the arrival permutation was already computed when the lanes were
    // built. Copied, not referenced — the sender's list can be rebuilt
    // while this record is still in flight.
    rec.order.assign(sender.nb_arrival_rank_.begin(),
                     sender.nb_arrival_rank_.end());
  } else {
    // Mixed fan-out (volatile interleaves, sleepers, quieter frame):
    // sort indices instead of shuffling 56-byte deliveries in place.
    rec.order.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      rec.order[i] = static_cast<std::uint32_t>(i);
    }
    std::stable_sort(rec.order.begin(), rec.order.end(),
                     [&rec](std::uint32_t a, std::uint32_t b) {
                       return rec.deliveries[a].rx_end <
                              rec.deliveries[b].rx_end;
                     });
  }
  // All group events are scheduled here, inside the transmit() call, so
  // their sequence numbers occupy the same window the per-receiver events
  // did — event order stays byte-identical across the toggles.
  const auto arrival = [&rec](std::size_t k) -> const PendingDelivery& {
    return rec.order.empty() ? rec.deliveries[k] : rec.deliveries[rec.order[k]];
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && arrival(i).rx_end == arrival(i - 1).rx_end) continue;
    ++stats_.delivery_events;
    PW_COUNT(kMediumDeliveryEvents);
    scheduler_for(sender).schedule_at(arrival(i).rx_end,
                                      [this, rec_idx] { run_batch(rec_idx); });
  }
}

void Medium::run_batch(std::size_t rec_idx) {
  // Reference through the unique_ptr: the record is address-stable even
  // if a nested transmit (a receiver ACKing from deliver()) grows
  // records_ mid-loop.
  TransmissionRecord& rec = *records_[rec_idx];
  PW_DCHECK(rec.live, "batch delivery fired on a released record");
  const TimePoint now = scheduler_.now();
  const std::size_t n = rec.deliveries.size();
  while (rec.next < n) {
    const std::size_t k = rec.order.empty() ? rec.next : rec.order[rec.next];
    if (rec.deliveries[k].rx_end != now) break;
    const PendingDelivery d = rec.deliveries[k];
    ++rec.next;
    finalize_reception(d.radio, d.reception_id, rec.ppdu, rec.tx, d.rx_start,
                       d.rx_end, d.power_dbm, d.awake_at_start, rec.sender,
                       d.fer);
  }
  if (rec.next == n) release_record(rec_idx);
}

void Medium::begin_reception(Radio& sender, Radio* rx_radio, double rx_dbm,
                             std::size_t rec_idx, const frames::PpduRef& ppdu,
                             const phy::TxVector& tx, TimePoint start,
                             TimePoint end, double rx_mw,
                             std::int64_t prop_ns) {
  // Finite-speed-of-light arrival: the PPDU occupies [start+d/c, end+d/c]
  // at this receiver. The lane-replay caller hands in the delay it
  // precomputed with this exact expression; everyone else computes it
  // here.
  Duration prop = Duration::zero();
  if (config_.model_propagation_delay) {
    if (prop_ns < 0) {
      const double d =
          distance(sender.rf_position(), rx_radio->rf_position());
      prop_ns = static_cast<std::int64_t>(d / kSpeedOfLight * 1e9);
    }
    prop = nanoseconds(prop_ns);
  }
  const TimePoint rx_start = start + prop;
  const TimePoint rx_end = end + prop;

  const std::uint64_t rid = next_reception_id_++;
  ++stats_.receptions;
  PW_COUNT(kMediumReceptions);
  const bool awake_at_start = !rx_radio->sleeping();
  auto& state = rx_radio->rx_state_;
  state.list.push_back(
      Reception{rid, rx_start, rx_end, rx_dbm,
                rx_mw >= 0.0 ? rx_mw : dbm_to_mw(rx_dbm), awake_at_start});
  // Amortized prune: sweep the list when it doubles, not on every push.
  if (state.list.size() >= state.prune_at) {
    prune(state.list);
    state.prune_at = std::max<std::size_t>(8, state.list.size() * 2);
  }

  // Energy: an awake radio is in RX while a detectable PPDU is on air.
  if (!rx_radio->sleeping() &&
      !rx_radio->transmitting_during(rx_start, rx_end)) {
    rx_radio->rx_nesting_++;
    rx_radio->energy().set_state(RadioState::kRx, rx_start);
  }

  if (rec_idx != kNoRecord) {
    // Batched fan-out: queue the delivery on the transmission's record.
    // No per-receiver event, no per-receiver payload reference.
    records_[rec_idx]->deliveries.push_back(PendingDelivery{
        rx_radio, rid, rx_start, rx_end, rx_dbm, awake_at_start});
    return;
  }

  // Legacy per-receiver scheduling. The capture list stays under
  // SmallFn's inline budget (the PPDU is a pointer-sized ref, not a
  // per-receiver byte copy), so even this path schedules a city-wide
  // fan-out without byte copies. A cross-shard delivery is mirrored into
  // the *receiver's* shard stream here; the shared (clock, seq) timebase
  // makes the merged order identical to the single-heap order.
  scheduler_for(*rx_radio).schedule_at(
      rx_end, [this, rx_radio, rid, ppdu, tx, rx_start, rx_end, rx_dbm,
               awake_at_start, sender_ptr = &sender]() {
        finalize_reception(rx_radio, rid, ppdu, tx, rx_start, rx_end, rx_dbm,
                           awake_at_start, sender_ptr);
      });
}

PW_HOT void Medium::transmit(Radio& sender, std::span<const std::uint8_t> ppdu,
                             const phy::TxVector& tx) {
  frames::PpduRef pooled = ppdu_pool_.acquire();
  pooled.mutable_octets().assign(ppdu.begin(), ppdu.end());
  transmit(sender, std::move(pooled), tx);
}

PW_HOT void Medium::transmit(Radio& sender, frames::PpduRef ppdu,
                             const phy::TxVector& tx) {
  const TimePoint start = scheduler_.now();
  const Duration airtime = phy::ppdu_airtime(tx.rate, ppdu.size());
  const TimePoint end = start + airtime;

  ++stats_.transmissions;
  PW_COUNT(kMediumTransmissions);
#if PW_AUDIT_ENABLED
  // Audit builds spot-check one sender's cached fan-out per period, so a
  // coherence bug is caught near its cause without O(n^2) per frame.
  if (stats_.transmissions % kAuditPeriod == 0) audit_radio(sender);
#endif
  if (trace_) {
    trace_(TransmissionEvent{start, end, &sender, ppdu, tx});
  }

  // Charge the sender: TX state for the airtime, plus ramp overhead.
  sender.energy().set_state(RadioState::kTx, start);
  sender.energy().charge_tx_ramp();
  sender.tx_since_ = start;
  sender.tx_until_ = end;
  scheduler_for(sender).schedule_at(end, [&sender, end] {
    sender.energy().set_state(
        sender.sleeping() ? RadioState::kSleep : RadioState::kIdle, end);
  });

  // One shared buffer for every receiver of this PPDU; receivers only
  // copy it on the (rare) corruption path. Batched mode parks the payload
  // and the delivery list on a pooled record; legacy mode gives each
  // scheduled event its own reference.
  std::size_t rec_idx = kNoRecord;
  if (config_.batched_fanout) {
    rec_idx = acquire_record();
    TransmissionRecord& rec = *records_[rec_idx];
    rec.ppdu = std::move(ppdu);
    rec.tx = tx;
    rec.sender = &sender;
    rec.live = true;
  }
  const frames::PpduRef& shared_ppdu =
      rec_idx != kNoRecord ? records_[rec_idx]->ppdu : ppdu;

  // Tracks whether any delivery of this PPDU lands on a radio homed on a
  // different shard (the "boundary mirror" case); counted once per
  // transmission after the fan-out.
  bool crossed = false;

  // Dynamic fading: evaluated once per transmission at the *transmit*
  // start's coherence interval (a pure function of sim time, so the
  // draw is schedule- and shard-independent), composed on top of the
  // cached static budget per receiver below. The fade only modulates
  // power within the statically-detectable set: a down-fade below the
  // detection threshold drops the reception, but an up-fade never
  // resurrects a link the static budget ruled out — that contract keeps
  // the spatial index's query radius exact with zero fading margin.
  const bool fading = channel_.fading_enabled();
  const std::uint64_t fading_interval =
      fading ? channel_.interval_at(start.time_since_epoch().count()) : 0;

  // Shared by every fan-out flavor: one volatile (recently moved/retuned)
  // radio, checked from scratch.
  const auto try_receiver = [&](Radio* rx_radio) {
    if (rx_radio == &sender) return;
    ++stats_.candidates_scanned;
    PW_COUNT(kMediumFanoutCandidates);
    // A dozing radio missed the preamble; it cannot receive this PPDU no
    // matter what. Skipping it here is both correct and the fast path
    // that lets the 5,000-device city stay cheap.
    if (rx_radio->sleeping()) return;
    if (rx_radio->config().band != sender.config().band ||
        rx_radio->config().channel != sender.config().channel) {
      return;
    }
    double rx_dbm = rx_power_dbm(sender, tx.power_dbm, *rx_radio);
    if (rx_dbm < config_.detect_threshold_dbm) return;
    if (fading) {
      rx_dbm +=
          link_fading_db(sender, *rx_radio, fading_interval, sender.shard_);
      if (rx_dbm < config_.detect_threshold_dbm) return;  // faded below
    }
    crossed |= rx_radio->shard_ != sender.shard_;
    begin_reception(sender, rx_radio, rx_dbm, rec_idx, shared_ppdu, tx, start,
                    end);
  };

  // Deliveries pushed straight off the sender's SoA lanes (schedule_batch
  // reuses the precomputed arrival permutation when the whole fan-out was
  // a lane replay).
  std::size_t lane_pushes = 0;

  const auto fan_out = [&] {
    if (!config_.use_spatial_index) {
      for (Radio* rx_radio : radios_) try_receiver(rx_radio);
      return;
    }

    if (sender.volatile_) {
      // A mover has no stable neighbor list; scan the grid candidates.
      // Borrow the scratch buffer (swap keeps this re-entrancy safe: a
      // nested transmit from a trace sink would just allocate its own).
      std::vector<Radio*> candidates;
      std::swap(candidates, scratch_);
      candidates.clear();
      collect_candidates(sender, tx.power_dbm, candidates);
      for (Radio* rx_radio : candidates) try_receiver(rx_radio);
      std::swap(candidates, scratch_);
      return;
    }

    // Static sender: replay the cached fan-out, interleaving the few
    // volatile radios at their attach positions so reception ids and
    // event order stay byte-identical to the brute-force scan.
    if (sender.nb_epoch_ != static_epoch_ ||
        sender.nb_self_version_ != sender.geometry_version_ ||
        tx.power_dbm > sender.nb_power_dbm_) {
      build_neighbor_list(sender, tx.power_dbm);
    }
    // Lane replay is valid only for the exact power the lanes were built
    // at: every lane double was computed from that power, and every list
    // entry already cleared the detection threshold there.
    const bool lane_replay = config_.soa_fanout && rec_idx != kNoRecord &&
                             tx.power_dbm == sender.nb_power_dbm_;
    auto vit = volatile_radios_.begin();
    const auto vend = volatile_radios_.end();
    const std::size_t nbs = sender.neighbors_.size();
    for (std::size_t i = 0; i < nbs; ++i) {
      const NeighborEntry& e = sender.neighbors_[i];
      while (vit != vend && (*vit)->attach_order_ < e.order) {
        try_receiver(*vit++);
      }
      ++stats_.candidates_scanned;
      PW_COUNT(kMediumFanoutCandidates);
      if (e.radio->sleeping()) continue;
      if (lane_replay) {
        // Pure loads: precomputed rx power, linear power and propagation
        // delay. Counts as a link-cache hit — the per-transmitter lanes
        // are the cache's fan-out-keyed tier. The lanes hold the
        // *static* budget; the fade composes here (same expressions as
        // the scalar path, so both spellings stay bit-identical), and a
        // fade-dropped entry shorts lane_pushes so schedule_batch falls
        // back to the index sort instead of the precomputed rank lane.
        ++stats_.link_cache_hits;
        PW_COUNT(kMediumLinkCacheHits);
        double rx_dbm = sender.nb_rx_dbm_[i];
        double rx_mw = sender.nb_rx_mw_[i];
        if (fading) {
          rx_dbm +=
              link_fading_db(sender, *e.radio, fading_interval, sender.shard_);
          if (rx_dbm < config_.detect_threshold_dbm) continue;  // faded below
          rx_mw = dbm_to_mw(rx_dbm);
        }
        crossed |= e.radio->shard_ != sender.shard_;
        begin_reception(sender, e.radio, rx_dbm, rec_idx, shared_ppdu, tx,
                        start, end, rx_mw, sender.nb_prop_ns_[i]);
        ++lane_pushes;
        continue;
      }
      double rx_dbm = tx.power_dbm + e.gain_db;
      if (rx_dbm < config_.detect_threshold_dbm) continue;  // quieter frame
      if (fading) {
        rx_dbm +=
            link_fading_db(sender, *e.radio, fading_interval, sender.shard_);
        if (rx_dbm < config_.detect_threshold_dbm) continue;  // faded below
      }
      crossed |= e.radio->shard_ != sender.shard_;
      begin_reception(sender, e.radio, rx_dbm, rec_idx, shared_ppdu, tx,
                      start, end);
    }
    while (vit != vend) try_receiver(*vit++);
  };
  fan_out();

  if (crossed) {
    ++stats_.mirrored_tx;
    PW_COUNT(kShardMirroredTx);
  }

  if (rec_idx != kNoRecord) {
    TransmissionRecord& rec = *records_[rec_idx];
    if (rec.deliveries.empty()) {
      release_record(rec_idx);  // nobody in range; recycle immediately
    } else {
      if (config_.soa_fanout && config_.model_frame_errors) {
        batch_fer_pass(rec);
      }
      schedule_batch(rec_idx, sender, lane_pushes);
    }
  }
}

void Medium::prune(std::vector<Reception>& list) const {
  const TimePoint now = scheduler_.now();
  if (!config_.batched_fanout) {
    // Legacy delivery keeps its legacy retention: anything that ended
    // within the last beacon might still be scanned, so the reference
    // pipeline's reception-list churn stays faithful to what it was.
    std::erase_if(list, [now](const Reception& r) {
      return r.end + milliseconds(10) < now;
    });
    return;
  }
  // A record is dead once (a) its own finalize event has fired (end < now
  // — events at `end` run before time moves past it) and (b) it cannot
  // overlap any reception still pending on this radio: overlap with a
  // pending p needs end > p.start, so end <= min pending start rules it
  // out. Receptions begin at transmit time, so nothing scheduled later
  // can start before `now` — dropping these entries provably never
  // changes an interference sum, a carrier-sense answer, or a finalize
  // lookup. (A fixed 10 ms horizon used to stand in for this; under a
  // kHz-rate injection stream it kept hundreds of dead entries per radio
  // and their O(n) scans dominated the delivery path.)
  TimePoint min_pending_start = TimePoint::max();
  for (const Reception& r : list) {
    if (r.end >= now && r.start < min_pending_start) {
      min_pending_start = r.start;
    }
  }
  std::erase_if(list, [now, min_pending_start](const Reception& r) {
    return r.end < now && r.end <= min_pending_start;
  });
}

bool Medium::busy_for(const Radio& radio) const {
  const TimePoint now = scheduler_.now();
  if (radio.transmitting_during(now, now + nanoseconds(1))) return true;
  for (const auto& r : radio.rx_state_.list) {
    if (r.start <= now && now < r.end &&
        r.power_dbm >= config_.cs_threshold_dbm) {
      return true;
    }
  }
  return false;
}

void Medium::finalize_reception(Radio* receiver, std::uint64_t reception_id,
                                const frames::PpduRef& ppdu,
                                const phy::TxVector& tx, TimePoint start,
                                TimePoint end, double power_dbm,
                                bool awake_at_start, const Radio* sender,
                                double batch_fer) {
  auto& list = receiver->rx_state_.list;

  // Settle RX energy state first.
  if (receiver->rx_nesting_ > 0) {
    receiver->rx_nesting_--;
    if (receiver->rx_nesting_ == 0 &&
        !receiver->transmitting_during(end, end + nanoseconds(1))) {
      receiver->energy().set_state(
          receiver->sleeping() ? RadioState::kSleep : RadioState::kIdle, end);
    }
  }

  // Half-duplex and sleep gating. `awake_at_start` rode along with the
  // delivery (batched record or legacy capture) instead of being fished
  // out of the reception list — same value, no O(list) lookup.
  if (!awake_at_start || receiver->sleeping()) return;
  if (receiver->transmitting_during(start, end)) return;

  // Interference: sum other receptions overlapping [start, end]. The
  // per-reception linear power is precomputed at push time, so the
  // common no-overlap case runs without a single libm call.
  double interference_mw = 0.0;
  for (const auto& r : list) {
    if (r.id == reception_id) continue;
    if (r.start < end && r.end > start) {
      interference_mw += r.power_mw;
    }
  }

  const double sinr_db =
      interference_mw == 0.0
          ? power_dbm - noise_floor_dbm_
          : power_dbm - mw_to_dbm(noise_mw_ + interference_mw);

  bool corrupted = false;
  if (interference_mw > 0.0 &&
      power_dbm - mw_to_dbm(interference_mw) < config_.capture_margin_db) {
    corrupted = true;  // collision without capture
  } else if (sinr_db < phy::kPreambleDetectSnrDb) {
    return;  // not even detectable as a frame
  } else if (config_.model_frame_errors) {
    // The SoA batch pass precomputed the no-interference FER at transmit
    // time; it is this reception's FER exactly when the interference sum
    // is zero (then sinr_db above equals the batch's input bit-for-bit).
    // The Bernoulli draw stays HERE, in delivery order, so the medium
    // RNG stream is identical with the batch pass on or off.
    const double fer =
        batch_fer >= 0.0 && interference_mw == 0.0
            ? batch_fer
            : cached_frame_error_rate(tx.rate, sinr_db, ppdu.size(),
                                      sender != nullptr ? sender->shard_ : 0);
    if (rng_.bernoulli(fer)) corrupted = true;
  }

  const Bytes* payload = &ppdu.octets();
  frames::PpduRef damaged_ref;
  if (corrupted) {
    // Channel damage: flip bits so the FCS fails at the MAC. The shared
    // buffer is immutable, so only this copy-on-corrupt path ever copies
    // payload octets after transmit() took ownership — and the copy lands
    // in a pooled buffer, not a fresh heap block.
    damaged_ref = ppdu_pool_.acquire();
    Bytes& damaged = damaged_ref.mutable_octets();
    damaged.assign(ppdu.octets().begin(), ppdu.octets().end());
    stats_.ppdu_bytes_copied += damaged.size();
    PW_COUNT_N(kMediumPpduBytesCopied, damaged.size());
    frames::corrupt(damaged, 3, splitmix(reception_id));
    payload = &damaged;
  }

  phy::RxVector rx;
  rx.rate = tx.rate;
  rx.rssi_dbm = power_dbm;
  rx.snr_db = sinr_db;
  if (receiver->config().capture_csi && !corrupted && sender != nullptr) {
    if (csi_) rx.csi = csi_(*sender, *receiver, end);
    if (!rx.csi) {
      // Default: stable static multipath per link, geometry-seeded.
      const std::uint64_t key = pair_key(sender->id(), receiver->id());
      auto it = static_paths_.find(key);
      if (it == static_paths_.end()) {
        Rng path_rng(key ^ seed_);
        const double d =
            distance(sender->rf_position(), receiver->rf_position());
        it = static_paths_.emplace(key, phy::make_static_paths(d, 4, path_rng))
                 .first;
      }
      Rng noise_rng(splitmix(reception_id) ^ seed_);
      rx.csi = phy::evaluate_csi(sender->frequency_hz(), it->second, {},
                                 0.01, noise_rng, end);
    }
  }

  receiver->deliver(*payload, rx);
}

void Medium::audit_radio(const Radio& radio) const {
  // Grid residency: the recorded (channel, cell) keys must match what the
  // radio's current tuning and position imply, and the radio must sit in
  // exactly that cell. A position mutated without Medium::on_radio_moved
  // (the classic stale-cache bug) trips here.
  if (radio.grid_indexed_) {
    PW_CHECK(radio.grid_chan_ == chan_key_of(radio),
             "radio %llu indexed under stale channel key",
             static_cast<unsigned long long>(radio.id()));
    PW_CHECK(radio.grid_cell_ == cell_key_for(radio.rf_position()),
             "radio %llu indexed under stale grid cell (moved without "
             "on_radio_moved?)",
             static_cast<unsigned long long>(radio.id()));
    const auto git = grid_.find(radio.grid_chan_);
    PW_CHECK(git != grid_.end(), "radio %llu's channel missing from grid",
             static_cast<unsigned long long>(radio.id()));
    const auto cit = git->second.find(radio.grid_cell_);
    PW_CHECK(cit != git->second.end(),
             "radio %llu's cell missing from grid",
             static_cast<unsigned long long>(radio.id()));
    PW_CHECK(std::count(cit->second.begin(), cit->second.end(), &radio) == 1,
             "radio %llu not exactly once in its grid cell",
             static_cast<unsigned long long>(radio.id()));
  }

  // Neighbor-list coherence: a valid cached fan-out must equal the
  // brute-force reception set — same receivers, same order, bit-identical
  // link gains — because transmit() replays it instead of scanning.
  const bool list_valid = !radio.volatile_ &&
                          radio.nb_epoch_ == static_epoch_ &&
                          radio.nb_self_version_ == radio.geometry_version_;
  if (!list_valid) return;
  std::size_t i = 0;
  for (const Radio* rx : radios_) {
    if (rx == &radio || rx->volatile_) continue;
    if (chan_key_of(*rx) != chan_key_of(radio)) continue;
    const double gain = raw_link_gain_db(radio, *rx);
    if (radio.nb_power_dbm_ + gain < config_.detect_threshold_dbm) continue;
    PW_CHECK(i < radio.neighbors_.size(),
             "neighbor list of radio %llu misses detectable radio %llu",
             static_cast<unsigned long long>(radio.id()),
             static_cast<unsigned long long>(rx->id()));
    const NeighborEntry& e = radio.neighbors_[i++];
    PW_CHECK(e.radio == rx && e.order == rx->attach_order_,
             "neighbor list of radio %llu diverges from brute force at "
             "entry %zu",
             static_cast<unsigned long long>(radio.id()), i - 1);
    PW_CHECK(std::bit_cast<std::uint64_t>(e.gain_db) ==
                 std::bit_cast<std::uint64_t>(gain),
             "cached gain %.17g != recomputed %.17g for link %llu->%llu",
             e.gain_db, gain, static_cast<unsigned long long>(radio.id()),
             static_cast<unsigned long long>(rx->id()));
  }
  PW_CHECK_EQ(i, radio.neighbors_.size());

  // SoA lane coherence: every lane value a replay would load must be
  // bit-identical to what the scalar path computes from the (already
  // audited) cached gains, and the arrival permutation must be the
  // stable (delay, index) sort the scheduler's tie-breaking implies.
  if (config_.soa_fanout) {
    const std::size_t n = radio.neighbors_.size();
    PW_CHECK_EQ(radio.nb_rx_dbm_.size(), n);
    PW_CHECK_EQ(radio.nb_rx_mw_.size(), n);
    PW_CHECK_EQ(radio.nb_prop_ns_.size(), n);
    PW_CHECK_EQ(radio.nb_arrival_rank_.size(), n);
    for (std::size_t k = 0; k < n; ++k) {
      const NeighborEntry& e = radio.neighbors_[k];
      const double rx_dbm = radio.nb_power_dbm_ + e.gain_db;
      PW_CHECK(std::bit_cast<std::uint64_t>(radio.nb_rx_dbm_[k]) ==
                   std::bit_cast<std::uint64_t>(rx_dbm),
               "rx-power lane %.17g != recomputed %.17g at entry %zu of "
               "radio %llu",
               radio.nb_rx_dbm_[k], rx_dbm, k,
               static_cast<unsigned long long>(radio.id()));
      PW_CHECK(std::bit_cast<std::uint64_t>(radio.nb_rx_mw_[k]) ==
                   std::bit_cast<std::uint64_t>(dbm_to_mw(rx_dbm)),
               "linear-power lane diverges at entry %zu of radio %llu", k,
               static_cast<unsigned long long>(radio.id()));
      std::int64_t prop_ns = 0;
      if (config_.model_propagation_delay) {
        const double d =
            distance(radio.rf_position(), e.radio->rf_position());
        prop_ns = static_cast<std::int64_t>(d / kSpeedOfLight * 1e9);
      }
      PW_CHECK(radio.nb_prop_ns_[k] == prop_ns,
               "propagation lane %lld != recomputed %lld at entry %zu of "
               "radio %llu",
               static_cast<long long>(radio.nb_prop_ns_[k]),
               static_cast<long long>(prop_ns), k,
               static_cast<unsigned long long>(radio.id()));
    }
    std::vector<std::uint32_t> want(n);
    for (std::size_t k = 0; k < n; ++k) {
      want[k] = static_cast<std::uint32_t>(k);
    }
    std::stable_sort(want.begin(), want.end(),
                     [&radio](std::uint32_t a, std::uint32_t b) {
                       return radio.nb_prop_ns_[a] < radio.nb_prop_ns_[b];
                     });
    PW_CHECK(radio.nb_arrival_rank_ == want,
             "arrival-rank lane of radio %llu is not the stable delay sort",
             static_cast<unsigned long long>(radio.id()));
  }
}

void Medium::audit_coherence() const {
  // Per-radio slices: grid residency + cached fan-outs.
  for (const Radio* r : radios_) audit_radio(*r);

  // Grid totals: cells hold only attached, indexed radios, in strictly
  // increasing attach order (the merge in collect_candidates depends on
  // it), and every indexed radio is accounted for exactly once.
  std::size_t in_grid = 0;
  // pw-analyze: allow(unordered-iteration): the auditor's grid walk is
  // order-independent membership checking; nothing it visits feeds the
  // event stream.
  for (const auto& [chan, cells] : grid_) {
    // pw-analyze: allow(unordered-iteration): same auditor walk, inner map.
    for (const auto& [cell_key, cell] : cells) {
      PW_CHECK(!cell.empty(), "grid retains an empty cell");
      for (std::size_t k = 0; k < cell.size(); ++k) {
        const Radio* r = cell[k];
        PW_CHECK(std::count(radios_.begin(), radios_.end(), r) == 1,
                 "grid cell holds a detached radio");
        PW_CHECK(r->grid_indexed_ && r->grid_chan_ == chan &&
                     r->grid_cell_ == cell_key,
                 "radio %llu's grid bookkeeping disagrees with the cell "
                 "holding it",
                 static_cast<unsigned long long>(r->id()));
        PW_CHECK(k == 0 ||
                     cell[k - 1]->attach_order_ < r->attach_order_,
                 "grid cell not in attach order at position %zu", k);
      }
      in_grid += cell.size();
    }
  }
  std::size_t indexed = 0;
  for (const Radio* r : radios_) indexed += r->grid_indexed_ ? 1 : 0;
  PW_CHECK_EQ(in_grid, indexed);

  // Volatile list: exactly the flagged radios, in attach order.
  std::size_t flagged = 0;
  for (const Radio* r : radios_) flagged += r->volatile_ ? 1 : 0;
  PW_CHECK_EQ(flagged, volatile_radios_.size());
  for (std::size_t k = 0; k < volatile_radios_.size(); ++k) {
    PW_CHECK(volatile_radios_[k]->volatile_,
             "non-volatile radio on the volatile list");
    PW_CHECK(k == 0 || volatile_radios_[k - 1]->attach_order_ <
                           volatile_radios_[k]->attach_order_,
             "volatile list not in attach order at position %zu", k);
  }

  // Link-cache lines that would be served as hits (key decodes to two
  // attached radios whose geometry versions match) must hold exactly the
  // gain a fresh computation produces.
  std::unordered_map<std::uint64_t, const Radio*> by_id;
  for (const Radio* r : radios_) by_id.emplace(r->id(), r);
  for (const LinkMemo& memo : memos_) {
    for (const LinkBudget& line : memo.lines) {
      if (line.key == 0) continue;
      const auto tx = by_id.find(line.key >> 32);
      const auto rx = by_id.find(line.key & 0xffffffffULL);
      if (tx == by_id.end() || rx == by_id.end()) continue;  // detached
      if (line.tx_version != tx->second->geometry_version_ ||
          line.rx_version != rx->second->geometry_version_) {
        continue;  // stale line: the next lookup misses and recomputes
      }
      const double gain = raw_link_gain_db(*tx->second, *rx->second);
      PW_CHECK(std::bit_cast<std::uint64_t>(line.gain_db) ==
                   std::bit_cast<std::uint64_t>(gain),
               "link cache line %.17g != recomputed %.17g for %llu->%llu "
               "(position changed without a version bump?)",
               line.gain_db, gain,
               static_cast<unsigned long long>(tx->second->id()),
               static_cast<unsigned long long>(rx->second->id()));
    }
  }

  // Fading-state lines are caches of a pure function: every live line
  // must hold exactly the value a from-scratch evaluation of its
  // (link, interval) produces, or the incremental advance drifted off
  // the counter-based stream.
  for (const LinkMemo& memo : memos_) {
    for (const FadingLine& line : memo.fading_lines) {
      if (line.key == 0 || !line.state.valid) continue;
      const double fresh = channel_.fading_db(line.key, line.state.interval);
      PW_CHECK(std::bit_cast<std::uint64_t>(line.state.value_db) ==
                   std::bit_cast<std::uint64_t>(fresh),
               "fading line %.17g != recomputed %.17g for link key %llu at "
               "interval %llu",
               line.state.value_db, fresh,
               static_cast<unsigned long long>(line.key),
               static_cast<unsigned long long>(line.state.interval));
    }
  }

  // Indexed-vs-brute-force spot check: for every attached radio the grid
  // query must return an attach-ordered, same-channel candidate list
  // containing every radio a brute-force range scan would keep.
  std::vector<Radio*> candidates;
  for (const Radio* sender : radios_) {
    const double probe_dbm = 20.0;
    candidates.clear();
    collect_candidates(*sender, probe_dbm, candidates);
    for (std::size_t k = 0; k < candidates.size(); ++k) {
      PW_CHECK(chan_key_of(*candidates[k]) == chan_key_of(*sender),
               "grid query crossed channels");
      PW_CHECK(k == 0 || candidates[k - 1]->attach_order_ <
                             candidates[k]->attach_order_,
               "grid query result not in attach order at position %zu", k);
    }
    const double r = max_detect_range_m(probe_dbm, sender->frequency_hz());
    for (Radio* rx : radios_) {
      if (chan_key_of(*rx) != chan_key_of(*sender)) continue;
      if (distance(sender->rf_position(), rx->rf_position()) > r) continue;
      PW_CHECK(std::count(candidates.begin(), candidates.end(), rx) == 1,
               "grid query missed in-range radio %llu for sender %llu",
               static_cast<unsigned long long>(rx->id()),
               static_cast<unsigned long long>(sender->id()));
    }
  }

  // PPDU pool internals: free-list flags and refcounts must agree.
  ppdu_pool_.audit();

  // Transmission records: the free list must hold exactly the non-live
  // record slots, each exactly once, and a free record must not pin a
  // payload buffer or undelivered receptions.
  std::vector<bool> is_free(records_.size(), false);
  for (const std::size_t idx : free_records_) {
    PW_CHECK(idx < records_.size(), "free-record index out of range");
    PW_CHECK(!is_free[idx], "record %zu on the free list twice", idx);
    is_free[idx] = true;
  }
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const TransmissionRecord& rec = *records_[i];
    PW_CHECK(rec.live != is_free[i],
             "record %zu live flag disagrees with the free list", i);
    if (!rec.live) {
      PW_CHECK(!rec.ppdu && rec.deliveries.empty() && rec.order.empty() &&
                   rec.next == 0,
               "released record %zu still pins payload or deliveries", i);
    } else {
      PW_CHECK(static_cast<bool>(rec.ppdu),
               "live record %zu has no payload", i);
      PW_CHECK(rec.next <= rec.deliveries.size(),
               "record %zu delivery cursor out of range", i);
      PW_CHECK(rec.order.empty() || rec.order.size() == rec.deliveries.size(),
               "record %zu finalize order is not a full permutation", i);
    }
  }
}

}  // namespace politewifi::sim
