#include "sim/medium.h"

#include <algorithm>
#include <cmath>

#include "frames/serializer.h"
#include "phy/rates.h"
#include "sim/radio.h"

namespace politewifi::sim {

namespace {

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-independent pair key.
std::uint64_t pair_key(std::uint64_t a, std::uint64_t b) {
  if (a > b) std::swap(a, b);
  return splitmix(a * 0x100000001b3ULL + b);
}

}  // namespace

Medium::Medium(Scheduler& scheduler, MediumConfig config, std::uint64_t seed)
    : scheduler_(scheduler), config_(config), rng_(seed), seed_(seed) {}

void Medium::attach(Radio* radio) { radios_.push_back(radio); }

void Medium::detach(Radio* radio) {
  std::erase(radios_, radio);
  active_.erase(radio);
}

double Medium::link_shadowing_db(const Radio& a, const Radio& b) const {
  if (config_.shadowing_sigma_db <= 0.0) return 0.0;
  // Box-Muller on two deterministic uniforms from the pair key.
  const std::uint64_t k = pair_key(a.id(), b.id()) ^ seed_;
  const double u1 =
      (double(splitmix(k) >> 11) + 0.5) / 9007199254740992.0;  // (0,1)
  const double u2 = (double(splitmix(k + 1) >> 11) + 0.5) / 9007199254740992.0;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return z * config_.shadowing_sigma_db;
}

double Medium::rx_power_dbm(const Radio& tx_radio, double tx_power_dbm,
                            const Radio& rx_radio) const {
  const phy::LogDistancePathLoss model(
      {.exponent = config_.path_loss_exponent,
       .reference_m = 1.0,
       .shadowing_sigma_db = 0.0},
      tx_radio.frequency_hz());
  const double d = distance(tx_radio.position(), rx_radio.position());
  return tx_power_dbm - model.loss_db(d) +
         link_shadowing_db(tx_radio, rx_radio);
}

void Medium::transmit(Radio& sender, Bytes ppdu, const phy::TxVector& tx) {
  const TimePoint start = scheduler_.now();
  const Duration airtime = phy::ppdu_airtime(tx.rate, ppdu.size());
  const TimePoint end = start + airtime;

  if (trace_) {
    trace_(TransmissionEvent{start, end, &sender, ppdu, tx});
  }

  // Charge the sender: TX state for the airtime, plus ramp overhead.
  sender.energy().set_state(RadioState::kTx, start);
  sender.energy().charge_tx_ramp();
  sender.tx_since_ = start;
  sender.tx_until_ = end;
  scheduler_.schedule_at(end, [&sender, end] {
    sender.energy().set_state(
        sender.sleeping() ? RadioState::kSleep : RadioState::kIdle, end);
  });

  for (Radio* rx_radio : radios_) {
    if (rx_radio == &sender) continue;
    // A dozing radio missed the preamble; it cannot receive this PPDU no
    // matter what. Skipping it here is both correct and the fast path that
    // lets the 5,000-device city stay cheap.
    if (rx_radio->sleeping()) continue;
    if (rx_radio->config().band != sender.config().band ||
        rx_radio->config().channel != sender.config().channel) {
      continue;
    }
    const double rx_dbm = rx_power_dbm(sender, tx.power_dbm, *rx_radio);
    if (rx_dbm < config_.detect_threshold_dbm) continue;

    // Finite-speed-of-light arrival: the PPDU occupies [start+d/c, end+d/c]
    // at this receiver.
    Duration prop = Duration::zero();
    if (config_.model_propagation_delay) {
      const double d = distance(sender.position(), rx_radio->position());
      prop = nanoseconds(
          static_cast<std::int64_t>(d / kSpeedOfLight * 1e9));
    }
    const TimePoint rx_start = start + prop;
    const TimePoint rx_end = end + prop;

    const std::uint64_t rid = next_reception_id_++;
    auto& list = active_[rx_radio];
    prune(list);
    list.push_back(Reception{rid, rx_start, rx_end, rx_dbm,
                             !rx_radio->sleeping()});

    // Energy: an awake radio is in RX while a detectable PPDU is on air.
    if (!rx_radio->sleeping() &&
        !rx_radio->transmitting_during(rx_start, rx_end)) {
      rx_radio->rx_nesting_++;
      rx_radio->energy().set_state(RadioState::kRx, rx_start);
    }

    scheduler_.schedule_at(rx_end, [this, rx_radio, rid, ppdu, tx, rx_start,
                                    rx_end, rx_dbm,
                                    sender_ptr = &sender]() mutable {
      finalize_reception(rx_radio, rid, std::move(ppdu), tx, rx_start, rx_end,
                         rx_dbm, sender_ptr);
    });
  }
}

void Medium::prune(std::vector<Reception>& list) const {
  const TimePoint now = scheduler_.now();
  // Keep receptions that might still interfere with an in-flight frame:
  // anything that ended more than a beacon ago is irrelevant.
  std::erase_if(list, [now](const Reception& r) {
    return r.end + milliseconds(10) < now;
  });
}

bool Medium::busy_for(const Radio& radio) const {
  const TimePoint now = scheduler_.now();
  if (radio.transmitting_during(now, now + nanoseconds(1))) return true;
  const auto it = active_.find(&radio);
  if (it == active_.end()) return false;
  for (const auto& r : it->second) {
    if (r.start <= now && now < r.end &&
        r.power_dbm >= config_.cs_threshold_dbm) {
      return true;
    }
  }
  return false;
}

void Medium::finalize_reception(Radio* receiver, std::uint64_t reception_id,
                                Bytes ppdu, const phy::TxVector& tx,
                                TimePoint start, TimePoint end,
                                double power_dbm, const Radio* sender) {
  auto& list = active_[receiver];

  // Settle RX energy state first.
  const bool was_counted =
      !receiver->sleeping() || receiver->rx_nesting_ > 0;
  if (receiver->rx_nesting_ > 0) {
    receiver->rx_nesting_--;
    if (receiver->rx_nesting_ == 0 &&
        !receiver->transmitting_during(end, end + nanoseconds(1))) {
      receiver->energy().set_state(
          receiver->sleeping() ? RadioState::kSleep : RadioState::kIdle, end);
    }
  }
  (void)was_counted;

  // Find our reception record (and whether the radio was awake for it).
  bool awake_at_start = false;
  for (const auto& r : list) {
    if (r.id == reception_id) {
      awake_at_start = r.receiver_awake_at_start;
      break;
    }
  }

  // Half-duplex and sleep gating.
  if (!awake_at_start || receiver->sleeping()) return;
  if (receiver->transmitting_during(start, end)) return;

  // Interference: sum other receptions overlapping [start, end].
  double interference_mw = 0.0;
  for (const auto& r : list) {
    if (r.id == reception_id) continue;
    if (r.start < end && r.end > start) {
      interference_mw += dbm_to_mw(r.power_dbm);
    }
  }

  const double noise_mw =
      dbm_to_mw(thermal_noise_dbm(phy::kChannelBandwidthHz) +
                config_.noise_figure_db);
  const double sinr_db =
      power_dbm - mw_to_dbm(noise_mw + interference_mw);

  bool corrupted = false;
  if (interference_mw > 0.0 &&
      power_dbm - mw_to_dbm(interference_mw) < config_.capture_margin_db) {
    corrupted = true;  // collision without capture
  } else if (sinr_db < phy::kPreambleDetectSnrDb) {
    return;  // not even detectable as a frame
  } else if (config_.model_frame_errors) {
    const double fer = phy::frame_error_rate(tx.rate, sinr_db, ppdu.size());
    if (rng_.bernoulli(fer)) corrupted = true;
  }

  if (corrupted) {
    // Channel damage: flip bits so the FCS fails at the MAC.
    frames::corrupt(ppdu, 3, splitmix(reception_id));
  }

  phy::RxVector rx;
  rx.rate = tx.rate;
  rx.rssi_dbm = power_dbm;
  rx.snr_db = sinr_db;
  if (receiver->config().capture_csi && !corrupted && sender != nullptr) {
    if (csi_) rx.csi = csi_(*sender, *receiver, end);
    if (!rx.csi) {
      // Default: stable static multipath per link, geometry-seeded.
      const std::uint64_t key = pair_key(sender->id(), receiver->id());
      auto it = static_paths_.find(key);
      if (it == static_paths_.end()) {
        Rng path_rng(key ^ seed_);
        const double d = distance(sender->position(), receiver->position());
        it = static_paths_.emplace(key, phy::make_static_paths(d, 4, path_rng))
                 .first;
      }
      Rng noise_rng(splitmix(reception_id) ^ seed_);
      rx.csi = phy::evaluate_csi(sender->frequency_hz(), it->second, {},
                                 0.01, noise_rng, end);
    }
  }

  receiver->deliver(ppdu, rx);
}

}  // namespace politewifi::sim
