// Simulation facade: owns the scheduler, medium and devices, and offers
// the builders every experiment starts from.
#pragma once

#include <memory>
#include <vector>

#include "crypto/wpa2.h"
#include "sim/device.h"
#include "sim/shard.h"
#include "sim/trace.h"

namespace politewifi::sim {

struct SimulationConfig {
  MediumConfig medium{};
  SchedulerConfig scheduler{};
  std::uint64_t seed = 42;
};

class Simulation {
 public:
  explicit Simulation(SimulationConfig config = {});

  Scheduler& scheduler() { return scheduler_; }
  Medium& medium() { return medium_; }
  Rng& rng() { return rng_; }
  TimePoint now() const { return scheduler_.now(); }
  /// Runs events for `d` of simulated time. With MediumConfig::shards > 1
  /// the shard executor merges the per-shard event streams in global
  /// (time, seq) order — byte-identical to the single-scheduler run.
  void run_for(Duration d) {
    if (executor_) {
      executor_->run_until(now() + d);
    } else {
      scheduler_.run_for(d);
    }
  }

  /// Adds a device. The MAC address must be unique in this simulation.
  Device& add_device(DeviceInfo info, const MacAddress& mac,
                     RadioConfig radio_config, mac::MacConfig mac_overrides = {});

  /// Convenience: a WPA2 AP at `position` (starts beaconing).
  Device& add_ap(const std::string& name, const MacAddress& mac,
                 Position position, mac::ApConfig config = {});

  /// Convenience: a client configured to join `ap`'s SSID.
  Device& add_client(const std::string& name, const MacAddress& mac,
                     Position position, mac::ClientConfig config = {});

  /// Runs the simulation until `client`'s link to its AP is established
  /// (through the real over-the-air handshake). Returns false on timeout.
  bool establish(Device& client, Duration timeout = seconds(10));

  /// Installs an established WPA2 link between `ap` and `client` without
  /// airtime (population-scale setup). Uses the fast PTK.
  void establish_instantly(Device& ap, Device& client);

  const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }

  Device* find_device(const MacAddress& mac);

  /// Attaches and returns a trace recorder wired to this medium with a
  /// name resolver over this simulation's devices.
  TraceRecorder& trace();

 private:
  SimulationConfig config_;
  Scheduler scheduler_;
  Medium medium_;
  Rng rng_;
  /// Shard schedulers 1..S-1 (shard 0 is scheduler_). They adopt
  /// scheduler_'s timebase before any event exists, so one (clock, seq)
  /// pair spans all shards and the executor's merge is exact.
  std::vector<std::unique_ptr<Scheduler>> extra_schedulers_;
  std::unique_ptr<ShardExecutor> executor_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unique_ptr<TraceRecorder> trace_;
};

/// Derives the same "fast PTK" both roles use for instant establishment.
crypto::Ptk fast_link_ptk(const MacAddress& ap, const MacAddress& sta);

}  // namespace politewifi::sim
