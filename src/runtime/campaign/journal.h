// Campaign journal: the durable record of progress inside a campaign
// directory, split across two files with sharply different contracts.
//
//   results.jsonl  — append-only, one compact record per completed job,
//                    flushed before the job counts as done. This file is
//                    the single source of truth for completion and is
//                    covered by the determinism contract: an interrupted
//                    campaign resumed to the end carries byte-identical
//                    records to one that ran straight through (order
//                    aside — the reduce sorts by id).
//   state.json     — a derived snapshot (attempts, backoff schedule,
//                    quarantine verdicts, log paths) rewritten atomically
//                    after every journal append. Diagnostics only: it is
//                    regenerable from results.jsonl plus the logs and is
//                    explicitly *excluded* from byte-identity guarantees.
//
// Loading validates hard: duplicate ids, ids missing from the manifest,
// seed/experiment drift, digests that do not match the recorded document,
// fields of the wrong JSON kind and manifests that do not match the
// digest stamped into state.json are all errors with the offending id
// named. A torn results.jsonl tail (writer died mid-append) refuses
// resume and points at `tools/pw_campaign.py repair`. One asymmetric
// carve-out: a record journaled in results.jsonl but not yet marked
// completed in state.json is the crash window between the append and
// the snapshot rewrite, so the loader patches the snapshot entry from
// the (digest-verified) record instead of refusing; the reverse —
// snapshot says completed, record missing — cannot arise from that
// write order and stays a hard error.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "runtime/campaign/manifest.h"

namespace politewifi::runtime::campaign {

/// One completed job as journaled in results.jsonl.
struct JobRecord {
  std::string id;
  std::string experiment;
  std::int64_t seed = 0;
  std::string digest;  // campaign_digest over the document text
  common::Json document;

  common::Json to_json() const;
};

/// Per-job progress as snapshotted in state.json.
struct JobProgress {
  std::int64_t attempts = 0;
  std::vector<std::int64_t> backoff_ms;    // applied delays, dispatch order
  std::optional<std::string> digest;       // once completed
  std::optional<std::string> status;       // "completed" | "quarantined"
  std::optional<std::string> log;          // dir-relative last-attempt log
};

/// Everything a resume needs to know about prior invocations.
struct CampaignJournal {
  std::map<std::string, JobRecord> completed;   // keyed by job id
  std::map<std::string, JobProgress> progress;  // state.json snapshot
};

/// Journal file names inside a campaign directory.
std::string results_path(const std::string& dir);
std::string state_path(const std::string& dir);

/// The exact bytes a job document is digested and journaled over: the
/// canonical dump plus the trailing newline pw_run writes to disk.
std::string document_text(const common::Json& document);

/// Loads and validates both journal files against the manifest. Missing
/// files mean a fresh campaign (empty journal, returns true). Any
/// inconsistency — torn tail, duplicate or unknown ids, seed/experiment/
/// digest drift, a state.json stamped by a different manifest — is an
/// error naming the culprit.
bool load_campaign_journal(const std::string& dir,
                           const CampaignManifest& manifest,
                           const std::string& manifest_digest,
                           CampaignJournal* out, std::string* error);

/// Appends one completed-job record (durable once this returns true).
bool append_job_record(const std::string& dir, const JobRecord& record,
                       std::string* error);

/// Atomically rewrites state.json (write to a temp file, rename over).
bool write_campaign_state(const std::string& dir,
                          const CampaignManifest& manifest,
                          const std::string& manifest_digest,
                          const std::map<std::string, JobProgress>& progress,
                          std::string* error);

}  // namespace politewifi::runtime::campaign
