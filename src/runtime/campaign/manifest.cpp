#include "runtime/campaign/manifest.h"

#include <cstdio>
#include <set>
#include <utility>

#include "common/crc32.h"
#include "common/json_parse.h"

namespace politewifi::runtime::campaign {

namespace {

using common::Json;

bool set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

// Mirrors run_context.cpp exactly; pw_campaign.py carries the Python
// twin. Changing any constant is a manifest-format break.
std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Names that become file names (logs, scratch documents) and journal
/// keys: lowercase + digits + [_.-], bounded, no path separators.
bool valid_name(const std::string& s) {
  if (s.empty() || s.size() > 64) return false;
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

bool valid_digest(const std::string& s) {
  if (s.size() != 14 || s.compare(0, 6, "crc32:") != 0) return false;
  for (std::size_t i = 6; i < s.size(); ++i) {
    const char c = s[i];
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

bool reject_unknown_keys(const Json& object, const char* what,
                         const std::set<std::string>& known,
                         std::string* error) {
  for (const auto& [key, value] : object.as_object()) {
    (void)value;
    if (known.count(key) == 0) {
      return set_error(error, std::string(what) + ": unknown key \"" + key +
                                  "\" (strict schema; see CAMPAIGNS.md)");
    }
  }
  return true;
}

const Json* require(const Json& object, const char* what, const char* key,
                    Json::Kind kind, const char* kind_name,
                    std::string* error) {
  const Json* v = object.find(key);
  if (v == nullptr) {
    set_error(error, std::string(what) + ": missing required key \"" + key +
                         "\"");
    return nullptr;
  }
  if (v->kind() != kind) {
    set_error(error, std::string(what) + ": \"" + key + "\" must be a " +
                         kind_name);
    return nullptr;
  }
  return v;
}

bool parse_policy(const Json& doc, CampaignPolicy* out, std::string* error) {
  if (!reject_unknown_keys(doc, "policy",
                           {"backoff_ms", "max_attempts", "timeout_ms"},
                           error)) {
    return false;
  }
  const Json* max_attempts = require(doc, "policy", "max_attempts",
                                     Json::Kind::kInt, "integer", error);
  const Json* backoff = require(doc, "policy", "backoff_ms", Json::Kind::kInt,
                                "integer", error);
  const Json* timeout = require(doc, "policy", "timeout_ms", Json::Kind::kInt,
                                "integer", error);
  if (max_attempts == nullptr || backoff == nullptr || timeout == nullptr) {
    return false;
  }
  out->max_attempts = max_attempts->as_int();
  out->backoff_ms = backoff->as_int();
  out->timeout_ms = timeout->as_int();
  if (out->max_attempts < 1) {
    return set_error(error, "policy.max_attempts must be >= 1");
  }
  if (out->backoff_ms < 0 || out->timeout_ms < 0) {
    return set_error(error,
                     "policy.backoff_ms and policy.timeout_ms must be >= 0");
  }
  return true;
}

bool parse_job(const Json& doc, std::int64_t base_seed, CampaignJob* out,
               std::string* error) {
  if (!doc.is_object()) {
    return set_error(error, "jobs: every entry must be an object");
  }
  if (!reject_unknown_keys(
          doc, "job",
          {"experiment", "expect_digest", "id", "params", "seed", "smoke"},
          error)) {
    return false;
  }
  const Json* id =
      require(doc, "job", "id", Json::Kind::kString, "string", error);
  if (id == nullptr) return false;
  out->id = id->as_string();
  const char* what = out->id.empty() ? "job" : out->id.c_str();
  if (!valid_name(out->id)) {
    return set_error(error, "job.id \"" + out->id +
                                "\" must match [a-z0-9_.-]+ and be at most "
                                "64 characters");
  }
  const Json* experiment = require(doc, what, "experiment",
                                   Json::Kind::kString, "string", error);
  if (experiment == nullptr) return false;
  out->experiment = experiment->as_string();
  if (out->experiment.empty()) {
    return set_error(error, std::string(what) + ": experiment is empty");
  }

  out->params.clear();
  if (const Json* params = doc.find("params")) {
    if (!params->is_object()) {
      return set_error(error,
                       std::string(what) + ": \"params\" must be an object");
    }
    for (const auto& [key, value] : params->as_object()) {
      if (value.kind() != Json::Kind::kString) {
        return set_error(error, std::string(what) + ": param \"" + key +
                                    "\" must be a string (the CLI flag "
                                    "text, e.g. \"0.25\")");
      }
      out->params[key] = value.as_string();
    }
  }

  out->smoke = false;
  if (const Json* smoke = doc.find("smoke")) {
    if (smoke->kind() != Json::Kind::kBool) {
      return set_error(error,
                       std::string(what) + ": \"smoke\" must be a bool");
    }
    out->smoke = smoke->as_bool();
  }

  if (const Json* seed = doc.find("seed")) {
    if (seed->kind() != Json::Kind::kInt || seed->as_int() < 0) {
      return set_error(error, std::string(what) +
                                  ": \"seed\" must be a non-negative "
                                  "integer");
    }
    out->seed = seed->as_int();
  } else {
    out->seed = derive_job_seed(base_seed, out->id);
  }

  out->expect_digest.reset();
  if (const Json* digest = doc.find("expect_digest")) {
    if (digest->kind() != Json::Kind::kString ||
        !valid_digest(digest->as_string())) {
      return set_error(error, std::string(what) +
                                  ": \"expect_digest\" must look like "
                                  "\"crc32:0a1b2c3d\"");
    }
    out->expect_digest = digest->as_string();
  }
  return true;
}

}  // namespace

std::int64_t derive_job_seed(std::int64_t base_seed, std::string_view id) {
  const std::uint64_t mixed =
      splitmix64(static_cast<std::uint64_t>(base_seed) ^ fnv1a64(id));
  // --seed only accepts non-negative int64, so fold into [0, 2^63).
  return static_cast<std::int64_t>(mixed & 0x7fffffffffffffffULL);
}

std::string campaign_digest(std::string_view text) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(text.data());
  const std::uint32_t crc = crc32({bytes, text.size()});
  char buf[16];
  std::snprintf(buf, sizeof buf, "crc32:%08x", crc);
  return buf;
}

common::Json CampaignManifest::to_json() const {
  Json doc = Json::object();
  doc["base_seed"] = base_seed;
  doc["campaign"] = campaign;
  doc["suite_version"] = suite_version;
  Json policy_doc = Json::object();
  policy_doc["backoff_ms"] = policy.backoff_ms;
  policy_doc["max_attempts"] = policy.max_attempts;
  policy_doc["timeout_ms"] = policy.timeout_ms;
  doc["policy"] = std::move(policy_doc);
  Json jobs_doc = Json::array();
  for (const CampaignJob& job : jobs) {
    Json entry = Json::object();
    entry["experiment"] = job.experiment;
    entry["id"] = job.id;
    Json params_doc = Json::object();
    for (const auto& [key, value] : job.params) params_doc[key] = value;
    entry["params"] = std::move(params_doc);
    entry["seed"] = job.seed;
    entry["smoke"] = job.smoke;
    if (job.expect_digest.has_value()) {
      entry["expect_digest"] = *job.expect_digest;
    }
    jobs_doc.push_back(std::move(entry));
  }
  doc["jobs"] = std::move(jobs_doc);
  return doc;
}

std::optional<CampaignManifest> parse_campaign_manifest(
    const common::Json& doc, std::string* error) {
  if (!doc.is_object()) {
    set_error(error, "manifest: top level must be an object");
    return std::nullopt;
  }
  if (!reject_unknown_keys(
          doc, "manifest",
          {"base_seed", "campaign", "jobs", "policy", "suite_version"},
          error)) {
    return std::nullopt;
  }
  CampaignManifest out;
  const Json* campaign = require(doc, "manifest", "campaign",
                                 Json::Kind::kString, "string", error);
  const Json* suite = require(doc, "manifest", "suite_version",
                              Json::Kind::kString, "string", error);
  const Json* base_seed = require(doc, "manifest", "base_seed",
                                  Json::Kind::kInt, "integer", error);
  const Json* policy = require(doc, "manifest", "policy",
                               Json::Kind::kObject, "object", error);
  const Json* jobs = require(doc, "manifest", "jobs", Json::Kind::kArray,
                             "array", error);
  if (campaign == nullptr || suite == nullptr || base_seed == nullptr ||
      policy == nullptr || jobs == nullptr) {
    return std::nullopt;
  }
  out.campaign = campaign->as_string();
  if (!valid_name(out.campaign)) {
    set_error(error, "manifest.campaign \"" + out.campaign +
                         "\" must match [a-z0-9_.-]+ and be at most 64 "
                         "characters");
    return std::nullopt;
  }
  out.suite_version = suite->as_string();
  if (out.suite_version.empty()) {
    set_error(error, "manifest.suite_version is empty");
    return std::nullopt;
  }
  out.base_seed = base_seed->as_int();
  if (out.base_seed < 0) {
    set_error(error, "manifest.base_seed must be a non-negative integer");
    return std::nullopt;
  }
  if (!parse_policy(*policy, &out.policy, error)) return std::nullopt;
  if (jobs->size() == 0) {
    set_error(error, "manifest.jobs is empty: a campaign with nothing to "
                     "run is almost surely an authoring mistake");
    return std::nullopt;
  }
  std::set<std::string> seen_ids;
  for (std::size_t i = 0; i < jobs->size(); ++i) {
    CampaignJob job;
    if (!parse_job(jobs->at(i), out.base_seed, &job, error)) {
      return std::nullopt;
    }
    if (!seen_ids.insert(job.id).second) {
      set_error(error, "manifest.jobs: duplicate id \"" + job.id + "\"");
      return std::nullopt;
    }
    out.jobs.push_back(std::move(job));
  }
  return out;
}

std::optional<CampaignManifest> parse_campaign_manifest_text(
    std::string_view text, std::string* error) {
  std::string parse_error;
  auto doc = common::parse_json(text, &parse_error);
  if (!doc.has_value()) {
    set_error(error, "manifest: " + parse_error);
    return std::nullopt;
  }
  return parse_campaign_manifest(*doc, error);
}

}  // namespace politewifi::runtime::campaign
