// The campaign artifact schema, declared as data.
//
// Every field the campaign runtime reads or writes — across the
// manifest, the per-job entries, the retry policy, the results.jsonl
// record, the state.json journal and the final reduced document — is
// catalogued here under a dotted name (`manifest.base_seed`,
// `record.digest`, ...). CAMPAIGNS.md documents exactly this catalogue
// and tests/campaign_doc_test.cpp enforces the correspondence both
// ways, the same contract OBSERVABILITY.md has with the obs/ metric
// catalogue: a field added in code without documentation — or
// documented without existing — is a test failure, not a review nit.
// campaign_test additionally walks real artifacts and checks every key
// they carry resolves to a catalogued name, so the catalogue cannot
// drift from the serializers either.
#pragma once

#include <span>

namespace politewifi::runtime::campaign {

struct SchemaField {
  const char* name;         // dotted: <artifact>.<field>
  const char* description;  // one line
};

/// Every catalogued field of every campaign artifact. Prefixes:
///   manifest.  the campaign manifest document
///   job.       one entry of manifest.jobs
///   policy.    the manifest's fault-handling policy block
///   record.    one results.jsonl line
///   state.     the state.json journal snapshot
///   state.jobs.  one per-job entry of state.jobs
///   doc.       the final reduced campaign document
std::span<const SchemaField> campaign_schema();

/// True when `dotted` names a catalogued field.
bool is_campaign_schema_field(const char* dotted);

}  // namespace politewifi::runtime::campaign
