#include "runtime/campaign/driver.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/json_parse.h"
#include "obs/metrics.h"
#include "runtime/campaign/journal.h"
#include "runtime/campaign/manifest.h"
#include "runtime/city_reduce.h"
#include "runtime/experiments/all.h"
#include "runtime/registry.h"
#include "runtime/run_context.h"
#include "runtime/runner.h"

namespace politewifi::runtime::campaign {

namespace {

namespace fs = std::filesystem;
using common::Json;

bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
      std::fflush(f) == 0;
  return std::fclose(f) == 0 && ok;
}

/// Temp-file-plus-rename, so a crash mid-write can never leave a
/// truncated file at `path` (same discipline as write_campaign_state).
bool write_file_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  if (!write_file(tmp, text)) return false;
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

/// How one child attempt ended.
enum class AttemptOutcome {
  kDocument,   // exited 0/1 and left a parseable document
  kCrashed,    // signaled, spawn failure, or abnormal exit
  kTimeout,    // exceeded policy.timeout_ms and was SIGKILLed
  kNoDocument  // exited but the document is missing or unparseable
};

const char* outcome_name(AttemptOutcome outcome) {
  switch (outcome) {
    case AttemptOutcome::kDocument: return "document";
    case AttemptOutcome::kCrashed: return "crashed";
    case AttemptOutcome::kTimeout: return "timeout";
    case AttemptOutcome::kNoDocument: return "no document";
  }
  return "?";
}

/// Spawns one attempt: fork, redirect stdout+stderr into `log_path`,
/// exec `argv`. Fault injection happens between fork and exec with
/// async-signal-safe calls only. Returns the outcome; fills `status`
/// with the raw wait status for diagnostics.
AttemptOutcome spawn_attempt(const std::vector<std::string>& argv,
                             const std::string& log_path, bool fault_kill,
                             bool fault_hang, std::int64_t timeout_ms,
                             int* status) {
  const int log_fd =
      ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    cargv.push_back(const_cast<char*>(arg.c_str()));
  }
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (log_fd >= 0) ::close(log_fd);
    *status = -1;
    return AttemptOutcome::kCrashed;
  }
  if (pid == 0) {
    // Child: async-signal-safe territory until exec.
    if (fault_kill) ::raise(SIGKILL);
    if (fault_hang) {
      for (;;) ::pause();
    }
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      ::close(log_fd);
    }
    ::execvp(cargv[0], cargv.data());
    ::_exit(127);
  }
  if (log_fd >= 0) ::close(log_fd);

  // Timeout by counted polls: src/runtime is wall-clock-free by lint,
  // and a 10 ms granularity is ample for a whole-process budget.
  const std::int64_t max_polls =
      timeout_ms > 0 ? (timeout_ms + 9) / 10 : 0;
  std::int64_t polls = 0;
  for (;;) {
    const pid_t done = ::waitpid(pid, status, timeout_ms > 0 ? WNOHANG : 0);
    if (done == pid) break;
    if (done < 0) {
      *status = -1;
      return AttemptOutcome::kCrashed;
    }
    if (++polls > max_polls) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, status, 0);
      return AttemptOutcome::kTimeout;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!WIFEXITED(*status)) return AttemptOutcome::kCrashed;
  const int code = WEXITSTATUS(*status);
  // Exit 1 still writes a document (the experiment ran and reported
  // failure, which the reduce ORs into `failed`); anything else never
  // produced one.
  if (code != 0 && code != 1) return AttemptOutcome::kNoDocument;
  return AttemptOutcome::kDocument;
}

/// Shared driver state, all mutated under one mutex: the queue, the
/// per-job progress snapshot, the journaled records and the dispatch
/// budget. Journal appends and state rewrites happen under the lock so
/// "append record, then snapshot state" stays atomic on disk.
struct DriverState {
  std::mutex mu;
  std::deque<std::size_t> queue;  // indices into manifest.jobs
  int inflight = 0;
  int budget = 0;  // remaining dispatches; <0 = unlimited
  bool stopped = false;           // budget ran out with work remaining
  bool io_failed = false;
  std::map<std::string, JobProgress> progress;
  std::map<std::string, JobRecord> records;
  std::vector<std::string> quarantine_log;  // narration lines
};

}  // namespace

int run_campaign_driver(const CampaignDriverOptions& options) {
  register_builtin_experiments();

  std::string manifest_text;
  if (!read_file(options.manifest_path, &manifest_text)) {
    std::fprintf(stderr, "pw_run: cannot read manifest %s\n",
                 options.manifest_path.c_str());
    return 2;
  }
  std::string error;
  auto parsed = parse_campaign_manifest_text(manifest_text, &error);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "pw_run: %s\n", error.c_str());
    return 2;
  }
  const CampaignManifest manifest = std::move(*parsed);
  // The digest is over the canonical form, so an author's formatting
  // (or omitted derivable seeds) never splits a campaign identity.
  const std::string canonical_text = manifest.to_json().dump() + "\n";
  const std::string manifest_digest = campaign_digest(canonical_text);

  // Fail fast: every job must resolve against its experiment spec
  // before anything spawns, not D attempts deep into the queue.
  for (const CampaignJob& job : manifest.jobs) {
    const auto experiment = ExperimentRegistry::instance().create(
        job.experiment);
    if (experiment == nullptr) {
      std::fprintf(stderr, "pw_run: job \"%s\": unknown experiment '%s'\n",
                   job.id.c_str(), job.experiment.c_str());
      return 2;
    }
    std::vector<common::Flag> flags;
    flags.push_back({"seed", std::to_string(job.seed)});
    for (const auto& [key, value] : job.params) {
      flags.push_back({key, value});
    }
    ResolvedRun resolved;
    if (!resolve_run(experiment->spec(), flags, job.smoke, &resolved,
                     &error)) {
      std::fprintf(stderr, "pw_run: job \"%s\": %s\n", job.id.c_str(),
                   error.c_str());
      return 2;
    }
  }

  std::error_code ec;
  fs::create_directories(options.dir + "/logs", ec);
  fs::create_directories(options.dir + "/scratch", ec);
  if (ec) {
    std::fprintf(stderr, "pw_run: cannot create campaign directory %s\n",
                 options.dir.c_str());
    return 1;
  }
  DriverState state;
  {
    CampaignJournal journal;
    if (!load_campaign_journal(options.dir, manifest, manifest_digest,
                               &journal, &error)) {
      std::fprintf(stderr, "pw_run: %s\n", error.c_str());
      return 1;
    }
    state.records = std::move(journal.completed);
    state.progress = std::move(journal.progress);
  }

  // Keep a canonical manifest copy next to the journal it explains —
  // written atomically, and rewritten whenever the bytes on disk drift
  // from the canonical text (a crash mid-write on an earlier run
  // self-repairs here). Ordered after the journal load so a manifest
  // that does not belong to this directory is refused above before it
  // could clobber the copy.
  const std::string copy_path = options.dir + "/manifest.json";
  std::string existing_copy;
  if (!read_file(copy_path, &existing_copy) ||
      existing_copy != canonical_text) {
    if (!write_file_atomic(copy_path, canonical_text)) {
      std::fprintf(stderr, "pw_run: cannot write %s\n", copy_path.c_str());
      return 1;
    }
  }

  for (std::size_t i = 0; i < manifest.jobs.size(); ++i) {
    const CampaignJob& job = manifest.jobs[i];
    if (state.records.count(job.id) != 0) continue;
    JobProgress& progress = state.progress[job.id];
    if (progress.status.has_value() && *progress.status == "quarantined") {
      // A resume is an operator decision to try again: quarantined jobs
      // re-enter the queue with a fresh attempt budget.
      progress = JobProgress{};
    }
    state.queue.push_back(i);
  }
  state.budget = options.faults.stop_after > 0 ? options.faults.stop_after
                                               : -1;
  PW_GAUGE_MAX(kCampaignQueueDepthPeak,
               static_cast<std::int64_t>(state.queue.size()));

  const std::size_t total = manifest.jobs.size();
  const std::size_t already = state.records.size();
  std::printf("Campaign '%s' (suite %s): %zu jobs, %zu already journaled, "
              "%zu queued across %d processes\n",
              manifest.campaign.c_str(), manifest.suite_version.c_str(),
              total, already, state.queue.size(),
              std::max(1, options.processes));

  // Rewrites the snapshot; call with state.mu held. A failure is
  // printed once and latches io_failed, which stops every worker from
  // claiming further jobs: a campaign that can no longer checkpoint
  // must not keep spawning work it cannot journal.
  const auto snapshot_state_locked = [&] {
    if (!write_campaign_state(options.dir, manifest, manifest_digest,
                              state.progress, &error)) {
      std::fprintf(stderr, "pw_run: %s\n", error.c_str());
      state.io_failed = true;
    }
  };

  const auto worker = [&] {
    for (;;) {
      std::size_t index = 0;
      int attempt = 0;
      {
        std::unique_lock<std::mutex> lock(state.mu);
        if (state.io_failed) return;
        if (state.queue.empty()) {
          if (state.inflight == 0) return;
          lock.unlock();
          // A retrying peer may re-enqueue; check back shortly.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          continue;
        }
        if (state.budget == 0) {
          state.stopped = true;
          return;
        }
        if (state.budget > 0) --state.budget;
        index = state.queue.front();
        state.queue.pop_front();
        ++state.inflight;
        const CampaignJob& job = manifest.jobs[index];
        JobProgress& progress = state.progress[job.id];
        attempt = static_cast<int>(++progress.attempts);
        progress.log = "logs/" + job.id + ".attempt" +
                       std::to_string(attempt) + ".log";
        snapshot_state_locked();
        if (state.io_failed) {
          // The claim itself could not be checkpointed: release it
          // unstarted instead of running a job the journal will lose.
          --state.inflight;
          return;
        }
      }
      const CampaignJob& job = manifest.jobs[index];
      const std::string doc_path =
          options.dir + "/scratch/" + job.id + ".json";
      const std::string log_path = options.dir + "/logs/" + job.id +
                                   ".attempt" + std::to_string(attempt) +
                                   ".log";
      std::vector<std::string> argv;
      argv.push_back(options.argv0);
      argv.push_back(job.experiment);
      argv.push_back("--seed=" + std::to_string(job.seed));
      if (job.smoke) argv.push_back("--smoke");
      for (const auto& [key, value] : job.params) {
        argv.push_back("--" + key + "=" + value);
      }
      argv.push_back("--json=" + doc_path);
      if (options.metrics_arg.has_value()) {
        // Child obs artifacts stay in scratch/ (removed on completion);
        // the child document's embedded metrics block is what reduces.
        argv.push_back("--metrics=" + doc_path + ".metrics.json");
        argv.push_back("--timeline=" + doc_path + ".trace.json");
      }

      int wait_status = 0;
      AttemptOutcome outcome = spawn_attempt(
          argv, log_path,
          options.faults.kill.count({job.id, attempt}) != 0,
          options.faults.hang.count({job.id, attempt}) != 0,
          manifest.policy.timeout_ms, &wait_status);

      std::string doc_text;
      std::optional<Json> document;
      if (outcome == AttemptOutcome::kDocument) {
        std::string parse_error;
        if (read_file(doc_path, &doc_text)) {
          document = common::parse_json(doc_text, &parse_error);
        }
        if (!document.has_value()) outcome = AttemptOutcome::kNoDocument;
      }

      std::unique_lock<std::mutex> lock(state.mu);
      JobProgress& progress = state.progress[job.id];
      if (document.has_value()) {
        JobRecord record;
        record.id = job.id;
        record.experiment = job.experiment;
        record.seed = job.seed;
        record.document = std::move(*document);
        record.digest = campaign_digest(document_text(record.document));
        if (job.expect_digest.has_value() &&
            *job.expect_digest != record.digest) {
          // Deterministic contradiction: retrying reproduces the same
          // bytes, so this quarantines on the spot.
          PW_COUNT(kCampaignJobsQuarantined);
          progress.status = "quarantined";
          state.quarantine_log.push_back(
              job.id + ": digest " + record.digest +
              " contradicts pinned expect_digest " + *job.expect_digest);
        } else {
          if (!append_job_record(options.dir, record, &error)) {
            std::fprintf(stderr, "pw_run: %s\n", error.c_str());
            state.io_failed = true;
          } else {
            PW_COUNT(kCampaignJobsCompleted);
            progress.status = "completed";
            progress.digest = record.digest;
            state.records[job.id] = std::move(record);
            std::error_code cleanup;
            fs::remove(doc_path, cleanup);
            fs::remove(doc_path + ".metrics.json", cleanup);
            fs::remove(doc_path + ".trace.json", cleanup);
          }
        }
        snapshot_state_locked();
        --state.inflight;
        if (state.io_failed) return;
        continue;
      }

      // Failed attempt: retry with backoff or quarantine.
      if (progress.attempts >= manifest.policy.max_attempts) {
        PW_COUNT(kCampaignJobsQuarantined);
        progress.status = "quarantined";
        state.quarantine_log.push_back(
            job.id + ": " + outcome_name(outcome) + " after " +
            std::to_string(progress.attempts) + " attempts; last log " +
            options.dir + "/" + *progress.log);
        snapshot_state_locked();
        --state.inflight;
        if (state.io_failed) return;
        continue;
      }
      PW_COUNT(kCampaignJobsRetried);
      // Deterministic exponential backoff: base << (attempt - 1),
      // shift capped so a deep retry chain cannot overflow.
      const std::int64_t delay =
          manifest.policy.backoff_ms
          << std::min<std::int64_t>(progress.attempts - 1, 10);
      progress.backoff_ms.push_back(delay);
      snapshot_state_locked();
      if (state.io_failed) {
        --state.inflight;
        return;
      }
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      lock.lock();
      state.queue.push_back(index);
      --state.inflight;
    }
  };

  const int pool = std::clamp<int>(options.processes, 1,
                                   static_cast<int>(total));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(pool));
  for (int i = 0; i < pool; ++i) threads.emplace_back(worker);
  for (auto& t : threads) t.join();

  if (state.io_failed) {
    std::fprintf(stderr, "pw_run: campaign aborted on journal I/O failure\n");
    return 1;
  }
  for (const std::string& line : state.quarantine_log) {
    std::fprintf(stderr, "pw_run: quarantined %s\n", line.c_str());
  }
  const std::size_t completed = state.records.size();
  std::size_t quarantined = 0;
  for (const auto& [id, progress] : state.progress) {
    quarantined += progress.status.has_value() &&
                   *progress.status == "quarantined";
  }
  if (state.stopped && completed + quarantined < total) {
    std::printf("Campaign '%s': checkpoint after %zu/%zu jobs; resume "
                "with the same command\n",
                manifest.campaign.c_str(), completed, total);
    return 3;
  }
  if (quarantined > 0) {
    std::printf("Campaign '%s': %zu/%zu jobs completed, %zu quarantined "
                "(see logs/); no campaign document produced\n",
                manifest.campaign.c_str(), completed, total, quarantined);
    return 1;
  }

  // Final reduce: one campaign document over the journaled records.
  Json doc = Json::object();
  doc["base_seed"] = manifest.base_seed;
  doc["campaign"] = manifest.campaign;
  doc["manifest_digest"] = manifest_digest;
  doc["suite_version"] = manifest.suite_version;
  bool failed = false;
  std::int64_t failed_jobs = 0;
  Json jobs_doc = Json::array();
  std::vector<const Json*> metrics_blocks;
  std::size_t documents_with_metrics = 0;
  for (const auto& [id, record] : state.records) {  // map order = id order
    const Json* job_failed = record.document.find("failed");
    if (job_failed != nullptr && job_failed->as_bool()) {
      failed = true;
      ++failed_jobs;
    }
    if (const Json* block = record.document.find("metrics")) {
      metrics_blocks.push_back(block);
      ++documents_with_metrics;
    }
    jobs_doc.push_back(record.to_json());
  }
  doc["failed"] = failed;
  doc["jobs"] = std::move(jobs_doc);
  Json summary = Json::object();
  summary["failed_jobs"] = failed_jobs;
  summary["jobs"] = static_cast<std::int64_t>(total);
  doc["summary"] = std::move(summary);

  int exit_code = failed ? 1 : 0;
  if (documents_with_metrics != 0 && documents_with_metrics != total) {
    // A metrics run resumed without --metrics (or vice versa): the
    // merged block would silently undercount, so refuse instead.
    std::fprintf(stderr,
                 "pw_run: %zu of %zu job documents carry a metrics block; "
                 "resume with the same --metrics setting the campaign "
                 "started with\n",
                 documents_with_metrics, total);
    return 1;
  }
  if (documents_with_metrics == total && total > 0) {
    std::string merge_error;
    auto merged = merge_metrics_blocks(metrics_blocks, &merge_error);
    if (!merged.has_value()) {
      std::fprintf(stderr, "pw_run: campaign metrics merge failed: %s\n",
                   merge_error.c_str());
      return 1;
    }
    if (options.metrics_arg.has_value() &&
        !write_output("metrics", "campaign.metrics.json",
                      merged->dump() + "\n", *options.metrics_arg,
                      /*force_dir=*/false)) {
      exit_code = 1;
    }
    doc["metrics"] = std::move(*merged);
  } else if (options.metrics_arg.has_value()) {
    std::fprintf(stderr,
                 "pw_run: --metrics asked but the job documents carry no "
                 "metrics block (campaign was journaled without "
                 "--metrics)\n");
    exit_code = 1;
  }

  std::printf("Campaign '%s': %zu/%zu jobs completed (%lld reported "
              "failure)\n",
              manifest.campaign.c_str(), completed, total,
              static_cast<long long>(failed_jobs));
  if (options.json_arg.has_value() &&
      !write_output("json", "campaign.json", doc.dump() + "\n",
                    *options.json_arg, /*force_dir=*/false)) {
    exit_code = 1;
  }
  return exit_code;
}

}  // namespace politewifi::runtime::campaign
