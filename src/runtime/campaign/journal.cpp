#include "runtime/campaign/journal.h"

#include <cstdio>
#include <utility>

#include "common/json_parse.h"
#include "common/jsonl.h"

namespace politewifi::runtime::campaign {

namespace {

using common::Json;

bool set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

bool read_whole_file(const std::string& path, std::string* out,
                     std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return set_error(error, "cannot open " + path);
  out->clear();
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return set_error(error, "read error on " + path);
  return true;
}

/// Presence + kind check in one step (manifest.cpp's require() with a
/// dynamic context string): the Json accessors PW_CHECK on a kind
/// mismatch, and a hand-corrupted journal must produce a named error,
/// never an abort.
const Json* require(const Json& object, const std::string& what,
                    const char* key, Json::Kind kind, const char* kind_name,
                    std::string* error) {
  const Json* v = object.find(key);
  if (v == nullptr) {
    set_error(error, what + ": missing required key \"" + key + "\"");
    return nullptr;
  }
  if (v->kind() != kind) {
    set_error(error, what + ": \"" + key + "\" must be a " + kind_name);
    return nullptr;
  }
  return v;
}

/// Parses one results.jsonl record and cross-checks it against its
/// manifest job. Strictness mirrors the manifest parser: these files
/// are machine-written, so any surprise is corruption or drift.
bool parse_record(const Json& doc, const CampaignManifest& manifest,
                  JobRecord* out, std::string* error) {
  if (!doc.is_object()) {
    return set_error(error, "results.jsonl: record is not an object");
  }
  for (const auto& [key, value] : doc.as_object()) {
    (void)value;
    if (key != "digest" && key != "document" && key != "experiment" &&
        key != "id" && key != "seed") {
      return set_error(error, "results.jsonl: record carries unknown key \"" +
                                  key + "\"");
    }
  }
  const Json* id = require(doc, "results.jsonl: record", "id",
                           Json::Kind::kString, "string", error);
  if (id == nullptr) return false;
  out->id = id->as_string();
  const std::string what = "results.jsonl: record \"" + out->id + "\"";
  const Json* experiment = require(doc, what, "experiment",
                                   Json::Kind::kString, "string", error);
  const Json* seed =
      require(doc, what, "seed", Json::Kind::kInt, "integer", error);
  const Json* digest =
      require(doc, what, "digest", Json::Kind::kString, "string", error);
  if (experiment == nullptr || seed == nullptr || digest == nullptr) {
    return false;
  }
  const Json* document = doc.find("document");
  if (document == nullptr) {
    return set_error(error, what + ": missing required key \"document\"");
  }
  out->experiment = experiment->as_string();
  out->seed = seed->as_int();
  out->digest = digest->as_string();
  out->document = *document;

  const CampaignJob* job = nullptr;
  for (const CampaignJob& candidate : manifest.jobs) {
    if (candidate.id == out->id) {
      job = &candidate;
      break;
    }
  }
  if (job == nullptr) {
    return set_error(error, "results.jsonl: record for \"" + out->id +
                                "\" which is not a job of this manifest");
  }
  if (job->experiment != out->experiment || job->seed != out->seed) {
    return set_error(error, "results.jsonl: record for \"" + out->id +
                                "\" disagrees with the manifest (experiment "
                                "or seed drift; was the manifest edited "
                                "mid-campaign?)");
  }
  const std::string recomputed = campaign_digest(document_text(out->document));
  if (recomputed != out->digest) {
    return set_error(error, "results.jsonl: record for \"" + out->id +
                                "\" fails its own digest (" + recomputed +
                                " != " + out->digest + "): corrupt journal");
  }
  if (job->expect_digest.has_value() && *job->expect_digest != out->digest) {
    return set_error(error, "job \"" + out->id + "\": journaled digest " +
                                out->digest + " does not match the pinned "
                                "expect_digest " + *job->expect_digest);
  }
  return true;
}

bool parse_progress_entry(const Json& doc, const std::string& id,
                          JobProgress* out, std::string* error) {
  const std::string what = "state.json: job \"" + id + "\"";
  if (!doc.is_object()) {
    return set_error(error, what + " is not an object");
  }
  const auto wrong_kind = [&](const char* key, const char* kind_name) {
    return set_error(error,
                     what + ": \"" + key + "\" must be a " + kind_name);
  };
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "attempts") {
      if (value.kind() != Json::Kind::kInt) {
        return wrong_kind("attempts", "integer");
      }
      out->attempts = value.as_int();
    } else if (key == "backoff_ms") {
      if (value.kind() != Json::Kind::kArray) {
        return wrong_kind("backoff_ms", "array of integers");
      }
      for (std::size_t i = 0; i < value.size(); ++i) {
        if (value.at(i).kind() != Json::Kind::kInt) {
          return wrong_kind("backoff_ms", "array of integers");
        }
        out->backoff_ms.push_back(value.at(i).as_int());
      }
    } else if (key == "digest") {
      if (value.kind() != Json::Kind::kString) {
        return wrong_kind("digest", "string");
      }
      out->digest = value.as_string();
    } else if (key == "status") {
      if (value.kind() != Json::Kind::kString) {
        return wrong_kind("status", "string");
      }
      out->status = value.as_string();
      if (*out->status != "completed" && *out->status != "quarantined") {
        return set_error(error, what + " has unknown status \"" +
                                    *out->status + "\"");
      }
    } else if (key == "log") {
      if (value.kind() != Json::Kind::kString) {
        return wrong_kind("log", "string");
      }
      out->log = value.as_string();
    } else {
      return set_error(error,
                       what + " carries unknown key \"" + key + "\"");
    }
  }
  return true;
}

bool load_state(const std::string& path, const CampaignManifest& manifest,
                const std::string& manifest_digest, CampaignJournal* out,
                std::string* error) {
  std::string text;
  if (!read_whole_file(path, &text, error)) return false;
  std::string parse_error;
  auto doc = common::parse_json(text, &parse_error);
  if (!doc.has_value() || !doc->is_object()) {
    return set_error(error, path + ": corrupt state snapshot: " +
                                (doc.has_value() ? "not an object"
                                                 : parse_error));
  }
  const Json* schema_version = require(*doc, path, "schema_version",
                                       Json::Kind::kInt, "integer", error);
  const Json* campaign = require(*doc, path, "campaign", Json::Kind::kString,
                                 "string", error);
  const Json* suite = require(*doc, path, "suite_version",
                              Json::Kind::kString, "string", error);
  const Json* digest = require(*doc, path, "manifest_digest",
                               Json::Kind::kString, "string", error);
  const Json* jobs =
      require(*doc, path, "jobs", Json::Kind::kObject, "object", error);
  if (schema_version == nullptr || campaign == nullptr || suite == nullptr ||
      digest == nullptr || jobs == nullptr) {
    return false;
  }
  if (schema_version->as_int() != 1) {
    return set_error(error, path + ": unsupported schema_version");
  }
  if (campaign->as_string() != manifest.campaign ||
      suite->as_string() != manifest.suite_version) {
    return set_error(error, path + ": journal belongs to campaign \"" +
                                campaign->as_string() + "\" suite \"" +
                                suite->as_string() +
                                "\", not this manifest");
  }
  if (digest->as_string() != manifest_digest) {
    return set_error(error, path + ": journal was written by a manifest "
                                "with digest " + digest->as_string() +
                                ", this one is " + manifest_digest +
                                ": refusing to mix campaigns");
  }
  for (const auto& [id, entry] : jobs->as_object()) {
    bool known = false;
    for (const CampaignJob& job : manifest.jobs) known |= job.id == id;
    if (!known) {
      return set_error(error, path + ": progress for \"" + id +
                                  "\" which is not a job of this manifest");
    }
    JobProgress progress;
    if (!parse_progress_entry(entry, id, &progress, error)) return false;
    out->progress[id] = std::move(progress);
  }
  return true;
}

}  // namespace

std::string results_path(const std::string& dir) {
  return dir + "/results.jsonl";
}

std::string state_path(const std::string& dir) { return dir + "/state.json"; }

std::string document_text(const common::Json& document) {
  return document.dump() + "\n";
}

common::Json JobRecord::to_json() const {
  Json doc = Json::object();
  doc["digest"] = digest;
  doc["document"] = document;
  doc["experiment"] = experiment;
  doc["id"] = id;
  doc["seed"] = seed;
  return doc;
}

bool load_campaign_journal(const std::string& dir,
                           const CampaignManifest& manifest,
                           const std::string& manifest_digest,
                           CampaignJournal* out, std::string* error) {
  out->completed.clear();
  out->progress.clear();

  const std::string results = results_path(dir);
  if (file_exists(results)) {
    common::JsonlReadResult journal;
    if (!common::read_jsonl_file(results, &journal, error)) return false;
    if (journal.torn_tail) {
      return set_error(
          error, results + ": torn record at byte offset " +
                     std::to_string(journal.torn_tail_offset) +
                     " (the writer died mid-append); run `tools/"
                     "pw_campaign.py repair <dir>` to truncate it, then "
                     "resume");
    }
    for (const Json& doc : journal.records) {
      JobRecord record;
      if (!parse_record(doc, manifest, &record, error)) return false;
      const std::string id = record.id;
      if (!out->completed.emplace(id, std::move(record)).second) {
        return set_error(error, results + ": duplicate record for \"" + id +
                                    "\": corrupt journal (a job must be "
                                    "journaled exactly once)");
      }
    }
  }

  const std::string state = state_path(dir);
  if (file_exists(state)) {
    if (!load_state(state, manifest, manifest_digest, out, error)) {
      return false;
    }
  } else if (!out->completed.empty()) {
    return set_error(error, state + ": missing but " + results +
                                " has records; the campaign directory is "
                                "half-deleted");
  }

  // Cross-file coherence. The driver appends to results.jsonl first and
  // rewrites state.json second, so a record journaled but not yet
  // marked completed in the snapshot is exactly the crash window
  // between those two non-atomic writes (driver SIGKILLed/OOMed in
  // between) — recoverable, not corruption: the record's self-digest
  // was already re-proven above, so the snapshot entry is patched from
  // the journal and the next state rewrite persists the repair.
  for (const auto& [id, record] : out->completed) {
    JobProgress& progress = out->progress[id];
    if (!progress.status.has_value() || *progress.status != "completed" ||
        !progress.digest.has_value() || *progress.digest != record.digest) {
      progress.status = "completed";
      progress.digest = record.digest;
      if (progress.attempts < 1) progress.attempts = 1;
    }
  }
  // The reverse — snapshot says completed, record missing — cannot
  // arise from that write order and stays a hard error.
  for (const auto& [id, progress] : out->progress) {
    if (progress.status.has_value() && *progress.status == "completed" &&
        out->completed.find(id) == out->completed.end()) {
      return set_error(error, state + ": \"" + id + "\" marked completed "
                                  "but results.jsonl has no record for it");
    }
  }
  return true;
}

bool append_job_record(const std::string& dir, const JobRecord& record,
                       std::string* error) {
  return common::append_jsonl_record(results_path(dir), record.to_json(),
                                     error);
}

bool write_campaign_state(const std::string& dir,
                          const CampaignManifest& manifest,
                          const std::string& manifest_digest,
                          const std::map<std::string, JobProgress>& progress,
                          std::string* error) {
  Json doc = Json::object();
  doc["campaign"] = manifest.campaign;
  doc["manifest_digest"] = manifest_digest;
  doc["schema_version"] = static_cast<std::int64_t>(1);
  doc["suite_version"] = manifest.suite_version;
  Json jobs = Json::object();
  for (const auto& [id, entry] : progress) {
    Json j = Json::object();
    j["attempts"] = entry.attempts;
    Json backoff = Json::array();
    for (const std::int64_t ms : entry.backoff_ms) backoff.push_back(ms);
    j["backoff_ms"] = std::move(backoff);
    if (entry.digest.has_value()) j["digest"] = *entry.digest;
    if (entry.status.has_value()) j["status"] = *entry.status;
    if (entry.log.has_value()) j["log"] = *entry.log;
    jobs[id] = std::move(j);
  }
  doc["jobs"] = std::move(jobs);

  const std::string path = state_path(dir);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return set_error(error, "cannot open " + tmp);
  const std::string text = doc.dump() + "\n";
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                  std::fflush(f) == 0;
  if (std::fclose(f) != 0 || !ok) {
    return set_error(error, "short write on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return set_error(error, "cannot rename " + tmp + " over " + path);
  }
  return true;
}

}  // namespace politewifi::runtime::campaign
