#include "runtime/campaign/schema.h"

#include <cstring>

namespace politewifi::runtime::campaign {

namespace {

constexpr SchemaField kCampaignSchema[] = {
    // --- manifest: the campaign input document ---------------------------
    {"manifest.base_seed",
     "campaign-level seed every job sub-seed is derived from"},
    {"manifest.campaign", "campaign name, [a-z0-9_.-]+, at most 64 chars"},
    {"manifest.jobs", "array of job entries, ids unique across the array"},
    {"manifest.policy", "fault-handling policy applied to every job"},
    {"manifest.suite_version",
     "free-form version tag stamped into every artifact"},

    // --- job: one entry of manifest.jobs ---------------------------------
    {"job.experiment", "registered experiment name the job runs"},
    {"job.id", "journal key for the job, [a-z0-9_.-]+, at most 64 chars"},
    {"job.params", "string-to-string map forwarded as --key=value flags"},
    {"job.seed",
     "effective sub-seed; derived from base_seed and id when absent"},
    {"job.smoke", "run the experiment's reduced smoke configuration"},
    {"job.expect_digest",
     "optional pinned crc32 digest the produced document must match"},

    // --- policy: manifest.policy -----------------------------------------
    {"policy.backoff_ms",
     "base re-dispatch delay, doubled on every further attempt"},
    {"policy.max_attempts",
     "attempts per job before it is quarantined, at least 1"},
    {"policy.timeout_ms",
     "per-attempt wall budget before the child is killed; 0 disables"},

    // --- record: one results.jsonl line ----------------------------------
    {"record.digest", "crc32 digest of the journaled document text"},
    {"record.document", "the job's full experiment document"},
    {"record.experiment", "experiment name, mirrored for self-description"},
    {"record.id", "id of the completed job"},
    {"record.seed", "effective sub-seed the job ran with"},

    // --- state: the state.json snapshot ----------------------------------
    {"state.campaign", "campaign name, cross-checked on resume"},
    {"state.jobs", "per-job progress map keyed by job id"},
    {"state.manifest_digest",
     "crc32 of the manifest; resume refuses a different manifest"},
    {"state.schema_version", "state.json layout version, currently 1"},
    {"state.suite_version", "suite_version echoed from the manifest"},

    // --- state.jobs: one per-job entry of state.jobs ---------------------
    {"state.jobs.attempts", "attempts dispatched so far for the job"},
    {"state.jobs.backoff_ms",
     "re-dispatch delays already applied, in dispatch order"},
    {"state.jobs.digest", "digest of the journaled document, once completed"},
    {"state.jobs.status", "one of completed or quarantined"},
    {"state.jobs.log", "campaign-dir-relative log of the last attempt"},

    // --- doc: the final reduced campaign document ------------------------
    {"doc.base_seed", "manifest base_seed echoed for self-description"},
    {"doc.campaign", "campaign name echoed from the manifest"},
    {"doc.failed", "logical OR of the per-job documents' failed flags"},
    {"doc.jobs",
     "per-job results sorted by id, each shaped like a results.jsonl record"},
    {"doc.manifest_digest", "crc32 of the manifest that produced the runs"},
    {"doc.metrics",
     "merged metrics blocks, present only when every job carried one"},
    {"doc.suite_version", "suite_version echoed from the manifest"},
    {"doc.summary", "job counts: jobs run and failed_jobs among them"},
};

}  // namespace

std::span<const SchemaField> campaign_schema() { return kCampaignSchema; }

bool is_campaign_schema_field(const char* dotted) {
  for (const SchemaField& field : kCampaignSchema) {
    if (std::strcmp(field.name, dotted) == 0) return true;
  }
  return false;
}

}  // namespace politewifi::runtime::campaign
