// Campaign driver: streams a manifest's job queue through a pool of
// child `pw_run` processes with checkpoint/resume and fault handling.
//
// Execution discipline (CAMPAIGNS.md is the authoritative contract):
//
//   * Jobs already journaled in results.jsonl are skipped on entry;
//     their digests were cross-checked by the journal loader, so a
//     resumed campaign finishes with byte-identical job records to one
//     that never stopped.
//   * Every attempt runs in a fork/exec child whose stdout+stderr land
//     in logs/<id>.attempt<k>.log. A child that crashes, exceeds the
//     per-attempt timeout (SIGKILLed), exits nonzero without a
//     document, or writes an unparseable document is re-dispatched
//     after a deterministic exponential backoff — base policy.backoff_ms
//     doubled per further attempt, schedule recorded in state.json —
//     until policy.max_attempts is exhausted, which quarantines the job
//     (campaign continues; exit code reports the quarantine).
//   * A document that contradicts a pinned expect_digest quarantines
//     immediately: determinism failures do not resolve by retrying.
//   * Timeouts are measured by counted 10 ms waitpid polls, never by
//     clock reads (src/runtime is wall-clock-free by lint).
//
// Fault injection (CampaignFaults) exists for tests and the CI smoke:
// a (id, attempt) in `kill` makes that child SIGKILL itself before
// exec; `hang` makes it sleep forever (exercising the timeout path);
// `stop_after` bounds how many dispatches this invocation may start,
// making "interrupt at a deterministic checkpoint" a first-class,
// schedule-independent operation (exit code 3 = stopped with work
// remaining, resume to continue).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <utility>

namespace politewifi::runtime::campaign {

struct CampaignFaults {
  /// (job id, attempt number) pairs whose child SIGKILLs itself pre-exec.
  std::set<std::pair<std::string, int>> kill;
  /// (job id, attempt number) pairs whose child hangs until the timeout.
  std::set<std::pair<std::string, int>> hang;
  /// Maximum dispatches this invocation may start (0 = unlimited). The
  /// deterministic interrupt point for checkpoint/resume tests.
  int stop_after = 0;
};

struct CampaignDriverOptions {
  std::string argv0;          // the pw_run binary children re-exec
  std::string manifest_path;  // manifest to load
  std::string dir;            // campaign directory (journal, logs, scratch)
  int processes = 4;          // worker pool width
  /// --json forwarded: where the final reduced campaign document goes.
  std::optional<std::string> json_arg;
  /// --metrics forwarded: children run --metrics and the merged block is
  /// written here (and embedded in the final document).
  std::optional<std::string> metrics_arg;
  CampaignFaults faults;
};

/// Runs (or resumes) the campaign. Exit codes: 0 all jobs completed and
/// reduced; 1 quarantined jobs or an I/O / validation failure; 2 usage
/// (bad manifest); 3 interrupted at the stop_after checkpoint with work
/// remaining.
int run_campaign_driver(const CampaignDriverOptions& options);

}  // namespace politewifi::runtime::campaign
