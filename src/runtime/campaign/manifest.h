// Campaign manifest: the declarative input of the campaign runtime.
//
// A manifest names a suite version, a base seed and a list of jobs —
// each a registered experiment plus a parameter point — together with
// one fault-handling policy. Parsing is strict (unknown keys, malformed
// ids and non-string parameter values are errors, never warnings) and
// serialization is canonical: `to_json().dump()` of a parsed manifest
// reproduces the input bytes whenever the input was itself canonical
// with every seed spelled out, which is what lets resume cross-check
// the on-disk manifest copy by digest instead of by field-wise diff.
//
// Job sub-seeds follow the run_context derivation discipline:
// splitmix64(base_seed ^ fnv1a64(id)), masked to the non-negative
// int64 range `--seed` accepts. tools/pw_campaign.py mirrors the same
// arithmetic so a Python-authored manifest and a C++-derived one agree
// byte for byte (campaign_test pins this against a Python-built golden).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"

namespace politewifi::runtime::campaign {

/// Fault-handling policy applied uniformly to every job.
struct CampaignPolicy {
  std::int64_t max_attempts = 3;  // attempts before quarantine, >= 1
  std::int64_t backoff_ms = 100;  // base delay, doubled per further attempt
  std::int64_t timeout_ms = 0;    // per-attempt budget; 0 = no timeout
};

/// One queued experiment request.
struct CampaignJob {
  std::string id;          // journal key: [a-z0-9_.-]+, <= 64 chars
  std::string experiment;  // registered experiment name
  // Parameter values stay CLI flag text ("--key=value"); keeping them as
  // strings keeps the manifest free of doubles, so the canonical form is
  // trivially byte-stable across C++ and Python writers.
  std::map<std::string, std::string> params;
  bool smoke = false;
  std::int64_t seed = 0;  // effective sub-seed (derived when unspecified)
  std::optional<std::string> expect_digest;  // pinned "crc32:xxxxxxxx"
};

struct CampaignManifest {
  std::string campaign;       // [a-z0-9_.-]+, <= 64 chars
  std::string suite_version;  // free-form tag stamped into every artifact
  std::int64_t base_seed = 0;
  CampaignPolicy policy;
  std::vector<CampaignJob> jobs;  // non-empty, ids unique

  /// Canonical document; always spells out every job's effective seed.
  common::Json to_json() const;
};

/// splitmix64(base_seed ^ fnv1a64(id)) masked to [0, 2^63): the same
/// label-hash derivation RunContext::derive_seed uses, so job sub-seed
/// streams are independent per id and reproducible from the manifest
/// header alone.
std::int64_t derive_job_seed(std::int64_t base_seed, std::string_view id);

/// Strict parse + validation. Jobs with no "seed" key get their derived
/// seed filled in, so the returned manifest always round-trips to the
/// fully-explicit canonical form.
std::optional<CampaignManifest> parse_campaign_manifest(
    const common::Json& doc, std::string* error);

/// Parses manifest text (convenience over parse_json + the above).
std::optional<CampaignManifest> parse_campaign_manifest_text(
    std::string_view text, std::string* error);

/// "crc32:%08x" over `text` — the digest form used for journaled job
/// documents, pinned expectations and the manifest self-check.
std::string campaign_digest(std::string_view text);

}  // namespace politewifi::runtime::campaign
