#include "runtime/runner.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "runtime/campaign/driver.h"
#include "runtime/city_driver.h"
#include "runtime/experiments/all.h"
#include "runtime/registry.h"
#include "runtime/run_context.h"

namespace politewifi::runtime {

namespace {

constexpr const char* kReservedFlags[] = {
    "list",     "names",       "all",          "smoke", "json",
    "help",     "metrics",     "timeline",     "city",  "city-reduce",
    "campaign", "campaign-dir", "procs"};

bool is_reserved(const std::string& name) {
  for (const char* reserved : kReservedFlags) {
    if (name == reserved) return true;
  }
  return false;
}

std::string known_experiments_text() {
  std::string out;
  for (const auto& name : ExperimentRegistry::instance().names()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

void print_pw_run_usage() {
  std::fprintf(
      stderr,
      "pw_run — declarative experiment runner for the Polite WiFi suite\n"
      "\n"
      "usage:\n"
      "  pw_run --help                this text\n"
      "  pw_run --list                describe every registered experiment\n"
      "  pw_run --names               bare experiment names, one per line\n"
      "  pw_run <experiment> [--seed=N] [--smoke] [--<param>=<value> ...]\n"
      "                      [--json[=PATH]] [--metrics[=PATH]]\n"
      "                      [--timeline[=PATH]]\n"
      "  pw_run --all [--smoke] [--seed=N] [--json[=DIR]] [--metrics[=DIR]]\n"
      "               [--timeline[=DIR]]\n"
      "  pw_run --city[=P] [--smoke] [--districts=D] [--<param>=<value> ...]\n"
      "                    [--json[=PATH]] [--metrics[=PATH]]\n"
      "  pw_run --city-reduce=DIR [--json[=PATH]] [--metrics[=PATH]]\n"
      "  pw_run --campaign=MANIFEST [--campaign-dir=DIR] [--procs=P]\n"
      "                    [--json[=PATH]] [--metrics[=PATH]]\n"
      "\n"
      "--campaign streams the manifest's job queue through a pool of P\n"
      "child processes (default 4) with checkpoint/resume: completed jobs\n"
      "are journaled to DIR/results.jsonl (default DIR: the manifest path\n"
      "with .json replaced by .campaign) and skipped on re-invocation, so\n"
      "an interrupted campaign resumes to byte-identical results. Crashed\n"
      "or timed-out jobs retry with recorded exponential backoff until\n"
      "the manifest's policy quarantines them. See CAMPAIGNS.md and\n"
      "tools/pw_campaign.py (init/status/resume/repair).\n"
      "\n"
      "--city runs the `city` experiment as one child process per\n"
      "district through a pool of P workers (default 4) and reduces the\n"
      "child documents into the same bytes a single-process `pw_run city`\n"
      "emits; --city-reduce reduces district*.json documents written\n"
      "earlier (tools/pw_city.py uses it).\n"
      "\n"
      "Every run narrates on stdout exactly like the historical example\n"
      "binaries; --json additionally writes the canonical key-sorted JSON\n"
      "document (bare --json: <experiment>.json in the current directory).\n"
      "--metrics collects the obs/ registry over the run: the canonical\n"
      "metrics block is appended to the JSON document and written alone to\n"
      "PATH (default <experiment>.metrics.json); byte-identical across\n"
      "PW_THREADS. --metrics implies --timeline, which writes a Chrome\n"
      "trace (chrome://tracing / Perfetto) to PATH (default\n"
      "<experiment>.trace.json). See OBSERVABILITY.md.\n");
}

}  // namespace

bool write_output(const char* label, const std::string& default_name,
                  const std::string& text, const std::string& arg,
                  bool force_dir) {
  namespace fs = std::filesystem;
  std::string path;
  if (arg.empty()) {
    path = default_name;
  } else if (force_dir || fs::is_directory(arg)) {
    // An existing directory means "put the default-named file in
    // there" even outside --all mode; fopen on a directory would only
    // fail with a less helpful error.
    std::error_code ec;
    fs::create_directories(arg, ec);
    if (ec) {
      std::fprintf(stderr, "pw_run: cannot create directory %s: %s\n",
                   arg.c_str(), ec.message().c_str());
      return false;
    }
    path = (fs::path(arg) / default_name).string();
  } else {
    path = arg;
    const fs::path parent = fs::path(path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      fs::create_directories(parent, ec);
      if (ec) {
        std::fprintf(stderr, "pw_run: cannot create directory %s: %s\n",
                     parent.string().c_str(), ec.message().c_str());
        return false;
      }
    }
  }
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
    const bool ok = std::fclose(f) == 0 && written == text.size();
    if (!ok) {
      std::fprintf(stderr, "pw_run: short write: %s\n", path.c_str());
      return false;
    }
    std::printf("%s: %s\n", label, path.c_str());
    return true;
  }
  std::fprintf(stderr, "pw_run: cannot write %s\n", path.c_str());
  return false;
}

namespace {

bool write_json(const std::string& name, const std::string& json,
                const std::string& json_arg, bool force_dir) {
  return write_output("json", name + ".json", json, json_arg, force_dir);
}

/// Writes the --metrics / --timeline artifacts of one finished run.
/// Returns false if any requested write failed.
bool write_obs_outputs(const std::string& name,
                       const RunExperimentResult& result,
                       const std::optional<std::string>& metrics_arg,
                       const std::optional<std::string>& timeline_arg,
                       bool force_dir) {
  bool ok = true;
  if (metrics_arg.has_value()) {
    ok &= write_output("metrics", name + ".metrics.json", result.metrics_json,
                       *metrics_arg, force_dir);
  }
  if (metrics_arg.has_value() || timeline_arg.has_value()) {
    ok &= write_output("timeline", name + ".trace.json", result.timeline_json,
                       timeline_arg.value_or(""), force_dir);
  }
  return ok;
}

/// One fault-list env var: "id:attempt[,id:attempt...]".
bool parse_fault_env_list(const char* env_name,
                          std::set<std::pair<std::string, int>>* out) {
  const char* raw = std::getenv(env_name);
  if (raw == nullptr || *raw == '\0') return true;
  std::string text(raw);
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(start, comma - start);
    const std::size_t colon = item.find(':');
    std::int64_t attempt = 0;
    if (colon == std::string::npos || colon == 0 ||
        !common::parse_int64(item.substr(colon + 1), &attempt) ||
        attempt < 1) {
      std::fprintf(stderr,
                   "pw_run: %s: expected \"id:attempt[,id:attempt...]\", "
                   "got \"%s\"\n",
                   env_name, raw);
      return false;
    }
    out->insert({item.substr(0, colon), static_cast<int>(attempt)});
    start = comma + 1;
  }
  return true;
}

/// Deterministic fault hooks for tests and the CI campaign-smoke job
/// (documented in CAMPAIGNS.md): PW_CAMPAIGN_FAULT_KILL SIGKILLs the
/// named (id, attempt) children pre-exec, PW_CAMPAIGN_FAULT_HANG makes
/// them hang into the timeout, PW_CAMPAIGN_STOP_AFTER=N checkpoints the
/// invocation after N dispatches (exit 3). No effect outside --campaign.
bool parse_campaign_fault_env(campaign::CampaignFaults* faults) {
  if (!parse_fault_env_list("PW_CAMPAIGN_FAULT_KILL", &faults->kill) ||
      !parse_fault_env_list("PW_CAMPAIGN_FAULT_HANG", &faults->hang)) {
    return false;
  }
  if (const char* raw = std::getenv("PW_CAMPAIGN_STOP_AFTER")) {
    std::int64_t value = 0;
    if (*raw != '\0') {
      if (!common::parse_int64(raw, &value) || value < 1) {
        std::fprintf(stderr, "pw_run: PW_CAMPAIGN_STOP_AFTER: expected a "
                             "positive dispatch count, got \"%s\"\n",
                     raw);
        return false;
      }
      faults->stop_after = static_cast<int>(value);
    }
  }
  return true;
}

void print_list() {
  auto& registry = ExperimentRegistry::instance();
  for (const auto& name : registry.names()) {
    const auto experiment = registry.create(name);
    const ExperimentSpec& spec = experiment->spec();
    std::printf("%-22s %s\n", name.c_str(), spec.summary.c_str());
    std::printf("  %-28s %s\n",
                ("--seed=" + std::to_string(spec.default_seed)).c_str(),
                "run seed (every sub-seed derives from it)");
    for (const auto& p : spec.params) {
      std::string flag = "--" + p.name + "=" + param_value_text(p.default_value);
      std::string desc = p.description;
      if (p.smoke_value.has_value()) {
        desc += " [smoke: " + param_value_text(*p.smoke_value) + "]";
      }
      std::printf("  %-28s %s\n", flag.c_str(), desc.c_str());
    }
  }
}

}  // namespace

RunExperimentResult run_experiment(const std::string& name,
                                   const std::vector<common::Flag>& flags,
                                   bool smoke,
                                   const RunOptions& options) {
  RunExperimentResult result;
  const auto experiment = ExperimentRegistry::instance().create(name);
  if (experiment == nullptr) {
    result.exit_code = 2;
    result.error = "unknown experiment '" + name +
                   "' (known: " + known_experiments_text() + ")";
    return result;
  }
  const ExperimentSpec& spec = experiment->spec();
  ResolvedRun resolved;
  std::string error;
  if (!resolve_run(spec, flags, smoke, &resolved, &error)) {
    result.exit_code = 2;
    result.error = error;
    return result;
  }
  // Observability is scoped to exactly this run: the registry window is
  // reset here (RunContext construction already derives no sub-seeds),
  // and the profiler uninstalls before results are serialized.
  if (options.metrics) {
    obs::Registry::reset();
    obs::Registry::set_enabled(true);
  }
  obs::TimelineProfiler timeline;
  if (options.timeline) obs::set_active_timeline(&timeline);

  RunContext ctx(spec, std::move(resolved));
  {
    PW_TIMEIT(kRuntimeExperimentWallNs, "experiment");
    experiment->run(ctx);
  }

  if (options.timeline) {
    obs::set_active_timeline(nullptr);
    result.timeline_json = timeline.to_json().dump() + "\n";
  }
  if (options.metrics) {
    obs::Registry::set_enabled(false);
    common::Json metrics = obs::Registry::to_json();
    result.metrics_json = metrics.dump() + "\n";
    ctx.sink().set_meta("metrics", std::move(metrics));
  }
  result.exit_code = ctx.failed() ? 1 : 0;
  result.json = ctx.sink().canonical_text();
  return result;
}

int pw_run_main(int argc, char** argv) {
  register_builtin_experiments();
  std::string parse_error;
  const auto parsed = common::parse_args(argc, argv, &parse_error);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "pw_run: %s\n\n", parse_error.c_str());
    print_pw_run_usage();
    return 2;
  }
  if (parsed->has_flag("help")) {
    print_pw_run_usage();
    return 0;
  }
  if (parsed->has_flag("list")) {
    print_list();
    return 0;
  }
  if (parsed->has_flag("names")) {
    for (const auto& name : ExperimentRegistry::instance().names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  const bool all = parsed->has_flag("all");
  const bool smoke = parsed->has_flag("smoke");
  std::optional<std::string> json_arg;
  if (const common::Flag* flag = parsed->find_flag("json")) {
    json_arg = flag->value.value_or("");
  }
  std::optional<std::string> metrics_arg;
  if (const common::Flag* flag = parsed->find_flag("metrics")) {
    metrics_arg = flag->value.value_or("");
  }
  std::optional<std::string> timeline_arg;
  if (const common::Flag* flag = parsed->find_flag("timeline")) {
    timeline_arg = flag->value.value_or("");
  }
  RunOptions options;
  options.metrics = metrics_arg.has_value();
  options.timeline = options.metrics || timeline_arg.has_value();

  std::vector<common::Flag> forwarded;
  for (const auto& flag : parsed->flags) {
    if (!is_reserved(flag.name)) forwarded.push_back(flag);
  }

  if (const common::Flag* flag = parsed->find_flag("campaign")) {
    if (!flag->value.has_value() || flag->value->empty()) {
      std::fprintf(stderr, "pw_run: --campaign needs a manifest: "
                           "--campaign=MANIFEST.json\n");
      return 2;
    }
    if (!parsed->positionals.empty() || all || smoke ||
        !forwarded.empty()) {
      std::fprintf(stderr,
                   "pw_run: --campaign takes no experiment name or "
                   "per-experiment flags; jobs, seeds and parameters come "
                   "from the manifest (see CAMPAIGNS.md)\n");
      return 2;
    }
    campaign::CampaignDriverOptions opts;
    opts.argv0 = argv[0];
    opts.manifest_path = *flag->value;
    if (const common::Flag* dir = parsed->find_flag("campaign-dir")) {
      if (!dir->value.has_value() || dir->value->empty()) {
        std::fprintf(stderr, "pw_run: --campaign-dir needs a directory: "
                             "--campaign-dir=DIR\n");
        return 2;
      }
      opts.dir = *dir->value;
    } else {
      // MANIFEST.json -> MANIFEST.campaign; anything else just appends.
      opts.dir = opts.manifest_path;
      const std::string suffix = ".json";
      if (opts.dir.size() > suffix.size() &&
          opts.dir.compare(opts.dir.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
        opts.dir.resize(opts.dir.size() - suffix.size());
      }
      opts.dir += ".campaign";
    }
    if (const common::Flag* procs = parsed->find_flag("procs")) {
      std::int64_t value = 0;
      if (!procs->value.has_value() ||
          !common::parse_int64(*procs->value, &value) || value < 1 ||
          value > 64) {
        std::fprintf(stderr, "pw_run: --procs=P needs a process count in "
                             "[1, 64]\n");
        return 2;
      }
      opts.processes = static_cast<int>(value);
    }
    opts.json_arg = json_arg;
    opts.metrics_arg = metrics_arg;
    if (timeline_arg.has_value()) {
      std::fprintf(stderr,
                   "pw_run: note: --timeline is per-process wall time and "
                   "is not reduced; ignoring it under --campaign\n");
    }
    if (!parse_campaign_fault_env(&opts.faults)) return 2;
    return campaign::run_campaign_driver(opts);
  }
  if (parsed->find_flag("campaign-dir") != nullptr ||
      parsed->find_flag("procs") != nullptr) {
    std::fprintf(stderr,
                 "pw_run: --campaign-dir and --procs only apply together "
                 "with --campaign\n");
    return 2;
  }
  if (const common::Flag* flag = parsed->find_flag("city-reduce")) {
    if (!flag->value.has_value() || flag->value->empty()) {
      std::fprintf(stderr, "pw_run: --city-reduce needs a directory: "
                           "--city-reduce=DIR\n");
      return 2;
    }
    if (!parsed->positionals.empty() || all) {
      std::fprintf(stderr,
                   "pw_run: --city-reduce takes no experiment name\n");
      return 2;
    }
    return run_city_reduce(*flag->value, json_arg, metrics_arg);
  }
  if (const common::Flag* flag = parsed->find_flag("city")) {
    // `pw_run --city` implies the `city` experiment; naming it
    // explicitly is tolerated, anything else is a usage error.
    if (all || (!parsed->positionals.empty() &&
                (parsed->positionals.size() != 1 ||
                 parsed->positionals.front() != "city"))) {
      std::fprintf(stderr,
                   "pw_run: --city always runs the city experiment\n");
      return 2;
    }
    CityDriverOptions city;
    city.argv0 = argv[0];
    if (flag->value.has_value() && !flag->value->empty()) {
      std::int64_t procs = 0;
      if (!common::parse_int64(*flag->value, &procs) || procs < 1 ||
          procs > 64) {
        std::fprintf(stderr, "pw_run: --city=P needs a process count in "
                             "[1, 64], got \"%s\"\n",
                     flag->value->c_str());
        return 2;
      }
      city.processes = static_cast<int>(procs);
    }
    city.smoke = smoke;
    city.forwarded = forwarded;
    city.json_arg = json_arg;
    city.metrics_arg = metrics_arg;
    if (timeline_arg.has_value()) {
      std::fprintf(stderr,
                   "pw_run: note: --timeline is per-process wall time and "
                   "is not reduced; ignoring it under --city\n");
    }
    return run_city_driver(city);
  }

  if (all) {
    if (!parsed->positionals.empty()) {
      std::fprintf(stderr,
                   "pw_run: --all takes no experiment name (got '%s')\n",
                   parsed->positionals.front().c_str());
      return 2;
    }
    for (const auto& flag : forwarded) {
      if (flag.name != "seed") {
        std::fprintf(stderr,
                     "pw_run: --%s is per-experiment; with --all only "
                     "--seed, --smoke, --json, --metrics and --timeline "
                     "apply\n",
                     flag.name.c_str());
        return 2;
      }
    }
    int exit_code = 0;
    for (const auto& name : ExperimentRegistry::instance().names()) {
      std::printf("\n===== pw_run %s =====\n\n", name.c_str());
      const auto result = run_experiment(name, forwarded, smoke, options);
      if (result.exit_code == 2) {
        std::fprintf(stderr, "pw_run: %s\n", result.error.c_str());
        return 2;
      }
      if (result.exit_code != 0) exit_code = 1;
      if (json_arg.has_value() &&
          !write_json(name, result.json, *json_arg, /*force_dir=*/true)) {
        exit_code = 1;
      }
      if (!write_obs_outputs(name, result, metrics_arg, timeline_arg,
                             /*force_dir=*/true)) {
        exit_code = 1;
      }
    }
    return exit_code;
  }

  if (parsed->positionals.size() != 1) {
    print_pw_run_usage();
    return 2;
  }
  const std::string& name = parsed->positionals.front();
  const auto result = run_experiment(name, forwarded, smoke, options);
  if (result.exit_code == 2) {
    std::fprintf(stderr, "pw_run: %s\n", result.error.c_str());
    return 2;
  }
  int exit_code = result.exit_code;
  if (json_arg.has_value() &&
      !write_json(name, result.json, *json_arg, /*force_dir=*/false)) {
    exit_code = 1;
  }
  if (!write_obs_outputs(name, result, metrics_arg, timeline_arg,
                         /*force_dir=*/false)) {
    exit_code = 1;
  }
  return exit_code;
}

int example_main(const std::string& name, int argc, char** argv,
                 const std::vector<std::string>& positional_params) {
  register_builtin_experiments();
  const auto usage = [&](const std::string& message) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(), message.c_str());
    std::string line = "usage: " + name;
    for (const auto& p : positional_params) line += " [<" + p + ">]";
    line += " [--<param>=<value> ...] [--seed=N] [--json[=PATH]]";
    line += " [--metrics[=PATH]] [--timeline[=PATH]]";
    std::fprintf(stderr, "%s\n", line.c_str());
    std::fprintf(stderr,
                 "(same experiment as `pw_run %s`; see pw_run --list)\n",
                 name.c_str());
    return 2;
  };

  std::string parse_error;
  const auto parsed = common::parse_args(argc, argv, &parse_error);
  if (!parsed.has_value()) return usage(parse_error);
  if (parsed->positionals.size() > positional_params.size()) {
    return usage("too many arguments");
  }

  std::vector<common::Flag> flags;
  for (std::size_t i = 0; i < parsed->positionals.size(); ++i) {
    flags.push_back(common::Flag{positional_params[i],
                                 parsed->positionals[i]});
  }
  const bool smoke = parsed->has_flag("smoke");
  std::optional<std::string> json_arg;
  std::optional<std::string> metrics_arg;
  std::optional<std::string> timeline_arg;
  for (const auto& flag : parsed->flags) {
    if (flag.name == "smoke") continue;
    if (flag.name == "json") {
      json_arg = flag.value.value_or("");
      continue;
    }
    if (flag.name == "metrics") {
      metrics_arg = flag.value.value_or("");
      continue;
    }
    if (flag.name == "timeline") {
      timeline_arg = flag.value.value_or("");
      continue;
    }
    flags.push_back(flag);
  }
  RunOptions options;
  options.metrics = metrics_arg.has_value();
  options.timeline = options.metrics || timeline_arg.has_value();

  const auto result = run_experiment(name, flags, smoke, options);
  if (result.exit_code == 2) return usage(result.error);
  int exit_code = result.exit_code;
  if (json_arg.has_value() &&
      !write_json(name, result.json, *json_arg, /*force_dir=*/false)) {
    exit_code = 1;
  }
  if (!write_obs_outputs(name, result, metrics_arg, timeline_arg,
                         /*force_dir=*/false)) {
    exit_code = 1;
  }
  return exit_code;
}

}  // namespace politewifi::runtime
