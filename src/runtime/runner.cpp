#include "runtime/runner.h"

#include <cstdio>
#include <filesystem>
#include <optional>

#include "runtime/experiments/all.h"
#include "runtime/registry.h"
#include "runtime/run_context.h"

namespace politewifi::runtime {

namespace {

constexpr const char* kReservedFlags[] = {"list", "names", "all", "smoke",
                                          "json", "help"};

bool is_reserved(const std::string& name) {
  for (const char* reserved : kReservedFlags) {
    if (name == reserved) return true;
  }
  return false;
}

std::string known_experiments_text() {
  std::string out;
  for (const auto& name : ExperimentRegistry::instance().names()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

void print_pw_run_usage() {
  std::fprintf(
      stderr,
      "pw_run — declarative experiment runner for the Polite WiFi suite\n"
      "\n"
      "usage:\n"
      "  pw_run --list                describe every registered experiment\n"
      "  pw_run --names               bare experiment names, one per line\n"
      "  pw_run <experiment> [--seed=N] [--smoke] [--<param>=<value> ...]\n"
      "                      [--json[=PATH]]\n"
      "  pw_run --all [--smoke] [--seed=N] [--json[=DIR]]\n"
      "\n"
      "Every run narrates on stdout exactly like the historical example\n"
      "binaries; --json additionally writes the canonical key-sorted JSON\n"
      "document (bare --json: <experiment>.json in the current directory).\n");
}

/// Writes `json` where the --json flag asked. `json_arg` is the flag's
/// value ("" for bare --json); `force_dir` treats it as a directory
/// (--all mode). Returns false on I/O failure.
bool write_json(const std::string& name, const std::string& json,
                const std::string& json_arg, bool force_dir) {
  namespace fs = std::filesystem;
  std::string path;
  if (json_arg.empty()) {
    path = name + ".json";
  } else if (force_dir) {
    std::error_code ec;
    fs::create_directories(json_arg, ec);
    if (ec) {
      std::fprintf(stderr, "pw_run: cannot create directory %s: %s\n",
                   json_arg.c_str(), ec.message().c_str());
      return false;
    }
    path = (fs::path(json_arg) / (name + ".json")).string();
  } else {
    path = json_arg;
    const fs::path parent = fs::path(path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      fs::create_directories(parent, ec);
      if (ec) {
        std::fprintf(stderr, "pw_run: cannot create directory %s: %s\n",
                     parent.string().c_str(), ec.message().c_str());
        return false;
      }
    }
  }
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = std::fclose(f) == 0 && written == json.size();
    if (!ok) {
      std::fprintf(stderr, "pw_run: short write: %s\n", path.c_str());
      return false;
    }
    std::printf("json: %s\n", path.c_str());
    return true;
  }
  std::fprintf(stderr, "pw_run: cannot write %s\n", path.c_str());
  return false;
}

void print_list() {
  auto& registry = ExperimentRegistry::instance();
  for (const auto& name : registry.names()) {
    const auto experiment = registry.create(name);
    const ExperimentSpec& spec = experiment->spec();
    std::printf("%-22s %s\n", name.c_str(), spec.summary.c_str());
    std::printf("  %-28s %s\n",
                ("--seed=" + std::to_string(spec.default_seed)).c_str(),
                "run seed (every sub-seed derives from it)");
    for (const auto& p : spec.params) {
      std::string flag = "--" + p.name + "=" + param_value_text(p.default_value);
      std::string desc = p.description;
      if (p.smoke_value.has_value()) {
        desc += " [smoke: " + param_value_text(*p.smoke_value) + "]";
      }
      std::printf("  %-28s %s\n", flag.c_str(), desc.c_str());
    }
  }
}

}  // namespace

RunExperimentResult run_experiment(const std::string& name,
                                   const std::vector<common::Flag>& flags,
                                   bool smoke) {
  RunExperimentResult result;
  const auto experiment = ExperimentRegistry::instance().create(name);
  if (experiment == nullptr) {
    result.exit_code = 2;
    result.error = "unknown experiment '" + name +
                   "' (known: " + known_experiments_text() + ")";
    return result;
  }
  const ExperimentSpec& spec = experiment->spec();
  ResolvedRun resolved;
  std::string error;
  if (!resolve_run(spec, flags, smoke, &resolved, &error)) {
    result.exit_code = 2;
    result.error = error;
    return result;
  }
  RunContext ctx(spec, std::move(resolved));
  experiment->run(ctx);
  result.exit_code = ctx.failed() ? 1 : 0;
  result.json = ctx.sink().canonical_text();
  return result;
}

int pw_run_main(int argc, char** argv) {
  register_builtin_experiments();
  std::string parse_error;
  const auto parsed = common::parse_args(argc, argv, &parse_error);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "pw_run: %s\n\n", parse_error.c_str());
    print_pw_run_usage();
    return 2;
  }
  if (parsed->has_flag("help")) {
    print_pw_run_usage();
    return 0;
  }
  if (parsed->has_flag("list")) {
    print_list();
    return 0;
  }
  if (parsed->has_flag("names")) {
    for (const auto& name : ExperimentRegistry::instance().names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  const bool all = parsed->has_flag("all");
  const bool smoke = parsed->has_flag("smoke");
  std::optional<std::string> json_arg;
  if (const common::Flag* flag = parsed->find_flag("json")) {
    json_arg = flag->value.value_or("");
  }

  std::vector<common::Flag> forwarded;
  for (const auto& flag : parsed->flags) {
    if (!is_reserved(flag.name)) forwarded.push_back(flag);
  }

  if (all) {
    if (!parsed->positionals.empty()) {
      std::fprintf(stderr,
                   "pw_run: --all takes no experiment name (got '%s')\n",
                   parsed->positionals.front().c_str());
      return 2;
    }
    for (const auto& flag : forwarded) {
      if (flag.name != "seed") {
        std::fprintf(stderr,
                     "pw_run: --%s is per-experiment; with --all only "
                     "--seed, --smoke and --json apply\n",
                     flag.name.c_str());
        return 2;
      }
    }
    int exit_code = 0;
    for (const auto& name : ExperimentRegistry::instance().names()) {
      std::printf("\n===== pw_run %s =====\n\n", name.c_str());
      const auto result = run_experiment(name, forwarded, smoke);
      if (result.exit_code == 2) {
        std::fprintf(stderr, "pw_run: %s\n", result.error.c_str());
        return 2;
      }
      if (result.exit_code != 0) exit_code = 1;
      if (json_arg.has_value() &&
          !write_json(name, result.json, *json_arg, /*force_dir=*/true)) {
        exit_code = 1;
      }
    }
    return exit_code;
  }

  if (parsed->positionals.size() != 1) {
    print_pw_run_usage();
    return 2;
  }
  const std::string& name = parsed->positionals.front();
  const auto result = run_experiment(name, forwarded, smoke);
  if (result.exit_code == 2) {
    std::fprintf(stderr, "pw_run: %s\n", result.error.c_str());
    return 2;
  }
  int exit_code = result.exit_code;
  if (json_arg.has_value() &&
      !write_json(name, result.json, *json_arg, /*force_dir=*/false)) {
    exit_code = 1;
  }
  return exit_code;
}

int example_main(const std::string& name, int argc, char** argv,
                 const std::vector<std::string>& positional_params) {
  register_builtin_experiments();
  const auto usage = [&](const std::string& message) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(), message.c_str());
    std::string line = "usage: " + name;
    for (const auto& p : positional_params) line += " [<" + p + ">]";
    line += " [--<param>=<value> ...] [--seed=N] [--json[=PATH]]";
    std::fprintf(stderr, "%s\n", line.c_str());
    std::fprintf(stderr,
                 "(same experiment as `pw_run %s`; see pw_run --list)\n",
                 name.c_str());
    return 2;
  };

  std::string parse_error;
  const auto parsed = common::parse_args(argc, argv, &parse_error);
  if (!parsed.has_value()) return usage(parse_error);
  if (parsed->positionals.size() > positional_params.size()) {
    return usage("too many arguments");
  }

  std::vector<common::Flag> flags;
  for (std::size_t i = 0; i < parsed->positionals.size(); ++i) {
    flags.push_back(common::Flag{positional_params[i],
                                 parsed->positionals[i]});
  }
  const bool smoke = parsed->has_flag("smoke");
  std::optional<std::string> json_arg;
  for (const auto& flag : parsed->flags) {
    if (flag.name == "smoke") continue;
    if (flag.name == "json") {
      json_arg = flag.value.value_or("");
      continue;
    }
    flags.push_back(flag);
  }

  const auto result = run_experiment(name, flags, smoke);
  if (result.exit_code == 2) return usage(result.error);
  int exit_code = result.exit_code;
  if (json_arg.has_value() &&
      !write_json(name, result.json, *json_arg, /*force_dir=*/false)) {
    exit_code = 1;
  }
  return exit_code;
}

}  // namespace politewifi::runtime
