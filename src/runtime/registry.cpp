#include "runtime/registry.h"

namespace politewifi::runtime {

namespace {

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry registry;
  return registry;
}

bool ExperimentRegistry::add(const std::string& name, Factory factory) {
  if (!valid_name(name) || factory == nullptr) return false;
  return factories_.emplace(name, factory).second;
}

bool ExperimentRegistry::remove(const std::string& name) {
  return factories_.erase(name) > 0;
}

bool ExperimentRegistry::contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::unique_ptr<Experiment> ExperimentRegistry::create(
    const std::string& name) const {
  const auto it = factories_.find(name);
  return it == factories_.end() ? nullptr : it->second();
}

std::vector<std::string> ExperimentRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

}  // namespace politewifi::runtime
