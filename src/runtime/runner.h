// The one driver every frontend shares.
//
// `pw_run` (the CLI), the thin examples/ wrappers, and the runtime tests
// all execute experiments through run_experiment(): registry lookup,
// flag resolution against the spec, RunContext construction, the run
// itself, and the canonical JSON document out the other side. No
// frontend owns any experiment logic.
#pragma once

#include <string>
#include <vector>

#include "common/flags.h"

namespace politewifi::runtime {

/// Observability options for one run (the CLI's --metrics/--timeline).
struct RunOptions {
  /// Collect the obs/ metrics registry over the run and append the
  /// canonical `metrics` block to the JSON document. The registry is
  /// reset first, so the block covers exactly this run.
  bool metrics = false;
  /// Record a Chrome-tracing timeline over the run (radio power-state
  /// dwells in sim time + PW_TIMEIT wall spans); the trace comes back
  /// in `timeline_json`. --metrics implies a timeline at the CLI.
  bool timeline = false;
};

struct RunExperimentResult {
  /// 0 = success, 1 = the experiment ran and reported failure,
  /// 2 = usage error (unknown experiment / bad flags; nothing ran).
  int exit_code = 0;
  /// Canonical JSON document (trailing newline) when the run executed.
  std::string json;
  /// Canonical `metrics` block alone (trailing newline) when
  /// RunOptions::metrics asked for it — what --metrics=PATH writes.
  std::string metrics_json;
  /// Chrome trace-event JSON (trailing newline) when
  /// RunOptions::timeline asked for it. Diagnostics only: wall times
  /// and track numbering are not covered by the determinism contract.
  std::string timeline_json;
  /// Usage-ready diagnostic when exit_code == 2.
  std::string error;
};

/// Runs one registered experiment. Human narration goes to stdout (the
/// experiment's own, byte-identical to the historical examples/); the
/// structured document comes back in `json`.
RunExperimentResult run_experiment(const std::string& name,
                                   const std::vector<common::Flag>& flags,
                                   bool smoke,
                                   const RunOptions& options = {});

/// Full pw_run CLI (--list / --names / <name> / --all, --smoke, --json,
/// --city / --city-reduce).
int pw_run_main(int argc, char** argv);

/// Writes one output document where its flag asked. `label` names the
/// flag in diagnostics ("json", "metrics"); `default_name` is used when
/// `arg` is empty (bare flag); `force_dir` treats `arg` as a directory
/// (--all mode). Narrates the path on success; false on I/O failure.
bool write_output(const char* label, const std::string& default_name,
                  const std::string& text, const std::string& arg,
                  bool force_dir);

/// Shared main() for the thin examples/ wrappers: legacy positional
/// arguments map onto the named parameters in `positional_params`
/// (e.g. wardriving's trailing scale), then modern --flags apply on
/// top. Malformed input gets a usage message instead of atof-style
/// silent coercion. stdout is byte-identical to the pre-registry
/// example binaries.
int example_main(const std::string& name, int argc, char** argv,
                 const std::vector<std::string>& positional_params = {});

}  // namespace politewifi::runtime
