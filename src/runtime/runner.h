// The one driver every frontend shares.
//
// `pw_run` (the CLI), the thin examples/ wrappers, and the runtime tests
// all execute experiments through run_experiment(): registry lookup,
// flag resolution against the spec, RunContext construction, the run
// itself, and the canonical JSON document out the other side. No
// frontend owns any experiment logic.
#pragma once

#include <string>
#include <vector>

#include "common/flags.h"

namespace politewifi::runtime {

struct RunExperimentResult {
  /// 0 = success, 1 = the experiment ran and reported failure,
  /// 2 = usage error (unknown experiment / bad flags; nothing ran).
  int exit_code = 0;
  /// Canonical JSON document (trailing newline) when the run executed.
  std::string json;
  /// Usage-ready diagnostic when exit_code == 2.
  std::string error;
};

/// Runs one registered experiment. Human narration goes to stdout (the
/// experiment's own, byte-identical to the historical examples/); the
/// structured document comes back in `json`.
RunExperimentResult run_experiment(const std::string& name,
                                   const std::vector<common::Flag>& flags,
                                   bool smoke);

/// Full pw_run CLI (--list / --names / <name> / --all, --smoke, --json).
int pw_run_main(int argc, char** argv);

/// Shared main() for the thin examples/ wrappers: legacy positional
/// arguments map onto the named parameters in `positional_params`
/// (e.g. wardriving's trailing scale), then modern --flags apply on
/// top. Malformed input gets a usage message instead of atof-style
/// silent coercion. stdout is byte-identical to the pre-registry
/// example binaries.
int example_main(const std::string& name, int argc, char** argv,
                 const std::vector<std::string>& positional_params = {});

}  // namespace politewifi::runtime
