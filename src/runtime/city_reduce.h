// Reduction of per-district city survey documents.
//
// `pw_run city` can run every district in one process (`--district=-1`)
// or as one child process per district (`pw_run --city`,
// tools/pw_city.py). Both paths must produce the *same bytes*, so the
// aggregation lives here, shared by the in-process experiment and the
// reducer: the experiment aggregates its district entries directly,
// the reducer re-assembles child documents and aggregates the same
// entries after a parse round-trip. The canonical metrics block is
// all-integer (counters, gauges, histogram cells), so merging child
// blocks — counters and histogram cells by addition, gauges by max —
// is exact and equals one registry window spanning all districts.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/json.h"

namespace politewifi::runtime {

/// Aggregates an array of district report entries (WardriveReport
/// to_json() objects, in district order) into the survey summary:
/// integer tallies and distances sum, the response rate is recomputed
/// from the summed tallies. Deterministic given the entries.
common::Json aggregate_city_survey(const common::Json& districts);

/// Merges canonical metrics blocks from child documents: counters and
/// histogram counts/sums/totals add, gauges take the max, edges must
/// agree. The block shape is the fixed obs/ catalogue (every name
/// present), so iteration runs over the catalogue, and a child block
/// missing a name is an error (mismatched binaries). Returns nullopt
/// with *error set on malformed input.
std::optional<common::Json> merge_metrics_blocks(
    const std::vector<const common::Json*>& blocks, std::string* error);

/// Reduces one parsed child document per district (any input order)
/// into the document an in-process `--district=-1` run would emit:
/// meta must agree across children except `params.district` (rewritten
/// to -1), district entries concatenate in district order, the survey
/// is re-aggregated, `failed` ORs, and metrics blocks merge when every
/// child carries one (a partial set is an error). Returns nullopt with
/// *error set on inconsistent children.
std::optional<common::Json> reduce_city_documents(
    const std::vector<common::Json>& children, std::string* error);

}  // namespace politewifi::runtime
