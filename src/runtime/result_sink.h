// ResultSink: one canonical document per experiment run.
//
// Each run emits both the historical human-readable narration (stdout,
// preserved byte for byte from the examples/ era) and a canonical
// key-sorted JSON document shaped as:
//
//   { "experiment": ..., "seed": ..., "smoke": ..., "params": {...},
//     "results": {...}, "failed": ... }
//
// The "results" subtree is the experiment's to fill (usually from the
// pipeline result structs' to_json()). Everything outside it is stamped
// by the runtime, and nothing wall-clock-dependent is allowed in the
// document: the golden-regression and determinism gates diff this text.
#pragma once

#include <string>

#include "common/json.h"

namespace politewifi::runtime {

class ResultSink {
 public:
  ResultSink();

  /// Mutable "results" subtree for the running experiment.
  common::Json& results() { return results_; }

  void set_meta(const std::string& key, common::Json value);
  void set_failed(bool failed) { failed_ = failed; }
  bool failed() const { return failed_; }

  /// Assembles the full document (meta + results + failed).
  common::Json document() const;

  /// document() as canonical text with a trailing newline.
  std::string canonical_text() const;

  /// Writes canonical_text() to `path`; false (with *error) on I/O
  /// failure.
  bool write_file(const std::string& path, std::string* error) const;

 private:
  common::Json meta_;     // object: experiment/seed/smoke/params
  common::Json results_;  // object
  bool failed_ = false;
};

}  // namespace politewifi::runtime
