#include "runtime/result_sink.h"

#include <cstdio>

namespace politewifi::runtime {

ResultSink::ResultSink()
    : meta_(common::Json::object()), results_(common::Json::object()) {}

void ResultSink::set_meta(const std::string& key, common::Json value) {
  meta_[key] = std::move(value);
}

common::Json ResultSink::document() const {
  common::Json doc = meta_;
  doc["results"] = results_;
  doc["failed"] = failed_;
  return doc;
}

std::string ResultSink::canonical_text() const {
  return document().dump() + "\n";
}

bool ResultSink::write_file(const std::string& path,
                            std::string* error) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open for writing: " + path;
    return false;
  }
  const std::string text = canonical_text();
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != text.size() || !close_ok) {
    if (error != nullptr) *error = "short write: " + path;
    return false;
  }
  return true;
}

}  // namespace politewifi::runtime
