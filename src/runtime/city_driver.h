// Multi-process city sweep driver (`pw_run --city`, `--city-reduce`).
//
// One child `pw_run city --district=K` process per district, run
// through a bounded process pool, each writing its canonical document
// to a scratch directory; the parent parses the child documents back
// (common/json_parse.h) and reduces them (runtime/city_reduce.h) into
// the same bytes an in-process `pw_run city` run would emit. The
// equivalence is the whole contract: CI diffs the two documents.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/flags.h"

namespace politewifi::runtime {

struct CityDriverOptions {
  /// How the children are invoked (the parent's own argv[0]).
  std::string argv0;
  /// Process-pool bound; districts beyond it queue.
  int processes = 4;
  bool smoke = false;
  /// Experiment flags forwarded verbatim to every child (--seed,
  /// --scale, --districts, --shards). --district is the driver's.
  std::vector<common::Flag> forwarded;
  /// --json / --metrics destinations for the reduced document (same
  /// semantics as a plain run; nullopt = not requested).
  std::optional<std::string> json_arg;
  std::optional<std::string> metrics_arg;
};

/// Runs the full multi-process city survey. Returns a pw_run exit
/// code: 0 success, 1 a child or the reduction failed, 2 usage error.
int run_city_driver(const CityDriverOptions& options);

/// Reduces already-written district documents (`district*.json` in
/// `dir`, e.g. from tools/pw_city.py) without spawning anything.
int run_city_reduce(const std::string& dir,
                    const std::optional<std::string>& json_arg,
                    const std::optional<std::string>& metrics_arg);

}  // namespace politewifi::runtime
