#include "runtime/run_context.h"

#include <utility>

#include "common/check.h"
#include "obs/metrics.h"

namespace politewifi::runtime {

namespace {

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool parse_param_value(const ParamSpec& spec, const common::Flag& flag,
                       ParamValue* out, std::string* error) {
  const char* kind = param_kind_name(spec.default_value);
  // A bare flag is shorthand for true on bool parameters only.
  if (!flag.value.has_value()) {
    if (std::holds_alternative<bool>(spec.default_value)) {
      *out = true;
      return true;
    }
    *error = "--" + spec.name + " needs a value (a " + std::string(kind) +
             "): --" + spec.name + "=<value>";
    return false;
  }
  const std::string& text = *flag.value;
  if (std::holds_alternative<double>(spec.default_value)) {
    double v = 0.0;
    if (!common::parse_double(text, &v)) {
      *error = "--" + spec.name + ": expected a number, got \"" + text +
               "\"";
      return false;
    }
    *out = v;
  } else if (std::holds_alternative<std::int64_t>(spec.default_value)) {
    std::int64_t v = 0;
    if (!common::parse_int64(text, &v)) {
      *error = "--" + spec.name + ": expected an integer, got \"" + text +
               "\"";
      return false;
    }
    *out = v;
  } else if (std::holds_alternative<bool>(spec.default_value)) {
    bool v = false;
    if (!common::parse_bool(text, &v)) {
      *error = "--" + spec.name + ": expected true/false, got \"" + text +
               "\"";
      return false;
    }
    *out = v;
  } else {
    *out = text;
    return true;
  }
  // Numeric bounds.
  double numeric = 0.0;
  if (const auto* d = std::get_if<double>(out)) numeric = *d;
  if (const auto* i = std::get_if<std::int64_t>(out)) {
    numeric = static_cast<double>(*i);
  }
  if (std::holds_alternative<bool>(*out)) return true;
  if (spec.min_value.has_value()) {
    const bool below = spec.min_exclusive ? numeric <= *spec.min_value
                                          : numeric < *spec.min_value;
    if (below) {
      *error = "--" + spec.name + ": " + text + " is out of range (must be " +
               (spec.min_exclusive ? "> " : ">= ") +
               param_value_text(*spec.min_value) + ")";
      return false;
    }
  }
  if (spec.max_value.has_value() && numeric > *spec.max_value) {
    *error = "--" + spec.name + ": " + text + " is out of range (must be <= " +
             param_value_text(*spec.max_value) + ")";
    return false;
  }
  return true;
}

}  // namespace

bool resolve_run(const ExperimentSpec& spec,
                 const std::vector<common::Flag>& flags, bool smoke,
                 ResolvedRun* out, std::string* error) {
  out->smoke = smoke;
  out->seed = spec.default_seed;
  out->params.clear();
  for (const auto& p : spec.params) {
    out->params[p.name] = (smoke && p.smoke_value.has_value())
                              ? *p.smoke_value
                              : p.default_value;
  }
  for (const auto& flag : flags) {
    if (flag.name == "seed") {
      std::int64_t v = 0;
      if (!flag.value.has_value() || !common::parse_int64(*flag.value, &v) ||
          v < 0) {
        *error = "--seed: expected a non-negative integer" +
                 (flag.value.has_value() ? ", got \"" + *flag.value + "\""
                                         : std::string(": --seed=<n>"));
        return false;
      }
      out->seed = static_cast<std::uint64_t>(v);
      continue;
    }
    const ParamSpec* p = spec.find_param(flag.name);
    if (p == nullptr) {
      std::string known = "--seed";
      for (const auto& candidate : spec.params) {
        known += ", --" + candidate.name;
      }
      *error = "unknown flag --" + flag.name + " for experiment '" +
               spec.name + "' (known: " + known + ")";
      return false;
    }
    ParamValue value = p->default_value;
    if (!parse_param_value(*p, flag, &value, error)) return false;
    out->params[p->name] = std::move(value);
  }
  return true;
}

RunContext::RunContext(const ExperimentSpec& spec, ResolvedRun run)
    : spec_(spec), run_(std::move(run)) {
  sink_.set_meta("experiment", spec_.name);
  sink_.set_meta("seed", static_cast<std::int64_t>(run_.seed));
  sink_.set_meta("smoke", run_.smoke);
  common::Json params = common::Json::object();
  for (const auto& [name, value] : run_.params) {
    if (const auto* d = std::get_if<double>(&value)) {
      params[name] = *d;
    } else if (const auto* i = std::get_if<std::int64_t>(&value)) {
      params[name] = *i;
    } else if (const auto* b = std::get_if<bool>(&value)) {
      params[name] = *b;
    } else {
      params[name] = std::get<std::string>(value);
    }
  }
  sink_.set_meta("params", std::move(params));
}

std::uint64_t RunContext::derive_seed(std::string_view label) const {
  PW_COUNT(kRuntimeSubseedsDerived);
  return splitmix64(run_.seed ^ fnv1a64(label));
}

std::uint64_t RunContext::derive_seed(std::uint64_t index) const {
  PW_COUNT(kRuntimeSubseedsDerived);
  return splitmix64(run_.seed ^ (0x5deece66dULL + index));
}

const ParamValue& RunContext::param(const std::string& name) const {
  const auto it = run_.params.find(name);
  PW_CHECK(it != run_.params.end());
  return it->second;
}

double RunContext::param_double(const std::string& name) const {
  const auto* v = std::get_if<double>(&param(name));
  PW_CHECK(v != nullptr);
  return *v;
}

std::int64_t RunContext::param_int(const std::string& name) const {
  const auto* v = std::get_if<std::int64_t>(&param(name));
  PW_CHECK(v != nullptr);
  return *v;
}

bool RunContext::param_bool(const std::string& name) const {
  const auto* v = std::get_if<bool>(&param(name));
  PW_CHECK(v != nullptr);
  return *v;
}

const std::string& RunContext::param_string(const std::string& name) const {
  const auto* v = std::get_if<std::string>(&param(name));
  PW_CHECK(v != nullptr);
  return *v;
}

std::unique_ptr<sim::Simulation> RunContext::make_sim(
    sim::MediumConfig medium, std::uint64_t seed_offset) {
  sim::SimulationConfig config;
  config.medium = std::move(medium);
  config.seed = run_.seed + seed_offset;
  PW_COUNT(kRuntimeSimsBuilt);
  return std::make_unique<sim::Simulation>(std::move(config));
}

sim::SweepRunner& RunContext::sweep() {
  if (sweep_ == nullptr) sweep_ = std::make_unique<sim::SweepRunner>();
  return *sweep_;
}

}  // namespace politewifi::runtime
