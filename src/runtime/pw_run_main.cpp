#include "runtime/runner.h"

int main(int argc, char** argv) {
  return politewifi::runtime::pw_run_main(argc, argv);
}
