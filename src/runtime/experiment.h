// The declarative experiment contract.
//
// The paper's evidence is a *suite* of experiments (Table 1/2, Figs
// 2-6), and the follow-up literature keeps adding members to the same
// family — probe a victim, elicit ACKs, measure something. Instead of
// one bespoke main() per member, every experiment here declares itself
// as data (an ExperimentSpec: name, knobs, defaults, bounds) and plugs
// its logic into a registry, so sweeps, golden gating and new frontends
// all speak one interface.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace politewifi::runtime {

class RunContext;

/// The value a parameter can take. The variant's alternative *is* the
/// parameter's type: a spec whose default is `2.5` declares a double
/// knob, `std::int64_t{30}` an integer one, and CLI input is parsed and
/// validated against that declared type (never coerced).
using ParamValue = std::variant<double, std::int64_t, bool, std::string>;

const char* param_kind_name(const ParamValue& v);

/// Renders a value the way the CLI would accept it (`0.02`, `30`,
/// `true`, `text`).
std::string param_value_text(const ParamValue& v);

struct ParamSpec {
  std::string name;          // CLI flag: --<name>=<value>
  std::string description;   // one line, shown by `pw_run --list`
  ParamValue default_value;
  /// Replaces the default under `--smoke` (explicit CLI input still
  /// wins). Unset = the default is already smoke-cheap.
  std::optional<ParamValue> smoke_value;
  // Bounds for numeric kinds. min_exclusive makes min_value an open
  // bound — e.g. a survey scale must be strictly positive.
  std::optional<double> min_value;
  std::optional<double> max_value;
  bool min_exclusive = false;
};

struct ExperimentSpec {
  std::string name;         // registry key: [a-z0-9_]+
  std::string summary;      // one line for `pw_run --list`
  std::uint64_t default_seed = 42;
  std::vector<ParamSpec> params;  // declaration order = --list order

  const ParamSpec* find_param(const std::string& param_name) const;
};

class Experiment {
 public:
  virtual ~Experiment() = default;

  virtual const ExperimentSpec& spec() const = 0;

  /// Runs to completion. Human-readable narration goes to stdout (the
  /// historical examples/ output, preserved byte for byte); structured
  /// results go into ctx.results(). A failed run calls ctx.fail().
  virtual void run(RunContext& ctx) = 0;
};

}  // namespace politewifi::runtime
