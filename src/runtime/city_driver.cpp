#include "runtime/city_driver.h"

#include <sys/wait.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <variant>

#include "common/json_parse.h"
#include "runtime/city_reduce.h"
#include "runtime/experiments/all.h"
#include "runtime/registry.h"
#include "runtime/run_context.h"
#include "runtime/runner.h"

namespace politewifi::runtime {

namespace {

namespace fs = std::filesystem;

/// POSIX single-quote escaping: the only character needing care inside
/// single quotes is the quote itself.
std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += '\'';
  return out;
}

bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

/// Runs one shell command, capturing combined stdout+stderr. Returns
/// the child's exit code (127 on spawn failure, 125 on abnormal exit).
int run_child(const std::string& command, std::string* output) {
  output->clear();
  std::FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return 127;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    output->append(buf, n);
  }
  const int status = pclose(pipe);
  if (status < 0 || !WIFEXITED(status)) return 125;
  return WEXITSTATUS(status);
}

/// Parses the documents and reduces them; shared by the driver (fresh
/// child runs) and --city-reduce (documents already on disk). Writes
/// the requested outputs and narrates the survey. Returns an exit code.
int reduce_and_report(const std::vector<std::string>& doc_texts,
                      const std::optional<std::string>& json_arg,
                      const std::optional<std::string>& metrics_arg) {
  std::vector<common::Json> children;
  children.reserve(doc_texts.size());
  for (const std::string& text : doc_texts) {
    std::string parse_error;
    auto doc = common::parse_json(text, &parse_error);
    if (!doc.has_value()) {
      std::fprintf(stderr, "pw_run: bad district document: %s\n",
                   parse_error.c_str());
      return 1;
    }
    children.push_back(std::move(*doc));
  }
  std::string reduce_error;
  const auto doc = reduce_city_documents(children, &reduce_error);
  if (!doc.has_value()) {
    std::fprintf(stderr, "pw_run: city reduction failed: %s\n",
                 reduce_error.c_str());
    return 1;
  }

  const common::Json* survey =
      doc->find("results") != nullptr ? doc->find("results")->find("survey")
                                      : nullptr;
  if (survey != nullptr) {
    std::printf("City survey (reduced): %lld/%lld discovered devices "
                "responded (%.1f%%) across %lld districts\n",
                static_cast<long long>(survey->find("responded")->as_int()),
                static_cast<long long>(survey->find("discovered")->as_int()),
                100.0 * survey->find("response_rate")->as_double(),
                static_cast<long long>(survey->find("districts")->as_int()));
  }

  int exit_code = 0;
  const common::Json* failed = doc->find("failed");
  if (failed != nullptr && failed->as_bool()) exit_code = 1;
  if (json_arg.has_value() &&
      !write_output("json", "city.json", doc->dump() + "\n", *json_arg,
                    /*force_dir=*/false)) {
    exit_code = 1;
  }
  if (metrics_arg.has_value()) {
    const common::Json* metrics = doc->find("metrics");
    if (metrics == nullptr) {
      std::fprintf(stderr,
                   "pw_run: --metrics asked but the district documents "
                   "carry no metrics block\n");
      exit_code = 1;
    } else if (!write_output("metrics", "city.metrics.json",
                             metrics->dump() + "\n", *metrics_arg,
                             /*force_dir=*/false)) {
      exit_code = 1;
    }
  }
  return exit_code;
}

}  // namespace

int run_city_driver(const CityDriverOptions& options) {
  register_builtin_experiments();
  for (const auto& flag : options.forwarded) {
    if (flag.name == "district") {
      std::fprintf(stderr,
                   "pw_run: --district is the driver's own flag; with "
                   "--city pass --districts to size the city\n");
      return 2;
    }
  }
  // Resolve the forwarded flags against the city spec up front: the
  // district count sizes the pool, and a bad flag should fail here
  // rather than D times in the children.
  const auto experiment = ExperimentRegistry::instance().create("city");
  ResolvedRun resolved;
  std::string error;
  if (!resolve_run(experiment->spec(), options.forwarded, options.smoke,
                   &resolved, &error)) {
    std::fprintf(stderr, "pw_run: %s\n", error.c_str());
    return 2;
  }
  const auto districts =
      std::get<std::int64_t>(resolved.params.at("districts"));
  const int pool = std::clamp(options.processes, 1,
                              static_cast<int>(districts));

  // Scratch directory for the child documents.
  const char* tmp_env = std::getenv("TMPDIR");
  std::string tmpl = (tmp_env != nullptr ? tmp_env : "/tmp");
  tmpl += "/pw_city.XXXXXX";
  std::vector<char> tmpl_buf(tmpl.begin(), tmpl.end());
  tmpl_buf.push_back('\0');
  if (mkdtemp(tmpl_buf.data()) == nullptr) {
    std::fprintf(stderr, "pw_run: cannot create scratch directory\n");
    return 1;
  }
  const std::string scratch(tmpl_buf.data());

  std::printf("City driver: %lld districts across %d processes\n",
              static_cast<long long>(districts), pool);

  std::string base = shell_quote(options.argv0) + " city";
  if (options.smoke) base += " --smoke";
  for (const auto& flag : options.forwarded) {
    base += " --" + flag.name;
    if (flag.value.has_value()) base += "=" + shell_quote(*flag.value);
  }

  std::vector<int> codes(static_cast<std::size_t>(districts), 0);
  std::vector<std::string> outputs(static_cast<std::size_t>(districts));
  std::atomic<std::int64_t> next{0};
  const auto worker = [&] {
    while (true) {
      const std::int64_t k = next.fetch_add(1);
      if (k >= districts) return;
      const std::string doc_path =
          scratch + "/district" + std::to_string(k) + ".json";
      std::string command = base + " --district=" + std::to_string(k) +
                            " --json=" + shell_quote(doc_path);
      if (options.metrics_arg.has_value()) {
        // Redirect the per-child obs artifacts into the scratch dir so
        // a metrics run leaves no stray trace files in the cwd; the
        // child timelines are per-process wall time and stay
        // diagnostics-only (never reduced).
        command +=
            " --metrics=" + shell_quote(doc_path + ".child.metrics.json");
        command +=
            " --timeline=" + shell_quote(doc_path + ".child.trace.json");
      }
      const std::size_t slot = static_cast<std::size_t>(k);
      codes[slot] = run_child(command, &outputs[slot]);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(pool));
  for (int i = 0; i < pool; ++i) threads.emplace_back(worker);
  for (auto& t : threads) t.join();

  int exit_code = 0;
  std::vector<std::string> doc_texts(static_cast<std::size_t>(districts));
  for (std::int64_t k = 0; k < districts; ++k) {
    const std::size_t slot = static_cast<std::size_t>(k);
    const std::string doc_path =
        scratch + "/district" + std::to_string(k) + ".json";
    // Exit code 1 still writes a document (the run reported failure,
    // which the reduction ORs into `failed`); anything else is a child
    // that never produced its document.
    if ((codes[slot] != 0 && codes[slot] != 1) ||
        !read_file(doc_path, &doc_texts[slot])) {
      std::fprintf(stderr, "pw_run: district %lld failed (exit %d):\n%s",
                   static_cast<long long>(k), codes[slot],
                   outputs[slot].c_str());
      exit_code = 1;
    }
  }
  if (exit_code == 0) {
    exit_code = reduce_and_report(doc_texts, options.json_arg,
                                  options.metrics_arg);
  }
  std::error_code ec;
  fs::remove_all(scratch, ec);  // best effort; scratch lives under TMPDIR
  return exit_code;
}

int run_city_reduce(const std::string& dir,
                    const std::optional<std::string>& json_arg,
                    const std::optional<std::string>& metrics_arg) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("district", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0 &&
        name.find(".metrics.") == std::string::npos &&
        name.find(".trace.") == std::string::npos &&
        name.find(".child.") == std::string::npos) {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    std::fprintf(stderr, "pw_run: cannot read %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  if (paths.empty()) {
    std::fprintf(stderr, "pw_run: no district*.json documents in %s\n",
                 dir.c_str());
    return 1;
  }
  std::sort(paths.begin(), paths.end());
  std::vector<std::string> doc_texts(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (!read_file(paths[i], &doc_texts[i])) {
      std::fprintf(stderr, "pw_run: cannot read %s\n", paths[i].c_str());
      return 1;
    }
  }
  return reduce_and_report(doc_texts, json_arg, metrics_arg);
}

}  // namespace politewifi::runtime
