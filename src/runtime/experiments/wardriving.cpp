// City-scale survey (§3): discover thousands of devices, poke each one
// with fake frames, verify they all say "Hi!" back.
//
// Runs a scaled-down city by default so it finishes in seconds; raise
// --scale to grow it (1.0 = the paper's full 5,328-device census,
// several minutes).
#include <cstdio>
#include <sstream>

#include "core/wardrive.h"
#include "runtime/experiments/all.h"
#include "runtime/registry.h"
#include "runtime/run_context.h"
#include "scenario/city.h"

namespace politewifi::runtime {
namespace {

class WardrivingExperiment final : public Experiment {
 public:
  const ExperimentSpec& spec() const override {
    static const ExperimentSpec kSpec{
        .name = "wardriving",
        .summary = "the §3 city survey: discover, inject, verify every "
                   "device answers",
        .default_seed = 99,
        .params = {
            {.name = "scale",
             .description = "population scale (1.0 = the paper's full "
                            "5,328-device census)",
             .default_value = 0.02,
             .min_value = 0.0,
             .max_value = 4.0,
             .min_exclusive = true},
            {.name = "fading_rho",
             .description = "AR(1) fading autocorrelation per coherence "
                            "interval (0 = memoryless channel); marginal "
                            "survey links flap the way real channels do",
             .default_value = 0.0,
             .min_value = 0.0,
             .max_value = 0.999},
            {.name = "fading_sigma_db",
             .description = "stationary fading spread in dB",
             .default_value = 2.0,
             .min_value = 0.0},
            {.name = "fading_coherence_us",
             .description = "fading coherence interval in microseconds",
             .default_value = 1000.0,
             .min_value = 1.0},
        },
    };
    return kSpec;
  }

  void run(RunContext& ctx) override {
    const double scale = ctx.param_double("scale");

    scenario::CityConfig city_cfg;
    city_cfg.scale = scale;
    city_cfg.seed = ctx.seed();
    const scenario::CityPlan plan(
        scenario::CityPlan::grid_route(scale >= 0.5 ? 6 : 2, 500), city_cfg);

    std::printf("City: %zu APs + %zu clients along a %.1f km route "
                "(scale %.3f)\n",
                plan.ap_count(), plan.client_count(),
                plan.route_length_m() / 1000.0, scale);
    std::printf("Driving the survey rig (discover / inject / verify)...\n\n");

    const auto sim_holder = ctx.make_sim(
        {.fading_rho = ctx.param_double("fading_rho"),
         .fading_sigma_db = ctx.param_double("fading_sigma_db"),
         .fading_coherence_us = ctx.param_double("fading_coherence_us")});
    auto& sim = *sim_holder;
    core::WardriveCampaign campaign(sim, plan);
    const auto report = campaign.run();

    std::printf("Drive: %.1f km in %.0f simulated seconds\n",
                report.distance_m / 1000.0, to_seconds(report.elapsed));
    std::printf("Discovered: %zu devices (%zu APs, %zu clients) from %zu "
                "vendors\n",
                report.discovered, report.discovered_aps,
                report.discovered_clients, report.distinct_vendors);
    std::printf("Fake frames injected: %llu; ACKs captured: %llu\n",
                (unsigned long long)report.fake_frames_sent,
                (unsigned long long)report.acks_observed);
    std::printf("Responded to fakes: %zu/%zu (%.1f%%)\n\n", report.responded,
                report.discovered, 100.0 * report.response_rate());

    std::ostringstream table;
    core::print_table2(table, report.client_table, report.ap_table, 10);
    std::fputs(table.str().c_str(), stdout);

    std::printf("\nEvery WiFi device in town answers a stranger.\n");

    ctx.results() = report.to_json();
  }
};

std::unique_ptr<Experiment> make_wardriving() {
  return std::make_unique<WardrivingExperiment>();
}

}  // namespace

void register_wardriving_experiment() {
  ExperimentRegistry::instance().add("wardriving", &make_wardriving);
}

}  // namespace politewifi::runtime
