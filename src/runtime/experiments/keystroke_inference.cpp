// Keystroke inference via Polite WiFi (§4.1) — the full attack.
//
// An ESP32-class attacker in a different room streams fake frames at a
// victim tablet it has never met, harvests the CSI of the elicited ACKs,
// segments the trace into activities, and recovers keystroke timing and
// keyboard-row estimates while the victim types a passphrase.
//
// The point the paper makes — and this experiment demonstrates — is that
// unlike WindTalker-class attacks, NO rogue AP is needed, NO network key
// is known, and the victim connects to nothing the attacker controls.
#include <cmath>
#include <cstdio>

#include "core/csi_collector.h"
#include "runtime/experiments/all.h"
#include "runtime/registry.h"
#include "runtime/run_context.h"
#include "scenario/sensing_scene.h"
#include "sensing/activity.h"
#include "sensing/keystroke.h"

namespace politewifi::runtime {
namespace {

class KeystrokeInferenceExperiment final : public Experiment {
 public:
  const ExperimentSpec& spec() const override {
    static const ExperimentSpec kSpec{
        .name = "keystroke_inference",
        .summary = "through-wall CSI keystroke recovery from ACKs of fake "
                   "frames",
        .default_seed = 41,
        .params = {
            {.name = "rate_pps",
             .description = "fake-frame injection rate",
             .default_value = 150.0,
             .min_value = 1.0},
            {.name = "wpm",
             .description = "victim typing speed (words per minute)",
             .default_value = 35.0,
             .min_value = 1.0},
            {.name = "secret",
             .description = "the passphrase the victim types",
             .default_value = std::string("hunter2 is my password")},
            {.name = "body_seed",
             .description = "body-motion model sub-seed",
             .default_value = std::int64_t{8},
             .min_value = 0.0},
            {.name = "typing_seed",
             .description = "typing-timing model sub-seed",
             .default_value = std::int64_t{4},
             .min_value = 0.0},
        },
    };
    return kSpec;
  }

  void run(RunContext& ctx) override {
    const double rate_pps = ctx.param_double("rate_pps");
    const auto sim_holder = ctx.make_sim({.shadowing_sigma_db = 0.0});
    auto& sim = *sim_holder;

    // Victim: WPA2 tablet on its own private network.
    mac::ApConfig apc;
    apc.fast_keys = true;
    sim.add_ap("home-ap", *MacAddress::parse("f2:6e:0b:01:02:03"), {0, 0},
               apc);
    mac::ClientConfig cc;
    cc.fast_keys = true;
    sim::Device& victim = sim.add_client(
        "victim-tablet", *MacAddress::parse("3c:28:6d:aa:bb:cc"), {4, 0}, cc);
    sim.establish(victim, seconds(10));

    // Attacker: ESP32 through the wall.
    sim::RadioConfig rig;
    rig.position = {10, 6};
    rig.capture_csi = true;
    sim::Device& attacker = sim.add_device(
        {.name = "esp32-attacker", .kind = sim::DeviceKind::kAttacker},
        *MacAddress::parse("02:0a:c4:01:02:03"), rig);

    // The victim's behaviour: sits still, picks the tablet up, holds it,
    // then types a secret.
    const std::string secret = ctx.param_string("secret");
    scenario::BodyMotionModel user(
        {.seed = static_cast<std::uint64_t>(ctx.param_int("body_seed"))});
    user.add_phase(scenario::Activity::kStill, seconds(6));
    user.add_phase(scenario::Activity::kPickup, seconds(4));
    user.add_phase(scenario::Activity::kHold, seconds(6));
    user.add_phase(scenario::Activity::kTyping, seconds(14));

    auto strokes = scenario::TypingModel::generate(
        secret,
        {.words_per_minute = ctx.param_double("wpm"),
         .seed = static_cast<std::uint64_t>(ctx.param_int("typing_seed"))});
    for (auto& k : strokes) k.at += seconds(16);  // typing starts at t=16
    std::vector<scenario::Keystroke> in_window;
    for (const auto& k : strokes) {
      if (k.at < seconds(30)) in_window.push_back(k);
    }
    user.set_keystrokes(in_window);

    scenario::install_body_csi(sim.medium(), victim.radio(), attacker.radio(),
                               &user, sim.now());

    // The attack: stream fakes, collect ACK CSI.
    std::printf("Attacker streams %g fake frames/s at %s (no key, no AP)...\n",
                rate_pps, victim.address().to_string().c_str());
    core::CsiCollector collector(attacker, victim.address());
    collector.start(rate_pps);
    sim.run_for(seconds(30));
    collector.stop();
    std::printf("  %zu CSI samples harvested from the victim's ACKs\n\n",
                collector.samples().size());

    auto& results = ctx.results();
    results["csi_samples"] = collector.samples().size();

    // Analysis.
    const int sc = sensing::select_best_subcarrier(collector.samples());
    const auto series =
        sensing::resample_amplitude(collector.samples(), sc, rate_pps);

    sensing::ActivityDetector activity;
    std::printf("Activity timeline (from CSI alone):\n");
    auto& timeline = results["activity_timeline"];
    for (const auto& seg : activity.segment(series)) {
      std::printf("  %5.1f - %5.1f s  %s\n", seg.start_s - series.t0_s,
                  seg.end_s - series.t0_s,
                  sensing::motion_class_name(seg.cls));
      timeline.push_back(seg.to_json());
    }

    // Keystrokes inside the typing window.
    sensing::TimeSeries typing;
    typing.dt_s = series.dt_s;
    typing.t0_s = 16.0;
    for (std::size_t i = 0; i < series.size(); ++i) {
      const double t = series.time_of(i) - series.t0_s;
      if (t >= 16.0 && t < 30.0) typing.v.push_back(series.v[i]);
    }
    sensing::KeystrokeDetector detector;
    const auto events = detector.detect(typing);

    std::printf("\nRecovered keystrokes (time + keyboard-row estimate):\n");
    static const char* kRowNames[] = {"space", "bottom row", "home row",
                                      "top row", "number row"};
    auto& recovered = results["keystroke_events"];
    std::size_t row_hits = 0, matched = 0;
    for (const auto& e : events) {
      // Ground-truth lookup for scoring.
      const scenario::Keystroke* truth = nullptr;
      for (const auto& k : in_window) {
        if (std::abs(to_seconds(k.at) - e.time_s) < 0.15) truth = &k;
      }
      std::printf("  t=%6.2f s  magnitude=%.3f  guess=%-10s", e.time_s,
                  e.magnitude, kRowNames[e.estimated_row]);
      common::Json row = e.to_json();
      if (truth != nullptr) {
        ++matched;
        const bool hit = scenario::key_row(truth->key) == e.estimated_row;
        row_hits += hit;
        std::printf("  (truth: '%c', %s)%s", truth->key,
                    kRowNames[scenario::key_row(truth->key)],
                    hit ? "  <- row correct" : "");
        row["truth_key"] = std::string(1, truth->key);
        row["truth_row"] = scenario::key_row(truth->key);
        row["row_correct"] = hit;
      }
      recovered.push_back(std::move(row));
      std::printf("\n");
    }

    std::vector<double> truth_times;
    for (const auto& k : in_window) truth_times.push_back(to_seconds(k.at));
    const auto score = sensing::match_keystrokes(events, truth_times);
    std::printf("\nScore: %zu keystrokes typed, %zu events detected "
                "(precision %.2f, recall %.2f)\n",
                truth_times.size(), events.size(), score.precision(),
                score.recall());
    results["score"] = score.to_json();
    results["keystrokes_typed"] = truth_times.size();
    results["events_detected"] = events.size();
    if (matched > 0) {
      std::printf("Keyboard-row accuracy on matched events: %zu/%zu (%.0f%%)\n",
                  row_hits, matched,
                  100.0 * double(row_hits) / double(matched));
      results["row_hits"] = row_hits;
      results["row_matched"] = matched;
    }
    std::printf("\nAll of this from a $5 device that was never on the "
                "victim's network.\n");
  }
};

std::unique_ptr<Experiment> make_keystroke_inference() {
  return std::make_unique<KeystrokeInferenceExperiment>();
}

}  // namespace

void register_keystroke_inference_experiment() {
  ExperimentRegistry::instance().add("keystroke_inference",
                                     &make_keystroke_inference);
}

}  // namespace politewifi::runtime
