// Defending against Polite WiFi abuse — what actually helps, and what
// fundamentally cannot.
//
// Four rounds against the same home network:
//   1. The classic deauth DoS, without and with 802.11w PMF.
//   2. A guardian node detecting a CSI-sensing poll within a second.
//   3. The battery-drain attack against a BatteryGuard-protected sensor.
//   4. The punchline: through all of it, the fake frames were ACKed —
//      the politeness itself is untouchable (§2.2).
#include <cstdio>
#include <memory>

#include "core/injector.h"
#include "core/monitor.h"
#include "defense/battery_guard.h"
#include "defense/injection_detector.h"
#include "runtime/experiments/all.h"
#include "runtime/registry.h"
#include "runtime/run_context.h"

namespace politewifi::runtime {
namespace {

class DefendingExperiment final : public Experiment {
 public:
  const ExperimentSpec& spec() const override {
    static const ExperimentSpec kSpec{
        .name = "defending",
        .summary = "PMF, a guardian detector and BatteryGuard vs the three "
                   "attacks; the ACK itself survives",
        .default_seed = 201,
        .params = {
            {.name = "sense_rate_pps",
             .description = "CSI-harvesting rate the guardian must spot",
             .default_value = 150.0,
             .min_value = 1.0},
            {.name = "drain_rate_pps",
             .description = "battery-drain flood rate in round 3",
             .default_value = 900.0,
             .min_value = 1.0},
            {.name = "fading_rho",
             .description = "AR(1) fading autocorrelation per coherence "
                            "interval (0 = memoryless channel); stresses "
                            "the detector and guard under link flap",
             .default_value = 0.0,
             .min_value = 0.0,
             .max_value = 0.999},
            {.name = "fading_sigma_db",
             .description = "stationary fading spread in dB",
             .default_value = 2.0,
             .min_value = 0.0},
            {.name = "fading_coherence_us",
             .description = "fading coherence interval in microseconds",
             .default_value = 1000.0,
             .min_value = 1.0},
        },
    };
    return kSpec;
  }

  void run(RunContext& ctx) override {
    auto& results = ctx.results();
    const sim::MediumConfig medium{
        .shadowing_sigma_db = 0.0,
        .fading_rho = ctx.param_double("fading_rho"),
        .fading_sigma_db = ctx.param_double("fading_sigma_db"),
        .fading_coherence_us = ctx.param_double("fading_coherence_us")};

    // --- Round 1: deauth DoS vs 802.11w -----------------------------------
    std::printf("Round 1: the classic deauth DoS vs 802.11w PMF\n");
    auto& round1 = results["round1_deauth"];
    for (const bool pmf : {false, true}) {
      const auto sim_holder =
          ctx.make_sim(medium, /*seed_offset=*/0);
      auto& sim = *sim_holder;
      mac::ApConfig apc;
      apc.fast_keys = true;
      apc.pmf = pmf;
      sim::Device& ap =
          sim.add_ap("home-ap", *MacAddress::parse("f2:6e:0b:01:02:03"),
                     {0, 0}, apc);
      (void)ap;
      mac::ClientConfig cc;
      cc.fast_keys = true;
      cc.pmf = pmf;
      sim::Device& victim = sim.add_client(
          "laptop", *MacAddress::parse("3c:28:6d:aa:bb:cc"), {4, 0}, cc);
      sim.establish(victim, seconds(10));

      sim::RadioConfig rig;
      rig.position = {8, 3};
      sim::Device& attacker = sim.add_device(
          {.name = "attacker", .kind = sim::DeviceKind::kAttacker},
          *MacAddress::parse("02:de:ad:be:ef:01"), rig);
      core::FakeFrameInjector injector(attacker);
      for (int i = 0; i < 3; ++i) {
        injector.inject_spoofed_deauth(
            victim.address(), *MacAddress::parse("f2:6e:0b:01:02:03"));
        sim.run_for(milliseconds(20));
      }
      std::printf("  PMF %-3s -> victim %s (%llu spoofed deauths rejected)\n",
                  pmf ? "on" : "off",
                  victim.client()->established() ? "still connected"
                                                 : "DISCONNECTED",
                  (unsigned long long)
                      victim.client()->stats().spoofed_deauths_rejected);
      common::Json row;
      row["pmf"] = pmf;
      row["still_connected"] = victim.client()->established();
      row["deauths_rejected"] =
          victim.client()->stats().spoofed_deauths_rejected;
      round1.push_back(std::move(row));
    }

    // --- Round 2: detecting a sensing poll --------------------------------
    std::printf("\nRound 2: a guardian node watches the air\n");
    {
      const auto sim_holder =
          ctx.make_sim(medium, /*seed_offset=*/1);
      auto& sim = *sim_holder;
      mac::ApConfig apc;
      apc.fast_keys = true;
      sim.add_ap("home-ap", *MacAddress::parse("f2:6e:0b:01:02:03"), {0, 0},
                 apc);
      mac::ClientConfig cc;
      cc.fast_keys = true;
      sim::Device& victim = sim.add_client(
          "tablet", *MacAddress::parse("3c:28:6d:aa:bb:cc"), {4, 0}, cc);
      sim.establish(victim, seconds(10));

      sim::RadioConfig rig;
      rig.position = {9, 4};
      sim::Device& attacker = sim.add_device(
          {.name = "attacker", .kind = sim::DeviceKind::kAttacker},
          *MacAddress::parse("02:de:ad:be:ef:02"), rig);

      sim::RadioConfig guard_rc;
      guard_rc.position = {1, 1};
      sim::Device& guardian = sim.add_device(
          {.name = "guardian", .kind = sim::DeviceKind::kSniffer},
          *MacAddress::parse("02:99:99:99:99:99"), guard_rc);

      core::MonitorHub hub(guardian.station());
      defense::InjectionDetector detector;
      detector.mark_trusted(*MacAddress::parse("f2:6e:0b:01:02:03"));
      detector.mark_trusted(victim.address());
      TimePoint attack_start{};
      auto& alerts = results["round2_alerts"];
      hub.add_tap([&](const frames::Frame& f, const phy::RxVector&, bool ok) {
        if (!ok) return;
        for (const auto& alert : detector.observe(f, sim.now())) {
          std::printf("  ALERT %-13s attacker=%s victim=%s rate=%.0f/s "
                      "(%.2f s after attack start)\n",
                      defense::threat_kind_name(alert.kind),
                      alert.attacker.to_string().c_str(),
                      alert.victim.to_string().c_str(), alert.rate_pps,
                      to_seconds(alert.raised_at - attack_start));
          common::Json row = alert.to_json();
          row["seconds_after_start"] = to_seconds(alert.raised_at -
                                                  attack_start);
          alerts.push_back(std::move(row));
        }
      });

      core::FakeFrameInjector injector(attacker);
      attack_start = sim.now();
      injector.start_stream(victim.address(), ctx.param_double(
                                                  "sense_rate_pps"));
      sim.run_for(seconds(3));
      injector.stop_all();
    }

    // --- Round 3: battery guard under drain -------------------------------
    const double drain_rate = ctx.param_double("drain_rate_pps");
    std::printf("\nRound 3: battery drain vs BatteryGuard (%g pps, 20 s)\n",
                drain_rate);
    auto& round3 = results["round3_battery"];
    for (const bool guarded : {false, true}) {
      const auto sim_holder =
          ctx.make_sim(medium, /*seed_offset=*/2);
      auto& sim = *sim_holder;
      mac::ApConfig apc;
      apc.fast_keys = true;
      sim.add_ap("home-ap", *MacAddress::parse("f2:6e:0b:01:02:03"), {0, 0},
                 apc);
      mac::ClientConfig cc;
      cc.fast_keys = true;
      cc.power_save = true;
      cc.idle_timeout = milliseconds(100);
      cc.beacon_wake_window = milliseconds(1);
      sim::Device& sensor = sim.add_client(
          "door-sensor", *MacAddress::parse("24:0a:c4:aa:bb:cc"), {4, 0}, cc);
      sim::RadioConfig rig;
      rig.position = {8, 2};
      sim::Device& attacker = sim.add_device(
          {.name = "attacker", .kind = sim::DeviceKind::kAttacker},
          *MacAddress::parse("02:de:ad:be:ef:03"), rig);
      sim.establish(sensor, seconds(10));

      std::unique_ptr<defense::BatteryGuard> guard;
      if (guarded) {
        guard =
            std::make_unique<defense::BatteryGuard>(sim.scheduler(), sensor);
        guard->start();
      }
      core::FakeFrameInjector injector(attacker);
      injector.start_stream(sensor.address(), drain_rate);
      sim.run_for(seconds(4));
      sensor.radio().energy().reset(sim.now());
      sim.run_for(seconds(20));
      injector.stop_all();
      const double avg_mw = sensor.radio().energy().average_mw(sim.now());
      std::printf(
          "  guard %-3s -> %.0f mW  (2400 mWh camera: %.1f h to empty)\n",
          guarded ? "on" : "off", avg_mw, 2400.0 / avg_mw);
      common::Json row;
      row["guarded"] = guarded;
      row["avg_power_mw"] = avg_mw;
      if (avg_mw > 0.0) row["hours_to_empty_2400mwh"] = 2400.0 / avg_mw;
      round3.push_back(std::move(row));
    }

    std::printf(
        "\nThe punchline: in every round above, every fake frame that\n"
        "reached an awake radio was ACKed within SIFS. The defenses work\n"
        "around the politeness — detection, authentication above the MAC,\n"
        "playing dead. None of them can make WiFi stop saying \"Hi!\".\n");
  }
};

std::unique_ptr<Experiment> make_defending() {
  return std::make_unique<DefendingExperiment>();
}

}  // namespace

void register_defending_experiment() {
  ExperimentRegistry::instance().add("defending", &make_defending);
}

}  // namespace politewifi::runtime
