// Battery-drain attack (§4.2) on a power-saving IoT device.
//
// An ESP8266-class sensor node spends its life in 802.11 power save at
// ~10 mW. The attacker bombards it with fake frames: every frame resets
// the victim's idle timer (it can't know the frame is fake until long
// after the ACK), so the radio never sleeps — and every ACK burns
// transmit energy on top. Sweeps the attack rate and projects battery
// life for two commercial cameras.
#include <cmath>
#include <cstdio>

#include "core/battery_attack.h"
#include "mac/rate_control.h"
#include "scenario/device_profiles.h"
#include "runtime/experiments/all.h"
#include "runtime/registry.h"
#include "runtime/run_context.h"

namespace politewifi::runtime {
namespace {

class BatteryDrainExperiment final : public Experiment {
 public:
  const ExperimentSpec& spec() const override {
    static const ExperimentSpec kSpec{
        .name = "battery_drain",
        .summary = "fake-frame flood keeps a power-save IoT node awake; "
                   "projects camera battery life",
        .default_seed = 62,
        .params = {
            {.name = "warmup_s",
             .description = "settling time before each measurement window",
             .default_value = std::int64_t{2},
             .min_value = 0.0},
            {.name = "measure_s",
             .description = "measurement window per attack rate",
             .default_value = std::int64_t{15},
             .smoke_value = std::int64_t{5},
             .min_value = 1.0},
            {.name = "fading_rho",
             .description = "AR(1) fading autocorrelation per coherence "
                            "interval (0 = memoryless channel)",
             .default_value = 0.0,
             .min_value = 0.0,
             .max_value = 0.999},
            {.name = "fading_sigma_db",
             .description = "stationary fading spread in dB",
             .default_value = 2.0,
             .min_value = 0.0},
            {.name = "fading_coherence_us",
             .description = "fading coherence interval in microseconds",
             .default_value = 1000.0,
             .min_value = 1.0},
            {.name = "adaptive_rate",
             .description = "ARF rate adaptation on the sensor (the ladder "
                            "trajectory lands in results)",
             .default_value = false},
        },
    };
    return kSpec;
  }

  void run(RunContext& ctx) override {
    const auto sim_holder = ctx.make_sim(
        {.shadowing_sigma_db = 0.0,
         .fading_rho = ctx.param_double("fading_rho"),
         .fading_sigma_db = ctx.param_double("fading_sigma_db"),
         .fading_coherence_us = ctx.param_double("fading_coherence_us")});
    auto& sim = *sim_holder;

    mac::ApConfig apc;
    apc.fast_keys = true;
    sim.add_ap("home-ap", *MacAddress::parse("f2:6e:0b:01:02:03"), {0, 0},
               apc);

    mac::ClientConfig cc;
    cc.fast_keys = true;
    cc.power_save = true;                    // the whole point
    cc.idle_timeout = milliseconds(100);     // doze after 100 ms idle
    cc.beacon_wake_window = milliseconds(1); // brief beacon listens
    cc.adaptive_rate = ctx.param_bool("adaptive_rate");
    sim::Device& sensor = sim.add_client(
        "esp8266-sensor", *MacAddress::parse("24:0a:c4:aa:bb:cc"), {4, 0}, cc);

    sim::RadioConfig rig;
    rig.position = {8, 2};
    sim::Device& attacker = sim.add_device(
        {.name = "attacker", .kind = sim::DeviceKind::kAttacker},
        *MacAddress::parse("02:de:ad:be:ef:03"), rig);

    sim.establish(sensor, seconds(10));
    std::printf("ESP8266-class sensor associated, power save on.\n\n");

    core::BatteryDrainAttack attack(sim, attacker, sensor);

    const auto warmup = seconds(ctx.param_int("warmup_s"));
    const auto measure = seconds(ctx.param_int("measure_s"));

    std::printf("%-12s %-12s %-12s %-10s\n", "rate (pps)", "power (mW)",
                "sleep frac", "ACKs sent");
    auto& results = ctx.results();
    auto& sweep = results["rate_sweep"];
    double unattacked = 0.0, attacked_900 = 0.0;
    for (const double rate : {0.0, 10.0, 50.0, 150.0, 450.0, 900.0}) {
      const auto r = attack.run(rate, warmup, measure);
      if (rate == 0.0) unattacked = r.avg_power_mw;
      if (rate == 900.0) attacked_900 = r.avg_power_mw;
      std::printf("%-12.0f %-12.1f %-12.2f %-10llu\n", rate, r.avg_power_mw,
                  r.sleep_fraction, (unsigned long long)r.acks_elicited);
      sweep.push_back(r.to_json());
    }

    std::printf("\nPower increase at 900 pps: %.0fx (paper: 35x)\n",
                attacked_900 / unattacked);
    if (unattacked > 0.0 && std::isfinite(attacked_900 / unattacked)) {
      results["power_increase_x"] = attacked_900 / unattacked;
    } else {
      ctx.fail();
    }

    // Rate-ladder trajectory of the victim's ARF controller: under a
    // correlated fade (--fading_rho > 0 with --adaptive_rate) the ladder
    // tracks the channel instead of thrashing; all-zero when adaptive
    // rate is off (the controller never gets fed).
    {
      const mac::ArfTrajectory& t =
          sensor.station().rate_controller().trajectory();
      common::Json ladder;
      ladder["outcomes"] = t.outcomes;
      ladder["upshifts"] = t.upshifts;
      ladder["downshifts"] = t.downshifts;
      ladder["min_index"] = t.min_index;
      ladder["max_index"] = t.max_index;
      ladder["final_index"] =
          sensor.station().rate_controller().ladder_index();
      common::Json dwell = common::Json::array();
      for (const std::uint64_t d : t.dwell) dwell.push_back(d);
      ladder["dwell"] = std::move(dwell);
      results["rate_ladder"] = std::move(ladder);
    }

    std::printf("\nBattery-life projections at the attacked draw:\n");
    auto& projections = results["projections"];
    for (const auto& cam :
         {scenario::logitech_circle2(), scenario::blink_xt2()}) {
      const auto proj =
          core::project_drain(cam.name, cam.battery_mwh, attacked_900);
      std::printf("  %-22s %.0f mWh, advertised \"%s\" -> drained in %.1f h\n",
                  cam.name.c_str(), cam.battery_mwh,
                  cam.advertised_life.c_str(), proj.hours_to_empty);
      projections.push_back(proj.to_json());
    }
    std::printf("\nA camera sold on months of battery dies before the next "
                "morning.\n");
  }
};

std::unique_ptr<Experiment> make_battery_drain() {
  return std::make_unique<BatteryDrainExperiment>();
}

}  // namespace

void register_battery_drain_experiment() {
  ExperimentRegistry::instance().add("battery_drain", &make_battery_drain);
}

}  // namespace politewifi::runtime
