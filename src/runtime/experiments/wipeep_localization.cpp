// Locating every WiFi device in a house from the sidewalk — the Wi-Peep
// follow-up to Polite WiFi, end to end.
//
// The victim devices never associate with the attacker, never share a
// key, and never run any attacker code. They are simply polite: every
// fake frame is ACKed a standard-fixed SIFS later, so the round-trip
// time leaks the distance, and a short walk around the building yields
// enough anchors to trilaterate everything inside.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/localizer.h"
#include "core/ranging.h"
#include "runtime/experiments/all.h"
#include "runtime/registry.h"
#include "runtime/run_context.h"

namespace politewifi::runtime {
namespace {

class WipeepLocalizationExperiment final : public Experiment {
 public:
  const ExperimentSpec& spec() const override {
    static const ExperimentSpec kSpec{
        .name = "wipeep_localization",
        .summary = "ACK-RTT ranging from a sidewalk walk trilaterates every "
                   "device in the house",
        .default_seed = 7,
        .params = {
            {.name = "sifs_jitter_ns",
             .description = "per-chip SIFS turnaround jitter (real chips: "
                            "~100-300 ns)",
             .default_value = 120.0,
             .min_value = 0.0},
            {.name = "probes",
             .description = "fake-frame probes per device per anchor point",
             .default_value = std::int64_t{30},
             .min_value = 1.0},
        },
    };
    return kSpec;
  }

  void run(RunContext& ctx) override {
    const auto sim_holder = ctx.make_sim({.shadowing_sigma_db = 0.0});
    auto& sim = *sim_holder;

    // The house and its devices (ground truth the attacker never sees).
    struct Truth {
      const char* name;
      MacAddress mac;
      Position pos;
    };
    const std::vector<Truth> house = {
        {"smart-tv", *MacAddress::parse("8c:77:12:01:01:01"), {6.0, 4.0}},
        {"thermostat", *MacAddress::parse("44:61:32:02:02:02"), {2.0, 9.0}},
        {"security-camera", *MacAddress::parse("24:0a:c4:03:03:03"),
         {11.0, 8.0}},
        {"laptop", *MacAddress::parse("3c:28:6d:04:04:04"), {9.0, 2.0}},
    };
    mac::MacConfig silicon;
    silicon.sifs_jitter_ns = ctx.param_double("sifs_jitter_ns");
    for (const auto& t : house) {
      sim::RadioConfig rc;
      rc.position = t.pos;
      sim.add_device({.name = t.name}, t.mac, rc, silicon);
    }

    sim::RadioConfig rig;
    sim::Device& attacker = sim.add_device(
        {.name = "walker", .kind = sim::DeviceKind::kAttacker},
        *MacAddress::parse("02:de:ad:be:ef:07"), rig);
    core::RttRanger ranger(sim, attacker);

    const int probes = static_cast<int>(ctx.param_int("probes"));

    // A walk around the ~13 x 11 m house.
    const std::vector<Position> walk = {{-4, -3}, {7, -4},  {17, -2}, {18, 6},
                                        {16, 13}, {6, 14},  {-4, 12}, {-5, 5}};

    std::printf("Walking %zu anchor points around the house, %d fake-frame\n"
                "probes per device per point...\n\n",
                walk.size(), probes);

    std::printf("%-18s %-16s %-16s %-8s\n", "device", "truth (x, y)",
                "estimate (x, y)", "error");
    auto& fixes = ctx.results()["devices"];
    for (const auto& t : house) {
      std::vector<core::RangeObservation> obs;
      for (const auto& anchor : walk) {
        attacker.radio().set_position(anchor);
        const auto est = ranger.range(t.mac, probes);
        if (est.measurements < 10) continue;
        obs.push_back({anchor, est.distance_m,
                       1.0 / std::max(est.stddev_m * est.stddev_m, 1.0)});
      }
      const auto fix = core::trilaterate(obs);
      std::printf("%-18s (%5.1f, %5.1f)   (%5.1f, %5.1f)   %.2f m\n", t.name,
                  t.pos.x, t.pos.y, fix.position.x, fix.position.y,
                  distance(fix.position, t.pos));
      common::Json row = fix.to_json();
      row["name"] = std::string(t.name);
      row["truth_x"] = t.pos.x;
      row["truth_y"] = t.pos.y;
      row["error_m"] = distance(fix.position, t.pos);
      fixes.push_back(std::move(row));
    }

    std::printf("\nEvery range came from the SIFS deadline of an ACK the\n"
                "victim was *required by the standard* to send to a frame it\n"
                "could not possibly validate in time.\n");
  }
};

std::unique_ptr<Experiment> make_wipeep_localization() {
  return std::make_unique<WipeepLocalizationExperiment>();
}

}  // namespace

void register_wipeep_localization_experiment() {
  ExperimentRegistry::instance().add("wipeep_localization",
                                     &make_wipeep_localization);
}

}  // namespace politewifi::runtime
