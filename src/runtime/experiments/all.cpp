#include "runtime/experiments/all.h"

namespace politewifi::runtime {

void register_builtin_experiments() {
  static const bool once = [] {
    register_quickstart_experiment();
    register_wardriving_experiment();
    register_city_survey_experiment();
    register_battery_drain_experiment();
    register_keystroke_inference_experiment();
    register_wifi_sensing_experiment();
    register_defending_experiment();
    register_wipeep_localization_experiment();
    return true;
  }();
  (void)once;
}

}  // namespace politewifi::runtime
