// Quickstart: see Polite WiFi happen in five minutes.
//
// Builds a WPA2 home network (AP + tablet), then has a stranger with no
// key and no association inject one fake 802.11 null frame at the tablet
// — and shows the tablet's hardware ACKing the spoofed sender, exactly
// one SIFS later, before any software could possibly have an opinion.
#include <cstdio>
#include <sstream>

#include "core/injector.h"
#include "runtime/experiments/all.h"
#include "runtime/registry.h"
#include "runtime/run_context.h"

namespace politewifi::runtime {
namespace {

class QuickstartExperiment final : public Experiment {
 public:
  const ExperimentSpec& spec() const override {
    static const ExperimentSpec kSpec{
        .name = "quickstart",
        .summary = "one fake null frame; the victim's hardware ACKs a "
                   "total stranger",
        .default_seed = 1,
        .params = {
            {.name = "watch_ms",
             .description = "how long to watch the air after the injection",
             .default_value = std::int64_t{5},
             .min_value = 1.0},
        },
    };
    return kSpec;
  }

  void run(RunContext& ctx) override {
    // --- 1. A private WPA2 network ---------------------------------------
    const auto sim_holder = ctx.make_sim({.shadowing_sigma_db = 0.0});
    auto& sim = *sim_holder;
    auto& trace = sim.trace();

    mac::ApConfig ap_config;
    ap_config.ssid = "PrivateNet";
    ap_config.passphrase = "correct horse battery staple";
    sim::Device& ap = sim.add_ap(
        "home-ap", *MacAddress::parse("f2:6e:0b:11:22:33"), {0, 0}, ap_config);

    mac::ClientConfig client_config;
    client_config.ssid = ap_config.ssid;
    client_config.passphrase = ap_config.passphrase;
    sim::Device& tablet = sim.add_client(
        "tablet", *MacAddress::parse("3c:28:6d:aa:bb:cc"), {5, 0},
        client_config);

    std::printf("Associating tablet to %s (real PBKDF2 + 4-way handshake)...\n",
                ap_config.ssid.c_str());
    if (!sim.establish(tablet, seconds(10))) {
      std::printf("association failed?!\n");
      ctx.fail();
      return;
    }
    std::printf("  associated; AP completed %llu handshake(s)\n\n",
                (unsigned long long)ap.ap()->stats().handshakes_completed);

    // --- 2. A stranger ---------------------------------------------------
    // No role, no keys, not associated. It crafts one fake frame whose only
    // true field is the destination address.
    sim::RadioConfig rig;
    rig.position = {9, 4};
    sim::Device& stranger = sim.add_device(
        {.name = "stranger", .kind = sim::DeviceKind::kAttacker},
        *MacAddress::parse("02:de:ad:be:ef:01"), rig);

    core::FakeFrameInjector injector(stranger);  // spoofs aa:bb:bb:bb:bb:bb

    trace.clear();
    trace.set_address_filter({MacAddress::paper_fake_address()});

    std::printf("Stranger injects one fake null frame at the tablet...\n\n");
    injector.inject_one(tablet.address());
    sim.run_for(milliseconds(ctx.param_int("watch_ms")));

    // --- 3. WiFi says "Hi!" back -----------------------------------------
    std::ostringstream dump;
    trace.dump(dump);
    std::fputs(dump.str().c_str(), stdout);

    auto& results = ctx.results();
    const auto& entries = trace.entries();
    results["trace_entries"] = entries.size();
    results["handshakes_completed"] = ap.ap()->stats().handshakes_completed;
    const bool acked = entries.size() >= 2 && entries[1].frame.fc.is_ack();
    results["stranger_acked"] = acked;
    if (acked) {
      const Duration gap = entries[1].time - entries[0].time -
                           phy::ppdu_airtime(entries[0].tx.rate,
                                             entries[0].raw.size());
      std::printf(
          "\nThe tablet ACKed a total stranger: ACK to %s, %.0f us (= SIFS)\n"
          "after the fake frame ended. No key was checked. None could be.\n",
          entries[1].frame.addr1.to_string().c_str(), to_microseconds(gap));
      results["ack_receiver_address"] = entries[1].frame.addr1.to_string();
      results["ack_gap_us"] = to_microseconds(gap);
    }
    std::printf("\nTablet stats: %llu ACK(s) sent, %llu fake frame(s) "
                "discarded later in software.\n",
                (unsigned long long)tablet.station().stats().acks_sent,
                (unsigned long long)tablet.client()->stats().frames_discarded);
    results["acks_sent"] = tablet.station().stats().acks_sent;
    results["fake_frames_discarded"] =
        tablet.client()->stats().frames_discarded;
  }
};

std::unique_ptr<Experiment> make_quickstart() {
  return std::make_unique<QuickstartExperiment>();
}

}  // namespace

void register_quickstart_experiment() {
  ExperimentRegistry::instance().add("quickstart", &make_quickstart);
}

}  // namespace politewifi::runtime
