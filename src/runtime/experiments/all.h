// Built-in experiment registration.
//
// Static-initializer self-registration silently breaks under static
// libraries (the linker drops unreferenced objects), so the built-ins
// register explicitly: every frontend calls
// register_builtin_experiments() once (idempotent) before touching the
// registry. One function per experiment keeps each pipeline's
// registration next to its logic in runtime/experiments/<name>.cpp.
#pragma once

namespace politewifi::runtime {

void register_quickstart_experiment();
void register_wardriving_experiment();
void register_city_survey_experiment();
void register_battery_drain_experiment();
void register_keystroke_inference_experiment();
void register_wifi_sensing_experiment();
void register_defending_experiment();
void register_wipeep_localization_experiment();

/// Registers all of the above into ExperimentRegistry::instance().
/// Idempotent; safe to call from every main().
void register_builtin_experiments();

}  // namespace politewifi::runtime
