// City-scale survey: the §3 wardrive sharded into independent
// districts, each its own city + simulation, reduced into one survey.
//
// Districts are the unit of multi-process scale-out: `--district=K`
// runs exactly one district (what `pw_run --city` children do), the
// default `--district=-1` runs all of them in-process. Both produce
// the same per-district entries — every sub-seed derives from the run
// seed and the district label, and the in-process path round-trips
// each entry through the canonical JSON text — so the multi-process
// reduction (runtime/city_reduce.h) is byte-identical to the
// in-process document.
#include <cstdio>
#include <string>

#include "common/check.h"
#include "common/json_parse.h"
#include "core/wardrive.h"
#include "runtime/city_reduce.h"
#include "runtime/experiments/all.h"
#include "runtime/registry.h"
#include "runtime/run_context.h"
#include "scenario/city.h"

namespace politewifi::runtime {
namespace {

class CitySurveyExperiment final : public Experiment {
 public:
  const ExperimentSpec& spec() const override {
    static const ExperimentSpec kSpec{
        .name = "city",
        .summary = "the §3 survey at city scale: independent districts, "
                   "one wardrive each, reduced into one survey",
        .default_seed = 77,
        .params = {
            {.name = "districts",
             .description = "number of independent districts in the city",
             .default_value = std::int64_t{8},
             .smoke_value = std::int64_t{4},
             .min_value = 1.0,
             .max_value = 64.0},
            {.name = "district",
             .description = "run only this district (-1 = all; what "
                            "`pw_run --city` children use)",
             .default_value = std::int64_t{-1},
             .min_value = -1.0,
             .max_value = 63.0},
            {.name = "scale",
             .description = "per-district population scale (1.0 = the "
                            "paper's full 5,328-device census per district)",
             .default_value = 0.2,
             .smoke_value = 0.01,
             .min_value = 0.0,
             .max_value = 4.0,
             .min_exclusive = true},
            {.name = "shards",
             .description = "spatial shards per district medium "
                            "(1 = the unsharded reference path)",
             .default_value = std::int64_t{1},
             .min_value = 1.0,
             .max_value = 256.0},
        },
    };
    return kSpec;
  }

  void run(RunContext& ctx) override {
    const std::int64_t districts = ctx.param_int("districts");
    const std::int64_t district = ctx.param_int("district");
    const double scale = ctx.param_double("scale");
    const std::int64_t shards = ctx.param_int("shards");
    if (district >= districts) {
      std::printf("city: --district=%lld out of range (districts=%lld)\n",
                  static_cast<long long>(district),
                  static_cast<long long>(districts));
      ctx.fail();
      return;
    }

    std::printf("City survey: %lld district%s, scale %.3f, %lld shard%s "
                "per medium\n\n",
                static_cast<long long>(districts), districts == 1 ? "" : "s",
                scale, static_cast<long long>(shards),
                shards == 1 ? "" : "s");

    common::Json list = common::Json::array();
    const std::int64_t first = district < 0 ? 0 : district;
    const std::int64_t last = district < 0 ? districts - 1 : district;
    for (std::int64_t k = first; k <= last; ++k) {
      list.push_back(run_district(ctx, k, scale, shards));
    }

    const common::Json survey = aggregate_city_survey(list);
    std::printf("\nSurvey: %lld/%lld discovered devices responded "
                "(%.1f%%) across %lld district%s\n",
                static_cast<long long>(survey.find("responded")->as_int()),
                static_cast<long long>(survey.find("discovered")->as_int()),
                100.0 * survey.find("response_rate")->as_double(),
                static_cast<long long>(list.size()),
                list.size() == 1 ? "" : "s");

    ctx.results()["survey"] = survey;
    ctx.results()["districts"] = std::move(list);
  }

 private:
  static common::Json run_district(RunContext& ctx, std::int64_t k,
                                   double scale, std::int64_t shards) {
    scenario::CityConfig city_cfg;
    city_cfg.scale = scale;
    city_cfg.seed = ctx.derive_seed("district" + std::to_string(k));
    const scenario::CityPlan plan(
        scenario::CityPlan::grid_route(scale >= 0.5 ? 6 : 2, 500), city_cfg);

    sim::MediumConfig medium;
    medium.shards = static_cast<int>(shards);
    const auto sim_holder =
        ctx.make_sim(medium, /*seed_offset=*/static_cast<std::uint64_t>(k));
    core::WardriveCampaign campaign(*sim_holder, plan);
    const auto report = campaign.run();

    std::printf("District %lld: %zu devices, %zu discovered, %zu responded "
                "(%.1f%%), %llu fakes -> %llu ACKs\n",
                static_cast<long long>(k), report.population,
                report.discovered, report.responded,
                100.0 * report.response_rate(),
                static_cast<unsigned long long>(report.fake_frames_sent),
                static_cast<unsigned long long>(report.acks_observed));

    common::Json entry = report.to_json();
    entry["district"] = k;
    // Round-trip through the canonical text so the in-process entry
    // holds exactly the doubles a parent parsing this district's child
    // document would hold (dump -> parse is a fixed point).
    std::string parse_error;
    auto parsed = common::parse_json(entry.dump(), &parse_error);
    PW_CHECK(parsed.has_value(), "district entry round-trip: %s",
             parse_error.c_str());
    return std::move(*parsed);
  }
};

std::unique_ptr<Experiment> make_city_survey() {
  return std::make_unique<CitySurveyExperiment>();
}

}  // namespace

void register_city_survey_experiment() {
  ExperimentRegistry::instance().add("city", &make_city_survey);
}

}  // namespace politewifi::runtime
