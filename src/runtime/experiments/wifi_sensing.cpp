// The opportunity (§4.3): whole-home WiFi sensing with software on ONE
// device.
//
// An IoT hub streams fake frames at the unmodified WiFi devices already
// scattered through a home — a smart TV, a thermostat — and turns their
// ACKs into sensors: per-zone occupancy, motion events, and even a
// sleeping occupant's breathing rate. The sensed devices run stock
// firmware; Polite WiFi makes them all involuntary transmitters at
// whatever packet rate the sensing needs.
#include <cstdio>

#include "core/csi_collector.h"
#include "runtime/experiments/all.h"
#include "runtime/registry.h"
#include "runtime/run_context.h"
#include "scenario/sensing_scene.h"
#include "sensing/activity.h"
#include "sensing/vitals.h"

namespace politewifi::runtime {
namespace {

class WifiSensingExperiment final : public Experiment {
 public:
  const ExperimentSpec& spec() const override {
    static const ExperimentSpec kSpec{
        .name = "wifi_sensing",
        .summary = "one hub turns a stock TV and thermostat into occupancy, "
                   "motion and breathing sensors",
        .default_seed = 77,
        .params = {
            {.name = "tv_rate_pps",
             .description = "fake-frame poll rate for the living-room zone",
             .default_value = 100.0,
             .min_value = 1.0},
            {.name = "thermostat_rate_pps",
             .description = "fake-frame poll rate for the bedroom zone",
             .default_value = 50.0,
             .min_value = 1.0},
            {.name = "breathing_bpm",
             .description = "ground-truth breathing rate of the sleeper",
             .default_value = 16.0,
             .min_value = 4.0},
            {.name = "living_seed",
             .description = "living-room body-motion sub-seed",
             .default_value = std::int64_t{71},
             .min_value = 0.0},
            {.name = "bedroom_seed",
             .description = "bedroom body-motion sub-seed",
             .default_value = std::int64_t{72},
             .min_value = 0.0},
        },
    };
    return kSpec;
  }

  void run(RunContext& ctx) override {
    const double tv_rate = ctx.param_double("tv_rate_pps");
    const double th_rate = ctx.param_double("thermostat_rate_pps");
    const double truth_bpm = ctx.param_double("breathing_bpm");
    const auto sim_holder = ctx.make_sim({.shadowing_sigma_db = 0.0});
    auto& sim = *sim_holder;

    // The home: two stock devices, one hub running our software.
    sim::RadioConfig rc;
    rc.position = {6, 0};
    sim::Device& tv = sim.add_device(
        {.name = "smart-tv", .kind = sim::DeviceKind::kIot},
        *MacAddress::parse("8c:77:12:01:02:03"), rc);
    rc.position = {0, 7};
    sim::Device& thermostat = sim.add_device(
        {.name = "thermostat", .kind = sim::DeviceKind::kIot},
        *MacAddress::parse("44:61:32:04:05:06"), rc);
    rc.position = {0, 0};
    rc.capture_csi = true;
    sim::Device& hub = sim.add_device(
        {.name = "iot-hub", .kind = sim::DeviceKind::kSniffer},
        *MacAddress::parse("02:0a:c4:0a:0b:0c"), rc);

    // What actually happens in the home.
    scenario::BodyMotionModel living_room(
        {.seed = static_cast<std::uint64_t>(ctx.param_int("living_seed"))});
    living_room.add_phase(scenario::Activity::kStill, seconds(8));
    living_room.add_phase(scenario::Activity::kWalking, seconds(4));
    living_room.add_phase(scenario::Activity::kStill, seconds(18));

    scenario::BodyMotionModel bedroom(
        {.breathing_bpm = truth_bpm,
         .seed = static_cast<std::uint64_t>(ctx.param_int("bedroom_seed"))});
    bedroom.add_phase(scenario::Activity::kBreathing, seconds(90));

    scenario::install_body_csi_multi(
        sim.medium(),
        {{&tv.radio(), &living_room}, {&thermostat.radio(), &bedroom}},
        hub.radio(), sim.now());

    auto& results = ctx.results();

    // Sense zone 1: living room via the TV (100 pkt/s — the sensing-rate
    // range the paper cites as impossible with natural traffic).
    std::printf("Hub senses the living room via the smart TV's ACKs...\n");
    core::CsiCollector tv_sense(hub, tv.address());
    tv_sense.start(tv_rate);
    sim.run_for(seconds(30));
    tv_sense.stop();

    const int tv_sc = sensing::select_best_subcarrier(tv_sense.samples());
    const auto tv_series =
        sensing::resample_amplitude(tv_sense.samples(), tv_sc, tv_rate);
    sensing::ActivityDetector detector;
    const auto events = detector.motion_events(tv_series);
    const bool occupied = sensing::detect_occupancy(tv_series);
    std::printf("  occupancy: %s\n", occupied ? "OCCUPIED" : "empty");
    results["living_room"]["occupied"] = occupied;
    auto& motion = results["living_room"]["motion_events_s"];
    for (const double t : events) {
      std::printf("  motion event at t = %.1f s (truth: walk at 8 s)\n",
                  t - tv_series.t0_s);
      motion.push_back(t - tv_series.t0_s);
    }

    // Sense zone 2: bedroom via the thermostat.
    std::printf("\nHub senses the bedroom via the thermostat's ACKs...\n");
    core::CsiCollector th_sense(hub, thermostat.address());
    th_sense.start(th_rate);
    sim.run_for(seconds(50));
    th_sense.stop();

    const int th_sc = sensing::select_best_subcarrier(th_sense.samples());
    const auto th_series =
        sensing::resample_amplitude(th_sense.samples(), th_sc, th_rate);
    const auto breathing = sensing::estimate_breathing(th_series);
    if (breathing) {
      std::printf("  sleeping occupant: breathing %.1f bpm "
                  "(truth: %.1f, confidence %.2f)\n",
                  breathing->rate_bpm, truth_bpm, breathing->confidence);
      results["bedroom"]["breathing"] = breathing->to_json();
    } else {
      std::printf("  no periodic motion detected\n");
      ctx.fail();
    }
    results["bedroom"]["truth_bpm"] = truth_bpm;

    std::printf("\nDevices modified: 1 (the hub). Devices sensed: %llu ACKs\n"
                "from the TV, %llu from the thermostat — both on stock\n"
                "firmware, both just being polite.\n",
                (unsigned long long)tv.station().stats().acks_sent,
                (unsigned long long)thermostat.station().stats().acks_sent);
    results["tv_acks"] = tv.station().stats().acks_sent;
    results["thermostat_acks"] = thermostat.station().stats().acks_sent;
  }
};

std::unique_ptr<Experiment> make_wifi_sensing() {
  return std::make_unique<WifiSensingExperiment>();
}

}  // namespace

void register_wifi_sensing_experiment() {
  ExperimentRegistry::instance().add("wifi_sensing", &make_wifi_sensing);
}

}  // namespace politewifi::runtime
