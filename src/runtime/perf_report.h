// Engine-throughput accounting, promoted from bench/bench_util.h so the
// bench harness and the experiment runtime share one JSON writer.
//
// Construct it first thing (starts the wall clock), feed it every
// scheduler the run drives (or aggregate counts from sweep workers),
// then call finish() last: it prints an "engine" section and writes
// BENCH_<name>.json — via the canonical common::Json writer, so keys
// are sorted and the format matches every other machine-readable file
// this repo emits. The JSONs land in PW_BENCH_DIR (or the compiled-in
// PW_BENCH_DEFAULT_DIR, the repo root, where baselines are committed);
// tools/bench_compare.py diffs fresh runs against those baselines.
//
// Wall time is intentionally *allowed* here (it is the measurement) —
// this is the one result family exempt from the byte-identical rule,
// which is why experiment ResultSink documents never embed a PerfReport.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "sim/event_queue.h"

namespace politewifi::runtime {

class PerfReport {
 public:
  explicit PerfReport(std::string name)
      : name_(std::move(name)), wall_start_(std::chrono::steady_clock::now()) {}

  ~PerfReport() {
    if (!finished_) finish();
  }

  PerfReport(const PerfReport&) = delete;
  PerfReport& operator=(const PerfReport&) = delete;

  /// Accumulates a finished scheduler's event count and simulated span.
  void add_scheduler(const sim::Scheduler& scheduler) {
    add_events(scheduler.events_executed(), scheduler.now() - kSimStart);
  }

  /// Aggregation hook for sweep workers: each independent simulation
  /// reports its own totals.
  void add_events(std::uint64_t events, Duration simulated) {
    events_ += events;
    sim_seconds_ += to_seconds(simulated);
  }

  /// Extra numeric facts worth tracking (scale, thread count, ...).
  void note(const std::string& key, double value) {
    extras_.emplace_back(key, value);
  }

  /// Attaches an obs/ metrics block (Registry::to_json()) under the
  /// "metrics" key. bench_compare.py's default mode skips the object
  /// (non-numeric); --metrics mode gates hit/reuse rates derived from
  /// its counters.
  void set_metrics(common::Json metrics) { metrics_ = std::move(metrics); }

  double wall_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start_)
        .count();
  }

  std::uint64_t events() const { return events_; }

  /// Prints the engine section and writes BENCH_<name>.json. Idempotent.
  void finish() {
    if (finished_) return;
    finished_ = true;
    const double wall_s = wall_seconds();
    const double eps = wall_s > 0.0 ? double(events_) / wall_s : 0.0;
    const double ratio = wall_s > 0.0 ? sim_seconds_ / wall_s : 0.0;

    std::printf("\n--- engine ---\n");
    std::printf("  %-44s %.3f\n", "wall time (s)", wall_s);
    std::printf("  %-44s %.0f\n", "events executed", double(events_));
    std::printf("  %-44s %.0f\n", "events/sec", eps);
    std::printf("  %-44s %.2f\n", "simulated seconds", sim_seconds_);
    std::printf("  %-44s %.2f\n", "sim-time / wall-time", ratio);

    common::Json doc = common::Json::object();
    doc["bench"] = name_;
    doc["wall_time_s"] = wall_s;
    doc["events_executed"] = events_;
    doc["events_per_sec"] = eps;
    doc["sim_time_s"] = sim_seconds_;
    doc["sim_wall_ratio"] = ratio;
    for (const auto& [key, value] : extras_) doc[key] = value;
    if (!metrics_.is_null()) doc["metrics"] = std::move(metrics_);

    const char* dir = std::getenv("PW_BENCH_DIR");
#ifdef PW_BENCH_DEFAULT_DIR
    const std::string base(dir != nullptr ? dir : PW_BENCH_DEFAULT_DIR);
#else
    const std::string base(dir != nullptr ? dir : "");
#endif
    const std::string path =
        (base.empty() ? std::string() : base + "/") + "BENCH_" + name_ +
        ".json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      const std::string text = doc.dump() + "\n";
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::printf("  %-44s %s\n", "perf json", path.c_str());
    } else {
      std::printf("  %-44s UNWRITABLE: %s\n", "perf json", path.c_str());
    }
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point wall_start_;
  std::uint64_t events_ = 0;
  double sim_seconds_ = 0.0;
  std::vector<std::pair<std::string, double>> extras_;
  common::Json metrics_;
  bool finished_ = false;
};

}  // namespace politewifi::runtime
