#include "runtime/city_reduce.h"

#include <algorithm>
#include <cstdint>

#include "obs/metrics.h"

namespace politewifi::runtime {

namespace {

using common::Json;

bool set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

/// Integer field of a district report entry (0 when absent would hide
/// schema drift, so absence is a hard mismatch handled by the caller's
/// validation; entries come from WardriveReport::to_json()).
std::int64_t entry_int(const Json& entry, const char* key) {
  const Json* v = entry.find(key);
  return v == nullptr ? 0 : v->as_int();
}

double entry_double(const Json& entry, const char* key) {
  const Json* v = entry.find(key);
  return v == nullptr ? 0.0 : v->as_double();
}

/// Looks up `section[name]` in a child's metrics block.
const Json* block_cell(const Json& block, const char* section,
                       const char* name) {
  const Json* s = block.find(section);
  return s == nullptr ? nullptr : s->find(name);
}

}  // namespace

Json aggregate_city_survey(const Json& districts) {
  std::int64_t population = 0;
  std::int64_t discovered = 0;
  std::int64_t discovered_aps = 0;
  std::int64_t discovered_clients = 0;
  std::int64_t responded = 0;
  std::int64_t responded_aps = 0;
  std::int64_t responded_clients = 0;
  std::int64_t fake_frames_sent = 0;
  std::int64_t acks_observed = 0;
  double distance_m = 0.0;
  double elapsed_s = 0.0;
  for (std::size_t i = 0; i < districts.size(); ++i) {
    const Json& entry = districts.at(i);
    population += entry_int(entry, "population");
    discovered += entry_int(entry, "discovered");
    discovered_aps += entry_int(entry, "discovered_aps");
    discovered_clients += entry_int(entry, "discovered_clients");
    responded += entry_int(entry, "responded");
    responded_aps += entry_int(entry, "responded_aps");
    responded_clients += entry_int(entry, "responded_clients");
    fake_frames_sent += entry_int(entry, "fake_frames_sent");
    acks_observed += entry_int(entry, "acks_observed");
    distance_m += entry_double(entry, "distance_m");
    elapsed_s += entry_double(entry, "elapsed_s");
  }
  Json survey = Json::object();
  survey["districts"] = static_cast<std::int64_t>(districts.size());
  survey["population"] = population;
  survey["discovered"] = discovered;
  survey["discovered_aps"] = discovered_aps;
  survey["discovered_clients"] = discovered_clients;
  survey["responded"] = responded;
  survey["responded_aps"] = responded_aps;
  survey["responded_clients"] = responded_clients;
  survey["fake_frames_sent"] = fake_frames_sent;
  survey["acks_observed"] = acks_observed;
  survey["distance_m"] = distance_m;
  survey["elapsed_s"] = elapsed_s;
  survey["response_rate"] =
      discovered == 0 ? 0.0
                      : static_cast<double>(responded) /
                            static_cast<double>(discovered);
  return survey;
}

std::optional<Json> merge_metrics_blocks(
    const std::vector<const Json*>& blocks, std::string* error) {
  Json counters = Json::object();
  for (const obs::MetricInfo& info : obs::counter_catalog()) {
    std::int64_t sum = 0;
    for (const Json* block : blocks) {
      const Json* cell = block_cell(*block, "counters", info.name);
      if (cell == nullptr) {
        set_error(error, std::string("metrics block missing counter ") +
                             info.name);
        return std::nullopt;
      }
      sum += cell->as_int();
    }
    counters[info.name] = sum;
  }
  Json gauges = Json::object();
  for (const obs::MetricInfo& info : obs::gauge_catalog()) {
    std::int64_t peak = 0;
    for (const Json* block : blocks) {
      const Json* cell = block_cell(*block, "gauges", info.name);
      if (cell == nullptr) {
        set_error(error,
                  std::string("metrics block missing gauge ") + info.name);
        return std::nullopt;
      }
      peak = std::max(peak, cell->as_int());
    }
    gauges[info.name] = peak;
  }
  Json hists = Json::object();
  for (const obs::HistInfo& info : obs::hist_catalog()) {
    if (info.wall) continue;  // never in the canonical block
    const std::size_t buckets = info.edges.size() + 1;
    std::vector<std::int64_t> counts(buckets, 0);
    std::int64_t sum = 0;
    std::int64_t total = 0;
    for (const Json* block : blocks) {
      const Json* cell = block_cell(*block, "histograms", info.name);
      if (cell == nullptr || cell->find("counts") == nullptr ||
          cell->find("counts")->size() != buckets) {
        set_error(error, std::string("metrics block histogram ") + info.name +
                             " is missing or has mismatched buckets");
        return std::nullopt;
      }
      const Json& child_counts = *cell->find("counts");
      for (std::size_t b = 0; b < buckets; ++b) {
        counts[b] += child_counts.at(b).as_int();
      }
      sum += cell->find("sum") != nullptr ? cell->find("sum")->as_int() : 0;
      total =
          total + (cell->find("total") != nullptr ? cell->find("total")->as_int()
                                                  : 0);
    }
    Json edges = Json::array();
    Json merged_counts = Json::array();
    for (std::size_t b = 0; b < info.edges.size(); ++b) {
      edges.push_back(info.edges[b]);
      merged_counts.push_back(counts[b]);
    }
    merged_counts.push_back(counts[info.edges.size()]);
    Json one = Json::object();
    one["counts"] = std::move(merged_counts);
    one["edges"] = std::move(edges);
    one["sum"] = sum;
    one["total"] = total;
    hists[info.name] = std::move(one);
  }
  Json out = Json::object();
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(hists);
  return out;
}

std::optional<Json> reduce_city_documents(const std::vector<Json>& children,
                                          std::string* error) {
  if (children.empty()) {
    set_error(error, "no district documents to reduce");
    return std::nullopt;
  }
  const std::int64_t want = static_cast<std::int64_t>(children.size());

  // Order children by params.district and validate the set is exactly
  // 0..D-1 with each child believing in the same district count.
  std::vector<const Json*> ordered(children.size(), nullptr);
  for (const Json& child : children) {
    const Json* params = child.find("params");
    const Json* district = params == nullptr ? nullptr
                                             : params->find("district");
    const Json* districts = params == nullptr ? nullptr
                                              : params->find("districts");
    if (district == nullptr || districts == nullptr) {
      set_error(error, "child document lacks params.district[s]");
      return std::nullopt;
    }
    if (districts->as_int() != want) {
      set_error(error, "child documents disagree on the district count");
      return std::nullopt;
    }
    const std::int64_t k = district->as_int();
    if (k < 0 || k >= want || ordered[static_cast<std::size_t>(k)] != nullptr) {
      set_error(error,
                "district indices are not exactly 0..D-1 (duplicate or "
                "out-of-range district " +
                    std::to_string(k) + ")");
      return std::nullopt;
    }
    ordered[static_cast<std::size_t>(k)] = &child;
  }

  // Meta must agree across children once the district index is masked:
  // same experiment, seed, smoke flag and remaining params.
  const auto masked_meta = [](const Json& child) {
    Json meta = Json::object();
    for (const char* key : {"experiment", "seed", "smoke"}) {
      if (const Json* v = child.find(key)) meta[key] = *v;
    }
    Json params = child.find("params") != nullptr ? *child.find("params")
                                                  : Json::object();
    params["district"] = std::int64_t{-1};
    meta["params"] = std::move(params);
    return meta;
  };
  const std::string reference_meta = masked_meta(*ordered[0]).dump();
  for (const Json* child : ordered) {
    if (masked_meta(*child).dump() != reference_meta) {
      set_error(error,
                "child documents disagree on experiment/seed/smoke/params");
      return std::nullopt;
    }
  }

  // Concatenate the district entries in district order and re-derive
  // the survey — the same aggregation the in-process run performs.
  Json districts_out = Json::array();
  bool failed = false;
  std::vector<const Json*> metrics_blocks;
  for (const Json* child : ordered) {
    const Json* results = child->find("results");
    const Json* list = results == nullptr ? nullptr
                                          : results->find("districts");
    if (list == nullptr || list->size() != 1) {
      set_error(error,
                "child document carries no single-district results entry");
      return std::nullopt;
    }
    districts_out.push_back(list->at(0));
    if (const Json* f = child->find("failed")) failed = failed || f->as_bool();
    if (const Json* m = child->find("metrics")) metrics_blocks.push_back(m);
  }
  if (!metrics_blocks.empty() && metrics_blocks.size() != children.size()) {
    set_error(error, "only some child documents carry a metrics block");
    return std::nullopt;
  }

  Json doc = masked_meta(*ordered[0]);
  Json results = Json::object();
  results["survey"] = aggregate_city_survey(districts_out);
  results["districts"] = std::move(districts_out);
  doc["results"] = std::move(results);
  doc["failed"] = failed;
  if (!metrics_blocks.empty()) {
    auto merged = merge_metrics_blocks(metrics_blocks, error);
    if (!merged.has_value()) return std::nullopt;
    doc["metrics"] = std::move(*merged);
  }
  return doc;
}

}  // namespace politewifi::runtime
