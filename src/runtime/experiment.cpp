#include "runtime/experiment.h"

#include <cstdio>

namespace politewifi::runtime {

const char* param_kind_name(const ParamValue& v) {
  switch (v.index()) {
    case 0: return "number";
    case 1: return "integer";
    case 2: return "bool";
    default: return "string";
  }
}

std::string param_value_text(const ParamValue& v) {
  if (const auto* d = std::get_if<double>(&v)) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%g", *d);
    return buf;
  }
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(*i));
    return buf;
  }
  if (const auto* b = std::get_if<bool>(&v)) return *b ? "true" : "false";
  return std::get<std::string>(v);
}

const ParamSpec* ExperimentSpec::find_param(
    const std::string& param_name) const {
  for (const auto& p : params) {
    if (p.name == param_name) return &p;
  }
  return nullptr;
}

}  // namespace politewifi::runtime
