// The experiment registry: named factories for everything `pw_run` (or
// any future batch/serving frontend) can execute.
//
// Registration is explicit rather than static-initializer magic: the
// built-in attack/sensing/defense pipelines register through
// register_builtin_experiments() (runtime/experiments/all.h), which a
// static library can't silently drop and which keeps registration order
// deterministic. The registry itself stores factories in a sorted map,
// so listing order is the name order, never link order.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/experiment.h"

namespace politewifi::runtime {

class ExperimentRegistry {
 public:
  using Factory = std::unique_ptr<Experiment> (*)();

  /// The process-wide registry used by pw_run and the example wrappers.
  static ExperimentRegistry& instance();

  ExperimentRegistry() = default;

  /// Registers a factory under `name`. Rejects (returns false) duplicate
  /// names, empty names, and names with characters outside [a-z0-9_] —
  /// names are CLI arguments and JSON filenames.
  bool add(const std::string& name, Factory factory);

  /// Removes a registration (tests use this to stay hermetic).
  bool remove(const std::string& name);

  bool contains(const std::string& name) const;
  std::size_t size() const { return factories_.size(); }

  /// Instantiates the named experiment; nullptr when unknown.
  std::unique_ptr<Experiment> create(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace politewifi::runtime
