// RunContext: everything one experiment run owns.
//
// The context is where the declarative half (ExperimentSpec + CLI
// overrides) turns operational: resolved parameter values, the run
// seed and deterministic sub-seed derivation, Simulation construction
// (so no experiment ever hand-rolls a seed), SweepRunner threading for
// embarrassingly-parallel sweep points, and the ResultSink the run
// reports into.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/flags.h"
#include "runtime/experiment.h"
#include "runtime/result_sink.h"
#include "sim/network.h"
#include "sim/sweep_runner.h"

namespace politewifi::runtime {

/// A spec with every parameter resolved to a concrete value.
struct ResolvedRun {
  std::uint64_t seed = 0;
  bool smoke = false;
  std::map<std::string, ParamValue> params;
};

/// Resolves CLI flags against a spec. Precedence per parameter:
/// explicit flag > smoke_value (when `smoke`) > default_value. The
/// reserved `--seed` flag is accepted for every experiment. Unknown
/// flags, unparseable or out-of-bounds values, and bare flags on
/// non-bool parameters all fail with a usage-ready *error message.
bool resolve_run(const ExperimentSpec& spec,
                 const std::vector<common::Flag>& flags, bool smoke,
                 ResolvedRun* out, std::string* error);

class RunContext {
 public:
  RunContext(const ExperimentSpec& spec, ResolvedRun run);

  const ExperimentSpec& spec() const { return spec_; }
  std::uint64_t seed() const { return run_.seed; }
  bool smoke() const { return run_.smoke; }

  /// Deterministic sub-seed for a named concern ("typing", "bedroom"):
  /// splitmix64 over the run seed and an FNV-1a hash of the label, so
  /// distinct labels decorrelate and the derivation never touches a
  /// wall clock.
  std::uint64_t derive_seed(std::string_view label) const;
  /// Sub-seed for sweep point `index` (bit-identical across PW_THREADS).
  std::uint64_t derive_seed(std::uint64_t index) const;

  // Typed parameter access; the parameter must exist in the spec with
  // the matching declared type (contract-checked).
  double param_double(const std::string& name) const;
  std::int64_t param_int(const std::string& name) const;
  bool param_bool(const std::string& name) const;
  const std::string& param_string(const std::string& name) const;

  /// The one sanctioned way an experiment builds a Simulation: seeded
  /// from the run seed (+ a small offset for multi-simulation
  /// experiments, e.g. the defending rounds).
  std::unique_ptr<sim::Simulation> make_sim(sim::MediumConfig medium = {},
                                            std::uint64_t seed_offset = 0);

  /// Worker pool for independent sweep points (PW_THREADS honored;
  /// results are collected by index, so output is thread-count
  /// independent). Lazily constructed.
  sim::SweepRunner& sweep();

  ResultSink& sink() { return sink_; }
  common::Json& results() { return sink_.results(); }

  /// Marks the run failed (non-zero exit from the CLI; "failed": true
  /// in the document). The experiment still narrates its own failure.
  void fail() { sink_.set_failed(true); }
  bool failed() const { return sink_.failed(); }

 private:
  const ParamValue& param(const std::string& name) const;

  const ExperimentSpec& spec_;
  ResolvedRun run_;
  std::unique_ptr<sim::SweepRunner> sweep_;
  ResultSink sink_;
};

}  // namespace politewifi::runtime
