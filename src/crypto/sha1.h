// SHA-1 (FIPS-180), from scratch.
//
// WPA2-PSK's key derivation (PBKDF2 and the 802.11i PRF) is built on
// HMAC-SHA1, so the simulator needs a real SHA-1. (SHA-1 is broken for
// collision resistance, but that is irrelevant to HMAC/PBKDF2 use and we
// match the deployed standard rather than improving on it.)
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace politewifi::crypto {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha1();

  /// Feeds more message bytes; can be called repeatedly.
  void update(std::span<const std::uint8_t> data);

  /// Pads, finalizes and returns the digest. The object must not be
  /// updated afterwards (reconstruct for a new message).
  Digest finalize();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
};

}  // namespace politewifi::crypto
