// HMAC-SHA1 (RFC 2104) and the key-derivation functions built on it:
// PBKDF2 (RFC 2898) and the IEEE 802.11i PRF.
//
// WPA2-PSK:
//   PMK = PBKDF2-HMAC-SHA1(passphrase, ssid, 4096 iterations, 32 octets)
//   PTK = PRF-384(PMK, "Pairwise key expansion",
//                 min(AA,SA) || max(AA,SA) || min(ANonce,SNonce) || max(...))
// The CCMP temporal key is octets 32..47 of the PTK.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "crypto/sha1.h"

namespace politewifi::crypto {

/// HMAC-SHA1 over `data` with `key` (any length).
Sha1::Digest hmac_sha1(std::span<const std::uint8_t> key,
                       std::span<const std::uint8_t> data);

/// PBKDF2-HMAC-SHA1. `dk_len` octets of derived key.
std::vector<std::uint8_t> pbkdf2_sha1(std::string_view password,
                                      std::span<const std::uint8_t> salt,
                                      unsigned iterations, std::size_t dk_len);

/// IEEE 802.11i PRF (802.11-2016 §12.7.1.2): iterated
/// HMAC-SHA1(K, A || 0x00 || B || counter) truncated to `bits`/8 octets.
std::vector<std::uint8_t> ieee80211_prf(std::span<const std::uint8_t> key,
                                        std::string_view label,
                                        std::span<const std::uint8_t> context,
                                        std::size_t bits);

}  // namespace politewifi::crypto
