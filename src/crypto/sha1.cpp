#include "crypto/sha1.h"

#include <cstring>

namespace politewifi::crypto {

namespace {

constexpr std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

Sha1::Sha1()
    : h_{0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u} {}

void Sha1::update(std::span<const std::uint8_t> data) {
  total_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t i = 0;
  // Fill a partial buffer first.
  if (buffer_len_ > 0) {
    const std::size_t need = 64 - buffer_len_;
    const std::size_t take = std::min(need, data.size());
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    i = take;
    if (buffer_len_ == 64) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  // Whole blocks straight from input.
  for (; i + 64 <= data.size(); i += 64) process_block(data.data() + i);
  // Stash the tail.
  if (i < data.size()) {
    buffer_len_ = data.size() - i;
    std::memcpy(buffer_.data(), data.data() + i, buffer_len_);
  }
}

Sha1::Digest Sha1::finalize() {
  // Append 0x80, zero-pad to 56 mod 64, append 64-bit big-endian length.
  const std::uint64_t bits = total_bits_;
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_.data() + buffer_len_, 0, 64 - buffer_len_);
    process_block(buffer_.data());
    buffer_len_ = 0;
  }
  std::memset(buffer_.data() + buffer_len_, 0, 56 - buffer_len_);
  for (int i = 0; i < 8; ++i)
    buffer_[56 + i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  process_block(buffer_.data());
  buffer_len_ = 0;

  Digest d;
  for (int i = 0; i < 5; ++i) {
    d[i * 4 + 0] = static_cast<std::uint8_t>(h_[i] >> 24);
    d[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    d[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    d[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return d;
}

Sha1::Digest Sha1::hash(std::span<const std::uint8_t> data) {
  Sha1 s;
  s.update(data);
  return s.finalize();
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t{block[i * 4]} << 24) |
           (std::uint32_t{block[i * 4 + 1]} << 16) |
           (std::uint32_t{block[i * 4 + 2]} << 8) |
           std::uint32_t{block[i * 4 + 3]};
  }
  for (int i = 16; i < 80; ++i)
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

}  // namespace politewifi::crypto
