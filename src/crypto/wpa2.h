// WPA2-PSK key hierarchy and per-link session state.
//
// The simulator's BSSes are "private networks secured by protocols such
// as WPA2" exactly as in the paper's Figure 1: the AP and its clients
// derive a real PMK from the passphrase, run a 4-way-handshake-equivalent
// nonce exchange, and CCMP-protect their data frames. The attacker has
// none of these keys — and never needs them.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/mac_address.h"
#include "crypto/ccmp.h"
#include "crypto/hmac.h"

namespace politewifi::crypto {

using Pmk = std::array<std::uint8_t, 32>;
using Nonce = std::array<std::uint8_t, 32>;

/// Pairwise Transient Key split per 802.11-2016 §12.7.1.3 (CCMP AKM):
/// KCK (16) | KEK (16) | TK (16).
struct Ptk {
  std::array<std::uint8_t, 16> kck{};  // EAPOL MIC key
  std::array<std::uint8_t, 16> kek{};  // key-wrap key
  Aes128::Key tk{};                    // CCMP temporal key
};

/// PMK = PBKDF2-HMAC-SHA1(passphrase, ssid, 4096, 32).
Pmk derive_pmk(std::string_view passphrase, std::string_view ssid);

/// PTK = PRF-384(PMK, "Pairwise key expansion", min/max(AA,SPA) || min/max
/// (ANonce,SNonce)).
Ptk derive_ptk(const Pmk& pmk, const MacAddress& ap, const MacAddress& sta,
               const Nonce& anonce, const Nonce& snonce);

/// Cheap PTK for population-scale scenarios: all key material flows from
/// the 802.11i PRF over the two MAC addresses instead of 4096 PBKDF2
/// rounds. Cryptographic strength is irrelevant there — only the CCMP
/// plumbing (and its cost) matters. Both link ends derive identically.
Ptk derive_fast_ptk(const MacAddress& ap, const MacAddress& sta);

/// One side of an established WPA2 link: protects outgoing MPDUs and
/// validates/unprotects incoming ones with replay detection.
class Wpa2Session {
 public:
  explicit Wpa2Session(const Ptk& ptk) : ptk_(ptk) {}

  const Ptk& ptk() const { return ptk_; }

  /// CCMP-protects `frame` in place, assigning the next packet number.
  void protect(frames::Frame& frame);

  /// Validates MIC and replay counter, decrypts in place.
  /// Returns false for fake, tampered or replayed frames.
  bool unprotect(frames::Frame& frame);

  std::uint64_t next_packet_number() const { return tx_pn_ + 1; }
  std::uint64_t last_rx_packet_number() const { return rx_pn_; }

 private:
  Ptk ptk_;
  std::uint64_t tx_pn_ = 0;  // last transmitted PN
  std::uint64_t rx_pn_ = 0;  // highest accepted PN (replay window = strict)
};

/// Models the time a real receiver needs to decrypt+verify one WPA2 frame.
///
/// §2.2 cites measurements of 200–700 µs per frame under WPA2 ([15, 17,
/// 22]); the spread tracks frame size and device class. We model
///   t = base + per_byte * mpdu_octets
/// with the constants chosen so a 100-octet frame on a mid-class device
/// costs ~250 µs and a 1500-octet frame on a slow device ~700 µs.
struct DecodeLatencyModel {
  double base_us = 180.0;
  double per_byte_us = 0.35;
  double device_class_scale = 1.0;  // 1.0 = mid; slow IoT ~1.5; fast ~0.7

  double decode_us(std::size_t mpdu_octets) const {
    return device_class_scale * (base_us + per_byte_us * double(mpdu_octets));
  }
};

}  // namespace politewifi::crypto
