#include "crypto/ccmp.h"

#include <algorithm>
#include <cstring>

#include "frames/data.h"

namespace politewifi::crypto {

namespace ccm {

namespace {

constexpr std::size_t kMicLen = 8;
constexpr std::size_t kL = 2;  // length-field octets
constexpr std::size_t kNonceLen = 15 - kL;  // 13

using Block = Aes128::Block;

/// B0: flags | nonce | message length (L octets, big-endian).
Block make_b0(std::span<const std::uint8_t> nonce, std::size_t msg_len,
              bool has_aad) {
  Block b{};
  // flags: [Adata] [M'=(M-2)/2 in bits 5..3] [L'=L-1 in bits 2..0]
  b[0] = static_cast<std::uint8_t>((has_aad ? 0x40 : 0x00) |
                                   (((kMicLen - 2) / 2) << 3) | (kL - 1));
  std::copy(nonce.begin(), nonce.end(), b.begin() + 1);
  b[14] = static_cast<std::uint8_t>(msg_len >> 8);
  b[15] = static_cast<std::uint8_t>(msg_len);
  return b;
}

/// A_i: CTR-mode counter block i.
Block make_counter(std::span<const std::uint8_t> nonce, std::uint16_t i) {
  Block a{};
  a[0] = kL - 1;  // flags: just L'
  std::copy(nonce.begin(), nonce.end(), a.begin() + 1);
  a[14] = static_cast<std::uint8_t>(i >> 8);
  a[15] = static_cast<std::uint8_t>(i);
  return a;
}

void xor_into(Block& acc, std::span<const std::uint8_t> data) {
  for (std::size_t i = 0; i < data.size(); ++i) acc[i] ^= data[i];
}

/// CBC-MAC over B0 || encoded(AAD) || plaintext, returning the full tag
/// block (caller truncates to M octets and encrypts with A0).
Block cbc_mac(const Aes128& cipher, std::span<const std::uint8_t> nonce,
              std::span<const std::uint8_t> aad,
              std::span<const std::uint8_t> plaintext) {
  Block x = cipher.encrypt(make_b0(nonce, plaintext.size(), !aad.empty()));

  if (!aad.empty()) {
    // AAD is prefixed with its 2-octet length (AAD < 2^16 - 2^8 here) and
    // the stream is zero-padded to a block boundary.
    Block chunk{};
    chunk[0] = static_cast<std::uint8_t>(aad.size() >> 8);
    chunk[1] = static_cast<std::uint8_t>(aad.size());
    std::size_t fill = 2;
    std::size_t i = 0;
    while (i < aad.size()) {
      const std::size_t take = std::min(aad.size() - i, 16 - fill);
      std::memcpy(chunk.data() + fill, aad.data() + i, take);
      fill += take;
      i += take;
      if (fill == 16 || i == aad.size()) {
        xor_into(x, {chunk.data(), fill});
        cipher.encrypt_block(x);
        chunk.fill(0);
        fill = 0;
      }
    }
  }

  for (std::size_t i = 0; i < plaintext.size(); i += 16) {
    const std::size_t take = std::min<std::size_t>(16, plaintext.size() - i);
    xor_into(x, plaintext.subspan(i, take));
    cipher.encrypt_block(x);
  }
  return x;
}

/// CTR keystream application over `data` starting at counter 1.
void ctr_crypt(const Aes128& cipher, std::span<const std::uint8_t> nonce,
               std::span<std::uint8_t> data) {
  for (std::size_t i = 0; i < data.size(); i += 16) {
    const Block ks =
        cipher.encrypt(make_counter(nonce, static_cast<std::uint16_t>(i / 16 + 1)));
    const std::size_t take = std::min<std::size_t>(16, data.size() - i);
    for (std::size_t j = 0; j < take; ++j) data[i + j] ^= ks[j];
  }
}

}  // namespace

Bytes encrypt(const Aes128& cipher, std::span<const std::uint8_t> nonce,
              std::span<const std::uint8_t> aad,
              std::span<const std::uint8_t> plaintext) {
  const Block tag_block = cbc_mac(cipher, nonce, aad, plaintext);
  const Block a0_ks = cipher.encrypt(make_counter(nonce, 0));

  Bytes out(plaintext.begin(), plaintext.end());
  ctr_crypt(cipher, nonce, out);
  for (std::size_t i = 0; i < kMicLen; ++i)
    out.push_back(static_cast<std::uint8_t>(tag_block[i] ^ a0_ks[i]));
  return out;
}

std::optional<Bytes> decrypt(const Aes128& cipher,
                             std::span<const std::uint8_t> nonce,
                             std::span<const std::uint8_t> aad,
                             std::span<const std::uint8_t> ct_and_mic) {
  if (ct_and_mic.size() < kMicLen) return std::nullopt;
  const auto ct = ct_and_mic.first(ct_and_mic.size() - kMicLen);
  const auto mic = ct_and_mic.last(kMicLen);

  Bytes plain(ct.begin(), ct.end());
  ctr_crypt(cipher, nonce, plain);

  const Block tag_block = cbc_mac(cipher, nonce, aad, plain);
  const Block a0_ks = cipher.encrypt(make_counter(nonce, 0));
  std::uint8_t diff = 0;  // constant-time compare
  for (std::size_t i = 0; i < kMicLen; ++i)
    diff |= static_cast<std::uint8_t>(mic[i] ^ tag_block[i] ^ a0_ks[i]);
  if (diff != 0) return std::nullopt;
  return plain;
}

}  // namespace ccm

std::array<std::uint8_t, 13> ccmp_nonce(const frames::Frame& frame,
                                        std::uint64_t packet_number) {
  std::array<std::uint8_t, 13> nonce{};
  // Priority octet: TID for QoS data, else 0.
  nonce[0] = frame.has_qos_control()
                 ? static_cast<std::uint8_t>(frame.qos_control & 0x0F)
                 : 0;
  const auto& a2 = frame.addr2.octets();
  std::copy(a2.begin(), a2.end(), nonce.begin() + 1);
  for (int i = 0; i < 6; ++i)
    nonce[7 + i] = static_cast<std::uint8_t>(packet_number >> (40 - 8 * i));
  return nonce;
}

Bytes ccmp_aad(const frames::Frame& frame) {
  // §12.5.3.3.3: FC with Retry/PwrMgt/MoreData masked to 0, Protected
  // forced to 1, and data-frame subtype bits 4..6 masked; SC with the
  // sequence number masked (fragment number kept).
  frames::FrameControl fc = frame.fc;
  fc.retry = false;
  fc.power_management = false;
  fc.more_data = false;
  fc.protected_frame = true;
  std::uint16_t fc_raw = fc.pack();
  if (frame.fc.is_data()) fc_raw &= static_cast<std::uint16_t>(~0x0070u);

  ByteWriter w;
  w.u16le(fc_raw);
  w.bytes(frame.addr1.octets());
  w.bytes(frame.addr2.octets());
  w.bytes(frame.addr3.octets());
  w.u16le(frame.seq.fragment & 0x0F);  // SC with sequence masked
  if (frame.has_addr4()) w.bytes(frame.addr4.octets());
  if (frame.has_qos_control())
    w.u16le(frame.qos_control & 0x000F);  // TID only
  return w.take();
}

void ccmp_protect(frames::Frame& frame, const Aes128::Key& temporal_key,
                  std::uint64_t packet_number) {
  const Aes128 cipher(temporal_key);
  // AAD/nonce are computed over the header with Protected set (ccmp_aad
  // forces the bit), matching the decapsulator's view.
  const auto nonce = ccmp_nonce(frame, packet_number);
  const auto aad = ccmp_aad(frame);

  const Bytes ct = ccm::encrypt(cipher, nonce, aad, frame.body);

  ByteWriter w(frames::CcmpHeader::kSize + ct.size());
  frames::CcmpHeader hdr{.packet_number = packet_number, .key_id = 0};
  hdr.serialize(w);
  w.bytes(ct);
  frame.body = w.take();
  frame.fc.protected_frame = true;
}

bool ccmp_unprotect(frames::Frame& frame, const Aes128::Key& temporal_key) {
  if (!frame.fc.protected_frame) return false;
  if (frame.body.size() < frames::CcmpHeader::kSize + frames::CcmpHeader::kMicSize)
    return false;

  ByteReader r(frame.body);
  const auto hdr = frames::CcmpHeader::deserialize(r);
  if (!hdr) return false;

  const Aes128 cipher(temporal_key);
  const auto nonce = ccmp_nonce(frame, hdr->packet_number);
  const auto aad = ccmp_aad(frame);
  const auto plain = ccm::decrypt(cipher, nonce, aad, r.rest());
  if (!plain) return false;

  frame.body = *plain;
  frame.fc.protected_frame = false;
  return true;
}

std::optional<std::uint64_t> ccmp_packet_number(const frames::Frame& frame) {
  if (!frame.fc.protected_frame ||
      frame.body.size() < frames::CcmpHeader::kSize)
    return std::nullopt;
  ByteReader r(frame.body);
  const auto hdr = frames::CcmpHeader::deserialize(r);
  if (!hdr) return std::nullopt;
  return hdr->packet_number;
}

}  // namespace politewifi::crypto
