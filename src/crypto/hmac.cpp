#include "crypto/hmac.h"

#include <algorithm>
#include <array>

namespace politewifi::crypto {

Sha1::Digest hmac_sha1(std::span<const std::uint8_t> key,
                       std::span<const std::uint8_t> data) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k_block{};
  if (key.size() > kBlock) {
    const auto digest = Sha1::hash(key);
    std::copy(digest.begin(), digest.end(), k_block.begin());
  } else {
    std::copy(key.begin(), key.end(), k_block.begin());
  }

  std::array<std::uint8_t, kBlock> ipad, opad;
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x5c);
  }

  Sha1 inner;
  inner.update(ipad);
  inner.update(data);
  const auto inner_digest = inner.finalize();

  Sha1 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finalize();
}

std::vector<std::uint8_t> pbkdf2_sha1(std::string_view password,
                                      std::span<const std::uint8_t> salt,
                                      unsigned iterations,
                                      std::size_t dk_len) {
  const std::span<const std::uint8_t> pw{
      reinterpret_cast<const std::uint8_t*>(password.data()), password.size()};

  std::vector<std::uint8_t> dk;
  dk.reserve(dk_len);
  for (std::uint32_t block = 1; dk.size() < dk_len; ++block) {
    // U1 = HMAC(P, S || INT(block))
    std::vector<std::uint8_t> msg(salt.begin(), salt.end());
    msg.push_back(static_cast<std::uint8_t>(block >> 24));
    msg.push_back(static_cast<std::uint8_t>(block >> 16));
    msg.push_back(static_cast<std::uint8_t>(block >> 8));
    msg.push_back(static_cast<std::uint8_t>(block));
    auto u = hmac_sha1(pw, msg);
    auto t = u;
    for (unsigned i = 1; i < iterations; ++i) {
      u = hmac_sha1(pw, u);
      for (std::size_t j = 0; j < t.size(); ++j) t[j] ^= u[j];
    }
    const std::size_t take = std::min(t.size(), dk_len - dk.size());
    dk.insert(dk.end(), t.begin(), t.begin() + static_cast<long>(take));
  }
  return dk;
}

std::vector<std::uint8_t> ieee80211_prf(std::span<const std::uint8_t> key,
                                        std::string_view label,
                                        std::span<const std::uint8_t> context,
                                        std::size_t bits) {
  const std::size_t out_len = (bits + 7) / 8;
  std::vector<std::uint8_t> out;
  out.reserve(out_len + Sha1::kDigestSize);

  std::vector<std::uint8_t> msg;
  msg.insert(msg.end(), label.begin(), label.end());
  msg.push_back(0x00);  // the standard's mandated separator octet
  msg.insert(msg.end(), context.begin(), context.end());
  msg.push_back(0x00);  // counter placeholder
  const std::size_t counter_pos = msg.size() - 1;

  for (std::uint8_t counter = 0; out.size() < out_len; ++counter) {
    msg[counter_pos] = counter;
    const auto digest = hmac_sha1(key, msg);
    out.insert(out.end(), digest.begin(), digest.end());
  }
  out.resize(out_len);
  return out;
}

}  // namespace politewifi::crypto
