#include "crypto/wpa2.h"

#include <algorithm>
#include <cstring>

namespace politewifi::crypto {

Pmk derive_pmk(std::string_view passphrase, std::string_view ssid) {
  const std::span<const std::uint8_t> salt{
      reinterpret_cast<const std::uint8_t*>(ssid.data()), ssid.size()};
  const auto dk = pbkdf2_sha1(passphrase, salt, 4096, 32);
  Pmk pmk;
  std::copy(dk.begin(), dk.end(), pmk.begin());
  return pmk;
}

Ptk derive_ptk(const Pmk& pmk, const MacAddress& ap, const MacAddress& sta,
               const Nonce& anonce, const Nonce& snonce) {
  // Context = min(AA,SPA) || max(AA,SPA) || min(ANonce,SNonce) || max(...)
  std::vector<std::uint8_t> context;
  context.reserve(12 + 64);
  const MacAddress& lo_mac = std::min(ap, sta);
  const MacAddress& hi_mac = std::max(ap, sta);
  context.insert(context.end(), lo_mac.octets().begin(), lo_mac.octets().end());
  context.insert(context.end(), hi_mac.octets().begin(), hi_mac.octets().end());
  const bool a_first =
      std::lexicographical_compare(anonce.begin(), anonce.end(),
                                   snonce.begin(), snonce.end());
  const Nonce& lo_n = a_first ? anonce : snonce;
  const Nonce& hi_n = a_first ? snonce : anonce;
  context.insert(context.end(), lo_n.begin(), lo_n.end());
  context.insert(context.end(), hi_n.begin(), hi_n.end());

  const auto bits = ieee80211_prf(pmk, "Pairwise key expansion", context, 384);

  Ptk ptk;
  std::copy(bits.begin(), bits.begin() + 16, ptk.kck.begin());
  std::copy(bits.begin() + 16, bits.begin() + 32, ptk.kek.begin());
  std::copy(bits.begin() + 32, bits.begin() + 48, ptk.tk.begin());
  return ptk;
}

Ptk derive_fast_ptk(const MacAddress& ap, const MacAddress& sta) {
  std::array<std::uint8_t, 12> seed;
  std::copy(ap.octets().begin(), ap.octets().end(), seed.begin());
  std::copy(sta.octets().begin(), sta.octets().end(), seed.begin() + 6);
  const auto bits = ieee80211_prf(seed, "fast key expansion", seed, 384);
  Ptk ptk;
  std::copy(bits.begin(), bits.begin() + 16, ptk.kck.begin());
  std::copy(bits.begin() + 16, bits.begin() + 32, ptk.kek.begin());
  std::copy(bits.begin() + 32, bits.begin() + 48, ptk.tk.begin());
  return ptk;
}

void Wpa2Session::protect(frames::Frame& frame) {
  ccmp_protect(frame, ptk_.tk, ++tx_pn_);
}

bool Wpa2Session::unprotect(frames::Frame& frame) {
  const auto pn = ccmp_packet_number(frame);
  if (!pn) return false;
  if (*pn <= rx_pn_) return false;  // replay
  if (!ccmp_unprotect(frame, ptk_.tk)) return false;
  rx_pn_ = *pn;
  return true;
}

}  // namespace politewifi::crypto
