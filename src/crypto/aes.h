// AES-128 block cipher (FIPS-197), from scratch.
//
// CCMP needs only the forward cipher (CCM uses AES in CBC-MAC and CTR
// modes, both of which encrypt). This is a straightforward table-free
// byte-oriented implementation — clarity over throughput; the simulator
// encrypts a few thousand MPDUs per experiment, and the §2.2 ablation
// *wants* a realistic software decode cost to compare against SIFS.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace politewifi::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;

  using Block = std::array<std::uint8_t, kBlockSize>;
  using Key = std::array<std::uint8_t, kKeySize>;

  explicit Aes128(const Key& key);

  /// Encrypts one 16-octet block in place.
  void encrypt_block(Block& block) const;

  /// Convenience: returns E_K(input).
  Block encrypt(const Block& input) const {
    Block out = input;
    encrypt_block(out);
    return out;
  }

 private:
  static constexpr int kRounds = 10;
  // Expanded key schedule: (rounds + 1) round keys of 16 octets.
  std::array<std::uint8_t, kBlockSize*(kRounds + 1)> round_keys_{};
};

}  // namespace politewifi::crypto
