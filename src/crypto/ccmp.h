// CCMP-128 (AES-CCM for 802.11, IEEE 802.11-2016 §12.5.3).
//
// CCM = CTR-mode encryption + CBC-MAC authentication, with the 802.11
// profile M = 8 (MIC octets) and L = 2 (length-field octets). The nonce
// binds the packet number and transmitter address; the AAD binds the MAC
// header. This is what a WPA2 receiver *would* have to run before ACKing
// to reject fake frames — and what provably cannot finish inside SIFS
// (the §2.2 ablation measures this very code).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/aes.h"
#include "frames/frame.h"

namespace politewifi::crypto {

using politewifi::Bytes;

/// Low-level CCM primitives (exposed for tests against RFC 3610 vectors).
namespace ccm {

/// Authenticated encryption. nonce must be 13 octets for L=2.
/// Returns ciphertext || MIC(8).
Bytes encrypt(const Aes128& cipher, std::span<const std::uint8_t> nonce,
              std::span<const std::uint8_t> aad,
              std::span<const std::uint8_t> plaintext);

/// Verifies and decrypts ciphertext || MIC(8); nullopt if the MIC fails.
std::optional<Bytes> decrypt(const Aes128& cipher,
                             std::span<const std::uint8_t> nonce,
                             std::span<const std::uint8_t> aad,
                             std::span<const std::uint8_t> ct_and_mic);

}  // namespace ccm

/// Builds the 13-octet CCMP nonce: priority | A2 | PN (big-endian).
std::array<std::uint8_t, 13> ccmp_nonce(const frames::Frame& frame,
                                        std::uint64_t packet_number);

/// Builds the CCMP AAD from the (already populated) MAC header with the
/// standard's bit masking applied.
Bytes ccmp_aad(const frames::Frame& frame);

/// Encrypts `frame`'s body in place under the temporal key: prepends the
/// CCMP header, encrypts, appends the MIC, and sets the Protected bit.
void ccmp_protect(frames::Frame& frame, const Aes128::Key& temporal_key,
                  std::uint64_t packet_number);

/// Reverses ccmp_protect. Returns false (leaving the frame untouched) on
/// malformed CCMP blob or MIC failure — i.e. a fake or tampered frame.
/// NOTE: by the time this code *could* run, the ACK is already on the air;
/// see mac/ack_policy.h.
bool ccmp_unprotect(frames::Frame& frame, const Aes128::Key& temporal_key);

/// Extracts the packet number from a protected frame (for replay checks).
std::optional<std::uint64_t> ccmp_packet_number(const frames::Frame& frame);

}  // namespace politewifi::crypto
