#include "sensing/features.h"

#include <algorithm>
#include <cmath>

namespace politewifi::sensing {

std::vector<double> moving_variance(const std::vector<double>& x, int w) {
  std::vector<double> out(x.size(), 0.0);
  if (x.size() < 2 || w < 2) return out;
  // Prefix sums of x and x^2 give O(n) windowed variance.
  std::vector<double> s1(x.size() + 1, 0.0), s2(x.size() + 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    s1[i + 1] = s1[i] + x[i];
    s2[i + 1] = s2[i] + x[i] * x[i];
  }
  const int half = w / 2;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t lo = i >= std::size_t(half) ? i - half : 0;
    const std::size_t hi = std::min(x.size(), i + std::size_t(half) + 1);
    const double n = double(hi - lo);
    if (n < 2) continue;
    const double sum = s1[hi] - s1[lo];
    const double sumsq = s2[hi] - s2[lo];
    const double var = (sumsq - sum * sum / n) / (n - 1);
    out[i] = std::max(var, 0.0);  // clamp negative rounding residue
  }
  return out;
}

std::vector<double> moving_stddev(const std::vector<double>& x, int w) {
  auto out = moving_variance(x, w);
  for (double& v : out) v = std::sqrt(v);
  return out;
}

std::vector<double> abs_diff(const std::vector<double>& x) {
  std::vector<double> out(x.size(), 0.0);
  for (std::size_t i = 1; i < x.size(); ++i) {
    out[i] = std::abs(x[i] - x[i - 1]);
  }
  return out;
}

double goertzel_power(const std::vector<double>& x, double freq_hz,
                      double fs_hz) {
  if (x.empty() || fs_hz <= 0.0) return 0.0;
  const double omega = 2.0 * M_PI * freq_hz / fs_hz;
  const double coeff = 2.0 * std::cos(omega);
  double s0 = 0.0, s1 = 0.0, s2 = 0.0;
  for (const double v : x) {
    s0 = v + coeff * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  const double power =
      s1 * s1 + s2 * s2 - coeff * s1 * s2;
  return power / double(x.size() * x.size());
}

double dominant_frequency(const std::vector<double>& x, double fs_hz,
                          double f_lo, double f_hi, double step_hz) {
  if (x.empty()) return 0.0;
  // Remove the mean so the DC bin doesn't dominate.
  std::vector<double> centered = x;
  const double m = mean(x);
  for (double& v : centered) v -= m;

  double best_f = f_lo;
  double best_p = -1.0;
  for (double f = f_lo; f <= f_hi + 1e-9; f += step_hz) {
    const double p = goertzel_power(centered, f, fs_hz);
    if (p > best_p) {
      best_p = p;
      best_f = f;
    }
  }
  return best_f;
}

std::vector<std::size_t> find_peaks(const std::vector<double>& x,
                                    double threshold,
                                    std::size_t min_separation) {
  std::vector<std::size_t> peaks;
  for (std::size_t i = 1; i + 1 < x.size(); ++i) {
    if (x[i] < threshold) continue;
    if (x[i] < x[i - 1] || x[i] < x[i + 1]) continue;
    if (!peaks.empty() && i - peaks.back() < min_separation) {
      // Keep the taller of the contenders.
      if (x[i] > x[peaks.back()]) peaks.back() = i;
      continue;
    }
    peaks.push_back(i);
  }
  return peaks;
}

}  // namespace politewifi::sensing
