#include "sensing/activity.h"

#include <algorithm>
#include <cmath>

namespace politewifi::sensing {

const char* motion_class_name(MotionClass c) {
  switch (c) {
    case MotionClass::kStill: return "still";
    case MotionClass::kMinor: return "minor-motion";
    case MotionClass::kBursty: return "bursty-motion";
    case MotionClass::kMajor: return "major-motion";
  }
  return "?";
}

ActivityDetector::ActivityDetector(ActivityDetectorConfig config)
    : config_(config) {}

double ActivityDetector::noise_floor(
    const std::vector<double>& deviation) const {
  if (deviation.empty()) return 0.0;
  std::vector<double> sorted = deviation;
  std::sort(sorted.begin(), sorted.end());
  // Mean of the quietest decile: robust to any amount of motion as long
  // as the trace contains *some* quiet time.
  const std::size_t n = std::max<std::size_t>(1, sorted.size() / 10);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += sorted[i];
  const double floor = sum / double(n);
  return std::max(floor, 1e-9);
}

std::vector<MotionClass> ActivityDetector::classify_samples(
    const TimeSeries& amplitude) const {
  std::vector<MotionClass> out(amplitude.size(), MotionClass::kStill);
  if (amplitude.size() < 4 || amplitude.dt_s <= 0.0) return out;

  const int w =
      std::max(3, int(std::lround(config_.window_s / amplitude.dt_s)));
  const auto dev = moving_stddev(amplitude.v, w);
  const double floor = noise_floor(dev);
  const double minor = config_.minor_factor * floor;
  const double major = config_.major_factor * floor;

  // Burstiness over a longer horizon: duty cycle of above-minor samples.
  const int wide = 3 * w;
  std::vector<double> above(dev.size(), 0.0);
  for (std::size_t i = 0; i < dev.size(); ++i) {
    above[i] = dev[i] > minor ? 1.0 : 0.0;
  }
  const auto duty = moving_average(above, wide);

  for (std::size_t i = 0; i < dev.size(); ++i) {
    if (dev[i] > major) {
      out[i] = MotionClass::kMajor;
    } else if (dev[i] > minor) {
      out[i] = duty[i] <= config_.bursty_duty_max ? MotionClass::kBursty
                                                  : MotionClass::kMinor;
    } else {
      out[i] = MotionClass::kStill;
    }
  }
  return out;
}

std::vector<Segment> ActivityDetector::segment(
    const TimeSeries& amplitude) const {
  std::vector<Segment> segments;
  const auto labels = classify_samples(amplitude);
  if (labels.empty()) return segments;

  // Run-length encode.
  Segment current{labels.front(), amplitude.time_of(0), amplitude.time_of(0)};
  for (std::size_t i = 1; i < labels.size(); ++i) {
    if (labels[i] != current.cls) {
      current.end_s = amplitude.time_of(i);
      segments.push_back(current);
      current = Segment{labels[i], amplitude.time_of(i), amplitude.time_of(i)};
    }
  }
  current.end_s = amplitude.time_of(labels.size() - 1) + amplitude.dt_s;
  segments.push_back(current);

  // Merge runs shorter than min_segment_s into their predecessor.
  std::vector<Segment> merged;
  for (const auto& s : segments) {
    if (!merged.empty() && s.end_s - s.start_s < config_.min_segment_s) {
      merged.back().end_s = s.end_s;
    } else if (!merged.empty() && merged.back().cls == s.cls) {
      merged.back().end_s = s.end_s;
    } else {
      merged.push_back(s);
    }
  }
  return merged;
}

std::vector<double> ActivityDetector::motion_events(
    const TimeSeries& amplitude) const {
  std::vector<double> events;
  if (amplitude.size() < 4 || amplitude.dt_s <= 0.0) return events;
  const int w =
      std::max(3, int(std::lround(config_.window_s / amplitude.dt_s)));
  const auto dev = moving_stddev(amplitude.v, w);
  const double threshold = config_.major_factor * noise_floor(dev);

  bool in_event = false;
  for (std::size_t i = 0; i < dev.size(); ++i) {
    if (!in_event && dev[i] > threshold) {
      events.push_back(amplitude.time_of(i));
      in_event = true;
    } else if (in_event && dev[i] < 0.5 * threshold) {
      in_event = false;
    }
  }
  return events;
}

}  // namespace politewifi::sensing

namespace politewifi::sensing {

common::Json Segment::to_json() const {
  common::Json j;
  j["class"] = motion_class_name(cls);
  j["start_s"] = start_s;
  j["end_s"] = end_s;
  return j;
}

}  // namespace politewifi::sensing
