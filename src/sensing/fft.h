// Radix-2 FFT and the short-time Fourier transform (spectrogram).
//
// The WiFi-sensing literature the paper builds on (gesture recognition
// [28, 30], respiration [18, 26]) works in the time-frequency domain;
// this is the from-scratch machinery for it.
#pragma once

#include <complex>
#include <vector>

namespace politewifi::sensing {

/// In-place iterative radix-2 Cooley-Tukey FFT. `x.size()` must be a
/// power of two. Set `inverse` for the (normalized) inverse transform.
void fft(std::vector<std::complex<double>>& x, bool inverse = false);

/// Real-input convenience: zero-pads to the next power of two and
/// returns the one-sided magnitude spectrum (size n/2+1).
std::vector<double> magnitude_spectrum(const std::vector<double>& x);

/// Frequency of bin `k` for a length-`n` transform at sample rate `fs`.
inline double bin_frequency(std::size_t k, std::size_t n, double fs) {
  return double(k) * fs / double(n);
}

/// Short-time Fourier transform magnitude.
struct Spectrogram {
  /// frames[t][k] = |X_t(k)|, one-sided.
  std::vector<std::vector<double>> frames;
  double frame_interval_s = 0.0;  // hop / fs
  double bin_hz = 0.0;            // fs / nfft

  std::size_t num_frames() const { return frames.size(); }
  std::size_t num_bins() const {
    return frames.empty() ? 0 : frames.front().size();
  }

  /// Total power in [f_lo, f_hi] per frame — a motion-energy series.
  std::vector<double> band_energy(double f_lo, double f_hi) const;
};

/// Computes an STFT with a Hann window. `window` must be a power of two;
/// `hop` <= window. The mean of each window is removed first (CSI
/// amplitude has a large DC term that would otherwise swamp everything).
Spectrogram stft(const std::vector<double>& x, double fs, std::size_t window,
                 std::size_t hop);

}  // namespace politewifi::sensing
