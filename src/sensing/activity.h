// Activity segmentation — the Figure 5 analysis.
//
// The paper's observation: on a quiet channel the CSI amplitude of a
// still device is "very stable"; picking the device up produces "large
// fluctuations"; holding and typing produce "very distinct" patterns.
// We operationalize that with windowed deviation thresholds (relative to
// a robust noise floor) and classify each window into still / minor
// motion (hold) / bursty motion (typing) / major motion (pickup).
#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "sensing/features.h"
#include "sensing/filters.h"

namespace politewifi::sensing {

enum class MotionClass : std::uint8_t {
  kStill,       // deviation at the noise floor
  kMinor,       // small sustained motion (holding)
  kBursty,      // intermittent cm-scale events (typing)
  kMajor,       // large sweeps (pickup, walking)
};

const char* motion_class_name(MotionClass c);

struct Segment {
  MotionClass cls = MotionClass::kStill;
  double start_s = 0.0;
  double end_s = 0.0;

  common::Json to_json() const;
};

struct ActivityDetectorConfig {
  /// Window for the deviation feature, seconds.
  double window_s = 0.8;
  /// Thresholds as multiples of the still-noise deviation floor.
  double minor_factor = 3.0;
  double major_factor = 20.0;
  /// Burstiness: fraction of sub-windows above the minor threshold that
  /// still counts as intermittent rather than sustained.
  double bursty_duty_max = 0.65;
  /// Minimum segment length, seconds (shorter runs are merged).
  double min_segment_s = 1.0;
};

class ActivityDetector {
 public:
  explicit ActivityDetector(ActivityDetectorConfig config);
  ActivityDetector() : ActivityDetector(ActivityDetectorConfig{}) {}

  /// Segments an amplitude series. The noise floor is estimated from the
  /// quietest decile of windowed deviations, so no calibration pass is
  /// needed.
  std::vector<Segment> segment(const TimeSeries& amplitude) const;

  /// Per-sample class labels (same length as input).
  std::vector<MotionClass> classify_samples(const TimeSeries& amplitude) const;

  /// Motion events: times where the deviation crosses the major
  /// threshold — the paper's "sharp changes at times 9 and 32" (§4.3).
  std::vector<double> motion_events(const TimeSeries& amplitude) const;

 private:
  double noise_floor(const std::vector<double>& deviation) const;

  ActivityDetectorConfig config_;
};

}  // namespace politewifi::sensing
