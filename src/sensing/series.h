// Uniformly-sampled time series and resampling from CSI observations.
//
// ACK-elicited CSI arrives slightly irregularly (DCF jitter, losses);
// every downstream algorithm wants a uniform grid. Resampling is
// zero-order-hold at a configurable rate.
#pragma once

#include <cstddef>
#include <vector>

#include "phy/csi.h"

namespace politewifi::sensing {

struct TimeSeries {
  double t0_s = 0.0;  // time of the first sample
  double dt_s = 0.0;  // sample spacing
  std::vector<double> v;

  std::size_t size() const { return v.size(); }
  double time_of(std::size_t i) const { return t0_s + dt_s * double(i); }
  double duration_s() const { return dt_s * double(v.size()); }
  bool empty() const { return v.empty(); }
};

/// Resamples one subcarrier's CSI amplitude onto a uniform grid at
/// `rate_hz` (zero-order hold; gaps are bridged by the previous value).
TimeSeries resample_amplitude(const std::vector<phy::CsiSample>& samples,
                              int subcarrier, double rate_hz);

/// Mean amplitude across all subcarriers, resampled the same way.
TimeSeries resample_mean_amplitude(
    const std::vector<phy::CsiSample>& samples, double rate_hz);

/// The subcarrier whose amplitude varies the most over the capture — the
/// standard sensing trick: multipath geometry makes some subcarriers sit
/// at insensitive points of the phasor sum, so pick the most responsive
/// one. Returns 0 when samples are empty.
int select_best_subcarrier(const std::vector<phy::CsiSample>& samples);

/// Basic statistics used all over the pipeline.
double mean(const std::vector<double>& v);
double variance(const std::vector<double>& v);
double stddev(const std::vector<double>& v);
double median(std::vector<double> v);  // by-value: it sorts
double median_absolute_deviation(const std::vector<double>& v);

}  // namespace politewifi::sensing
