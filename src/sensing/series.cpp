#include "sensing/series.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace politewifi::sensing {

namespace {

TimeSeries resample(const std::vector<phy::CsiSample>& samples,
                    double rate_hz,
                    const std::function<double(const phy::CsiSample&)>& f) {
  TimeSeries out;
  if (samples.empty() || rate_hz <= 0.0) return out;
  out.dt_s = 1.0 / rate_hz;
  out.t0_s = to_seconds(samples.front().time.time_since_epoch());
  const double t_end = to_seconds(samples.back().time.time_since_epoch());
  const std::size_t n =
      static_cast<std::size_t>((t_end - out.t0_s) * rate_hz) + 1;
  out.v.reserve(n);

  std::size_t src = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = out.t0_s + out.dt_s * double(i);
    while (src + 1 < samples.size() &&
           to_seconds(samples[src + 1].time.time_since_epoch()) <= t) {
      ++src;
    }
    out.v.push_back(f(samples[src]));
  }
  return out;
}

}  // namespace

TimeSeries resample_amplitude(const std::vector<phy::CsiSample>& samples,
                              int subcarrier, double rate_hz) {
  return resample(samples, rate_hz, [subcarrier](const phy::CsiSample& s) {
    return s.csi.amplitude(subcarrier);
  });
}

TimeSeries resample_mean_amplitude(
    const std::vector<phy::CsiSample>& samples, double rate_hz) {
  return resample(samples, rate_hz, [](const phy::CsiSample& s) {
    return s.csi.mean_amplitude();
  });
}

int select_best_subcarrier(const std::vector<phy::CsiSample>& samples) {
  if (samples.empty()) return 0;
  const int n = int(samples.front().csi.h.size());
  int best = 0;
  double best_var = -1.0;
  std::vector<double> amps;
  amps.reserve(samples.size());
  for (int k = 0; k < n; ++k) {
    amps.clear();
    for (const auto& s : samples) amps.push_back(s.csi.amplitude(k));
    const double var = variance(amps);
    if (var > best_var) {
      best_var = var;
      best = k;
    }
  }
  return best;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (const double x : v) s += x;
  return s / double(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (const double x : v) s += (x - m) * (x - m);
  return s / double(v.size() - 1);
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + mid - 1, v.end());
  return 0.5 * (hi + v[mid - 1]);
}

double median_absolute_deviation(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const double med = median(v);
  std::vector<double> dev;
  dev.reserve(v.size());
  for (const double x : v) dev.push_back(std::abs(x - med));
  return median(std::move(dev));
}

}  // namespace politewifi::sensing
