// Dynamic Time Warping — template matching for gesture/keystroke shapes.
//
// The recent-work systems the paper cites (WiKey, WindTalker) classify
// keystrokes by DTW distance between a waveform and per-key templates;
// we provide the same primitive with a Sakoe-Chiba band.
#pragma once

#include <limits>
#include <vector>

namespace politewifi::sensing {

/// DTW distance between two series with a warping band of `band` samples
/// (band <= 0 means unconstrained). Euclidean point cost.
///
/// `abandon_above` enables early abandoning: once every cell of a DP row
/// exceeds it, the final distance provably will too (cell costs are
/// non-negative, so path costs only grow), and infinity is returned
/// instead of finishing the matrix. Any result <= abandon_above is exact.
/// dtw_classify threads its best-so-far through this, which prunes most
/// of the work across a template library without changing the argmin.
double dtw_distance(const std::vector<double>& a,
                    const std::vector<double>& b, int band = 0,
                    double abandon_above =
                        std::numeric_limits<double>::infinity());

/// Index of the template with the smallest DTW distance to `query`
/// (-1 when `templates` is empty).
int dtw_classify(const std::vector<double>& query,
                 const std::vector<std::vector<double>>& templates,
                 int band = 0);

/// Z-score normalization (helper so magnitude differences don't dominate
/// shape matching).
std::vector<double> z_normalize(const std::vector<double>& x);

}  // namespace politewifi::sensing
