// Dynamic Time Warping — template matching for gesture/keystroke shapes.
//
// The recent-work systems the paper cites (WiKey, WindTalker) classify
// keystrokes by DTW distance between a waveform and per-key templates;
// we provide the same primitive with a Sakoe-Chiba band.
#pragma once

#include <vector>

namespace politewifi::sensing {

/// DTW distance between two series with a warping band of `band` samples
/// (band <= 0 means unconstrained). Euclidean point cost.
double dtw_distance(const std::vector<double>& a,
                    const std::vector<double>& b, int band = 0);

/// Index of the template with the smallest DTW distance to `query`
/// (-1 when `templates` is empty).
int dtw_classify(const std::vector<double>& query,
                 const std::vector<std::vector<double>>& templates,
                 int band = 0);

/// Z-score normalization (helper so magnitude differences don't dominate
/// shape matching).
std::vector<double> z_normalize(const std::vector<double>& x);

}  // namespace politewifi::sensing
