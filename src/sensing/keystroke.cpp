#include "sensing/keystroke.h"

#include <algorithm>
#include <cmath>

#include "sensing/filters.h"

namespace politewifi::sensing {

KeystrokeDetector::KeystrokeDetector(KeystrokeDetectorConfig config)
    : config_(config) {}

std::vector<KeystrokeEvent> KeystrokeDetector::detect(
    const TimeSeries& amplitude) const {
  std::vector<KeystrokeEvent> events;
  if (amplitude.size() < 8 || amplitude.dt_s <= 0.0) return events;
  const double fs = 1.0 / amplitude.dt_s;

  // Denoise: outlier rejection + low-pass (keeps keystroke dynamics,
  // drops per-ACK estimation noise).
  auto clean = hampel_filter(amplitude.v, 7);
  if (config_.lowpass_hz < fs / 2.0) {
    clean = butterworth_filtfilt(clean, config_.lowpass_hz, fs);
  }

  const int w = std::max(3, int(std::lround(config_.window_s / amplitude.dt_s)));
  // Smooth the deviation envelope so the two slopes of one keystroke bump
  // merge into a single peak centred on the stroke.
  const auto dev = moving_average(moving_stddev(clean, w), w);

  // Noise floor: quietest decile of deviations.
  std::vector<double> sorted = dev;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t tenth = std::max<std::size_t>(1, sorted.size() / 10);
  double floor = 0.0;
  for (std::size_t i = 0; i < tenth; ++i) floor += sorted[i];
  floor = std::max(floor / double(tenth), 1e-9);

  double max_dev = 0.0;
  for (const double d : dev) max_dev = std::max(max_dev, d);
  const double threshold = std::max(config_.threshold_factor * floor,
                                    config_.peak_fraction * max_dev);
  const auto min_sep = static_cast<std::size_t>(
      std::max(1.0, config_.min_separation_s / amplitude.dt_s));
  const auto peaks = find_peaks(dev, threshold, min_sep);

  // Magnitude -> row template. Normalize by the largest detected peak so
  // the mapping is scene-gain independent, then split into quartiles
  // aligned with the relative depths in scenario::keystroke_depth_m
  // (home < bottom < top < numbers < space).
  double max_mag = 0.0;
  for (const auto p : peaks) max_mag = std::max(max_mag, dev[p]);

  for (const auto p : peaks) {
    KeystrokeEvent e;
    e.time_s = amplitude.time_of(p);
    e.magnitude = dev[p];
    const double rel = max_mag > 0.0 ? dev[p] / max_mag : 0.0;
    if (rel > 0.92) {
      e.estimated_row = 0;  // space (largest motion)
    } else if (rel > 0.75) {
      e.estimated_row = 4;  // number row
    } else if (rel > 0.60) {
      e.estimated_row = 3;  // top row
    } else if (rel > 0.45) {
      e.estimated_row = 1;  // bottom row
    } else {
      e.estimated_row = 2;  // home row
    }
    events.push_back(e);
  }
  return events;
}

double KeystrokeDetector::typing_rate(
    const std::vector<KeystrokeEvent>& events) {
  if (events.size() < 2) return 0.0;
  const double span = events.back().time_s - events.front().time_s;
  return span <= 0.0 ? 0.0 : double(events.size() - 1) / span;
}

KeystrokeMatchScore match_keystrokes(const std::vector<KeystrokeEvent>& events,
                                     const std::vector<double>& truth_times_s,
                                     double tolerance_s) {
  KeystrokeMatchScore score;
  std::vector<bool> used(truth_times_s.size(), false);
  for (const auto& e : events) {
    bool matched = false;
    for (std::size_t i = 0; i < truth_times_s.size(); ++i) {
      if (!used[i] && std::abs(truth_times_s[i] - e.time_s) <= tolerance_s) {
        used[i] = true;
        matched = true;
        break;
      }
    }
    if (matched) {
      ++score.true_positives;
    } else {
      ++score.false_positives;
    }
  }
  for (const bool u : used) {
    if (!u) ++score.misses;
  }
  return score;
}

}  // namespace politewifi::sensing

namespace politewifi::sensing {

common::Json KeystrokeEvent::to_json() const {
  common::Json j;
  j["time_s"] = time_s;
  j["magnitude"] = magnitude;
  j["estimated_row"] = estimated_row;
  return j;
}

common::Json KeystrokeMatchScore::to_json() const {
  common::Json j;
  j["true_positives"] = true_positives;
  j["false_positives"] = false_positives;
  j["misses"] = misses;
  j["precision"] = precision();
  j["recall"] = recall();
  j["f1"] = f1();
  return j;
}

}  // namespace politewifi::sensing
