// Denoising filters for CSI amplitude streams.
//
// The standard WiFi-sensing preprocessing chain: Hampel to kill CSI
// outlier spikes, a moving average or Butterworth low-pass to suppress
// estimation noise while keeping motion dynamics, and a median filter as
// a robust alternative.
#pragma once

#include <vector>

namespace politewifi::sensing {

/// Centered moving average with window `w` (odd preferred; edges shrink).
std::vector<double> moving_average(const std::vector<double>& x, int w);

/// Centered moving median with window `w`.
std::vector<double> median_filter(const std::vector<double>& x, int w);

/// Hampel outlier rejection: a sample farther than `n_sigmas` scaled MADs
/// from the window median is replaced by that median.
std::vector<double> hampel_filter(const std::vector<double>& x, int w,
                                  double n_sigmas = 3.0);

/// 2nd-order Butterworth low-pass (bilinear transform), applied
/// forward-only. `cutoff_hz` must be < `fs_hz` / 2.
class ButterworthLowPass {
 public:
  ButterworthLowPass(double cutoff_hz, double fs_hz);

  double step(double x);
  void reset();

  std::vector<double> apply(const std::vector<double>& x);

  // Exposed for verification against reference designs.
  double b0() const { return b0_; }
  double b1() const { return b1_; }
  double b2() const { return b2_; }
  double a1() const { return a1_; }
  double a2() const { return a2_; }

 private:
  double b0_, b1_, b2_, a1_, a2_;
  double x1_ = 0.0, x2_ = 0.0, y1_ = 0.0, y2_ = 0.0;
};

/// Forward-backward (zero-phase) Butterworth application.
std::vector<double> butterworth_filtfilt(const std::vector<double>& x,
                                         double cutoff_hz, double fs_hz);

}  // namespace politewifi::sensing
