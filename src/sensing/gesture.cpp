#include "sensing/gesture.h"

#include <algorithm>
#include <cmath>

#include "sensing/filters.h"

namespace politewifi::sensing {

const char* gesture_name(Gesture g) {
  switch (g) {
    case Gesture::kPush: return "push";
    case Gesture::kWave: return "wave";
    case Gesture::kNone: return "none";
  }
  return "?";
}

GestureClassifier::GestureClassifier(GestureClassifierConfig config)
    : config_(config) {}

std::vector<double> GestureClassifier::make_template(Gesture g,
                                                     double fs) const {
  std::vector<double> t;
  switch (g) {
    case Gesture::kPush: {
      // A push sweeps the path monotonically out and back: the motion
      // *rate* (which drives CSI churn) peaks twice — once going out,
      // once coming back — with a lull at the turnaround.
      const std::size_t n = std::size_t(config_.push_duration_s * fs);
      for (std::size_t i = 0; i < n; ++i) {
        const double p = double(i) / double(n);  // 0..1 through the push
        t.push_back(std::abs(std::cos(M_PI * p)) * std::sin(M_PI * p));
      }
      break;
    }
    case Gesture::kWave: {
      // Waving keeps the hand in continuous oscillation: sustained
      // high churn modulated at twice the wave rate.
      const std::size_t n = std::size_t(config_.wave_duration_s * fs);
      for (std::size_t i = 0; i < n; ++i) {
        const double tt = double(i) / fs;
        const double p = double(i) / double(n);
        const double soft = std::sin(M_PI * p);
        t.push_back(soft *
                    std::abs(std::cos(2.0 * M_PI * config_.wave_hz * tt)));
      }
      break;
    }
    case Gesture::kNone:
      break;
  }
  // The measured envelope is a moving deviation over envelope_window_s;
  // smooth the ideal rate curve identically so like compares with like.
  const int w = std::max(1, int(std::lround(config_.envelope_window_s * fs)));
  return z_normalize(moving_average(t, w));
}

std::vector<double> GestureClassifier::envelope(
    const TimeSeries& amplitude) const {
  const int w = std::max(
      3, int(std::lround(config_.envelope_window_s / amplitude.dt_s)));
  auto clean = hampel_filter(amplitude.v, 7);
  // Motion energy: windowed deviation of the amplitude.
  return moving_stddev(clean, w);
}

Gesture GestureClassifier::classify(const TimeSeries& amplitude) const {
  if (amplitude.size() < 16 || amplitude.dt_s <= 0.0) return Gesture::kNone;
  if (amplitude.duration_s() < config_.min_duration_s ||
      amplitude.duration_s() > config_.max_duration_s) {
    return Gesture::kNone;
  }

  // The physically robust discriminant: a push has a pronounced
  // mid-gesture lull (the hand reverses once, pausing for hundreds of
  // milliseconds), while a wave keeps the hand in motion — its
  // stroke-extreme dips last only tens of milliseconds and vanish under
  // modest smoothing.
  const auto env = envelope(amplitude);
  const int smooth_w = std::max(
      3, int(std::lround(config_.smooth_window_s / amplitude.dt_s)));
  const auto smooth = moving_average(env, smooth_w);

  double peak = 0.0;
  for (const double v : smooth) peak = std::max(peak, v);
  if (peak <= 0.0) return Gesture::kNone;

  const std::size_t lo = smooth.size() / 4;
  const std::size_t hi = (3 * smooth.size()) / 4;
  double valley = peak;
  for (std::size_t i = lo; i < hi; ++i) valley = std::min(valley, smooth[i]);

  return valley / peak < config_.valley_threshold ? Gesture::kPush
                                                  : Gesture::kWave;
}

std::vector<GestureClassifier::Detection> GestureClassifier::detect(
    const TimeSeries& amplitude) const {
  std::vector<Detection> out;
  if (amplitude.size() < 16 || amplitude.dt_s <= 0.0) return out;

  // Motion bursts: envelope above a noise-floor multiple.
  const auto env = envelope(amplitude);
  std::vector<double> sorted = env;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t tenth = std::max<std::size_t>(1, sorted.size() / 10);
  double floor = 0.0;
  for (std::size_t i = 0; i < tenth; ++i) floor += sorted[i];
  floor = std::max(floor / double(tenth), 1e-9);
  const double threshold = 4.0 * floor;

  const auto gap_samples =
      std::size_t(std::max(1.0, 0.4 / amplitude.dt_s));  // 400 ms merge gap
  std::size_t burst_start = 0;
  bool in_burst = false;
  std::size_t last_above = 0;
  for (std::size_t i = 0; i <= env.size(); ++i) {
    const bool above = i < env.size() && env[i] > threshold;
    if (above) {
      if (!in_burst) {
        in_burst = true;
        burst_start = i;
      }
      last_above = i;
    } else if (in_burst && (i == env.size() || i - last_above > gap_samples)) {
      in_burst = false;
      // Classify the burst window (with a little context).
      const std::size_t pad = gap_samples / 2;
      const std::size_t lo = burst_start > pad ? burst_start - pad : 0;
      const std::size_t hi = std::min(env.size(), last_above + pad);
      TimeSeries window;
      window.dt_s = amplitude.dt_s;
      window.t0_s = amplitude.time_of(lo);
      window.v.assign(amplitude.v.begin() + long(lo),
                      amplitude.v.begin() + long(hi));
      out.push_back(Detection{classify(window), amplitude.time_of(lo),
                              amplitude.time_of(hi)});
    }
  }
  return out;
}

}  // namespace politewifi::sensing
