// Gesture recognition from ACK CSI — the use case the paper cites from
// [28] (AirMouse) and [30] (Widar-class systems), rebuilt on the
// Polite WiFi front-end: the attacker/sensor needs no cooperation from
// the device it senses off.
//
// Classification is template matching: each gesture has a canonical
// motion-energy envelope (a push is one hump; a wave is an oscillation
// burst), and captured windows are compared by DTW after z-normalization
// — the standard approach of the cited systems.
#pragma once

#include <string>
#include <vector>

#include "sensing/dtw.h"
#include "sensing/features.h"

namespace politewifi::sensing {

enum class Gesture : std::uint8_t {
  kPush,  // single out-and-back motion
  kWave,  // oscillatory hand wave
  kNone,  // no confident match
};

const char* gesture_name(Gesture g);

struct GestureClassifierConfig {
  /// Envelope feature window (seconds). Must stay well under the wave
  /// stroke period (~0.25 s at 2 Hz) or the lobes that distinguish a
  /// wave from a push are averaged away.
  double envelope_window_s = 0.08;
  /// DTW warping band as a fraction of template length. Keep modest: an
  /// unconstrained warp can fold a wave's lobes onto a push's two humps.
  double dtw_band_fraction = 0.12;
  /// A match must beat the runner-up by this distance ratio, or kNone.
  double decision_margin = 1.15;
  /// Envelope smoothing before the valley test (seconds): long enough to
  /// erase a wave's ~30 ms stroke-extreme dips, short enough to keep a
  /// push's ~400 ms turnaround lull.
  double smooth_window_s = 0.25;
  /// Mid-gesture valley depth (min/max of the smoothed envelope) below
  /// which the gesture reads as a push.
  double valley_threshold = 0.35;
  /// Plausible gesture durations; outside -> kNone.
  double min_duration_s = 0.5;
  double max_duration_s = 3.5;
  /// Expected gesture duration used for the canonical templates (s).
  double push_duration_s = 1.2;
  double wave_duration_s = 1.5;
  double wave_hz = 2.0;
};

class GestureClassifier {
 public:
  explicit GestureClassifier(GestureClassifierConfig config);
  GestureClassifier() : GestureClassifier(GestureClassifierConfig{}) {}

  /// Classifies one captured window of CSI amplitude (the gesture should
  /// roughly fill it).
  Gesture classify(const TimeSeries& amplitude) const;

  /// Segments a longer trace into candidate gesture windows (motion
  /// bursts) and classifies each.
  struct Detection {
    Gesture gesture = Gesture::kNone;
    double start_s = 0.0;
    double end_s = 0.0;
  };
  std::vector<Detection> detect(const TimeSeries& amplitude) const;

  /// The canonical envelope template for a gesture at `fs` Hz (exposed
  /// for tests).
  std::vector<double> make_template(Gesture g, double fs) const;

 private:
  std::vector<double> envelope(const TimeSeries& amplitude) const;

  GestureClassifierConfig config_;
};

}  // namespace politewifi::sensing
