// Feature extraction over amplitude series.
#pragma once

#include <vector>

#include "sensing/series.h"

namespace politewifi::sensing {

/// Sliding-window sample variance (window `w`, same length as input;
/// edge windows shrink).
std::vector<double> moving_variance(const std::vector<double>& x, int w);

/// Sliding-window standard deviation.
std::vector<double> moving_stddev(const std::vector<double>& x, int w);

/// First difference |x[i] - x[i-1]| (out[0] = 0): motion energy proxy.
std::vector<double> abs_diff(const std::vector<double>& x);

/// Goertzel single-bin DFT power at `freq_hz` for a series sampled at
/// `fs_hz`. The breathing estimator scans this across candidate rates.
double goertzel_power(const std::vector<double>& x, double freq_hz,
                      double fs_hz);

/// Frequency (Hz) of the strongest spectral component in
/// [f_lo, f_hi], scanned at `step_hz` resolution, after mean removal.
double dominant_frequency(const std::vector<double>& x, double fs_hz,
                          double f_lo, double f_hi, double step_hz = 0.01);

/// Simple peak picking: indices of local maxima above `threshold` with at
/// least `min_separation` samples between accepted peaks.
std::vector<std::size_t> find_peaks(const std::vector<double>& x,
                                    double threshold,
                                    std::size_t min_separation);

}  // namespace politewifi::sensing
