#include "sensing/fft.h"

#include <cmath>

#include "sensing/series.h"

namespace politewifi::sensing {

void fft(std::vector<std::complex<double>>& x, bool inverse) {
  const std::size_t n = x.size();
  if (n < 2) return;
  // n must be a power of two.
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / double(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = x[i + k];
        const std::complex<double> v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& v : x) v /= double(n);
  }
}

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::vector<double> magnitude_spectrum(const std::vector<double>& x) {
  if (x.empty()) return {};
  std::vector<std::complex<double>> buf(next_pow2(x.size()));
  for (std::size_t i = 0; i < x.size(); ++i) buf[i] = x[i];
  fft(buf);
  std::vector<double> mag(buf.size() / 2 + 1);
  for (std::size_t k = 0; k < mag.size(); ++k) mag[k] = std::abs(buf[k]);
  return mag;
}

std::vector<double> Spectrogram::band_energy(double f_lo, double f_hi) const {
  std::vector<double> out;
  out.reserve(frames.size());
  for (const auto& frame : frames) {
    double e = 0.0;
    for (std::size_t k = 0; k < frame.size(); ++k) {
      const double f = double(k) * bin_hz;
      if (f >= f_lo && f <= f_hi) e += frame[k] * frame[k];
    }
    out.push_back(e);
  }
  return out;
}

Spectrogram stft(const std::vector<double>& x, double fs, std::size_t window,
                 std::size_t hop) {
  Spectrogram spec;
  if (x.size() < window || window < 2 || hop == 0) return spec;
  spec.frame_interval_s = double(hop) / fs;
  spec.bin_hz = fs / double(window);

  // Hann window.
  std::vector<double> hann(window);
  for (std::size_t i = 0; i < window; ++i) {
    hann[i] = 0.5 * (1.0 - std::cos(2.0 * M_PI * double(i) /
                                    double(window - 1)));
  }

  std::vector<std::complex<double>> buf(window);
  for (std::size_t start = 0; start + window <= x.size(); start += hop) {
    double m = 0.0;
    for (std::size_t i = 0; i < window; ++i) m += x[start + i];
    m /= double(window);
    for (std::size_t i = 0; i < window; ++i) {
      buf[i] = (x[start + i] - m) * hann[i];
    }
    fft(buf);
    std::vector<double> mags(window / 2 + 1);
    for (std::size_t k = 0; k < mags.size(); ++k) mags[k] = std::abs(buf[k]);
    spec.frames.push_back(std::move(mags));
    std::fill(buf.begin(), buf.end(), std::complex<double>{});
  }
  return spec;
}

}  // namespace politewifi::sensing
