// Keystroke inference from ACK CSI (§4.1, WindTalker-style).
//
// Pipeline: denoise the amplitude stream, compute short-window deviation,
// pick peaks (keystroke events), then classify each event's magnitude
// against the row templates. We deliberately claim row-level (not
// key-level) recovery — consistent with what the physics gives a single
// 52-subcarrier receiver, and enough to demonstrate "passwords could be
// leaked" the way the paper argues.
#pragma once

#include <vector>

#include "common/json.h"
#include "sensing/activity.h"
#include "sensing/features.h"

namespace politewifi::sensing {

struct KeystrokeEvent {
  double time_s = 0.0;
  double magnitude = 0.0;  // peak deviation
  int estimated_row = 2;   // keyboard row estimate (0 space .. 4 numbers)

  common::Json to_json() const;
};

struct KeystrokeDetectorConfig {
  /// Deviation window (seconds): about one keystroke.
  double window_s = 0.20;
  /// Peak threshold as a multiple of the noise floor.
  double threshold_factor = 4.0;
  /// Peak threshold as a fraction of the largest deviation peak — kills
  /// noise peaklets once real keystrokes dominate the trace.
  double peak_fraction = 0.25;
  /// Minimum inter-keystroke separation, seconds.
  double min_separation_s = 0.12;
  /// Low-pass cutoff before detection (Hz).
  double lowpass_hz = 12.0;
};

class KeystrokeDetector {
 public:
  explicit KeystrokeDetector(KeystrokeDetectorConfig config);
  KeystrokeDetector() : KeystrokeDetector(KeystrokeDetectorConfig{}) {}

  /// Detects keystroke events in an amplitude series (ideally restricted
  /// to a typing segment found by ActivityDetector).
  std::vector<KeystrokeEvent> detect(const TimeSeries& amplitude) const;

  /// Estimated typing rate (keys/second) from detected events.
  static double typing_rate(const std::vector<KeystrokeEvent>& events);

 private:
  KeystrokeDetectorConfig config_;
};

/// Scoring helpers used by benches/tests against ground truth.
struct KeystrokeMatchScore {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t misses = 0;

  double precision() const {
    const auto d = true_positives + false_positives;
    return d == 0 ? 0.0 : double(true_positives) / double(d);
  }
  double recall() const {
    const auto d = true_positives + misses;
    return d == 0 ? 0.0 : double(true_positives) / double(d);
  }
  double f1() const {
    const double p = precision(), r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }

  common::Json to_json() const;
};

/// Matches detected events to ground-truth times with a tolerance.
KeystrokeMatchScore match_keystrokes(const std::vector<KeystrokeEvent>& events,
                                     const std::vector<double>& truth_times_s,
                                     double tolerance_s = 0.15);

}  // namespace politewifi::sensing
