#include "sensing/filters.h"

#include <algorithm>
#include <cmath>

#include "sensing/series.h"

namespace politewifi::sensing {

namespace {

/// Window bounds [lo, hi) for a centered window of width w at index i.
std::pair<std::size_t, std::size_t> window_bounds(std::size_t i,
                                                  std::size_t n, int w) {
  const int half = w / 2;
  const std::size_t lo = i >= std::size_t(half) ? i - half : 0;
  const std::size_t hi = std::min(n, i + std::size_t(half) + 1);
  return {lo, hi};
}

}  // namespace

std::vector<double> moving_average(const std::vector<double>& x, int w) {
  std::vector<double> out(x.size());
  if (x.empty() || w <= 1) return x;
  // Prefix sums for O(n).
  std::vector<double> prefix(x.size() + 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) prefix[i + 1] = prefix[i] + x[i];
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto [lo, hi] = window_bounds(i, x.size(), w);
    out[i] = (prefix[hi] - prefix[lo]) / double(hi - lo);
  }
  return out;
}

std::vector<double> median_filter(const std::vector<double>& x, int w) {
  if (x.empty() || w <= 1) return x;
  std::vector<double> out(x.size());
  std::vector<double> window;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto [lo, hi] = window_bounds(i, x.size(), w);
    window.assign(x.begin() + lo, x.begin() + hi);
    out[i] = median(std::move(window));
    window.clear();
  }
  return out;
}

std::vector<double> hampel_filter(const std::vector<double>& x, int w,
                                  double n_sigmas) {
  if (x.empty() || w <= 1) return x;
  constexpr double kMadToSigma = 1.4826;
  std::vector<double> out = x;
  std::vector<double> window;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto [lo, hi] = window_bounds(i, x.size(), w);
    window.assign(x.begin() + lo, x.begin() + hi);
    const double med = median(window);
    const double mad = median_absolute_deviation(window);
    const double threshold = n_sigmas * kMadToSigma * mad;
    if (mad > 0.0 && std::abs(x[i] - med) > threshold) out[i] = med;
  }
  return out;
}

ButterworthLowPass::ButterworthLowPass(double cutoff_hz, double fs_hz) {
  // Standard 2nd-order Butterworth via bilinear transform with
  // prewarping; Q = 1/sqrt(2).
  const double k = std::tan(M_PI * cutoff_hz / fs_hz);
  const double q = 1.0 / std::sqrt(2.0);
  const double norm = 1.0 / (1.0 + k / q + k * k);
  b0_ = k * k * norm;
  b1_ = 2.0 * b0_;
  b2_ = b0_;
  a1_ = 2.0 * (k * k - 1.0) * norm;
  a2_ = (1.0 - k / q + k * k) * norm;
}

double ButterworthLowPass::step(double x) {
  const double y = b0_ * x + b1_ * x1_ + b2_ * x2_ - a1_ * y1_ - a2_ * y2_;
  x2_ = x1_;
  x1_ = x;
  y2_ = y1_;
  y1_ = y;
  return y;
}

void ButterworthLowPass::reset() { x1_ = x2_ = y1_ = y2_ = 0.0; }

std::vector<double> ButterworthLowPass::apply(const std::vector<double>& x) {
  std::vector<double> out;
  out.reserve(x.size());
  // Prime the state with the first sample to suppress the startup edge.
  if (!x.empty()) {
    x1_ = x2_ = x.front();
    y1_ = y2_ = x.front();
  }
  for (const double v : x) out.push_back(step(v));
  return out;
}

std::vector<double> butterworth_filtfilt(const std::vector<double>& x,
                                         double cutoff_hz, double fs_hz) {
  ButterworthLowPass forward(cutoff_hz, fs_hz);
  std::vector<double> fwd = forward.apply(x);
  std::reverse(fwd.begin(), fwd.end());
  ButterworthLowPass backward(cutoff_hz, fs_hz);
  std::vector<double> bwd = backward.apply(fwd);
  std::reverse(bwd.begin(), bwd.end());
  return bwd;
}

}  // namespace politewifi::sensing
