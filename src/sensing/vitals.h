// Vital-sign and occupancy estimation from ACK CSI.
//
// §4 closes with open questions — "can an attacker detect occupancy?
// ... estimate vital signs such as ... breathing rate?" — and §4.3
// proposes single-device sensing as an opportunity. These estimators
// answer both with the machinery the rest of the library provides.
#pragma once

#include <optional>

#include "common/json.h"
#include "sensing/features.h"

namespace politewifi::sensing {

struct BreathingEstimate {
  double rate_bpm = 0.0;
  double confidence = 0.0;  // peak power / total band power, 0..1

  common::Json to_json() const;
};

struct BreathingEstimatorConfig {
  double min_bpm = 8.0;
  double max_bpm = 30.0;
  /// Spectral scan resolution in breaths/minute.
  double resolution_bpm = 0.25;
  /// Below this confidence the estimate is rejected (nobody breathing
  /// in range / too much motion).
  double min_confidence = 0.2;
};

/// Estimates breathing rate from a quiet amplitude trace (person present
/// but otherwise still). Returns nullopt when no credible periodicity is
/// found.
std::optional<BreathingEstimate> estimate_breathing(
    const TimeSeries& amplitude,
    const BreathingEstimatorConfig& config = BreathingEstimatorConfig{});

struct OccupancyConfig {
  /// Deviation multiple of the noise floor that indicates presence.
  double presence_factor = 2.5;
  /// Fraction of windows that must exceed it.
  double min_duty = 0.05;
  double window_s = 0.8;
};

/// True when the trace shows human-scale channel dynamics.
bool detect_occupancy(const TimeSeries& amplitude,
                      const OccupancyConfig& config = OccupancyConfig{});

}  // namespace politewifi::sensing
