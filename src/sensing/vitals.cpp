#include "sensing/vitals.h"

#include <algorithm>
#include <cmath>

#include "sensing/filters.h"

namespace politewifi::sensing {

std::optional<BreathingEstimate> estimate_breathing(
    const TimeSeries& amplitude, const BreathingEstimatorConfig& config) {
  if (amplitude.size() < 32 || amplitude.dt_s <= 0.0) return std::nullopt;
  const double fs = 1.0 / amplitude.dt_s;

  // Clean and detrend: breathing lives well below 1 Hz.
  auto clean = hampel_filter(amplitude.v, 9);
  if (1.0 < fs / 2.0) clean = butterworth_filtfilt(clean, 1.0, fs);
  const double m = mean(clean);
  for (double& v : clean) v -= m;

  const double f_lo = config.min_bpm / 60.0;
  const double f_hi = config.max_bpm / 60.0;
  const double step = config.resolution_bpm / 60.0;

  double total_power = 0.0;
  double best_power = -1.0;
  double best_f = f_lo;
  for (double f = f_lo; f <= f_hi + 1e-12; f += step) {
    const double p = goertzel_power(clean, f, fs);
    total_power += p;
    if (p > best_power) {
      best_power = p;
      best_f = f;
    }
  }
  if (total_power <= 0.0) return std::nullopt;

  BreathingEstimate est;
  est.rate_bpm = best_f * 60.0;
  // Peak sharpness: power in the winning bin and its neighbours over the
  // whole band.
  const double neighbours =
      goertzel_power(clean, std::max(best_f - step, f_lo), fs) +
      goertzel_power(clean, std::min(best_f + step, f_hi), fs);
  est.confidence = std::min(1.0, (best_power + neighbours) / total_power);
  if (est.confidence < config.min_confidence) return std::nullopt;
  return est;
}

bool detect_occupancy(const TimeSeries& amplitude,
                      const OccupancyConfig& config) {
  if (amplitude.size() < 8 || amplitude.dt_s <= 0.0) return false;
  const int w = std::max(3, int(std::lround(config.window_s / amplitude.dt_s)));
  const auto dev = moving_stddev(amplitude.v, w);

  std::vector<double> sorted = dev;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t tenth = std::max<std::size_t>(1, sorted.size() / 10);
  double floor = 0.0;
  for (std::size_t i = 0; i < tenth; ++i) floor += sorted[i];
  floor = std::max(floor / double(tenth), 1e-9);

  std::size_t above = 0;
  for (const double d : dev) {
    if (d > config.presence_factor * floor) ++above;
  }
  return double(above) / double(dev.size()) >= config.min_duty;
}

}  // namespace politewifi::sensing

namespace politewifi::sensing {

common::Json BreathingEstimate::to_json() const {
  common::Json j;
  j["rate_bpm"] = rate_bpm;
  j["confidence"] = confidence;
  return j;
}

}  // namespace politewifi::sensing
