#include "sensing/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sensing/series.h"

namespace politewifi::sensing {

double dtw_distance(const std::vector<double>& a,
                    const std::vector<double>& b, int band,
                    double abandon_above) {
  const std::size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return std::numeric_limits<double>::infinity();

  const double inf = std::numeric_limits<double>::infinity();
  // Two-row dynamic program.
  std::vector<double> prev(m + 1, inf), curr(m + 1, inf);
  prev[0] = 0.0;

  const int effective_band =
      band <= 0 ? int(std::max(n, m)) : std::max(band, int(std::max(n, m)) -
                                                            int(std::min(n, m)));
  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), inf);
    const std::size_t j_lo =
        i > std::size_t(effective_band) ? i - effective_band : 1;
    const std::size_t j_hi = std::min(m, i + std::size_t(effective_band));
    double row_min = inf;
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = std::abs(a[i - 1] - b[j - 1]);
      curr[j] = cost + std::min({prev[j], curr[j - 1], prev[j - 1]});
      row_min = std::min(row_min, curr[j]);
    }
    // Early abandon: every warping path through row i costs at least
    // row_min, and per-cell costs are non-negative, so the final distance
    // is >= row_min > abandon_above — this template can't win.
    if (row_min > abandon_above) return inf;
    std::swap(prev, curr);
  }
  return prev[m];
}

int dtw_classify(const std::vector<double>& query,
                 const std::vector<std::vector<double>>& templates,
                 int band) {
  int best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < templates.size(); ++i) {
    // The running best is the abandon threshold: a template whose DP row
    // ever exceeds it returns inf and cannot displace the argmin.
    const double d = dtw_distance(query, templates[i], band, best_d);
    if (d < best_d) {
      best_d = d;
      best = int(i);
    }
  }
  return best;
}

std::vector<double> z_normalize(const std::vector<double>& x) {
  const double m = mean(x);
  const double s = stddev(x);
  std::vector<double> out;
  out.reserve(x.size());
  for (const double v : x) {
    out.push_back(s > 0.0 ? (v - m) / s : 0.0);
  }
  return out;
}

}  // namespace politewifi::sensing
