#include "common/check.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace politewifi::contract {

namespace {

FailureHandler g_handler = nullptr;

}  // namespace

FailureHandler set_failure_handler(FailureHandler handler) {
  FailureHandler previous = g_handler;
  g_handler = handler;
  return previous;
}

void fail(const char* file, int line, const char* macro,
          const char* expression, const char* fmt, ...) {
  // Strip the build-tree prefix so messages are stable across checkouts.
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  char detail[512];
  detail[0] = '\0';
  if (fmt != nullptr) {
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(detail, sizeof detail, fmt, args);
    va_end(args);
  }
  char message[768];
  std::snprintf(message, sizeof message, "%s:%d: %s(%s) failed%s%s", basename,
                line, macro, expression, detail[0] != '\0' ? ": " : "",
                detail);
  if (g_handler != nullptr) {
    g_handler(message);  // may throw (test handlers) or not return
  }
  // Default (or a handler that returned): report on stderr — where death
  // tests and CI logs look — and abort so the failure is never swallowed.
  std::fprintf(stderr, "%s\n", message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace politewifi::contract
