// Little-endian byte serialization used by the 802.11 frame codec.
//
// 802.11 multi-octet header fields are transmitted least-significant octet
// first (IEEE 802.11-2016 §9.2.2), so the writer/reader default to
// little-endian accessors; big-endian helpers exist for the few network
// payloads that need them.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace politewifi {

using Bytes = std::vector<std::uint8_t>;

/// Thrown by ByteReader when a read runs past the end of the buffer —
/// i.e. a truncated or malformed frame.
class BufferUnderflow : public std::runtime_error {
 public:
  explicit BufferUnderflow(const std::string& what)
      : std::runtime_error(what) {}
};

/// Appends integers and byte ranges to a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }
  /// Adopts an existing buffer, reusing its capacity (the pooled-PPDU
  /// serialization path); the previous contents are discarded.
  explicit ByteWriter(Bytes&& adopt) : buf_(std::move(adopt)) { buf_.clear(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16le(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32le(std::uint32_t v) {
    u16le(static_cast<std::uint16_t>(v));
    u16le(static_cast<std::uint16_t>(v >> 16));
  }

  void u64le(std::uint64_t v) {
    u32le(static_cast<std::uint32_t>(v));
    u32le(static_cast<std::uint32_t>(v >> 32));
  }

  void u16be(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32be(std::uint32_t v) {
    u16be(static_cast<std::uint16_t>(v >> 16));
    u16be(static_cast<std::uint16_t>(v));
  }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  std::size_t size() const { return buf_.size(); }

  /// Overwrites previously written bytes (e.g. to patch a length field).
  void patch_u16le(std::size_t offset, std::uint16_t v) {
    buf_.at(offset) = static_cast<std::uint8_t>(v);
    buf_.at(offset + 1) = static_cast<std::uint8_t>(v >> 8);
  }

  const Bytes& view() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Consumes integers and byte ranges from a fixed buffer; throws
/// BufferUnderflow on truncation.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }

  std::uint16_t u16le() {
    auto b = take(2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }

  std::uint32_t u32le() {
    auto b = take(4);
    return static_cast<std::uint32_t>(b[0]) |
           (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) |
           (static_cast<std::uint32_t>(b[3]) << 24);
  }

  std::uint64_t u64le() {
    const std::uint64_t lo = u32le();
    const std::uint64_t hi = u32le();
    return lo | (hi << 32);
  }

  std::uint16_t u16be() {
    auto b = take(2);
    return static_cast<std::uint16_t>((b[0] << 8) | b[1]);
  }

  std::span<const std::uint8_t> bytes(std::size_t n) { return take(n); }

  /// Everything not yet consumed.
  std::span<const std::uint8_t> rest() {
    auto r = data_.subspan(pos_);
    pos_ = data_.size();
    return r;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (remaining() < n) {
      // pw-analyze: allow(hot-throw): the underflow throw is the
      // codec's malformed-frame signal — intact frames never take this
      // branch, so it is cold by construction even when a PW_HOT
      // delivery path parses received octets (the MAC catches at frame
      // boundary and drops the frame).
      throw BufferUnderflow("read of " + std::to_string(n) +
                            " bytes with only " + std::to_string(remaining()) +
                            " remaining");
    }
    auto r = data_.subspan(pos_, n);
    pos_ += n;
    return r;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Hex dump "aa bb cc ..." — used by trace output and test diagnostics.
std::string hex_dump(std::span<const std::uint8_t> data);

}  // namespace politewifi
