// RF power and unit conversions.
//
// The propagation and energy models mix logarithmic (dBm, dB) and linear
// (mW, W) quantities; these helpers keep the conversions in one place.
#pragma once

#include <cmath>

namespace politewifi {

/// dBm -> milliwatts.
inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

/// milliwatts -> dBm.
inline double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

/// Linear power ratio -> dB.
inline double ratio_to_db(double ratio) { return 10.0 * std::log10(ratio); }

/// dB -> linear power ratio.
inline double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

/// Amplitude ratio -> dB (20 log10).
inline double amplitude_to_db(double a) { return 20.0 * std::log10(a); }

constexpr double kSpeedOfLight = 299'792'458.0;  // m/s

/// Wavelength (m) at carrier frequency f (Hz).
inline double wavelength(double freq_hz) { return kSpeedOfLight / freq_hz; }

/// Thermal noise floor in dBm for the given bandwidth: -174 dBm/Hz + 10log10(B).
inline double thermal_noise_dbm(double bandwidth_hz) {
  return -174.0 + 10.0 * std::log10(bandwidth_hz);
}

/// A 2-D position in meters. The world is flat: wardriving happens on a
/// city plane and indoor scenes fit in a room-scale box.
struct Position {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Position&, const Position&) = default;
};

inline double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace politewifi
