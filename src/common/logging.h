// Minimal leveled logger.
//
// The simulator is a library, so logging is opt-in and goes through a
// single global sink. Examples set Debug to watch frame exchanges;
// benchmarks leave it at Warn so output stays parseable.
#pragma once

#include <cstdio>
#include <functional>
#include <string>

namespace politewifi {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

const char* log_level_name(LogLevel level);

/// Process-wide logging configuration. Not thread-safe by design: the
/// simulator is single-threaded (discrete-event), and the wardriving
/// "threads" of the paper are modeled as event-driven stages.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Replaces the default stderr sink (tests capture output this way).
  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void reset_sink();

  bool enabled(LogLevel level) const { return level >= level_; }

  void log(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::Warn;
  Sink sink_;
};

namespace detail {
std::string format_log(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define PW_LOG(level, ...)                                             \
  do {                                                                 \
    if (::politewifi::Logger::instance().enabled(level)) {             \
      ::politewifi::Logger::instance().log(                            \
          level, ::politewifi::detail::format_log(__VA_ARGS__));       \
    }                                                                  \
  } while (0)

#define PW_TRACE(...) PW_LOG(::politewifi::LogLevel::Trace, __VA_ARGS__)
#define PW_DEBUG(...) PW_LOG(::politewifi::LogLevel::Debug, __VA_ARGS__)
#define PW_INFO(...) PW_LOG(::politewifi::LogLevel::Info, __VA_ARGS__)
#define PW_WARN(...) PW_LOG(::politewifi::LogLevel::Warn, __VA_ARGS__)
#define PW_ERROR(...) PW_LOG(::politewifi::LogLevel::Error, __VA_ARGS__)

}  // namespace politewifi
