#include "common/flags.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace politewifi::common {

bool ParsedArgs::has_flag(std::string_view name) const {
  return find_flag(name) != nullptr;
}

const Flag* ParsedArgs::find_flag(std::string_view name) const {
  const Flag* found = nullptr;
  for (const auto& flag : flags) {
    if (flag.name == name) found = &flag;
  }
  return found;
}

std::optional<ParsedArgs> parse_args(int argc, const char* const* argv,
                                     std::string* error) {
  ParsedArgs args;
  bool options_done = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (options_done || arg.empty() || arg[0] != '-') {
      args.positionals.emplace_back(arg);
      continue;
    }
    if (arg == "--") {
      options_done = true;
      continue;
    }
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      if (error != nullptr) {
        *error = "unrecognized option '" + std::string(arg) +
                 "' (options are --name or --name=value)";
      }
      return std::nullopt;
    }
    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    Flag flag;
    if (eq == std::string_view::npos) {
      flag.name = std::string(body);
    } else {
      flag.name = std::string(body.substr(0, eq));
      flag.value = std::string(body.substr(eq + 1));
    }
    if (flag.name.empty()) {
      if (error != nullptr) {
        *error = "option with an empty name: '" + std::string(arg) + "'";
      }
      return std::nullopt;
    }
    args.flags.push_back(std::move(flag));
  }
  return args;
}

bool parse_double(std::string_view text, double* out) {
  if (text.empty()) return false;
  const std::string buf(text);  // strtod needs a terminator
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE ||
      !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

bool parse_int64(std::string_view text, std::int64_t* out) {
  if (text.empty()) return false;
  const std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool parse_bool(std::string_view text, bool* out) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace politewifi::common
