// Capability-annotated mutex wrappers for Clang Thread Safety Analysis.
//
// libstdc++'s std::mutex carries no capability attributes, so a
// lock_guard<std::mutex> is invisible to -Wthread-safety: the analysis
// would accept any access pattern. These zero-cost wrappers restore
// the attributes. State shared across threads declares
//
//   common::Mutex mutex_;
//   std::vector<Span> spans_ PW_GUARDED_BY(mutex_);
//
// and every access site takes a `common::MutexLock lock(mutex_);` (or
// the enclosing function is annotated PW_REQUIRES(mutex_)). Under GCC
// both classes compile to exactly a std::mutex and a lock_guard; under
// clang the CI `analyze` job proves, at compile time, that no guarded
// field is touched without its capability held.
#pragma once

#include <mutex>

#include "common/annotations.h"

namespace politewifi::common {

/// A std::mutex that the thread-safety analysis can see. Use with
/// MutexLock; the raw lock()/unlock() pair exists for the RAII wrapper
/// and for PW_ACQUIRE/PW_RELEASE-annotated APIs that hand a held lock
/// across function boundaries.
class PW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PW_ACQUIRE() { impl_.lock(); }
  void unlock() PW_RELEASE() { impl_.unlock(); }
  bool try_lock() PW_TRY_ACQUIRE(true) { return impl_.try_lock(); }

 private:
  std::mutex impl_;
};

/// RAII lock over a common::Mutex, equivalent to std::lock_guard but
/// visible to -Wthread-safety (scoped_lockable).
class PW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) PW_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() PW_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace politewifi::common
