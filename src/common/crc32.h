// IEEE 802.3/802.11 CRC-32 — the Frame Check Sequence (FCS).
//
// Every simulated MPDU carries a real FCS computed with this code, and the
// receive path verifies it exactly as hardware does: an FCS failure means
// the frame is silently dropped and, crucially for this paper, *not*
// acknowledged. The whole Polite WiFi behaviour hinges on "FCS pass" being
// the only check that gates the ACK.
#pragma once

#include <cstdint>
#include <span>

namespace politewifi {

/// Reflected CRC-32 with polynomial 0x04C11DB7 (IEEE), init 0xFFFFFFFF,
/// final XOR 0xFFFFFFFF — identical to the 802.11 FCS.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental variant for streaming use: feed `crc32_update` chunks
/// starting from crc32_init(), then finish with crc32_final().
constexpr std::uint32_t crc32_init() { return 0xFFFFFFFFu; }
std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::uint8_t> data);
constexpr std::uint32_t crc32_final(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

}  // namespace politewifi
