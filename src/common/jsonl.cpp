#include "common/jsonl.h"

#include <cstdio>

#include "common/json_parse.h"

namespace politewifi::common {

namespace {

bool read_whole_file(const std::string& path, std::string* out,
                     std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  out->clear();
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) *error = "read error on " + path;
  return ok;
}

}  // namespace

bool read_jsonl_file(const std::string& path, JsonlReadResult* out,
                     std::string* error) {
  out->records.clear();
  out->torn_tail = false;
  out->torn_tail_offset = 0;
  std::string text;
  if (!read_whole_file(path, &text, error)) return false;

  std::size_t line_start = 0;
  std::size_t line_number = 0;
  while (line_start < text.size()) {
    ++line_number;
    std::size_t newline = text.find('\n', line_start);
    const bool complete = newline != std::string::npos;
    if (!complete) newline = text.size();
    const std::string_view line(text.data() + line_start,
                                newline - line_start);
    std::string parse_error;
    auto record = parse_json(line, &parse_error);
    if (!record.has_value()) {
      if (!complete) {
        // Partial final line: the writer died mid-append. By the append
        // protocol the record was never durable; report, don't fail.
        out->torn_tail = true;
        out->torn_tail_offset = line_start;
        return true;
      }
      *error = path + " line " + std::to_string(line_number) +
               ": corrupt journal record: " + parse_error;
      return false;
    }
    out->records.push_back(std::move(*record));
    line_start = newline + 1;
  }
  return true;
}

bool append_jsonl_record(const std::string& path, const Json& record,
                         std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    *error = "cannot open " + path + " for append";
    return false;
  }
  const std::string line = record.dump_compact() + "\n";
  const std::size_t written = std::fwrite(line.data(), 1, line.size(), f);
  // fflush pushes the line to the OS before the caller marks the job
  // durable; a torn tail can therefore only ever be the newest record.
  const bool ok = written == line.size() && std::fflush(f) == 0;
  if (std::fclose(f) != 0 || !ok) {
    *error = "short write appending to " + path;
    return false;
  }
  return true;
}

}  // namespace politewifi::common
