// Deterministic random number generation.
//
// All stochastic behaviour in the simulator (fading, body motion, city
// population, packet loss) draws from a seeded engine so every experiment
// is exactly reproducible; benchmarks print their seed.
#pragma once

#include <cstdint>
#include <random>

namespace politewifi {

/// A seeded PRNG wrapper. Thin layer over std::mt19937_64 with convenience
/// distributions; pass by reference, never copy accidentally (copying forks
/// the stream — allowed but must be explicit via fork()).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal (mean 0, stddev 1).
  double gaussian() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

  double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential with the given mean (inter-arrival times).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Derives an independent child stream; used to give each device its own
  /// RNG so adding a device does not perturb the others' randomness.
  Rng fork() { return Rng(engine_() ^ 0x5851f42d4c957f2dULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace politewifi
