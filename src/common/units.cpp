#include "common/units.h"

// Header-only; TU anchors the library.
