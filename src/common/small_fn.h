// A move-only `void()` callable with small-buffer-optimized storage.
//
// The event scheduler executes millions of short-lived callbacks per
// simulated second; wrapping each in std::function means one heap
// allocation per event plus a copy of every capture whenever the
// priority queue shuffles. SmallFn stores captures up to kInlineBytes
// directly inside the object (enough for the medium's reception-finalize
// lambda, the fattest one in the hot path) and relocates by move, so the
// common scheduling path never touches the allocator. Larger callables
// still work — they fall back to a single heap cell.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace politewifi {

template <std::size_t InlineBytes>
class BasicSmallFn {
 public:
  static constexpr std::size_t kInlineBytes = InlineBytes;

  BasicSmallFn() noexcept = default;
  BasicSmallFn(std::nullptr_t) noexcept {}  // NOLINT: match std::function

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, BasicSmallFn> && std::is_invocable_v<D&>>>
  BasicSmallFn(F&& f) {  // NOLINT: converting, like std::function
    if constexpr (fits_inline<D>) {
      ::new (buf_) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      ::new (buf_) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  BasicSmallFn(BasicSmallFn&& other) noexcept { move_from(other); }
  BasicSmallFn& operator=(BasicSmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  BasicSmallFn(const BasicSmallFn&) = delete;
  BasicSmallFn& operator=(const BasicSmallFn&) = delete;
  ~BasicSmallFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Destroys the stored callable (drops its captures) and goes empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True when the stored callable lives in the inline buffer.
  bool is_inline() const noexcept { return ops_ != nullptr && ops_->inline_storage; }

  /// Whether a callable of type F would be stored without allocating.
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= InlineBytes && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct + destroy src
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <typename D>
  struct InlineOps {
    static D* self(void* p) noexcept { return std::launder(reinterpret_cast<D*>(p)); }
    static void invoke(void* p) { (*self(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D(std::move(*self(src)));
      self(src)->~D();
    }
    static void destroy(void* p) noexcept { self(p)->~D(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, true};
  };

  template <typename D>
  struct HeapOps {
    static D* self(void* p) noexcept {
      return *std::launder(reinterpret_cast<D**>(p));
    }
    static void invoke(void* p) { (*self(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D*(self(src));  // steal the heap cell
    }
    static void destroy(void* p) noexcept { delete self(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, false};
  };

  void move_from(BasicSmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[InlineBytes];
  const Ops* ops_ = nullptr;
};

/// The scheduler's callback type. 128 bytes of inline storage holds the
/// largest hot-path capture set (Medium's finalize lambda: a Bytes vector,
/// a TxVector, two timestamps, a power level and three pointers).
using SmallFn = BasicSmallFn<128>;

}  // namespace politewifi
