// Simulated time.
//
// The discrete-event simulator advances time in integer nanoseconds. 802.11
// timing constants (SIFS = 10 us / 16 us, slot = 9/20 us, symbol = 4 us)
// are exact multiples of a microsecond, but ACK turnaround jitter and
// propagation delays benefit from sub-microsecond resolution.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace politewifi {

/// Simulation duration, signed 64-bit nanoseconds (±292 years — plenty).
using Duration = std::chrono::nanoseconds;

/// Absolute simulation time since the start of the run.
using TimePoint = std::chrono::time_point<std::chrono::steady_clock, Duration>;

using std::chrono::hours;
using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::minutes;
using std::chrono::nanoseconds;
using std::chrono::seconds;

constexpr TimePoint kSimStart{Duration::zero()};

/// Seconds as double — for rate math and report output.
constexpr double to_seconds(Duration d) {
  return std::chrono::duration<double>(d).count();
}

constexpr double to_microseconds(Duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

constexpr Duration from_seconds(double s) {
  return std::chrono::duration_cast<Duration>(std::chrono::duration<double>(s));
}

/// Formats a TimePoint as "12.345678s" for trace output.
std::string format_time(TimePoint t);

}  // namespace politewifi
