// Strict parser for the canonical JSON this repo's Json writer emits.
//
// The multi-process city driver reads child `pw_run` documents back and
// reduces them into one survey result, so the writer-first Json type
// (json.h) gains exactly one reader. It accepts the full JSON value
// grammar over the writer's canonical subset — objects, arrays, strings
// with the writer's escape set (plus \uXXXX for control characters and
// \/), %lld integers and %.12g doubles — and rejects everything the
// writer never produces (NaN/Infinity literals, trailing garbage,
// unpaired surrogates).
//
// Numeric round-trip: parsing a %.12g-formatted double and re-dumping
// it reproduces the same text (one dump -> parse trip is a fixed point
// of the 12-significant-digit formatting), which is what makes reduced
// multi-process documents byte-identical to in-process ones. Doubles
// whose canonical form carries no '.', 'e' or 'E' (e.g. "3") parse as
// integers; they re-dump to the same bytes.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/json.h"

namespace politewifi::common {

/// Parses one JSON value spanning the whole input (leading/trailing
/// whitespace allowed, anything else after the value is an error).
/// Returns nullopt and fills *error (when non-null) with a
/// position-annotated message on malformed input.
std::optional<Json> parse_json(std::string_view text,
                               std::string* error = nullptr);

}  // namespace politewifi::common
