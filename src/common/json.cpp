#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/check.h"

namespace politewifi::common {

Json::Json(unsigned long v) : kind_(Kind::kInt) {
  PW_CHECK_LE(v, static_cast<unsigned long>(
                     std::numeric_limits<std::int64_t>::max()));
  int_ = static_cast<std::int64_t>(v);
}

Json::Json(unsigned long long v) : kind_(Kind::kInt) {
  PW_CHECK_LE(v, static_cast<unsigned long long>(
                     std::numeric_limits<std::int64_t>::max()));
  int_ = static_cast<std::int64_t>(v);
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  PW_CHECK(kind_ == Kind::kObject);
  return object_[key];
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

void Json::push_back(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  PW_CHECK(kind_ == Kind::kArray);
  array_.push_back(std::move(v));
}

const Json& Json::at(std::size_t index) const {
  PW_CHECK(kind_ == Kind::kArray);
  PW_CHECK_LT(index, array_.size());
  return array_[index];
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  return 0;
}

bool Json::as_bool() const {
  PW_CHECK(kind_ == Kind::kBool);
  return bool_;
}

std::int64_t Json::as_int() const {
  PW_CHECK(kind_ == Kind::kInt);
  return int_;
}

double Json::as_double() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  PW_CHECK(kind_ == Kind::kDouble);
  return double_;
}

const std::string& Json::as_string() const {
  PW_CHECK(kind_ == Kind::kString);
  return string_;
}

const std::map<std::string, Json>& Json::as_object() const {
  PW_CHECK(kind_ == Kind::kObject);
  return object_;
}

std::string Json::dump() const {
  std::string out;
  dump_to(&out, 0);
  return out;
}

std::string Json::dump_compact() const {
  std::string out;
  dump_compact_to(&out);
  return out;
}

void Json::append_escaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(raw);
        }
    }
  }
  out->push_back('"');
}

void Json::append_double(std::string* out, double v) {
  // One canonical formatting: non-finite values are not representable in
  // JSON and would silently poison a golden, so they are hard errors;
  // -0.0 normalizes to "0" so equal values can't split on sign-of-zero.
  PW_CHECK(std::isfinite(v));
  if (v == 0.0) {
    *out += "0";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  *out += buf;
}

void Json::dump_to(std::string* out, int depth) const {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string inner_pad(static_cast<std::size_t>(depth + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(int_));
      *out += buf;
      break;
    }
    case Kind::kDouble:
      append_double(out, double_);
      break;
    case Kind::kString:
      append_escaped(out, string_);
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      *out += "[\n";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        *out += inner_pad;
        array_[i].dump_to(out, depth + 1);
        if (i + 1 < array_.size()) *out += ",";
        *out += "\n";
      }
      *out += pad + "]";
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      *out += "{\n";
      std::size_t i = 0;
      for (const auto& [key, value] : object_) {
        *out += inner_pad;
        append_escaped(out, key);
        *out += ": ";
        value.dump_to(out, depth + 1);
        if (++i < object_.size()) *out += ",";
        *out += "\n";
      }
      *out += pad + "}";
      break;
    }
  }
}

void Json::dump_compact_to(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
    case Kind::kBool:
    case Kind::kInt:
    case Kind::kDouble:
    case Kind::kString:
      // Scalar formatting is shared with the indented writer.
      dump_to(out, 0);
      break;
    case Kind::kArray: {
      *out += "[";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) *out += ",";
        array_[i].dump_compact_to(out);
      }
      *out += "]";
      break;
    }
    case Kind::kObject: {
      *out += "{";
      std::size_t i = 0;
      for (const auto& [key, value] : object_) {
        if (i++ > 0) *out += ",";
        append_escaped(out, key);
        *out += ":";
        value.dump_compact_to(out);
      }
      *out += "}";
      break;
    }
  }
}

}  // namespace politewifi::common
