#include "common/mac_address.h"

#include <cctype>
#include <cstdio>

namespace politewifi {

namespace {

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  // Expect exactly "xx:xx:xx:xx:xx:xx" (17 chars, ':' or '-' separators).
  if (text.size() != 17) return std::nullopt;
  std::array<std::uint8_t, kSize> octets{};
  for (std::size_t i = 0; i < kSize; ++i) {
    const std::size_t base = i * 3;
    const int hi = hex_value(text[base]);
    const int lo = hex_value(text[base + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    octets[i] = static_cast<std::uint8_t>((hi << 4) | lo);
    if (i + 1 < kSize) {
      const char sep = text[base + 2];
      if (sep != ':' && sep != '-') return std::nullopt;
    }
  }
  return MacAddress{octets};
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

}  // namespace politewifi
