#include "common/byte_buffer.h"

#include <cstdio>

namespace politewifi {

std::string hex_dump(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 3);
  char b[4];
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::snprintf(b, sizeof b, i + 1 == data.size() ? "%02x" : "%02x ",
                  data[i]);
    out += b;
  }
  return out;
}

}  // namespace politewifi
