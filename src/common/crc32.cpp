#include "common/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace politewifi {

namespace {

// Slicing-by-8 tables for the reflected polynomial 0xEDB88320
// (bit-reversed 0x04C11DB7), generated at static-init time. Table 0 is
// the classic bytewise table; table k folds a byte that sits k positions
// ahead of the CRC window, letting the update loop consume 8 bytes per
// iteration with 8 independent lookups. The result is bit-identical to
// the bytewise algorithm for every input.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (std::size_t k = 1; k < 8; ++k) {
      c = t[0][c & 0xFFu] ^ (c >> 8);
      t[k][i] = c;
    }
  }
  return t;
}

constexpr auto kTables = make_tables();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::uint8_t> data) {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  // The 8-byte inner loop folds via 32-bit loads and assumes the low byte
  // of the load is the first input byte, i.e. little-endian hosts.
  while (std::endian::native == std::endian::little && n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= state;
    state = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
            kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
            kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
            kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    state = kTables[0][(state ^ *p++) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace politewifi
