#include "common/json_parse.h"

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <utility>

namespace politewifi::common {

namespace {

/// Recursive-descent parser over a string_view cursor. Depth-bounded so
/// a hostile document cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> parse(std::string* error) {
    skip_ws();
    Json value;
    if (!parse_value(&value, 0)) {
      if (error != nullptr) *error = message_at_cursor();
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after the JSON value");
      if (error != nullptr) *error = message_at_cursor();
      return std::nullopt;
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool parse_value(Json* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting deeper than 64 levels");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = Json(std::move(s));
        return true;
      }
      case 't':
        if (!consume_literal("true")) return false;
        *out = Json(true);
        return true;
      case 'f':
        if (!consume_literal("false")) return false;
        *out = Json(false);
        return true;
      case 'n':
        if (!consume_literal("null")) return false;
        *out = Json();
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(Json* out, int depth) {
    ++pos_;  // '{'
    *out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') return fail("expected a quoted object key");
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      Json value;
      if (!parse_value(&value, depth + 1)) return false;
      (*out)[key] = std::move(value);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(Json* out, int depth) {
    ++pos_;  // '['
    *out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      Json value;
      if (!parse_value(&value, depth + 1)) return false;
      out->push_back(std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: the low half must follow immediately.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("unpaired UTF-16 surrogate");
            }
            pos_ += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("unknown escape sequence");
      }
    }
    return fail("unterminated string");
  }

  bool parse_hex4(std::uint32_t* out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("non-hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  static void append_utf8(std::string* out, std::uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_number(Json* out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      pos_ = start;
      return fail("expected a value");
    }
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return fail("leading zero in number");
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        // '+'/'-' only valid inside an exponent; strtod/strtoll below
        // re-validate, this scan just finds the token's extent.
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    // NUL-terminated copy for strto*: the token is short.
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    errno = 0;
    if (!is_double) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        *out = Json(v);
        return true;
      }
      // Out of int64 range: fall through to double (the writer never
      // emits such integers, but be lenient on magnitude, strict on
      // syntax).
      errno = 0;
    }
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(d)) {
      pos_ = start;
      return fail("malformed number");
    }
    *out = Json(d);
    return true;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return fail("unrecognized literal");
    }
    pos_ += lit.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  /// One-past-the-end safe peek; '\0' stands for end of input.
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool fail(const char* what) {
    if (error_ == nullptr) error_ = what;
    return false;
  }

  std::string message_at_cursor() const {
    std::string msg = error_ != nullptr ? error_ : "malformed JSON";
    msg += " at offset ";
    msg += std::to_string(pos_);
    return msg;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  const char* error_ = nullptr;
};

}  // namespace

std::optional<Json> parse_json(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace politewifi::common
