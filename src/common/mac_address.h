// IEEE 802 MAC (EUI-48) address value type.
//
// Every frame in the simulator is addressed with MacAddress. The type is a
// trivially copyable 6-byte value with strict total ordering so it can key
// maps and sets (target lists, duplicate caches, vendor tallies).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace politewifi {

/// A 48-bit IEEE 802 MAC address.
///
/// The first three octets are the OUI (Organizationally Unique Identifier)
/// which identifies the vendor; `politewifi::core::OuiDatabase` maps OUIs
/// back to vendor names when building the Table-2 style survey reports.
class MacAddress {
 public:
  static constexpr std::size_t kSize = 6;

  /// All-zero address.
  constexpr MacAddress() = default;

  constexpr explicit MacAddress(const std::array<std::uint8_t, kSize>& octets)
      : octets_(octets) {}

  constexpr MacAddress(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                       std::uint8_t d, std::uint8_t e, std::uint8_t f)
      : octets_{a, b, c, d, e, f} {}

  /// Parses "aa:bb:cc:dd:ee:ff" (case-insensitive, ':' or '-' separators).
  /// Returns nullopt on malformed input.
  static std::optional<MacAddress> parse(std::string_view text);

  /// The broadcast address ff:ff:ff:ff:ff:ff.
  static constexpr MacAddress broadcast() {
    return MacAddress{0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
  }

  /// The attacker's spoofed source address used throughout the paper
  /// (Figures 2 and 3): aa:bb:bb:bb:bb:bb.
  static constexpr MacAddress paper_fake_address() {
    return MacAddress{0xaa, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb};
  }

  constexpr const std::array<std::uint8_t, kSize>& octets() const {
    return octets_;
  }

  constexpr std::uint8_t operator[](std::size_t i) const { return octets_[i]; }

  /// The 24-bit OUI in host order, e.g. 0x3c22fb for Apple.
  constexpr std::uint32_t oui() const {
    return (std::uint32_t{octets_[0]} << 16) | (std::uint32_t{octets_[1]} << 8) |
           std::uint32_t{octets_[2]};
  }

  /// Locally-administered bit (bit 1 of the first octet). Randomized MACs
  /// (modern phones while unassociated) set this; such devices have no
  /// meaningful OUI vendor.
  constexpr bool locally_administered() const {
    return (octets_[0] & 0x02) != 0;
  }

  /// Group bit (bit 0 of the first octet); set for broadcast/multicast.
  constexpr bool is_group() const { return (octets_[0] & 0x01) != 0; }

  constexpr bool is_broadcast() const { return *this == broadcast(); }

  constexpr bool is_zero() const {
    for (auto o : octets_)
      if (o != 0) return false;
    return true;
  }

  /// Packs the address into the low 48 bits of a u64 (big-endian octet
  /// order) — handy for hashing and compact storage.
  constexpr std::uint64_t to_u64() const {
    std::uint64_t v = 0;
    for (auto o : octets_) v = (v << 8) | o;
    return v;
  }

  static constexpr MacAddress from_u64(std::uint64_t v) {
    return MacAddress{static_cast<std::uint8_t>(v >> 40),
                      static_cast<std::uint8_t>(v >> 32),
                      static_cast<std::uint8_t>(v >> 24),
                      static_cast<std::uint8_t>(v >> 16),
                      static_cast<std::uint8_t>(v >> 8),
                      static_cast<std::uint8_t>(v)};
  }

  /// "aa:bb:cc:dd:ee:ff" (lower-case hex).
  std::string to_string() const;

  friend constexpr auto operator<=>(const MacAddress&,
                                    const MacAddress&) = default;

 private:
  std::array<std::uint8_t, kSize> octets_{};
};

}  // namespace politewifi

template <>
struct std::hash<politewifi::MacAddress> {
  std::size_t operator()(const politewifi::MacAddress& m) const noexcept {
    // Fibonacci hashing over the packed 48-bit value.
    return static_cast<std::size_t>(m.to_u64() * 0x9e3779b97f4a7c15ULL);
  }
};
