// Static-analysis annotations: hot-path purity markers and Clang
// Thread Safety Analysis capability attributes.
//
// Two audiences read these macros:
//
//   * tools/pw_analyze.py — the AST-grade analyzer. `PW_HOT` marks a
//     function as a hot-path root; the analyzer walks its transitive
//     call graph and rejects heap allocation, `throw`, lock
//     acquisition, and wall-clock reads anywhere under it (rules
//     hot-new / hot-throw / hot-lock / hot-clock). `PW_GUARDED_BY` /
//     `PW_REQUIRES` feed the analyzer's portable guarded-by check.
//
//   * clang -Wthread-safety — the CI `analyze` job compiles the tree
//     with clang and `-Wthread-safety -Werror`, so a `PW_GUARDED_BY`
//     field written without its capability held fails the build. On
//     GCC (the default local toolchain) every thread-safety macro
//     expands to nothing; `PW_HOT` expands to nothing too — it is an
//     `annotate("pw_hot")` attribute under clang purely so AST tools
//     can see it, never a codegen hint.
//
// Raw `std::mutex` is invisible to the analysis (libstdc++ ships no
// capability attributes), so lock-guarded state uses the annotated
// wrappers in common/mutex.h instead.
#pragma once

#if defined(__clang__)
#define PW_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PW_THREAD_ANNOTATION(x)
#endif

// Hot-path root marker. Apply to the *definition*, before the return
// type: `PW_HOT void Medium::transmit(...)`. Keep PW_TIMEIT out of
// PW_HOT functions — ScopedTimer reads the wall clock; hot paths
// report through counters only.
#if defined(__clang__)
#define PW_HOT __attribute__((annotate("pw_hot")))
#else
#define PW_HOT
#endif

// --- Capability (mutex) annotations -----------------------------------
// Naming follows the Clang Thread Safety Analysis documentation; the
// PW_ prefix keeps them greppable and lets GCC builds compile clean.

// Declares that a class is a capability (lock) type.
#define PW_CAPABILITY(x) PW_THREAD_ANNOTATION(capability(x))

// Declares an RAII class whose lifetime holds a capability.
#define PW_SCOPED_CAPABILITY PW_THREAD_ANNOTATION(scoped_lockable)

// Field/variable may only be touched while `x` is held.
#define PW_GUARDED_BY(x) PW_THREAD_ANNOTATION(guarded_by(x))

// Pointed-to data (not the pointer itself) is guarded by `x`.
#define PW_PT_GUARDED_BY(x) PW_THREAD_ANNOTATION(pt_guarded_by(x))

// Caller must hold the listed capabilities exclusively.
#define PW_REQUIRES(...) \
  PW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// Caller must hold the listed capabilities at least shared.
#define PW_REQUIRES_SHARED(...) \
  PW_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Function acquires the capability and does not release it.
#define PW_ACQUIRE(...) PW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

// Function releases the capability.
#define PW_RELEASE(...) PW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// Function acquires the capability iff it returns `ret`.
#define PW_TRY_ACQUIRE(ret, ...) \
  PW_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

// Caller must NOT already hold the listed capabilities (deadlock guard).
#define PW_EXCLUDES(...) PW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Returns a reference to the capability guarding this object.
#define PW_RETURN_CAPABILITY(x) PW_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: disables the analysis for one function. Every use
// carries a comment saying why the analysis cannot see the invariant.
#define PW_NO_THREAD_SAFETY_ANALYSIS \
  PW_THREAD_ANNOTATION(no_thread_safety_analysis)
