// Strict command-line parsing for the experiment runtime.
//
// Exists because of a real bug class: examples/wardriving.cpp used to run
// `std::atof(argv[1])`, so `./wardriving fast` silently surveyed a city
// scaled by 0.0 — an empty town and a meaningless result. Everything
// here rejects malformed input loudly instead of coercing it: scalar
// parsers require the whole token to parse, and the argv splitter
// reports unknown option syntax instead of guessing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace politewifi::common {

/// One `--name=value` or bare `--name` option. A bare flag carries no
/// value (std::nullopt) — distinct from `--name=` which carries an empty
/// one, so "missing value" diagnostics stay precise.
struct Flag {
  std::string name;                  // without the leading dashes
  std::optional<std::string> value;
};

struct ParsedArgs {
  std::vector<Flag> flags;           // in command-line order
  std::vector<std::string> positionals;

  bool has_flag(std::string_view name) const;
  /// Last occurrence wins (so a script can append overrides).
  const Flag* find_flag(std::string_view name) const;
};

/// Splits argv[1..argc) into flags and positionals. `--` ends option
/// parsing; everything after it is positional. Returns nullopt and fills
/// *error for single-dash options or an empty option name.
std::optional<ParsedArgs> parse_args(int argc, const char* const* argv,
                                     std::string* error);

/// Strict scalar parsers: the whole string must be consumed and the
/// value must be finite/in-range. Empty input fails.
bool parse_double(std::string_view text, double* out);
bool parse_int64(std::string_view text, std::int64_t* out);
/// Accepts: true/false, 1/0, yes/no, on/off (case-sensitive).
bool parse_bool(std::string_view text, bool* out);

}  // namespace politewifi::common
